//! Workspace-level integration tests: transmit → urban channel → Choir
//! base station, spanning every crate through the public facade.

// Integration tests: failing fast on a missing frame IS the assertion.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use choir::prelude::*;

#[test]
fn collision_pipeline_across_spreading_factors() {
    // The decoder must work across the SF range the experiments use
    // (SF7/SF8/SF10 — the rate-adaptation levels of Fig. 8(a–c)).
    for sf in [
        SpreadingFactor::Sf7,
        SpreadingFactor::Sf8,
        SpreadingFactor::Sf10,
    ] {
        let params = PhyParams {
            sf,
            ..PhyParams::default()
        };
        let scenario = ScenarioBuilder::new(params)
            .snrs_db(&[20.0, 16.0])
            .payload_len(8)
            .seed(17)
            .build();
        let decoder = ChoirDecoder::new(params);
        let out = decoder.decode_known_len(&scenario.samples, scenario.slot_start, 8);
        let ok = out.iter().filter(|d| d.payload_ok()).count();
        assert_eq!(ok, 2, "{sf:?}: {ok}/2 decoded");
        // Payloads must match ground truth exactly.
        for u in &scenario.users {
            assert!(
                out.iter().any(|d| d
                    .frame
                    .as_ref()
                    .map(|f| f.payload == u.payload)
                    .unwrap_or(false)),
                "{sf:?}: payload missing"
            );
        }
    }
}

#[test]
fn topology_drives_realistic_snrs() {
    // Nodes placed by the urban topology land at SNRs the decoder handles,
    // and the whole chain (placement → link budget → collision → decode)
    // holds together.
    let topo = Topology::cmu_campus(3);
    let params = PhyParams::default();
    let locations = topo.random_locations(40);
    // Pick two in-range nodes.
    let in_range: Vec<f64> = locations
        .iter()
        .map(|&l| topo.snr_db(l, &params))
        .filter(|&s| s > 5.0 && s < 30.0)
        .take(2)
        .collect();
    assert_eq!(in_range.len(), 2, "topology yields in-range nodes");
    let scenario = ScenarioBuilder::new(params)
        .snrs_db(&in_range)
        .payload_len(10)
        .seed(23)
        .build();
    let decoder = ChoirDecoder::new(params);
    let ok = decoder
        .decode_known_len(&scenario.samples, scenario.slot_start, 10)
        .iter()
        .filter(|d| d.payload_ok())
        .count();
    assert_eq!(ok, 2);
}

#[test]
fn near_far_with_fading_channel() {
    use choir::channel::fading::Fading;
    let params = PhyParams::default();
    let scenario = ScenarioBuilder::new(params)
        .snrs_db(&[28.0, 8.0])
        .payload_len(6)
        .fading(Fading::Rician { k: 8.0 })
        .seed(31)
        .build();
    let decoder = ChoirDecoder::new(params);
    let ok = decoder
        .decode_known_len(&scenario.samples, scenario.slot_start, 6)
        .iter()
        .filter(|d| d.payload_ok())
        .count();
    assert_eq!(ok, 2, "near-far under Rician fading");
}

#[test]
fn standard_lora_receiver_fails_where_choir_succeeds() {
    // The motivating comparison: the same collision is a total loss for
    // the standard single-user receiver but fully decodable by Choir.
    let params = PhyParams::default();
    let scenario = ScenarioBuilder::new(params)
        .snrs_db(&[18.0, 17.0])
        .payload_len(8)
        // Seed chosen so the collision's CFO/timing draws defeat the plain
        // receiver; with near-equal powers some draws let it capture the
        // stronger user. Seeds are tied to choir-rand's xoshiro stream.
        .seed(41)
        .build();
    let modem = Modem::new(params);
    let standard =
        choir::phy::detect::decode_packet(&scenario.samples, &modem, scenario.slot_start, 100);
    let standard_ok = standard
        .map(|f| f.crc_ok && scenario.users.iter().any(|u| u.payload == f.payload))
        .unwrap_or(false);
    let decoder = ChoirDecoder::new(params);
    let choir_ok = decoder
        .decode_known_len(&scenario.samples, scenario.slot_start, 8)
        .iter()
        .filter(|d| d.payload_ok())
        .count();
    assert_eq!(choir_ok, 2);
    assert!(
        !standard_ok,
        "a plain LoRa receiver should not survive a same-SF collision"
    );
}

#[test]
fn team_beyond_range_full_chain() {
    // Sensor field → spliced chunks → team transmission below the noise
    // floor → detection + joint decode → reconstructed coarse reading.
    use choir::sensors::splice;
    let params = PhyParams::default();
    let q = Quantizer::temperature();
    let reading = 19.4;
    let code = splice::quantize(reading, q.lo, q.hi, q.bits);
    let payload = splice::splice(code, q.bits, q.chunk_bits);

    let scenario = ScenarioBuilder::new(params)
        .snrs_db(&[-14.0; 12])
        .shared_payload(payload.clone())
        // Seed tied to choir-rand's xoshiro stream (noise draws at −14 dB).
        .seed(55)
        .build();
    let team = TeamDecoder::new(params, TeamConfig::default());
    let (_, frame) = team
        .decode(
            &scenario.samples,
            scenario.slot_start,
            scenario.slot_start + 1,
            payload.len(),
        )
        .expect("team detected");
    let frame = frame.expect("frame decoded");
    assert!(frame.crc_ok);
    let chunks: Vec<Option<u8>> = frame.payload.iter().map(|&c| Some(c)).collect();
    let rec = splice::dequantize(
        splice::reassemble(&chunks, q.bits, q.chunk_bits),
        q.lo,
        q.hi,
        q.bits,
    );
    assert!((rec - reading).abs() < 0.02, "reconstructed {rec}");
}

#[test]
fn mac_simulation_over_iq_phy() {
    // A short saturated-uplink run where every Choir slot is decided by
    // the real IQ decoder — the highest-fidelity network simulation.
    use choir::mac::IqChoirPhy;
    let params = PhyParams::default();
    let cfg = SimConfig {
        params,
        payload_len: 6,
        num_nodes: 3,
        slots: 4,
        snr_range_db: (14.0, 22.0),
        beacon_overhead_s: 0.01,
        max_backoff_exp: 6,
        traffic: choir::mac::Traffic::Saturated,
        seed: 61,
    };
    let mut phy = IqChoirPhy::new(params, 61);
    let m = run_sim(MacScheme::Choir, &cfg, &mut phy);
    // 4 slots × 3 users: expect the vast majority delivered.
    assert!(m.delivered >= 10, "delivered {}", m.delivered);
    assert!(m.throughput_bps > 0.0);
}
