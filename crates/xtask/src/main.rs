//! # xtask — workspace automation for Choir
//!
//! `cargo xtask lint` runs the Choir-specific static-analysis pass over
//! every `.rs` file in the workspace (zero external dependencies, no
//! network, no nightly components):
//!
//! * **unwrap** — no `unwrap()` / `expect()` / `panic!` / `todo!` /
//!   `unimplemented!` / `dbg!` in non-test library code;
//! * **f32** — no `f32` types or literals in `choir-dsp` / `choir-core`
//!   (the pipeline is all-`f64`);
//! * **float_cmp** — no `==` / `!=` against floating-point literals;
//! * **lossy_cast** — narrowing `as` casts in DSP hot paths need a
//!   justification marker;
//! * **missing_docs_gate** / **lints_inherit** — every library crate
//!   declares `#![deny(missing_docs)]` and inherits `[workspace.lints]`;
//! * **sync_facade** — thread/lock primitives go through `choir_sync`,
//!   never `std::thread` / `std::sync` directly (so the model checker
//!   can schedule them);
//! * **atomic_ordering** — every `Ordering::X` argument carries a
//!   same-line `// ordering:` justification;
//! * **lock_scope** — no `.lock()` while another `let`-bound guard is
//!   still in scope, unless the nesting carries a lock-order argument;
//! * **simd_boundary** — `unsafe` and `std::arch` / `core::arch`
//!   intrinsics are confined to `crates/choir-dsp/src/backend/`; the
//!   rest of the workspace stays safe Rust dispatching through the
//!   backend facade.
//!
//! Violations are suppressed inside `#[cfg(test)]` scope, or with a
//! `// lint:allow(<rule>) — <reason>` comment on the site's line or the
//! line above (the reason is mandatory).
//!
//! `cargo xtask selftest` feeds deliberately planted violations through
//! the engine and fails if any escape — the lint linting itself.
//!
//! `cargo xtask ci <gate>` runs one of the repository's merge gates
//! (bench floors, bit-identity, shed-free soak, tracing overhead) as a
//! single tested command — see the [`ci`] module.

mod ci;
mod rules;
mod scan;

use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(),
        Some("selftest") => selftest(),
        Some("ci") => ci::run(&args[1..]),
        _ => {
            eprintln!("usage: cargo xtask <lint|selftest|ci>");
            eprintln!("  lint      run the Choir static-analysis pass over the workspace");
            eprintln!("  selftest  verify the lint engine catches planted violations");
            eprintln!("  ci        run a merge gate (bench-smoke, station-soak, model-check)");
            ExitCode::from(2)
        }
    }
}

/// Workspace root: two levels up from this crate's manifest.
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .map(Path::to_path_buf)
        .unwrap_or(manifest)
}

/// Collects every workspace `.rs` file, skipping build output and VCS dirs.
fn rust_sources(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if name == "target" || name.starts_with('.') {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    out
}

fn lint() -> ExitCode {
    let root = workspace_root();
    let mut violations = Vec::new();
    let mut files = 0usize;

    for path in rust_sources(&root) {
        let rel = path
            .strip_prefix(&root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let Ok(src) = std::fs::read_to_string(&path) else {
            continue;
        };
        files += 1;
        let file = scan::SourceFile::new(&rel, &src);
        violations.extend(rules::check_file(&file));
    }

    // Per-crate gates: doc coverage is a hard deny, and every crate
    // inherits the workspace lint table.
    let mut crate_dirs: Vec<(String, PathBuf)> = vec![(".".to_string(), root.clone())];
    if let Ok(entries) = std::fs::read_dir(root.join("crates")) {
        for entry in entries.flatten() {
            if entry.path().is_dir() {
                let rel = format!("crates/{}", entry.file_name().to_string_lossy());
                crate_dirs.push((rel, entry.path()));
            }
        }
    }
    crate_dirs.sort();
    for (rel, dir) in crate_dirs {
        let lib = std::fs::read_to_string(dir.join("src/lib.rs")).ok();
        let Ok(manifest) = std::fs::read_to_string(dir.join("Cargo.toml")) else {
            continue;
        };
        violations.extend(rules::check_crate_gates(&rel, lib.as_deref(), &manifest));
    }

    violations.sort_by(|a, b| (&a.path, a.line, a.col).cmp(&(&b.path, b.line, b.col)));
    for v in &violations {
        println!("{v}");
    }
    if violations.is_empty() {
        println!("xtask lint: clean — {files} files, 0 violations");
        ExitCode::SUCCESS
    } else {
        println!(
            "xtask lint: {} violation(s) in {files} files",
            violations.len()
        );
        ExitCode::FAILURE
    }
}

/// Runs planted-violation snippets through the engine: every plant must be
/// caught, every clean snippet must stay clean.
fn selftest() -> ExitCode {
    // (path the snippet pretends to live at, source, rules expected)
    let plants: &[(&str, &str, &[&str])] = &[
        (
            "crates/choir-dsp/src/planted.rs",
            "pub fn f(x: Option<u8>) -> u8 { x.unwrap() }\n",
            &["unwrap"],
        ),
        (
            "crates/choir-dsp/src/planted.rs",
            "pub fn dechirp(x: f32) -> f64 { x as f64 }\n",
            &["f32"],
        ),
        (
            "crates/choir-core/src/planted.rs",
            "pub fn f() { panic!(\"peak list empty\"); }\n",
            &["unwrap"],
        ),
        (
            "crates/choir-mac/src/planted.rs",
            "pub fn f(x: f64) -> bool { x == 0.3 }\n",
            &["float_cmp"],
        ),
        (
            "crates/choir-dsp/src/planted.rs",
            "pub fn f(x: f64) -> u16 { x as u16 }\n",
            &["lossy_cast"],
        ),
        (
            "crates/choir-dsp/src/planted.rs",
            "#[cfg(test)]\nmod tests { fn f(x: Option<u8>) -> u8 { x.unwrap() } }\n",
            &[],
        ),
        (
            "crates/choir-core/src/planted.rs",
            "// hot:noalloc — per-candidate refine kernel\npub fn eval(x: &[u8]) -> Vec<u8> { x.to_vec() }\n",
            &["hot_noalloc"],
        ),
        (
            "crates/choir-core/src/planted.rs",
            "// hot:noalloc — per-candidate refine kernel\npub fn eval(x: &mut [u8]) { x[0] = 1; }\npub fn setup(x: &[u8]) -> Vec<u8> { x.to_vec() }\n",
            &[],
        ),
        (
            "crates/choir-dsp/src/planted.rs",
            "pub fn f(x: Option<u8>) -> u8 {\n    // lint:allow(unwrap) — caller guarantees Some\n    x.unwrap()\n}\n",
            &[],
        ),
        (
            "crates/choir-core/src/planted.rs",
            "pub fn f() -> Result<(), DecodeError> {\n    Err(DecodeError::NoUsersFound { window_hits: 2 })\n}\n",
            &["trace_event"],
        ),
        (
            "crates/choir-core/src/planted.rs",
            "pub fn f() -> Result<(), DecodeError> {\n    Err(DecodeError::NoUsersFound { window_hits: 2 }.traced())\n}\n",
            &[],
        ),
        (
            "crates/choir-station/src/planted.rs",
            "pub fn f() -> TraceEvent {\n    TraceEvent::Hypothesis { transition: \"born\", id: 1, window: 2, start: 3, bin: 4, score: 5.0, support: 6 }\n}\n",
            &["trace_event"],
        ),
        (
            "crates/choir-city/src/planted.rs",
            "pub fn f() -> TraceEvent {\n    TraceEvent::CitySlot { scheme: \"aloha\", gateway: 1, slot: 2, offered: 3, delivered: 4 }\n}\n",
            &["trace_event"],
        ),
        (
            "crates/choir-city/src/planted.rs",
            "pub fn f() -> TraceEvent {\n    TraceEvent::city_slot(CityScheme::Aloha, 1, 2, 3, 4)\n}\n",
            &[],
        ),
        (
            "crates/choir-station/src/planted.rs",
            "pub fn f() { std::thread::spawn(|| ()); }\n",
            &["sync_facade"],
        ),
        (
            "crates/choir-core/src/planted.rs",
            "use std::sync::Arc;\nuse choir_sync::Mutex;\npub fn f(x: Arc<u8>) -> u8 { *x }\n",
            &[],
        ),
        (
            "crates/choir-pool/src/planted.rs",
            "pub fn f(c: &AtomicU64) -> u64 { c.fetch_add(1, Ordering::Relaxed) }\n",
            &["atomic_ordering"],
        ),
        (
            "crates/choir-pool/src/planted.rs",
            "pub fn f(c: &AtomicU64) -> u64 { c.fetch_add(1, Ordering::Relaxed) } // ordering: counter only needs uniqueness\n",
            &[],
        ),
        (
            "crates/choir-mac/src/planted.rs",
            "pub fn f(a: &Mutex<u8>, b: &Mutex<u8>) -> u8 {\n    let g = a.lock();\n    let h = b.lock();\n    *g + *h\n}\n",
            &["lock_scope"],
        ),
        (
            "crates/choir-mac/src/planted.rs",
            "pub fn f(a: &Mutex<u8>, b: &Mutex<u8>) -> u8 {\n    let g = a.lock();\n    // lint:allow(lock_scope) — a always precedes b, see module docs\n    let h = b.lock();\n    *g + *h\n}\n",
            &[],
        ),
        (
            "crates/choir-core/src/planted.rs",
            "pub fn f(p: *const u8) -> u8 { unsafe { *p } }\n",
            &["simd_boundary"],
        ),
        (
            "crates/choir-core/src/planted.rs",
            "use std::arch::x86_64::_mm256_add_pd;\n",
            &["simd_boundary"],
        ),
        (
            "crates/choir-dsp/src/backend/planted.rs",
            "use core::arch::x86_64::_mm256_add_pd;\npub fn f(p: *const u8) -> u8 { unsafe { *p } }\n",
            &[],
        ),
    ];
    let mut failures = 0usize;
    for (i, (path, src, expected)) in plants.iter().enumerate() {
        let file = scan::SourceFile::new(path, src);
        let got: Vec<&str> = rules::check_file(&file).iter().map(|v| v.rule).collect();
        if got != *expected {
            eprintln!("selftest plant #{i} FAILED: expected {expected:?}, got {got:?}");
            failures += 1;
        }
    }
    if failures == 0 {
        println!("xtask selftest: all {} plants behaved", plants.len());
        ExitCode::SUCCESS
    } else {
        eprintln!("xtask selftest: {failures} plant(s) misbehaved");
        ExitCode::FAILURE
    }
}
