//! The Choir-specific lint rules.
//!
//! Each rule scans the preprocessed [`SourceFile`] views from
//! [`crate::scan`] and yields [`Violation`]s. A site can be exempted with
//! a comment marker on the same line or the line above:
//!
//! ```text
//! let n = peaks.first().unwrap(); // lint:allow(unwrap) — peaks checked non-empty above
//! ```
//!
//! The marker requires a reason (at least a few words); a bare
//! `lint:allow(rule)` does not count.

use crate::scan::SourceFile;

/// One rule violation, ready to print as `path:line:col: rule: message`.
#[derive(Debug)]
pub struct Violation {
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    /// Rule identifier (the `lint:allow(...)` key).
    pub rule: &'static str,
    /// Human-readable description of the site.
    pub message: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}:{}: [{}] {}",
            self.path, self.line, self.col, self.rule, self.message
        )
    }
}

/// Crates whose `src/` is considered DSP hot-path code: the all-`f64`
/// invariant and the lossy-cast marker requirement apply here.
const DSP_CRATES: [&str; 2] = ["crates/choir-dsp/", "crates/choir-core/"];

/// True for files the panic-free rule covers: library sources, excluding
/// integration tests, benches, examples and the xtask binary itself.
fn is_library_source(path: &str) -> bool {
    let in_lib_tree = path.starts_with("src/") || {
        path.starts_with("crates/") && path.contains("/src/") && !path.starts_with("crates/xtask/")
    };
    in_lib_tree && !path.contains("/bin/")
}

/// True for files inside the DSP hot-path crates.
fn is_dsp_source(path: &str) -> bool {
    DSP_CRATES.iter().any(|c| path.starts_with(c)) && path.contains("/src/")
}

/// Is `code[i]` the start of token `tok` on an identifier boundary?
/// The preceding character may be a digit (so `1.0f32` still matches
/// `f32`) but not a letter or `_`; the following character must not
/// continue an identifier.
fn token_at(code: &str, i: usize, tok: &str) -> bool {
    let bytes = code.as_bytes();
    if !code[i..].starts_with(tok) {
        return false;
    }
    if i > 0 {
        let p = bytes[i - 1];
        if p.is_ascii_alphabetic() || p == b'_' {
            return false;
        }
    }
    match bytes.get(i + tok.len()) {
        Some(&n) => !(n.is_ascii_alphanumeric() || n == b'_'),
        None => true,
    }
}

/// True for files inside the `choir-sync` facade crate, which is exempt
/// from the concurrency-discipline rules: it is the one place that wraps
/// the std primitives, and its model scheduler necessarily holds its own
/// state lock across condvar waits.
fn is_sync_facade_source(path: &str) -> bool {
    path.starts_with("crates/choir-sync/")
}

/// Runs every rule over one file.
pub fn check_file(f: &SourceFile) -> Vec<Violation> {
    let mut out = Vec::new();
    no_panics(f, &mut out);
    no_f32(f, &mut out);
    no_float_eq(f, &mut out);
    no_lossy_casts(f, &mut out);
    no_hot_allocs(f, &mut out);
    trace_event(f, &mut out);
    sync_facade(f, &mut out);
    atomic_ordering(f, &mut out);
    lock_scope(f, &mut out);
    simd_boundary(f, &mut out);
    out
}

fn push(
    f: &SourceFile,
    out: &mut Vec<Violation>,
    offset: usize,
    rule: &'static str,
    message: String,
) {
    if f.in_test(offset) || f.allowed(offset, rule) {
        return;
    }
    let (line, col) = f.line_col(offset);
    out.push(Violation {
        path: f.path.clone(),
        line,
        col,
        rule,
        message,
    });
}

/// Rule `unwrap`: no `unwrap()` / `expect()` / `panic!` / `todo!` /
/// `unimplemented!` / `dbg!` in non-test library code. A single NaN or
/// empty peak list must surface as a `Result`, not abort symbol decoding.
fn no_panics(f: &SourceFile, out: &mut Vec<Violation>) {
    if !is_library_source(&f.path) {
        return;
    }
    const NEEDLES: [(&str, &str); 6] = [
        (
            ".unwrap()",
            "`.unwrap()` in library code — return a Result or justify with lint:allow",
        ),
        (
            ".expect(",
            "`.expect()` in library code — return a Result or justify with lint:allow",
        ),
        (
            "panic!",
            "`panic!` in library code — return an error or use debug_assert!",
        ),
        ("todo!", "`todo!` in library code"),
        ("unimplemented!", "`unimplemented!` in library code"),
        ("dbg!", "`dbg!` left in library code"),
    ];
    for (needle, msg) in NEEDLES {
        let mut search = 0usize;
        while let Some(rel) = f.code[search..].find(needle) {
            let at = search + rel;
            search = at + needle.len();
            // Identifier boundary on the left: `.unwrap()` needles start
            // with '.', macro needles must not be a suffix (e.g.
            // `prop_assert_panic!`) or a path segment (`std::panic!` still
            // counts, `core::panicking` has no '!').
            if !needle.starts_with('.') {
                let prev = f.code.as_bytes().get(at.wrapping_sub(1)).copied();
                if let Some(p) = prev {
                    if p.is_ascii_alphanumeric() || p == b'_' {
                        continue;
                    }
                }
            }
            push(f, out, at, "unwrap", msg.to_string());
        }
    }
}

/// Rule `f32`: the DSP pipeline is all-`f64`; any `f32` type or literal
/// suffix in `choir-dsp`/`choir-core` is a silent precision downgrade.
fn no_f32(f: &SourceFile, out: &mut Vec<Violation>) {
    if !is_dsp_source(&f.path) {
        return;
    }
    let mut search = 0usize;
    while let Some(rel) = f.code[search..].find("f32") {
        let at = search + rel;
        search = at + 3;
        if token_at(&f.code, at, "f32") {
            push(
                f,
                out,
                at,
                "f32",
                "`f32` in the all-f64 DSP pipeline — silent precision downgrade".to_string(),
            );
        }
    }
}

/// Extracts the token immediately before byte `i` (skipping spaces),
/// walking over identifier/number characters and `.`.
fn token_before(code: &str, mut i: usize) -> &str {
    let bytes = code.as_bytes();
    while i > 0 && bytes[i - 1] == b' ' {
        i -= 1;
    }
    let end = i;
    while i > 0 {
        let b = bytes[i - 1];
        let exp_sign = (b == b'-' || b == b'+') && i >= 2 && matches!(bytes[i - 2], b'e' | b'E');
        if b.is_ascii_alphanumeric() || b == b'_' || b == b'.' || exp_sign {
            i -= 1;
        } else {
            break;
        }
    }
    &code[i..end]
}

/// Extracts the token immediately after byte `i` (skipping spaces and a
/// leading sign).
fn token_after(code: &str, mut i: usize) -> &str {
    let bytes = code.as_bytes();
    while i < bytes.len() && bytes[i] == b' ' {
        i += 1;
    }
    if i < bytes.len() && (bytes[i] == b'-' || bytes[i] == b'+') {
        i += 1;
    }
    let start = i;
    while i < bytes.len() {
        let b = bytes[i];
        if b.is_ascii_alphanumeric() || b == b'_' || b == b'.' {
            i += 1;
        } else {
            break;
        }
    }
    &code[start..i]
}

/// Does `tok` look like a floating-point literal (`0.5`, `1e-9`, `2f64`)?
fn is_float_literal(tok: &str) -> bool {
    let t = tok.trim_end_matches("f64").trim_end_matches("f32");
    if t.is_empty() || !t.starts_with(|c: char| c.is_ascii_digit()) {
        return false;
    }
    let has_dot = t.contains('.');
    let has_exp = t.len() != tok.len() // had an explicit float suffix
        || t.bytes().any(|b| b == b'e' || b == b'E');
    (has_dot || has_exp)
        && t.bytes()
            .all(|b| b.is_ascii_digit() || b"._eE+-".contains(&b))
}

/// Rule `float_cmp`: `==` / `!=` against a floating-point literal. Exact
/// float equality silently breaks under accumulated rounding; compare
/// against a tolerance instead (or justify — e.g. comparing against a
/// sentinel that is assigned, never computed).
fn no_float_eq(f: &SourceFile, out: &mut Vec<Violation>) {
    if !is_library_source(&f.path) {
        return;
    }
    let bytes = f.code.as_bytes();
    for i in 0..bytes.len().saturating_sub(1) {
        let two = &f.code[i..i + 2];
        if two != "==" && two != "!=" {
            continue;
        }
        // Not part of `<=` `>=` `===`-ish runs or `=>`/`=`:
        if i > 0 && b"=!<>+-*/%&|^".contains(&bytes[i - 1]) {
            continue;
        }
        if bytes.get(i + 2) == Some(&b'=') {
            continue;
        }
        let lhs = token_before(&f.code, i);
        let rhs = token_after(&f.code, i + 2);
        if is_float_literal(lhs) || is_float_literal(rhs) {
            push(
                f,
                out,
                i,
                "float_cmp",
                format!("floating-point `{two}` against literal — use a tolerance"),
            );
        }
    }
}

/// Rule `lossy_cast`: in DSP hot paths, `as` casts to a narrower numeric
/// type (`f32`, sub-64-bit integers) silently truncate; each one needs a
/// `lint:allow(lossy_cast)` marker explaining why the range is safe.
fn no_lossy_casts(f: &SourceFile, out: &mut Vec<Violation>) {
    if !is_dsp_source(&f.path) {
        return;
    }
    const NARROW: [&str; 7] = ["f32", "u8", "u16", "u32", "i8", "i16", "i32"];
    let mut search = 0usize;
    while let Some(rel) = f.code[search..].find(" as ") {
        let at = search + rel;
        search = at + 4;
        let target = token_after(&f.code, at + 4);
        if NARROW.contains(&target) {
            push(
                f,
                out,
                at + 4,
                "lossy_cast",
                format!("lossy `as {target}` cast in DSP hot path — mark with lint:allow(lossy_cast) and justify the range"),
            );
        }
    }
}

/// Returns the offset of the `{` opening the body of the first `fn`
/// declared at or after `from` in the code view, if any. Skips braces that
/// appear before the `fn` keyword (e.g. in `#[cfg(...)]` attributes).
fn fn_body_open(code: &str, from: usize) -> Option<usize> {
    let mut search = from;
    let fn_at = loop {
        let rel = code[search..].find("fn")?;
        let at = search + rel;
        search = at + 2;
        if token_at(code, at, "fn") {
            break at;
        }
    };
    code[fn_at..].find('{').map(|r| fn_at + r)
}

/// Returns the offset one past the `}` matching the `{` at `open`.
fn brace_close(code: &str, open: usize) -> Option<usize> {
    let mut depth = 0i64;
    for (k, b) in code.bytes().enumerate().skip(open) {
        match b {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(k + 1);
                }
            }
            _ => {}
        }
    }
    None
}

/// Rule `hot_noalloc`: a `hot:noalloc` comment marker annotates the next
/// function as a steady-state hot-path kernel — the per-candidate refine
/// loop runs it thousands of times per slot, so any per-call heap
/// allocation (`Vec::new`, `vec!`, `.clone()`, `.to_vec()`) melts the
/// allocation-free guarantee the offset-search rewrite established. Scratch
/// must come from the caller, a `choir_dsp::workspace` checkout, or a
/// reused field.
fn no_hot_allocs(f: &SourceFile, out: &mut Vec<Violation>) {
    const NEEDLES: [(&str, &str); 4] = [
        (
            "Vec::new",
            "`Vec::new` inside a hot:noalloc function — take scratch from the workspace arena",
        ),
        (
            "vec!",
            "`vec!` inside a hot:noalloc function — take scratch from the workspace arena",
        ),
        (
            ".clone()",
            "`.clone()` inside a hot:noalloc function — borrow or reuse a buffer instead",
        ),
        (
            ".to_vec()",
            "`.to_vec()` inside a hot:noalloc function — borrow or reuse a buffer instead",
        ),
    ];
    let mut marker = 0usize;
    while let Some(rel) = f.comments[marker..].find("hot:noalloc") {
        let at = marker + rel;
        marker = at + "hot:noalloc".len();
        let Some(open) = fn_body_open(&f.code, marker) else {
            continue;
        };
        let Some(close) = brace_close(&f.code, open) else {
            continue;
        };
        for (needle, msg) in NEEDLES {
            let mut search = open;
            while let Some(rel) = f.code[search..close].find(needle) {
                let hit = search + rel;
                search = hit + needle.len();
                // Identifier boundary on the left for the non-`.` needles,
                // so `my_vec!` / `SmallVec::new`-style idents don't match
                // (a path-qualified `std::vec::Vec::new` still does).
                if !needle.starts_with('.') {
                    let prev = f.code.as_bytes().get(hit.wrapping_sub(1)).copied();
                    if let Some(p) = prev {
                        if p.is_ascii_alphanumeric() || p == b'_' {
                            continue;
                        }
                    }
                }
                push(f, out, hit, "hot_noalloc", msg.to_string());
            }
        }
    }
}

/// Rule `trace_event`: every `DecodeError` *construction* in library code
/// must emit its provenance — call `.traced()` on the fresh value within
/// the same statement — or carry a `lint:allow(trace_event)` marker.
/// `DecodeError::traced()` is the one blessed emission point for the
/// `decode_failed` trace event, so this rule is what keeps the flight
/// recorder in lockstep with the typed error surface: a new error path
/// cannot silently skip the log.
///
/// Pattern positions are not origination sites and are skipped: match
/// arms (`=>` after the variant), rest patterns (`..` inside the field
/// braces, as in `DecodeError::Frame { .. }`), and `==`/`!=` comparisons
/// against an error that already exists.
///
/// The rule's second contract guards the tracker lifecycle log the same
/// way: `TraceEvent::Hypothesis { .. }` may only be built literally
/// inside `crates/choir-trace/` — everyone else goes through the blessed
/// `TraceEvent::hypothesis(...)` constructor, whose typed
/// `HypothesisTransition` argument keeps the transition-tag vocabulary
/// closed. Match arms and rest patterns are skipped as above.
fn trace_event(f: &SourceFile, out: &mut Vec<Violation>) {
    if !is_library_source(&f.path) {
        return;
    }
    const NEEDLE: &str = "DecodeError::";
    let bytes = f.code.as_bytes();
    let mut search = 0usize;
    while let Some(rel) = f.code[search..].find(NEEDLE) {
        let at = search + rel;
        search = at + NEEDLE.len();
        // Identifier boundary on the left (`MyDecodeError::` is not ours).
        if at > 0 {
            let p = bytes[at - 1];
            if p.is_ascii_alphanumeric() || p == b'_' {
                continue;
            }
        }
        // Comparisons test an error that already exists.
        let mut b = at;
        while b > 0 && bytes[b - 1] == b' ' {
            b -= 1;
        }
        if f.code[..b].ends_with("==") || f.code[..b].ends_with("!=") {
            continue;
        }
        // Walk past the variant name and an optional `{ ... }` field block.
        let mut rest = at + NEEDLE.len();
        while rest < bytes.len() && (bytes[rest].is_ascii_alphanumeric() || bytes[rest] == b'_') {
            rest += 1;
        }
        while rest < bytes.len() && bytes[rest].is_ascii_whitespace() {
            rest += 1;
        }
        let mut is_pattern = false;
        if bytes.get(rest) == Some(&b'{') {
            let Some(close) = brace_close(&f.code, rest) else {
                continue;
            };
            // A rest pattern in the field block means a match/if-let
            // pattern, not a construction.
            if f.code[rest..close].contains("..") {
                is_pattern = true;
            }
            rest = close;
            while rest < bytes.len() && bytes[rest].is_ascii_whitespace() {
                rest += 1;
            }
        }
        if f.code[rest..].starts_with("=>") {
            is_pattern = true;
        }
        if is_pattern {
            continue;
        }
        // A construction: `.traced()` must follow before the statement ends.
        let stmt_end = f.code[rest..]
            .find(';')
            .map(|r| rest + r)
            .unwrap_or(f.code.len());
        if !f.code[rest..stmt_end].contains(".traced(") {
            push(
                f,
                out,
                at,
                "trace_event",
                "`DecodeError` constructed without `.traced()` — emit the decode_failed trace event at the origination site".to_string(),
            );
        }
    }

    // Second contract: guarded trace variants only emit through their
    // blessed constructors, which keep their tag vocabularies closed to
    // typed enums. choir-trace itself is the one place the literal is
    // the implementation.
    if f.path.starts_with("crates/choir-trace/") {
        return;
    }
    // (variant needle, constructor to use, vocabulary enum it closes)
    const GUARDED: [(&str, &str, &str); 2] = [
        (
            "TraceEvent::Hypothesis",
            "TraceEvent::hypothesis(...)",
            "HypothesisTransition",
        ),
        (
            "TraceEvent::CitySlot",
            "TraceEvent::city_slot(...)",
            "CityScheme",
        ),
    ];
    for (needle, constructor, vocabulary) in GUARDED {
        let mut search = 0usize;
        while let Some(rel) = f.code[search..].find(needle) {
            let at = search + rel;
            search = at + needle.len();
            // Identifier boundaries on both sides (`MyTraceEvent::` is not
            // ours; the lowercase constructor never matches the needle).
            if at > 0 {
                let p = bytes[at - 1];
                if p.is_ascii_alphanumeric() || p == b'_' {
                    continue;
                }
            }
            let mut rest = at + needle.len();
            if bytes
                .get(rest)
                .is_some_and(|c| c.is_ascii_alphanumeric() || *c == b'_')
            {
                continue;
            }
            while rest < bytes.len() && bytes[rest].is_ascii_whitespace() {
                rest += 1;
            }
            // Only a `{ ... }` field block can construct the variant; a bare
            // path mention (imports, docs) cannot.
            if bytes.get(rest) != Some(&b'{') {
                continue;
            }
            let Some(close) = brace_close(&f.code, rest) else {
                continue;
            };
            // Rest patterns and match arms are destructuring, not emission.
            if f.code[rest..close].contains("..") {
                continue;
            }
            rest = close;
            while rest < bytes.len() && bytes[rest].is_ascii_whitespace() {
                rest += 1;
            }
            if f.code[rest..].starts_with("=>") {
                continue;
            }
            push(
                f,
                out,
                at,
                "trace_event",
                format!(
                    "`{needle}` built literally — emit via `{constructor}` so the tag vocabulary stays closed to `{vocabulary}`"
                ),
            );
        }
    }
}

/// Rule `sync_facade`: library code must reach thread and lock
/// primitives through the `choir_sync` facade, never `std` directly —
/// otherwise the operation is invisible to the model checker and the
/// schedule explorer silently under-covers it. `std::sync::Arc` (and
/// `mpsc`) stay legal: the facade wraps schedulable *blocking/ordering*
/// primitives, not reference counting.
fn sync_facade(f: &SourceFile, out: &mut Vec<Violation>) {
    if !is_library_source(&f.path) || is_sync_facade_source(&f.path) {
        return;
    }
    const NEEDLES: [&str; 9] = [
        "std::thread",
        "std::sync::Mutex",
        "std::sync::MutexGuard",
        "std::sync::RwLock",
        "std::sync::Condvar",
        "std::sync::Once",
        "std::sync::OnceLock",
        "std::sync::Barrier",
        "std::sync::atomic",
    ];
    for needle in NEEDLES {
        let mut search = 0usize;
        while let Some(rel) = f.code[search..].find(needle) {
            let at = search + rel;
            search = at + needle.len();
            if !token_at(&f.code, at, needle) {
                continue; // e.g. `std::sync::Once` inside `OnceLock`
            }
            push(
                f,
                out,
                at,
                "sync_facade",
                format!(
                    "direct `{needle}` in library code — go through the `choir_sync` facade so the model checker can schedule it"
                ),
            );
        }
    }
    // `core::sync::atomic` is the same primitive under another path.
    let mut search = 0usize;
    while let Some(rel) = f.code[search..].find("core::sync::atomic") {
        let at = search + rel;
        search = at + "core::sync::atomic".len();
        push(
            f,
            out,
            at,
            "sync_facade",
            "direct `core::sync::atomic` in library code — go through the `choir_sync` facade so the model checker can schedule it"
                .to_string(),
        );
    }
}

/// Rule `atomic_ordering`: every memory-ordering argument
/// (`Ordering::Relaxed` … `Ordering::SeqCst`) in library code needs a
/// same-line `// ordering:` comment justifying why that strength is
/// sufficient. Orderings are the one part of concurrent code the model
/// checker cannot exercise (it explores schedules under sequential
/// consistency), so the justification carries the weakening argument
/// that the tests cannot.
fn atomic_ordering(f: &SourceFile, out: &mut Vec<Violation>) {
    if !is_library_source(&f.path) || is_sync_facade_source(&f.path) {
        return;
    }
    const VARIANTS: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];
    const NEEDLE: &str = "Ordering::";
    let mut search = 0usize;
    while let Some(rel) = f.code[search..].find(NEEDLE) {
        let at = search + rel;
        search = at + NEEDLE.len();
        // `std::cmp::Ordering` is a different enum entirely.
        if f.code[..at].ends_with("cmp::") {
            continue;
        }
        let variant = token_after(&f.code, at + NEEDLE.len());
        if !VARIANTS.contains(&variant) {
            continue;
        }
        if f.comment_on_line_of(at).contains("ordering:") {
            continue;
        }
        push(
            f,
            out,
            at,
            "atomic_ordering",
            format!(
                "`Ordering::{variant}` without a same-line `// ordering:` justification — state why this strength suffices"
            ),
        );
    }
}

/// Rule `lock_scope`: taking a lock while a `let`-bound lock guard is
/// still in scope nests critical sections, which is how lock-ordering
/// deadlocks are born. Deliberate nesting (e.g. the trace registry→ring
/// hierarchy) carries a `lint:allow(lock_scope)` marker naming the order
/// argument. The scan is lexical: it tracks guards bound by a
/// `let … = ….lock(…);` statement until the end of their enclosing
/// block, and flags any further `.lock(` inside that span (an early
/// `drop(guard)` does not end the span — restructure into narrower
/// scopes instead).
fn lock_scope(f: &SourceFile, out: &mut Vec<Violation>) {
    if !is_library_source(&f.path) || is_sync_facade_source(&f.path) {
        return;
    }
    const NEEDLE: &str = ".lock(";
    // Offsets of every `.lock(` call, plus which are `let`-bound guards.
    let mut sites: Vec<usize> = Vec::new();
    let mut search = 0usize;
    while let Some(rel) = f.code[search..].find(NEEDLE) {
        let at = search + rel;
        search = at + NEEDLE.len();
        sites.push(at);
    }
    let mut flagged: Vec<usize> = Vec::new();
    for &at in &sites {
        // A guard binding: the site's own line starts with `let` (the
        // guard then lives to the end of the enclosing block).
        let line_start = f.code[..at].rfind('\n').map_or(0, |p| p + 1);
        let line = f.code[line_start..at].trim_start();
        if !(line.starts_with("let ") && line.contains('=')) {
            continue;
        }
        // The binding statement ends at the first `;` at brace depth 0
        // (closure bodies inside the initialiser stay balanced).
        let bytes = f.code.as_bytes();
        let mut depth = 0i64;
        let mut stmt_end = f.code.len();
        let mut scope_end = f.code.len();
        for (k, &b) in bytes.iter().enumerate().skip(at) {
            match b {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth < 0 {
                        scope_end = k;
                        break;
                    }
                }
                b';' if depth == 0 && stmt_end == f.code.len() => stmt_end = k,
                _ => {}
            }
        }
        for &inner in &sites {
            if inner > stmt_end && inner < scope_end && !flagged.contains(&inner) {
                flagged.push(inner);
                let (outer_line, _) = f.line_col(at);
                push(
                    f,
                    out,
                    inner,
                    "lock_scope",
                    format!(
                        "`.lock()` while the guard bound on line {outer_line} is still held — nested critical sections need a lint:allow(lock_scope) lock-order argument"
                    ),
                );
            }
        }
    }
}

/// The one directory where `unsafe` and CPU intrinsics are sanctioned:
/// the SIMD backend leaves, whose safety argument (runtime feature
/// detection before dispatch, slice-bounded pointer arithmetic) lives in
/// `choir_dsp::backend`'s module docs.
const SIMD_BOUNDARY: &str = "crates/choir-dsp/src/backend/";

/// Rule `simd_boundary`: the `unsafe`, `std::arch` and `core::arch`
/// tokens are banned in library code outside [`SIMD_BOUNDARY`]. The
/// workspace already denies `unsafe_code` via rustc, but that lint can
/// be re-allowed by any inner attribute; this rule pins *where* such an
/// attribute may appear, so the trusted surface cannot quietly spread
/// beyond the two backend leaf files reviewers audit.
fn simd_boundary(f: &SourceFile, out: &mut Vec<Violation>) {
    if !is_library_source(&f.path) || f.path.starts_with(SIMD_BOUNDARY) {
        return;
    }
    let mut search = 0usize;
    while let Some(rel) = f.code[search..].find("unsafe") {
        let at = search + rel;
        search = at + "unsafe".len();
        if !token_at(&f.code, at, "unsafe") {
            continue;
        }
        push(
            f,
            out,
            at,
            "simd_boundary",
            format!(
                "`unsafe` outside the sanctioned SIMD boundary ({SIMD_BOUNDARY}) — keep the trusted surface in the backend leaves"
            ),
        );
    }
    for needle in ["std::arch", "core::arch"] {
        let mut search = 0usize;
        while let Some(rel) = f.code[search..].find(needle) {
            let at = search + rel;
            search = at + needle.len();
            push(
                f,
                out,
                at,
                "simd_boundary",
                format!(
                    "`{needle}` outside the sanctioned SIMD boundary ({SIMD_BOUNDARY}) — intrinsics belong in the backend leaves"
                ),
            );
        }
    }
}

/// Rule `missing_docs_gate` + `lints_inherit`: every library crate must
/// hard-deny missing docs and inherit the workspace lint table. Returns
/// violations with pseudo-positions (line 1).
pub fn check_crate_gates(
    crate_dir: &str,
    lib_rs: Option<&str>,
    cargo_toml: &str,
) -> Vec<Violation> {
    let mut out = Vec::new();
    if let Some(lib) = lib_rs {
        if !lib.contains("#![deny(missing_docs)]") {
            out.push(Violation {
                path: format!("{crate_dir}/src/lib.rs"),
                line: 1,
                col: 1,
                rule: "missing_docs_gate",
                message: "library crate must declare `#![deny(missing_docs)]`".to_string(),
            });
        }
    }
    let has_inherit = cargo_toml
        .split("[lints]")
        .nth(1)
        .is_some_and(|after| after.trim_start().starts_with("workspace = true"));
    if !has_inherit {
        out.push(Violation {
            path: format!("{crate_dir}/Cargo.toml"),
            line: 1,
            col: 1,
            rule: "lints_inherit",
            message: "crate must inherit the workspace lint table (`[lints]\\nworkspace = true`)"
                .to_string(),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::SourceFile;

    fn violations(path: &str, src: &str) -> Vec<String> {
        let f = SourceFile::new(path, src);
        check_file(&f).iter().map(|v| v.rule.to_string()).collect()
    }

    fn violations_full(path: &str, src: &str) -> Vec<Violation> {
        let f = SourceFile::new(path, src);
        check_file(&f)
    }

    #[test]
    fn planted_unwrap_is_caught() {
        // The acceptance-criteria self-test: a deliberately planted
        // `unwrap()` in library code must be flagged...
        let v = violations(
            "crates/choir-dsp/src/planted.rs",
            "pub fn f(x: Option<u8>) -> u8 { x.unwrap() }\n",
        );
        assert_eq!(v, ["unwrap"]);
        // ...but not in test code, and not when allowlisted with a reason.
        assert!(violations(
            "crates/choir-dsp/src/planted.rs",
            "#[cfg(test)]\nmod tests { fn f(x: Option<u8>) -> u8 { x.unwrap() } }\n",
        )
        .is_empty());
        assert!(violations(
            "crates/choir-dsp/src/planted.rs",
            "pub fn f(x: Option<u8>) -> u8 {\n    // lint:allow(unwrap) — caller guarantees Some\n    x.unwrap()\n}\n",
        )
        .is_empty());
    }

    #[test]
    fn planted_f32_is_caught() {
        let v = violations(
            "crates/choir-dsp/src/planted.rs",
            "pub fn f(x: f32) -> f64 { x as f64 }\n",
        );
        assert_eq!(v, ["f32"]);
        // f32 outside the DSP crates is not this rule's business.
        assert!(violations(
            "crates/choir-mac/src/planted.rs",
            "pub fn f(x: f32) -> f64 { x as f64 }\n",
        )
        .is_empty());
        // Suffixed literal form.
        let v = violations(
            "crates/choir-core/src/planted.rs",
            "pub const A: f64 = 1.0f32 as f64;\n",
        );
        assert!(v.contains(&"f32".to_string()));
    }

    #[test]
    fn panic_and_expect_are_caught() {
        let v = violations(
            "crates/lora-phy/src/planted.rs",
            "pub fn f(x: Option<u8>) { let _ = x.expect(\"msg\"); panic!(\"boom\"); }\n",
        );
        assert_eq!(v, ["unwrap", "unwrap"]);
        // `debug_assert!` and custom idents containing "panic" do not count.
        assert!(violations(
            "crates/lora-phy/src/planted.rs",
            "pub fn f(x: u8) { debug_assert!(x > 0); no_panic!(x); }\n",
        )
        .is_empty());
    }

    #[test]
    fn float_eq_against_literal_is_caught() {
        let v = violations(
            "crates/choir-mac/src/planted.rs",
            "pub fn f(x: f64) -> bool { x == 0.3 }\n",
        );
        assert_eq!(v, ["float_cmp"]);
        let v = violations(
            "crates/choir-mac/src/planted.rs",
            "pub fn f(x: f64) -> bool { 1e-9 != x }\n",
        );
        assert_eq!(v, ["float_cmp"]);
        // Integer comparisons, <=, >= and == 0 are fine.
        assert!(violations(
            "crates/choir-mac/src/planted.rs",
            "pub fn f(x: u8) -> bool { x == 3 && x <= 250 && x as f64 >= 2.5 }\n",
        )
        .is_empty());
    }

    #[test]
    fn lossy_casts_need_markers_in_dsp_crates() {
        let v = violations(
            "crates/choir-dsp/src/planted.rs",
            "pub fn f(x: f64) -> u32 { x as u32 }\n",
        );
        assert_eq!(v, ["lossy_cast"]);
        assert!(violations(
            "crates/choir-dsp/src/planted.rs",
            "pub fn f(x: f64) -> u32 {\n    x as u32 // lint:allow(lossy_cast) — x is a bin index < 2^20\n}\n",
        )
        .is_empty());
        // Widening casts are fine.
        assert!(violations(
            "crates/choir-dsp/src/planted.rs",
            "pub fn f(x: u32) -> f64 { x as f64 }\n",
        )
        .is_empty());
    }

    #[test]
    fn hot_noalloc_bans_allocations_in_annotated_fns() {
        // All four banned constructs inside one annotated function.
        let v = violations(
            "crates/choir-dsp/src/planted.rs",
            "// hot:noalloc — per-candidate kernel\npub fn f(x: &[u8]) -> Vec<u8> {\n    let a: Vec<u8> = Vec::new();\n    let b = vec![0u8; 4];\n    let c = a.clone();\n    let d = x.to_vec();\n    let _ = (b, c, d);\n    a\n}\n",
        );
        assert_eq!(
            v,
            ["hot_noalloc", "hot_noalloc", "hot_noalloc", "hot_noalloc"]
        );
        // The same body without the marker is not this rule's business.
        assert!(violations(
            "crates/choir-dsp/src/planted.rs",
            "pub fn f(x: &[u8]) -> Vec<u8> { x.to_vec() }\n",
        )
        .is_empty());
        // Allocations in a *following* unannotated function stay legal.
        assert!(violations(
            "crates/choir-dsp/src/planted.rs",
            "// hot:noalloc — kernel\npub fn hot(x: &mut [u8]) { x[0] = 1; }\npub fn cold(x: &[u8]) -> Vec<u8> { x.to_vec() }\n",
        )
        .is_empty());
        // An allowlisted site with a reason is exempt.
        assert!(violations(
            "crates/choir-dsp/src/planted.rs",
            "// hot:noalloc — kernel\npub fn f(x: &[u8]) -> Vec<u8> {\n    // lint:allow(hot_noalloc) — one-time setup outside the probe loop\n    x.to_vec()\n}\n",
        )
        .is_empty());
        // Identifier boundaries: `my_vec!` and `SmallVec::new` don't match.
        assert!(violations(
            "crates/choir-dsp/src/planted.rs",
            "// hot:noalloc — kernel\npub fn f() { my_vec!(); let _ = SmallVec::new(); }\n",
        )
        .is_empty());
    }

    #[test]
    fn decode_error_constructions_need_traced() {
        // Bare construction: flagged.
        let v = violations(
            "crates/choir-core/src/planted.rs",
            "pub fn f() -> Result<(), DecodeError> {\n    Err(DecodeError::SicStalled { window: 3, relative_residual: 0.5 })\n}\n",
        );
        assert_eq!(v, ["trace_event"]);
        // Construction with `.traced()` in the same statement: clean.
        assert!(violations(
            "crates/choir-core/src/planted.rs",
            "pub fn f() -> Result<(), DecodeError> {\n    Err(DecodeError::SicStalled { window: 3, relative_residual: 0.5 }.traced())\n}\n",
        )
        .is_empty());
        // Match arms, rest patterns and comparisons are not origination
        // sites.
        assert!(violations(
            "crates/choir-core/src/planted.rs",
            "pub fn kind(e: &DecodeError) -> &'static str {\n    match e {\n        DecodeError::TruncatedSlot { slot_start, needed, have } => \"truncated\",\n        DecodeError::Frame { .. } => \"frame\",\n    }\n}\npub fn same(a: DecodeError, b: DecodeError) -> bool { a == b }\n",
        )
        .is_empty());
        // An allowlisted site with a reason is exempt.
        assert!(violations(
            "crates/choir-core/src/planted.rs",
            "pub fn f() -> DecodeError {\n    // lint:allow(trace_event) — probe error, never surfaced to callers\n    DecodeError::NoUsersFound { window_hits: 0 }\n}\n",
        )
        .is_empty());
        // Test code is exempt wholesale.
        assert!(violations(
            "crates/choir-core/src/planted.rs",
            "#[cfg(test)]\nmod tests { fn f() -> DecodeError { DecodeError::NoUsersFound { window_hits: 0 } } }\n",
        )
        .is_empty());
    }

    #[test]
    fn hypothesis_literals_need_blessed_constructor() {
        // Literal construction outside choir-trace: flagged.
        let v = violations(
            "crates/choir-station/src/planted.rs",
            "pub fn f() -> TraceEvent {\n    TraceEvent::Hypothesis { transition: \"born\", id: 1, window: 2, start: 3, bin: 4, score: 5.0, support: 6 }\n}\n",
        );
        assert_eq!(v, ["trace_event"]);
        // The blessed constructor is the sanctioned path.
        assert!(violations(
            "crates/choir-station/src/planted.rs",
            "pub fn f() -> TraceEvent {\n    TraceEvent::hypothesis(HypothesisTransition::Born, 1, 2, 3, 4, 5.0, 6)\n}\n",
        )
        .is_empty());
        // Match arms and rest patterns destructure, they don't emit.
        assert!(violations(
            "crates/choir-station/src/planted.rs",
            "pub fn kind(e: &TraceEvent) -> &'static str {\n    match e {\n        TraceEvent::Hypothesis { .. } => \"hypothesis\",\n        TraceEvent::Hypothesis { transition, id, window, start, bin, score, support } => transition,\n        _ => \"other\",\n    }\n}\n",
        )
        .is_empty());
        // Inside choir-trace the literal *is* the implementation.
        assert!(violations(
            "crates/choir-trace/src/planted.rs",
            "pub fn f() -> TraceEvent {\n    TraceEvent::Hypothesis { transition: \"born\", id: 1, window: 2, start: 3, bin: 4, score: 5.0, support: 6 }\n}\n",
        )
        .is_empty());
    }

    #[test]
    fn city_slot_literals_need_blessed_constructor() {
        // Literal construction outside choir-trace: flagged, and the
        // message names the city_slot constructor and CityScheme.
        let v = violations_full(
            "crates/choir-city/src/planted.rs",
            "pub fn f() -> TraceEvent {\n    TraceEvent::CitySlot { scheme: \"aloha\", gateway: 1, slot: 2, offered: 3, delivered: 4 }\n}\n",
        );
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "trace_event");
        assert!(v[0].message.contains("TraceEvent::city_slot"), "{v:?}");
        assert!(v[0].message.contains("CityScheme"), "{v:?}");
        // The blessed constructor is the sanctioned path.
        assert!(violations(
            "crates/choir-city/src/planted.rs",
            "pub fn f() -> TraceEvent {\n    TraceEvent::city_slot(CityScheme::Aloha, 1, 2, 3, 4)\n}\n",
        )
        .is_empty());
        // Destructuring still passes.
        assert!(violations(
            "crates/choir-city/src/planted.rs",
            "pub fn g(e: &TraceEvent) -> bool {\n    matches!(e, TraceEvent::CitySlot { .. })\n}\n",
        )
        .is_empty());
        // Inside choir-trace the literal *is* the implementation.
        assert!(violations(
            "crates/choir-trace/src/planted.rs",
            "pub fn f() -> TraceEvent {\n    TraceEvent::CitySlot { scheme: \"aloha\", gateway: 1, slot: 2, offered: 3, delivered: 4 }\n}\n",
        )
        .is_empty());
    }

    #[test]
    fn direct_std_sync_is_caught_outside_the_facade() {
        let v = violations(
            "crates/choir-core/src/planted.rs",
            "use std::sync::Mutex;\npub fn f(m: &Mutex<u8>) -> u8 { *m.lock().unwrap_or_else(|p| p.into_inner()) }\n",
        );
        assert!(v.contains(&"sync_facade".to_string()), "got {v:?}");
        let v = violations(
            "crates/choir-station/src/planted.rs",
            "pub fn f() { std::thread::spawn(|| ()); }\n",
        );
        assert_eq!(v, ["sync_facade"]);
        // The facade itself, Arc, and test code are all exempt.
        assert!(violations(
            "crates/choir-sync/src/planted.rs",
            "pub fn f() { std::thread::spawn(|| ()); }\n",
        )
        .is_empty());
        assert!(violations(
            "crates/choir-core/src/planted.rs",
            "use std::sync::Arc;\nuse choir_sync::Mutex;\npub fn f(x: Arc<u8>) -> u8 { *x }\n",
        )
        .is_empty());
        assert!(violations(
            "crates/choir-core/src/planted.rs",
            "#[cfg(test)]\nmod tests { use std::sync::Mutex; fn f() { let _ = Mutex::new(0u8); } }\n",
        )
        .is_empty());
    }

    #[test]
    fn atomic_orderings_need_same_line_justification() {
        let v = violations(
            "crates/choir-pool/src/planted.rs",
            "pub fn f(c: &AtomicU64) -> u64 { c.load(Ordering::Relaxed) }\n",
        );
        assert_eq!(v, ["atomic_ordering"]);
        assert!(violations(
            "crates/choir-pool/src/planted.rs",
            "pub fn f(c: &AtomicU64) -> u64 { c.load(Ordering::Relaxed) } // ordering: monotonic counter read\n",
        )
        .is_empty());
        // `std::cmp::Ordering` and non-variant paths are not this rule's
        // business; a comment on the *previous* line does not count.
        assert!(violations(
            "crates/choir-pool/src/planted.rs",
            "pub fn f(a: u8, b: u8) -> bool { a.cmp(&b) == std::cmp::Ordering::Less }\n",
        )
        .is_empty());
        let v = violations(
            "crates/choir-pool/src/planted.rs",
            "// ordering: stale comment on the wrong line\npub fn f(c: &AtomicU64) -> u64 { c.load(Ordering::Acquire) }\n",
        );
        assert_eq!(v, ["atomic_ordering"]);
    }

    #[test]
    fn nested_lock_guards_are_caught() {
        let v = violations(
            "crates/choir-mac/src/planted.rs",
            "pub fn f(a: &Mutex<u8>, b: &Mutex<u8>) -> u8 {\n    let g = a.lock();\n    let h = b.lock();\n    *g + *h\n}\n",
        );
        assert_eq!(v, ["lock_scope"]);
        // Sequential (non-overlapping) guards and lone temporaries are fine.
        assert!(violations(
            "crates/choir-mac/src/planted.rs",
            "pub fn f(a: &Mutex<u8>) -> u8 {\n    let g = a.lock();\n    *g\n}\npub fn g2(b: &Mutex<u8>) -> u8 { *b.lock() }\n",
        )
        .is_empty());
        // A justified nesting (the registry→ring pattern) is exempt.
        assert!(violations(
            "crates/choir-mac/src/planted.rs",
            "pub fn f(a: &Mutex<u8>, b: &Mutex<u8>) -> u8 {\n    let g = a.lock();\n    // lint:allow(lock_scope) — a always precedes b, see module docs\n    let h = b.lock();\n    *g + *h\n}\n",
        )
        .is_empty());
        // Guards whose scope closed before the next lock don't count.
        assert!(violations(
            "crates/choir-mac/src/planted.rs",
            "pub fn f(a: &Mutex<u8>, b: &Mutex<u8>) -> u8 {\n    let x = { let g = a.lock(); *g };\n    let h = b.lock();\n    x + *h\n}\n",
        )
        .is_empty());
    }

    #[test]
    fn unsafe_and_arch_are_confined_to_the_simd_boundary() {
        // `unsafe` in ordinary library code: flagged.
        let v = violations(
            "crates/choir-core/src/planted.rs",
            "pub fn f(p: *const u8) -> u8 { unsafe { *p } }\n",
        );
        assert_eq!(v, ["simd_boundary"]);
        // Intrinsic paths are flagged even without an `unsafe` block.
        let v = violations(
            "crates/choir-station/src/planted.rs",
            "use std::arch::x86_64::_mm256_add_pd;\n",
        );
        assert_eq!(v, ["simd_boundary"]);
        let v = violations(
            "crates/lora-phy/src/planted.rs",
            "use core::arch::aarch64::vaddq_f64;\n",
        );
        assert_eq!(v, ["simd_boundary"]);
        // The backend directory itself is the sanctioned exception.
        assert!(violations(
            "crates/choir-dsp/src/backend/planted.rs",
            "use std::arch::x86_64::_mm256_add_pd;\npub fn f(p: *const u8) -> u8 { unsafe { *p } }\n",
        )
        .is_empty());
        // Identifier boundaries: idents merely containing the word are
        // not the keyword.
        assert!(violations(
            "crates/choir-core/src/planted.rs",
            "pub fn f(unsafe_marker: u8) -> u8 { unsafe_marker }\n",
        )
        .is_empty());
        // Test code and justified sites are exempt like everywhere else.
        assert!(violations(
            "crates/choir-core/src/planted.rs",
            "#[cfg(test)]\nmod tests { pub fn f(p: *const u8) -> u8 { unsafe { *p } } }\n",
        )
        .is_empty());
    }

    #[test]
    fn crate_gates() {
        let v = check_crate_gates(
            "crates/choir-dsp",
            Some("#![deny(missing_docs)]\n"),
            "[package]\n[lints]\nworkspace = true\n",
        );
        assert!(v.is_empty());
        let v = check_crate_gates(
            "crates/choir-dsp",
            Some("#![warn(missing_docs)]\n"),
            "[package]\n",
        );
        let rules: Vec<_> = v.iter().map(|x| x.rule).collect();
        assert_eq!(rules, ["missing_docs_gate", "lints_inherit"]);
    }

    #[test]
    fn bin_targets_are_exempt_from_unwrap_rule() {
        assert!(violations(
            "crates/choir-testbed/src/bin/figures.rs",
            "fn main() { std::env::args().next().unwrap(); }\n",
        )
        .is_empty());
    }
}
