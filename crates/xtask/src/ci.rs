//! `cargo xtask ci` — the repository's merge gates as one tested binary.
//!
//! CI used to enforce the bench floors with inline Python heredocs pasted
//! into the workflow; the logic lived untested in YAML and drifted from
//! the benches it judged. Each gate is now a subcommand that owns the
//! whole sequence:
//!
//! * `cargo xtask ci bench-smoke` — snapshot the committed
//!   `BENCH_kernel.json` reference, run the `batch_decode` bench (which
//!   overwrites the file), then enforce the slots/sec floors (≥ 80 % of
//!   reference, for both the default and the scalar-forced DSP backend),
//!   cross-thread bit-identity, and cross-backend bit-identity. The
//!   measured vector-backend throughput is recorded but not floored —
//!   the speed-up depends on the host ISA.
//! * `cargo xtask ci station-soak` — same dance with
//!   `BENCH_station.json` and the `station_soak` bench, plus the
//!   shed-free nominal profile, the < 5 % tracing-overhead budget, and
//!   the unslotted profile's gates: < 10 % online-detection overhead
//!   (free-running vs an explicit schedule at the same window-floored
//!   starts) and zero missed slot decodes.
//! * `cargo xtask ci model-check` — run the schedule-exploring
//!   concurrency suites (`choir-sync` smoke plus the pool / trace /
//!   profile invariants) under `--cfg choir_model`; they compile to
//!   nothing in a plain `cargo test`, so this gate is their only
//!   executor.
//!
//! The JSON reading is a deliberately tiny key scanner (the workspace has
//! no serde): every key the gates consult is unique within its file, so
//! `"key": value` extraction is unambiguous. The gate predicates are pure
//! functions over (reference, fresh-JSON) and unit-tested against
//! synthetic fixtures for the pass, regression, divergence and shed
//! cases — the checks are code under test, not workflow prose.

use std::process::ExitCode;

/// Fraction of the committed reference throughput a fresh run must reach.
const FLOOR_FRAC: f64 = 0.8;
/// Maximum slots/sec cost of `Outcome`-level tracing, in percent.
const TRACE_OVERHEAD_LIMIT_PCT: f64 = 5.0;
/// Ceiling on what the multi-hypothesis tracker may cost in free-running
/// mode versus an explicit schedule at the same window-floored starts
/// (identical decode work, so the gap is the detection machinery alone).
const ASYNC_DETECT_OVERHEAD_LIMIT_PCT: f64 = 10.0;

/// Entry point for `cargo xtask ci <gate>`.
pub fn run(args: &[String]) -> ExitCode {
    match args.first().map(String::as_str) {
        Some("bench-smoke") => gate("BENCH_kernel.json", "batch_decode", check_kernel),
        Some("station-soak") => gate("BENCH_station.json", "station_soak", check_station),
        Some("city-capacity") => gate("BENCH_city.json", "city_capacity", check_city),
        Some("model-check") => model_check(),
        _ => {
            eprintln!("usage: cargo xtask ci <bench-smoke|station-soak|city-capacity|model-check>");
            eprintln!(
                "  bench-smoke   run batch_decode, enforce kernel slots/sec floor + bit-identity"
            );
            eprintln!("  station-soak  run station_soak, enforce station floor + shed-free + trace/detect overhead + unslotted slots");
            eprintln!("  city-capacity run city_capacity, enforce per-scheme capacity floors + Choir>=slotted + 1-vs-N-thread transcript identity");
            eprintln!("  model-check   run every schedule-explored concurrency suite under --cfg choir_model");
            ExitCode::from(2)
        }
    }
}

/// The model-checked concurrency suites: (package, test target). Each
/// compiles to a no-op without `--cfg choir_model`, so they need their
/// own gate — plain `cargo test` never exercises them.
const MODEL_SUITES: [(&str, &str); 5] = [
    ("choir-sync", "model_smoke"),
    ("choir-pool", "model"),
    ("choir-trace", "model"),
    ("choir-dsp", "model"),
    ("choir-core", "model"),
];

/// Appends `--cfg choir_model` to an inherited `RUSTFLAGS` value
/// (idempotent, preserves existing flags).
fn with_model_cfg(rustflags: &str) -> String {
    if rustflags.contains("--cfg choir_model") {
        return rustflags.to_string();
    }
    if rustflags.is_empty() {
        "--cfg choir_model".to_string()
    } else {
        format!("{rustflags} --cfg choir_model")
    }
}

/// `cargo xtask ci model-check` — run every model-checked suite (the
/// `choir-sync` scheduler smoke tests plus the pool / trace / profile
/// invariant suites) with the deterministic schedule explorer enabled.
fn model_check() -> ExitCode {
    let root = crate::workspace_root();
    let rustflags = with_model_cfg(&std::env::var("RUSTFLAGS").unwrap_or_default());
    for (pkg, test) in MODEL_SUITES {
        println!("ci: model-check {pkg} --test {test}");
        let status = std::process::Command::new("cargo")
            .args(["test", "-p", pkg, "--test", test])
            .env("RUSTFLAGS", &rustflags)
            .current_dir(&root)
            .status();
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("ci: model suite {pkg} --test {test} exited with {s}");
                return ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!("ci: could not launch cargo test for {pkg}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    println!("ci: model-check gate passed — all schedule-explored suites green");
    ExitCode::SUCCESS
}

/// Shared gate skeleton: snapshot the committed bench JSON (the
/// reference), run the bench (it rewrites the JSON), re-read, and apply
/// the pure checks over (committed, fresh). Each check extracts the
/// reference keys it gates on itself.
fn gate(json_name: &str, bench: &str, check: fn(&str, &str) -> Vec<String>) -> ExitCode {
    let root = crate::workspace_root();
    let path = root.join(json_name);
    let committed = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("ci: cannot read committed {json_name}: {e}");
            return ExitCode::FAILURE;
        }
    };

    let status = std::process::Command::new("cargo")
        .args(["bench", "-p", "choir-bench", "--bench", bench])
        .current_dir(&root)
        .status();
    match status {
        Ok(s) if s.success() => {}
        Ok(s) => {
            eprintln!("ci: cargo bench --bench {bench} exited with {s}");
            return ExitCode::FAILURE;
        }
        Err(e) => {
            eprintln!("ci: could not launch cargo bench --bench {bench}: {e}");
            return ExitCode::FAILURE;
        }
    }

    let fresh = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("ci: bench did not leave a readable {json_name}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let failures = check(&committed, &fresh);
    if failures.is_empty() {
        println!("ci: {bench} gate passed");
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("ci: FAIL: {f}");
        }
        ExitCode::FAILURE
    }
}

/// Applies the ≥ `FLOOR_FRAC` throughput floor for one JSON key:
/// extracts the committed reference and the fresh measurement, and
/// pushes a failure on a missing key or a below-floor reading.
fn floor_check(label: &str, key: &str, committed: &str, fresh: &str, out: &mut Vec<String>) {
    let Some(reference) = json_f64(committed, key) else {
        out.push(format!("committed bench JSON has no numeric {key}"));
        return;
    };
    let Some(sps) = json_f64(fresh, key) else {
        out.push(format!("fresh bench JSON has no numeric {key}"));
        return;
    };
    let floor = FLOOR_FRAC * reference;
    println!("ci: {label}: fresh {sps:.4} slots/s, floor {floor:.4} (reference {reference:.4})");
    if sps < floor {
        out.push(format!(
            "{label} slots/sec regression >20%: {sps:.4} < floor {floor:.4} (reference {reference:.4})"
        ));
    }
}

/// Applies the ≤ `1/FLOOR_FRAC` ceiling for one stage-time key (lower
/// is better): fails on a missing key or when the fresh reading exceeds
/// the committed reference by more than the same >20 % margin the
/// throughput floors allow.
fn ceiling_check(label: &str, key: &str, committed: &str, fresh: &str, out: &mut Vec<String>) {
    let Some(reference) = json_f64(committed, key) else {
        out.push(format!("committed bench JSON has no numeric {key}"));
        return;
    };
    let Some(secs) = json_f64(fresh, key) else {
        out.push(format!("fresh bench JSON has no numeric {key}"));
        return;
    };
    let ceiling = reference / FLOOR_FRAC;
    println!("ci: {label}: fresh {secs:.4} s, ceiling {ceiling:.4} (reference {reference:.4})");
    if secs > ceiling {
        out.push(format!(
            "{label} stage-time regression >20%: {secs:.4} > ceiling {ceiling:.4} (reference {reference:.4})"
        ));
    }
}

/// Gate predicates for `BENCH_kernel.json` (the batch-decode kernel
/// bench): throughput floors for the default, scalar-forced and
/// blocked-width decode paths, a stage-time ceiling on the single-thread
/// refine stage, cross-thread bit-identity, cross-backend bit-identity,
/// and cross-block-width bit-identity. The per-backend vector slots/sec
/// is recorded (for the committed artifact) but not floored — vector
/// speed-ups vary by host ISA.
fn check_kernel(committed: &str, fresh: &str) -> Vec<String> {
    let mut out = Vec::new();
    floor_check("kernel", "after_slots_per_sec", committed, fresh, &mut out);
    floor_check(
        "kernel scalar backend",
        "scalar_slots_per_sec",
        committed,
        fresh,
        &mut out,
    );
    floor_check(
        "kernel blocked width",
        "blocked_slots_per_sec",
        committed,
        fresh,
        &mut out,
    );
    ceiling_check(
        "kernel refine stage",
        "refine_s",
        committed,
        fresh,
        &mut out,
    );
    if let (Some(name), Some(sps)) = (
        json_value(fresh, "vector_backend"),
        json_f64(fresh, "vector_slots_per_sec"),
    ) {
        let name = name.trim_matches('"');
        println!("ci: vector backend {name}: {sps:.4} slots/s (recorded, not floored)");
    }
    match json_bool(fresh, "outputs_bit_identical") {
        Some(true) => {}
        Some(false) => out.push("kernel outputs diverged across thread counts".to_string()),
        None => out.push("fresh BENCH_kernel.json has no outputs_bit_identical".to_string()),
    }
    match json_bool(fresh, "backends_bit_identical") {
        Some(true) => {}
        Some(false) => out.push("kernel outputs diverged across DSP backends".to_string()),
        None => out.push("fresh BENCH_kernel.json has no backends_bit_identical".to_string()),
    }
    match json_bool(fresh, "widths_bit_identical") {
        Some(true) => {}
        Some(false) => {
            out.push("kernel outputs diverged across candidate-block widths".to_string())
        }
        None => out.push("fresh BENCH_kernel.json has no widths_bit_identical".to_string()),
    }
    out
}

/// Gate predicates for `BENCH_station.json` (the streaming soak):
/// throughput floor, shed-free nominal profile, batch/streaming
/// bit-identity, and the tracing-overhead budget.
fn check_station(committed: &str, json: &str) -> Vec<String> {
    let mut out = Vec::new();
    floor_check("station", "slots_per_sec", committed, json, &mut out);
    match json_u64(json, "nominal_shed") {
        Some(0) => {}
        Some(n) => out.push(format!("station shed work under nominal load ({n} events)")),
        None => out.push("fresh BENCH_station.json has no nominal_shed".to_string()),
    }
    match json_bool(json, "outputs_bit_identical") {
        Some(true) => {}
        Some(false) => out.push("streaming output diverged from batch decode".to_string()),
        None => out.push("fresh BENCH_station.json has no outputs_bit_identical".to_string()),
    }
    match json_f64(json, "trace_overhead_pct") {
        Some(pct) if pct <= TRACE_OVERHEAD_LIMIT_PCT => {}
        Some(pct) => out.push(format!(
            "Outcome-level tracing costs {pct:.2}% slots/sec (limit {TRACE_OVERHEAD_LIMIT_PCT}%)"
        )),
        None => out.push("fresh BENCH_station.json has no trace_overhead_pct".to_string()),
    }
    match json_f64(json, "async_detect_overhead_pct") {
        Some(pct) if pct <= ASYNC_DETECT_OVERHEAD_LIMIT_PCT => {}
        Some(pct) => out.push(format!(
            "online detection costs {pct:.2}% slots/sec over an explicit schedule \
             at the same window-floored starts (limit {ASYNC_DETECT_OVERHEAD_LIMIT_PCT}%)"
        )),
        None => out.push("fresh BENCH_station.json has no async_detect_overhead_pct".to_string()),
    }
    match json_u64(json, "unslotted_slot_miscount") {
        Some(0) => {}
        Some(n) => out.push(format!(
            "free-running tracker missed a slot's decode in {n} rounds"
        )),
        None => out.push("fresh BENCH_station.json has no unslotted_slot_miscount".to_string()),
    }
    out
}

/// Minimum city-simulation scale the capacity gate accepts: the paper's
/// urban claim is only reproduced at ≥ 10⁶ clients over ≥ 10² gateways,
/// so a bench quietly shrunk below that must fail, not pass faster.
const CITY_MIN_CLIENTS: u64 = 1_000_000;
const CITY_MIN_GATEWAYS: u64 = 100;

/// Applies the ≥ `FLOOR_FRAC` delivered-frames/sec floor for one city
/// scheme. The city bench is deterministic (integer closed-form model),
/// so in practice fresh == committed; the 20 % allowance only matters
/// when the model itself is deliberately retuned.
fn city_floor_check(tag: &str, committed: &str, fresh: &str, out: &mut Vec<String>) {
    let key = format!("{tag}_peak_fps");
    let Some(reference) = json_f64(committed, &key) else {
        out.push(format!("committed bench JSON has no numeric {key}"));
        return;
    };
    let Some(fps) = json_f64(fresh, &key) else {
        out.push(format!("fresh bench JSON has no numeric {key}"));
        return;
    };
    let floor = FLOOR_FRAC * reference;
    println!(
        "ci: city {tag}: fresh {fps:.4} delivered-fps, floor {floor:.4} (reference {reference:.4})"
    );
    if fps < floor {
        out.push(format!(
            "city {tag} delivered-fps regression >20%: {fps:.4} < floor {floor:.4} (reference {reference:.4})"
        ));
    }
}

/// Gate predicates for `BENCH_city.json` (the city-scale capacity
/// curves): per-scheme peak delivered-fps floors, the paper's headline
/// ordering (Choir ≥ slotted ALOHA at the highest offered load), the
/// 1-vs-4-worker transcript identity, and the minimum urban scale.
fn check_city(committed: &str, fresh: &str) -> Vec<String> {
    let mut out = Vec::new();
    for tag in ["aloha", "slotted", "choir", "ss5g"] {
        city_floor_check(tag, committed, fresh, &mut out);
    }
    match (
        json_f64(fresh, "choir_delivered_fps"),
        json_f64(fresh, "slotted_delivered_fps"),
    ) {
        (Some(choir), Some(slotted)) => {
            println!("ci: city peak-load ordering: choir {choir:.4} vs slotted {slotted:.4} delivered-fps");
            if choir < slotted {
                out.push(format!(
                    "Choir under slotted ALOHA at peak load: {choir:.4} < {slotted:.4} delivered-fps"
                ));
            }
        }
        _ => out.push(
            "fresh BENCH_city.json lacks choir_delivered_fps/slotted_delivered_fps".to_string(),
        ),
    }
    match json_bool(fresh, "transcripts_bit_identical") {
        Some(true) => {}
        Some(false) => {
            out.push("city transcript diverged between 1 and 4 worker threads".to_string())
        }
        None => out.push("fresh BENCH_city.json has no transcripts_bit_identical".to_string()),
    }
    match json_u64(fresh, "clients_total") {
        Some(n) if n >= CITY_MIN_CLIENTS => {}
        Some(n) => out.push(format!(
            "city bench ran only {n} clients (urban claim needs >= {CITY_MIN_CLIENTS})"
        )),
        None => out.push("fresh BENCH_city.json has no clients_total".to_string()),
    }
    match json_u64(fresh, "gateways") {
        Some(n) if n >= CITY_MIN_GATEWAYS => {}
        Some(n) => out.push(format!(
            "city bench ran only {n} gateways (urban claim needs >= {CITY_MIN_GATEWAYS})"
        )),
        None => out.push("fresh BENCH_city.json has no gateways".to_string()),
    }
    out
}

/// Returns the raw value token following `"key":`. Only sound because
/// every key the gates read is unique within its bench file (the nested
/// `last_round_metrics` object shares no key names with the gates).
fn json_value<'a>(src: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\"");
    let at = src.find(&needle)? + needle.len();
    let rest = src[at..].trim_start().strip_prefix(':')?.trim_start();
    let end = rest.find([',', '}', '\n']).unwrap_or(rest.len());
    Some(rest[..end].trim())
}

fn json_f64(src: &str, key: &str) -> Option<f64> {
    json_value(src, key)?.parse().ok()
}

fn json_u64(src: &str, key: &str) -> Option<u64> {
    json_value(src, key)?.parse().ok()
}

fn json_bool(src: &str, key: &str) -> Option<bool> {
    match json_value(src, key)? {
        "true" => Some(true),
        "false" => Some(false),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic `BENCH_kernel.json` in the exact shape the bench writes.
    fn kernel_fixture(sps: f64, scalar: f64, identical: bool, backends: bool) -> String {
        // The blocked/refine readings track the healthier of the two
        // throughputs so the single-regression tests stay single.
        let healthy = sps.max(scalar);
        kernel_fixture_blocked(sps, scalar, healthy, 0.4, true, identical, backends)
    }

    /// Fixture with explicit blocked-width and refine-stage readings.
    #[allow(clippy::too_many_arguments)]
    fn kernel_fixture_blocked(
        sps: f64,
        scalar: f64,
        blocked: f64,
        refine_s: f64,
        widths: bool,
        identical: bool,
        backends: bool,
    ) -> String {
        format!(
            concat!(
                "{{\n  \"bench\": \"batch_decode\",\n",
                "  \"after_slots_per_sec\": {sps:.4},\n",
                "  \"before_slots_per_sec\": 1.1,\n",
                "  \"scalar_slots_per_sec\": {scalar:.4},\n",
                "  \"vector_backend\": \"avx2\",\n",
                "  \"vector_slots_per_sec\": {vector:.4},\n",
                "  \"block_width\": 4,\n",
                "  \"blocked_slots_per_sec\": {blocked:.4},\n",
                "  \"refine_s\": {refine_s:.4},\n",
                "  \"width_slots_per_sec\": {{\"w1\": {blocked:.4}, \"w4\": {blocked:.4}}},\n",
                "  \"widths_bit_identical\": {widths},\n",
                "  \"outputs_bit_identical\": {identical},\n",
                "  \"backends_bit_identical\": {backends}\n}}\n"
            ),
            sps = sps,
            scalar = scalar,
            vector = scalar * 2.5,
            blocked = blocked,
            refine_s = refine_s,
            widths = widths,
            identical = identical,
            backends = backends,
        )
    }

    /// A synthetic `BENCH_station.json` covering every gated key, with a
    /// healthy unslotted profile.
    fn station_fixture(sps: f64, shed: u64, identical: bool, overhead: f64) -> String {
        station_fixture_unslotted(sps, shed, identical, overhead, 2.1, 0)
    }

    /// Fixture with explicit unslotted readings (detect overhead and
    /// slot miscount).
    fn station_fixture_unslotted(
        sps: f64,
        shed: u64,
        identical: bool,
        overhead: f64,
        async_overhead: f64,
        miscount: u64,
    ) -> String {
        format!(
            concat!(
                "{{\n  \"bench\": \"station_soak\",\n",
                "  \"slots_per_sec\": {sps:.4},\n",
                "  \"slots_per_sec_traced\": {tr:.4},\n",
                "  \"slots_per_sec_unslotted\": {un:.4},\n",
                "  \"trace_overhead_pct\": {overhead:.2},\n",
                "  \"async_detect_overhead_pct\": {async_overhead:.2},\n",
                "  \"unslotted_total_overhead_pct\": {total:.2},\n",
                "  \"unslotted_slot_miscount\": {miscount},\n",
                "  \"outputs_bit_identical\": {identical},\n",
                "  \"nominal_shed\": {shed},\n",
                "  \"last_round_metrics\": {{\"slots_shed\": 0, \"queue_depth\": 0}}\n}}\n"
            ),
            sps = sps,
            tr = sps * (1.0 - overhead / 100.0),
            un = sps * 0.75,
            overhead = overhead,
            async_overhead = async_overhead,
            total = async_overhead + 25.0,
            miscount = miscount,
            identical = identical,
            shed = shed,
        )
    }

    /// A synthetic `BENCH_city.json` covering every gated key. Peak fps
    /// per scheme is scaled off `choir_fps` so one knob builds healthy
    /// and regressed fixtures alike.
    fn city_fixture(choir_fps: f64, slotted_fps: f64, identical: bool, clients: u64) -> String {
        format!(
            concat!(
                "{{\n  \"bench\": \"city_capacity\",\n",
                "  \"gateways\": {gws},\n",
                "  \"clients_per_gw\": 10000,\n",
                "  \"clients_total\": {clients},\n",
                "  \"aloha_delivered_fps\": 0.0000,\n",
                "  \"aloha_peak_fps\": {aloha_peak:.4},\n",
                "  \"slotted_delivered_fps\": {slotted:.4},\n",
                "  \"slotted_peak_fps\": {slotted_peak:.4},\n",
                "  \"choir_delivered_fps\": {choir:.4},\n",
                "  \"choir_peak_fps\": {choir:.4},\n",
                "  \"ss5g_delivered_fps\": 0.0000,\n",
                "  \"ss5g_peak_fps\": {ss5g_peak:.4},\n",
                "  \"curve_choir_fps\": [1.0, {choir:.4}],\n",
                "  \"transcripts_bit_identical\": {identical},\n",
                "  \"wall_s\": 0.60\n}}\n"
            ),
            gws = clients / 10_000,
            clients = clients,
            // Only choir's peak tracks the knob: regression tests stay
            // single-failure. The other peaks are fixed healthy values.
            aloha_peak = 1.0,
            slotted = slotted_fps,
            slotted_peak = slotted_fps.max(1.0),
            choir = choir_fps,
            ss5g_peak = 1.0,
            identical = identical,
        )
    }

    #[test]
    fn city_gate_passes_on_reproduction() {
        // The city model is deterministic: the normal case is fresh ==
        // committed, and exactly the 80 % floor still passes (the gate
        // is >=, not >).
        let reference = city_fixture(2676.0, 23.9, true, 1_000_000);
        assert!(check_city(&reference, &reference).is_empty());
        let reference = city_fixture(1.0, 0.5, true, 1_000_000);
        let at_floor = city_fixture(0.8, 0.5, true, 1_000_000);
        assert!(check_city(&reference, &at_floor).is_empty());
    }

    #[test]
    fn city_gate_fails_on_capacity_regression() {
        let reference = city_fixture(1.0, 0.5, true, 1_000_000);
        let fails = check_city(&reference, &city_fixture(0.79, 0.5, true, 1_000_000));
        assert_eq!(fails.len(), 1, "{fails:?}");
        assert!(
            fails[0].contains("choir delivered-fps regression"),
            "{fails:?}"
        );
    }

    #[test]
    fn city_gate_fails_on_thread_divergence() {
        let reference = city_fixture(2676.0, 23.9, true, 1_000_000);
        let fails = check_city(&reference, &city_fixture(2676.0, 23.9, false, 1_000_000));
        assert_eq!(fails.len(), 1, "{fails:?}");
        assert!(fails[0].contains("1 and 4 worker threads"), "{fails:?}");
    }

    #[test]
    fn city_gate_fails_when_choir_loses_to_slotted() {
        let reference = city_fixture(100.0, 23.9, true, 1_000_000);
        // Fresh run where slotted out-delivers Choir at peak load.
        let fails = check_city(&reference, &city_fixture(100.0, 140.0, true, 1_000_000));
        assert_eq!(fails.len(), 1, "{fails:?}");
        assert!(fails[0].contains("Choir under slotted ALOHA"), "{fails:?}");
    }

    #[test]
    fn city_gate_fails_below_urban_scale() {
        let reference = city_fixture(2676.0, 23.9, true, 1_000_000);
        let fails = check_city(&reference, &city_fixture(2676.0, 23.9, true, 500_000));
        // 500k clients over 50 gateways: both scale contracts break.
        assert_eq!(fails.len(), 2, "{fails:?}");
        assert!(fails[0].contains("clients"), "{fails:?}");
        assert!(fails[1].contains("gateways"), "{fails:?}");
    }

    #[test]
    fn city_gate_fails_on_missing_keys() {
        let reference = city_fixture(2676.0, 23.9, true, 1_000_000);
        // Empty fresh JSON: four peak floors, the ordering pair, the
        // identity flag, and the two scale keys all report.
        let fails = check_city(&reference, "{}");
        assert_eq!(fails.len(), 8, "{fails:?}");
        // A committed reference without the floors is itself a failure.
        let fails = check_city("{}", &reference);
        assert_eq!(fails.len(), 4, "{fails:?}");
    }

    #[test]
    fn kernel_gate_passes_at_floor() {
        // Exactly on the floor is a pass; the gate is ≥, not >.
        let reference = kernel_fixture(1.0, 1.0, true, true);
        assert!(check_kernel(&reference, &kernel_fixture(0.8, 0.8, true, true)).is_empty());
        let same = kernel_fixture(2.9240, 0.5514, true, true);
        assert!(check_kernel(&same, &same).is_empty());
    }

    #[test]
    fn kernel_gate_fails_on_regression() {
        let reference = kernel_fixture(1.0, 1.0, true, true);
        let fails = check_kernel(&reference, &kernel_fixture(0.79, 1.0, true, true));
        assert_eq!(fails.len(), 1);
        assert!(fails[0].contains("regression"), "{fails:?}");
    }

    #[test]
    fn kernel_gate_fails_on_scalar_backend_regression() {
        // The vector paths must never buy their speed-up by slowing the
        // scalar oracle: the scalar-forced throughput is floored too.
        let reference = kernel_fixture(1.0, 1.0, true, true);
        let fails = check_kernel(&reference, &kernel_fixture(1.0, 0.79, true, true));
        assert_eq!(fails.len(), 1);
        assert!(fails[0].contains("scalar"), "{fails:?}");
    }

    #[test]
    fn kernel_gate_fails_on_divergence() {
        let reference = kernel_fixture(1.0, 1.0, true, true);
        let fails = check_kernel(&reference, &kernel_fixture(1.0, 1.0, false, true));
        assert_eq!(fails.len(), 1);
        assert!(fails[0].contains("thread counts"), "{fails:?}");
    }

    #[test]
    fn kernel_gate_fails_on_backend_divergence() {
        let reference = kernel_fixture(1.0, 1.0, true, true);
        let fails = check_kernel(&reference, &kernel_fixture(1.0, 1.0, true, false));
        assert_eq!(fails.len(), 1);
        assert!(fails[0].contains("DSP backends"), "{fails:?}");
    }

    #[test]
    fn kernel_gate_fails_on_missing_keys() {
        // Fresh JSON missing everything: three floors, the refine
        // ceiling, and the three identity flags fail.
        let reference = kernel_fixture(1.0, 1.0, true, true);
        let fails = check_kernel(&reference, "{}");
        assert_eq!(fails.len(), 7, "{fails:?}");
        // A committed reference missing the gated throughput keys is
        // itself a failure (the gate must never silently skip a floor).
        let fails = check_kernel("{}", &reference);
        assert_eq!(fails.len(), 4, "{fails:?}");
    }

    #[test]
    fn kernel_gate_fails_on_blocked_width_regression() {
        let reference = kernel_fixture(1.0, 1.0, true, true);
        let fails = check_kernel(
            &reference,
            &kernel_fixture_blocked(1.0, 1.0, 0.79, 0.4, true, true, true),
        );
        assert_eq!(fails.len(), 1, "{fails:?}");
        assert!(fails[0].contains("blocked"), "{fails:?}");
    }

    #[test]
    fn kernel_gate_fails_on_refine_stage_regression() {
        // refine_s is a time: larger is worse. Reference 0.4 s allows up
        // to 0.5 s; 0.51 s must fail, 0.49 s must pass.
        let reference = kernel_fixture(1.0, 1.0, true, true);
        let fails = check_kernel(
            &reference,
            &kernel_fixture_blocked(1.0, 1.0, 1.0, 0.51, true, true, true),
        );
        assert_eq!(fails.len(), 1, "{fails:?}");
        assert!(fails[0].contains("refine"), "{fails:?}");
        let fails = check_kernel(
            &reference,
            &kernel_fixture_blocked(1.0, 1.0, 1.0, 0.49, true, true, true),
        );
        assert!(fails.is_empty(), "{fails:?}");
    }

    #[test]
    fn kernel_gate_fails_on_width_divergence() {
        let reference = kernel_fixture(1.0, 1.0, true, true);
        let fails = check_kernel(
            &reference,
            &kernel_fixture_blocked(1.0, 1.0, 1.0, 0.4, false, true, true),
        );
        assert_eq!(fails.len(), 1, "{fails:?}");
        assert!(fails[0].contains("block widths"), "{fails:?}");
    }

    #[test]
    fn station_gate_passes_nominal() {
        let reference = station_fixture(2.9178, 0, true, 1.3);
        assert!(check_station(&reference, &station_fixture(2.9178, 0, true, 1.3)).is_empty());
        // Negative overhead (measurement noise) is fine.
        assert!(check_station(&reference, &station_fixture(3.0, 0, true, -0.4)).is_empty());
    }

    #[test]
    fn station_gate_fails_on_nominal_shed() {
        let reference = station_fixture(1.0, 0, true, 0.0);
        let fails = check_station(&reference, &station_fixture(1.0, 3, true, 0.0));
        assert_eq!(fails.len(), 1);
        assert!(fails[0].contains("shed"), "{fails:?}");
    }

    #[test]
    fn station_gate_fails_on_divergence_and_regression() {
        let reference = station_fixture(2.0, 0, true, 0.0);
        let fails = check_station(&reference, &station_fixture(1.5, 0, false, 0.0));
        assert_eq!(fails.len(), 2, "{fails:?}");
    }

    #[test]
    fn station_gate_fails_on_trace_overhead() {
        let reference = station_fixture(1.0, 0, true, 0.0);
        let fails = check_station(&reference, &station_fixture(1.0, 0, true, 6.7));
        assert_eq!(fails.len(), 1);
        assert!(fails[0].contains("tracing"), "{fails:?}");
    }

    #[test]
    fn station_gate_fails_on_async_detect_overhead() {
        // The gated number compares free-running against an explicit
        // schedule at the *same floored starts* — the residual-absorption
        // cost carried by unslotted_total_overhead_pct is not gated.
        let reference = station_fixture(1.0, 0, true, 0.0);
        let fails = check_station(
            &reference,
            &station_fixture_unslotted(1.0, 0, true, 0.0, 11.3, 0),
        );
        assert_eq!(fails.len(), 1);
        assert!(fails[0].contains("online detection"), "{fails:?}");
    }

    #[test]
    fn station_gate_fails_on_unslotted_miscount() {
        let reference = station_fixture(1.0, 0, true, 0.0);
        let fails = check_station(
            &reference,
            &station_fixture_unslotted(1.0, 0, true, 0.0, 2.1, 4),
        );
        assert_eq!(fails.len(), 1);
        assert!(fails[0].contains("missed a slot"), "{fails:?}");
    }

    #[test]
    fn model_cfg_flag_appends_idempotently() {
        assert_eq!(with_model_cfg(""), "--cfg choir_model");
        assert_eq!(
            with_model_cfg("-D warnings"),
            "-D warnings --cfg choir_model"
        );
        assert_eq!(
            with_model_cfg("--cfg choir_model"),
            "--cfg choir_model",
            "must not duplicate the cfg"
        );
    }

    #[test]
    fn json_scanner_reads_exact_keys_only() {
        let s = station_fixture(2.5, 0, true, 1.0);
        // `slots_per_sec` must not match the `slots_per_sec_traced` key.
        assert_eq!(json_f64(&s, "slots_per_sec"), Some(2.5));
        assert_eq!(json_u64(&s, "nominal_shed"), Some(0));
        assert_eq!(json_bool(&s, "outputs_bit_identical"), Some(true));
        assert_eq!(json_f64(&s, "missing"), None);
        assert_eq!(json_bool(&s, "slots_per_sec"), None);
    }
}
