//! Lexical preprocessing for the lint rules.
//!
//! The rules don't need a full Rust parse: they need to know, for every
//! byte of a source file, (a) is it code, a comment, or a literal, and
//! (b) is it inside `#[cfg(test)]` test-only scope. This module produces
//! exactly that: three same-length views of the file (`code` with
//! comments/literal contents blanked, `comments` with everything *but*
//! comments blanked, and a per-byte `test_mask`), so the rules can do
//! plain substring scanning with correct line/column reporting.

/// A preprocessed source file.
pub struct SourceFile {
    /// Workspace-relative path (used for rule scoping and reports).
    pub path: String,
    /// Code view: comments and string/char literal contents replaced by
    /// spaces; newlines and all other bytes preserved.
    pub code: String,
    /// Comment view: only comment bytes preserved, everything else spaces.
    pub comments: String,
    /// `test_mask[i]` is true when byte `i` is inside a `#[cfg(test)]`
    /// item (module or function body).
    pub test_mask: Vec<bool>,
    /// Byte offset of the start of each line (for offset → line/col).
    line_starts: Vec<usize>,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum State {
    Code,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u32),
    Char,
}

impl SourceFile {
    /// Preprocesses `raw` (the file contents) under workspace-relative
    /// `path`.
    pub fn new(path: &str, raw: &str) -> SourceFile {
        let bytes = raw.as_bytes();
        let mut code = bytes.to_vec();
        let mut comments = vec![b' '; bytes.len()];
        let mut state = State::Code;
        let mut i = 0usize;
        while i < bytes.len() {
            let b = bytes[i];
            match state {
                State::Code => {
                    if b == b'/' && bytes.get(i + 1) == Some(&b'/') {
                        state = State::LineComment;
                        comments[i] = b'/';
                        code[i] = b' ';
                    } else if b == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        state = State::BlockComment(1);
                        comments[i] = b'/';
                        comments[i + 1] = b'*';
                        code[i] = b' ';
                        code[i + 1] = b' ';
                        i += 1; // consume the '*' so "/*/" can't self-close
                    } else if b == b'"' {
                        state = State::Str;
                    } else if b == b'r' || b == b'b' {
                        // r"..."  r#"..."#  br"..."  b"..."
                        let mut j = i + 1;
                        if b == b'b' && bytes.get(j) == Some(&b'r') {
                            j += 1;
                        }
                        let mut hashes = 0u32;
                        while bytes.get(j) == Some(&b'#') {
                            hashes += 1;
                            j += 1;
                        }
                        let prev_ident =
                            i > 0 && (bytes[i - 1].is_ascii_alphanumeric() || bytes[i - 1] == b'_');
                        if !prev_ident && bytes.get(j) == Some(&b'"') && (b == b'r' || hashes == 0)
                        {
                            state = if b == b'r' || bytes.get(i + 1) == Some(&b'r') {
                                State::RawStr(hashes)
                            } else {
                                State::Str
                            };
                            i = j; // leave prefix bytes as code
                        }
                    } else if b == b'\'' {
                        // Char literal vs lifetime: a literal is '<esc>' or
                        // '<one char>' followed by a closing quote.
                        let is_char = match bytes.get(i + 1) {
                            Some(b'\\') => true,
                            Some(_) => bytes.get(i + 2) == Some(&b'\''),
                            None => false,
                        };
                        if is_char {
                            state = State::Char;
                        }
                    }
                }
                State::LineComment => {
                    if b == b'\n' {
                        state = State::Code;
                    } else {
                        comments[i] = b;
                        code[i] = b' ';
                    }
                }
                State::BlockComment(depth) => {
                    if b == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        comments[i] = b'*';
                        comments[i + 1] = b'/';
                        code[i] = b' ';
                        code[i + 1] = b' ';
                        i += 1;
                        state = if depth == 1 {
                            State::Code
                        } else {
                            State::BlockComment(depth - 1)
                        };
                    } else if b == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        comments[i] = b;
                        comments[i + 1] = b'*';
                        code[i] = b' ';
                        code[i + 1] = b' ';
                        i += 1;
                        state = State::BlockComment(depth + 1);
                    } else {
                        if b != b'\n' {
                            comments[i] = b;
                            code[i] = b' ';
                        }
                        // newlines stay newlines in every view
                    }
                }
                State::Str => {
                    if b == b'\\' {
                        if bytes.get(i + 1).is_some() {
                            code[i] = b' ';
                            if bytes[i + 1] != b'\n' {
                                code[i + 1] = b' ';
                            }
                            i += 1;
                        }
                    } else if b == b'"' {
                        state = State::Code;
                    } else if b != b'\n' {
                        code[i] = b' ';
                    }
                }
                State::RawStr(hashes) => {
                    if b == b'"' {
                        let mut j = i + 1;
                        let mut h = 0u32;
                        while h < hashes && bytes.get(j) == Some(&b'#') {
                            h += 1;
                            j += 1;
                        }
                        if h == hashes {
                            i = j - 1;
                            state = State::Code;
                        } else if b != b'\n' {
                            code[i] = b' ';
                        }
                    } else if b != b'\n' {
                        code[i] = b' ';
                    }
                }
                State::Char => {
                    if b == b'\\' {
                        if bytes.get(i + 1).is_some() {
                            code[i] = b' ';
                            code[i + 1] = b' ';
                            i += 1;
                        }
                    } else if b == b'\'' {
                        state = State::Code;
                    } else if b != b'\n' {
                        code[i] = b' ';
                    }
                }
            }
            i += 1;
        }

        let code = String::from_utf8_lossy(&code).into_owned();
        let comments = String::from_utf8_lossy(&comments).into_owned();
        let test_mask = test_mask(&code);
        let mut line_starts = vec![0usize];
        for (i, b) in raw.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i + 1);
            }
        }
        SourceFile {
            path: path.to_string(),
            code,
            comments,
            test_mask,
            line_starts,
        }
    }

    /// Maps a byte offset to a 1-based (line, column) pair.
    pub fn line_col(&self, offset: usize) -> (usize, usize) {
        let line = match self.line_starts.binary_search(&offset) {
            Ok(l) => l,
            Err(l) => l - 1,
        };
        (line + 1, offset - self.line_starts[line] + 1)
    }

    /// True when the byte at `offset` is inside `#[cfg(test)]` scope.
    pub fn in_test(&self, offset: usize) -> bool {
        self.test_mask.get(offset).copied().unwrap_or(false)
    }

    /// The comment text on the (1-based) line containing `offset` — empty
    /// when the line has no comment.
    pub fn comment_on_line_of(&self, offset: usize) -> &str {
        let (line, _) = self.line_col(offset);
        let start = self.line_starts[line - 1];
        let end = self
            .line_starts
            .get(line)
            .copied()
            .unwrap_or(self.comments.len());
        self.comments[start.min(self.comments.len())..end.min(self.comments.len())].trim()
    }

    /// True when a `lint:allow(<rule>)` marker with a non-empty reason
    /// appears in a comment on the same line as `offset` or the line above.
    pub fn allowed(&self, offset: usize, rule: &str) -> bool {
        let (line, _) = self.line_col(offset);
        let needle = format!("lint:allow({rule})");
        for l in [line.saturating_sub(1), line] {
            if l == 0 {
                continue;
            }
            let start = self.line_starts[l - 1];
            let end = self
                .line_starts
                .get(l)
                .copied()
                .unwrap_or(self.comments.len());
            let text = &self.comments[start.min(self.comments.len())..end.min(self.comments.len())];
            if let Some(pos) = text.find(&needle) {
                // Require a reason: non-whitespace content after the marker
                // (separator punctuation aside).
                let rest: String = text[pos + needle.len()..]
                    .chars()
                    .filter(|c| c.is_alphanumeric())
                    .collect();
                if rest.len() >= 8 {
                    return true;
                }
            }
        }
        false
    }
}

/// Computes the per-byte test mask: regions covered by items annotated
/// `#[cfg(test)]` (modules or functions — anything whose body is the next
/// brace-balanced block after the attribute).
fn test_mask(code: &str) -> Vec<bool> {
    let bytes = code.as_bytes();
    let mut mask = vec![false; bytes.len()];
    let mut search = 0usize;
    while let Some(rel) = code[search..].find("cfg(test)") {
        let at = search + rel;
        search = at + "cfg(test)".len();
        // Must be part of an attribute: scan back for `#[` with only
        // attribute-ish chars between.
        let lead = &code[at.saturating_sub(24)..at];
        if !lead.contains("#[") {
            continue;
        }
        // Find the opening brace of the annotated item. A `;` first means
        // an out-of-line `mod tests;` — nothing to mask here.
        let mut j = search;
        // Step past the attribute's closing bracket(s) first.
        while j < bytes.len() && bytes[j] != b']' {
            j += 1;
        }
        let mut body = None;
        for (k, &b) in bytes.iter().enumerate().skip(j) {
            match b {
                b'{' => {
                    body = Some(k);
                    break;
                }
                b';' => break,
                _ => {}
            }
        }
        let Some(open) = body else { continue };
        let mut depth = 0i64;
        for (k, &b) in bytes.iter().enumerate().skip(open) {
            match b {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        for m in mask.iter_mut().take(k + 1).skip(at) {
                            *m = true;
                        }
                        search = search.max(k + 1);
                        break;
                    }
                }
                _ => {}
            }
        }
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::SourceFile;

    #[test]
    fn comments_and_strings_are_blanked() {
        let src = "let a = \"unwrap() inside\"; // .unwrap() trailing\nlet b = 1;\n";
        let f = SourceFile::new("crates/choir-dsp/src/x.rs", src);
        assert!(!f.code.contains("unwrap"));
        assert!(f.comments.contains(".unwrap() trailing"));
        assert!(f.code.contains("let b = 1;"));
    }

    #[test]
    fn raw_strings_and_chars_are_blanked() {
        let src = "let s = r#\"panic!(\"x\")\"#; let c = '\\''; let lt: &'static str = \"y\";\n";
        let f = SourceFile::new("x.rs", src);
        assert!(!f.code.contains("panic!"));
        assert!(f.code.contains("&'static str"));
    }

    #[test]
    fn cfg_test_regions_are_masked() {
        let src = "fn live() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn t() { y.unwrap(); }\n}\nfn live2() {}\n";
        let f = SourceFile::new("x.rs", src);
        let live = src.find("x.unwrap").expect("fixture");
        let test = src.find("y.unwrap").expect("fixture");
        let live2 = src.find("live2").expect("fixture");
        assert!(!f.in_test(live));
        assert!(f.in_test(test));
        assert!(!f.in_test(live2));
    }

    #[test]
    fn allow_markers_need_a_reason() {
        let with_reason = "x.unwrap(); // lint:allow(unwrap) — len checked above\n";
        let f = SourceFile::new("x.rs", with_reason);
        assert!(f.allowed(0, "unwrap"));
        let bare = "x.unwrap(); // lint:allow(unwrap)\n";
        let f = SourceFile::new("x.rs", bare);
        assert!(
            !f.allowed(0, "unwrap"),
            "marker without reason must not count"
        );
    }

    #[test]
    fn line_col_mapping() {
        let f = SourceFile::new("x.rs", "abc\ndef\n");
        assert_eq!(f.line_col(0), (1, 1));
        assert_eq!(f.line_col(4), (2, 1));
        assert_eq!(f.line_col(6), (2, 3));
    }
}
