//! Fig. 10 — resolution of recovered sensor data vs distance: further
//! sensors need larger teams; larger teams agree on fewer MSB chunks;
//! so the normalised per-user error grows gradually with distance.

use crate::report::{FigureReport, Series};
use crate::topology::Topology;
use choir_sensors::field::{Building, EnvField};
use choir_sensors::grouping::{make_groups, Strategy};
use choir_sensors::recover::{recover_group, Quantizer};
use lora_phy::params::PhyParams;

use super::Scale;

/// Members required at distance `d` (m): smallest team whose non-coherent
/// combining margin clears the SF8 floor + 3 dB (see `fig09::team_sf`).
pub fn team_size_needed(topo: &Topology, d_m: f64, params: &PhyParams) -> Option<usize> {
    // Far sensors fall back to a slow spreading factor (the paper's "even
    // at the minimum data rate"); gate on SF10's floor.
    let sf = lora_phy::params::SpreadingFactor::Sf10;
    let slow = PhyParams { sf, ..*params };
    let snr = topo.snr_at_distance_db(d_m, &slow);
    (1..=30).find(|&m| snr + 5.0 * (m as f64).log10() >= sf.demod_floor_db() + 3.0)
}

/// Runs the resolution-vs-distance sweep for temperature and humidity.
pub fn run(_scale: Scale) -> FigureReport {
    let topo = Topology::cmu_campus(10);
    let params = PhyParams::default();
    let building = Building::default();
    let field = EnvField::new(building, 77);
    let sensors = building.place_sensors(36, 7);
    // Centre-distance ordering — the paper's best grouping — so the first
    // `m` sensors are the most mutually consistent.
    let ordered: Vec<usize> = make_groups(&building, &sensors, Strategy::ByCenterDistance, 36, 0)
        .into_iter()
        .flatten()
        .collect();

    let distances = [300.0, 700.0, 1100.0, 1500.0, 1900.0, 2300.0, 2700.0];
    let qt = Quantizer::temperature();
    let qh = Quantizer::humidity();
    let mut temp_pts = Vec::new();
    let mut hum_pts = Vec::new();
    for &d in &distances {
        match team_size_needed(&topo, d, &params) {
            Some(m) => {
                let group: Vec<usize> = ordered.iter().take(m.max(1)).copied().collect();
                let temps: Vec<f64> = group
                    .iter()
                    .map(|&i| field.temperature_reading(sensors[i], i, 1))
                    .collect();
                let hums: Vec<f64> = group
                    .iter()
                    .map(|&i| field.humidity_reading(sensors[i], i, 1))
                    .collect();
                temp_pts.push((
                    d,
                    recover_group(&temps, &qt, usize::MAX).mean_normalized_error,
                ));
                hum_pts.push((
                    d,
                    recover_group(&hums, &qh, usize::MAX).mean_normalized_error,
                ));
            }
            None => {
                // Even 30 members cannot reach: nothing recovered — the
                // error is that of the uninformative midpoint guess.
                let temps: Vec<f64> = ordered
                    .iter()
                    .take(30)
                    .map(|&i| field.temperature_reading(sensors[i], i, 1))
                    .collect();
                temp_pts.push((d, recover_group(&temps, &qt, 0).mean_normalized_error));
                let hums: Vec<f64> = ordered
                    .iter()
                    .take(30)
                    .map(|&i| field.humidity_reading(sensors[i], i, 1))
                    .collect();
                hum_pts.push((d, recover_group(&hums, &qh, 0).mean_normalized_error));
            }
        }
    }
    let mut report = FigureReport::new("fig10", "Resolution of recovered sensor data vs distance");
    report.push_series(Series::from_xy("temperature err", &temp_pts));
    report.push_series(Series::from_xy("humidity err", &hum_pts));
    let sizes: Vec<(f64, f64)> = distances
        .iter()
        .map(|&d| (d, team_size_needed(&topo, d, &params).unwrap_or(31) as f64))
        .collect();
    report.push_series(Series::from_xy("team size", &sizes));
    report.note(
        "paper: error grows gradually with distance; ~13.2 % at ≥2.5 km with teams of up to 30",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_grows_with_distance() {
        let r = run(Scale::Quick);
        let near = r.value("temperature err", "300").unwrap();
        let far = r.value("temperature err", "2700").unwrap();
        assert!(far > near, "near {near} far {far}");
        // Far error in the paper's ballpark (≈13 %, loosely bounded here).
        assert!(far > 0.01 && far < 0.30, "far {far}");
    }

    #[test]
    fn team_size_grows_with_distance() {
        let r = run(Scale::Quick);
        let near = r.value("team size", "300").unwrap();
        let far = r.value("team size", "2300").unwrap();
        assert!(far > near);
    }

    #[test]
    fn needed_size_matches_link_budget() {
        let topo = Topology::cmu_campus(10);
        let p = PhyParams::default();
        // Close in: one node suffices.
        assert_eq!(team_size_needed(&topo, 200.0, &p), Some(1));
        // Very far: beyond even 30 nodes.
        assert_eq!(team_size_needed(&topo, 20_000.0, &p), None);
    }
}
