//! One module per paper figure. Every experiment exposes
//! `run(scale) -> FigureReport` printing the same rows/series the paper
//! plots; `Scale::Quick` keeps CI runtimes sane, `Scale::Full` is the
//! bench-harness setting.

pub mod city;
pub mod fig03;
pub mod fig04;
pub mod fig07;
pub mod fig08;
pub mod fig09;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod station;

/// Experiment effort.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Few trials — smoke-test sized.
    Quick,
    /// Paper-comparable trial counts.
    Full,
}

impl Scale {
    /// Scales a trial count.
    pub fn trials(self, quick: usize, full: usize) -> usize {
        match self {
            Scale::Quick => quick,
            Scale::Full => full,
        }
    }
}

/// Runs every figure at the given scale, in paper order.
pub fn run_all(scale: Scale) -> Vec<crate::report::FigureReport> {
    vec![
        fig03::run(scale),
        fig04::run(scale),
        fig07::run(scale),
        fig08::run_snr(scale),
        fig08::run_users(scale),
        fig09::run_throughput(scale),
        fig09::run_range(scale),
        fig10::run(scale),
        fig11::run_grouping(scale),
        fig11::run_end_to_end(scale),
        fig12::run(scale),
        station::run(scale),
        city::run(scale),
    ]
}
