//! Fig. 7 — characterising hardware offsets.
//!
//! (a) CDF of the aggregate (CFO+TO) fractional offset across 30 boards —
//!     ~uniform over the bin; (b) CDF of the frequency-only fractional
//!     offset (from the per-symbol phase slope) — ~uniform; (c) stability
//!     of the relative timing offset within a packet (stdev in seconds);
//!     (d) stability of the aggregate offset within a packet (stdev in Hz)
//!     — both across SNR regimes.

use crate::report::{FigureReport, Series};
use choir_channel::impairments::OscillatorModel;
use choir_channel::scenario::ScenarioBuilder;
use choir_core::decoder::{ChoirDecoder, SlotCapture};
use choir_core::estimator::{EstimatorConfig, OffsetEstimator};
use choir_dsp::complex::C64;
use choir_dsp::stats;
use lora_phy::params::PhyParams;

use super::Scale;

/// Downsamples an empirical CDF to ~`k` points for reporting.
fn cdf_series(label: &str, values: &[f64], k: usize) -> Series {
    let cdf = stats::empirical_cdf(values);
    let stride = (cdf.len() / k).max(1);
    let pts: Vec<(f64, f64)> = cdf
        .iter()
        .step_by(stride)
        .chain(cdf.last())
        .map(|&(v, p)| ((v * 100.0).round() / 100.0, p))
        .collect();
    Series::from_xy(label, &pts)
}

/// Per-window aggregate-offset estimates for one user's preamble.
fn per_window_offsets(
    est: &OffsetEstimator,
    samples: &[C64],
    slot_start: usize,
    preamble_len: usize,
    near: f64,
) -> Vec<f64> {
    let n = est.n();
    (1..preamble_len)
        .filter_map(|w| {
            let lo = slot_start + w * n;
            let win = samples.get(lo..lo + n)?;
            let comps = est.estimate(win);
            comps
                .iter()
                .map(|c| {
                    let mut d = (c.freq_bins - near).rem_euclid(n as f64);
                    if d > n as f64 / 2.0 {
                        d -= n as f64;
                    }
                    (d.abs(), c.freq_bins, d)
                })
                .min_by(|a, b| a.0.total_cmp(&b.0))
                .filter(|(dist, _, _)| *dist < 1.0)
                .map(|(_, _, d)| near + d)
        })
        .collect()
}

/// Per-window fractional-timing estimates: golden-max of tone energy over
/// the sub-chip alignment, one window at a time.
fn per_window_timing(
    est: &OffsetEstimator,
    samples: &[C64],
    slot_start: usize,
    preamble_len: usize,
    mu: f64,
    delta_truth: f64,
) -> Vec<f64> {
    let n = est.n();
    let taps = 10usize;
    (1..preamble_len)
        .filter_map(|w| {
            let energy = |delta: f64| -> f64 {
                let m = delta.floor();
                let fr = delta - m;
                let a = slot_start as i64 + (w * n) as i64 + m as i64;
                let lo = a - taps as i64;
                let hi = a + (n + taps) as i64;
                if lo < 0 || hi as usize > samples.len() {
                    return 0.0;
                }
                let slice = &samples[lo as usize..hi as usize];
                let shifted = choir_dsp::resample::fractional_delay(slice, -fr, taps);
                let aligned = &shifted[taps..taps + n];
                let de = est.dechirp(aligned);
                let pos = (mu + delta).rem_euclid(n as f64);
                let wv = -2.0 * std::f64::consts::PI * pos / n as f64;
                let acc: C64 = de
                    .iter()
                    .enumerate()
                    .map(|(t, v)| v * C64::cis(wv * t as f64))
                    .sum();
                acc.norm_sqr()
            };
            let (d, neg) = choir_dsp::optim::golden_section(
                |x| -energy(x),
                (delta_truth - 0.5).max(0.0),
                delta_truth + 0.5,
                1e-3,
            );
            if -neg > 0.0 {
                Some(d)
            } else {
                None
            }
        })
        .collect()
}

/// Runs all four panels.
pub fn run(scale: Scale) -> FigureReport {
    let params = PhyParams::default();
    let n = params.samples_per_symbol();
    let bin = params.bin_hz();
    let chip_s = 1.0 / params.bw.hz();
    let osc = OscillatorModel::default();
    let mut report = FigureReport::new("fig07", "Characterising hardware offsets (30 boards)");

    // (a)/(b): pairwise collisions across 30 boards, batch-decoded through
    // the shared worker pool (one slot per board pair).
    let boards = 30usize;
    let mut agg_frac_hz = Vec::new();
    let mut cfo_frac_hz = Vec::new();
    let slots: Vec<SlotCapture> = (0..(boards / 2))
        .map(|pair| {
            let s = ScenarioBuilder::new(params)
                .snrs_db(&[20.0, 17.0])
                .oscillator(osc)
                .payload_len(6)
                .seed(700 + pair as u64)
                .build();
            SlotCapture::known_len(&params, s.samples, s.slot_start, 6)
        })
        .collect();
    let dec = ChoirDecoder::new(params);
    for res in dec.decode_slots_parallel(&slots) {
        for d in res.users {
            agg_frac_hz.push(d.user.frac * bin);
            if let Some(slope) = d.user.phase_slope {
                let mut f = slope / std::f64::consts::TAU;
                if f > 0.5 {
                    f -= 1.0;
                }
                cfo_frac_hz.push(f * bin);
            }
        }
    }
    report.push_series(cdf_series("CDF CFO+TO (Hz)", &agg_frac_hz, 12));
    report.push_series(cdf_series("CDF CFO (Hz)", &cfo_frac_hz, 12));
    let ks = stats::ks_distance_uniform(&agg_frac_hz, 0.0, bin);
    report.push_series(Series::from_labels("uniformity (KS)", &[("CFO+TO", ks)]));

    // (c)/(d): within-packet stability by SNR regime.
    let est = OffsetEstimator::new(n, EstimatorConfig::default());
    let trials = scale.trials(3, 8);
    let mut to_rows = Vec::new();
    let mut agg_rows = Vec::new();
    for (label, snr) in [("Low", 2.5), ("Medium", 12.0), ("High", 25.0)] {
        let mut to_stds = Vec::new();
        let mut agg_stds = Vec::new();
        for t in 0..trials {
            let s = ScenarioBuilder::new(params)
                .snrs_db(&[snr])
                .oscillator(osc)
                .payload_len(6)
                .seed(900 + t as u64)
                .build();
            let u = &s.users[0];
            let mu = u.profile.aggregate_shift_bins(bin, n).rem_euclid(n as f64);
            let delta = u.profile.timing_offset_symbols * n as f64;
            let offs = per_window_offsets(&est, &s.samples, s.slot_start, params.preamble_len, mu);
            if offs.len() >= 3 {
                agg_stds.push(stats::std_dev(&offs) * bin);
            }
            let tims = per_window_timing(
                &est,
                &s.samples,
                s.slot_start,
                params.preamble_len,
                mu,
                delta,
            );
            if tims.len() >= 3 {
                to_stds.push(stats::std_dev(&tims) * chip_s * 1e6); // µs
            }
        }
        to_rows.push((label, stats::mean(&to_stds)));
        agg_rows.push((label, stats::mean(&agg_stds)));
    }
    report.push_series(Series::from_labels("stdev rel. TO (µs)", &to_rows));
    report.push_series(Series::from_labels("stdev CFO+TO (Hz)", &agg_rows));
    report.note("paper: offsets ~uniform across boards; within-packet TO stability 5–30 µs, CFO+TO stdev 0.02–0.12 Hz, degrading at low SNR");
    report.note("our oscillator model is less jittery than the paper's boards and our per-window estimates noisier (single-window reads), so absolute stabilities differ; the SNR trend is the comparable shape");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offsets_uniform_and_stable() {
        let r = run(Scale::Quick);
        // Fractional offsets roughly uniform across boards.
        let ks = r.value("uniformity (KS)", "CFO+TO").unwrap();
        assert!(ks < 0.25, "KS {ks}");
        // Stability improves (or at least does not degrade) with SNR.
        let lo = r.value("stdev CFO+TO (Hz)", "Low").unwrap();
        let hi = r.value("stdev CFO+TO (Hz)", "High").unwrap();
        assert!(hi <= lo * 1.5, "low {lo} high {hi}");
        // Timing stability is (sub-)micro-second scale, not chip scale
        // (one chip is 8 µs at 125 kHz).
        let to = r.value("stdev rel. TO (µs)", "High").unwrap();
        assert!(to < 2.0, "TO stability {to} µs");
    }
}
