//! Fig. 9 — extending LP-WAN range with teams of beyond-range sensors:
//! (a) throughput achieved by teams of increasing size whose members are
//! individually undecodable; (b) the maximum distance at which a team
//! still reaches the base station.

use crate::report::{FigureReport, Series};
use crate::topology::Topology;
use choir_channel::impairments::OscillatorModel;
use choir_channel::scenario::ScenarioBuilder;
use choir_core::lowsnr::{TeamConfig, TeamDecoder};
use lora_phy::params::{PhyParams, SpreadingFactor};

use super::Scale;

/// Shared team payload (a spliced sensor chunk packet).
const TEAM_PAYLOAD: [u8; 6] = [0xC4, 0x81, 0x3E, 0x07, 0x55, 0xA9];

/// Paper's team-size buckets for Fig. 9(a), with a representative size.
pub const SIZE_BUCKETS: [(&str, usize); 7] = [
    ("<2", 1),
    ("2-6", 4),
    ("7-11", 9),
    ("12-16", 14),
    ("17-21", 19),
    ("21-25", 23),
    ("26-30", 28),
];

/// Rate adaptation for a team: the fastest spreading factor whose
/// demodulation floor the *combined* team SNR clears with 3 dB margin.
/// Mirrors the paper's observation that larger teams "transmit at higher
/// data rates". Non-coherent combining buys ~5·log₁₀(m) dB of decision
/// margin.
pub fn team_sf(member_snr_db: f64, team_size: usize) -> Option<SpreadingFactor> {
    let gain = 5.0 * (team_size as f64).log10();
    let eff = member_snr_db + gain;
    SpreadingFactor::ALL
        .into_iter()
        .find(|sf| eff >= sf.demod_floor_db() + 3.0)
}

/// One team trial at the given member SNR: returns `Some(bits, airtime)`
/// when the shared packet decodes end-to-end.
fn team_trial(
    sf: SpreadingFactor,
    member_snr_db: f64,
    team_size: usize,
    seed: u64,
) -> Option<(usize, f64)> {
    let params = PhyParams {
        sf,
        ..PhyParams::default()
    };
    let s = ScenarioBuilder::new(params)
        .snrs_db(&vec![member_snr_db; team_size])
        .shared_payload(TEAM_PAYLOAD.to_vec())
        .oscillator(OscillatorModel::default())
        .seed(seed)
        .build();
    let dec = TeamDecoder::new(params, TeamConfig::default());
    let (_, frame) = dec.decode(
        &s.samples,
        s.slot_start,
        s.slot_start + 1,
        TEAM_PAYLOAD.len(),
    )?;
    let frame = frame?;
    if frame.crc_ok && frame.payload == TEAM_PAYLOAD {
        Some((
            TEAM_PAYLOAD.len() * 8,
            params.time_on_air(TEAM_PAYLOAD.len()),
        ))
    } else {
        None
    }
}

/// Fig. 9(a): throughput vs team size for members ~1.3 km out (beyond the
/// ~1 km single-node limit).
pub fn run_throughput(scale: Scale) -> FigureReport {
    let topo = Topology::cmu_campus(9);
    let params = PhyParams::default();
    let member_snr = topo.snr_at_distance_db(1300.0, &params); // ≈ −14.6 dB
    let trials = scale.trials(2, 5);
    let mut pts = Vec::new();
    for (label, m) in SIZE_BUCKETS {
        // Rate adaptation with IQ arbitration: for every spreading factor
        // within 3 dB of the analytic margin, measure the delivered
        // throughput over the trials and keep the best — mirroring the
        // paper's "collectively their throughput increases… allowing these
        // clients to transmit at higher data rates".
        let gain = 5.0 * (m as f64).log10();
        let eff = member_snr + gain;
        let mut tput = 0.0f64;
        for sf in lora_phy::params::SpreadingFactor::ALL {
            if eff < sf.demod_floor_db() - 3.0 {
                continue;
            }
            let mut ok_bits = 0usize;
            let mut airtime = 0.0;
            for t in 0..trials {
                let seed = 9000 + m as u64 * 17 + t as u64;
                if let Some((bits, air)) = team_trial(sf, member_snr, m, seed) {
                    ok_bits += bits;
                    airtime += air;
                } else {
                    airtime += PhyParams {
                        sf,
                        ..PhyParams::default()
                    }
                    .time_on_air(TEAM_PAYLOAD.len());
                }
            }
            if airtime > 0.0 {
                tput = tput.max(ok_bits as f64 / airtime);
            }
        }
        pts.push((label, tput));
    }
    let mut report = FigureReport::new(
        "fig09a",
        "Throughput of beyond-range teams vs team size (members ~1.3 km out)",
    );
    report.push_series(Series::from_labels("thrpt bps", &pts));
    report.note(format!(
        "per-member SNR at 1.3 km: {member_snr:.1} dB (below the single-node floor)"
    ));
    report.note("paper: throughput grows with team size, reaching ~3.5–5.5 kbps for 26–30 members");
    report
}

/// Fig. 9(b): maximum decodable distance vs team size (binary search over
/// distance; success = majority of trials decode the shared frame at the
/// slow "minimum data rate" spreading factor). A single-node row provides
/// the baseline the paper's 2.65× headline is measured against.
pub fn run_range(scale: Scale) -> FigureReport {
    let topo = Topology::cmu_campus(9);
    let trials = scale.trials(3, 5);
    let sizes = [("1", 1usize), ("1-10", 5), ("11-20", 15), ("21-30", 28)];
    let sf = SpreadingFactor::Sf10; // the range experiments' slow rate
    let params = PhyParams {
        sf,
        ..PhyParams::default()
    };
    let mut pts = Vec::new();
    for (label, m) in sizes {
        let decodes_at = |d: f64| -> bool {
            let snr = topo.snr_at_distance_db(d, &params);
            let mut ok = 0;
            for t in 0..trials {
                if team_trial(sf, snr, m, 9900 + d as u64 + t as u64).is_some() {
                    ok += 1;
                }
            }
            ok * 2 > trials
        };
        let (mut lo, mut hi) = (400.0f64, 8000.0f64);
        if !decodes_at(lo) {
            pts.push((label, 0.0));
            continue;
        }
        for _ in 0..8 {
            let mid = (lo + hi) / 2.0;
            if decodes_at(mid) {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        pts.push((label, lo.round()));
    }
    let mut report = FigureReport::new("fig09b", "Maximum decodable distance vs team size");
    let ratio = match (pts.first(), pts.last()) {
        (Some((_, single)), Some((_, team))) if *single > 0.0 => team / single,
        _ => 0.0,
    };
    report.push_series(Series::from_labels("max distance m", &pts));
    report.note(format!("range extension 21-30 vs single: {ratio:.2}×"));
    report.note("paper: 1 km single-node limit; 2.65 km with teams of 21–30 (2.65×)");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn team_rate_adaptation_monotone() {
        // Larger teams support faster (or equal) spreading factors.
        let snr = -16.0;
        let mut prev: Option<SpreadingFactor> = None;
        for m in [1usize, 4, 9, 19, 28] {
            let sf = team_sf(snr, m);
            if let (Some(p), Some(s)) = (prev, sf) {
                assert!(s <= p, "m={m}: {s:?} slower than {p:?}");
            }
            if sf.is_some() {
                prev = sf;
            }
        }
        // Single node at −16 dB cannot close even SF12 with margin… or
        // barely can; a 28-node team must support a faster SF than one
        // node.
        let single = team_sf(snr, 1);
        let team = team_sf(snr, 28).unwrap();
        if let Some(s) = single {
            assert!(team < s);
        }
    }

    #[test]
    fn one_iq_team_trial_decodes() {
        // 12 members at −12 dB, SF8: decodable via combining.
        let r = team_trial(SpreadingFactor::Sf8, -12.0, 12, 42);
        assert!(r.is_some());
    }

    #[test]
    fn single_member_beyond_range_fails() {
        let r = team_trial(SpreadingFactor::Sf8, -16.0, 1, 43);
        assert!(r.is_none());
    }
}
