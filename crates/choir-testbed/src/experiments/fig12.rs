//! Fig. 12 — comparison with uplink MU-MIMO on a 3-antenna base station:
//! five sensors served by (1) single-antenna ALOHA, (2) single-antenna
//! Oracle, (3) 3-antenna MU-MIMO, (4) single-antenna Choir, (5) Choir on
//! all three antennas (selection combining).

use crate::report::{FigureReport, Series};
use choir_channel::antenna::array_channels;
use choir_channel::fading::Fading;
use choir_channel::impairments::{HardwareProfile, OscillatorModel};
use choir_channel::mix::{mix_array, MixConfig, Transmission};
use choir_channel::noise::db_to_lin;
use choir_dsp::complex::C64;
use choir_mac::{run_sim, CollisionFatalPhy, MacScheme, SimConfig, TabulatedChoirPhy};
use choir_mimo::{choir_multi_antenna, mu_mimo_decode};
use lora_phy::chirp::PacketWaveform;
use lora_phy::frame::packet_symbols;
use lora_phy::params::PhyParams;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use super::Scale;

const USERS: usize = 5;
const PAYLOAD: usize = 8;

/// Builds a synchronized multi-antenna capture of `k` users and returns
/// per-antenna streams, genie channels, true payloads and the slot start.
#[allow(clippy::type_complexity)]
fn capture(
    antennas: usize,
    k: usize,
    with_offsets: bool,
    seed: u64,
) -> (Vec<Vec<C64>>, Vec<Vec<C64>>, Vec<Vec<u8>>, usize) {
    let params = PhyParams::default();
    let n = params.samples_per_symbol();
    let mut rng = StdRng::seed_from_u64(seed);
    let osc = OscillatorModel::default();
    let payloads: Vec<Vec<u8>> = (0..k)
        .map(|_| (0..PAYLOAD).map(|_| rng.gen()).collect())
        .collect();
    let txs: Vec<Transmission> = payloads
        .iter()
        .map(|payload| {
            let profile = if with_offsets {
                let ppm = osc.sample_ppm(&mut rng);
                osc.sample_profile(ppm, &mut rng)
            } else {
                HardwareProfile::ideal()
            };
            Transmission {
                waveform: PacketWaveform::new(n, packet_symbols(&params, payload)),
                channel: C64::ONE,
                amplitude: db_to_lin(rng.gen_range(8.0..14.0)).sqrt(),
                profile,
                start_sample: (2 * n) as f64,
            }
        })
        .collect();
    let channels = array_channels(antennas, k, Fading::Rayleigh, &mut rng);
    let total = 2 * n + txs[0].waveform.num_symbols() * n + 2 * n;
    let cfg = MixConfig {
        bw_hz: params.bw.hz(),
        noise_power: 1.0,
    };
    let streams = mix_array(&txs, &channels, total, &cfg, &mut rng);
    (streams, channels, payloads, 2 * n)
}

/// Measures MU-MIMO per-user decode probability: groups of 3 synchronized
/// users on 3 antennas (the baseline's structural maximum), genie channel
/// knowledge.
pub fn measure_mimo_prob(trials: usize) -> f64 {
    let params = PhyParams::default();
    let mut ok = 0usize;
    let mut total = 0usize;
    for t in 0..trials {
        let (streams, channels, payloads, start) = capture(3, 3, false, 1200 + t as u64);
        if let Ok(frames) = mu_mimo_decode(&streams, &channels, &params, start, PAYLOAD, 1.0) {
            for (f, truth) in frames.iter().zip(&payloads) {
                total += 1;
                if f.as_ref()
                    .map(|x| x.crc_ok && &x.payload == truth)
                    .unwrap_or(false)
                {
                    ok += 1;
                }
            }
        } else {
            total += 3;
        }
    }
    ok as f64 / total.max(1) as f64
}

/// Measures Choir-with-3-antennas per-user decode probability for the
/// full 5-user collision (selection combining across antennas).
pub fn measure_choir_mimo_prob(trials: usize) -> f64 {
    let params = PhyParams::default();
    let mut ok = 0usize;
    let mut total = 0usize;
    for t in 0..trials {
        let (streams, _, payloads, start) = capture(3, USERS, true, 1300 + t as u64);
        let merged = choir_multi_antenna(&streams, &params, start, PAYLOAD);
        for truth in &payloads {
            total += 1;
            if merged.iter().any(|d| {
                d.payload_ok()
                    && d.frame
                        .as_ref()
                        .map(|f| &f.payload == truth)
                        .unwrap_or(false)
            }) {
                ok += 1;
            }
        }
    }
    ok as f64 / total.max(1) as f64
}

/// Fig. 12 with injected probabilities (for tests; the IQ measurement
/// functions above feed the real run).
pub fn run_with_probs(
    p_choir5: f64,
    p_mimo3: f64,
    p_choir_mimo5: f64,
    scale: Scale,
) -> FigureReport {
    let params = PhyParams::default();
    let slots = scale.trials(200, 600);
    let base = SimConfig {
        params,
        payload_len: PAYLOAD,
        num_nodes: USERS,
        slots,
        snr_range_db: (8.0, 14.0),
        beacon_overhead_s: 0.01,
        max_backoff_exp: 6,
        traffic: choir_mac::Traffic::Saturated,
        seed: 12,
    };
    let mut fatal = CollisionFatalPhy { params };
    let aloha = run_sim(MacScheme::Aloha, &base, &mut fatal);
    let mut fatal2 = CollisionFatalPhy { params };
    let oracle = run_sim(MacScheme::Oracle, &base, &mut fatal2);
    let mut choir_phy = TabulatedChoirPhy::new(vec![p_choir5; USERS], 4);
    let choir1 = run_sim(MacScheme::Choir, &base, &mut choir_phy);
    let mut choir_mimo_phy = TabulatedChoirPhy::new(vec![p_choir_mimo5; USERS], 4);
    let choir3 = run_sim(MacScheme::Choir, &base, &mut choir_mimo_phy);
    // MU-MIMO MAC: the scheduler serves rotating groups of 3 (its antenna
    // cap); per-slot delivered packets = 3 · p_mimo.
    let slot_s = base.packet_airtime_s() + base.beacon_overhead_s;
    let mimo_tput = 3.0 * p_mimo3 * base.payload_bits() as f64 / slot_s;

    let rows = [
        ("ALOHA", aloha.throughput_bps),
        ("Oracle", oracle.throughput_bps),
        ("MU-MIMO", mimo_tput),
        ("Choir", choir1.throughput_bps),
        ("Choir+MIMO", choir3.throughput_bps),
    ];
    let mut report = FigureReport::new(
        "fig12",
        "Throughput vs uplink MU-MIMO (5 users, 3 antennas)",
    );
    report.push_series(Series::from_labels("thrpt bps", &rows));
    report.note(
        "paper: MU-MIMO 9.99×/3.04× ALOHA/Oracle; Choir 11.07×/3.37×; Choir+MIMO 13.85×/4.22×",
    );
    report
}

/// Fig. 12 end to end: measures all three probabilities at IQ level.
pub fn run(scale: Scale) -> FigureReport {
    let trials = scale.trials(2, 6);
    let p_mimo = measure_mimo_prob(trials);
    let p_choir_mimo = measure_choir_mimo_prob(trials);
    // Single-antenna Choir at 5 users: reuse the fig08 calibration helper.
    let table = super::fig08::calibrate(PhyParams::default(), USERS, trials, (8.0, 14.0));
    // `calibrate` returns one probability per user count (USERS >= 1), so
    // the table is never empty; the fallback is unreachable.
    let p_choir5 = table.last().copied().unwrap_or_default();
    let mut r = run_with_probs(p_choir5, p_mimo, p_choir_mimo, scale);
    r.note(format!(
        "measured p: choir(5,1ant)={p_choir5:.2}, mimo(3,3ant)={p_mimo:.2}, choir(5,3ant)={p_choir_mimo:.2}"
    ));
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_matches_paper_with_plausible_probs() {
        // Probabilities in the ballpark our IQ runs measure.
        let r = run_with_probs(0.9, 0.9, 0.95, Scale::Quick);
        let a = r.value("thrpt bps", "ALOHA").unwrap();
        let o = r.value("thrpt bps", "Oracle").unwrap();
        let m = r.value("thrpt bps", "MU-MIMO").unwrap();
        let c = r.value("thrpt bps", "Choir").unwrap();
        let cm = r.value("thrpt bps", "Choir+MIMO").unwrap();
        // Paper ordering: ALOHA < Oracle < MU-MIMO < Choir < Choir+MIMO.
        assert!(a < o && o < m && m < c && c <= cm, "{a} {o} {m} {c} {cm}");
        // MU-MIMO's structural cap: ~3× Oracle.
        assert!(m / o > 2.0 && m / o < 3.5, "mimo/oracle {}", m / o);
    }

    #[test]
    fn mimo_iq_probability_reasonable() {
        let p = measure_mimo_prob(2);
        assert!(p > 0.5, "p_mimo {p}");
    }
}
