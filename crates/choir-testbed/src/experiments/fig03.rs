//! Fig. 3 — decoding collisions: the spectrogram/FFT view of two collided
//! chirps. Reproduces the paper's running example: two transmitters whose
//! aggregate offsets sit ~50.4 bins apart produce two Fourier peaks
//! (bins "207" and "257" in the paper), and zero-padding exposes the sinc
//! side-lobes that carry the fractional offset.

use crate::report::{FigureReport, Series};
use choir_channel::impairments::HardwareProfile;
use choir_channel::scenario::ScenarioBuilder;
use choir_core::estimator::{EstimatorConfig, OffsetEstimator};
use lora_phy::params::PhyParams;

use super::Scale;

/// Runs the two-collided-chirps demonstration.
pub fn run(_scale: Scale) -> FigureReport {
    let params = PhyParams::default(); // SF8: 256 bins
    let n = params.samples_per_symbol();
    let bin = params.bin_hz();
    // Offsets chosen to land the peaks near the paper's bins 207 / 257 —
    // here 207.0 and 257.4 of a 10×-padded 256-bin alphabet → aggregate
    // offsets 207.0/10 and 257.4/10 bins... we instead use the unpadded
    // convention: peaks at 207/10=20.7 and 25.74 bins apart from zero.
    let mk = |bins: f64, toff: f64| HardwareProfile {
        cfo_hz: bins * bin,
        timing_offset_symbols: toff,
        phase: 0.3,
        cfo_jitter_hz: 0.0,
        timing_jitter_symbols: 0.0,
    };
    let s = ScenarioBuilder::new(params)
        .snrs_db(&[22.0, 20.0])
        .shared_payload(vec![0x11, 0x22, 0x33])
        .profiles(vec![mk(20.70, 0.0), mk(25.74, 0.0)])
        .no_noise()
        .seed(3)
        .build();
    let est = OffsetEstimator::new(n, EstimatorConfig::default());
    let win = &s.samples[s.slot_start + n..s.slot_start + 2 * n];

    let mut report = FigureReport::new(
        "fig03",
        "Two collided chirps: FFT peaks and zero-padded sinc structure",
    );

    // Unpadded 2^n-point transform: two coarse peaks.
    let de = est.dechirp(win);
    let spec = choir_dsp::fft::fft(&de);
    let mut coarse: Vec<(usize, f64)> =
        spec.iter().enumerate().map(|(i, z)| (i, z.abs())).collect();
    coarse.sort_by(|a, b| b.1.total_cmp(&a.1));
    report.push_series(Series::from_labels(
        "coarse peaks (bin)",
        &[
            ("first", coarse[0].0 as f64),
            ("second", coarse[1].0 as f64),
        ],
    ));

    // 10×-padded: refined fractional positions via the full estimator.
    let comps = est.estimate(win);
    let mut pos: Vec<f64> = comps.iter().map(|c| c.freq_bins).collect();
    pos.sort_by(f64::total_cmp);
    report.push_series(Series::from_labels(
        "refined position (bins)",
        &[("first", pos[0]), ("second", pos[1])],
    ));
    report.push_series(Series::from_labels(
        "separation (bins)",
        &[("refined", pos[1] - pos[0])],
    ));
    report.note(format!(
        "truth separation 5.04 bins; measured {:.4}",
        pos[1] - pos[0]
    ));
    report.note("paper: peaks at integer bins 207/257; fractional part (\"50.4\") only visible after zero-padding + leakage modelling");
    report
}

// Tests assert on exactly-representable values (0.0, bin centres).
#[allow(clippy::float_cmp)]
#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn separation_recovered_to_centibins() {
        let r = run(Scale::Quick);
        let sep = r.value("separation (bins)", "refined").unwrap();
        assert!((sep - 5.04).abs() < 0.02, "sep {sep}");
        // Coarse peaks are 5 bins apart (integer truncation).
        let a = r.value("coarse peaks (bin)", "first").unwrap();
        let b = r.value("coarse peaks (bin)", "second").unwrap();
        assert_eq!((a - b).abs(), 5.0);
    }
}
