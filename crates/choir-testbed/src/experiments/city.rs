//! City-scale capacity curves — the paper's urban deployment claim
//! (Sec. 8, "Choir increases the capacity of the network") rendered as
//! a runnable experiment: delivered frames/sec and energy per delivered
//! frame versus offered load for unslotted ALOHA, slotted ALOHA with
//! capture, Choir collision decoding, and SS5G-style collision
//! resolution, over a sharded multi-gateway city.
//!
//! `Scale::Quick` runs a small city (CI-sized); `Scale::Full` runs 100
//! gateways × 10⁴ clients — the same population as the committed
//! `BENCH_city.json`. Both also re-run the heaviest Choir point on a
//! 1-worker and a 4-worker pool and report transcript identity, and a
//! small Choir configuration with an IQ escalation budget so the
//! closed-form model is exercised against the real `choir-core` decode
//! path inside the experiment itself.

use crate::report::{FigureReport, Series};
use choir_city::model::Scheme;
use choir_city::sim::{run_city, CityConfig};
use choir_pool::ThreadPool;

use super::Scale;

/// Offered load points, frames per slot per gateway.
const LOADS: [f64; 4] = [0.5, 1.0, 2.0, 4.0];

fn cfg_at(scale: Scale, load: f64) -> CityConfig {
    let (gateways, clients, slots) = match scale {
        Scale::Quick => (8, 400, 300),
        Scale::Full => (100, 10_000, 400),
    };
    let mut cfg = CityConfig::new(0x00C1_7C17, gateways, clients, slots);
    cfg.client.period_slots = ((f64::from(clients) / load).round() as u32).max(1);
    cfg.shards = 16;
    cfg
}

/// Runs the capacity sweep and the determinism/escalation probes.
pub fn run(scale: Scale) -> FigureReport {
    let pool = choir_pool::global();
    let mut report = FigureReport::new(
        "city",
        "City-scale capacity: delivered fps and energy/frame vs offered load",
    );

    for scheme in Scheme::ALL {
        let mut fps = Vec::new();
        let mut uj = Vec::new();
        for &load in &LOADS {
            let st = run_city(&cfg_at(scale, load), scheme, pool);
            fps.push((load, st.delivered_fps));
            let e = st.energy_uj_per_delivered;
            uj.push((load, if e.is_finite() { e } else { 0.0 }));
        }
        report.push_series(Series::from_xy(&format!("{} fps", scheme.tag()), &fps));
        report.push_series(Series::from_xy(&format!("{} uJ/frame", scheme.tag()), &uj));
    }

    // Determinism probe: heaviest Choir point, 1 vs 4 workers.
    let hi = cfg_at(scale, LOADS[LOADS.len() - 1]);
    let a = run_city(&hi, Scheme::Choir, &ThreadPool::with_threads(1));
    let b = run_city(&hi, Scheme::Choir, &ThreadPool::with_threads(4));
    let identical = a.digest == b.digest && a.totals == b.totals;
    report.push_series(Series::from_labels(
        "determinism",
        &[("transcripts identical", if identical { 1.0 } else { 0.0 })],
    ));

    // Escalation probe: a small dense cell with an IQ budget — the
    // closed-form verdicts are checked against real IQ decodes and the
    // mismatch count is reported (calibration drift is visible, not
    // hidden).
    let mut iq_cfg = CityConfig::new(31, 2, 48, 200);
    iq_cfg.client.period_slots = 24;
    iq_cfg.iq_slots_per_gw = scale.trials(2, 8) as u32;
    let iq = run_city(&iq_cfg, Scheme::Choir, pool);
    report.push_series(Series::from_labels(
        "iq escalation",
        &[
            ("slots escalated", iq.totals.iq_slots as f64),
            ("verdict mismatches", iq.totals.iq_mismatch as f64),
        ],
    ));

    let full = cfg_at(scale, 1.0);
    report.note(format!(
        "{} gateways x {} clients over {} slots per point; loads {:?} frames/slot/gw; \
         choir hi-load digest {:#018x}",
        full.gateways, full.clients_per_gw, full.slots, LOADS, a.digest
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_ordering_and_determinism_hold_at_quick_scale() {
        let r = run(Scale::Quick);
        assert_eq!(r.value("determinism", "transcripts identical"), Some(1.0));
        // The paper's claim, at the heaviest load point: Choir delivers
        // at least as much as slotted ALOHA.
        let choir = r.value("choir fps", "4").unwrap_or(0.0);
        let slotted = r.value("slotted fps", "4").unwrap_or(f64::INFINITY);
        assert!(
            choir >= slotted,
            "choir {choir} under slotted {slotted} at peak load"
        );
        assert!(r.value("iq escalation", "slots escalated").unwrap_or(0.0) >= 1.0);
    }
}
