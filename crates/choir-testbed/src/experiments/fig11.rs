//! Fig. 11 — exploiting sensor-data correlation: (a) which grouping
//! strategy keeps team readings consistent (random / by floor / by
//! centre-distance); (b) end-to-end network throughput for a mixed
//! deployment of in-range and beyond-range sensors.

use crate::report::{FigureReport, Series};
use choir_mac::{run_sim, CollisionFatalPhy, MacScheme, SimConfig, TabulatedChoirPhy};
use choir_sensors::field::{Building, EnvField};
use choir_sensors::grouping::{make_groups, Strategy};
use choir_sensors::recover::{mean_group_error, Quantizer};
use lora_phy::params::PhyParams;

use super::Scale;

/// Fig. 11(a): mean normalised error per grouping strategy, for both
/// sensed quantities.
pub fn run_grouping(scale: Scale) -> FigureReport {
    let building = Building::default();
    let field = EnvField::new(building, 11);
    let sensors = building.place_sensors(36, 3);
    let epochs = scale.trials(2, 6);
    // 1-bit chunks: the most graceful splicing (each recovered chunk
    // halves the uncertainty), and fine enough that the strategies'
    // agreement depths actually differ instead of all collapsing to "no
    // common chunk" at the first cell boundary.
    let qt = Quantizer {
        chunk_bits: 1,
        ..Quantizer::temperature()
    };
    let qh = Quantizer {
        chunk_bits: 1,
        ..Quantizer::humidity()
    };
    let mut temp_rows = Vec::new();
    let mut hum_rows = Vec::new();
    for strat in Strategy::ALL {
        // Group size 9 = one floor's sensor count, so the by-floor
        // strategy forms exactly per-floor teams (as deployed in the
        // paper's building).
        let groups = make_groups(&building, &sensors, strat, 9, 1);
        let mut terr = 0.0;
        let mut herr = 0.0;
        for e in 0..epochs {
            let tgroups: Vec<Vec<f64>> = groups
                .iter()
                .map(|g| {
                    g.iter()
                        .map(|&i| field.temperature_reading(sensors[i], i, e as u64))
                        .collect()
                })
                .collect();
            let hgroups: Vec<Vec<f64>> = groups
                .iter()
                .map(|g| {
                    g.iter()
                        .map(|&i| field.humidity_reading(sensors[i], i, e as u64))
                        .collect()
                })
                .collect();
            terr += mean_group_error(&tgroups, &qt, usize::MAX);
            herr += mean_group_error(&hgroups, &qh, usize::MAX);
        }
        temp_rows.push((strat.label(), terr / epochs as f64));
        hum_rows.push((strat.label(), herr / epochs as f64));
    }
    let mut report = FigureReport::new(
        "fig11a",
        "Sensor grouping strategies: mean normalised error",
    );
    report.push_series(Series::from_labels("temperature", &temp_rows));
    report.push_series(Series::from_labels("humidity", &hum_rows));
    report.note("paper: centre-distance < floor < random");
    report
}

/// Fig. 11(b) with an injected Choir decode-probability table for the
/// near cluster (IQ-calibrated by the bench harness).
pub fn run_end_to_end_with_table(table: &[f64], scale: Scale) -> FigureReport {
    let params = PhyParams::default();
    let slots = scale.trials(150, 500);
    // Near cluster: 8 in-range nodes streaming sensor readings.
    let near = SimConfig {
        params,
        payload_len: 8,
        num_nodes: 8,
        slots,
        snr_range_db: (8.0, 22.0),
        beacon_overhead_s: 0.01,
        max_backoff_exp: 6,
        traffic: choir_mac::Traffic::Saturated,
        seed: 11,
    };
    let mut fatal = CollisionFatalPhy { params };
    let aloha = run_sim(MacScheme::Aloha, &near, &mut fatal);
    let mut fatal2 = CollisionFatalPhy { params };
    let oracle = run_sim(MacScheme::Oracle, &near, &mut fatal2);
    let mut choir_phy = TabulatedChoirPhy::new(table.to_vec(), 3);
    let choir_near = run_sim(MacScheme::Choir, &near, &mut choir_phy);

    // Far teams: two 10-member beyond-range teams, scheduled every 4th
    // beacon slot, each delivering one shared reading per scheduled slot
    // (validated at the IQ level by fig09). Baselines get nothing from
    // them: those nodes are beyond the single-node range.
    let team_success = 0.9; // conservative vs fig09 measurements
    let team_packets_per_s =
        2.0 * team_success / (4.0 * (near.packet_airtime_s() + near.beacon_overhead_s));
    let far_bps = team_packets_per_s * near.payload_bits() as f64;

    let rows = [
        ("ALOHA", aloha.throughput_bps),
        ("Oracle", oracle.throughput_bps),
        ("Choir", choir_near.throughput_bps + far_bps),
    ];
    let mut report = FigureReport::new(
        "fig11b",
        "End-to-end throughput: mixed near sensors + beyond-range teams",
    );
    report.push_series(Series::from_labels("thrpt bps", &rows));
    report.note("paper: Choir ≈29.3× ALOHA, ≈5.6× Oracle");
    report
}

/// Fig. 11(b) end to end (IQ calibration — slow).
pub fn run_end_to_end(scale: Scale) -> FigureReport {
    let trials = scale.trials(2, 5);
    let table = super::fig08::calibrate(PhyParams::default(), 8, trials, (8.0, 22.0));
    run_end_to_end_with_table(&table, scale)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grouping_order_matches_paper() {
        let r = run_grouping(Scale::Quick);
        for q in ["temperature", "humidity"] {
            let rand = r.value(q, "Random").unwrap();
            let floor = r.value(q, "Floor").unwrap();
            let center = r.value(q, "Center Dist.").unwrap();
            assert!(center < rand, "{q}: center {center} rand {rand}");
            assert!(center <= floor + 0.01, "{q}: center {center} floor {floor}");
            assert!(floor <= rand + 0.01, "{q}: floor {floor} rand {rand}");
        }
    }

    #[test]
    fn end_to_end_gains() {
        let table = vec![1.0, 1.0, 0.97, 0.95, 0.9, 0.62, 0.6, 0.55];
        let r = run_end_to_end_with_table(&table, Scale::Quick);
        let a = r.value("thrpt bps", "ALOHA").unwrap();
        let o = r.value("thrpt bps", "Oracle").unwrap();
        let c = r.value("thrpt bps", "Choir").unwrap();
        assert!(c > 3.0 * o, "choir {c} oracle {o}");
        // Conservative vs the paper's 29×: our ALOHA baseline is slotted.
        assert!(c > 6.0 * a, "choir {c} aloha {a}");
    }
}
