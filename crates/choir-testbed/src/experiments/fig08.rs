//! Fig. 8 — disentangling collisions: throughput, latency and
//! transmissions-per-packet for ALOHA, the oracle TDMA scheduler and
//! Choir, (a–c) across SNR regimes for two users and (d–f) across 2–10
//! concurrent users.
//!
//! Methodology (DESIGN.md §4): Choir's per-slot decode probabilities are
//! *calibrated from the real IQ-level decoder* ([`calibrate`]) and fed to
//! the long MAC simulations; the baselines use the collision-fatal LoRaWAN
//! PHY. Absolute bit rates depend on the workload (documented in
//! EXPERIMENTS.md); the paper-comparable quantities are the ratios.

use crate::report::{FigureReport, Series};
use choir_mac::{
    calibrate_choir_phy, run_sim, run_sims_parallel, CollisionFatalPhy, IdealPhy, MacScheme,
    SimConfig, SlotPhy, TabulatedChoirPhy,
};
use lora_phy::params::{PhyParams, SpreadingFactor};

use super::Scale;

/// SNR regimes of Fig. 8(a–c), with the spreading factor the paper's rate
/// adaptation would pick for each.
pub const REGIMES: [(&str, (f64, f64), SpreadingFactor); 3] = [
    ("Low", (0.0, 5.0), SpreadingFactor::Sf10),
    ("Medium", (5.0, 20.0), SpreadingFactor::Sf8),
    ("High", (20.0, 30.0), SpreadingFactor::Sf7),
];

/// Workload shared by every Fig. 8 run.
pub fn sim_config(params: PhyParams, num_nodes: usize, slots: usize, snr: (f64, f64)) -> SimConfig {
    SimConfig {
        params,
        payload_len: 8,
        num_nodes,
        slots,
        snr_range_db: snr,
        beacon_overhead_s: 0.01,
        max_backoff_exp: 6,
        traffic: choir_mac::Traffic::Saturated,
        seed: 8,
    }
}

/// Calibrates Choir's per-user decode probability for each user count in
/// `1..=max_users` by running the real decoder on synthesised collisions.
pub fn calibrate(params: PhyParams, max_users: usize, trials: usize, snr: (f64, f64)) -> Vec<f64> {
    calibrate_choir_phy(params, 8, max_users, trials, snr, 88)
}

/// Fig. 8(a–c) given per-regime calibration tables (`tables[i]` matches
/// `REGIMES[i]`).
pub fn run_snr_with_tables(tables: &[Vec<f64>], scale: Scale) -> FigureReport {
    assert_eq!(tables.len(), REGIMES.len());
    let slots = scale.trials(150, 500);
    let mut tput = Vec::new();
    let mut lat = Vec::new();
    let mut txs = Vec::new();
    for ((label, snr, sf), table) in REGIMES.iter().zip(tables) {
        let params = PhyParams {
            sf: *sf,
            ..PhyParams::default()
        };
        let cfg = sim_config(params, 2, slots, *snr);
        let mut fatal = CollisionFatalPhy { params };
        let aloha = run_sim(MacScheme::Aloha, &cfg, &mut fatal);
        let mut fatal2 = CollisionFatalPhy { params };
        let oracle = run_sim(MacScheme::Oracle, &cfg, &mut fatal2);
        let mut choir_phy = TabulatedChoirPhy::new(table.clone(), 5);
        let choir = run_sim(MacScheme::Choir, &cfg, &mut choir_phy);
        tput.push((
            *label,
            aloha.throughput_bps,
            oracle.throughput_bps,
            choir.throughput_bps,
        ));
        lat.push((
            *label,
            aloha.avg_latency_s,
            oracle.avg_latency_s,
            choir.avg_latency_s,
        ));
        txs.push((
            *label,
            aloha.tx_per_packet,
            oracle.tx_per_packet,
            choir.tx_per_packet,
        ));
    }
    let mut report = FigureReport::new(
        "fig08abc",
        "Two users across SNR regimes: throughput / latency / transmissions",
    );
    for (metric, rows) in [("thrpt bps", &tput), ("latency s", &lat), ("tx/pkt", &txs)] {
        for (idx, scheme) in ["ALOHA", "Oracle", "Choir"].iter().enumerate() {
            let pts: Vec<(&str, f64)> = rows.iter().map(|r| (r.0, [r.1, r.2, r.3][idx])).collect();
            report.push_series(Series::from_labels(&format!("{metric} {scheme}"), &pts));
        }
    }
    report.note(
        "paper (2 users): Choir ≈2.58×/2.11× ALOHA/Oracle throughput; latency ÷3.9/÷1.5; tx ÷3.05",
    );
    report
}

/// Fig. 8(a–c) end to end (calibrates per regime — slow; used by the bench
/// harness and the figures binary).
pub fn run_snr(scale: Scale) -> FigureReport {
    let trials = scale.trials(2, 6);
    let tables: Vec<Vec<f64>> = REGIMES
        .iter()
        .map(|(_, snr, sf)| {
            let params = PhyParams {
                sf: *sf,
                ..PhyParams::default()
            };
            calibrate(params, 2, trials, *snr)
        })
        .collect();
    run_snr_with_tables(&tables, scale)
}

/// Fig. 8(d–f) given a calibration table for the medium regime.
pub fn run_users_with_table(table: &[f64], scale: Scale) -> FigureReport {
    let params = PhyParams::default(); // SF8
    let slots = scale.trials(150, 500);
    let snr = (8.0, 22.0);
    let user_counts: Vec<usize> = (2..=10).collect();
    type MetricFn = fn(&choir_mac::RunMetrics) -> f64;
    let metrics: [(&str, MetricFn); 3] = [
        ("thrpt bps", |m| m.throughput_bps),
        ("latency s", |m| m.avg_latency_s),
        ("tx/pkt", |m| m.tx_per_packet),
    ];
    let mut report = FigureReport::new(
        "fig08def",
        "2–10 concurrent users: throughput / latency / transmissions",
    );
    // Each (user count, scheme) simulation runs exactly once — the three
    // metrics are projections of the same run — batched through the shared
    // worker pool. Job layout: 4 scheme variants per user count.
    const VARIANTS: usize = 4; // ALOHA, Oracle, Choir (tabulated), Ideal
    let jobs: Vec<(MacScheme, SimConfig)> = user_counts
        .iter()
        .flat_map(|&k| {
            let cfg = sim_config(params, k, slots, snr);
            [
                (MacScheme::Aloha, cfg.clone()),
                (MacScheme::Oracle, cfg.clone()),
                (MacScheme::Choir, cfg.clone()),
                (MacScheme::Choir, cfg),
            ]
        })
        .collect();
    let results = run_sims_parallel(&jobs, |i, _, c| -> Box<dyn SlotPhy + Send> {
        match i % VARIANTS {
            0 | 1 => Box::new(CollisionFatalPhy { params: c.params }),
            2 => Box::new(TabulatedChoirPhy::new(table.to_vec(), 5)),
            _ => Box::new(IdealPhy),
        }
    });
    for (mname, get) in metrics {
        for (v, scheme) in ["ALOHA", "Oracle", "Choir", "Ideal"].iter().enumerate() {
            if mname != "thrpt bps" && *scheme == "Ideal" {
                continue; // the paper plots the Ideal line only for throughput
            }
            let r: Vec<(f64, f64)> = user_counts
                .iter()
                .enumerate()
                .map(|(ki, &k)| (k as f64, get(&results[ki * VARIANTS + v])))
                .collect();
            report.push_series(Series::from_xy(&format!("{mname} {scheme}"), &r));
        }
    }
    report.note(
        "paper (10 users): Choir ≈29×/6.84× ALOHA/Oracle throughput; latency ÷19.4/÷4.88; tx ÷4.54",
    );
    report.note("our decoder's density knee sits near 6–8 users (EXPERIMENTS.md discusses the offset-collision statistics)");
    report
}

/// Fig. 8(d–f) end to end (IQ calibration for k=1..10 — slow).
pub fn run_users(scale: Scale) -> FigureReport {
    let trials = scale.trials(2, 6);
    let table = calibrate(PhyParams::default(), 10, trials, (8.0, 22.0));
    let mut r = run_users_with_table(&table, scale);
    r.note(format!("IQ-calibrated p(k): {table:?}"));
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A plausible calibration shape (validated against the IQ decoder in
    /// `timings`-style runs): perfect to ~5 users, degrading beyond.
    fn synthetic_table() -> Vec<f64> {
        vec![1.0, 1.0, 0.97, 0.95, 0.9, 0.62, 0.6, 0.55, 0.35, 0.2]
    }

    #[test]
    fn users_sweep_shapes() {
        let r = run_users_with_table(&synthetic_table(), Scale::Quick);
        // Choir throughput beats Oracle everywhere and grows with density
        // up to the knee.
        let c2 = r.value("thrpt bps Choir", "2").unwrap();
        let c8 = r.value("thrpt bps Choir", "8").unwrap();
        let o8 = r.value("thrpt bps Oracle", "8").unwrap();
        let a8 = r.value("thrpt bps ALOHA", "8").unwrap();
        assert!(c8 > c2, "density should increase Choir throughput");
        assert!(c8 > 3.0 * o8, "Choir {c8} vs Oracle {o8}");
        // Our ALOHA baseline is slotted (stronger than the paper's
        // unsynchronised ALOHA), so gains over it are conservative.
        assert!(c8 > 5.0 * a8, "Choir {c8} vs ALOHA {a8}");
        // Ideal upper-bounds Choir.
        let i8 = r.value("thrpt bps Ideal", "8").unwrap();
        assert!(i8 >= c8);
        // Latency: Choir below Oracle (no round-robin wait).
        let lo = r.value("latency s Oracle", "8").unwrap();
        let lc = r.value("latency s Choir", "8").unwrap();
        assert!(lc < lo);
        // Retransmissions: ALOHA ≫ Choir.
        let ta = r.value("tx/pkt ALOHA", "8").unwrap();
        let tc = r.value("tx/pkt Choir", "8").unwrap();
        // Slotted ALOHA with backoff retransmits moderately (the paper's
        // unslotted baseline wastes 4.5×); the ordering is what matters.
        assert!(ta > 1.2 * tc, "aloha {ta} choir {tc}");
    }

    #[test]
    fn snr_regimes_shapes() {
        // Tables: 2-user decode probability per regime (near-perfect, as
        // measured for 2-user collisions at all regimes).
        let tables = vec![vec![1.0, 0.95], vec![1.0, 0.98], vec![1.0, 0.99]];
        let r = run_snr_with_tables(&tables, Scale::Quick);
        for regime in ["Low", "Medium", "High"] {
            let c = r.value("thrpt bps Choir", regime).unwrap();
            let o = r.value("thrpt bps Oracle", regime).unwrap();
            let a = r.value("thrpt bps ALOHA", regime).unwrap();
            assert!(c > 1.5 * o, "{regime}: choir {c} oracle {o}");
            assert!(c > 1.7 * a, "{regime}: choir {c} aloha {a}");
        }
        // Rate adaptation: higher regime ⇒ faster SF ⇒ more throughput.
        let low = r.value("thrpt bps Choir", "Low").unwrap();
        let high = r.value("thrpt bps Choir", "High").unwrap();
        assert!(high > 2.0 * low, "high {high} low {low}");
    }
}
