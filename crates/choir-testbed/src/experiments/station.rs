//! Streaming-runtime validation — not a paper figure, but the deployment
//! question the testbed must answer before any figure measured through
//! the station path can be trusted: does decoding a *stream* (chunked
//! ingest, ring residency, scheduled capture cutting, queued dispatch)
//! produce exactly what batch-decoding the same pre-cut slots does?
//!
//! The experiment synthesises a run of collision slots, decodes them
//! once through `ChoirDecoder` on pre-cut captures and once through a
//! `choir-station` `Station` fed the concatenated stream in awkward
//! chunks, and diffs the outputs user-by-user at bit level. The
//! `identical` series must be 1.0; anything less is a cutting or
//! dispatch bug, never acceptable tolerance.

use crate::report::{FigureReport, Series};
use choir_channel::impairments::HardwareProfile;
use choir_channel::scenario::ScenarioBuilder;
use choir_core::ChoirDecoder;
use choir_dsp::complex::C64;
use choir_station::{SlotSchedule, Station, StationConfig};
use lora_phy::params::PhyParams;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use super::Scale;

const PAYLOAD_LEN: usize = 6;

fn profile(cfo_bins: f64, toff_symbols: f64) -> HardwareProfile {
    let bin_hz = 125e3 / 256.0;
    HardwareProfile {
        cfo_hz: cfo_bins * bin_hz,
        timing_offset_symbols: toff_symbols,
        phase: 1.0,
        cfo_jitter_hz: 0.0,
        timing_jitter_symbols: 0.0,
    }
}

/// Runs the streaming-vs-batch diff over `trials` synthesised slots.
pub fn run(scale: Scale) -> FigureReport {
    let params = PhyParams::default();
    let slots = scale.trials(4, 16);
    let mut rng = StdRng::seed_from_u64(0x57A7);

    // Synthesise the slot run and its concatenated stream.
    let mut scenarios = Vec::new();
    let mut stream: Vec<C64> = Vec::new();
    let mut starts = Vec::new();
    for i in 0..slots {
        let users = 1 + (i % 3);
        let snrs: Vec<f64> = (0..users).map(|u| 20.0 - 2.0 * u as f64).collect();
        let profs: Vec<HardwareProfile> = (0..users)
            .map(|_| profile(rng.gen_range(-12.0..12.0), rng.gen_range(0.05..0.45)))
            .collect();
        let s = ScenarioBuilder::new(params)
            .snrs_db(&snrs)
            .payload_len(PAYLOAD_LEN)
            .profiles(profs)
            .seed(1000 + i as u64)
            .build();
        stream.resize(stream.len() + rng.gen_range(100..1500usize), C64::ZERO);
        starts.push((stream.len() + s.slot_start) as u64);
        stream.extend_from_slice(&s.samples);
        scenarios.push(s);
    }

    // Batch path: pre-cut captures straight into the decoder.
    let dec = ChoirDecoder::new(params);
    let batch: Vec<_> = scenarios
        .iter()
        .map(|s| dec.decode_known_len(&s.samples, s.slot_start, PAYLOAD_LEN))
        .collect();

    // Streaming path: same samples, chunked ingest through the station.
    let mut cfg = StationConfig::known_len(params, PAYLOAD_LEN);
    cfg.max_in_flight = slots.max(8);
    cfg.pressure_watermark = slots.max(8);
    let station = Station::new(cfg, SlotSchedule::Explicit(starts));
    let chunks: Vec<Vec<C64>> = stream.chunks(1234).map(|c| c.to_vec()).collect();
    let report_s = station.run(chunks);

    // Bit-level diff.
    let mut identical = report_s.slots.len() == batch.len();
    let (mut batch_ok, mut stream_ok) = (0usize, 0usize);
    for users in &batch {
        batch_ok += users
            .iter()
            .filter(|u| u.frame.as_ref().is_some_and(|f| f.crc_ok))
            .count();
    }
    for (slot, b) in report_s.slots.iter().zip(&batch) {
        let a = &slot.result.users;
        stream_ok += a
            .iter()
            .filter(|u| u.frame.as_ref().is_some_and(|f| f.crc_ok))
            .count();
        identical &= a.len() == b.len();
        for (x, y) in a.iter().zip(b) {
            identical &= x.user.offset_bins.to_bits() == y.user.offset_bins.to_bits()
                && x.symbols == y.symbols
                && x.frame == y.frame;
        }
    }

    let mut report = FigureReport::new(
        "station",
        "Streaming station vs batch decoder: bit-level output diff",
    );
    report.push_series(Series::from_labels(
        "paths agree",
        &[("identical", if identical { 1.0 } else { 0.0 })],
    ));
    report.push_series(Series::from_labels(
        "CRC-ok users",
        &[("batch", batch_ok as f64), ("streaming", stream_ok as f64)],
    ));
    report.push_series(Series::from_labels(
        "station health",
        &[
            ("slots shed", report_s.metrics.slots_shed as f64),
            ("samples dropped", report_s.metrics.samples_dropped as f64),
            ("false-trigger rate", report_s.metrics.false_trigger_rate()),
        ],
    ));
    report.note(format!(
        "{} slots streamed in 1234-sample chunks; metrics: {}",
        slots,
        report_s.metrics.to_json()
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streaming_path_is_bit_identical() {
        let r = run(Scale::Quick);
        assert_eq!(r.value("paths agree", "identical"), Some(1.0));
        assert_eq!(
            r.value("CRC-ok users", "batch"),
            r.value("CRC-ok users", "streaming")
        );
        assert_eq!(r.value("station health", "slots shed"), Some(0.0));
        assert!(r.value("CRC-ok users", "batch").unwrap_or(0.0) >= 1.0);
    }
}
