//! Fig. 4 — the residual function `R(f1, f2)` for a representative
//! two-transmitter collision is locally convex, which is what lets
//! Algorithm 1 descend to the true offsets instead of grid-searching.

use crate::report::{FigureReport, Series};
use choir_channel::impairments::HardwareProfile;
use choir_channel::scenario::ScenarioBuilder;
use choir_core::estimator::{EstimatorConfig, OffsetEstimator};
use lora_phy::params::PhyParams;

use super::Scale;

/// Evaluates the residual surface on a grid around the true offsets and
/// verifies local convexity along both axes.
pub fn run(scale: Scale) -> FigureReport {
    let params = PhyParams::default();
    let n = params.samples_per_symbol();
    let bin = params.bin_hz();
    let (f1_true, f2_true) = (40.3, 90.7);
    let mk = |bins: f64| HardwareProfile {
        cfo_hz: bins * bin,
        timing_offset_symbols: 0.0,
        phase: 0.9,
        cfo_jitter_hz: 0.0,
        timing_jitter_symbols: 0.0,
    };
    let s = ScenarioBuilder::new(params)
        .snrs_db(&[18.0, 16.0])
        .profiles(vec![mk(f1_true), mk(f2_true)])
        .seed(4)
        .build();
    let est = OffsetEstimator::new(n, EstimatorConfig::default());
    let win = &s.samples[s.slot_start + n..s.slot_start + 2 * n];
    let de = est.dechirp(win);

    let half_steps = scale.trials(6, 12) as i64;
    let step = 0.05;
    let mut report = FigureReport::new("fig04", "Residual function R(f1, f2) — local convexity");

    // Slice along f1 with f2 pinned at truth, and vice versa.
    let mut slice1 = Vec::new();
    let mut slice2 = Vec::new();
    for k in -half_steps..=half_steps {
        let d = k as f64 * step;
        let (_, r1) = est.fit(&de, &[f1_true + d, f2_true]);
        let (_, r2) = est.fit(&de, &[f1_true, f2_true + d]);
        slice1.push((d, r1));
        slice2.push((d, r2));
    }
    report.push_series(Series::from_xy("R(f1+d, f2*)", &slice1));
    report.push_series(Series::from_xy("R(f1*, f2+d)", &slice2));

    // Convexity check: the minimum of each slice sits within one step of
    // d = 0 and the residual is monotone moving away from it.
    let check = |slice: &[(f64, f64)]| -> (f64, bool) {
        let Some((min_idx, &(dmin, _))) = slice
            .iter()
            .enumerate()
            .min_by(|a, b| (a.1).1.total_cmp(&(b.1).1))
        else {
            return (f64::NAN, false);
        };
        let mono_right = slice[min_idx..]
            .windows(2)
            .all(|w| w[1].1 >= w[0].1 * 0.999);
        let mono_left = slice[..=min_idx]
            .windows(2)
            .all(|w| w[0].1 >= w[1].1 * 0.999);
        (dmin, mono_left && mono_right)
    };
    let (d1, c1) = check(&slice1);
    let (d2, c2) = check(&slice2);
    report.push_series(Series::from_labels(
        "minimum displacement (bins)",
        &[("f1 axis", d1), ("f2 axis", d2)],
    ));
    report.push_series(Series::from_labels(
        "locally convex",
        &[("f1 axis", c1 as i64 as f64), ("f2 axis", c2 as i64 as f64)],
    ));
    report.note("paper: Fig. 4 shows a locally convex bowl around the true offsets");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn residual_is_locally_convex_with_minimum_at_truth() {
        let r = run(Scale::Quick);
        assert_eq!(r.value("locally convex", "f1 axis"), Some(1.0));
        assert_eq!(r.value("locally convex", "f2 axis"), Some(1.0));
        assert!(
            r.value("minimum displacement (bins)", "f1 axis")
                .unwrap()
                .abs()
                <= 0.051
        );
        assert!(
            r.value("minimum displacement (bins)", "f2 axis")
                .unwrap()
                .abs()
                <= 0.051
        );
    }
}
