//! Figure/table reporting: every experiment produces a [`FigureReport`]
//! whose rows/series mirror what the paper plots, printed as aligned text.

use std::fmt;

/// One plotted series (a line or bar group in the paper's figure).
#[derive(Clone, Debug)]
pub struct Series {
    /// Legend label (e.g. "ALOHA", "Oracle", "Choir").
    pub label: String,
    /// `(x label, y value)` points.
    pub points: Vec<(String, f64)>,
}

impl Series {
    /// Builds a series from numeric x values.
    pub fn from_xy(label: &str, pts: &[(f64, f64)]) -> Self {
        Series {
            label: label.to_string(),
            points: pts.iter().map(|(x, y)| (format!("{x}"), *y)).collect(),
        }
    }

    /// Builds a series from string-labelled categories.
    pub fn from_labels(label: &str, pts: &[(&str, f64)]) -> Self {
        Series {
            label: label.to_string(),
            points: pts.iter().map(|(x, y)| (x.to_string(), *y)).collect(),
        }
    }
}

/// A reproduced figure: id, title, series and free-form notes
/// (paper-vs-measured commentary recorded into EXPERIMENTS.md).
#[derive(Clone, Debug)]
pub struct FigureReport {
    /// Figure identifier, e.g. "fig08d".
    pub id: String,
    /// Human title.
    pub title: String,
    /// The plotted series.
    pub series: Vec<Series>,
    /// Notes (assumptions, paper values for comparison).
    pub notes: Vec<String>,
}

impl FigureReport {
    /// Creates an empty report.
    pub fn new(id: &str, title: &str) -> Self {
        FigureReport {
            id: id.to_string(),
            title: title.to_string(),
            series: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Adds a series.
    pub fn push_series(&mut self, s: Series) {
        self.series.push(s);
    }

    /// Adds a note line.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Looks up a value by series label and x label.
    pub fn value(&self, series: &str, x: &str) -> Option<f64> {
        self.series
            .iter()
            .find(|s| s.label == series)?
            .points
            .iter()
            .find(|(px, _)| px == x)
            .map(|(_, y)| *y)
    }
}

impl fmt::Display for FigureReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "=== {} — {} ===", self.id, self.title)?;
        if self.series.is_empty() {
            writeln!(f, "(no data)")?;
        } else {
            // Union of x labels, in first-seen order.
            let mut xs: Vec<String> = Vec::new();
            for s in &self.series {
                for (x, _) in &s.points {
                    if !xs.contains(x) {
                        xs.push(x.clone());
                    }
                }
            }
            let xw = xs.iter().map(|x| x.len()).max().unwrap_or(1).max(4);
            write!(f, "{:>xw$}", "x")?;
            for s in &self.series {
                write!(f, "  {:>12}", truncate(&s.label, 12))?;
            }
            writeln!(f)?;
            for x in &xs {
                write!(f, "{x:>xw$}")?;
                for s in &self.series {
                    match s.points.iter().find(|(px, _)| px == x) {
                        Some((_, y)) => write!(f, "  {y:>12.4}")?,
                        None => write!(f, "  {:>12}", "-")?,
                    }
                }
                writeln!(f)?;
            }
        }
        for n in &self.notes {
            writeln!(f, "  note: {n}")?;
        }
        Ok(())
    }
}

impl FigureReport {
    /// Serialises the report as JSON (hand-rolled — no serde dependency):
    /// `{"id", "title", "series": [{"label", "points": [[x, y], …]}],
    /// "notes": […]}`. Values are emitted as numbers when the x label
    /// parses as one, else as strings.
    pub fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            let mut out = String::with_capacity(s.len());
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    c => out.push(c),
                }
            }
            out
        }
        fn num(y: f64) -> String {
            if y.is_finite() {
                format!("{y}")
            } else {
                "null".to_string()
            }
        }
        let series: Vec<String> = self
            .series
            .iter()
            .map(|s| {
                let pts: Vec<String> = s
                    .points
                    .iter()
                    .map(|(x, y)| {
                        let xs = match x.parse::<f64>() {
                            Ok(v) => format!("{v}"),
                            Err(_) => format!("\"{}\"", esc(x)),
                        };
                        format!("[{xs},{}]", num(*y))
                    })
                    .collect();
                format!(
                    "{{\"label\":\"{}\",\"points\":[{}]}}",
                    esc(&s.label),
                    pts.join(",")
                )
            })
            .collect();
        let notes: Vec<String> = self
            .notes
            .iter()
            .map(|n| format!("\"{}\"", esc(n)))
            .collect();
        format!(
            "{{\"id\":\"{}\",\"title\":\"{}\",\"series\":[{}],\"notes\":[{}]}}",
            esc(&self.id),
            esc(&self.title),
            series.join(","),
            notes.join(",")
        )
    }
}

fn truncate(s: &str, n: usize) -> String {
    if s.len() <= n {
        s.to_string()
    } else {
        s.chars().take(n).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_roundtrip_and_lookup() {
        let mut r = FigureReport::new("fig00", "test");
        r.push_series(Series::from_xy("a", &[(1.0, 10.0), (2.0, 20.0)]));
        r.push_series(Series::from_labels("b", &[("1", 5.0)]));
        r.note("hello");
        assert_eq!(r.value("a", "2"), Some(20.0));
        assert_eq!(r.value("b", "1"), Some(5.0));
        assert_eq!(r.value("b", "2"), None);
        assert_eq!(r.value("c", "1"), None);
        let text = format!("{r}");
        assert!(text.contains("fig00"));
        assert!(text.contains("hello"));
        assert!(text.contains("20.0"));
        // Missing cell rendered as '-'.
        assert!(text.contains('-'));
    }

    #[test]
    fn json_export_well_formed() {
        let mut r = FigureReport::new("figX", "quote \" test");
        r.push_series(Series::from_xy("s1", &[(1.0, 2.5), (2.0, f64::INFINITY)]));
        r.push_series(Series::from_labels("s2", &[("Low", 7.0)]));
        r.note("a note");
        let j = r.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"id\":\"figX\""));
        assert!(j.contains("[1,2.5]"));
        assert!(j.contains("[2,null]"), "{j}");
        assert!(j.contains("[\"Low\",7]"));
        assert!(j.contains("\\\"")); // the escaped quote in the title
                                     // Balanced braces/brackets as a cheap well-formedness check.
        let opens = j.matches('{').count();
        let closes = j.matches('}').count();
        assert_eq!(opens, closes);
    }
}
