//! # choir-testbed — the experiment harness
//!
//! Reproduces every table and figure of the Choir paper's evaluation
//! (Sec. 9) on the simulated urban testbed: one module per figure under
//! [`experiments`], each returning a [`report::FigureReport`] with the
//! same rows/series the paper plots. The `figures` binary runs them from
//! the command line; `choir-bench` wraps them in Criterion benches.

#![deny(missing_docs)]

pub mod ablations;
pub mod experiments;
pub mod report;
pub mod topology;

pub use experiments::{run_all, Scale};
pub use report::{FigureReport, Series};
pub use topology::{Location, Topology};
