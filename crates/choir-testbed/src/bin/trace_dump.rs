//! CLI: decode a seeded multi-user collision with full provenance tracing
//! and dump the flight-recorder log as JSONL on stdout.
//!
//! ```text
//! cargo run --release -p choir-testbed --bin trace_dump
//! cargo run --release -p choir-testbed --bin trace_dump -- --users 4 --seed 7 > trace.jsonl
//! ```
//!
//! Stdout is exactly one JSON object per line (pipe it into `jq` or
//! `grep`); the human summary goes to stderr. The run is self-checking:
//! it exits non-zero unless the log carries `offset_search`, `sic_pass`
//! and `cluster_assign` events that account for **every decoded user**,
//! so CI can archive the artifact and trust it is complete.

use choir_channel::scenario::ScenarioBuilder;
use choir_core::cluster::circular_dist;
use choir_core::decoder::ChoirDecoder;
use choir_core::estimator::{EstimatorConfig, OffsetEstimator};
use choir_core::hmrf::{self, Obs, Weights};
use choir_core::sic::{phased_sic, SicConfig};
use choir_trace::{Record, TraceEvent, TraceLevel};
use lora_phy::params::PhyParams;

const PAYLOAD_LEN: usize = 8;

fn arg_u64(args: &[String], flag: &str, default: u64) -> u64 {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// True when some event of the given kind references a bin within `tol`
/// of `bins` (circular over the FFT length `n`).
fn log_covers(
    records: &[Record],
    bins: f64,
    n: f64,
    tol: f64,
    pick: impl Fn(&TraceEvent) -> Vec<f64>,
) -> bool {
    records
        .iter()
        .flat_map(|r| pick(&r.event))
        .any(|b| circular_dist(b, bins, n) < tol)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let seed = arg_u64(&args, "--seed", 7);
    let users: usize = arg_u64(&args, "--users", 4).min(16) as usize;

    // Full tracing regardless of the environment: this binary *is* the
    // provenance dump, so CHOIR_TRACE=off would make it useless. A dense
    // slot at `Full` produces a few thousand span records, so size the
    // ring to hold the entire run — a dump with overwrite gaps defeats
    // the point.
    if let Err(frozen) = choir_trace::set_capacity(1 << 16) {
        eprintln!("trace_dump: {frozen}; the dump may have overwrite gaps");
    }
    choir_trace::set_level(TraceLevel::Full);
    choir_trace::clear();

    let params = PhyParams::default();
    let n = params.samples_per_symbol();
    // 3 dB SNR ladder starting at 20 dB: dense enough to need phased SIC,
    // spread enough that every user should decode.
    let snrs: Vec<f64> = (0..users).map(|i| 20.0 - 3.0 * i as f64).collect();
    let scenario = ScenarioBuilder::new(params)
        .snrs_db(&snrs)
        .payload_len(PAYLOAD_LEN)
        .seed(seed)
        .build();

    // --- The pipeline under observation --------------------------------
    let decoder = ChoirDecoder::new(params);
    let decoded = decoder.decode_known_len(&scenario.samples, scenario.slot_start, PAYLOAD_LEN);

    // --- HMRF symbol→user attribution (Sec. 6.2) over the preamble ------
    // The streaming decoder maps symbols to users via preamble tracks;
    // the constrained-clustering formulation is the paper's general
    // attribution machinery, run here over the same windows so the dump
    // shows both views of the assignment problem.
    let est = OffsetEstimator::new(n, EstimatorConfig::default());
    let mut obs: Vec<Obs> = Vec::new();
    for w in 0..params.preamble_len {
        choir_trace::set_window(w as u64);
        let lo = scenario.slot_start + w * n;
        let win = &scenario.samples[lo..lo + n];
        let sic = phased_sic(&est, win, &SicConfig::default());
        for c in &sic.components {
            obs.push(Obs {
                frac: (c.freq_bins / n as f64).rem_euclid(1.0),
                mag: c.channel.abs(),
                phase: c.channel.arg(),
                window: w,
            });
        }
    }
    let constraints = hmrf::same_window_cannot_links(&obs);
    let clustering = hmrf::cluster(&obs, users, &constraints, &Weights::default(), 25);

    // --- Dump ------------------------------------------------------------
    let records = choir_trace::drain();
    print!("{}", choir_trace::to_jsonl(&records));

    let crc_ok = decoded.iter().filter(|d| d.payload_ok()).count();
    eprintln!(
        "trace_dump: seed {seed}, {users} users, {} decoded ({crc_ok} crc-ok), \
         {} events ({} dropped), {} hmrf observations in {} clusters",
        decoded.len(),
        records.len(),
        choir_trace::dropped(),
        obs.len(),
        clustering.centroids.len(),
    );

    // --- Self-check: the log must cover every decoded user ---------------
    let mut failures: Vec<String> = Vec::new();
    if decoded.is_empty() {
        failures.push("no users decoded".to_string());
    }
    for kind in [
        "offset_search",
        "sic_pass",
        "cluster_assign",
        "slot_outcome",
    ] {
        if !records.iter().any(|r| r.event.kind() == kind) {
            failures.push(format!("no {kind} event in log"));
        }
    }
    let nf = n as f64;
    for d in &decoded {
        let bins = d.user.offset_bins;
        if !log_covers(&records, bins, nf, 1.5, |e| match e {
            TraceEvent::OffsetSearch { refined_bins, .. } => refined_bins.clone(),
            _ => Vec::new(),
        }) {
            failures.push(format!(
                "no offset_search event refining near {bins:.2} bins"
            ));
        }
        if !log_covers(&records, bins, nf, 1.5, |e| match e {
            TraceEvent::SicPass { cancelled_bins, .. } => cancelled_bins.clone(),
            _ => Vec::new(),
        }) {
            failures.push(format!("no sic_pass event cancelling near {bins:.2} bins"));
        }
        // Some clustered observation (each one carries a cluster_assign
        // event in the log) sits on this user's fractional offset.
        let frac = (bins / nf).rem_euclid(1.0);
        if !obs
            .iter()
            .any(|o| circular_dist(o.frac, frac, 1.0) < 1.5 / nf)
        {
            failures.push(format!("no clustered observation near frac {frac:.4}"));
        }
    }
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("trace_dump: FAIL: {f}");
        }
        std::process::exit(1);
    }
    eprintln!(
        "trace_dump: provenance log covers all {} decoded users",
        decoded.len()
    );
}
