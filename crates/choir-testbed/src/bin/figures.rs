//! CLI: regenerate the paper's figures.
//!
//! ```text
//! cargo run --release -p choir-testbed --bin figures -- all
//! cargo run --release -p choir-testbed --bin figures -- fig08d --full
//! cargo run --release -p choir-testbed --bin figures -- fig10 --json
//! ```

use choir_testbed::experiments::{self, Scale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = if args.iter().any(|a| a == "--full") {
        Scale::Full
    } else {
        Scale::Quick
    };
    let which = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "all".to_string());
    let reports = match which.as_str() {
        "all" => {
            let mut v = experiments::run_all(scale);
            v.extend(choir_testbed::ablations::run_all(scale));
            v
        }
        "fig03" => vec![experiments::fig03::run(scale)],
        "fig04" => vec![experiments::fig04::run(scale)],
        "fig07" => vec![experiments::fig07::run(scale)],
        "fig08abc" => vec![experiments::fig08::run_snr(scale)],
        "fig08def" | "fig08d" => vec![experiments::fig08::run_users(scale)],
        "fig09a" => vec![experiments::fig09::run_throughput(scale)],
        "fig09b" => vec![experiments::fig09::run_range(scale)],
        "fig10" => vec![experiments::fig10::run(scale)],
        "fig11a" => vec![experiments::fig11::run_grouping(scale)],
        "fig11b" => vec![experiments::fig11::run_end_to_end(scale)],
        "fig12" => vec![experiments::fig12::run(scale)],
        "ablations" => choir_testbed::ablations::run_all(scale),
        other => {
            eprintln!("unknown figure id: {other}");
            std::process::exit(2);
        }
    };
    if args.iter().any(|a| a == "--json") {
        let items: Vec<String> = reports.iter().map(|r| r.to_json()).collect();
        println!("[{}]", items.join(","));
    } else {
        for r in reports {
            println!("{r}");
        }
    }
}
