//! Ablation studies for the design choices DESIGN.md §5 calls out. Each
//! returns a [`FigureReport`] so the bench harness and the `figures`
//! binary can print them alongside the paper's figures.

use crate::report::{FigureReport, Series};
use choir_channel::impairments::HardwareProfile;
use choir_channel::scenario::ScenarioBuilder;
use choir_core::decoder::{ChoirConfig, ChoirDecoder, SlotCapture};
use choir_core::estimator::{EstimatorConfig, OffsetEstimator};
use choir_core::lowsnr::{TeamConfig, TeamDecoder};
use choir_dsp::peaks::PeakConfig;
use choir_dsp::stats;
use lora_phy::params::PhyParams;

use crate::experiments::Scale;

fn profile(cfo_bins: f64, toff_symbols: f64, params: &PhyParams) -> HardwareProfile {
    HardwareProfile {
        cfo_hz: cfo_bins * params.bin_hz(),
        timing_offset_symbols: toff_symbols,
        phase: 0.7,
        cfo_jitter_hz: 0.0,
        timing_jitter_symbols: 0.0,
    }
}

/// Zero-padding factor vs offset-estimation accuracy (the paper uses 10×).
pub fn ablate_zeropad(scale: Scale) -> FigureReport {
    let params = PhyParams::default();
    let n = params.samples_per_symbol();
    let trials = scale.trials(4, 12);
    // Two users 2.2 bins apart: with little padding the coarse stage
    // cannot resolve them as separate peaks, which no amount of fine
    // refinement can repair (it only refines peaks it was given).
    let truth = [40.37, 42.61];
    let mut pts = Vec::new();
    let mut found_pts = Vec::new();
    for pad in [1usize, 2, 4, 10, 16] {
        let cfg = EstimatorConfig {
            pad,
            peaks: PeakConfig {
                pad,
                ..PeakConfig::default()
            },
            ..EstimatorConfig::default()
        };
        let est = OffsetEstimator::new(n, cfg);
        let mut errs = Vec::new();
        let mut both_found = 0usize;
        for t in 0..trials {
            let s = ScenarioBuilder::new(params)
                .snrs_db(&[18.0, 15.0])
                .profiles(vec![
                    profile(truth[0], 0.0, &params),
                    profile(truth[1], 0.0, &params),
                ])
                .seed(4000 + t as u64)
                .build();
            let win = &s.samples[s.slot_start + n..s.slot_start + 2 * n];
            // The production path: phased SIC (a lone estimate pass
            // rejects close neighbours as potential leakage; the second
            // SIC phase recovers them).
            let comps =
                choir_core::sic::phased_sic(&est, win, &choir_core::sic::SicConfig::default())
                    .components;
            let mut hits = 0usize;
            for &tr in &truth {
                if let Some(best) = comps
                    .iter()
                    .map(|c| (c.freq_bins - tr).abs())
                    .min_by(f64::total_cmp)
                {
                    if best < 0.5 {
                        errs.push(best);
                        hits += 1;
                    }
                }
            }
            if hits == 2 && comps.len() >= 2 {
                both_found += 1;
            }
        }
        let rmse = if errs.is_empty() {
            f64::NAN
        } else {
            stats::rms(&errs)
        };
        pts.push((pad as f64, rmse));
        found_pts.push((pad as f64, both_found as f64 / trials as f64));
    }
    let mut r = FigureReport::new(
        "ablate_zeropad",
        "Zero-padding factor vs resolving two users 2.2 bins apart",
    );
    r.push_series(Series::from_xy("offset RMSE", &pts));
    r.push_series(Series::from_xy("both users found", &found_pts));
    r.note("fine refinement recovers accuracy from any pad once a peak is detected; the padding's real job is separating nearby users at the coarse stage (the paper's 10× suffices)");
    r
}

/// Boundary-split (ISI step) modelling on/off: decode success with
/// multi-chip fractional timing offsets.
pub fn ablate_steps(scale: Scale) -> FigureReport {
    let params = PhyParams::default();
    let trials = scale.trials(3, 8);
    let mut pts = Vec::new();
    for (label, fit_steps) in [("steps on", true), ("steps off", false)] {
        let cfg = ChoirConfig {
            estimator: EstimatorConfig {
                fit_steps,
                ..EstimatorConfig::default()
            },
            ..ChoirConfig::default()
        };
        let dec = ChoirDecoder::with_config(params, cfg);
        // Near-far with multi-chip fractional delays: without the step
        // term the strong user's reconstruction is poor and its residue
        // buries the weak user. Trials batch-decode through the shared
        // worker pool.
        let slots: Vec<SlotCapture> = (0..trials)
            .map(|t| {
                let s = ScenarioBuilder::new(params)
                    .snrs_db(&[25.0, 17.0])
                    .payload_len(8)
                    .profiles(vec![
                        profile(6.4, 0.37, &params),
                        profile(-11.7, 0.43, &params),
                    ])
                    .seed(4100 + t as u64)
                    .build();
                SlotCapture::known_len(&params, s.samples, s.slot_start, 8)
            })
            .collect();
        let ok: usize = dec
            .decode_slots_parallel(&slots)
            .iter()
            .map(|res| res.ok_users().filter(|d| d.payload_ok()).count())
            .sum();
        let total = 2 * trials;
        pts.push((label, ok as f64 / total as f64));
    }
    let mut r = FigureReport::new(
        "ablate_steps",
        "Boundary-split modelling vs decode success (multi-chip timing offsets)",
    );
    r.push_series(Series::from_labels("decode rate", &pts));
    r
}

/// Packet-level SIC passes: 1 vs 2 at moderate density.
pub fn ablate_sic_passes(scale: Scale) -> FigureReport {
    let params = PhyParams::default();
    let trials = scale.trials(2, 5);
    let k = 6usize;
    let mut pts = Vec::new();
    for passes in [1usize, 2] {
        let cfg = ChoirConfig {
            sic_passes: passes,
            ..ChoirConfig::default()
        };
        let dec = ChoirDecoder::with_config(params, cfg);
        let slots: Vec<SlotCapture> = (0..trials)
            .map(|t| {
                let snrs: Vec<f64> = (0..k).map(|i| 22.0 - i as f64 * 2.2).collect();
                let s = ScenarioBuilder::new(params)
                    .snrs_db(&snrs)
                    .payload_len(8)
                    .seed(4200 + t as u64)
                    .build();
                SlotCapture::known_len(&params, s.samples, s.slot_start, 8)
            })
            .collect();
        let ok: usize = dec
            .decode_slots_parallel(&slots)
            .iter()
            .map(|res| res.ok_users().filter(|d| d.payload_ok()).count())
            .sum();
        let total = k * trials;
        pts.push((format!("{passes} pass"), ok as f64 / total as f64));
    }
    let rows: Vec<(&str, f64)> = pts.iter().map(|(l, v)| (l.as_str(), *v)).collect();
    let mut r = FigureReport::new(
        "ablate_sic",
        "Packet-level SIC passes vs decode rate (6 users)",
    );
    r.push_series(Series::from_labels("decode rate", &rows));
    r
}

/// Preamble-accumulation window for below-noise team detection.
pub fn ablate_preamble_accumulation(scale: Scale) -> FigureReport {
    let params = PhyParams::default();
    let trials = scale.trials(6, 12);
    let mut pts = Vec::new();
    let mut spread_pts = Vec::new();
    for window in [2usize, 4, 8] {
        let mut metrics = Vec::new();
        for t in 0..trials {
            let s = ScenarioBuilder::new(params)
                .snrs_db(&[-17.0; 10])
                .shared_payload(vec![1, 2, 3, 4])
                .seed(4300 + t as u64)
                .build();
            // Use a custom preamble accumulation length by shortening the
            // detector's view: accumulate `window` symbols only.
            let dec = TeamDecoder::new(params, TeamConfig::default());
            // Detection metric at the true start with the configured
            // window: emulate by probing a params clone with a shorter
            // preamble for accumulation purposes.
            let short = PhyParams {
                preamble_len: window,
                ..params
            };
            let dec_short = TeamDecoder::new(short, TeamConfig::default());
            let m = dec_short
                .detect(&s.samples, s.slot_start, s.slot_start + 1)
                .map(|d| d.metric)
                .unwrap_or(0.0);
            metrics.push(m);
            let _ = &dec;
        }
        pts.push((window as f64, stats::mean(&metrics)));
        spread_pts.push((window as f64, stats::std_dev(&metrics)));
    }
    let mut r = FigureReport::new(
        "ablate_preamble",
        "Preamble accumulation length vs team detection metric (10 × −17 dB)",
    );
    r.push_series(Series::from_xy("metric mean", &pts));
    r.push_series(Series::from_xy("metric stdev", &spread_pts));
    r.note("accumulation does not raise the mean peak/median ratio — it shrinks its fluctuation (~√P), which is what makes a fixed threshold reliable");
    r
}

/// Receiver ADC resolution vs near-far reach — Sec. 5.2's closing caveat:
/// "our approach … is always limited by the resolution of the
/// analog-to-digital converter". With an AGC pinned to the strong user, a
/// weak client below the quantisation floor is unrecoverable no matter how
/// good the cancellation.
pub fn ablate_adc(scale: Scale) -> FigureReport {
    use choir_channel::adc::Adc;
    let params = PhyParams::default();
    let trials = scale.trials(2, 5);
    let strong_db = 30.0f64;
    let mut rows = Vec::new();
    for bits in [14u32, 6, 4] {
        let mut pts = Vec::new();
        for weak_db in [10.0f64, 6.0, 2.0] {
            let dec = ChoirDecoder::new(params);
            // Ground-truth payloads are pulled out before the samples move
            // into the batch; the quantised captures then decode in
            // parallel through the shared worker pool.
            let mut slots = Vec::with_capacity(trials);
            let mut weak_payloads = Vec::with_capacity(trials);
            for t in 0..trials {
                let mut s = ScenarioBuilder::new(params)
                    .snrs_db(&[strong_db, weak_db])
                    .payload_len(6)
                    .profiles(vec![
                        profile(9.3, 0.11, &params),
                        profile(-17.8, 0.29, &params),
                    ])
                    .seed(4400 + t as u64)
                    .build();
                // AGC: full scale pinned to the observed peak amplitude.
                let peak = s
                    .samples
                    .iter()
                    .map(|z| z.re.abs().max(z.im.abs()))
                    .fold(0.0f64, f64::max);
                Adc::with_agc(bits, peak).convert_buffer(&mut s.samples);
                weak_payloads.push(s.users[1].payload.clone());
                slots.push(SlotCapture::known_len(&params, s.samples, s.slot_start, 6));
            }
            let ok = dec
                .decode_slots_parallel(&slots)
                .iter()
                .zip(&weak_payloads)
                .filter(|(res, weak_payload)| {
                    res.ok_users().any(|d| {
                        d.payload_ok()
                            && d.frame
                                .as_ref()
                                .map(|f| &f.payload == *weak_payload)
                                .unwrap_or(false)
                    })
                })
                .count();
            pts.push((format!("weak {weak_db} dB"), ok as f64 / trials as f64));
        }
        let named: Vec<(&str, f64)> = pts.iter().map(|(l, v)| (l.as_str(), *v)).collect();
        rows.push((
            format!("{bits}-bit ADC"),
            named
                .iter()
                .map(|(l, v)| (l.to_string(), *v))
                .collect::<Vec<_>>(),
        ));
    }
    let mut r = FigureReport::new(
        "ablate_adc",
        "Weak-user decode rate vs ADC resolution (strong user 30 dB, AGC at peak)",
    );
    for (label, pts) in rows {
        let named: Vec<(&str, f64)> = pts.iter().map(|(l, v)| (l.as_str(), *v)).collect();
        r.push_series(Series::from_labels(&label, &named));
    }
    r.note("spread spectrum is robust to quantisation per se; what kills the weak client is dynamic range — once the quantisation noise (set by the AGC'd full scale) rivals its signal, no cancellation can recover it (the paper's N210 carries 14 bits ≈ 84 dB)");
    r
}

/// Runs every ablation.
pub fn run_all(scale: Scale) -> Vec<FigureReport> {
    vec![
        ablate_zeropad(scale),
        ablate_steps(scale),
        ablate_sic_passes(scale),
        ablate_preamble_accumulation(scale),
        ablate_adc(scale),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeropad_resolves_close_users() {
        let r = ablate_zeropad(Scale::Quick);
        let found1 = r.value("both users found", "1").unwrap();
        let found10 = r.value("both users found", "10").unwrap();
        assert!(found10 >= found1, "pad10 {found10} vs pad1 {found1}");
        assert!(found10 > 0.7, "pad10 resolution rate {found10}");
        let rmse10 = r.value("offset RMSE", "10").unwrap();
        assert!(rmse10 < 0.05, "pad10 RMSE {rmse10}");
    }

    #[test]
    fn adc_resolution_limits_near_far() {
        let r = ablate_adc(Scale::Quick);
        let total = |adc: &str| -> f64 {
            ["weak 10 dB", "weak 6 dB", "weak 2 dB"]
                .iter()
                .map(|x| r.value(adc, x).unwrap())
                .sum()
        };
        let fine = total("14-bit ADC");
        let coarse = total("4-bit ADC");
        assert!(fine > coarse, "14-bit {fine} vs 4-bit {coarse}");
        // An easy weak user survives a fine converter.
        assert!(r.value("14-bit ADC", "weak 10 dB").unwrap() > 0.4);
    }

    #[test]
    fn step_modelling_matters() {
        let r = ablate_steps(Scale::Quick);
        let on = r.value("decode rate", "steps on").unwrap();
        let off = r.value("decode rate", "steps off").unwrap();
        assert!(on > 0.9, "steps-on rate {on}");
        assert!(on > off, "step modelling should help: on {on} vs off {off}");
    }
}
