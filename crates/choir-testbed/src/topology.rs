//! The 10 km² urban testbed: base stations on building roofs, client
//! locations spread over a 3.4 km × 3.2 km neighbourhood (Fig. 6(b) of the
//! paper), with per-location shadowing frozen for reproducibility.

use choir_channel::fading::Shadowing;
use choir_channel::link::LinkBudget;
use lora_phy::params::PhyParams;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A client location in metres, relative to the map's south-west corner.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Location {
    /// Easting (m).
    pub x: f64,
    /// Northing (m).
    pub y: f64,
}

/// The urban deployment map.
#[derive(Clone, Debug)]
pub struct Topology {
    /// Map extent (m): the paper's testbed is 3.4 km × 3.2 km.
    pub extent: (f64, f64),
    /// Base-station position (roof of a central tall building).
    pub base_station: Location,
    /// Link budget (path loss, gains, noise).
    pub link: LinkBudget,
    /// Per-location log-normal shadowing.
    pub shadowing: Shadowing,
    seed: u64,
}

impl Topology {
    /// The default campus-neighbourhood topology.
    pub fn cmu_campus(seed: u64) -> Self {
        Topology {
            extent: (3400.0, 3200.0),
            base_station: Location {
                x: 1700.0,
                y: 1600.0,
            },
            link: LinkBudget::default(),
            shadowing: Shadowing::default(),
            seed,
        }
    }

    /// Distance from a location to the base station (m).
    pub fn distance(&self, loc: Location) -> f64 {
        ((loc.x - self.base_station.x).powi(2) + (loc.y - self.base_station.y).powi(2)).sqrt()
    }

    /// Draws `count` uniform random client locations.
    pub fn random_locations(&self, count: usize) -> Vec<Location> {
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0xA11CE);
        (0..count)
            .map(|_| Location {
                x: rng.gen_range(0.0..self.extent.0),
                y: rng.gen_range(0.0..self.extent.1),
            })
            .collect()
    }

    /// Per-location shadowing in dB — frozen per location (static sensors;
    /// hashing the coordinates seeds the draw).
    pub fn shadowing_db(&self, loc: Location) -> f64 {
        let h = (loc.x * 131.0 + loc.y * 7919.0) as u64 ^ self.seed;
        let mut rng = StdRng::seed_from_u64(h);
        self.shadowing.sample_db(&mut rng)
    }

    /// Received SNR (dB) for a client at `loc` under `params`, shadowing
    /// included.
    pub fn snr_db(&self, loc: Location, params: &PhyParams) -> f64 {
        self.link.snr_db(self.distance(loc), params.bw.hz()) + self.shadowing_db(loc)
    }

    /// Received SNR at an exact distance (no shadowing) — used by the
    /// range-sweep experiments.
    pub fn snr_at_distance_db(&self, d_m: f64, params: &PhyParams) -> f64 {
        self.link.snr_db(d_m, params.bw.hz())
    }

    /// Distance at which the (shadowing-free) SNR equals `snr_db`.
    pub fn distance_for_snr(&self, snr_db: f64, params: &PhyParams) -> f64 {
        // Invert: snr = tx + gains − PL(d) − floor.
        let bw = params.bw.hz();
        let floor = choir_channel::noise::noise_floor_dbm(bw, self.link.noise_figure_db);
        let pl =
            self.link.tx_power_dbm + self.link.tx_gain_db + self.link.rx_gain_db - snr_db - floor;
        self.link.pathloss.distance_for_loss(pl)
    }
}

// Tests assert on exactly-representable values (0.0, bin centres).
#[allow(clippy::float_cmp)]
#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> PhyParams {
        PhyParams::default()
    }

    #[test]
    fn locations_in_bounds_and_reproducible() {
        let t = Topology::cmu_campus(1);
        let a = t.random_locations(100);
        let b = t.random_locations(100);
        assert_eq!(a, b);
        for l in &a {
            assert!(l.x >= 0.0 && l.x <= 3400.0);
            assert!(l.y >= 0.0 && l.y <= 3200.0);
        }
    }

    #[test]
    fn snr_decreases_with_distance() {
        let t = Topology::cmu_campus(2);
        let near = Location {
            x: 1750.0,
            y: 1600.0,
        };
        let far = Location {
            x: 3300.0,
            y: 100.0,
        };
        // Compare shadowing-free to avoid randomness.
        let p = params();
        assert!(
            t.snr_at_distance_db(t.distance(near), &p) > t.snr_at_distance_db(t.distance(far), &p)
        );
    }

    #[test]
    fn shadowing_frozen_per_location() {
        let t = Topology::cmu_campus(3);
        let l = Location { x: 100.0, y: 200.0 };
        assert_eq!(t.shadowing_db(l), t.shadowing_db(l));
        let l2 = Location { x: 101.0, y: 200.0 };
        assert_ne!(t.shadowing_db(l), t.shadowing_db(l2));
    }

    #[test]
    fn distance_for_snr_inverts() {
        let t = Topology::cmu_campus(4);
        let p = params();
        for d in [200.0, 900.0, 2600.0] {
            let snr = t.snr_at_distance_db(d, &p);
            let back = t.distance_for_snr(snr, &p);
            assert!((back - d).abs() / d < 1e-9, "{back} vs {d}");
        }
    }

    #[test]
    fn map_covers_about_10_sq_km() {
        let t = Topology::cmu_campus(5);
        let area_km2 = t.extent.0 * t.extent.1 / 1e6;
        assert!((area_km2 - 10.88).abs() < 0.1);
    }
}
