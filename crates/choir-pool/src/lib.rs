//! Scoped worker pool with a deterministic, order-preserving parallel map.
//!
//! The container this workspace builds in is offline, so no `rayon`: this
//! crate hand-rolls the one primitive the Choir pipeline needs — run the
//! same closure over `0..len` independent items on a handful of scoped
//! `std::thread` workers and hand the results back **in index order**.
//!
//! Determinism contract: for a pure closure `f`, `pool.map(items, f)`
//! returns exactly the same `Vec` (bit-for-bit, including every float)
//! regardless of the worker count or how the OS schedules the workers.
//! Workers only decide *which thread* computes `f(i, &items[i])`; results
//! are written back keyed by `i` and re-assembled in index order, and no
//! reduction (summation, min-selection, …) ever happens across threads.
//! Callers that fold over the output therefore see the sequential fold
//! order. This is what lets `CHOIR_THREADS=1` and `CHOIR_THREADS=8`
//! produce bit-identical decoder output.
//!
//! Work distribution is chunked self-scheduling: indices are split into
//! contiguous chunks and workers claim chunks off a shared atomic counter,
//! so uneven per-item cost (e.g. slots with different collision orders)
//! load-balances without any unsafe code or channels.
//!
//! Panics in the closure are propagated deterministically: every item is
//! still evaluated, each worker records the lowest panicking item index
//! it saw, and the payload re-raised on the calling thread via
//! [`std::panic::resume_unwind`] is the one from the **lowest panicking
//! index overall** — exactly the panic a sequential loop would have
//! raised first, independent of worker count and OS scheduling.
//!
//! All synchronisation goes through the [`choir_sync`] facade, so the
//! chunk-claiming protocol runs under the schedule-exploring model
//! checker (`cargo xtask ci model-check`, `tests/model.rs`).

#![deny(missing_docs)]

use choir_sync::atomic::{AtomicUsize, Ordering};
use choir_sync::{thread, OnceLock};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Environment variable that fixes the worker count for pools built with
/// [`ThreadPool::from_env`] (and thus the [`global`] pool). Unset or
/// unparsable values fall back to [`std::thread::available_parallelism`];
/// `0` is clamped to `1`.
pub const THREADS_ENV: &str = "CHOIR_THREADS";

/// Upper bound on workers so a typo'd `CHOIR_THREADS=4000` cannot fork-bomb
/// the host.
const MAX_THREADS: usize = 256;

/// A caught panic payload, as produced by [`std::panic::catch_unwind`].
type Payload = Box<dyn std::any::Any + Send + 'static>;

/// A lightweight handle describing how many workers to use.
///
/// The pool is *scoped*: it owns no long-lived threads. Each [`map`]
/// call spawns its workers inside a [`std::thread::scope`] and joins them
/// before returning, so borrowed data may flow into the closure freely and
/// a dropped pool leaks nothing.
///
/// [`map`]: ThreadPool::map
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// A pool with exactly `n` workers (`0` is clamped to `1`, large values
    /// to an internal safety cap). `with_threads(1)` never spawns and is
    /// exactly a sequential loop.
    pub fn with_threads(n: usize) -> Self {
        ThreadPool {
            threads: n.clamp(1, MAX_THREADS),
        }
    }

    /// A single-worker pool: every map runs inline on the caller's thread.
    pub fn sequential() -> Self {
        ThreadPool::with_threads(1)
    }

    /// Builds a pool from the environment: honours `CHOIR_THREADS` when set
    /// to a positive integer, otherwise uses the machine's available
    /// parallelism (`1` if that cannot be determined).
    pub fn from_env() -> Self {
        let n = std::env::var(THREADS_ENV)
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                thread::available_parallelism()
                    .map(std::num::NonZeroUsize::get)
                    .unwrap_or(1)
            });
        ThreadPool::with_threads(n)
    }

    /// Number of workers this pool uses.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Maps `f` over `items`, returning one result per item **in item
    /// order**. `f` receives the item index and a reference to the item.
    ///
    /// Deterministic: the output is identical for any worker count. If `f`
    /// panics, the payload re-raised on the calling thread after the
    /// workers shut down is the one from the lowest panicking item index —
    /// the same panic a sequential loop would raise — no matter how many
    /// workers ran or how they interleaved. (Every item is still
    /// evaluated; the remaining panics are discarded.)
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        self.run(items.len(), |i| f(i, &items[i]))
    }

    /// Index-only form of [`map`](Self::map): evaluates `f(i)` for every
    /// `i` in `0..len` and returns the results in index order.
    pub fn run<R, F>(&self, len: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        if self.threads == 1 || len <= 1 {
            return (0..len).map(f).collect();
        }
        let workers = self.threads.min(len);
        // Contiguous chunks claimed off an atomic counter: cheap dynamic
        // load balancing, and chunk granularity keeps per-claim overhead
        // negligible even for micro-tasks.
        let chunk = len.div_ceil(workers * 4).max(1);
        let num_chunks = len.div_ceil(chunk);
        let next_chunk = AtomicUsize::new(0);
        let mut tagged: Vec<(usize, R)> = Vec::with_capacity(len);
        // Lowest panicking item index and its payload, across all workers.
        let mut first_panic: Option<(usize, Payload)> = None;
        thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let f = &f;
                    let next_chunk = &next_chunk;
                    scope.spawn(move || {
                        let mut local: Vec<(usize, R)> = Vec::new();
                        // This worker's lowest panicking item, if any.
                        // Items are caught one at a time so every item is
                        // evaluated exactly once regardless of panics —
                        // that is what makes the winning panic (the
                        // globally lowest index) deterministic.
                        let mut local_panic: Option<(usize, Payload)> = None;
                        loop {
                            let c = next_chunk.fetch_add(1, Ordering::Relaxed); // ordering: chunk ids only claim work; writeback is keyed by item index and joined via scope exit, so claim order never needs to synchronise data
                            if c >= num_chunks {
                                break;
                            }
                            let lo = c * chunk;
                            let hi = (lo + chunk).min(len);
                            for i in lo..hi {
                                match catch_unwind(AssertUnwindSafe(|| f(i))) {
                                    Ok(r) => local.push((i, r)),
                                    Err(p) => {
                                        if local_panic.as_ref().is_none_or(|(j, _)| i < *j) {
                                            local_panic = Some((i, p));
                                        }
                                    }
                                }
                            }
                        }
                        (local, local_panic)
                    })
                })
                .collect();
            for h in handles {
                if let Ok((local, local_panic)) = h.join() {
                    tagged.extend(local);
                    if let Some((i, p)) = local_panic {
                        if first_panic.as_ref().is_none_or(|(j, _)| i < *j) {
                            first_panic = Some((i, p));
                        }
                    }
                }
            }
        });
        if let Some((_, payload)) = first_panic {
            std::panic::resume_unwind(payload);
        }
        // Re-assemble in index order. Chunks are contiguous and disjoint,
        // so sorting by index fully determines the output independent of
        // which worker ran which chunk.
        tagged.sort_unstable_by_key(|&(i, _)| i);
        debug_assert!(tagged.iter().enumerate().all(|(k, &(i, _))| k == i));
        tagged.into_iter().map(|(_, r)| r).collect()
    }
}

impl Default for ThreadPool {
    fn default() -> Self {
        ThreadPool::from_env()
    }
}

/// The process-wide pool, built once from the environment
/// (`CHOIR_THREADS`, else available parallelism). Batch entry points that
/// take no explicit pool use this.
pub fn global() -> &'static ThreadPool {
    static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();
    GLOBAL.get_or_init(ThreadPool::from_env)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_order() {
        let pool = ThreadPool::with_threads(4);
        let items: Vec<usize> = (0..1000).collect();
        let out = pool.map(&items, |i, &x| {
            assert_eq!(i, x);
            x * 3
        });
        assert_eq!(out, (0..1000).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn matches_sequential_for_any_thread_count() {
        let items: Vec<f64> = (0..257).map(|i| i as f64 * 0.37).collect();
        let f = |_: usize, &x: &f64| (x.sin() * 1e9).to_bits();
        let seq = ThreadPool::with_threads(1).map(&items, f);
        for n in [2, 3, 4, 8, 33] {
            let par = ThreadPool::with_threads(n).map(&items, f);
            assert_eq!(seq, par, "threads={n}");
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let pool = ThreadPool::with_threads(8);
        assert_eq!(pool.map(&[] as &[u8], |_, &b| b), Vec::<u8>::new());
        assert_eq!(pool.map(&[7u8], |_, &b| b + 1), vec![8]);
    }

    #[test]
    fn zero_threads_clamped() {
        assert_eq!(ThreadPool::with_threads(0).threads(), 1);
    }

    #[test]
    fn run_covers_every_index_once() {
        let pool = ThreadPool::with_threads(5);
        let out = pool.run(123, |i| i);
        assert_eq!(out, (0..123).collect::<Vec<_>>());
    }

    #[test]
    fn worker_panic_propagates() {
        let pool = ThreadPool::with_threads(4);
        let res = std::panic::catch_unwind(|| {
            pool.run(64, |i| {
                if i == 37 {
                    panic!("boom at {i}");
                }
                i
            })
        });
        let payload = res.expect_err("panic should propagate");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("boom at 37"), "payload: {msg}");
    }

    #[test]
    fn fewer_items_than_workers_still_parallel_and_ordered() {
        // len=3 with 8 workers exercises the parallel path (len > 1) where
        // most workers find the chunk counter already exhausted.
        let pool = ThreadPool::with_threads(8);
        let out = pool.run(3, |i| i * 10);
        assert_eq!(out, vec![0, 10, 20]);
        let items = [5u8, 6, 7];
        assert_eq!(pool.map(&items, |_, &b| b as usize), vec![5, 6, 7]);
    }

    #[test]
    fn zero_length_run_spawns_nothing() {
        let pool = ThreadPool::with_threads(8);
        assert_eq!(pool.run(0, |i| i), Vec::<usize>::new());
    }

    #[test]
    fn concurrent_panics_lowest_index_wins_deterministically() {
        // Two items panic; whichever worker finishes first, the caller must
        // always observe the panic a sequential loop would have hit first.
        let pool = ThreadPool::with_threads(4);
        for round in 0..50 {
            let res = std::panic::catch_unwind(|| {
                pool.run(64, |i| {
                    if i == 17 || i == 37 {
                        panic!("boom at {i}");
                    }
                    i
                })
            });
            let payload = res.expect_err("panic should propagate");
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .unwrap_or_default();
            assert!(
                msg.contains("boom at 17"),
                "round {round}: expected the lowest-index panic, got: {msg}"
            );
        }
    }

    #[test]
    fn global_pool_is_stable() {
        assert_eq!(global().threads(), global().threads());
    }
}
