//! Model-checked suite for the pool's chunked self-scheduling protocol.
//!
//! Runs the *real* `ThreadPool` code under the `choir-sync` schedule
//! explorer: every atomic chunk claim and every scoped spawn/join is a
//! scheduler decision point, and the invariants below are asserted under
//! every explored interleaving. Compiled only under
//! `RUSTFLAGS="--cfg choir_model"` (`cargo xtask ci model-check`).
#![cfg(choir_model)]

use choir_pool::ThreadPool;
use choir_sync::model::{explore, Config};

/// Every index is computed exactly once and written back in order, no
/// matter how workers interleave their chunk claims.
#[test]
fn chunk_claims_cover_every_item_exactly_once() {
    // len=6 with 3 workers → chunk size 1, six claims racing over the
    // shared counter; the output must be identical in every schedule.
    let report = explore(Config::new(600), || {
        let pool = ThreadPool::with_threads(3);
        let out = pool.run(6, |i| i * 10);
        assert_eq!(out, vec![0, 10, 20, 30, 40, 50]);
    });
    assert!(
        report.distinct >= 300,
        "expected a wide interleaving sweep of the claim protocol, got {report:?}"
    );
}

/// `map` writeback stays keyed by item index (not completion order)
/// when there are fewer items than workers and most workers go idle.
#[test]
fn order_preserved_with_idle_workers() {
    let report = explore(Config::new(250), || {
        let pool = ThreadPool::with_threads(4);
        let items = [3u64, 1, 4];
        let out = pool.map(&items, |i, &x| (i as u64) * 100 + x);
        assert_eq!(out, vec![3, 101, 204]);
    });
    assert!(
        report.distinct >= 120,
        "expected many idle-worker schedules, got {report:?}"
    );
}

/// Panic propagation is deterministic under every schedule: with two
/// panicking items the caller always observes the lower index, exactly
/// as a sequential loop would.
#[test]
fn lowest_index_panic_wins_in_every_schedule() {
    let report = explore(Config::new(400), || {
        let pool = ThreadPool::with_threads(2);
        let res = std::panic::catch_unwind(|| {
            pool.run(4, |i| {
                if i == 1 || i == 3 {
                    std::panic::panic_any(format!("boom at {i}"));
                }
                i
            })
        });
        let payload = match res {
            Err(p) => p,
            Ok(_) => unreachable!("panicking items must propagate"),
        };
        let msg = payload.downcast_ref::<String>().map(String::as_str);
        assert_eq!(
            msg,
            Some("boom at 1"),
            "the winning panic must be the lowest item index under every schedule"
        );
    });
    assert!(
        report.distinct >= 150,
        "expected broad panic-schedule coverage, got {report:?}"
    );
}
