//! Quick per-stage latency profile over a few collision slots.
//!
//! `cargo run --release -p choir-bench --example profile_slots`

use choir_bench::two_user_scenario;
use choir_core::decoder::{ChoirDecoder, SlotCapture};
use choir_core::profile;
use lora_phy::params::PhyParams;
use std::time::Instant;

fn main() {
    let slots: Vec<SlotCapture> = (0..3u64)
        .map(|i| {
            let s = two_user_scenario(100 + i);
            SlotCapture::known_len(&s.params, s.samples, s.slot_start, 8)
        })
        .collect();
    let dec = ChoirDecoder::new(PhyParams::default());
    let _ = profile::snapshot_and_reset();
    let t = Instant::now();
    let pool = choir_pool::ThreadPool::with_threads(1);
    for out in dec.decode_slots_with_pool(&slots, pool) {
        println!("slot: {} users, err={:?}", out.users.len(), out.error);
    }
    let total = t.elapsed().as_secs_f64();
    let snap = profile::snapshot_and_reset();
    let accounted: f64 = snap.iter().sum();
    println!("total {total:.3} s over {} slots", slots.len());
    for (name, secs) in profile::STAGE_NAMES.iter().zip(snap) {
        println!("  {name:<8} {secs:8.3} s  ({:5.1}%)", 100.0 * secs / total);
    }
    println!(
        "  {:<8} {:8.3} s  ({:5.1}%)",
        "other",
        total - accounted,
        100.0 * (total - accounted) / total
    );
}
