//! The figure-regeneration harness: runs every experiment of the paper's
//! evaluation once (Quick scale) and prints the same rows/series the
//! paper's tables and figures report, followed by the ablation studies.
//! This is intentionally a one-shot harness rather than a repeated timing
//! loop: each "benchmark" here is an end-to-end experiment whose output —
//! not its latency — is the artefact.

use choir_testbed::experiments::{self, Scale};

fn main() {
    println!("################ Choir figure regeneration (Quick scale) ################");
    for r in experiments::run_all(Scale::Quick) {
        println!("{r}");
    }
    println!("################ Ablations ################");
    for r in choir_testbed::ablations::run_all(Scale::Quick) {
        println!("{r}");
    }
    println!("(run `cargo run --release -p choir-testbed --bin figures -- all --full` for paper-scale trial counts)");
}
