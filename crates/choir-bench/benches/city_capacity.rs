//! City-scale capacity curves: delivered frames/sec and energy per
//! delivered frame versus offered load, for unslotted ALOHA, slotted
//! ALOHA with capture, Choir collision decoding, and SS5G-style
//! collision resolution — 10⁶ duty-cycled clients across 100 gateways.
//!
//! Unlike the IQ benches this is not a wall-clock horse race: every
//! number here is a *deterministic* output of `choir-city`'s integer
//! closed-form model, so the committed `BENCH_city.json` reference is
//! reproduced exactly on every machine and the `cargo xtask ci
//! city-capacity` gate can hold hard floors instead of fuzzy ratios.
//! The bench still enforces its own two hard gates before writing JSON:
//!
//! * the highest-load Choir run must produce bit-identical transcripts
//!   on a 1-worker and a 4-worker pool (`transcripts_bit_identical`);
//! * Choir must deliver at least as many frames/sec as slotted ALOHA at
//!   the highest load — the paper's headline capacity claim.

use std::time::Instant;

use choir_city::model::Scheme;
use choir_city::sim::{run_city, CityConfig, CityStats};
use choir_pool::ThreadPool;

const GATEWAYS: u32 = 100;
const CLIENTS_PER_GW: u32 = 10_000;
const SLOTS: u32 = 400;
const SEED: u64 = 0x00C1_7C17;

/// Offered load points, frames per slot per gateway.
const LOADS: [f64; 5] = [0.25, 0.5, 1.0, 2.0, 4.0];

fn cfg_for_load(load: f64) -> CityConfig {
    let mut cfg = CityConfig::new(SEED, GATEWAYS, CLIENTS_PER_GW, SLOTS);
    // One frame per client per period: period = clients / load makes the
    // fleet offer `load` fresh frames per slot per gateway.
    cfg.client.period_slots = ((f64::from(CLIENTS_PER_GW) / load).round() as u32).max(1);
    cfg.shards = 16;
    cfg
}

/// JSON has no `inf`: a scheme that delivered nothing reports 0 energy
/// per frame (its fps floor is 0 too, so the gate reads it correctly).
fn fin(v: f64) -> f64 {
    if v.is_finite() {
        v
    } else {
        0.0
    }
}

fn fmt_curve(vals: &[f64]) -> String {
    let items: Vec<String> = vals.iter().map(|v| format!("{:.4}", fin(*v))).collect();
    format!("[{}]", items.join(", "))
}

fn main() {
    let t = Instant::now();
    println!(
        "## bench group: city_capacity ({GATEWAYS} gateways x {CLIENTS_PER_GW} clients = {} clients, {SLOTS} slots)",
        u64::from(GATEWAYS) * u64::from(CLIENTS_PER_GW)
    );

    let pool = choir_pool::global();
    let mut fps: Vec<Vec<f64>> = vec![Vec::new(); Scheme::ALL.len()];
    let mut uj: Vec<Vec<f64>> = vec![Vec::new(); Scheme::ALL.len()];
    let mut ratio: Vec<Vec<f64>> = vec![Vec::new(); Scheme::ALL.len()];
    let mut top: Vec<Option<CityStats>> = vec![None; Scheme::ALL.len()];
    for &load in &LOADS {
        let cfg = cfg_for_load(load);
        for (i, &scheme) in Scheme::ALL.iter().enumerate() {
            let st = run_city(&cfg, scheme, pool);
            println!(
                "city_capacity/{:<7} load {load:4.2}  {:9.2} fps  {:9.2} uJ/frame  (delivered {}/{} offered)",
                scheme.tag(),
                st.delivered_fps,
                st.energy_uj_per_delivered,
                st.totals.delivered,
                st.totals.offered,
            );
            fps[i].push(st.delivered_fps);
            uj[i].push(st.energy_uj_per_delivered);
            ratio[i].push(st.delivery_ratio);
            top[i] = Some(st);
        }
    }
    let top: Vec<CityStats> = top.into_iter().map(|s| s.unwrap_or_default()).collect();

    // Determinism gate: the heaviest Choir run, explicitly on 1 vs 4
    // workers (independent of however the global pool is sized).
    let hi_cfg = cfg_for_load(LOADS[LOADS.len() - 1]);
    let a = run_city(&hi_cfg, Scheme::Choir, &ThreadPool::with_threads(1));
    let b = run_city(&hi_cfg, Scheme::Choir, &ThreadPool::with_threads(4));
    let identical = a.digest == b.digest && a.totals == b.totals;
    println!(
        "city_capacity/identity  1-thread digest {:#018x}, 4-thread digest {:#018x} ({})",
        a.digest,
        b.digest,
        if identical {
            "bit-identical"
        } else {
            "DIVERGED"
        }
    );

    let wall_s = t.elapsed().as_secs_f64();
    let scheme_scalars: Vec<String> = Scheme::ALL
        .iter()
        .zip(&top)
        .enumerate()
        .map(|(i, (s, st))| {
            // The peak over the whole load sweep is the per-scheme
            // capacity number the gate floors: end-of-curve values hit
            // 0 for schemes that collapse, which would gate nothing.
            let peak = fps[i].iter().fold(0.0f64, |a, &v| a.max(v));
            format!(
                concat!(
                    "  \"{tag}_delivered_fps\": {fps:.4},\n",
                    "  \"{tag}_peak_fps\": {peak:.4},\n",
                    "  \"{tag}_energy_uj_per_frame\": {uj:.4},\n",
                    "  \"{tag}_delivery_ratio\": {ratio:.6},\n"
                ),
                tag = s.tag(),
                fps = st.delivered_fps,
                peak = peak,
                uj = fin(st.energy_uj_per_delivered),
                ratio = st.delivery_ratio,
            )
        })
        .collect();
    let scheme_curves: Vec<String> = Scheme::ALL
        .iter()
        .enumerate()
        .map(|(i, s)| {
            format!(
                concat!(
                    "  \"curve_{tag}_fps\": {fps},\n",
                    "  \"curve_{tag}_uj\": {uj},\n",
                    "  \"curve_{tag}_ratio\": {ratio},\n"
                ),
                tag = s.tag(),
                fps = fmt_curve(&fps[i]),
                uj = fmt_curve(&uj[i]),
                ratio = fmt_curve(&ratio[i]),
            )
        })
        .collect();
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"city_capacity\",\n",
            "  \"gateways\": {gw},\n",
            "  \"clients_per_gw\": {cpg},\n",
            "  \"clients_total\": {total},\n",
            "  \"slots\": {slots},\n",
            "  \"loads\": {loads},\n",
            "{scalars}",
            "{curves}",
            "  \"choir_digest_hi_load\": {digest},\n",
            "  \"transcripts_bit_identical\": {identical},\n",
            "  \"wall_s\": {wall:.2}\n",
            "}}\n"
        ),
        gw = GATEWAYS,
        cpg = CLIENTS_PER_GW,
        total = u64::from(GATEWAYS) * u64::from(CLIENTS_PER_GW),
        slots = SLOTS,
        loads = fmt_curve(&LOADS),
        scalars = scheme_scalars.join(""),
        curves = scheme_curves.join(""),
        digest = a.digest,
        identical = identical,
        wall = wall_s,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_city.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }

    if !identical {
        eprintln!("ERROR: city transcript diverged between 1 and 4 worker threads");
        std::process::exit(1);
    }
    let choir_hi = top[2].delivered_fps;
    let slotted_hi = top[1].delivered_fps;
    if choir_hi < slotted_hi {
        eprintln!(
            "ERROR: Choir ({choir_hi:.2} fps) under slotted ALOHA ({slotted_hi:.2} fps) at peak load"
        );
        std::process::exit(1);
    }
    println!("city_capacity done in {wall_s:.2} s");
}
