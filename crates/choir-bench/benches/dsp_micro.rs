//! Micro-benchmarks for the DSP substrate: the per-symbol operations the
//! decoder's cost model is built from.

use choir_dsp::complex::C64;
use choir_dsp::fft::FftPlan;
use choir_dsp::linalg::least_squares;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

fn tone(n: usize, f: f64) -> Vec<C64> {
    (0..n)
        .map(|t| C64::cis(2.0 * std::f64::consts::PI * f * t as f64 / n as f64))
        .collect()
}

fn bench_fft(c: &mut Criterion) {
    let mut g = c.benchmark_group("fft");
    for &n in &[256usize, 1024, 2560usize] {
        let plan = FftPlan::new(n);
        let x = tone(n, 10.3);
        g.bench_function(format!("forward_{n}"), |b| {
            b.iter_batched(
                || x.clone(),
                |mut buf| plan.forward(&mut buf),
                BatchSize::SmallInput,
            )
        });
    }
    // The paper's 10×-padded symbol transform (SF8).
    let plan = FftPlan::new(2560);
    let x = tone(256, 50.4);
    g.bench_function("padded_10x_sf8", |b| b.iter(|| plan.forward_padded(&x)));
    g.finish();
}

fn bench_least_squares(c: &mut Criterion) {
    let n = 256;
    let basis: Vec<Vec<C64>> = [10.2, 55.7, 130.4, 201.9]
        .iter()
        .map(|&f| tone(n, f))
        .collect();
    let y: Vec<C64> = (0..n)
        .map(|t| basis.iter().map(|b| b[t]).sum())
        .collect();
    c.bench_function("least_squares_4tones_256", |b| {
        b.iter(|| least_squares(&basis, &y).unwrap())
    });
}

fn bench_modem(c: &mut Criterion) {
    let params = lora_phy::params::PhyParams::default();
    let modem = lora_phy::modem::Modem::new(params);
    let wave = modem.modulate(&[42u16; 16]);
    c.bench_function("lora_demod_16_symbols_sf8", |b| {
        b.iter(|| modem.demodulate(&wave, 0, 16))
    });
    let payload = vec![0xA5u8; 16];
    c.bench_function("lora_frame_encode_16B", |b| {
        b.iter(|| lora_phy::frame::encode_frame(&params, &payload))
    });
    let syms = lora_phy::frame::encode_frame(&params, &payload);
    c.bench_function("lora_frame_decode_16B", |b| {
        b.iter(|| lora_phy::frame::decode_frame(&params, &syms).unwrap())
    });
}

criterion_group!(benches, bench_fft, bench_least_squares, bench_modem);
criterion_main!(benches);
