//! Micro-benchmarks for the DSP substrate: the per-symbol operations the
//! decoder's cost model is built from.

// Bench binary: setup failures should abort loudly.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use choir_bench::harness::Bench;
use choir_dsp::backend;
use choir_dsp::complex::C64;
use choir_dsp::fft::FftPlan;
use choir_dsp::linalg::least_squares;

fn tone(n: usize, f: f64) -> Vec<C64> {
    (0..n)
        .map(|t| C64::cis(2.0 * std::f64::consts::PI * f * t as f64 / n as f64))
        .collect()
}

fn bench_fft(b: &mut Bench) {
    for &n in &[256usize, 1024, 2560usize] {
        let plan = FftPlan::new(n);
        let x = tone(n, 10.3);
        b.bench(&format!("fft_forward_{n}"), || {
            let mut buf = x.clone();
            plan.forward(&mut buf);
            buf
        });
    }
    // The paper's 10×-padded symbol transform (SF8).
    let plan = FftPlan::new(2560);
    let x = tone(256, 50.4);
    b.bench("fft_padded_10x_sf8", || plan.forward_padded(&x));
}

fn bench_least_squares(b: &mut Bench) {
    let n = 256;
    let basis: Vec<Vec<C64>> = [10.2, 55.7, 130.4, 201.9]
        .iter()
        .map(|&f| tone(n, f))
        .collect();
    let y: Vec<C64> = (0..n).map(|t| basis.iter().map(|b| b[t]).sum()).collect();
    b.bench("least_squares_4tones_256", || {
        least_squares(&basis, &y).expect("bench basis is well-conditioned")
    });
}

fn bench_modem(b: &mut Bench) {
    let params = lora_phy::params::PhyParams::default();
    let modem = lora_phy::modem::Modem::new(params);
    let wave = modem.modulate(&[42u16; 16]);
    b.bench("lora_demod_16_symbols_sf8", || {
        modem.demodulate(&wave, 0, 16)
    });
    let payload = vec![0xA5u8; 16];
    b.bench("lora_frame_encode_16B", || {
        lora_phy::frame::encode_frame(&params, &payload)
    });
    let syms = lora_phy::frame::encode_frame(&params, &payload);
    b.bench("lora_frame_decode_16B", || {
        lora_phy::frame::decode_frame(&params, &syms).expect("bench frame is valid")
    });
}

/// The four backend-dispatched kernels, each forced through every
/// backend the host offers — the per-kernel counterpart of the
/// end-to-end backend sweep in `batch_decode`.
fn bench_backend_kernels(b: &mut Bench) {
    let n = 256;
    let x = tone(n, 10.3);
    let y = tone(n, 55.7);
    let taps: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
    let w = -2.0 * std::f64::consts::PI / n as f64;
    let twiddles: Vec<C64> = (0..n / 2).map(|k| C64::cis(w * k as f64)).collect();
    let amp = C64::cis(0.7);
    for kind in backend::available() {
        backend::force(kind);
        let name = kind.name();
        b.bench(&format!("conj_dot_256_{name}"), || {
            backend::conj_dot(&x, &y)
        });
        b.bench(&format!("axpy_256_{name}"), || {
            let mut acc = y.clone();
            backend::axpy(&mut acc, &x, amp, true);
            acc
        });
        b.bench(&format!("dot_rev_256_{name}"), || {
            backend::dot_rev(&x, &taps)
        });
        b.bench(&format!("butterflies_256_{name}"), || {
            let mut buf = x.clone();
            backend::butterflies(&mut buf, &twiddles, true);
            buf
        });
    }
    backend::reset();
}

/// The blocked candidate-scoring kernels swept over block widths `W =
/// 1, 2, 4, 8` on every backend: one iteration synthesizes, projects
/// and scores a full prefilter grid of [`GRID`] candidates in
/// `ceil(GRID/W)` chunks — exactly the work one refine line search
/// spends per coordinate. The per-width throughput on the dispatched
/// (auto) backend is merged into `BENCH_kernel.json` as
/// `micro_block_candidates_per_sec` so width regressions show up next
/// to the end-to-end numbers. A width above the ISA's
/// `MAX_BLOCK_WIDTH` is skipped with a note rather than failing, so
/// the sweep list can outrun narrow ISAs.
fn bench_blocked_kernels(b: &mut Bench) -> Vec<(usize, f64)> {
    const GRID: usize = 8;
    let n = 256;
    let y = tone(n, 33.31);
    let grid: Vec<f64> = (0..GRID).map(|g| 33.0 + 0.1 * g as f64).collect();
    let mut auto_widths = Vec::new();
    let kinds = backend::available();
    for &w in &[1usize, 2, 4, 8] {
        if w > backend::MAX_BLOCK_WIDTH {
            println!(
                "dsp_micro/blocked_w{w}: skipped (width exceeds MAX_BLOCK_WIDTH = {} on this ISA)",
                backend::MAX_BLOCK_WIDTH
            );
            continue;
        }
        let mut block = vec![C64::ZERO; n * w];
        let mut proj = vec![C64::ZERO; w];
        let mut coeffs = vec![C64::ZERO; w];
        let mut scores = vec![0.0f64; w];
        let mut run = |name: &str| {
            b.bench(name, || {
                let mut acc = 0.0f64;
                let mut q = 0;
                while q < GRID {
                    let cw = w.min(GRID - q);
                    let blk = &mut block[..n * cw];
                    backend::tone_block_into(blk, n, &grid[q..q + cw]);
                    backend::conj_dot_block(blk, &y, &mut proj[..cw]);
                    let inv_n = 1.0 / n as f64;
                    for (c, &p) in coeffs[..cw].iter_mut().zip(&proj[..cw]) {
                        *c = p.scale(inv_n);
                    }
                    backend::residual_block(blk, &y, &coeffs[..cw], &mut scores[..cw]);
                    acc += scores[..cw].iter().sum::<f64>();
                    q += cw;
                }
                acc
            })
        };
        // Dispatched path first — this is the number the artifact records.
        let median_ns = run(&format!("blocked_grid{GRID}_w{w}_auto"));
        auto_widths.push((w, GRID as f64 / (median_ns * 1e-9)));
        for kind in kinds.clone() {
            backend::force(kind);
            run(&format!("blocked_grid{GRID}_w{w}_{}", kind.name()));
            backend::reset();
        }
    }
    auto_widths
}

fn main() {
    let mut b = Bench::group("dsp_micro");
    bench_fft(&mut b);
    bench_least_squares(&mut b);
    bench_modem(&mut b);
    bench_backend_kernels(&mut b);
    let widths = bench_blocked_kernels(&mut b);
    let fields: Vec<String> = widths
        .iter()
        .map(|(w, cps)| format!("\"w{w}\": {cps:.0}"))
        .collect();
    let kpath = std::path::Path::new(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_kernel.json"
    ));
    choir_bench::merge_bench_json(
        kpath,
        &[(
            "micro_block_candidates_per_sec",
            format!("{{{}}}", fields.join(", ")),
        )],
    );
}
