//! Micro-benchmarks for the DSP substrate: the per-symbol operations the
//! decoder's cost model is built from.

// Bench binary: setup failures should abort loudly.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use choir_bench::harness::Bench;
use choir_dsp::backend;
use choir_dsp::complex::C64;
use choir_dsp::fft::FftPlan;
use choir_dsp::linalg::least_squares;

fn tone(n: usize, f: f64) -> Vec<C64> {
    (0..n)
        .map(|t| C64::cis(2.0 * std::f64::consts::PI * f * t as f64 / n as f64))
        .collect()
}

fn bench_fft(b: &mut Bench) {
    for &n in &[256usize, 1024, 2560usize] {
        let plan = FftPlan::new(n);
        let x = tone(n, 10.3);
        b.bench(&format!("fft_forward_{n}"), || {
            let mut buf = x.clone();
            plan.forward(&mut buf);
            buf
        });
    }
    // The paper's 10×-padded symbol transform (SF8).
    let plan = FftPlan::new(2560);
    let x = tone(256, 50.4);
    b.bench("fft_padded_10x_sf8", || plan.forward_padded(&x));
}

fn bench_least_squares(b: &mut Bench) {
    let n = 256;
    let basis: Vec<Vec<C64>> = [10.2, 55.7, 130.4, 201.9]
        .iter()
        .map(|&f| tone(n, f))
        .collect();
    let y: Vec<C64> = (0..n).map(|t| basis.iter().map(|b| b[t]).sum()).collect();
    b.bench("least_squares_4tones_256", || {
        least_squares(&basis, &y).expect("bench basis is well-conditioned")
    });
}

fn bench_modem(b: &mut Bench) {
    let params = lora_phy::params::PhyParams::default();
    let modem = lora_phy::modem::Modem::new(params);
    let wave = modem.modulate(&[42u16; 16]);
    b.bench("lora_demod_16_symbols_sf8", || {
        modem.demodulate(&wave, 0, 16)
    });
    let payload = vec![0xA5u8; 16];
    b.bench("lora_frame_encode_16B", || {
        lora_phy::frame::encode_frame(&params, &payload)
    });
    let syms = lora_phy::frame::encode_frame(&params, &payload);
    b.bench("lora_frame_decode_16B", || {
        lora_phy::frame::decode_frame(&params, &syms).expect("bench frame is valid")
    });
}

/// The four backend-dispatched kernels, each forced through every
/// backend the host offers — the per-kernel counterpart of the
/// end-to-end backend sweep in `batch_decode`.
fn bench_backend_kernels(b: &mut Bench) {
    let n = 256;
    let x = tone(n, 10.3);
    let y = tone(n, 55.7);
    let taps: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
    let w = -2.0 * std::f64::consts::PI / n as f64;
    let twiddles: Vec<C64> = (0..n / 2).map(|k| C64::cis(w * k as f64)).collect();
    let amp = C64::cis(0.7);
    for kind in backend::available() {
        backend::force(kind);
        let name = kind.name();
        b.bench(&format!("conj_dot_256_{name}"), || {
            backend::conj_dot(&x, &y)
        });
        b.bench(&format!("axpy_256_{name}"), || {
            let mut acc = y.clone();
            backend::axpy(&mut acc, &x, amp, true);
            acc
        });
        b.bench(&format!("dot_rev_256_{name}"), || {
            backend::dot_rev(&x, &taps)
        });
        b.bench(&format!("butterflies_256_{name}"), || {
            let mut buf = x.clone();
            backend::butterflies(&mut buf, &twiddles, true);
            buf
        });
    }
    backend::reset();
}

fn main() {
    let mut b = Bench::group("dsp_micro");
    bench_fft(&mut b);
    bench_least_squares(&mut b);
    bench_modem(&mut b);
    bench_backend_kernels(&mut b);
}
