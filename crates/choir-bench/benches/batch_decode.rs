//! Batch slot-decoding throughput across worker-thread counts.
//!
//! Decodes a fixed batch of 16 two-user collision slots through
//! [`ChoirDecoder::decode_slots_with_pool`] at 1, 2 and 4 threads,
//! reports slots/sec and a per-stage latency breakdown
//! (dechirp/refine/demod/SIC/cluster) for each, verifies the outputs are
//! **bit-identical** across thread counts (the choir-pool determinism
//! contract), and emits the measurements as `BENCH_parallel.json` plus a
//! before/after single-thread record (`BENCH_kernel.json`) in the
//! workspace root. Bit-identity against the *pre-change* decoded streams
//! is enforced separately by the golden capture test in
//! `crates/choir-core/tests/parallel.rs`.
//!
//! A second sweep forces each DSP backend `choir_dsp::backend` offers
//! (scalar oracle, portable, and the host's vector ISA) on a fresh
//! thread and re-measures single-thread throughput, verifying the
//! decoded streams stay bit-identical across backends (the 0-ULP
//! dispatch contract). `BENCH_kernel.json` records the scalar and
//! vector slots/sec so the CI gate can floor the scalar path and track
//! the vector speedup.
//!
//! Speedup is bounded by the host's core count: on a single-core
//! container every thread count measures the same throughput (plus a few
//! percent of pool overhead), which is expected and recorded as such.

use std::time::Instant;

use choir_bench::two_user_scenario;
use choir_core::decoder::{ChoirDecoder, SlotCapture, SlotResult};
use choir_core::profile;
use choir_dsp::backend::{self, BackendKind};
use choir_pool::ThreadPool;
use lora_phy::params::PhyParams;

const SLOTS: usize = 16;
const PAYLOAD_LEN: usize = 8;

/// PR-2 single-thread baseline (slots/sec) on this host, captured in
/// `BENCH_parallel.json` before the allocation-free offset-search kernel
/// landed. `BENCH_kernel.json` reports the current number against it.
const PR2_BASELINE_SLOTS_PER_SEC: f64 = 0.5514;

/// Flattens every float (as raw bits), symbol and counter in the batch
/// result into one comparable vector — any cross-thread divergence, even
/// a last-ulp one, changes the digest.
fn digest(results: &[SlotResult]) -> Vec<u64> {
    let mut d = Vec::new();
    for r in results {
        d.push(r.users.len() as u64);
        d.push(r.error.is_some() as u64);
        for u in &r.users {
            d.push(u.user.offset_bins.to_bits());
            d.push(u.user.frac.to_bits());
            d.push(u.user.channel.re.to_bits());
            d.push(u.user.channel.im.to_bits());
            d.push(u.user.timing_chips.to_bits());
            d.extend(u.symbols.iter().map(|&s| u64::from(s)));
            d.push(u.sync_errors as u64);
            d.push(u.erasures as u64);
            d.push(u.payload_ok() as u64);
        }
    }
    d
}

fn main() {
    let slots: Vec<SlotCapture> = (0..SLOTS as u64)
        .map(|i| {
            let s = two_user_scenario(100 + i);
            SlotCapture::known_len(&s.params, s.samples, s.slot_start, PAYLOAD_LEN)
        })
        .collect();
    let dec = ChoirDecoder::new(PhyParams::default());

    println!("## bench group: batch_decode");
    println!(
        "host parallelism: {} core(s)",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );

    let mut rows = Vec::new();
    let mut baseline: Option<Vec<u64>> = None;
    let mut identical = true;
    let mut single_thread_sps = 0.0f64;
    let mut single_thread_stages = [0.0f64; profile::NUM_STAGES];
    for threads in [1usize, 2, 4] {
        let pool = ThreadPool::with_threads(threads);
        // Warm-up: touch the FFT plan cache and the pool's spawn path.
        let _ = dec.decode_slots_with_pool(&slots[..2], pool);
        // Drop warm-up time from the per-stage accounting.
        let _ = profile::snapshot_and_reset();
        let t = Instant::now();
        let out = dec.decode_slots_with_pool(&slots, pool);
        let elapsed = t.elapsed().as_secs_f64();
        let stages = profile::snapshot_and_reset();
        let sps = SLOTS as f64 / elapsed;
        let d = digest(&out);
        match &baseline {
            None => baseline = Some(d),
            Some(b) => {
                if *b != d {
                    identical = false;
                }
            }
        }
        println!(
            "batch_decode/{SLOTS}slots_2users_t{threads:<2}      {sps:8.3} slots/s  ({elapsed:.3} s elapsed)"
        );
        // Per-stage latency breakdown (CPU seconds summed across workers).
        let total: f64 = stages.iter().sum();
        for (name, s) in profile::STAGE_NAMES.iter().zip(&stages) {
            println!(
                "    stage {name:<8} {s:7.3} s  ({:5.1}%)",
                100.0 * s / total.max(1e-12)
            );
        }
        if threads == 1 {
            single_thread_sps = sps;
            single_thread_stages = stages;
        }
        rows.push(format!(
            "    {{\"threads\": {threads}, \"slots_per_sec\": {sps:.4}, \"elapsed_s\": {elapsed:.4}, \"stages_s\": {}}}",
            stages_json(&stages)
        ));
    }
    println!("outputs bit-identical across thread counts: {identical}");
    if !identical {
        eprintln!("ERROR: parallel decode diverged from sequential output");
        std::process::exit(1);
    }

    // Per-backend sweep: force each DSP backend on a fresh thread (so
    // per-thread caches cannot carry state between runs), measure
    // single-thread throughput, and hold every decoded stream to the
    // auto-dispatched digest from the sweep above.
    let mut backends_identical = true;
    let mut scalar_sps = 0.0f64;
    let mut vector_backend = BackendKind::Portable;
    let mut vector_sps = 0.0f64;
    for kind in backend::available() {
        let (sps, d) = run_backend(kind, &slots);
        let same = baseline.as_ref() == Some(&d);
        if !same {
            backends_identical = false;
        }
        println!(
            "batch_decode/{SLOTS}slots_2users_{:<9}  {sps:8.3} slots/s  (bit-identical: {same})",
            kind.name()
        );
        if kind == BackendKind::Scalar {
            scalar_sps = sps;
        } else {
            // `available()` lists backends narrowest-first, so the last
            // non-scalar entry is the widest vector ISA the host offers.
            vector_backend = kind;
            vector_sps = sps;
        }
    }
    println!("outputs bit-identical across DSP backends: {backends_identical}");
    if !backends_identical {
        eprintln!("ERROR: a DSP backend diverged from the scalar oracle");
        std::process::exit(1);
    }

    let json = format!(
        "{{\n  \"bench\": \"batch_decode\",\n  \"slots\": {SLOTS},\n  \"users_per_slot\": 2,\n  \"payload_len\": {PAYLOAD_LEN},\n  \"host_cores\": {},\n  \"outputs_bit_identical\": {identical},\n  \"runs\": [\n{}\n  ]\n}}\n",
        std::thread::available_parallelism().map_or(1, |n| n.get()),
        rows.join(",\n"),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_parallel.json");
    match std::fs::write(path, json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }

    // Kernel before/after record: single-thread throughput against the
    // PR-2 baseline, with the per-stage breakdown of the current run.
    let speedup = single_thread_sps / PR2_BASELINE_SLOTS_PER_SEC;
    println!(
        "single-thread: {single_thread_sps:.4} slots/s vs {PR2_BASELINE_SLOTS_PER_SEC} baseline ({speedup:.2}x)"
    );
    println!(
        "backends: scalar {scalar_sps:.4} slots/s, {} {vector_sps:.4} slots/s ({:.2}x)",
        vector_backend.name(),
        vector_sps / scalar_sps.max(1e-12)
    );
    let kernel_json = format!(
        "{{\n  \"bench\": \"offset_search_kernel\",\n  \"slots\": {SLOTS},\n  \"users_per_slot\": 2,\n  \"payload_len\": {PAYLOAD_LEN},\n  \"before_slots_per_sec\": {PR2_BASELINE_SLOTS_PER_SEC},\n  \"after_slots_per_sec\": {single_thread_sps:.4},\n  \"speedup\": {speedup:.3},\n  \"scalar_slots_per_sec\": {scalar_sps:.4},\n  \"vector_backend\": \"{}\",\n  \"vector_slots_per_sec\": {vector_sps:.4},\n  \"outputs_bit_identical\": {identical},\n  \"backends_bit_identical\": {backends_identical},\n  \"stages_s\": {}\n}}\n",
        vector_backend.name(),
        stages_json(&single_thread_stages),
    );
    let kpath = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernel.json");
    match std::fs::write(kpath, kernel_json) {
        Ok(()) => println!("wrote {kpath}"),
        Err(e) => eprintln!("could not write {kpath}: {e}"),
    }
}

/// Measures single-thread slots/sec with `kind` forced, on a fresh
/// thread, returning the throughput and the output digest.
fn run_backend(kind: BackendKind, slots: &[SlotCapture]) -> (f64, Vec<u64>) {
    let joined = std::thread::scope(|s| {
        s.spawn(move || {
            backend::force(kind);
            let dec = ChoirDecoder::new(PhyParams::default());
            // Warm-up: FFT plans, tone bases, scratch arenas.
            let _ = dec.decode_slots_with_pool(&slots[..2], ThreadPool::sequential());
            let t = Instant::now();
            let out = dec.decode_slots_with_pool(slots, ThreadPool::sequential());
            let elapsed = t.elapsed().as_secs_f64();
            (slots.len() as f64 / elapsed, digest(&out))
        })
        .join()
    });
    backend::reset();
    match joined {
        Ok(v) => v,
        Err(_) => {
            eprintln!("ERROR: decode panicked under the {} backend", kind.name());
            std::process::exit(1);
        }
    }
}

/// Renders a stage-time array as a JSON object keyed by stage name.
fn stages_json(stages: &[f64; profile::NUM_STAGES]) -> String {
    let fields: Vec<String> = profile::STAGE_NAMES
        .iter()
        .zip(stages)
        .map(|(name, s)| format!("\"{name}\": {s:.4}"))
        .collect();
    format!("{{{}}}", fields.join(", "))
}
