//! Batch slot-decoding throughput across worker-thread counts.
//!
//! Decodes a fixed batch of 16 two-user collision slots through
//! [`ChoirDecoder::decode_slots_with_pool`] at 1, 2 and 4 threads,
//! reports slots/sec for each, verifies the outputs are **bit-identical**
//! across thread counts (the choir-pool determinism contract), and emits
//! the measurements as `BENCH_parallel.json` in the workspace root.
//!
//! Speedup is bounded by the host's core count: on a single-core
//! container every thread count measures the same throughput (plus a few
//! percent of pool overhead), which is expected and recorded as such.

use std::time::Instant;

use choir_bench::two_user_scenario;
use choir_core::decoder::{ChoirDecoder, SlotCapture, SlotResult};
use choir_pool::ThreadPool;
use lora_phy::params::PhyParams;

const SLOTS: usize = 16;
const PAYLOAD_LEN: usize = 8;

/// Flattens every float (as raw bits), symbol and counter in the batch
/// result into one comparable vector — any cross-thread divergence, even
/// a last-ulp one, changes the digest.
fn digest(results: &[SlotResult]) -> Vec<u64> {
    let mut d = Vec::new();
    for r in results {
        d.push(r.users.len() as u64);
        d.push(r.error.is_some() as u64);
        for u in &r.users {
            d.push(u.user.offset_bins.to_bits());
            d.push(u.user.frac.to_bits());
            d.push(u.user.channel.re.to_bits());
            d.push(u.user.channel.im.to_bits());
            d.push(u.user.timing_chips.to_bits());
            d.extend(u.symbols.iter().map(|&s| u64::from(s)));
            d.push(u.sync_errors as u64);
            d.push(u.erasures as u64);
            d.push(u.payload_ok() as u64);
        }
    }
    d
}

fn main() {
    let slots: Vec<SlotCapture> = (0..SLOTS as u64)
        .map(|i| {
            let s = two_user_scenario(100 + i);
            SlotCapture::known_len(&s.params, s.samples, s.slot_start, PAYLOAD_LEN)
        })
        .collect();
    let dec = ChoirDecoder::new(PhyParams::default());

    println!("## bench group: batch_decode");
    println!(
        "host parallelism: {} core(s)",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );

    let mut rows = Vec::new();
    let mut baseline: Option<Vec<u64>> = None;
    let mut identical = true;
    for threads in [1usize, 2, 4] {
        let pool = ThreadPool::with_threads(threads);
        // Warm-up: touch the FFT plan cache and the pool's spawn path.
        let _ = dec.decode_slots_with_pool(&slots[..2], pool);
        let t = Instant::now();
        let out = dec.decode_slots_with_pool(&slots, pool);
        let elapsed = t.elapsed().as_secs_f64();
        let sps = SLOTS as f64 / elapsed;
        let d = digest(&out);
        match &baseline {
            None => baseline = Some(d),
            Some(b) => {
                if *b != d {
                    identical = false;
                }
            }
        }
        println!(
            "batch_decode/{SLOTS}slots_2users_t{threads:<2}      {sps:8.3} slots/s  ({elapsed:.3} s elapsed)"
        );
        rows.push(format!(
            "    {{\"threads\": {threads}, \"slots_per_sec\": {sps:.4}, \"elapsed_s\": {elapsed:.4}}}"
        ));
    }
    println!("outputs bit-identical across thread counts: {identical}");
    if !identical {
        eprintln!("ERROR: parallel decode diverged from sequential output");
        std::process::exit(1);
    }

    let json = format!(
        "{{\n  \"bench\": \"batch_decode\",\n  \"slots\": {SLOTS},\n  \"users_per_slot\": 2,\n  \"payload_len\": {PAYLOAD_LEN},\n  \"host_cores\": {},\n  \"outputs_bit_identical\": {identical},\n  \"runs\": [\n{}\n  ]\n}}\n",
        std::thread::available_parallelism().map_or(1, |n| n.get()),
        rows.join(",\n"),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_parallel.json");
    match std::fs::write(path, json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}
