//! Batch slot-decoding throughput across worker-thread counts.
//!
//! Decodes a fixed batch of 16 two-user collision slots through
//! [`ChoirDecoder::decode_slots_with_pool`] at 1, 2 and 4 threads,
//! reports slots/sec and a per-stage latency breakdown
//! (dechirp/refine/demod/SIC/cluster) for each, verifies the outputs are
//! **bit-identical** across thread counts (the choir-pool determinism
//! contract), and emits the measurements as `BENCH_parallel.json` plus a
//! before/after single-thread record (`BENCH_kernel.json`) in the
//! workspace root. Bit-identity against the *pre-change* decoded streams
//! is enforced separately by the golden capture test in
//! `crates/choir-core/tests/parallel.rs`.
//!
//! A second sweep forces each DSP backend `choir_dsp::backend` offers
//! (scalar oracle, portable, and the host's vector ISA) on a fresh
//! thread and re-measures single-thread throughput, verifying the
//! decoded streams stay bit-identical across backends (the 0-ULP
//! dispatch contract). `BENCH_kernel.json` records the scalar and
//! vector slots/sec so the CI gate can floor the scalar path and track
//! the vector speedup.
//!
//! A third sweep re-decodes the batch at every candidate-block width
//! (`W = 1, 2, 4, 8` in the refine prefilter), verifying the decoded
//! streams are bit-identical at every width and recording the per-width
//! throughput. `BENCH_kernel.json` gains `refine_s` (single-thread
//! refine-stage seconds), `block_width` (the default width) and
//! `blocked_slots_per_sec` (throughput at that width), all gated by
//! `cargo xtask ci bench-smoke`.
//!
//! Stage accounting: workers accumulate stage time per thread, so the
//! multi-thread rows of `BENCH_parallel.json` report both the raw
//! cumulative CPU seconds (`stages_cpu_s`, summed across workers — it
//! can exceed the elapsed wall time) and the per-worker average
//! (`stages_s = stages_cpu_s / threads`, comparable to wall time). The
//! CI gate floors neither: it gates the single-thread `stages_s` of
//! `BENCH_kernel.json` (via `refine_s`), where the two accountings
//! coincide.
//!
//! Speedup is bounded by the host's core count: on a single-core
//! container every thread count measures the same throughput (plus a few
//! percent of pool overhead), which is expected and recorded as such.

use std::time::Instant;

use choir_bench::{merge_bench_json, two_user_scenario};
use choir_core::decoder::{ChoirConfig, ChoirDecoder, SlotCapture, SlotResult};
use choir_core::estimator::EstimatorConfig;
use choir_core::profile;
use choir_dsp::backend::{self, BackendKind};
use choir_pool::ThreadPool;
use lora_phy::params::PhyParams;

const SLOTS: usize = 16;
const PAYLOAD_LEN: usize = 8;

/// Candidate-block widths the refine prefilter is re-decoded at.
const WIDTHS: [usize; 4] = [1, 2, 4, 8];

/// PR-2 single-thread baseline (slots/sec) on this host, captured in
/// `BENCH_parallel.json` before the allocation-free offset-search kernel
/// landed. `BENCH_kernel.json` reports the current number against it.
const PR2_BASELINE_SLOTS_PER_SEC: f64 = 0.5514;

/// Flattens every float (as raw bits), symbol and counter in the batch
/// result into one comparable vector — any cross-thread divergence, even
/// a last-ulp one, changes the digest.
fn digest(results: &[SlotResult]) -> Vec<u64> {
    let mut d = Vec::new();
    for r in results {
        d.push(r.users.len() as u64);
        d.push(r.error.is_some() as u64);
        for u in &r.users {
            d.push(u.user.offset_bins.to_bits());
            d.push(u.user.frac.to_bits());
            d.push(u.user.channel.re.to_bits());
            d.push(u.user.channel.im.to_bits());
            d.push(u.user.timing_chips.to_bits());
            d.extend(u.symbols.iter().map(|&s| u64::from(s)));
            d.push(u.sync_errors as u64);
            d.push(u.erasures as u64);
            d.push(u.payload_ok() as u64);
        }
    }
    d
}

fn main() {
    let slots: Vec<SlotCapture> = (0..SLOTS as u64)
        .map(|i| {
            let s = two_user_scenario(100 + i);
            SlotCapture::known_len(&s.params, s.samples, s.slot_start, PAYLOAD_LEN)
        })
        .collect();
    let dec = ChoirDecoder::new(PhyParams::default());

    println!("## bench group: batch_decode");
    println!(
        "host parallelism: {} core(s)",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );

    let mut rows = Vec::new();
    let mut baseline: Option<Vec<u64>> = None;
    let mut identical = true;
    let mut single_thread_sps = 0.0f64;
    let mut single_thread_stages = [0.0f64; profile::NUM_STAGES];
    for threads in [1usize, 2, 4] {
        let pool = ThreadPool::with_threads(threads);
        // Warm-up: touch the FFT plan cache and the pool's spawn path.
        let _ = dec.decode_slots_with_pool(&slots[..2], pool);
        // Drop warm-up time from the per-stage accounting.
        let _ = profile::snapshot_and_reset();
        let t = Instant::now();
        let out = dec.decode_slots_with_pool(&slots, pool);
        let elapsed = t.elapsed().as_secs_f64();
        let stages = profile::snapshot_and_reset();
        let sps = SLOTS as f64 / elapsed;
        let d = digest(&out);
        match &baseline {
            None => baseline = Some(d),
            Some(b) => {
                if *b != d {
                    identical = false;
                }
            }
        }
        println!(
            "batch_decode/{SLOTS}slots_2users_t{threads:<2}      {sps:8.3} slots/s  ({elapsed:.3} s elapsed)"
        );
        // Per-stage latency breakdown. Workers accumulate per thread, so
        // the raw sums are cumulative CPU seconds; the per-worker
        // average (cpu / threads) is the number comparable to elapsed
        // wall time. Shares are identical either way.
        let total: f64 = stages.iter().sum();
        let per_worker: [f64; profile::NUM_STAGES] = stages.map(|s| s / threads as f64);
        for (name, (cpu, avg)) in profile::STAGE_NAMES
            .iter()
            .zip(stages.iter().zip(&per_worker))
        {
            println!(
                "    stage {name:<8} {avg:7.3} s/worker  ({cpu:7.3} s cpu, {:5.1}%)",
                100.0 * cpu / total.max(1e-12)
            );
        }
        if threads == 1 {
            single_thread_sps = sps;
            single_thread_stages = stages;
        }
        rows.push(format!(
            "    {{\"threads\": {threads}, \"slots_per_sec\": {sps:.4}, \"elapsed_s\": {elapsed:.4}, \"stages_s\": {}, \"stages_cpu_s\": {}}}",
            stages_json(&per_worker),
            stages_json(&stages)
        ));
    }
    println!("outputs bit-identical across thread counts: {identical}");
    if !identical {
        eprintln!("ERROR: parallel decode diverged from sequential output");
        std::process::exit(1);
    }

    // Per-backend sweep: force each DSP backend on a fresh thread (so
    // per-thread caches cannot carry state between runs), measure
    // single-thread throughput, and hold every decoded stream to the
    // auto-dispatched digest from the sweep above.
    let mut backends_identical = true;
    let mut scalar_sps = 0.0f64;
    let mut vector_backend = BackendKind::Portable;
    let mut vector_sps = 0.0f64;
    for kind in backend::available() {
        let (sps, d) = run_backend(kind, &slots);
        let same = baseline.as_ref() == Some(&d);
        if !same {
            backends_identical = false;
        }
        println!(
            "batch_decode/{SLOTS}slots_2users_{:<9}  {sps:8.3} slots/s  (bit-identical: {same})",
            kind.name()
        );
        if kind == BackendKind::Scalar {
            scalar_sps = sps;
        } else {
            // `available()` lists backends narrowest-first, so the last
            // non-scalar entry is the widest vector ISA the host offers.
            vector_backend = kind;
            vector_sps = sps;
        }
    }
    println!("outputs bit-identical across DSP backends: {backends_identical}");
    if !backends_identical {
        eprintln!("ERROR: a DSP backend diverged from the scalar oracle");
        std::process::exit(1);
    }

    // Candidate-block width sweep: the refine prefilter must produce the
    // exact same decode at every block width (the width only chunks the
    // surrogate grid into kernel calls), and the throughput at the
    // default width is what the CI gate floors as blocked_slots_per_sec.
    let default_width = EstimatorConfig::default().block_width;
    let mut widths_identical = true;
    let mut width_sps = Vec::new();
    let mut blocked_sps = 0.0f64;
    for bw in WIDTHS {
        let (sps, d) = run_width(bw, &slots);
        let same = baseline.as_ref() == Some(&d);
        if !same {
            widths_identical = false;
        }
        println!(
            "batch_decode/{SLOTS}slots_2users_w{bw:<9} {sps:8.3} slots/s  (bit-identical: {same})"
        );
        width_sps.push(format!("\"w{bw}\": {sps:.4}"));
        if bw == default_width {
            blocked_sps = sps;
        }
    }
    println!("outputs bit-identical across block widths: {widths_identical}");
    if !widths_identical {
        eprintln!("ERROR: a candidate-block width diverged from the default decode");
        std::process::exit(1);
    }

    let json = format!(
        "{{\n  \"bench\": \"batch_decode\",\n  \"slots\": {SLOTS},\n  \"users_per_slot\": 2,\n  \"payload_len\": {PAYLOAD_LEN},\n  \"host_cores\": {},\n  \"outputs_bit_identical\": {identical},\n  \"runs\": [\n{}\n  ]\n}}\n",
        std::thread::available_parallelism().map_or(1, |n| n.get()),
        rows.join(",\n"),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_parallel.json");
    match std::fs::write(path, json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }

    // Kernel before/after record: single-thread throughput against the
    // PR-2 baseline, with the per-stage breakdown of the current run.
    let speedup = single_thread_sps / PR2_BASELINE_SLOTS_PER_SEC;
    println!(
        "single-thread: {single_thread_sps:.4} slots/s vs {PR2_BASELINE_SLOTS_PER_SEC} baseline ({speedup:.2}x)"
    );
    println!(
        "backends: scalar {scalar_sps:.4} slots/s, {} {vector_sps:.4} slots/s ({:.2}x)",
        vector_backend.name(),
        vector_sps / scalar_sps.max(1e-12)
    );
    let refine_s = profile::STAGE_NAMES
        .iter()
        .position(|n| *n == "refine")
        .map_or(0.0, |i| single_thread_stages[i]);
    println!("single-thread refine stage: {refine_s:.4} s (block width {default_width}, {blocked_sps:.4} slots/s)");
    // Merge (rather than rewrite) so the blocked per-width kernel
    // timings `dsp_micro` owns survive a batch_decode refresh.
    let kpath = std::path::Path::new(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_kernel.json"
    ));
    merge_bench_json(
        kpath,
        &[
            ("bench", "\"offset_search_kernel\"".into()),
            ("slots", SLOTS.to_string()),
            ("users_per_slot", "2".into()),
            ("payload_len", PAYLOAD_LEN.to_string()),
            (
                "before_slots_per_sec",
                PR2_BASELINE_SLOTS_PER_SEC.to_string(),
            ),
            ("after_slots_per_sec", format!("{single_thread_sps:.4}")),
            ("speedup", format!("{speedup:.3}")),
            ("scalar_slots_per_sec", format!("{scalar_sps:.4}")),
            ("vector_backend", format!("\"{}\"", vector_backend.name())),
            ("vector_slots_per_sec", format!("{vector_sps:.4}")),
            ("outputs_bit_identical", identical.to_string()),
            ("backends_bit_identical", backends_identical.to_string()),
            ("widths_bit_identical", widths_identical.to_string()),
            ("block_width", default_width.to_string()),
            ("blocked_slots_per_sec", format!("{blocked_sps:.4}")),
            ("refine_s", format!("{refine_s:.4}")),
            (
                "width_slots_per_sec",
                format!("{{{}}}", width_sps.join(", ")),
            ),
            ("stages_s", stages_json(&single_thread_stages)),
        ],
    );
}

/// Measures single-thread slots/sec with the refine candidate-block
/// width forced to `bw`, returning the throughput and output digest.
fn run_width(bw: usize, slots: &[SlotCapture]) -> (f64, Vec<u64>) {
    let cfg = ChoirConfig {
        estimator: EstimatorConfig {
            block_width: bw,
            ..EstimatorConfig::default()
        },
        ..ChoirConfig::default()
    };
    let dec = ChoirDecoder::with_config(PhyParams::default(), cfg);
    // Warm-up: FFT plans, tone bases, scratch arenas.
    let _ = dec.decode_slots_with_pool(&slots[..2], ThreadPool::sequential());
    let t = Instant::now();
    let out = dec.decode_slots_with_pool(slots, ThreadPool::sequential());
    let elapsed = t.elapsed().as_secs_f64();
    (slots.len() as f64 / elapsed, digest(&out))
}

/// Measures single-thread slots/sec with `kind` forced, on a fresh
/// thread, returning the throughput and the output digest.
fn run_backend(kind: BackendKind, slots: &[SlotCapture]) -> (f64, Vec<u64>) {
    let joined = std::thread::scope(|s| {
        s.spawn(move || {
            backend::force(kind);
            let dec = ChoirDecoder::new(PhyParams::default());
            // Warm-up: FFT plans, tone bases, scratch arenas.
            let _ = dec.decode_slots_with_pool(&slots[..2], ThreadPool::sequential());
            let t = Instant::now();
            let out = dec.decode_slots_with_pool(slots, ThreadPool::sequential());
            let elapsed = t.elapsed().as_secs_f64();
            (slots.len() as f64 / elapsed, digest(&out))
        })
        .join()
    });
    backend::reset();
    match joined {
        Ok(v) => v,
        Err(_) => {
            eprintln!("ERROR: decode panicked under the {} backend", kind.name());
            std::process::exit(1);
        }
    }
}

/// Renders a stage-time array as a JSON object keyed by stage name.
fn stages_json(stages: &[f64; profile::NUM_STAGES]) -> String {
    let fields: Vec<String> = profile::STAGE_NAMES
        .iter()
        .zip(stages)
        .map(|(name, s)| format!("\"{name}\": {s:.4}"))
        .collect();
    format!("{{{}}}", fields.join(", "))
}
