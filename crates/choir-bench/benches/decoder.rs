//! Benchmarks of the Choir decoder's stages on a standard two-user
//! collision: offset estimation (Algorithm 1), phased SIC on one window,
//! and the full packet decode.

use choir_bench::harness::Bench;
use choir_bench::two_user_scenario;
use choir_core::decoder::ChoirDecoder;
use choir_core::estimator::{EstimatorConfig, OffsetEstimator};
use choir_core::sic::{phased_sic, SicConfig};

fn main() {
    let s = two_user_scenario(1);
    let n = s.params.samples_per_symbol();
    let est = OffsetEstimator::new(n, EstimatorConfig::default());
    let win = s.samples[s.slot_start + n..s.slot_start + 2 * n].to_vec();

    let mut b = Bench::group("decoder");
    b.bench("algorithm1_estimate_2users", || est.estimate(&win));
    b.bench("phased_sic_window_2users", || {
        phased_sic(&est, &win, &SicConfig::default())
    });

    let dec = ChoirDecoder::new(s.params);
    b.bench("full_packet_2users", || {
        dec.decode_known_len(&s.samples, s.slot_start, 8)
    });
}
