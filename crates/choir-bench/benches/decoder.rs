//! Benchmarks of the Choir decoder's stages on a standard two-user
//! collision: offset estimation (Algorithm 1), phased SIC on one window,
//! and the full packet decode.

use choir_bench::two_user_scenario;
use choir_core::decoder::ChoirDecoder;
use choir_core::estimator::{EstimatorConfig, OffsetEstimator};
use choir_core::sic::{phased_sic, SicConfig};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_stages(c: &mut Criterion) {
    let s = two_user_scenario(1);
    let n = s.params.samples_per_symbol();
    let est = OffsetEstimator::new(n, EstimatorConfig::default());
    let win = s.samples[s.slot_start + n..s.slot_start + 2 * n].to_vec();

    c.bench_function("algorithm1_estimate_2users", |b| {
        b.iter(|| est.estimate(&win))
    });
    c.bench_function("phased_sic_window_2users", |b| {
        b.iter(|| phased_sic(&est, &win, &SicConfig::default()))
    });

    let dec = ChoirDecoder::new(s.params);
    let mut g = c.benchmark_group("decode");
    g.sample_size(10);
    g.bench_function("full_packet_2users", |b| {
        b.iter(|| dec.decode_known_len(&s.samples, s.slot_start, 8))
    });
    g.finish();
}

criterion_group!(benches, bench_stages);
criterion_main!(benches);
