//! Soak benchmark for the streaming station runtime.
//!
//! Two profiles, both against the same synthesised 8-slot two-user
//! workload:
//!
//! * **nominal** — the stream is pushed in 2048-sample chunks with a
//!   `service()` call per chunk, over and over until the time budget
//!   (`STATION_SOAK_BUDGET_S`, default 10 s; CI uses 30 s) is spent.
//!   Rounds alternate between tracing `Off` and `Outcome` so the same
//!   loop doubles as the tracing-overhead gate: `Outcome`-level tracing
//!   must cost < 5 % slots/sec versus `Off`, or the bench fails. Every
//!   round's output (traced or not) must be bit-identical to the batch
//!   decode of the same pre-cut captures, and **any** shed event fails
//!   the bench: a keeping-up station must never drop work.
//! * **unslotted** — the same stream with no schedule: the station runs
//!   free, and the multi-hypothesis preamble tracker must find every
//!   slot itself. Rounds run a palindromic sextet over three arms —
//!   `Explicit` at the true starts, `Explicit` at the window-floored
//!   starts the tracker would report, and `FreeRunning` — cancelling
//!   position bias the way the tracing quads do. `FreeRunning` versus
//!   floored-`Explicit` does identical decode work, so their gap is the
//!   cost of the detection machinery itself and is gated at 10 %
//!   slots/sec; the gap against true-start `Explicit` additionally
//!   carries the decoder's residual-absorption cost (starts known only
//!   to window resolution) and is reported un-gated. The bench also
//!   fails if any round misses a slot's decode.
//! * **overload** — the whole stream arrives as one burst with a 2-slot
//!   in-flight budget and no servicing, which must shed loudly (counted
//!   events, exact slot accounting) rather than block or grow memory.
//!
//! Results land in `BENCH_station.json`; CI's `station-soak` job fails on
//! >20 % slots/sec regression against the committed reference.

use std::time::Instant;

use choir_bench::two_user_scenario;
use choir_core::decoder::{ChoirDecoder, SlotCapture, SlotResult};
use choir_core::profile;
use choir_dsp::complex::C64;
use choir_station::{SlotSchedule, Station, StationConfig};
use lora_phy::params::PhyParams;

const SLOTS: usize = 8;
const PAYLOAD_LEN: usize = 8;
const CHUNK: usize = 2048;

/// Same bit-exact digest as `batch_decode.rs`: any divergence between the
/// streaming and batch outputs, even a last-ulp float, changes it.
fn digest(results: &[SlotResult]) -> Vec<u64> {
    let mut d = Vec::new();
    for r in results {
        d.push(r.users.len() as u64);
        d.push(r.error.is_some() as u64);
        for u in &r.users {
            d.push(u.user.offset_bins.to_bits());
            d.push(u.user.frac.to_bits());
            d.push(u.user.channel.re.to_bits());
            d.push(u.user.channel.im.to_bits());
            d.push(u.user.timing_chips.to_bits());
            d.extend(u.symbols.iter().map(|&s| u64::from(s)));
            d.push(u.sync_errors as u64);
            d.push(u.erasures as u64);
            d.push(u.payload_ok() as u64);
        }
    }
    d
}

fn budget_s() -> f64 {
    std::env::var("STATION_SOAK_BUDGET_S")
        .ok()
        .and_then(|v| v.trim().parse::<f64>().ok())
        .filter(|b| b.is_finite() && *b > 0.0)
        .unwrap_or(10.0)
}

fn main() {
    let budget = budget_s();
    println!("## bench group: station_soak (budget {budget:.0} s)");

    // Workload: 8 two-user slots concatenated with silence gaps.
    let mut stream: Vec<C64> = Vec::new();
    let mut starts: Vec<u64> = Vec::new();
    let mut captures: Vec<SlotCapture> = Vec::new();
    for i in 0..SLOTS as u64 {
        let s = two_user_scenario(200 + i);
        stream.resize(stream.len() + 401 + 137 * i as usize, C64::ZERO);
        starts.push((stream.len() + s.slot_start) as u64);
        stream.extend_from_slice(&s.samples);
        captures.push(SlotCapture::known_len(
            &s.params,
            s.samples,
            s.slot_start,
            PAYLOAD_LEN,
        ));
    }
    let chunks: Vec<Vec<C64>> = stream.chunks(CHUNK).map(|c| c.to_vec()).collect();

    // Batch reference for the bit-identity gate.
    let dec = ChoirDecoder::new(PhyParams::default());
    let batch = dec.decode_slots_with_pool(&captures, *choir_pool::global());
    let batch_digest = digest(&batch);
    let crc_ok: usize = batch.iter().map(|r| r.ok_users().count()).sum();
    println!("batch reference: {crc_ok} CRC-ok users across {SLOTS} slots");

    // ---- nominal profile -------------------------------------------------
    let nominal_cfg = || StationConfig::known_len(PhyParams::default(), PAYLOAD_LEN);
    // Warm-up round (FFT plans, pool spawn) outside the accounting.
    let _ = Station::new(nominal_cfg(), SlotSchedule::Explicit(starts.clone())).run(chunks.clone());
    let _ = profile::snapshot_and_reset();

    let mut rounds = 0u64;
    let mut shed_nominal = 0u64;
    let mut identical = true;
    let mut last_metrics_json = String::new();
    // Per-tracing-level accounting: each measurement block is an ABBA
    // quad (Off, Outcome, Outcome, Off). Back-to-back rounds show a
    // systematic position effect (the later round in a block runs a few
    // percent slower regardless of level — boost clocks and cache decay),
    // so each level gets one early and one late slot per block and the
    // bias cancels inside every quad.
    let mut quad_times: Vec<(f64, f64)> = Vec::new(); // (off_s, outcome_s) per quad
    let t = Instant::now();
    let nominal_budget = 0.6 * budget;
    while t.elapsed().as_secs_f64() < nominal_budget {
        let mut quad = [0.0f64; 2]; // [off_s, outcome_s]
        for lvl in [
            choir_trace::TraceLevel::Off,
            choir_trace::TraceLevel::Outcome,
            choir_trace::TraceLevel::Outcome,
            choir_trace::TraceLevel::Off,
        ] {
            choir_trace::set_level(lvl);
            let rt = Instant::now();
            let station = Station::new(nominal_cfg(), SlotSchedule::Explicit(starts.clone()));
            let report = station.run(chunks.clone());
            quad[(lvl == choir_trace::TraceLevel::Outcome) as usize] += rt.elapsed().as_secs_f64();
            shed_nominal += report.metrics.slots_shed + report.metrics.samples_dropped;
            let streamed: Vec<SlotResult> = report.slots.iter().map(|s| s.result.clone()).collect();
            if digest(&streamed) != batch_digest {
                identical = false;
            }
            last_metrics_json = report.metrics.to_json();
            rounds += 1;
        }
        quad_times.push((quad[0], quad[1]));
    }
    choir_trace::set_level(choir_trace::TraceLevel::Off);
    choir_trace::clear();
    let elapsed = t.elapsed().as_secs_f64();
    let stages = profile::snapshot_and_reset();
    let off_total: f64 = quad_times.iter().map(|p| p.0).sum();
    let traced_total: f64 = quad_times.iter().map(|p| p.1).sum();
    let slots_per_sec = (quad_times.len() * 2 * SLOTS) as f64 / off_total.max(1e-9);
    let slots_per_sec_traced = (quad_times.len() * 2 * SLOTS) as f64 / traced_total.max(1e-9);
    // Overhead estimate: the *minimum* over quads. Each quad is already
    // position-balanced, so what remains is ambient noise — which only
    // ever lands on whole rounds and inflates whichever level it hits. A
    // systematic tracing cost shows up in every quad; noise has to
    // corrupt all of them in the same direction to fake one.
    let trace_overhead_pct = quad_times
        .iter()
        .map(|(off, tr)| 100.0 * (tr / off.max(1e-9) - 1.0))
        .fold(f64::INFINITY, f64::min);
    let trace_overhead_pct = if trace_overhead_pct.is_finite() {
        trace_overhead_pct
    } else {
        0.0
    };
    println!(
        "station_soak/nominal    {slots_per_sec:8.3} slots/s  ({rounds} rounds, {elapsed:.2} s)"
    );
    println!(
        "station_soak/traced     {slots_per_sec_traced:8.3} slots/s  (CHOIR_TRACE=outcome, overhead {trace_overhead_pct:+.2}% best-of-{} quads)",
        quad_times.len()
    );
    let total: f64 = stages.iter().sum();
    for (name, s) in profile::STAGE_NAMES.iter().zip(&stages) {
        println!(
            "    stage {name:<8} {s:7.3} s  ({:5.1}%)",
            100.0 * s / total.max(1e-12)
        );
    }
    println!("nominal shed events + dropped samples: {shed_nominal}");
    println!("streaming output bit-identical to batch: {identical}");

    // ---- unslotted profile -----------------------------------------------
    // Same stream, no schedule: the tracker must find the slots itself.
    // Palindromic sextets over three arms (true-start Explicit, floored
    // Explicit, FreeRunning) cancel position bias exactly as the tracing
    // quads above do. FreeRunning vs floored-Explicit runs identical
    // decode work (same window-quantized starts), so their gap is the
    // detection machinery's own cost — the gated number; the gap against
    // true-start Explicit adds the decoder's residual-absorption cost and
    // is reported for context.
    let n = lora_phy::modem::Modem::new(PhyParams::default()).n() as u64;
    let floored: Vec<u64> = starts.iter().map(|s| s / n * n).collect();
    let mut sextets: Vec<[f64; 3]> = Vec::new(); // [true_s, floored_s, freerun_s]
    let mut unslotted_rounds = 0u64;
    let mut unslotted_slot_miscount = 0u64;
    let _ = Station::new(nominal_cfg(), SlotSchedule::FreeRunning).run(chunks.clone()); // warm-up
    let t_async = Instant::now();
    let async_budget = 0.25 * budget;
    while t_async.elapsed().as_secs_f64() < async_budget {
        let mut sextet = [0.0f64; 3];
        for arm in [0usize, 1, 2, 2, 1, 0] {
            let schedule = match arm {
                0 => SlotSchedule::Explicit(starts.clone()),
                1 => SlotSchedule::Explicit(floored.clone()),
                _ => SlotSchedule::FreeRunning,
            };
            let rt = Instant::now();
            let report = Station::new(nominal_cfg(), schedule).run(chunks.clone());
            sextet[arm] += rt.elapsed().as_secs_f64();
            // A tracker that misses a slot would skew the decode work and
            // fake the comparison. Count slots that actually decoded users
            // — a spurious trigger on trailing noise cuts an extra slot
            // the decoder rejects, which is cheap and harmless.
            let decoded = report
                .slots
                .iter()
                .filter(|s| !s.result.users.is_empty())
                .count();
            if decoded != SLOTS {
                unslotted_slot_miscount += 1;
            }
            unslotted_rounds += 1;
        }
        sextets.push(sextet);
    }
    let freerun_total: f64 = sextets.iter().map(|s| s[2]).sum();
    let slots_per_sec_unslotted = (sextets.len() * 2 * SLOTS) as f64 / freerun_total.max(1e-9);
    let best_overhead = |num: usize, den: usize| -> f64 {
        let best = sextets
            .iter()
            .map(|s| 100.0 * (s[num] / s[den].max(1e-9) - 1.0))
            .fold(f64::INFINITY, f64::min);
        if best.is_finite() {
            best
        } else {
            0.0
        }
    };
    let async_detect_overhead_pct = best_overhead(2, 1);
    let unslotted_total_overhead_pct = best_overhead(2, 0);
    println!(
        "station_soak/unslotted  {slots_per_sec_unslotted:8.3} slots/s  (free-running; detect overhead {async_detect_overhead_pct:+.2}% vs floored schedule, {unslotted_total_overhead_pct:+.2}% vs true starts, best-of-{} sextets, {unslotted_rounds} rounds)",
        sextets.len()
    );
    println!("unslotted slot miscounts: {unslotted_slot_miscount}");

    // ---- overload profile ------------------------------------------------
    let mut overload_cfg = StationConfig::known_len(PhyParams::default(), PAYLOAD_LEN);
    overload_cfg.max_in_flight = 2;
    let mut station = Station::new(overload_cfg, SlotSchedule::Explicit(starts.clone()));
    station.push_chunk(&stream); // one burst, no servicing until the end
    let overload = station.finish();
    let overload_ok = overload.metrics.slots_shed > 0
        && overload.metrics.slots_shed == overload.shed.len() as u64
        && overload.metrics.slots_accounted();
    println!(
        "station_soak/overload   shed {} of {} slots (accounting ok: {overload_ok})",
        overload.metrics.slots_shed, overload.metrics.slots_seen
    );

    let stages_fields: Vec<String> = profile::STAGE_NAMES
        .iter()
        .zip(&stages)
        .map(|(name, s)| format!("\"{name}\": {s:.4}"))
        .collect();
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"station_soak\",\n",
            "  \"slots_per_round\": {slots},\n",
            "  \"users_per_slot\": 2,\n",
            "  \"payload_len\": {payload},\n",
            "  \"chunk_samples\": {chunk},\n",
            "  \"rounds\": {rounds},\n",
            "  \"slots_per_sec\": {sps:.4},\n",
            "  \"slots_per_sec_traced\": {sps_traced:.4},\n",
            "  \"slots_per_sec_unslotted\": {sps_unslotted:.4},\n",
            "  \"trace_overhead_pct\": {overhead:.2},\n",
            "  \"async_detect_overhead_pct\": {async_overhead:.2},\n",
            "  \"unslotted_total_overhead_pct\": {total_overhead:.2},\n",
            "  \"unslotted_slot_miscount\": {miscount},\n",
            "  \"outputs_bit_identical\": {identical},\n",
            "  \"nominal_shed\": {shed},\n",
            "  \"overload_shed\": {osh},\n",
            "  \"stages_s\": {{{stages}}},\n",
            "  \"last_round_metrics\": {metrics}\n",
            "}}\n"
        ),
        slots = SLOTS,
        payload = PAYLOAD_LEN,
        chunk = CHUNK,
        rounds = rounds,
        sps = slots_per_sec,
        sps_traced = slots_per_sec_traced,
        sps_unslotted = slots_per_sec_unslotted,
        overhead = trace_overhead_pct,
        async_overhead = async_detect_overhead_pct,
        total_overhead = unslotted_total_overhead_pct,
        miscount = unslotted_slot_miscount,
        identical = identical,
        shed = shed_nominal,
        osh = overload.metrics.slots_shed,
        stages = stages_fields.join(", "),
        metrics = last_metrics_json,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_station.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }

    if shed_nominal > 0 {
        eprintln!("ERROR: station shed work under nominal load");
        std::process::exit(1);
    }
    if !identical {
        eprintln!("ERROR: streaming output diverged from batch decode");
        std::process::exit(1);
    }
    if !overload_ok {
        eprintln!("ERROR: overload shedding unaccounted");
        std::process::exit(1);
    }
    if trace_overhead_pct > 5.0 {
        eprintln!(
            "ERROR: Outcome-level tracing costs {trace_overhead_pct:.2}% slots/sec (limit 5%)"
        );
        std::process::exit(1);
    }
    if unslotted_slot_miscount > 0 {
        eprintln!(
            "ERROR: free-running tracker missed or double-fired slots in \
             {unslotted_slot_miscount} rounds"
        );
        std::process::exit(1);
    }
    if async_detect_overhead_pct > 10.0 {
        eprintln!(
            "ERROR: online detection costs {async_detect_overhead_pct:.2}% slots/sec \
             over an explicit schedule at the same window-floored starts (limit 10%)"
        );
        std::process::exit(1);
    }
}
