//! Soak benchmark for the streaming station runtime.
//!
//! Two profiles, both against the same synthesised 8-slot two-user
//! workload:
//!
//! * **nominal** — the stream is pushed in 2048-sample chunks with a
//!   `service()` call per chunk, over and over until the time budget
//!   (`STATION_SOAK_BUDGET_S`, default 10 s; CI uses 30 s) is spent.
//!   Every round's output must be bit-identical to the batch decode of
//!   the same pre-cut captures, and **any** shed event fails the bench:
//!   a keeping-up station must never drop work.
//! * **overload** — the whole stream arrives as one burst with a 2-slot
//!   in-flight budget and no servicing, which must shed loudly (counted
//!   events, exact slot accounting) rather than block or grow memory.
//!
//! Results land in `BENCH_station.json`; CI's `station-soak` job fails on
//! >20 % slots/sec regression against the committed reference.

use std::time::Instant;

use choir_bench::two_user_scenario;
use choir_core::decoder::{ChoirDecoder, SlotCapture, SlotResult};
use choir_core::profile;
use choir_dsp::complex::C64;
use choir_station::{SlotSchedule, Station, StationConfig};
use lora_phy::params::PhyParams;

const SLOTS: usize = 8;
const PAYLOAD_LEN: usize = 8;
const CHUNK: usize = 2048;

/// Same bit-exact digest as `batch_decode.rs`: any divergence between the
/// streaming and batch outputs, even a last-ulp float, changes it.
fn digest(results: &[SlotResult]) -> Vec<u64> {
    let mut d = Vec::new();
    for r in results {
        d.push(r.users.len() as u64);
        d.push(r.error.is_some() as u64);
        for u in &r.users {
            d.push(u.user.offset_bins.to_bits());
            d.push(u.user.frac.to_bits());
            d.push(u.user.channel.re.to_bits());
            d.push(u.user.channel.im.to_bits());
            d.push(u.user.timing_chips.to_bits());
            d.extend(u.symbols.iter().map(|&s| u64::from(s)));
            d.push(u.sync_errors as u64);
            d.push(u.erasures as u64);
            d.push(u.payload_ok() as u64);
        }
    }
    d
}

fn budget_s() -> f64 {
    std::env::var("STATION_SOAK_BUDGET_S")
        .ok()
        .and_then(|v| v.trim().parse::<f64>().ok())
        .filter(|b| b.is_finite() && *b > 0.0)
        .unwrap_or(10.0)
}

fn main() {
    let budget = budget_s();
    println!("## bench group: station_soak (budget {budget:.0} s)");

    // Workload: 8 two-user slots concatenated with silence gaps.
    let mut stream: Vec<C64> = Vec::new();
    let mut starts: Vec<u64> = Vec::new();
    let mut captures: Vec<SlotCapture> = Vec::new();
    for i in 0..SLOTS as u64 {
        let s = two_user_scenario(200 + i);
        stream.resize(stream.len() + 401 + 137 * i as usize, C64::ZERO);
        starts.push((stream.len() + s.slot_start) as u64);
        stream.extend_from_slice(&s.samples);
        captures.push(SlotCapture::known_len(
            &s.params,
            s.samples,
            s.slot_start,
            PAYLOAD_LEN,
        ));
    }
    let chunks: Vec<Vec<C64>> = stream.chunks(CHUNK).map(|c| c.to_vec()).collect();

    // Batch reference for the bit-identity gate.
    let dec = ChoirDecoder::new(PhyParams::default());
    let batch = dec.decode_slots_with_pool(&captures, *choir_pool::global());
    let batch_digest = digest(&batch);
    let crc_ok: usize = batch.iter().map(|r| r.ok_users().count()).sum();
    println!("batch reference: {crc_ok} CRC-ok users across {SLOTS} slots");

    // ---- nominal profile -------------------------------------------------
    let nominal_cfg = || StationConfig::known_len(PhyParams::default(), PAYLOAD_LEN);
    // Warm-up round (FFT plans, pool spawn) outside the accounting.
    let _ = Station::new(nominal_cfg(), SlotSchedule::Explicit(starts.clone())).run(chunks.clone());
    let _ = profile::snapshot_and_reset();

    let mut rounds = 0u64;
    let mut shed_nominal = 0u64;
    let mut identical = true;
    let mut last_metrics_json = String::new();
    let t = Instant::now();
    let nominal_budget = 0.8 * budget;
    while t.elapsed().as_secs_f64() < nominal_budget {
        let station = Station::new(nominal_cfg(), SlotSchedule::Explicit(starts.clone()));
        let report = station.run(chunks.clone());
        shed_nominal += report.metrics.slots_shed + report.metrics.samples_dropped;
        let streamed: Vec<SlotResult> = report.slots.iter().map(|s| s.result.clone()).collect();
        if digest(&streamed) != batch_digest {
            identical = false;
        }
        last_metrics_json = report.metrics.to_json();
        rounds += 1;
    }
    let elapsed = t.elapsed().as_secs_f64();
    let stages = profile::snapshot_and_reset();
    let slots_per_sec = (rounds * SLOTS as u64) as f64 / elapsed;
    println!(
        "station_soak/nominal    {slots_per_sec:8.3} slots/s  ({rounds} rounds, {elapsed:.2} s)"
    );
    let total: f64 = stages.iter().sum();
    for (name, s) in profile::STAGE_NAMES.iter().zip(&stages) {
        println!(
            "    stage {name:<8} {s:7.3} s  ({:5.1}%)",
            100.0 * s / total.max(1e-12)
        );
    }
    println!("nominal shed events + dropped samples: {shed_nominal}");
    println!("streaming output bit-identical to batch: {identical}");

    // ---- overload profile ------------------------------------------------
    let mut overload_cfg = StationConfig::known_len(PhyParams::default(), PAYLOAD_LEN);
    overload_cfg.max_in_flight = 2;
    let mut station = Station::new(overload_cfg, SlotSchedule::Explicit(starts.clone()));
    station.push_chunk(&stream); // one burst, no servicing until the end
    let overload = station.finish();
    let overload_ok = overload.metrics.slots_shed > 0
        && overload.metrics.slots_shed == overload.shed.len() as u64
        && overload.metrics.slots_accounted();
    println!(
        "station_soak/overload   shed {} of {} slots (accounting ok: {overload_ok})",
        overload.metrics.slots_shed, overload.metrics.slots_seen
    );

    let stages_fields: Vec<String> = profile::STAGE_NAMES
        .iter()
        .zip(&stages)
        .map(|(name, s)| format!("\"{name}\": {s:.4}"))
        .collect();
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"station_soak\",\n",
            "  \"slots_per_round\": {slots},\n",
            "  \"users_per_slot\": 2,\n",
            "  \"payload_len\": {payload},\n",
            "  \"chunk_samples\": {chunk},\n",
            "  \"rounds\": {rounds},\n",
            "  \"slots_per_sec\": {sps:.4},\n",
            "  \"outputs_bit_identical\": {identical},\n",
            "  \"nominal_shed\": {shed},\n",
            "  \"overload_shed\": {osh},\n",
            "  \"stages_s\": {{{stages}}},\n",
            "  \"last_round_metrics\": {metrics}\n",
            "}}\n"
        ),
        slots = SLOTS,
        payload = PAYLOAD_LEN,
        chunk = CHUNK,
        rounds = rounds,
        sps = slots_per_sec,
        identical = identical,
        shed = shed_nominal,
        osh = overload.metrics.slots_shed,
        stages = stages_fields.join(", "),
        metrics = last_metrics_json,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_station.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }

    if shed_nominal > 0 {
        eprintln!("ERROR: station shed work under nominal load");
        std::process::exit(1);
    }
    if !identical {
        eprintln!("ERROR: streaming output diverged from batch decode");
        std::process::exit(1);
    }
    if !overload_ok {
        eprintln!("ERROR: overload shedding unaccounted");
        std::process::exit(1);
    }
}
