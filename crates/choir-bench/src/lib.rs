//! # choir-bench — benchmark harness
//!
//! Micro-benchmarks for the hot DSP/decoder paths, plus the
//! figure-regeneration harness: `cargo bench -p choir-bench` times the
//! pipeline stages and prints every paper figure and ablation table (the
//! `figures` bench target runs each experiment once at Quick scale; use
//! `cargo run --release -p choir-testbed --bin figures -- all --full` for
//! paper-scale trial counts).
//!
//! Timing uses the in-repo [`harness`] module rather than criterion so the
//! workspace builds with zero crates.io dependencies (offline containers).

#![deny(missing_docs)]

use choir_channel::impairments::HardwareProfile;
use choir_channel::scenario::{CollisionScenario, ScenarioBuilder};
use lora_phy::params::PhyParams;

pub mod harness;

/// A standard two-user collision used by several benches.
pub fn two_user_scenario(seed: u64) -> CollisionScenario {
    let params = PhyParams::default();
    let bin = params.bin_hz();
    let mk = |bins: f64, toff: f64| HardwareProfile {
        cfo_hz: bins * bin,
        timing_offset_symbols: toff,
        phase: 0.7,
        cfo_jitter_hz: 0.0,
        timing_jitter_symbols: 0.0,
    };
    ScenarioBuilder::new(params)
        .snrs_db(&[20.0, 17.0])
        .payload_len(8)
        .profiles(vec![mk(7.3, 0.1), mk(-12.6, 0.3)])
        .seed(seed)
        .build()
}
