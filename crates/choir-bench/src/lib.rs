//! # choir-bench — benchmark harness
//!
//! Micro-benchmarks for the hot DSP/decoder paths, plus the
//! figure-regeneration harness: `cargo bench -p choir-bench` times the
//! pipeline stages and prints every paper figure and ablation table (the
//! `figures` bench target runs each experiment once at Quick scale; use
//! `cargo run --release -p choir-testbed --bin figures -- all --full` for
//! paper-scale trial counts).
//!
//! Timing uses the in-repo [`harness`] module rather than criterion so the
//! workspace builds with zero crates.io dependencies (offline containers).

#![deny(missing_docs)]

use choir_channel::impairments::HardwareProfile;
use choir_channel::scenario::{CollisionScenario, ScenarioBuilder};
use lora_phy::params::PhyParams;

pub mod harness;

/// Merges top-level keys into a bench JSON artifact, preserving every
/// key the caller does not name.
///
/// `BENCH_kernel.json` has two writers — `batch_decode` owns the
/// end-to-end throughput/identity keys, `dsp_micro` owns the blocked
/// per-width kernel timings — and each must not clobber the other's
/// section when it refreshes its own. The artifact is our own
/// fixed-shape output (one `"key": value` pair per line, single-line
/// values only), so a line-based merge is exact: existing keys are
/// updated in place (keeping their position), new keys append before
/// the closing brace, and unknown keys pass through untouched.
///
/// A missing or shapeless file is treated as empty, so first writers
/// and corrupted artifacts both converge to a well-formed object.
pub fn merge_bench_json(path: &std::path::Path, updates: &[(&str, String)]) {
    let existing = std::fs::read_to_string(path).unwrap_or_default();
    let mut entries: Vec<(String, String)> = Vec::new();
    for line in existing.lines() {
        let line = line.trim().trim_end_matches(',');
        if let Some(rest) = line.strip_prefix('"') {
            if let Some((key, value)) = rest.split_once("\":") {
                entries.push((key.to_string(), value.trim().to_string()));
            }
        }
    }
    for (key, value) in updates {
        match entries.iter_mut().find(|(k, _)| k == key) {
            Some(slot) => slot.1 = value.clone(),
            None => entries.push((key.to_string(), value.clone())),
        }
    }
    let body: Vec<String> = entries
        .iter()
        .map(|(k, v)| format!("  \"{k}\": {v}"))
        .collect();
    let json = format!("{{\n{}\n}}\n", body.join(",\n"));
    match std::fs::write(path, json) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}

/// A standard two-user collision used by several benches.
pub fn two_user_scenario(seed: u64) -> CollisionScenario {
    let params = PhyParams::default();
    let bin = params.bin_hz();
    let mk = |bins: f64, toff: f64| HardwareProfile {
        cfo_hz: bins * bin,
        timing_offset_symbols: toff,
        phase: 0.7,
        cfo_jitter_hz: 0.0,
        timing_jitter_symbols: 0.0,
    };
    ScenarioBuilder::new(params)
        .snrs_db(&[20.0, 17.0])
        .payload_len(8)
        .profiles(vec![mk(7.3, 0.1), mk(-12.6, 0.3)])
        .seed(seed)
        .build()
}

#[cfg(test)]
mod merge_tests {
    use super::merge_bench_json;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("choir_bench_merge_{name}_{}", std::process::id()))
    }

    #[test]
    fn merge_creates_updates_and_preserves() {
        let path = tmp("roundtrip");
        let _ = std::fs::remove_file(&path);
        // First writer creates the object.
        merge_bench_json(&path, &[("a", "1".into()), ("flag", "true".into())]);
        // Second writer updates one key, adds one, must preserve `flag`
        // and the one-line object value untouched.
        merge_bench_json(
            &path,
            &[
                ("a", "2.5".into()),
                ("stages_s", "{\"refine\": 1.0, \"demod\": 0.2}".into()),
            ],
        );
        let got = std::fs::read_to_string(&path).expect("merged file exists");
        assert_eq!(
            got,
            "{\n  \"a\": 2.5,\n  \"flag\": true,\n  \"stages_s\": {\"refine\": 1.0, \"demod\": 0.2}\n}\n"
        );
        // Idempotent re-merge of the object value.
        merge_bench_json(&path, &[("flag", "false".into())]);
        let got = std::fs::read_to_string(&path).expect("merged file exists");
        assert!(got.contains("\"stages_s\": {\"refine\": 1.0, \"demod\": 0.2}"));
        assert!(got.contains("\"flag\": false"));
        let _ = std::fs::remove_file(&path);
    }
}
