//! Minimal wall-clock micro-benchmark harness.
//!
//! A deliberately small, zero-dependency replacement for criterion: each
//! benchmark is warmed up, then run in timed batches until a target
//! measurement window is filled, and the per-iteration median / mean /
//! minimum are printed in criterion-like one-line reports. It makes no
//! attempt at outlier analysis or HTML reports — it exists so
//! `cargo bench` works in containers with no crates.io access.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Target wall-clock spent measuring one benchmark (after warm-up).
const MEASURE_TARGET: Duration = Duration::from_millis(600);
/// Target wall-clock spent warming one benchmark.
const WARMUP_TARGET: Duration = Duration::from_millis(150);
/// Number of timed batches the measurement window is split into.
const BATCHES: usize = 30;

/// A named collection of benchmarks, printed as one report.
pub struct Bench {
    group: String,
}

impl Bench {
    /// Starts a benchmark group with a header line.
    pub fn group(name: &str) -> Self {
        println!("## bench group: {name}");
        Bench {
            group: name.to_string(),
        }
    }

    /// Times `f`, which is run repeatedly and must return a value that is
    /// `black_box`ed to keep the optimiser honest. Returns the median
    /// per-iteration time in nanoseconds so callers can record it in a
    /// bench artifact.
    pub fn bench<T>(&mut self, name: &str, mut f: impl FnMut() -> T) -> f64 {
        // Warm-up: also discovers how many iterations fit in one batch.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < WARMUP_TARGET {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = WARMUP_TARGET.as_secs_f64() / warm_iters.max(1) as f64;
        let batch_iters =
            ((MEASURE_TARGET.as_secs_f64() / BATCHES as f64 / per_iter).ceil() as u64).max(1);

        let mut batch_ns: Vec<f64> = Vec::with_capacity(BATCHES);
        for _ in 0..BATCHES {
            let t = Instant::now();
            for _ in 0..batch_iters {
                black_box(f());
            }
            batch_ns.push(t.elapsed().as_nanos() as f64 / batch_iters as f64);
        }
        batch_ns.sort_by(f64::total_cmp);
        let median = batch_ns[batch_ns.len() / 2];
        let min = batch_ns[0];
        let mean = batch_ns.iter().sum::<f64>() / batch_ns.len() as f64;
        println!(
            "{group}/{name:<32} median {m} mean {a} min {lo}  ({batch_iters} iters x {BATCHES} batches)",
            group = self.group,
            m = fmt_ns(median),
            a = fmt_ns(mean),
            lo = fmt_ns(min),
        );
        median
    }
}

/// Formats a nanosecond quantity with an adaptive unit.
fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:8.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:8.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:8.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:8.2} s ", ns / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::fmt_ns;

    #[test]
    fn unit_scaling() {
        assert!(fmt_ns(12.0).contains("ns"));
        assert!(fmt_ns(12_000.0).contains("µs"));
        assert!(fmt_ns(12_000_000.0).contains("ms"));
        assert!(fmt_ns(12_000_000_000.0).contains('s'));
    }
}
