//! Prints the decoded output of the 8 seeded scenarios used by
//! `tests/parallel.rs`, in the exact format the golden regression test
//! pins. Re-run after an intentional numerics change to regenerate:
//!
//! `cargo run --release -p choir-core --example golden_dump`

use choir_channel::impairments::HardwareProfile;
use choir_channel::scenario::ScenarioBuilder;
use choir_core::{ChoirDecoder, SlotCapture};
use choir_pool::ThreadPool;
use lora_phy::params::PhyParams;

fn profile(cfo_bins: f64, toff_symbols: f64) -> HardwareProfile {
    let bin_hz = 125e3 / 256.0;
    HardwareProfile {
        cfo_hz: cfo_bins * bin_hz,
        timing_offset_symbols: toff_symbols,
        phase: 1.0,
        cfo_jitter_hz: 0.0,
        timing_jitter_symbols: 0.0,
    }
}

fn seeded_slots(payload_len: usize) -> Vec<SlotCapture> {
    type Scenario = (&'static [f64], &'static [(f64, f64)], u64);
    let configs: [Scenario; 8] = [
        (&[20.0, 17.0], &[(2.3, 0.1), (-7.6, 0.32)], 31),
        (&[19.0, 16.0], &[(6.4, 0.37), (-11.7, 0.43)], 32),
        (&[21.0, 15.0], &[(0.8, 0.05), (5.5, 0.21)], 33),
        (&[18.0, 18.0], &[(-3.2, 0.12), (9.1, 0.4)], 34),
        (
            &[20.0, 17.0, 14.0],
            &[(2.3, 0.1), (-7.6, 0.32), (12.4, 0.18)],
            35,
        ),
        (
            &[19.0, 18.0, 17.0],
            &[(4.4, 0.25), (-5.9, 0.07), (10.2, 0.33)],
            36,
        ),
        (&[22.0], &[(1.5, 0.2)], 37),
        (&[16.0, 16.0], &[(-9.3, 0.45), (7.7, 0.02)], 38),
    ];
    configs
        .iter()
        .map(|(snrs, profs, seed)| {
            let s = ScenarioBuilder::new(PhyParams::default())
                .snrs_db(snrs)
                .payload_len(payload_len)
                .profiles(profs.iter().map(|&(c, t)| profile(c, t)).collect())
                .seed(*seed)
                .build();
            SlotCapture::known_len(&s.params, s.samples, s.slot_start, payload_len)
        })
        .collect()
}

fn main() {
    let slots = seeded_slots(6);
    let dec = ChoirDecoder::new(PhyParams::default());
    let results = dec.decode_slots_with_pool(&slots, ThreadPool::sequential());
    for (i, r) in results.iter().enumerate() {
        println!("slot {i}: {} users, error={:?}", r.users.len(), r.error);
        for (j, u) in r.users.iter().enumerate() {
            println!(
                "  u{j} offset={:#018x} frac={:#018x} timing={:#018x}",
                u.user.offset_bins.to_bits(),
                u.user.frac.to_bits(),
                u.user.timing_chips.to_bits()
            );
            println!("  u{j} symbols={:?}", u.symbols);
            match &u.frame {
                Some(f) => println!("  u{j} crc_ok={} payload={:?}", f.crc_ok, f.payload),
                None => println!("  u{j} frame=None err={:?}", u.frame_error),
            }
        }
    }
}
