//! The end-to-end Choir base-station pipeline.
//!
//! 1. **Discover users** (Sec. 5): run phased SIC on each interior preamble
//!    window — the preamble is a train of identical up-chirps, so every
//!    window yields one stable peak per user at its aggregate hardware
//!    offset — then merge per-window components into user tracks.
//! 2. **Split time from frequency** (Sec. 6): a user's aggregate offset
//!    `μ = cfo − Δ` confounds CFO and timing, but two extra observables
//!    break the tie: the phase of its preamble peak advances by
//!    `2π·cfo/bin` per symbol, and the boundary of the fitted ISI step sits
//!    at its chip delay `Δ`. Together they give `Δ` in (fractional) chips.
//! 3. **Per-user aligned demodulation + packet-level SIC** (Secs. 5.2,
//!    6.1): strongest user first, realign windows to the user's own symbol
//!    clock (integer shift + windowed-sinc fractional resampling — this
//!    removes inter-symbol interference entirely), demodulate each symbol
//!    as the argmax over the user's *fractional comb* (integer values +
//!    its fractional offset), reconstruct its exact waveform (per-symbol
//!    complex gain fit) and subtract before decoding the next user.
//! 4. **Frame-decode** each user's symbol stream through the standard LoRa
//!    chain (Gray/interleave/Hamming/CRC) from `lora-phy`.

use choir_dsp::complex::C64;
use choir_dsp::resample::fractional_delay;
use choir_pool::ThreadPool;
use lora_phy::chirp::symbol_sample;
use lora_phy::frame::{decode_frame, DecodedFrame, SYNC_SYMBOLS};
use lora_phy::params::PhyParams;

use crate::cluster::circular_dist;
use crate::error::DecodeError;
use crate::estimator::{EstimatorConfig, OffsetEstimator};
use crate::profile::{scope, Stage};
use crate::sic::{phased_sic, SicConfig};

/// Full decoder configuration.
#[derive(Clone, Copy, Debug)]
pub struct ChoirConfig {
    /// Offset-estimator settings (zero-padding, search radius…).
    pub estimator: EstimatorConfig,
    /// Phased-SIC settings (used on the preamble windows).
    pub sic: SicConfig,
    /// Drop decoded "users" whose sync word did not match. Preamble-stage
    /// tracking occasionally promotes residual skirt or noise into a user
    /// candidate; a real transmitter always lands the known sync symbols.
    pub require_sync: bool,
    /// Taps per side of the windowed-sinc fractional resampler.
    pub resample_taps: usize,
    /// Packet-level SIC passes: pass 1 decodes strongest-first under
    /// residual interference; later passes re-decode each user with every
    /// other user's reconstruction removed. Two passes handle dense
    /// (8–10 user) collisions; one suffices for small ones.
    pub sic_passes: usize,
}

impl Default for ChoirConfig {
    fn default() -> Self {
        ChoirConfig {
            estimator: EstimatorConfig::default(),
            sic: SicConfig::default(),
            require_sync: true,
            resample_taps: 10,
            sic_passes: 2,
        }
    }
}

impl ChoirConfig {
    /// Preamble track-merge tolerance in bins.
    const TRACK_TOL_BINS: f64 = 0.35;
}

/// A user discovered from the preamble.
#[derive(Clone, Copy, Debug)]
pub struct UserEstimate {
    /// Aggregate hardware offset in fractional bins, `[0, 2^SF)` — CFO
    /// plus timing, the quantity every subsequent peak is displaced by.
    pub offset_bins: f64,
    /// Fractional part of the offset (the user-identifying feature).
    pub frac: f64,
    /// Mean channel magnitude over the preamble.
    pub mag: f64,
    /// Channel estimate from the first preamble window observed.
    pub channel: C64,
    /// Phase advance per symbol (radians), when measurable — equals
    /// `2π·CFO/bin (mod 2π)`, separating true CFO from timing offset.
    pub phase_slope: Option<f64>,
    /// Estimated timing offset in chips (delay past the slot boundary),
    /// reconstructed from the ISI step boundary (integer part) and the
    /// phase slope (fractional part).
    pub timing_chips: f64,
    /// Number of preamble windows the user was tracked in.
    pub support: usize,
}

impl UserEstimate {
    /// CFO in bins implied by the offset and timing estimates (mod `n`).
    pub fn cfo_bins(&self, n: usize) -> f64 {
        (self.offset_bins + self.timing_chips).rem_euclid(n as f64)
    }
}

/// Per-window comb decision with its top alternatives (for list decoding).
#[derive(Clone, Copy, Debug)]
struct CombDecision {
    /// Top three candidate values with scores, best first.
    cands: [(u16, f64); 3],
}

impl CombDecision {
    fn value(&self) -> u16 {
        self.cands[0].0
    }

    fn winner_score(&self) -> f64 {
        self.cands[0].1
    }
}

impl Default for CombDecision {
    fn default() -> Self {
        CombDecision {
            cands: [(0, 0.0); 3],
        }
    }
}

/// One user's decoded output.
#[derive(Clone, Debug)]
pub struct DecodedUser {
    /// The preamble-derived user estimate.
    pub user: UserEstimate,
    /// Recovered data symbols (sync symbols stripped).
    pub symbols: Vec<u16>,
    /// How many of the two sync symbols failed to match (0 = clean sync).
    pub sync_errors: usize,
    /// Number of windows where no symbol could be recovered.
    pub erasures: usize,
    /// Frame-level decode of the symbol stream, when structurally valid.
    pub frame: Option<DecodedFrame>,
    /// Why the frame chain failed, when `frame` is `None`.
    pub frame_error: Option<DecodeError>,
}

impl DecodedUser {
    /// True when the frame decoded with a passing CRC.
    pub fn payload_ok(&self) -> bool {
        self.frame.as_ref().map(|f| f.crc_ok).unwrap_or(false)
    }
}

/// One slot's worth of IQ capture queued for batch decoding.
#[derive(Clone, Debug)]
pub struct SlotCapture {
    /// The IQ capture containing the slot.
    pub samples: Vec<C64>,
    /// Sample index of the slot boundary (beacon-aligned).
    pub slot_start: usize,
    /// Expected number of data symbols after the sync word.
    pub num_data_symbols: usize,
}

impl SlotCapture {
    /// A capture with an explicit data-symbol count.
    pub fn new(samples: Vec<C64>, slot_start: usize, num_data_symbols: usize) -> Self {
        SlotCapture {
            samples,
            slot_start,
            num_data_symbols,
        }
    }

    /// A capture for a known payload length in bytes (the scheduled-uplink
    /// case), mirroring [`ChoirDecoder::decode_known_len`].
    pub fn known_len(
        params: &PhyParams,
        samples: Vec<C64>,
        slot_start: usize,
        payload_len: usize,
    ) -> Self {
        let num_data_symbols = lora_phy::frame::frame_symbol_count(params, payload_len);
        SlotCapture::new(samples, slot_start, num_data_symbols)
    }

    /// Borrows this capture as a [`SlotView`].
    pub fn as_view(&self) -> SlotView<'_> {
        SlotView {
            samples: &self.samples,
            slot_start: self.slot_start,
            num_data_symbols: self.num_data_symbols,
        }
    }
}

/// A borrowed view of one slot's capture — the zero-copy counterpart of
/// [`SlotCapture`]. The streaming station hands its workers views into
/// buffers it already owns; batch callers get them from
/// [`SlotCapture::as_view`]. Decoding a view is bit-identical to decoding
/// the owning capture: the decoder is a pure function of the sample bytes,
/// the relative slot start and the symbol count.
#[derive(Clone, Copy, Debug)]
pub struct SlotView<'a> {
    /// The IQ samples containing the slot.
    pub samples: &'a [C64],
    /// Sample index of the slot boundary (beacon-aligned) within `samples`.
    pub slot_start: usize,
    /// Expected number of data symbols after the sync word.
    pub num_data_symbols: usize,
}

impl<'a> SlotView<'a> {
    /// A view with an explicit data-symbol count.
    pub fn new(samples: &'a [C64], slot_start: usize, num_data_symbols: usize) -> Self {
        SlotView {
            samples,
            slot_start,
            num_data_symbols,
        }
    }
}

/// The outcome of one slot in a batch decode.
#[derive(Clone, Debug)]
pub struct SlotResult {
    /// Decoded users, strongest first (empty when `error` is set).
    pub users: Vec<DecodedUser>,
    /// Why the slot produced nothing, when it did not decode.
    pub error: Option<DecodeError>,
}

impl SlotResult {
    /// The users whose frame decoded with a passing CRC.
    pub fn ok_users(&self) -> impl Iterator<Item = &DecodedUser> {
        self.users.iter().filter(|u| u.payload_ok())
    }
}

/// The Choir collision decoder for one PHY configuration.
#[derive(Clone, Debug)]
pub struct ChoirDecoder {
    params: PhyParams,
    cfg: ChoirConfig,
    est: OffsetEstimator,
    /// Unit-root table `twiddle[m] = e^{−j2πm/n}`, shared across clones.
    /// The comb demodulator factors each hypothesis tone as
    /// `twiddle[(s·t) mod n] · e^{−j2π·off·t/n}`, so the whole n-hypothesis
    /// sweep costs one fractional mix plus table lookups instead of n²
    /// `cis` evaluations.
    comb_twiddle: std::sync::Arc<Vec<C64>>,
}

impl ChoirDecoder {
    /// Builds a decoder with default configuration.
    pub fn new(params: PhyParams) -> Self {
        Self::with_config(params, ChoirConfig::default())
    }

    /// Builds a decoder with explicit configuration.
    pub fn with_config(params: PhyParams, cfg: ChoirConfig) -> Self {
        let est = OffsetEstimator::new(params.samples_per_symbol(), cfg.estimator);
        let n = params.samples_per_symbol();
        let comb_twiddle = std::sync::Arc::new(
            (0..n)
                .map(|m| C64::cis(-2.0 * std::f64::consts::PI * m as f64 / n as f64))
                .collect::<Vec<C64>>(),
        );
        ChoirDecoder {
            params,
            cfg,
            est,
            comb_twiddle,
        }
    }

    /// The PHY parameters in use.
    pub fn params(&self) -> &PhyParams {
        &self.params
    }

    /// The underlying per-symbol estimator.
    pub fn estimator(&self) -> &OffsetEstimator {
        &self.est
    }

    fn window<'a>(&self, samples: &'a [C64], slot_start: usize, idx: usize) -> Option<&'a [C64]> {
        let n = self.params.samples_per_symbol();
        let lo = slot_start + idx * n;
        let hi = lo + n;
        samples.get(lo..hi)
    }

    /// Stage 1+2: discovers colliding users from the preamble (Sec. 5) and
    /// splits each user's aggregate offset into timing and CFO (Sec. 6).
    pub fn discover_users(&self, samples: &[C64], slot_start: usize) -> Vec<UserEstimate> {
        // Debug sanitizer at the pipeline mouth: corrupt IQ in means every
        // later stage fails confusingly; fail here with the right label.
        choir_dsp::checks::assert_finite("decoder::discover_users input", samples);
        let p = self.params.preamble_len;
        let n = self.est.n();
        let mut per_window = Vec::new();
        // Interior windows only: window 0 may straddle the packet edge for
        // delayed users; windows 1..P−1 are pure preamble for any
        // sub-symbol delay.
        for w in 1..p {
            let Some(win) = self.window(samples, slot_start, w) else {
                break;
            };
            // Stamp the window context so offset-search and SIC events
            // emitted below carry the preamble window they ran over.
            choir_trace::set_window(w as u64);
            per_window.push(phased_sic(&self.est, win, &self.cfg.sic).components);
        }
        if per_window.is_empty() {
            return Vec::new();
        }
        let min_support = (per_window.len() / 2).max(2).min(per_window.len());
        let tracks = scope(Stage::Cluster, || {
            crate::cluster::merge_tracks(&per_window, n, ChoirConfig::TRACK_TOL_BINS, min_support)
        });
        let mut users: Vec<UserEstimate> = tracks
            .into_iter()
            .map(|t| UserEstimate {
                offset_bins: t.pos_bins,
                frac: t.pos_bins.fract(),
                mag: t.mag,
                channel: t.members[0].1.channel,
                phase_slope: t.phase_slope(),
                timing_chips: 0.0,
                support: t.support(),
            })
            .collect();
        // Timing estimation (Sec. 6): coarse integer part from the
        // preamble→sync transition window, precise fractional part from a
        // direct alignment scan. Integer errors of a few chips are benign
        // (a chirp's time shift and the matching frequency shift cancel in
        // both the comb demodulator and the subtraction template).
        choir_trace::set_window(p as u64);
        let transition = self
            .window(samples, slot_start, p)
            .map(|win| phased_sic(&self.est, win, &self.cfg.sic).components)
            .unwrap_or_default();
        for u in users.iter_mut() {
            let coarse = self.timing_from_transition(&transition, u, n);
            // Alternate timing and offset refinement: each conditions the
            // other (the timing score reads energy at the expected comb
            // position; the offset is read from windows aligned by the
            // timing).
            u.timing_chips = self.refine_timing(samples, slot_start, u, coarse);
            for _ in 0..2 {
                u.offset_bins = self.refine_offset_aligned(samples, slot_start, u);
                u.frac = u.offset_bins.fract();
                u.timing_chips = self.refine_timing(samples, slot_start, u, u.timing_chips);
            }
        }
        // Provenance: the surviving user tracks as they enter
        // demodulation, with final (timing-refined) positions.
        if choir_trace::enabled(choir_trace::TraceLevel::Full) {
            for (i, u) in users.iter().enumerate() {
                choir_trace::full(|| choir_trace::TraceEvent::UserTrack {
                    track: u32::try_from(i).unwrap_or(u32::MAX),
                    pos_bins: u.offset_bins,
                    support: u32::try_from(u.support).unwrap_or(u32::MAX),
                    mag: u.mag,
                });
            }
        }
        users
    }

    /// Re-reads a user's aggregate offset from *aligned* preamble windows:
    /// once the timing is compensated, the preamble dechirps to a clean
    /// single tone at `μ + Δ` with no boundary phase step, so its position
    /// can be localised to milli-bins by a golden search on correlation
    /// energy.
    fn refine_offset_aligned(
        &self,
        samples: &[C64],
        slot_start: usize,
        user: &UserEstimate,
    ) -> f64 {
        scope(Stage::Refine, || {
            let n = self.est.n() as f64;
            let delta = user.timing_chips;
            let init = (user.offset_bins + delta).rem_euclid(n);
            // The timing is fixed for the whole search, so align and
            // dechirp the probe windows once instead of per probe (the
            // windowed-sinc resample is as expensive as the correlation).
            let probes: Vec<Vec<C64>> = [2usize, 4, 6]
                .iter()
                .filter_map(|&sym_idx| {
                    self.aligned_window(samples, slot_start, sym_idx, delta)
                        .map(|al| self.est.dechirp(&al))
                })
                .collect();
            let score = |pos: f64| -> f64 {
                let w = -2.0 * std::f64::consts::PI * pos / n;
                let mut s = 0.0;
                for de in &probes {
                    let acc: C64 = de
                        .iter()
                        .enumerate()
                        .map(|(t, v)| v * C64::cis(w * t as f64))
                        .sum();
                    s += acc.norm_sqr();
                }
                -s
            };
            let (pos, _) = choir_dsp::optim::golden_section(score, init - 0.6, init + 0.6, 1e-3);
            (pos - delta).rem_euclid(n)
        })
    }

    /// Coarse integer timing from the preamble→sync transition window: the
    /// window holds the tail of the last preamble chirp (peak at `μ`) and
    /// the head of the first sync chirp (peak at `μ + SYNC_SYMBOLS[0]`).
    /// Both components' fitted boundary-split terms place their segment
    /// edge exactly at the user's chip delay `Δ`, so the boundary is read
    /// off directly. Returns 0 when neither component carries a step
    /// (sub-chip delays — exactly the case where 0 is correct to a chip).
    fn timing_from_transition(
        &self,
        transition: &[crate::estimator::ComponentEstimate],
        user: &UserEstimate,
        n: usize,
    ) -> f64 {
        let m = n as f64;
        let find = |target: f64| -> Option<&crate::estimator::ComponentEstimate> {
            transition
                .iter()
                .filter(|c| circular_dist(c.freq_bins, target, m) < 0.6)
                .max_by(|a, b| {
                    let ta = a.channel.abs() + a.step.map(|s| s.coeff.abs()).unwrap_or(0.0);
                    let tb = b.channel.abs() + b.step.map(|s| s.coeff.abs()).unwrap_or(0.0);
                    ta.total_cmp(&tb)
                })
        };
        let head = find((user.offset_bins + SYNC_SYMBOLS[0] as f64).rem_euclid(m));
        if let Some(st) = head.and_then(|c| c.step) {
            return st.boundary as f64;
        }
        let tail = find(user.offset_bins);
        if let Some(st) = tail.and_then(|c| c.step) {
            return st.boundary as f64;
        }
        0.0
    }

    /// Correlation energy of an aligned window against a tone at `pos`
    /// bins (direct evaluation — no FFT, one fractional frequency).
    fn tone_energy(
        &self,
        samples: &[C64],
        slot_start: usize,
        sym_idx: usize,
        delta: f64,
        pos: f64,
    ) -> f64 {
        let n = self.est.n();
        let Some(al) = self.aligned_window(samples, slot_start, sym_idx, delta) else {
            return 0.0;
        };
        let de = self.est.dechirp(&al);
        let w = -2.0 * std::f64::consts::PI * pos / n as f64;
        let acc: C64 = de
            .iter()
            .enumerate()
            .map(|(t, v)| v * C64::cis(w * t as f64))
            .sum();
        acc.norm_sqr()
    }

    /// Energy of the user's expected comb tone in one aligned window.
    fn comb_energy(
        &self,
        samples: &[C64],
        slot_start: usize,
        sym_idx: usize,
        delta: f64,
        expected_value: u16,
        offset_bins: f64,
    ) -> f64 {
        let n = self.est.n() as f64;
        let pos = (expected_value as f64 + offset_bins + delta).rem_euclid(n);
        self.tone_energy(samples, slot_start, sym_idx, delta, pos)
    }

    /// Timing refinement (Sec. 6): the preamble is periodic in whole chips,
    /// so preamble windows pin only the *fractional* chip alignment; the
    /// known sync symbols break integer ambiguities (a grossly wrong
    /// integer shift slides the window off the sync chirps entirely).
    /// Scans {coarse, 0} integer candidates × a fractional grid, scoring
    /// preamble + sync comb energy, then golden-refines.
    fn refine_timing(
        &self,
        samples: &[C64],
        slot_start: usize,
        user: &UserEstimate,
        coarse: f64,
    ) -> f64 {
        scope(Stage::Refine, || {
            self.refine_timing_inner(samples, slot_start, user, coarse)
        })
    }

    fn refine_timing_inner(
        &self,
        samples: &[C64],
        slot_start: usize,
        user: &UserEstimate,
        coarse: f64,
    ) -> f64 {
        let p = self.params.preamble_len;
        let score = |delta: f64| -> f64 {
            if delta < 0.0 {
                return -1.0;
            }
            let mut s = 0.0;
            for sym_idx in [2usize, 4, 6] {
                s += self.comb_energy(samples, slot_start, sym_idx, delta, 0, user.offset_bins);
            }
            for (i, &sync) in SYNC_SYMBOLS.iter().enumerate() {
                s += self.comb_energy(samples, slot_start, p + i, delta, sync, user.offset_bins);
            }
            s
        };
        let mut ints: Vec<f64> = vec![coarse.max(0.0).round(), 0.0];
        ints.dedup();
        let mut best = (0.0f64, -1.0f64);
        for &base in &ints {
            for j in 0..8 {
                let cand = base + j as f64 / 8.0 - 0.5;
                let sc = score(cand);
                if sc > best.1 {
                    best = (cand, sc);
                }
            }
        }
        let (lo, hi) = (best.0 - 0.125, best.0 + 0.125);
        let (x, neg_s) = choir_dsp::optim::golden_section(|d| -score(d), lo.max(0.0), hi, 5e-3);
        if -neg_s >= best.1 {
            x
        } else {
            best.0
        }
    }

    /// Extracts the user-aligned window for symbol index `sym_idx` (global
    /// over preamble+sync+data): integer shift by `floor(Δ)` plus
    /// windowed-sinc resampling by `frac(Δ)`.
    fn aligned_window(
        &self,
        samples: &[C64],
        slot_start: usize,
        sym_idx: usize,
        timing_chips: f64,
    ) -> Option<Vec<C64>> {
        let n = self.est.n();
        let taps = self.cfg.resample_taps;
        let m = timing_chips.floor();
        let delta = timing_chips - m; // in [0,1): signal delayed by delta
        let a = slot_start as i64 + (sym_idx * n) as i64 + m as i64;
        let lo = a - taps as i64;
        let hi = a + (n + taps) as i64;
        if lo < 0 || hi as usize > samples.len() {
            return None;
        }
        let slice = &samples[lo as usize..hi as usize];
        if delta < 1e-9 {
            return Some(slice[taps..taps + n].to_vec());
        }
        // The signal is delayed by `delta`; advance it by resampling with
        // a negative delay.
        let shifted = fractional_delay(slice, -delta, taps);
        Some(shifted[taps..taps + n].to_vec())
    }

    /// Demodulates one aligned window on the user's fractional comb: the
    /// peak must sit at `value + cfo_bins (mod n)`.
    ///
    /// Each hypothesis `s` is scored per *constant-phase segment*: the
    /// chirp's internal frequency wrap sits `N − s` chips into the symbol,
    /// and any residual sub-chip misalignment turns it into a phase step
    /// that would partially cancel a whole-window correlation. Combining
    /// the two segments by magnitude (`(|pre| + |post|)²` — the maximum of
    /// the coherent sum over the unknown step phase) makes the decision
    /// invariant to the step.
    fn comb_demod(&self, aligned: &[C64], comb_offset: f64) -> CombDecision {
        scope(Stage::Demod, || self.comb_demod_inner(aligned, comb_offset))
    }

    // hot:noalloc — the hypothesis sweep runs on the shared twiddle table
    // and a workspace mix buffer.
    fn comb_demod_inner(&self, aligned: &[C64], comb_offset: f64) -> CombDecision {
        let n = self.est.n();
        let de = self.est.dechirp(aligned);
        // Apply the fractional comb offset once; each hypothesis tone then
        // reduces to stepping the integer twiddle table by s per sample
        // (phases agree with direct evaluation up to exact multiples of 2π).
        let mut mix = choir_dsp::workspace::take(n);
        let w_frac = -2.0 * std::f64::consts::PI * comb_offset / n as f64;
        for (t, (m, v)) in mix.iter_mut().zip(&de).enumerate() {
            *m = v * C64::cis(w_frac * t as f64);
        }
        let tw: &[C64] = &self.comb_twiddle;
        let mut top = [(0u16, -1.0f64); 3];
        for s in 0..n {
            let wrap = n - s;
            let mut pre = C64::ZERO;
            let mut post = C64::ZERO;
            let mut idx = 0usize;
            for m in &mix[..wrap] {
                pre += m * tw[idx];
                idx += s;
                if idx >= n {
                    idx -= n;
                }
            }
            for m in &mix[wrap..] {
                post += m * tw[idx];
                idx += s;
                if idx >= n {
                    idx -= n;
                }
            }
            let score = (pre.abs() + post.abs()).powi(2);
            if score > top[2].1 {
                // lint:allow(lossy_cast) — s ranges over 0..2^SF ≤ 4096, fits u16
                top[2] = (s as u16, score);
                if top[2].1 > top[1].1 {
                    top.swap(1, 2);
                }
                if top[1].1 > top[0].1 {
                    top.swap(0, 1);
                }
            }
        }
        choir_dsp::workspace::put(mix);
        for t in top.iter_mut() {
            t.1 = t.1.max(0.0);
        }
        CombDecision { cands: top }
    }

    /// Reconstructs and subtracts one user's symbol from the capture:
    /// fits a single complex gain of the analytically generated symbol
    /// waveform (chirp shifted by `Δ`, rotated by the CFO comb) over its
    /// actual sample span. When `contrib` is provided, the subtracted
    /// contribution is also accumulated there (so a later SIC pass can add
    /// it back).
    #[allow(clippy::too_many_arguments)]
    fn subtract_symbol(
        &self,
        work: &mut [C64],
        slot_start: usize,
        sym_idx: usize,
        value: u16,
        timing_chips: f64,
        cfo_bins: f64,
    ) {
        self.subtract_symbol_tracked(
            work,
            None,
            slot_start,
            sym_idx,
            value,
            timing_chips,
            cfo_bins,
        )
    }

    /// [`Self::subtract_symbol`] with optional contribution tracking.
    #[allow(clippy::too_many_arguments)]
    fn subtract_symbol_tracked(
        &self,
        work: &mut [C64],
        contrib: Option<&mut [C64]>,
        slot_start: usize,
        sym_idx: usize,
        value: u16,
        timing_chips: f64,
        cfo_bins: f64,
    ) {
        scope(Stage::Sic, || {
            self.subtract_symbol_tracked_inner(
                work,
                contrib,
                slot_start,
                sym_idx,
                value,
                timing_chips,
                cfo_bins,
            )
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn subtract_symbol_tracked_inner(
        &self,
        work: &mut [C64],
        mut contrib: Option<&mut [C64]>,
        slot_start: usize,
        sym_idx: usize,
        value: u16,
        timing_chips: f64,
        cfo_bins: f64,
    ) {
        let n = self.est.n();
        let n_f = n as f64;
        let start = slot_start as f64 + sym_idx as f64 * n_f + timing_chips;
        let first = start.ceil().max(0.0) as usize;
        let last = ((start + n_f).ceil().max(0.0) as usize).min(work.len());
        if first >= last {
            return;
        }
        let w_cfo = 2.0 * std::f64::consts::PI * cfo_bins / n_f;
        // Template over the span.
        let mut template = Vec::with_capacity(last - first);
        for i in first..last {
            let tau = i as f64 - start;
            let s = symbol_sample(n, value, tau);
            template.push(s * C64::cis(w_cfo * (i as f64 - slot_start as f64)));
        }
        // Fit one complex gain per constant-phase segment: the chirp wraps
        // from +B/2 to −B/2 at `N − value` chips into the symbol, and any
        // sub-chip timing error turns that wrap into a phase step.
        // Independent per-segment gains absorb it exactly.
        let wrap_global = start + (n - value as usize) as f64;
        let wrap = (wrap_global.ceil().max(first as f64) as usize).min(last);
        let subtract_segment =
            |lo: usize, hi: usize, work: &mut [C64], contrib: &mut Option<&mut [C64]>| {
                if hi <= lo {
                    return;
                }
                let num: C64 = work[lo..hi]
                    .iter()
                    .zip(&template[lo - first..hi - first])
                    .map(|(y, t)| y * t.conj())
                    .sum();
                let den: f64 = template[lo - first..hi - first]
                    .iter()
                    .map(|t| t.norm_sqr())
                    .sum();
                if den <= 1e-12 {
                    return;
                }
                let g = num / den;
                for (i, t) in (lo..hi).zip(&template[lo - first..hi - first]) {
                    work[i] -= g * t;
                    if let Some(c) = contrib.as_deref_mut() {
                        c[i] += g * t;
                    }
                }
            };
        subtract_segment(first, wrap, work, &mut contrib);
        subtract_segment(wrap, last, work, &mut contrib);
    }

    /// Golden-refines a user's CFO (bins) by minimising the energy left
    /// after subtracting its reconstructed symbols from a few probe
    /// windows. Gain fitting is per segment, so this isolates the pure
    /// frequency error that per-window gains cannot absorb.
    fn refine_cfo_for_subtraction(
        &self,
        work: &[C64],
        slot_start: usize,
        symbols: &[u16],
        timing_chips: f64,
        cfo_init: f64,
    ) -> f64 {
        scope(Stage::Refine, || {
            self.refine_cfo_for_subtraction_inner(work, slot_start, symbols, timing_chips, cfo_init)
        })
    }

    fn refine_cfo_for_subtraction_inner(
        &self,
        work: &[C64],
        slot_start: usize,
        symbols: &[u16],
        timing_chips: f64,
        cfo_init: f64,
    ) -> f64 {
        let probes: Vec<usize> = [1usize, 3, 5]
            .into_iter()
            .filter(|&i| i < symbols.len())
            .collect();
        if probes.is_empty() {
            return cfo_init;
        }
        let n = self.est.n();
        let score = |cfo: f64| -> f64 {
            let mut total = 0.0;
            for &sym_idx in &probes {
                let mut probe_buf: Vec<C64> = {
                    let lo = slot_start + sym_idx * n;
                    let hi = (lo + 2 * n).min(work.len());
                    work[lo..hi].to_vec()
                };
                // subtract_symbol indexes globally; rebase to the slice.
                self.subtract_symbol(&mut probe_buf, 0, 0, symbols[sym_idx], timing_chips, cfo);
                total += probe_buf
                    .iter()
                    .take(n + timing_chips.ceil() as usize)
                    .map(|z| z.norm_sqr())
                    .sum::<f64>();
            }
            total
        };
        let (best, _) =
            choir_dsp::optim::golden_section(score, cfo_init - 0.15, cfo_init + 0.15, 1e-4);
        best
    }

    /// One acquisition+demodulation pass for a single user against the
    /// current (partially cleaned) signal: re-acquire coarse integer
    /// timing from the preamble→sync transition, refine fractional timing
    /// (keeping whichever candidate scores better on the sync windows),
    /// re-read the offset from aligned windows, then demodulate every
    /// symbol on the user's comb. Updates `user` in place.
    fn acquire_and_demod(
        &self,
        work: &[C64],
        slot_start: usize,
        user: &mut UserEstimate,
        total_syms: usize,
    ) -> (Vec<CombDecision>, usize) {
        let n = self.est.n();
        let p = self.params.preamble_len;
        let transition = self
            .window(work, slot_start, p)
            .map(|win| phased_sic(&self.est, win, &self.cfg.sic).components)
            .unwrap_or_default();
        let coarse = self.timing_from_transition(&transition, user, n);
        let cand_a = self.refine_timing(work, slot_start, user, coarse);
        let cand_b = self.refine_timing(work, slot_start, user, user.timing_chips);
        let sync_score = |delta: f64| -> f64 {
            let mut s = 0.0;
            for (i, &sync) in SYNC_SYMBOLS.iter().enumerate() {
                s += self.comb_energy(work, slot_start, p + i, delta, sync, user.offset_bins);
            }
            s
        };
        user.timing_chips = if sync_score(cand_a) >= sync_score(cand_b) {
            cand_a
        } else {
            cand_b
        };
        user.offset_bins = self.refine_offset_aligned(work, slot_start, user);
        user.frac = user.offset_bins.fract();
        let cfo_bins = user.cfo_bins(n);
        let mut erasures = 0usize;
        let mut decisions = Vec::with_capacity(total_syms);
        for sym_idx in 0..total_syms {
            let d = match self.aligned_window(work, slot_start, sym_idx, user.timing_chips) {
                Some(aligned) => self.comb_demod(&aligned, cfo_bins),
                None => {
                    erasures += 1;
                    CombDecision::default()
                }
            };
            decisions.push(d);
        }
        (decisions, erasures)
    }

    /// Stages 3–4: decodes every user's data given the expected number of
    /// data symbols (sync symbols are consumed internally). Returns one
    /// entry per validated user, strongest first.
    pub fn decode(
        &self,
        samples: &[C64],
        slot_start: usize,
        num_data_symbols: usize,
    ) -> Vec<DecodedUser> {
        let users = self.discover_users(samples, slot_start);
        self.decode_with_users(samples, slot_start, num_data_symbols, users)
    }

    /// Fallible variant of [`Self::decode`]: reports *why* nothing could be
    /// decoded (truncated slot, silent preamble) instead of returning an
    /// empty list.
    pub fn try_decode(
        &self,
        samples: &[C64],
        slot_start: usize,
        num_data_symbols: usize,
    ) -> Result<Vec<DecodedUser>, DecodeError> {
        let n = self.est.n();
        let total_syms = self.params.preamble_len + 2 + num_data_symbols;
        let needed = slot_start + total_syms * n;
        if samples.len() < needed {
            return Err(DecodeError::TruncatedSlot {
                symbol: samples.len().saturating_sub(slot_start) / n,
                needed,
                available: samples.len(),
            }
            .traced());
        }
        let users = self.discover_users(samples, slot_start);
        if users.is_empty() {
            return Err(DecodeError::NoUsersFound.traced());
        }
        Ok(self.decode_with_users(samples, slot_start, num_data_symbols, users))
    }

    /// [`Self::decode`] with externally supplied user estimates (used by
    /// experiments that sweep discovery settings separately).
    pub fn decode_with_users(
        &self,
        samples: &[C64],
        slot_start: usize,
        num_data_symbols: usize,
        users: Vec<UserEstimate>,
    ) -> Vec<DecodedUser> {
        if users.is_empty() {
            return Vec::new();
        }
        let n = self.est.n();
        let p = self.params.preamble_len;
        let total_syms = p + 2 + num_data_symbols;
        let mut work = samples.to_vec();
        // Per-user subtracted contributions, so later SIC passes can put a
        // user back and re-decode it against an otherwise-cleaned signal.
        let mut contribs: Vec<Vec<C64>> = vec![vec![C64::ZERO; work.len()]; users.len()];
        #[allow(clippy::type_complexity)]
        let mut states: Vec<(UserEstimate, Vec<CombDecision>, Vec<u16>, usize)> =
            Vec::with_capacity(users.len());
        // Strongest first: discover_users returns tracks sorted by
        // magnitude, which is the packet-level SIC order.
        for (uidx, mut user) in users.into_iter().enumerate() {
            let (decisions, erasures) =
                self.acquire_and_demod(&work, slot_start, &mut user, total_syms);
            let symbols: Vec<u16> = decisions.iter().map(|d| d.value()).collect();
            // Refine the CFO against the actual subtraction residual: deep
            // near-far demands ~milli-bin accuracy so that the strong
            // user's residue sinks below the weakest client of interest.
            let cfo_bins = self.refine_cfo_for_subtraction(
                &work,
                slot_start,
                &symbols,
                user.timing_chips,
                user.cfo_bins(n),
            );
            // Subtract this user's reconstructed packet before moving to
            // weaker users (packet-level SIC).
            for (sym_idx, &value) in symbols.iter().enumerate() {
                self.subtract_symbol_tracked(
                    &mut work,
                    Some(&mut contribs[uidx]),
                    slot_start,
                    sym_idx,
                    value,
                    user.timing_chips,
                    cfo_bins,
                );
            }
            states.push((user, decisions, symbols, erasures));
        }

        // Later SIC passes: re-decode each user with *every other* user's
        // contribution removed (the first pass decoded the strong users
        // under full interference, so its symbol errors left full-power
        // residue that cascades; re-acquisition against the cleaned signal
        // breaks the cascade).
        for _pass in 1..self.cfg.sic_passes.max(1) {
            for (uidx, state) in states.iter_mut().enumerate() {
                // Put this user back.
                for (w, c) in work.iter_mut().zip(&contribs[uidx]) {
                    *w += *c;
                }
                contribs[uidx].iter_mut().for_each(|c| *c = C64::ZERO);
                let (ref mut user, ref mut decisions, ref mut symbols, ref mut erasures) = *state;
                let (decs, eras) = self.acquire_and_demod(&work, slot_start, user, total_syms);
                *decisions = decs;
                *symbols = decisions.iter().map(|d| d.value()).collect();
                *erasures = eras;
                let cfo_bins = self.refine_cfo_for_subtraction(
                    &work,
                    slot_start,
                    symbols,
                    user.timing_chips,
                    user.cfo_bins(n),
                );
                for (sym_idx, &value) in symbols.iter().enumerate() {
                    self.subtract_symbol_tracked(
                        &mut work,
                        Some(&mut contribs[uidx]),
                        slot_start,
                        sym_idx,
                        value,
                        user.timing_chips,
                        cfo_bins,
                    );
                }
            }
        }

        let mut decoded = Vec::with_capacity(states.len());
        for (user, decisions, symbols, erasures) in states {
            let sync_errors = symbols[p..p + 2]
                .iter()
                .zip(SYNC_SYMBOLS)
                .filter(|(&got, want)| got != *want)
                .count();
            let preamble_errors = symbols[..p].iter().filter(|&&v| v != 0).count();
            let mut data: Vec<u16> = symbols[p + 2..].to_vec();
            let (mut frame, mut frame_error) = match decode_frame(&self.params, &data) {
                Ok(f) => (Some(f), None),
                Err(source) => (
                    None,
                    Some(
                        DecodeError::Frame {
                            offset_bins: user.offset_bins,
                            source,
                        }
                        .traced(),
                    ),
                ),
            };
            let crc_ok = frame.as_ref().map(|f| f.crc_ok).unwrap_or(false);
            if !crc_ok {
                // CRC-guided list decoding: in dense collisions, residual
                // interference occasionally pushes the true symbol to the
                // runner-up slot. Re-try the lowest-confidence windows with
                // their runner-up values until the CRC validates.
                if let Some((fixed_data, fixed_frame)) =
                    self.list_decode(&decisions[p + 2..], &data)
                {
                    data = fixed_data;
                    frame = Some(fixed_frame);
                    frame_error = None;
                }
            }
            if self.cfg.require_sync && (sync_errors > 0 || preamble_errors > p / 2) {
                continue;
            }
            decoded.push(DecodedUser {
                user,
                symbols: data,
                sync_errors,
                erasures,
                frame,
                frame_error,
            });
        }
        let out = dedup_ghosts(decoded);
        // Outcome-level provenance: what the slot yielded.
        choir_trace::outcome(|| choir_trace::TraceEvent::SlotOutcome {
            slot_start: slot_start as u64,
            users: u32::try_from(out.len()).unwrap_or(u32::MAX),
            crc_ok: u32::try_from(out.iter().filter(|u| u.payload_ok()).count())
                .unwrap_or(u32::MAX),
        });
        out
    }

    /// Tries alternative values at the most-suspect data windows until a
    /// CRC-passing frame emerges. A window is suspect when its winning
    /// score is low relative to the user's typical winning score — the
    /// signature of the user's own peak having been beaten by residual
    /// interference. Searches the product of the top-3 candidates over up
    /// to `LIST_DECODE_WINDOWS` windows (≤ 3⁸ ≈ 6.6k cheap frame decodes).
    fn list_decode(
        &self,
        decisions: &[CombDecision],
        data: &[u16],
    ) -> Option<(Vec<u16>, DecodedFrame)> {
        const LIST_DECODE_WINDOWS: usize = 8;
        if decisions.is_empty() {
            return None;
        }
        // Typical winning score (median) as the reference.
        let mut scores: Vec<f64> = decisions.iter().map(|d| d.winner_score()).collect();
        scores.sort_by(f64::total_cmp);
        let median = scores[scores.len() / 2];
        // Rank windows by deviation of the winner score from the user's
        // median: too-low means the user's own peak was degraded, too-high
        // means an interferer's peak won outright.
        let mut ranked: Vec<(f64, usize)> = decisions
            .iter()
            .enumerate()
            .map(|(i, d)| {
                let dev = (d.winner_score().max(1e-12) / median.max(1e-12)).ln().abs();
                (dev, i)
            })
            .collect();
        ranked.sort_by(|a, b| b.0.total_cmp(&a.0));
        let flagged: Vec<usize> = ranked
            .iter()
            .take(LIST_DECODE_WINDOWS)
            .filter(|(dev, _)| *dev > 0.2)
            .map(|&(_, i)| i)
            .collect();
        if flagged.is_empty() {
            return None;
        }
        // Odometer over candidate indices (0..3 per flagged window).
        let k = flagged.len();
        let mut digits = vec![0usize; k];
        let mut trial = data.to_vec();
        loop {
            // Advance odometer.
            let mut carry = 0usize;
            loop {
                digits[carry] += 1;
                if digits[carry] < 3 {
                    break;
                }
                digits[carry] = 0;
                carry += 1;
                if carry == k {
                    return None; // exhausted
                }
            }
            for (d, &w) in digits.iter().zip(&flagged) {
                trial[w] = decisions[w].cands[*d].0;
            }
            if let Ok(frame) = decode_frame(&self.params, &trial) {
                if frame.crc_ok {
                    return Some((trial, frame));
                }
            }
        }
    }

    /// Attaches a worker pool for intra-slot parallelism (the estimator's
    /// per-candidate boundary scans). Decoder output is bit-identical with
    /// or without a pool, for any worker count.
    pub fn with_pool(mut self, pool: ThreadPool) -> Self {
        self.est = self.est.with_pool(pool);
        self
    }

    /// Decodes a batch of independent slots concurrently on the process
    /// pool (`CHOIR_THREADS`, else the machine's core count — see
    /// [`choir_pool::global`]). Results come back in slot order and are
    /// **bit-identical** to decoding each slot sequentially: slots never
    /// share mutable state and the pool's map preserves input order, so
    /// thread count and scheduling cannot perturb a single float.
    pub fn decode_slots_parallel(&self, slots: &[SlotCapture]) -> Vec<SlotResult> {
        self.decode_slots_with_pool(slots, *choir_pool::global())
    }

    /// [`Self::decode_slots_parallel`] on an explicit pool (used by the
    /// determinism tests and benches to pin the worker count).
    pub fn decode_slots_with_pool(
        &self,
        slots: &[SlotCapture],
        pool: ThreadPool,
    ) -> Vec<SlotResult> {
        let views: Vec<SlotView<'_>> = slots.iter().map(SlotCapture::as_view).collect();
        self.decode_slot_views_with_pool(&views, pool)
    }

    /// Batch decode over borrowed [`SlotView`]s — the entry point the
    /// streaming station dispatches through, sharing the owned-capture
    /// path (and its determinism contract) exactly.
    pub fn decode_slot_views_with_pool(
        &self,
        views: &[SlotView<'_>],
        pool: ThreadPool,
    ) -> Vec<SlotResult> {
        pool.map(views, |_, view| {
            match self.try_decode(view.samples, view.slot_start, view.num_data_symbols) {
                Ok(users) => SlotResult { users, error: None },
                Err(e) => SlotResult {
                    users: Vec::new(),
                    error: Some(e),
                },
            }
        })
    }

    /// [`Self::try_decode`] on a borrowed [`SlotView`].
    pub fn try_decode_view(&self, view: SlotView<'_>) -> Result<Vec<DecodedUser>, DecodeError> {
        self.try_decode(view.samples, view.slot_start, view.num_data_symbols)
    }

    /// Convenience: decode when the payload length (bytes) is known, as in
    /// the scheduled-uplink experiments.
    pub fn decode_known_len(
        &self,
        samples: &[C64],
        slot_start: usize,
        payload_len: usize,
    ) -> Vec<DecodedUser> {
        let nsyms = lora_phy::frame::frame_symbol_count(&self.params, payload_len);
        self.decode(samples, slot_start, nsyms)
    }

    /// Returns true when `offset` is plausibly one of the users' offsets —
    /// a helper for experiment ground-truth matching.
    pub fn matches_offset(users: &[UserEstimate], offset: f64, n: usize, tol: f64) -> bool {
        users
            .iter()
            .any(|u| circular_dist(u.offset_bins, offset, n as f64) < tol)
    }
}

/// Removes ghost users: preamble tracking can promote a residual artifact
/// of a real transmitter into a user candidate whose offset and timing are
/// both wrong by cancelling amounts — it then decodes the *same* symbol
/// stream as its parent. Keep the strongest of any identical-stream group.
fn dedup_ghosts(mut decoded: Vec<DecodedUser>) -> Vec<DecodedUser> {
    decoded.sort_by(|a, b| b.user.mag.total_cmp(&a.user.mag));
    let mut out: Vec<DecodedUser> = Vec::with_capacity(decoded.len());
    for d in decoded {
        let dup = out.iter().find_map(|kept| {
            let same = kept
                .symbols
                .iter()
                .zip(&d.symbols)
                .filter(|(a, b)| a == b)
                .count();
            let len = kept.symbols.len().min(d.symbols.len()).max(1);
            // Distinct users share only the frame header (~25 % of a short
            // packet); a ghost reproduces most of its parent's stream.
            if same * 10 >= len * 6 {
                // ≥60 % identical symbols
                Some((kept.user.offset_bins, same as f64 / len as f64))
            } else {
                None
            }
        });
        match dup {
            Some((kept_bins, identical_frac)) => {
                // Provenance: record the ghost verdict (who absorbed whom).
                choir_trace::full(|| choir_trace::TraceEvent::PeakDedup {
                    kept_bins,
                    dropped_bins: d.user.offset_bins,
                    identical_frac,
                });
            }
            None => out.push(d),
        }
    }
    out
}

/// Window-aligned ISI stream reconstruction (Sec. 6.1) — the fallback used
/// when per-user realignment is disabled (ablation benches): window `k`
/// holds the head of symbol `k` and, for a delayed user, the tail of
/// symbol `k−1` at the same position. Pick, per window, the strongest
/// candidate that is not a duplicate of the previous symbol; fall back to
/// the duplicate (a genuine repeat shows up as a single merged peak);
/// count an erasure when a window is empty.
pub fn reconstruct_stream(cands: &[Vec<(u16, f64)>], total_syms: usize) -> (Vec<u16>, usize) {
    let mut out = Vec::with_capacity(total_syms);
    let mut erasures = 0usize;
    // The preamble ends with value 0 (its chirps sit exactly at the user's
    // offset), so the tail bleeding into the first sync window reads as 0.
    let mut prev: u16 = 0;
    // A truncated capture simply has no observations for the tail windows
    // (the `DecodeError::TruncatedSlot` contract): clamp to what exists and
    // report the missing tail as erasures rather than panicking.
    let have = cands.len().min(total_syms);
    for cand in &cands[..have] {
        let mut sorted = cand.clone();
        sorted.sort_by(|a, b| b.1.total_cmp(&a.1));
        let fresh = sorted.iter().find(|(v, _)| *v != prev);
        let value = match fresh {
            Some(&(v, _)) => v,
            None => match sorted.first() {
                Some(&(v, _)) => v, // only the duplicate seen: a repeat
                None => {
                    erasures += 1;
                    prev // erasure: hold the previous value
                }
            },
        };
        out.push(value);
        prev = value;
    }
    // Missing tail windows: hold the last value (the same convention as an
    // in-range empty window) and count each as an erasure.
    for _ in have..total_syms {
        erasures += 1;
        out.push(prev);
    }
    (out, erasures)
}

#[cfg(test)]
mod tests {
    use super::*;
    use choir_channel::impairments::{HardwareProfile, OscillatorModel};
    use choir_channel::scenario::ScenarioBuilder;

    fn params() -> PhyParams {
        PhyParams::default() // SF8, 125 kHz, CR4/8
    }

    fn profile(cfo_bins: f64, toff_symbols: f64) -> HardwareProfile {
        let bin_hz = 125e3 / 256.0;
        HardwareProfile {
            cfo_hz: cfo_bins * bin_hz,
            timing_offset_symbols: toff_symbols,
            phase: 1.0,
            cfo_jitter_hz: 0.0,
            timing_jitter_symbols: 0.0,
        }
    }

    #[test]
    fn two_users_clean_collision_decoded() {
        let s = ScenarioBuilder::new(params())
            .snrs_db(&[20.0, 17.0])
            .payload_len(10)
            .profiles(vec![profile(2.3, 0.1), profile(-7.6, 0.32)])
            .seed(1)
            .build();
        let dec = ChoirDecoder::new(s.params);
        let out = dec.decode_known_len(&s.samples, s.slot_start, 10);
        assert_eq!(out.len(), 2, "users found: {}", out.len());
        let mut payloads: Vec<Vec<u8>> = out
            .iter()
            .map(|d| {
                assert!(
                    d.payload_ok(),
                    "sync_errors {} erasures {}",
                    d.sync_errors,
                    d.erasures
                );
                d.frame.as_ref().unwrap().payload.clone()
            })
            .collect();
        payloads.sort();
        let mut truth: Vec<Vec<u8>> = s.users.iter().map(|u| u.payload.clone()).collect();
        truth.sort();
        assert_eq!(payloads, truth);
    }

    #[test]
    fn offsets_estimated_accurately() {
        let truth_shift =
            |p: &HardwareProfile| p.aggregate_shift_bins(125e3 / 256.0, 256).rem_euclid(256.0);
        let p1 = profile(5.37, 0.05);
        let p2 = profile(-3.21, 0.4);
        let s = ScenarioBuilder::new(params())
            .snrs_db(&[25.0, 22.0])
            .profiles(vec![p1, p2])
            .seed(2)
            .build();
        let dec = ChoirDecoder::new(s.params);
        // Decode-time estimates are the system's final offsets (refined on
        // the SIC-cleaned, alignment-compensated signal — what Fig. 7 of
        // the paper characterises).
        let out = dec.decode_known_len(&s.samples, s.slot_start, 8);
        assert_eq!(out.len(), 2);
        for truth in [truth_shift(&p1), truth_shift(&p2)] {
            let best = out
                .iter()
                .map(|d| circular_dist(d.user.offset_bins, truth, 256.0))
                .fold(f64::INFINITY, f64::min);
            assert!(best < 0.05, "offset error {best} for truth {truth}");
        }
    }

    #[test]
    fn timing_offsets_recovered() {
        let p1 = profile(5.37, 0.05); // Δ = 12.8 chips
        let p2 = profile(-3.21, 0.4); // Δ = 102.4 chips
        let s = ScenarioBuilder::new(params())
            .snrs_db(&[25.0, 22.0])
            .profiles(vec![p1, p2])
            .seed(2)
            .build();
        let dec = ChoirDecoder::new(s.params);
        let users = dec.discover_users(&s.samples, s.slot_start);
        assert!(users.len() >= 2);
        // Only the fractional chip timing is physically identifiable from
        // the preamble (and only it matters: integer chip errors cancel
        // against the matching frequency shift). Check it to 0.15 chips.
        for truth_chips in [12.8f64, 102.4] {
            let best = users[..2]
                .iter()
                .map(|u| {
                    crate::cluster::circular_dist(
                        u.timing_chips.rem_euclid(1.0),
                        truth_chips.rem_euclid(1.0),
                        1.0,
                    )
                })
                .fold(f64::INFINITY, f64::min);
            assert!(
                best < 0.15,
                "fractional timing error {best} for truth {truth_chips}"
            );
        }
    }

    #[test]
    fn five_users_all_decoded() {
        let profiles = vec![
            profile(3.13, 0.08),
            profile(-10.62, 0.21),
            profile(25.44, 0.02),
            profile(-40.91, 0.33),
            profile(60.27, 0.15),
        ];
        let s = ScenarioBuilder::new(params())
            .snrs_db(&[22.0, 20.0, 18.0, 16.0, 14.0])
            .payload_len(8)
            .profiles(profiles)
            .seed(3)
            .build();
        let dec = ChoirDecoder::new(s.params);
        let out = dec.decode_known_len(&s.samples, s.slot_start, 8);
        let ok = out.iter().filter(|d| d.payload_ok()).count();
        assert!(ok >= 4, "only {ok}/5 decoded (found {})", out.len());
    }

    #[test]
    fn near_far_25db_both_decoded() {
        let s = ScenarioBuilder::new(params())
            .snrs_db(&[30.0, 5.0])
            .payload_len(6)
            .profiles(vec![profile(12.3, 0.12), profile(-20.7, 0.28)])
            .seed(4)
            .build();
        let dec = ChoirDecoder::new(s.params);
        let out = dec.decode_known_len(&s.samples, s.slot_start, 6);
        assert_eq!(out.len(), 2, "users: {}", out.len());
        assert!(out[0].payload_ok(), "strong user failed");
        assert!(out[1].payload_ok(), "weak user failed (near-far)");
    }

    #[test]
    fn single_user_degenerate_case() {
        let s = ScenarioBuilder::new(params())
            .snrs_db(&[15.0])
            .payload_len(12)
            .seed(5)
            .build();
        let dec = ChoirDecoder::new(s.params);
        let out = dec.decode_known_len(&s.samples, s.slot_start, 12);
        assert_eq!(out.len(), 1);
        assert!(out[0].payload_ok());
        assert_eq!(out[0].frame.as_ref().unwrap().payload, s.users[0].payload);
    }

    #[test]
    fn pure_noise_no_users() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let noise = choir_channel::noise::awgn(&mut rng, 256 * 40, 1.0);
        let dec = ChoirDecoder::new(params());
        assert!(dec.discover_users(&noise, 0).is_empty());
        assert!(dec.decode(&noise, 0, 10).is_empty());
    }

    #[test]
    fn large_timing_offset_isi_handled() {
        // Nearly half-symbol delays: window-aligned processing would see a
        // strong tail peak in every window; per-user realignment must make
        // this case clean.
        let s = ScenarioBuilder::new(params())
            .snrs_db(&[20.0, 18.0])
            .payload_len(9)
            .profiles(vec![profile(8.42, 0.45), profile(-15.18, 0.49)])
            .seed(7)
            .build();
        let dec = ChoirDecoder::new(s.params);
        let out = dec.decode_known_len(&s.samples, s.slot_start, 9);
        assert_eq!(out.len(), 2);
        for d in &out {
            assert!(
                d.payload_ok(),
                "sync {} erasures {}",
                d.sync_errors,
                d.erasures
            );
        }
    }

    #[test]
    fn randomized_oscillator_population() {
        // Ten trials with oscillator-model-drawn offsets: expect ≥ 8/10
        // two-user collisions fully decoded (fractional offsets can
        // occasionally collide — the scaling limit the paper acknowledges).
        let mut full = 0;
        for seed in 0..10 {
            let s = ScenarioBuilder::new(params())
                .snrs_db(&[20.0, 16.0])
                .payload_len(8)
                .oscillator(OscillatorModel::default())
                .seed(100 + seed)
                .build();
            let dec = ChoirDecoder::new(s.params);
            let out = dec.decode_known_len(&s.samples, s.slot_start, 8);
            if out.len() == 2 && out.iter().all(|d| d.payload_ok()) {
                full += 1;
            }
        }
        assert!(full >= 8, "only {full}/10 fully decoded");
    }

    #[test]
    fn reconstruct_stream_dedups_and_repeats() {
        // Simulated candidates: symbol sequence 24, 48, 7, 7, 9 with tails.
        let cands = vec![
            vec![(24u16, 1.0), (0u16, 0.4)], // sync1 head + preamble tail
            vec![(48, 1.0), (24, 0.4)],      // sync2 + tail of sync1
            vec![(7, 1.0), (48, 0.4)],       // data 7 + tail
            vec![(7, 1.0)],                  // repeat 7: merged single peak
            vec![(9, 1.0), (7, 0.4)],        // data 9 + tail of the repeat
            vec![(9, 0.4)],                  // trailing tail window
        ];
        let (syms, erasures) = reconstruct_stream(&cands, 5);
        assert_eq!(syms, vec![24, 48, 7, 7, 9]);
        assert_eq!(erasures, 0);
    }

    #[test]
    fn reconstruct_stream_counts_erasures() {
        let cands = vec![vec![(24u16, 1.0)], vec![], vec![(5, 1.0)], vec![]];
        let (syms, erasures) = reconstruct_stream(&cands, 3);
        assert_eq!(syms.len(), 3);
        assert_eq!(erasures, 1);
        assert_eq!(syms[1], 24); // held previous value
    }

    #[test]
    fn reconstruct_stream_clamps_truncated_candidate_list() {
        // Regression: used to panic with a slice OOB when fewer candidate
        // windows than `total_syms` were available (a truncated capture).
        // The missing tail must read as erasures, consistent with the
        // `DecodeError::TruncatedSlot` contract.
        let cands = vec![vec![(24u16, 1.0)], vec![(7, 1.0), (24, 0.4)]];
        let (syms, erasures) = reconstruct_stream(&cands, 5);
        assert_eq!(syms, vec![24, 7, 7, 7, 7]); // tail holds the last value
        assert_eq!(erasures, 3);

        // Degenerate extreme: no windows at all.
        let (syms, erasures) = reconstruct_stream(&[], 4);
        assert_eq!(syms, vec![0, 0, 0, 0]); // preamble tail convention
        assert_eq!(erasures, 4);
    }

    #[test]
    fn truncated_capture_is_an_error_not_a_panic() {
        let s = ScenarioBuilder::new(params())
            .snrs_db(&[20.0])
            .payload_len(8)
            .profiles(vec![profile(3.0, 0.1)])
            .seed(77)
            .build();
        // Cut the capture off mid-payload: several symbol windows short.
        let n = params().samples_per_symbol();
        let cut = s.slot_start + (params().preamble_len + 4) * n;
        let truncated = &s.samples[..cut];
        let dec = ChoirDecoder::new(s.params);
        let err = dec
            .try_decode(truncated, s.slot_start, 16)
            .expect_err("truncated slot must be reported");
        match err {
            DecodeError::TruncatedSlot {
                needed, available, ..
            } => {
                assert!(available < needed);
                assert_eq!(available, cut);
            }
            other => panic!("expected TruncatedSlot, got {other:?}"),
        }
        // The infallible path must degrade gracefully, not panic: any user
        // it still reports carries erasures for the missing tail windows.
        for u in dec.decode_known_len(truncated, s.slot_start, 16) {
            assert!(u.erasures > 0, "missing windows must count as erasures");
        }
    }

    #[test]
    fn batch_decode_matches_single_slot_decode() {
        let dec = ChoirDecoder::new(params());
        let slots: Vec<SlotCapture> = (0..2)
            .map(|i| {
                let s = ScenarioBuilder::new(params())
                    .snrs_db(&[20.0, 17.0])
                    .payload_len(6)
                    .profiles(vec![profile(2.3, 0.1), profile(-7.6, 0.32)])
                    .seed(900 + i)
                    .build();
                SlotCapture::known_len(&s.params, s.samples, s.slot_start, 6)
            })
            .collect();
        let batch = dec.decode_slots_with_pool(&slots, choir_pool::ThreadPool::sequential());
        assert_eq!(batch.len(), 2);
        for (slot, res) in slots.iter().zip(&batch) {
            assert!(res.error.is_none());
            let single = dec
                .try_decode(&slot.samples, slot.slot_start, slot.num_data_symbols)
                .expect("single-slot decode");
            assert_eq!(res.users.len(), single.len());
            for (a, b) in res.users.iter().zip(&single) {
                assert_eq!(a.symbols, b.symbols);
                assert_eq!(a.user.offset_bins.to_bits(), b.user.offset_bins.to_bits());
                assert_eq!(a.frame, b.frame);
            }
            assert_eq!(res.ok_users().count(), 2);
        }
    }

    #[test]
    fn batch_decode_reports_per_slot_errors() {
        let dec = ChoirDecoder::new(params());
        // One good slot, one hopelessly truncated slot: the batch API must
        // surface the error in place without poisoning its neighbours.
        let s = ScenarioBuilder::new(params())
            .snrs_db(&[20.0])
            .payload_len(6)
            .profiles(vec![profile(3.0, 0.1)])
            .seed(901)
            .build();
        let good = SlotCapture::known_len(&s.params, s.samples.clone(), s.slot_start, 6);
        let bad = SlotCapture::new(s.samples[..s.slot_start + 64].to_vec(), s.slot_start, 16);
        let out = dec.decode_slots_parallel(&[good, bad]);
        assert_eq!(out.len(), 2);
        assert!(out[0].error.is_none());
        assert_eq!(out[0].ok_users().count(), 1);
        assert!(out[1].users.is_empty());
        assert!(matches!(
            out[1].error,
            Some(DecodeError::TruncatedSlot { .. })
        ));
    }
}
