//! Fractional frequency-offset estimation — Sec. 5.1 / Algorithm 1.
//!
//! For one received symbol window containing `K` colliding chirps, the
//! estimator (1) dechirps and takes a zero-padded FFT, (2) reads coarse
//! peak positions, (3) fits complex channels by least squares (Eqn. 2),
//! (4) reconstructs the signal and measures the residual power (Eqn. 3),
//! and (5) searches the neighbourhood of the coarse positions for the
//! offsets that minimise the residual (Eqn. 4). The residual surface is
//! locally convex (Fig. 4), so cyclic coordinate descent with a shrinking
//! bracket converges quickly; multi-start guards against side-lobe minima.
//!
//! The descent's first sweep batches its line searches: a fixed grid of
//! candidate offsets per coordinate is scored `block_width` at a time
//! through the AoSoA blocked kernels (see [`CandidateBlock`]) against a
//! cheap deflated-residual surrogate, and only the bracket around the
//! grid argmin gets the exact golden-section polish. The refined output
//! is bit-identical at every block width and on every DSP backend.

use crate::error::DecodeError;
use crate::profile::{scope, Stage};
use choir_dsp::backend::MAX_BLOCK_WIDTH;
use choir_dsp::checks;
use choir_dsp::complex::C64;
use choir_dsp::fft::FftPlan;
use choir_dsp::linalg::{
    conj_dot, gram_residual, least_squares_refs, residual_energy_refs, CholeskyFactor,
};
use choir_dsp::optim::{golden_section, Optimum};
use choir_dsp::peaks::{find_peaks, Peak, PeakConfig};
use choir_dsp::workspace;
use choir_pool::ThreadPool;
use lora_phy::chirp::base_downchirp_cached;
use std::cell::RefCell;
use std::rc::Rc;

/// One disentangled component of a collision: a frequency position (in
/// fractional bins) and the complex channel that best explains it.
///
/// A transmitter delayed by a fractional number of chips contributes, in a
/// receiver-aligned window, a tone with a *phase step* at the symbol
/// boundary: the tail of its previous chirp and the head of the current one
/// alias to the same discrete frequency but with phases differing by
/// `2π·frac(Δ_chips)`. The optional [`Step`] captures that second segment
/// exactly: the component's time-domain model is
/// `(channel + step.coeff·1{t < step.boundary}) · e^{j2πft/N}`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ComponentEstimate {
    /// Tone position in fractional FFT bins, `[0, 2^SF)`. For a preamble
    /// chirp this is the user's aggregate hardware offset; for a data chirp
    /// it is offset + data.
    pub freq_bins: f64,
    /// Complex channel (amplitude × phase) of the tone over the whole
    /// window (the head segment's value).
    pub channel: C64,
    /// Optional boundary-split term (ISI phase step, Sec. 6.1).
    pub step: Option<Step>,
}

/// Extra complex amplitude applied over `[0, boundary)` chips.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Step {
    /// Additional coefficient on the leading segment.
    pub coeff: C64,
    /// Boundary chip index (the delayed transmitter's symbol edge).
    pub boundary: usize,
}

impl ComponentEstimate {
    /// A pure tone without a step term.
    pub fn tone(freq_bins: f64, channel: C64) -> Self {
        ComponentEstimate {
            freq_bins,
            channel,
            step: None,
        }
    }
}

/// Configuration for the estimator.
#[derive(Clone, Copy, Debug)]
pub struct EstimatorConfig {
    /// Zero-padding factor for the coarse FFT (the paper uses 10).
    pub pad: usize,
    /// Peak-detection settings.
    pub peaks: PeakConfig,
    /// Residual-search bracket around each coarse position, in bins.
    /// Coarse positions are accurate to ~1/pad bins, so ±0.5/pad plus
    /// margin is enough.
    pub search_radius_bins: f64,
    /// Convergence tolerance of the offset search, in bins.
    pub tol_bins: f64,
    /// Maximum coordinate-descent sweeps.
    pub max_sweeps: usize,
    /// Whether to fit the boundary-split (ISI step) term per component.
    /// Required for accurate reconstruction when transmitters carry
    /// multi-chip fractional timing offsets.
    pub fit_steps: bool,
    /// Minimum relative residual improvement for a step term to be kept.
    pub step_gain_threshold: f64,
    /// Candidate-block width of the line-search grid prefilter: how many
    /// offset hypotheses each blocked kernel invocation evaluates at
    /// once (AoSoA layout, see [`CandidateBlock`]). Must be in
    /// `1..=MAX_BLOCK_WIDTH`. The refined output is bit-identical at
    /// every width — the blocked kernels keep one accumulator per
    /// candidate, so the width only chooses how the fixed surrogate
    /// grid is chunked into kernel calls.
    pub block_width: usize,
}

impl Default for EstimatorConfig {
    fn default() -> Self {
        let pad = 10;
        EstimatorConfig {
            pad,
            peaks: PeakConfig {
                pad,
                ..PeakConfig::default()
            },
            search_radius_bins: 0.15,
            tol_bins: 1e-4,
            max_sweeps: 12,
            fit_steps: true,
            step_gain_threshold: 0.02,
            block_width: 4,
        }
    }
}

/// Number of surrogate grid points the first-sweep prefilter of
/// [`OffsetEstimator::refine`] evaluates per coordinate before handing a
/// narrowed bracket to the exact golden-section polish. Grid geometry is
/// fixed (independent of the configured block width), which is what
/// keeps the refined output bit-identical across widths.
const PREFILTER_GRID: usize = 8;

/// AoSoA block of candidate tone hypotheses, the unit of work of the
/// blocked line-search kernels: `W` basis columns stored interleaved as
/// `block[t·W + j]` (row `t` holds sample `t` of every candidate `j`),
/// so one kernel pass over the samples scores all `W` candidates with
/// one accumulator each. Scoring projects a target window onto each
/// candidate tone and measures the deflated residual
/// `‖y − ⟨b_j,y⟩/n · b_j‖²` — a cheap separable surrogate for the joint
/// least-squares residual the exact polish later minimises.
pub struct CandidateBlock {
    n: usize,
    /// Capacity width (the configured block width).
    w: usize,
    /// Width of the current fill (`≤ w`; short tail chunks shrink it).
    cw: usize,
    block: Vec<C64>,
    proj: Vec<C64>,
    coeffs: Vec<C64>,
    scores: Vec<f64>,
}

impl CandidateBlock {
    /// Allocates a block for up to `w` candidates over `n`-chip symbols.
    ///
    /// # Panics
    /// Panics if `w` is outside `1..=MAX_BLOCK_WIDTH`.
    pub fn new(n: usize, w: usize) -> Self {
        assert!(
            (1..=MAX_BLOCK_WIDTH).contains(&w),
            "CandidateBlock: width {w} outside 1..={MAX_BLOCK_WIDTH}"
        );
        CandidateBlock {
            n,
            w,
            cw: 0,
            block: vec![C64::ZERO; n * w],
            proj: vec![C64::ZERO; w],
            coeffs: vec![C64::ZERO; w],
            scores: vec![0.0; w],
        }
    }

    /// The block's capacity width.
    pub fn width(&self) -> usize {
        self.w
    }

    /// Synthesizes the candidate tones `e^{j2π f_j t / n}` into the
    /// interleaved block. `freqs.len()` becomes the current width.
    ///
    /// # Panics
    /// Panics if `freqs` is empty or longer than the capacity width.
    // hot:noalloc — columns are synthesized into the owned block.
    pub fn fill(&mut self, freqs: &[f64]) {
        assert!(
            !freqs.is_empty() && freqs.len() <= self.w,
            "CandidateBlock::fill: {} candidates into width-{} block",
            freqs.len(),
            self.w
        );
        self.cw = freqs.len();
        choir_dsp::backend::tone_block_into(&mut self.block[..self.n * self.cw], self.n, freqs);
    }

    /// Scores every filled candidate against `y`: projects
    /// (`c_j = ⟨b_j, y⟩ / n`, exact for unit tones whose Gram diagonal
    /// is `n`) and returns the per-candidate deflated residual energies
    /// `‖y − c_j·b_j‖²`, one blocked-kernel pass each. Lower is better.
    // hot:noalloc — both kernel passes write owned buffers.
    pub fn score(&mut self, y: &[C64]) -> &[f64] {
        let cw = self.cw;
        debug_assert!(cw > 0, "CandidateBlock::score before fill");
        let block = &self.block[..self.n * cw];
        choir_dsp::backend::conj_dot_block(block, y, &mut self.proj[..cw]);
        let inv_n = 1.0 / self.n as f64;
        for (c, &p) in self.coeffs[..cw].iter_mut().zip(&self.proj[..cw]) {
            *c = p.scale(inv_n);
        }
        choir_dsp::backend::residual_block(block, y, &self.coeffs[..cw], &mut self.scores[..cw]);
        &self.scores[..cw]
    }
}

/// Reusable per-symbol estimator for a fixed symbol length `2^SF`.
#[derive(Clone, Debug)]
pub struct OffsetEstimator {
    n: usize,
    cfg: EstimatorConfig,
    downchirp: std::sync::Arc<Vec<C64>>,
    fft_padded: FftPlan,
    /// Optional worker pool for the per-candidate boundary scans. `None`
    /// (the default) keeps every scan on the calling thread; batch slot
    /// decoding already parallelises at the slot level, so intra-slot
    /// workers are opt-in via [`Self::with_pool`]. Either way the scan's
    /// result is bit-identical: candidates are evaluated independently and
    /// reduced in candidate order.
    pool: Option<ThreadPool>,
}

/// Below this many boundary candidates a scan stays sequential even with a
/// pool attached. Since the prefix-sum rewrite a candidate costs a bordered
/// 2×2 solve (tens of nanoseconds), so only very large scans (big symbol
/// lengths) can amortise spawn/join overhead.
const MIN_PARALLEL_SCAN: usize = 64;

/// Distinct tone bases kept per thread in the basis LRU. Refinement of a
/// K≤6-component window revisits at most a few dozen grid points between
/// evictions (fitted positions, boundary-scan tones, model resynthesis).
const BASIS_CACHE_CAP: usize = 64;

/// LRU entries: `((n, freq.to_bits()), shared basis)`, most recent last.
type BasisCache = Vec<((usize, u64), Rc<Vec<C64>>)>;

thread_local! {
    /// Per-thread LRU of tone bases keyed by the exact `(n, f.to_bits())`
    /// pair; most recently used entry last.
    static BASIS_CACHE: RefCell<BasisCache> = const { RefCell::new(Vec::new()) };
    /// Per-thread scratch factor for the boundary scan's bordered solves,
    /// so pooled candidate evaluations stay allocation-free and unshared.
    static BORDER_SCRATCH: RefCell<CholeskyFactor> = RefCell::new(CholeskyFactor::new());
}

/// Writes the tone basis `e^{j2π f t / n}` into `buf` (length `n`).
// hot:noalloc — in-place resynthesis of one basis column.
fn synthesize_basis(buf: &mut [C64], n: usize, freq_bins: f64) {
    choir_dsp::backend::tone_into(buf, n, freq_bins);
}

/// Returns the tone basis for `(n, freq_bins)`, served from the calling
/// thread's LRU. The offset search revisits the same grid points
/// constantly — fitted positions feed `fit`, the boundary scans and model
/// resynthesis — so steady-state refinement stops paying `n` `cis` calls
/// per request. A hit is bitwise identical to recomputation: the content
/// is a pure function of the key.
fn cached_basis(n: usize, freq_bins: f64) -> Rc<Vec<C64>> {
    let key = (n, freq_bins.to_bits());
    BASIS_CACHE.with(|cell| {
        let mut cache = cell.borrow_mut();
        if let Some(pos) = cache.iter().position(|(k, _)| *k == key) {
            let entry = cache.remove(pos);
            let rc = Rc::clone(&entry.1);
            cache.push(entry);
            return rc;
        }
        let mut b = vec![C64::ZERO; n];
        synthesize_basis(&mut b, n, freq_bins);
        let rc = Rc::new(b);
        if cache.len() >= BASIS_CACHE_CAP {
            cache.remove(0);
        }
        cache.push((key, Rc::clone(&rc)));
        rc
    })
}

/// Incremental normal-equation evaluator — the offset search's hot
/// kernel. Holds the Gram matrix `G = BᴴB`, projection `p = Bᴴy` and
/// Cholesky factor for the current frequency hypothesis, and on each
/// [`Self::eval`] updates only the rows/columns of coordinates whose
/// frequency actually changed (cyclic coordinate descent moves exactly
/// one per probe). The residual is evaluated through the Gram identity
/// (`O(K²)` per probe after the `O(n)` column update) instead of a full
/// time-domain reconstruction, and every buffer — including the basis
/// columns, resynthesized in place — is owned and reused, so steady-state
/// probes perform zero heap allocations.
///
/// Gram entries are produced by the same [`conj_dot`] kernel and
/// `(i≤j, mirror-conjugate)` orientation as a from-scratch
/// [`least_squares`](choir_dsp::linalg::least_squares) build, so an
/// incrementally maintained matrix is bit-identical to a rebuilt one.
pub struct GramFit<'a> {
    n: usize,
    y: &'a [C64],
    y_energy: f64,
    k: usize,
    freqs: Vec<f64>,
    bases: Vec<Vec<C64>>,
    gram: Vec<C64>,
    p: Vec<C64>,
    chol: CholeskyFactor,
    coeffs: Vec<C64>,
    primed: bool,
    solved: bool,
}

impl<'a> GramFit<'a> {
    /// Builds an unprimed evaluator for `k` components over the dechirped
    /// window `y` (`n` chips per symbol). The first [`Self::eval`] fills
    /// every column; later probes update only what moved.
    ///
    /// # Panics
    /// Panics if `k` is zero or above 64 (the changed-coordinate bitmask
    /// width).
    pub fn new(n: usize, y: &'a [C64], k: usize) -> Self {
        assert!(k > 0 && k <= 64, "GramFit: component count out of range");
        GramFit {
            n,
            y,
            y_energy: choir_dsp::complex::energy(y),
            k,
            freqs: vec![0.0; k],
            bases: (0..k).map(|_| vec![C64::ZERO; y.len()]).collect(),
            gram: vec![C64::ZERO; k * k],
            p: vec![C64::ZERO; k],
            chol: CholeskyFactor::new(),
            coeffs: vec![C64::ZERO; k],
            primed: false,
            solved: false,
        }
    }

    /// Whether the most recent [`Self::eval`] produced a non-singular
    /// solve, i.e. whether the held coefficients match the held bases.
    /// After a singular probe the coefficients are stale and
    /// [`Self::deflate_into`] must not be used.
    pub fn solved(&self) -> bool {
        self.solved
    }

    /// Writes the deflated window `y′ = y − Σ_{j≠i} c_j·b_j` into `out`:
    /// every component's current model except coordinate `i`'s is
    /// subtracted, leaving (approximately) coordinate `i`'s lone tone
    /// plus noise — the target the blocked line-search prefilter scores
    /// its candidate grid against. Only meaningful when [`Self::solved`].
    // hot:noalloc — streams the held bases through one axpy each.
    pub fn deflate_into(&self, i: usize, out: &mut [C64]) {
        debug_assert!(self.solved, "deflate_into with stale coefficients");
        debug_assert_eq!(out.len(), self.y.len());
        out.copy_from_slice(self.y);
        for j in 0..self.k {
            if j != i {
                choir_dsp::backend::axpy(out, &self.bases[j], self.coeffs[j], true);
            }
        }
    }

    /// Least-squares residual power of the hypothesis `x` (one frequency
    /// per component). A singular Gram (duplicate hypotheses) reports the
    /// full window energy — the worst possible fit — matching
    /// [`OffsetEstimator::fit`]'s fallback.
    // hot:noalloc — the per-probe path only rewrites owned buffers.
    pub fn eval(&mut self, x: &[f64]) -> f64 {
        let k = self.k;
        debug_assert_eq!(x.len(), k);
        let mut changed = 0u64;
        for (i, &xi) in x.iter().enumerate() {
            if !self.primed || xi.to_bits() != self.freqs[i].to_bits() {
                synthesize_basis(&mut self.bases[i], self.n, xi);
                self.freqs[i] = xi;
                changed |= 1 << i;
            }
        }
        self.primed = true;
        for i in 0..k {
            if changed & (1 << i) == 0 {
                continue;
            }
            self.p[i] = conj_dot(&self.bases[i], self.y);
            for j in 0..k {
                if j == i {
                    self.gram[i * k + i] = conj_dot(&self.bases[i], &self.bases[i]);
                } else {
                    let (lo, hi) = (i.min(j), i.max(j));
                    let v = conj_dot(&self.bases[lo], &self.bases[hi]);
                    self.gram[lo * k + hi] = v;
                    self.gram[hi * k + lo] = v.conj();
                }
            }
        }
        if !self.chol.factor(k, &self.gram) {
            self.solved = false;
            return self.y_energy;
        }
        self.chol.solve_into(&self.p, &mut self.coeffs);
        self.solved = true;
        gram_residual(k, &self.gram, &self.p, &self.coeffs, self.y_energy)
    }
}

/// Per-tone boundary-scan state reused across `fit_steps` passes: the
/// tone basis, the prefix sums that turn every rect-truncated Gram entry
/// into an O(1) lookup, and the factored 1×1 leading block every
/// candidate's bordered factorization shares.
struct StepScan {
    base: Rc<Vec<C64>>,
    /// `pbb[c] = Σ_{t<c} base[t]ᴴ·base[t]`: `pbb[n]` is the tone's Gram
    /// diagonal; `pbb[c]` is both `⟨base, rect_c⟩` and `⟨rect_c, rect_c⟩`
    /// (a rect-truncated basis equals the tone over `[0, c)`), by the
    /// same accumulation order [`conj_dot`] uses.
    pbb: Vec<C64>,
    chol1: CholeskyFactor,
}

/// Cache of [`StepScan`]s keyed by `freq_bins.to_bits()`, living for one
/// [`OffsetEstimator::fit_steps`] call (all passes).
type StepScanCache = Vec<(u64, StepScan)>;

impl OffsetEstimator {
    /// Builds an estimator for symbols of `n = 2^SF` chips.
    pub fn new(n: usize, cfg: EstimatorConfig) -> Self {
        assert!(n.is_power_of_two(), "symbol length must be a power of two");
        assert!(cfg.pad >= 1);
        assert!(
            (1..=MAX_BLOCK_WIDTH).contains(&cfg.block_width),
            "block_width {} outside 1..={MAX_BLOCK_WIDTH}",
            cfg.block_width
        );
        OffsetEstimator {
            n,
            cfg,
            downchirp: base_downchirp_cached(n),
            fft_padded: FftPlan::new(n * cfg.pad),
            pool: None,
        }
    }

    /// Attaches a worker pool for the per-candidate local searches of the
    /// step-boundary fit. Output is guaranteed bit-identical with or
    /// without a pool (and for any worker count).
    pub fn with_pool(mut self, pool: ThreadPool) -> Self {
        self.pool = (pool.threads() > 1).then_some(pool);
        self
    }

    /// Symbol length in chips.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The configuration in use.
    pub fn config(&self) -> &EstimatorConfig {
        &self.cfg
    }

    /// Dechirps a window (must be exactly `n` samples).
    pub fn dechirp(&self, window: &[C64]) -> Vec<C64> {
        assert_eq!(window.len(), self.n, "dechirp: wrong window length");
        let mut out = vec![C64::ZERO; self.n];
        choir_dsp::backend::cmul_into(window, &self.downchirp, &mut out);
        // Debug sanitizer: the dechirped window feeds every later stage;
        // a NaN here means corrupt input samples, not a pipeline bug.
        checks::assert_finite("estimator::dechirp", &out);
        out
    }

    /// Zero-padded spectrum of a dechirped window.
    pub fn padded_spectrum(&self, dechirped: &[C64]) -> Vec<C64> {
        workspace::with(|ws| {
            let mut out = vec![C64::ZERO; self.n * self.cfg.pad];
            self.fft_padded.forward_padded_into(dechirped, &mut out, ws);
            out
        })
    }

    /// Coarse stage: dechirp, pad, detect peaks. Returned positions are in
    /// fractional bins with ~`1/pad`-bin granularity.
    pub fn coarse(&self, window: &[C64]) -> Vec<Peak> {
        scope(Stage::Dechirp, || {
            let de = self.dechirp(window);
            workspace::with(|ws| {
                let mut spec = ws.take(self.n * self.cfg.pad);
                self.fft_padded.forward_padded_into(&de, &mut spec, ws);
                let peaks = find_peaks(&spec, &self.cfg.peaks);
                ws.put(spec);
                peaks
            })
        })
    }

    /// Basis vector `e^{j2π f t / n}` for a tone at `freq_bins`, shared
    /// through the per-thread LRU (see [`cached_basis`]).
    fn basis(&self, freq_bins: f64) -> Rc<Vec<C64>> {
        cached_basis(self.n, freq_bins)
    }

    /// Least-squares channel fit (Eqn. 2) at the given tone positions,
    /// returning the channels and the residual power (Eqn. 3). Positions
    /// too close together make the system singular; in that case the
    /// residual is reported as the full signal energy (worst possible fit).
    pub fn fit(&self, dechirped: &[C64], freqs: &[f64]) -> (Vec<C64>, f64) {
        match self.try_fit(dechirped, freqs) {
            Ok(out) => out,
            Err(_) => (
                vec![C64::ZERO; freqs.len()],
                choir_dsp::complex::energy(dechirped),
            ),
        }
    }

    /// Fallible form of [`Self::fit`]: a singular system yields a typed
    /// [`DecodeError::SingularFit`] naming the component count instead of
    /// the worst-possible-residual fallback.
    pub fn try_fit(
        &self,
        dechirped: &[C64],
        freqs: &[f64],
    ) -> Result<(Vec<C64>, f64), DecodeError> {
        assert!(!freqs.is_empty(), "fit: need at least one tone");
        let basis: Vec<Rc<Vec<C64>>> = freqs.iter().map(|&f| self.basis(f)).collect();
        let refs: Vec<&[C64]> = basis.iter().map(|b| b.as_slice()).collect();
        match least_squares_refs(&refs, dechirped) {
            Some(channels) => {
                let r = residual_energy_refs(&refs, &channels, dechirped);
                Ok((channels, r))
            }
            None => Err(DecodeError::SingularFit {
                components: freqs.len(),
            }
            .traced()),
        }
    }

    /// Cyclic coordinate descent over the joint residual, with a blocked
    /// grid prefilter on the first sweep. Mirrors
    /// [`cyclic_coordinate_descent`](choir_dsp::optim::cyclic_coordinate_descent)
    /// exactly — same radius halving, same golden-section polish, same
    /// convergence test — except that the first sweep's line searches
    /// first score a fixed [`PREFILTER_GRID`]-point grid of candidate
    /// offsets against the coordinate's deflated window through the
    /// blocked AoSoA kernels ([`CandidateBlock`]), then golden-polish
    /// only the bracket around the grid argmin. Exact-objective probes
    /// drop roughly threefold; the polish still runs on the true
    /// [`GramFit`] residual, so accuracy is untouched.
    ///
    /// The surrogate grid geometry and kernel semantics are independent
    /// of the configured block width, so the returned optimum is
    /// bit-identical for every `block_width` (the width only chunks the
    /// grid into `ceil(G/W)` kernel calls). A coordinate whose last
    /// exact probe was singular skips the prefilter for that sweep (the
    /// deflation coefficients would be stale) and polishes the full
    /// bracket, exactly as the un-prefiltered descent would.
    // Entry-time setup allocates once (the coordinate vector and the
    // candidate block); the per-probe loop itself is allocation-free
    // through the noalloc-annotated kernels it drives
    // (`CandidateBlock::fill` / `score`, `GramFit::deflate_into`) and
    // the workspace-arena deflation buffer.
    fn ccd_refine(&self, gfit: &mut GramFit<'_>, x0: &[f64], radius: f64) -> Optimum {
        let tol = self.cfg.tol_bins;
        let mut x = x0.to_vec();
        let mut best = gfit.eval(&x);
        let mut evals = 1usize;
        let mut r = radius;
        let mut deflated = workspace::take(self.n);
        let mut cand = CandidateBlock::new(self.n, self.cfg.block_width);
        for sweep in 0..self.cfg.max_sweeps {
            let before = best;
            for i in 0..x.len() {
                let xi = x[i];
                let gtol = tol.max(r * 1e-4);
                let (mut lo, mut hi) = (xi - r, xi + r);
                if sweep == 0 && gfit.solved() {
                    gfit.deflate_into(i, &mut deflated);
                    let step = (hi - lo) / (PREFILTER_GRID - 1) as f64;
                    let mut grid = [0.0f64; PREFILTER_GRID];
                    for (g, gv) in grid.iter_mut().enumerate() {
                        *gv = lo + g as f64 * step;
                    }
                    let mut scores = [0.0f64; PREFILTER_GRID];
                    let mut q = 0;
                    while q < PREFILTER_GRID {
                        let cw = cand.width().min(PREFILTER_GRID - q);
                        cand.fill(&grid[q..q + cw]);
                        scores[q..q + cw].copy_from_slice(cand.score(&deflated));
                        q += cw;
                    }
                    evals += PREFILTER_GRID;
                    // Argmin; ties keep the lowest index.
                    let mut m = 0;
                    for (g, &s) in scores.iter().enumerate().skip(1) {
                        if s < scores[m] {
                            m = g;
                        }
                    }
                    lo = grid[m.saturating_sub(1)];
                    hi = grid[(m + 1).min(PREFILTER_GRID - 1)];
                }
                let (xmin, fmin) = golden_section(
                    |v| {
                        x[i] = v;
                        let fv = gfit.eval(&x);
                        x[i] = xi;
                        fv
                    },
                    lo,
                    hi,
                    gtol,
                );
                // golden_section spends ~2 + log_φ(range/tol) evals.
                evals += 2 + (((hi - lo) / gtol).ln() / 0.481).max(0.0).ceil() as usize;
                if fmin < best {
                    best = fmin;
                    x[i] = xmin;
                }
            }
            r *= 0.5;
            // Absolute-plus-relative improvement test — see
            // `cyclic_coordinate_descent`, whose semantics this mirrors.
            if before - best < tol * tol + 1e-9 * before.abs() {
                break;
            }
        }
        workspace::put(deflated);
        Optimum {
            x,
            value: best,
            evals,
        }
    }

    /// Fine stage (Eqn. 4): jointly refines the coarse positions by
    /// minimising the reconstruction residual. The search probes the
    /// residual through an incremental [`GramFit`] (allocation-free,
    /// `O(K²)` per probe) and narrows each first-sweep line search with
    /// the blocked candidate-grid prefilter (see `ccd_refine`);
    /// the converged positions then get one full time-domain
    /// verification fit, which is what the returned channels come from.
    /// Returns one estimate per input position (order preserved).
    pub fn refine(&self, window: &[C64], coarse_bins: &[f64]) -> Vec<ComponentEstimate> {
        assert!(!coarse_bins.is_empty(), "refine: no coarse positions");
        scope(Stage::Refine, || {
            let de = self.dechirp(window);
            let mut gfit = GramFit::new(self.n, &de, coarse_bins.len());
            let opt = self.ccd_refine(&mut gfit, coarse_bins, self.cfg.search_radius_bins);
            let (channels, _) = self.fit(&de, &opt.x);
            // Provenance: the coarse candidates entering the Algorithm-1
            // search, where they converged, and the joint residual there.
            choir_trace::full(|| choir_trace::TraceEvent::OffsetSearch {
                window: choir_trace::current_window(),
                evals: opt.evals as u64,
                coarse_bins: coarse_bins.to_vec(),
                refined_bins: opt.x.iter().map(|&f| f.rem_euclid(self.n as f64)).collect(),
                residual: opt.value,
            });
            opt.x
                .iter()
                .zip(channels)
                .map(|(&f, h)| ComponentEstimate::tone(f.rem_euclid(self.n as f64), h))
                .collect()
        })
    }

    /// Full-model residual energy of a component set against a dechirped
    /// window (tones and step terms included).
    pub fn full_residual(&self, dechirped: &[C64], comps: &[ComponentEstimate]) -> f64 {
        let mut resid = workspace::take(dechirped.len());
        resid.copy_from_slice(dechirped);
        for c in comps {
            self.accumulate_component_model(c, &mut resid, true);
        }
        let e = resid.iter().map(|z| z.norm_sqr()).sum();
        workspace::put(resid);
        e
    }

    /// Adds (`subtract = false`) or subtracts (`subtract = true`) one
    /// component's dechirped-domain model — tone plus optional step —
    /// from `out`, streaming the cached basis without materialising the
    /// model vector.
    // hot:noalloc — a cache hit streams straight into the accumulator.
    fn accumulate_component_model(&self, c: &ComponentEstimate, out: &mut [C64], subtract: bool) {
        let b = self.basis(c.freq_bins);
        let n = out.len().min(b.len());
        // The amplitude is piecewise constant in `t` (head amplitude
        // before the step boundary, tail after), so the per-sample `amp`
        // selection becomes one backend axpy per segment — same
        // multiplies and adds, in the same order, per element.
        match &c.step {
            Some(st) if st.boundary > 0 => {
                let split = st.boundary.min(n);
                choir_dsp::backend::axpy(
                    &mut out[..split],
                    &b[..split],
                    c.channel + st.coeff,
                    subtract,
                );
                choir_dsp::backend::axpy(&mut out[split..n], &b[split..n], c.channel, subtract);
            }
            _ => choir_dsp::backend::axpy(&mut out[..n], &b[..n], c.channel, subtract),
        }
    }

    /// Fits the boundary-split term of each component (Sec. 6.1): scans the
    /// boundary over a coarse chip grid (then a fine scan) and keeps the
    /// split that best explains the residual, provided it improves it by at
    /// least `step_gain_threshold`. Runs `passes` greedy rounds so coupled
    /// components (e.g. a user's head and tail peaks) converge jointly.
    /// Operates in the dechirped domain.
    fn fit_steps(&self, dechirped: &[C64], comps: &mut [ComponentEstimate], passes: usize) {
        scope(Stage::Refine, || {
            // Tone bases, Gram prefix sums and the factored leading block
            // depend only on each component's frequency, which fit_steps
            // never moves — build them once, reuse across all passes.
            let mut scans: StepScanCache = StepScanCache::new();
            for _ in 0..passes {
                self.fit_steps_once(dechirped, comps, &mut scans);
            }
        });
    }

    /// Looks up (or builds) the boundary-scan state for one tone.
    fn step_scan<'a>(&self, scans: &'a mut StepScanCache, freq_bins: f64) -> &'a StepScan {
        let key = freq_bins.to_bits();
        let idx = match scans.iter().position(|(k, _)| *k == key) {
            Some(i) => i,
            None => {
                let base = self.basis(freq_bins);
                let mut pbb = Vec::with_capacity(self.n + 1);
                let mut acc = C64::ZERO;
                pbb.push(acc);
                for &bv in base.iter() {
                    acc += bv.conj() * bv;
                    pbb.push(acc);
                }
                let mut chol1 = CholeskyFactor::new();
                let ok = chol1.factor(1, std::slice::from_ref(&pbb[self.n]));
                debug_assert!(ok, "a tone's Gram diagonal is always positive");
                scans.push((key, StepScan { base, pbb, chol1 }));
                scans.len() - 1
            }
        };
        &scans[idx].1
    }

    // hot:noalloc — candidate evaluations run entirely on prefix sums and
    // per-thread scratch; per-pass scratch comes from the workspace arena.
    fn fit_steps_once(
        &self,
        dechirped: &[C64],
        comps: &mut [ComponentEstimate],
        scans: &mut StepScanCache,
    ) {
        let n = self.n;
        // Current residual with all components (tone-only at this point).
        let mut resid = workspace::take(dechirped.len());
        resid.copy_from_slice(dechirped);
        for c in comps.iter() {
            self.accumulate_component_model(c, &mut resid, true);
        }
        // Strongest components first.
        let mut order: Vec<usize> = (0..comps.len()).collect();
        order.sort_by(|&a, &b| comps[b].channel.abs().total_cmp(&comps[a].channel.abs()));
        let mut pby = workspace::take(n + 1);
        for idx in order {
            // Add this component's model back; refit it with a step.
            self.accumulate_component_model(&comps[idx], &mut resid, false);
            let scan = self.step_scan(scans, comps[idx].freq_bins);
            // Projection prefix `pby[c] = Σ_{t<c} base[t]ᴴ·resid[t]` and
            // the target energy: together with `scan.pbb` they make every
            // candidate's normal equations O(1) lookups — for the system
            // `[base, rect_c]`, G = [[pbb[n], pbb[c]], [pbb[c]ᴴ, pbb[c]]]
            // and p = [pby[n], pby[c]].
            let mut acc = C64::ZERO;
            pby[0] = acc;
            let mut y_energy = 0.0;
            for (t, y) in resid.iter().enumerate() {
                acc += scan.base[t].conj() * y;
                pby[t + 1] = acc;
                y_energy += y.norm_sqr();
            }
            let g00 = scan.pbb[n];
            let p0 = pby[n];
            let mut h = [C64::ZERO];
            scan.chol1.solve_into(std::slice::from_ref(&p0), &mut h);
            let r_tone = gram_residual(
                1,
                std::slice::from_ref(&g00),
                std::slice::from_ref(&p0),
                &h,
                y_energy,
            );
            let mut best: (C64, Option<Step>, f64) = (h[0], None, r_tone);
            if self.cfg.fit_steps {
                let pbb: &[C64] = &scan.pbb;
                let pby_ro: &[C64] = &pby;
                let chol1 = &scan.chol1;
                let try_boundary = |c_b: usize| -> Option<(C64, Step, f64)> {
                    if c_b == 0 || c_b >= n {
                        return None;
                    }
                    let g01 = pbb[c_b];
                    BORDER_SCRATCH.with(|cell| {
                        let chol2 = &mut *cell.borrow_mut();
                        if !chol2.border(chol1, std::slice::from_ref(&g01), g01) {
                            return None;
                        }
                        let g2 = [g00, g01, g01.conj(), g01];
                        let p2 = [p0, pby_ro[c_b]];
                        let mut x2 = [C64::ZERO; 2];
                        chol2.solve_into(&p2, &mut x2);
                        let r = gram_residual(2, &g2, &p2, &x2, y_energy);
                        Some((
                            x2[0],
                            Step {
                                coeff: x2[1],
                                boundary: c_b,
                            },
                            r,
                        ))
                    })
                };
                // Coarse grid over the window, then a fine scan around the
                // best cell: the boundary is the transmitter's (fractional)
                // chip delay and rarely falls on a grid point.
                let mut best_step: Option<(C64, Step, f64)> = None;
                let coarse: Vec<usize> = (1..16).map(|k| k * n / 16).collect();
                self.scan_boundaries(&coarse, &try_boundary, &mut best_step);
                if let Some(coarse_best) = &best_step {
                    let centre = coarse_best.1.boundary;
                    let span = n / 16;
                    let fine_step = (n / 128).max(1);
                    let fine: Vec<usize> = (centre.saturating_sub(span)
                        ..=(centre + span).min(n - 1))
                        .step_by(fine_step)
                        .collect();
                    self.scan_boundaries(&fine, &try_boundary, &mut best_step);
                    // Final single-chip resolution around the fine winner
                    // (falls back to the coarse centre if the fine sweep
                    // somehow emptied the candidate, which cannot happen).
                    let centre = best_step.as_ref().map_or(centre, |b| b.1.boundary);
                    let single: Vec<usize> = (centre.saturating_sub(fine_step)
                        ..=(centre + fine_step).min(n - 1))
                        .collect();
                    self.scan_boundaries(&single, &try_boundary, &mut best_step);
                }
                if let Some((g1, st, r)) = best_step {
                    if r < best.2 * (1.0 - self.cfg.step_gain_threshold) {
                        best = (g1, Some(st), r);
                    }
                }
            }
            comps[idx].channel = best.0;
            comps[idx].step = best.1;
            self.accumulate_component_model(&comps[idx], &mut resid, true);
        }
        workspace::put(pby);
        workspace::put(resid);
    }

    /// Evaluates `try_boundary` at every candidate and folds the winners
    /// into `best` (strictly smaller residual replaces, ties keep the
    /// earlier candidate). Candidate evaluations are independent, so with a
    /// pool attached they run on the workers — but the fold always walks
    /// the results in candidate order, which is what makes the outcome
    /// bit-identical to the sequential scan for any worker count.
    fn scan_boundaries<F>(
        &self,
        cands: &[usize],
        try_boundary: &F,
        best: &mut Option<(C64, Step, f64)>,
    ) where
        F: Fn(usize) -> Option<(C64, Step, f64)> + Sync,
    {
        let evals: Vec<Option<(C64, Step, f64)>> = match &self.pool {
            Some(pool) if cands.len() >= MIN_PARALLEL_SCAN => {
                pool.map(cands, |_, &c_b| try_boundary(c_b))
            }
            _ => cands.iter().map(|&c_b| try_boundary(c_b)).collect(),
        };
        for cand in evals.into_iter().flatten() {
            if best.as_ref().map(|b| cand.2 < b.2).unwrap_or(true) {
                *best = Some(cand);
            }
        }
    }

    /// Coarse + fine in one call: detects peaks, jointly refines their
    /// frequencies, then fits each component's boundary-split (ISI) term
    /// and re-refines frequencies against the step-corrected residual.
    pub fn estimate(&self, window: &[C64]) -> Vec<ComponentEstimate> {
        let peaks = self.coarse(window);
        if peaks.is_empty() {
            return Vec::new();
        }
        let coarse: Vec<f64> = peaks.iter().map(|p| p.pos).collect();
        self.refine_with_steps(window, &coarse)
    }

    /// Joint frequency refinement plus per-component step fitting, starting
    /// from the given coarse positions (Algorithm 1's fine stage with the
    /// boundary-split extension).
    pub fn refine_with_steps(&self, window: &[C64], coarse: &[f64]) -> Vec<ComponentEstimate> {
        let mut comps = self.refine(window, coarse);
        if self.cfg.fit_steps {
            scope(Stage::Refine, || {
                self.refine_steps_passes(window, &mut comps)
            });
        }
        comps
    }

    /// The step-fitting / corrected-refinement alternation of
    /// [`Self::refine_with_steps`] (split out for stage accounting).
    fn refine_steps_passes(&self, window: &[C64], comps: &mut Vec<ComponentEstimate>) {
        {
            let de = self.dechirp(window);
            self.fit_steps(&de, comps, 2);
            // Alternate frequency refinement (against the step-corrected
            // signal — the step term absorbs the skirt that biases the
            // tone-only fit) with step re-fitting. A boundary-split tone's
            // coarse peak can sit half a bin off, so the first corrected
            // pass searches a wider bracket.
            let narrow = comps.clone();
            let narrow_residual = self.full_residual(&de, &narrow);
            for (pass, radius) in [(0usize, 0.6f64), (1, self.cfg.search_radius_bins)] {
                let _ = pass;
                let steps_model = {
                    let mut m = vec![C64::ZERO; self.n];
                    // A step term is constant over `[0, boundary)`, so
                    // its contribution is one segment axpy (same
                    // multiply-adds, same order, per element as the
                    // per-sample guard it replaces).
                    for c in comps.iter() {
                        if let Some(st) = &c.step {
                            let b = self.basis(c.freq_bins);
                            let split = st.boundary.min(self.n);
                            choir_dsp::backend::axpy(&mut m[..split], &b[..split], st.coeff, false);
                        }
                    }
                    m
                };
                let corrected: Vec<C64> = de.iter().zip(&steps_model).map(|(d, s)| d - s).collect();
                let freqs: Vec<f64> = comps.iter().map(|c| c.freq_bins).collect();
                let mut gfit = GramFit::new(self.n, &corrected, freqs.len());
                let opt = self.ccd_refine(&mut gfit, &freqs, radius);
                let (channels, _) = self.fit(&corrected, &opt.x);
                for ((c, &f), h) in comps.iter_mut().zip(&opt.x).zip(channels) {
                    c.freq_bins = f.rem_euclid(self.n as f64);
                    c.channel = h;
                }
                // Re-fit the steps against the refreshed frequencies so the
                // reconstruction (and hence SIC subtraction) is consistent.
                self.fit_steps(&de, comps, 1);
            }
            // The wide corrected pass rescues boundary-split tones whose
            // coarse peak sat on a side lobe, but it can wander when two
            // genuine tones sit within a bin of each other. Keep whichever
            // solution actually explains the window better.
            if self.full_residual(&de, comps) > narrow_residual {
                *comps = narrow;
            }
        }
    }

    /// Reconstructs the time-domain contribution of the given components
    /// (in the *received*, chirped domain) so it can be subtracted from a
    /// window — the SIC building block. Step terms are included.
    pub fn reconstruct(&self, components: &[ComponentEstimate]) -> Vec<C64> {
        let mut de = vec![C64::ZERO; self.n];
        for c in components {
            self.accumulate_component_model(c, &mut de, false);
        }
        // Undo the dechirp: multiply by the up-chirp (conjugate of down).
        de.iter()
            .zip(self.downchirp.iter())
            .map(|(d, dc)| d * dc.conj())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use choir_dsp::complex::c64;
    use lora_phy::chirp::symbol_sample;

    const N: usize = 128;

    fn est() -> OffsetEstimator {
        OffsetEstimator::new(N, EstimatorConfig::default())
    }

    /// A preamble chirp (symbol 0) with an exact fractional tone offset
    /// `f` bins and channel `h`, rendered in the received domain.
    fn chirp_with_offset(f: f64, h: C64) -> Vec<C64> {
        (0..N)
            .map(|t| {
                let s = symbol_sample(N, 0, t as f64);
                let rot = C64::cis(2.0 * std::f64::consts::PI * f * t as f64 / N as f64);
                h * s * rot
            })
            .collect()
    }

    fn add(a: &mut [C64], b: &[C64]) {
        for (x, y) in a.iter_mut().zip(b) {
            *x += *y;
        }
    }

    #[test]
    fn single_component_refined_to_high_precision() {
        let e = est();
        let truth = 50.43;
        let h = C64::from_polar(1.0, 0.7);
        let window = chirp_with_offset(truth, h);
        let comps = e.estimate(&window);
        assert_eq!(comps.len(), 1);
        assert!(
            (comps[0].freq_bins - truth).abs() < 1e-3,
            "freq {}",
            comps[0].freq_bins
        );
        assert!((comps[0].channel - h).abs() < 1e-3);
    }

    #[test]
    fn two_components_fractionally_separated() {
        // The paper's running example: peaks 50.4 bins apart, both
        // fractional — coarse reads ~50.3/50.4; refinement nails both.
        let e = est();
        let (f1, f2) = (10.17, 60.57);
        let (h1, h2) = (c64(0.9, 0.3), c64(-0.2, 0.8));
        let mut w = chirp_with_offset(f1, h1);
        add(&mut w, &chirp_with_offset(f2, h2));
        let mut comps = e.estimate(&w);
        assert_eq!(comps.len(), 2);
        comps.sort_by(|a, b| a.freq_bins.total_cmp(&b.freq_bins));
        assert!(
            (comps[0].freq_bins - f1).abs() < 2e-3,
            "f1 {}",
            comps[0].freq_bins
        );
        assert!(
            (comps[1].freq_bins - f2).abs() < 2e-3,
            "f2 {}",
            comps[1].freq_bins
        );
        assert!((comps[0].channel - h1).abs() < 5e-3);
        assert!((comps[1].channel - h2).abs() < 5e-3);
    }

    #[test]
    fn close_components_one_bin_apart() {
        // Closely spaced users are the hard case for leakage: 1.4 bins.
        // The ISI-aware peak rejection is conservative at this distance, so
        // the second user surfaces through phased SIC rather than in the
        // first peak-detection pass.
        let e = est();
        let (f1, f2) = (80.2, 81.6);
        let mut w = chirp_with_offset(f1, C64::ONE);
        add(&mut w, &chirp_with_offset(f2, c64(0.0, -0.9)));
        let r = crate::sic::phased_sic(&e, &w, &crate::sic::SicConfig::default());
        let mut comps = r.components.clone();
        assert!(comps.len() >= 2, "found {} comps", comps.len());
        comps.sort_by(|a, b| b.channel.abs().total_cmp(&a.channel.abs()));
        let near = |f: f64| {
            comps
                .iter()
                .map(|c| (c.freq_bins - f).abs())
                .fold(f64::INFINITY, f64::min)
        };
        assert!(near(f1) < 0.1, "f1 err {}", near(f1));
        assert!(near(f2) < 0.1, "f2 err {}", near(f2));
    }

    #[test]
    fn refinement_beats_coarse() {
        let e = est();
        let truth = 30.449; // deliberately between 1/10-bin grid points
        let w = chirp_with_offset(truth, C64::ONE);
        let coarse = e.coarse(&w);
        let refined = e.refine(&w, &[coarse[0].pos]);
        let coarse_err = (coarse[0].pos - truth).abs();
        let fine_err = (refined[0].freq_bins - truth).abs();
        assert!(
            fine_err < coarse_err,
            "fine {fine_err} vs coarse {coarse_err}"
        );
        assert!(fine_err < 1e-3);
    }

    #[test]
    fn residual_minimum_at_truth() {
        // Scan the residual along one coordinate: minimum within tolerance
        // of the true offset (the local-convexity picture of Fig. 4).
        let e = est();
        let truth = 42.37;
        let w = chirp_with_offset(truth, C64::ONE);
        let de = e.dechirp(&w);
        let mut best = (0.0, f64::INFINITY);
        let mut prev = f64::INFINITY;
        let mut decreasing = true;
        for k in 0..100 {
            let f = truth - 0.5 + k as f64 * 0.01;
            let (_, r) = e.fit(&de, &[f]);
            if r < best.1 {
                best = (f, r);
            }
            // Check convexity shape: residual decreases then increases.
            if f < truth && r > prev + 1e-9 {
                decreasing = false;
            }
            prev = r;
        }
        assert!((best.0 - truth).abs() < 0.02, "min at {}", best.0);
        assert!(decreasing, "residual not monotone while approaching truth");
    }

    #[test]
    fn reconstruct_then_subtract_cancels() {
        let e = est();
        let w = chirp_with_offset(25.68, c64(0.7, -0.4));
        let comps = e.estimate(&w);
        let recon = e.reconstruct(&comps);
        let resid: f64 = w.iter().zip(&recon).map(|(a, b)| (a - b).norm_sqr()).sum();
        let orig: f64 = w.iter().map(|z| z.norm_sqr()).sum();
        assert!(resid / orig < 1e-4, "relative residual {}", resid / orig);
    }

    #[test]
    fn near_far_20db_both_recovered_after_refine() {
        let e = est();
        let (f1, f2) = (20.33, 97.71);
        let mut w = chirp_with_offset(f1, C64::ONE);
        add(&mut w, &chirp_with_offset(f2, c64(0.1, 0.0))); // −20 dB
        let mut comps = e.estimate(&w);
        assert!(comps.len() >= 2);
        comps.sort_by(|a, b| b.channel.abs().total_cmp(&a.channel.abs()));
        assert!((comps[0].freq_bins - f1).abs() < 1e-2);
        assert!(
            (comps[1].freq_bins - f2).abs() < 5e-2,
            "weak at {}",
            comps[1].freq_bins
        );
    }

    /// Stable bit pattern of a component list, for exact comparisons.
    fn comp_bits(comps: &[ComponentEstimate]) -> Vec<u64> {
        let mut out = Vec::new();
        for c in comps {
            out.push(c.freq_bins.to_bits());
            out.push(c.channel.re.to_bits());
            out.push(c.channel.im.to_bits());
            match &c.step {
                Some(st) => {
                    out.push(st.coeff.re.to_bits());
                    out.push(st.coeff.im.to_bits());
                    out.push(st.boundary as u64);
                }
                None => out.push(u64::MAX),
            }
        }
        out
    }

    #[test]
    fn refine_bits_invariant_across_block_widths() {
        // The block width only chunks the prefilter grid into kernel
        // calls; the refined components must be bit-identical at every
        // width (the CI gate re-checks this end-to-end on full frames).
        let (f1, f2) = (10.17, 60.57);
        let mut w = chirp_with_offset(f1, c64(0.9, 0.3));
        add(&mut w, &chirp_with_offset(f2, c64(-0.2, 0.8)));
        let coarse: Vec<f64> = est().coarse(&w).iter().map(|p| p.pos).collect();
        assert!(coarse.len() >= 2);
        let reference: Vec<u64> = {
            let cfg = EstimatorConfig {
                block_width: 1,
                ..EstimatorConfig::default()
            };
            let e = OffsetEstimator::new(N, cfg);
            comp_bits(&e.refine_with_steps(&w, &coarse))
        };
        for bw in [2usize, 4, 8] {
            let cfg = EstimatorConfig {
                block_width: bw,
                ..EstimatorConfig::default()
            };
            let e = OffsetEstimator::new(N, cfg);
            let got = comp_bits(&e.refine_with_steps(&w, &coarse));
            assert_eq!(got, reference, "width {bw} diverged from width 1");
        }
    }

    #[test]
    fn candidate_block_score_matches_width_one() {
        let truth = 33.31;
        let w = chirp_with_offset(truth, c64(0.8, -0.1));
        let de = est().dechirp(&w);
        let freqs = [33.05, 33.21, 33.37, 33.53, 33.69];
        let mut wide = CandidateBlock::new(N, 5);
        wide.fill(&freqs);
        let wide_scores = wide.score(&de).to_vec();
        for (j, &f) in freqs.iter().enumerate() {
            let mut one = CandidateBlock::new(N, 1);
            one.fill(std::slice::from_ref(&f));
            assert_eq!(
                one.score(&de)[0].to_bits(),
                wide_scores[j].to_bits(),
                "candidate {j}"
            );
        }
        // And the best surrogate score sits at the grid point nearest
        // the true tone.
        let best = wide_scores
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert_eq!(best, 2, "scores {wide_scores:?}");
    }

    #[test]
    fn empty_window_no_components() {
        let e = est();
        assert!(e.estimate(&vec![C64::ZERO; N]).is_empty());
    }

    #[test]
    #[should_panic(expected = "wrong window length")]
    fn wrong_window_length_panics() {
        est().dechirp(&[C64::ZERO; 64]);
    }
}
