//! Lightweight per-stage wall-clock accounting for the decode pipeline.
//!
//! The `batch_decode` bench reports where slot-decode time goes
//! (dechirp / refine / demod / SIC / cluster). Accounting is *exclusive*:
//! a refine scope nested inside a SIC scope bills its time to refine
//! only, so the stage totals sum to (at most) the instrumented wall
//! clock and "other" falls out as the remainder.
//!
//! Costs are deliberately negligible: scopes sit at coarse call sites
//! (per window / per symbol, never per candidate offset), each scope is
//! two `Instant` reads plus one relaxed atomic add, and nothing is
//! recorded unless a scope runs. Totals are process-wide atomics so
//! worker-pool threads need no merging step.

use choir_sync::atomic::{AtomicU64, Ordering};
use std::cell::RefCell;
use std::time::Instant;

/// A pipeline stage of the per-slot latency breakdown.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Stage {
    /// Dechirping and padded-spectrum synthesis (coarse peak discovery).
    Dechirp,
    /// Fractional-offset refinement: the Algorithm-1 residual search,
    /// boundary-split fitting and timing/CFO disambiguation.
    Refine,
    /// Per-user aligned comb demodulation.
    Demod,
    /// Successive interference cancellation: reconstruction, subtraction
    /// and packet-level re-acquisition passes.
    Sic,
    /// Track merging and constrained user assignment.
    Cluster,
    /// Streaming-station ingest: ring append, capture cutting, queue
    /// bookkeeping (everything on the producer side except detection).
    Ingest,
    /// Streaming-station online preamble/slot detection (incremental
    /// window scans and occupancy gating).
    Detect,
}

/// Number of distinct stages (length of [`STAGE_NAMES`]).
pub const NUM_STAGES: usize = 7;

/// Stable lowercase names, index-aligned with [`Stage`] discriminants.
pub const STAGE_NAMES: [&str; NUM_STAGES] = [
    "dechirp", "refine", "demod", "sic", "cluster", "ingest", "detect",
];

static TOTALS: [AtomicU64; NUM_STAGES] = [
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
];

thread_local! {
    /// Stack of (stage, nanos-spent-in-child-scopes) for exclusive billing.
    static SCOPES: RefCell<Vec<(usize, u64)>> = const { RefCell::new(Vec::new()) };
}

/// Runs `f`, billing its *exclusive* wall-clock time to `stage`.
///
/// When `Full` tracing is on (`choir-trace`), the scope also lands as a
/// `span_enter`/`span_exit` event pair in the flight recorder, so a
/// drained log shows which stage produced each interleaved event; the
/// exit span carries the same exclusive nanoseconds billed here.
pub fn scope<R>(stage: Stage, f: impl FnOnce() -> R) -> R {
    choir_trace::span_enter(STAGE_NAMES[stage as usize]);
    let start = Instant::now();
    SCOPES.with(|s| s.borrow_mut().push((stage as usize, 0)));
    let out = f();
    let elapsed = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
    let child = SCOPES.with(|s| s.borrow_mut().pop()).map_or(0, |(_, c)| c);
    let exclusive = elapsed.saturating_sub(child);
    bill(stage, exclusive);
    SCOPES.with(|s| {
        if let Some(top) = s.borrow_mut().last_mut() {
            top.1 = top.1.saturating_add(elapsed);
        }
    });
    choir_trace::span_exit(STAGE_NAMES[stage as usize], exclusive);
    out
}

/// Adds `ns` nanoseconds to `stage`'s process-wide total.
///
/// This is the one write path into the totals — [`scope`] computes an
/// exclusive elapsed time and bills it here. Concurrent bills from
/// worker-pool threads accumulate without loss, and a concurrent
/// [`snapshot_and_reset`] attributes each billed amount to exactly one
/// snapshot (the `fetch_add`/`swap` pair can split a set of bills across
/// two snapshots, but never drops or double-counts one) — invariants
/// model-checked in `tests/model.rs`.
pub fn bill(stage: Stage, ns: u64) {
    TOTALS[stage as usize].fetch_add(ns, Ordering::Relaxed); // ordering: totals are commutative sums read via swap; no other memory is published through them
}

/// Returns the accumulated per-stage seconds and resets the counters.
/// Indexed like [`STAGE_NAMES`].
pub fn snapshot_and_reset() -> [f64; NUM_STAGES] {
    let mut out = [0.0; NUM_STAGES];
    for (i, total) in TOTALS.iter().enumerate() {
        out[i] = total.swap(0, Ordering::Relaxed) as f64 * 1e-9; // ordering: swap atomically hands the accumulated sum to exactly one snapshot; stage slots are independent counters
    }
    out
}

/// Raw-nanosecond variant of [`snapshot_and_reset`], for callers that
/// need exact conservation accounting (tests, the model-checked suites)
/// rather than report-friendly seconds.
pub fn snapshot_and_reset_ns() -> [u64; NUM_STAGES] {
    let mut out = [0; NUM_STAGES];
    for (i, total) in TOTALS.iter().enumerate() {
        out[i] = total.swap(0, Ordering::Relaxed); // ordering: same swap-handoff as snapshot_and_reset
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_scopes_bill_exclusively() {
        let _ = snapshot_and_reset();
        scope(Stage::Sic, || {
            busy(5);
            scope(Stage::Refine, || busy(5));
        });
        let snap = snapshot_and_reset();
        let sic = snap[Stage::Sic as usize];
        let refine = snap[Stage::Refine as usize];
        assert!(sic > 0.0 && refine > 0.0);
        // The inner scope's time must not be double-billed to SIC: both
        // halves burn ~the same CPU, so exclusive SIC time stays well
        // under 3× refine even with scheduler noise.
        assert!(
            sic < 3.0 * refine,
            "sic {sic} should exclude nested refine {refine}"
        );
    }

    #[test]
    fn snapshot_resets_counters() {
        let _ = snapshot_and_reset();
        scope(Stage::Cluster, || busy(1));
        let first = snapshot_and_reset();
        assert!(first[Stage::Cluster as usize] > 0.0);
        let second = snapshot_and_reset();
        // A reset counter reads back exactly +0.0 (0 nanoseconds).
        assert_eq!(second[Stage::Cluster as usize].to_bits(), 0.0f64.to_bits());
    }

    fn busy(ms: u64) {
        let t = Instant::now();
        let mut x = 0u64;
        while t.elapsed().as_millis() < u128::from(ms) {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            std::hint::black_box(x);
        }
    }
}
