//! Decoding beyond communication range — Sec. 7.
//!
//! Teams of co-located sensors answer the base station's beacon in the
//! same slot with (near-)identical packets. Each member is individually
//! below the decoding threshold, but:
//!
//! * **Detection** (Sec. 7.2 "Detecting Packets"): the dechirped power
//!   spectra of consecutive preamble windows are accumulated coherently
//!   over a sliding window of `preamble_len` symbols. Per-user peaks that
//!   are buried in any single symbol rise `√P` above the noise after `P`
//!   accumulations, revealing both the packet and coarse per-user offsets.
//! * **Decoding** (Eqn. 6): every member transmits the *same* symbol, so
//!   each data value hypothesis `d` predicts one tone per user at
//!   `d + μ_u`. The decoder scores `d` by summing (non-coherently) the
//!   correlation power at every member's predicted position — an
//!   `M`-member team contributes `M×` the energy per hypothesis, which is
//!   exactly the range-extension mechanism the paper measures in Fig. 9.
//!
//! Deviation noted in DESIGN.md: Eqn. 6's reconstruction is phase-coherent
//! across users; below the noise floor per-symbol phase tracking is not
//! reliably available, so we use the non-coherent power-combining form
//! (the standard robust variant; the `M`-fold energy gain is preserved).

use choir_dsp::complex::C64;
use choir_dsp::fft::FftPlan;
use choir_dsp::peaks::noise_floor;
use lora_phy::frame::{decode_frame, DecodedFrame};
use lora_phy::params::PhyParams;

use crate::estimator::OffsetEstimator;

/// Configuration for team detection and decoding.
#[derive(Clone, Copy, Debug)]
pub struct TeamConfig {
    /// Zero-padding factor for the accumulated spectra.
    pub pad: usize,
    /// Detection threshold: accumulated peak power over median power.
    pub detect_threshold: f64,
    /// Peak threshold for counting team members in the accumulated
    /// spectrum, relative to the accumulated median.
    pub member_threshold: f64,
    /// Maximum number of member offsets to extract.
    pub max_members: usize,
    /// Sliding-search step in samples (fraction of a symbol keeps the
    /// accumulation near-coherent).
    pub search_step: usize,
}

impl Default for TeamConfig {
    fn default() -> Self {
        TeamConfig {
            pad: 4,
            detect_threshold: 4.0,
            member_threshold: 3.0,
            max_members: 40,
            search_step: 64,
        }
    }
}

/// A detected team transmission.
#[derive(Clone, Debug)]
pub struct TeamDetection {
    /// Estimated slot start (sample index), accurate to `search_step`.
    pub start: usize,
    /// Per-member aggregate offsets in bins (one entry per discernible
    /// member; members with overlapping offsets merge into one entry).
    pub offsets: Vec<f64>,
    /// Detection metric (peak/median of the accumulated spectrum).
    pub metric: f64,
}

/// Team detector/decoder for one PHY configuration.
#[derive(Clone, Debug)]
pub struct TeamDecoder {
    params: PhyParams,
    cfg: TeamConfig,
    est: OffsetEstimator,
    fft: FftPlan,
}

impl TeamDecoder {
    /// Builds a team decoder.
    pub fn new(params: PhyParams, cfg: TeamConfig) -> Self {
        let n = params.samples_per_symbol();
        let est = OffsetEstimator::new(n, crate::estimator::EstimatorConfig::default());
        TeamDecoder {
            params,
            cfg,
            est,
            fft: FftPlan::new(n * cfg.pad),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &TeamConfig {
        &self.cfg
    }

    /// Accumulated dechirped power spectrum over `count` consecutive
    /// symbol windows starting at `start`.
    fn accumulate(&self, samples: &[C64], start: usize, count: usize) -> Option<Vec<f64>> {
        let n = self.params.samples_per_symbol();
        let np = n * self.cfg.pad;
        let mut acc = vec![0.0f64; np];
        let complete = choir_dsp::workspace::with(|ws| {
            let mut spec = ws.take(np);
            let mut complete = true;
            for j in 0..count {
                let lo = start + j * n;
                let hi = lo + n;
                if hi > samples.len() {
                    complete = false;
                    break;
                }
                let de = self.est.dechirp(&samples[lo..hi]);
                self.fft.forward_padded_into(&de, &mut spec, ws);
                for (a, z) in acc.iter_mut().zip(spec.iter()) {
                    *a += z.norm_sqr();
                }
            }
            ws.put(spec);
            complete
        });
        complete.then_some(acc)
    }

    /// Peak/median metric of an accumulated power spectrum.
    fn metric(acc: &[f64]) -> f64 {
        let med = noise_floor(acc);
        if med <= 0.0 {
            return 0.0;
        }
        acc.iter().cloned().fold(f64::MIN, f64::max) / med
    }

    /// Extracts member offsets (bins) from an accumulated spectrum:
    /// local maxima above `member_threshold ×` median, at least one bin
    /// apart.
    fn member_offsets(&self, acc: &[f64]) -> Vec<f64> {
        let n = self.params.samples_per_symbol();
        let pad = self.cfg.pad;
        let med = noise_floor(acc);
        let max_pow = acc.iter().cloned().fold(0.0f64, f64::max);
        // Two guards: a noise-relative threshold for the deep-SNR regime,
        // and a strongest-peak-relative floor that rejects both the
        // Dirichlet side-lobe forest and the boundary-phase-step (ISI)
        // skirt of strong members (side lobes ≤ ~4.7 % of the main lobe in
        // power; the ISI skirt reaches ~18 %). Genuine co-located team
        // members sit within a few dB of each other and survive the cut.
        let thresh = (med * self.cfg.member_threshold).max(max_pow * 0.2);
        let np = acc.len();
        let mut cands: Vec<(f64, f64)> = Vec::new(); // (power, pos_bins)
        for i in 0..np {
            let prev = acc[(i + np - 1) % np];
            let next = acc[(i + 1) % np];
            if acc[i] > thresh && acc[i] >= prev && acc[i] > next {
                cands.push((acc[i], i as f64 / pad as f64));
            }
        }
        cands.sort_by(|a, b| b.0.total_cmp(&a.0));
        let mut offsets: Vec<f64> = Vec::new();
        for (_, pos) in cands {
            if offsets.len() >= self.cfg.max_members {
                break;
            }
            let clash = offsets.iter().any(|&o| {
                let mut d = (o - pos).rem_euclid(n as f64);
                if d > n as f64 / 2.0 {
                    d = n as f64 - d;
                }
                d < 1.0
            });
            if !clash {
                offsets.push(pos);
            }
        }
        offsets
    }

    /// Scans `[search_from, search_to)` for a team preamble; returns the
    /// best detection above threshold.
    pub fn detect(
        &self,
        samples: &[C64],
        search_from: usize,
        search_to: usize,
    ) -> Option<TeamDetection> {
        let p = self.params.preamble_len;
        let mut best: Option<(usize, f64)> = None;
        let mut t = search_from;
        while t < search_to {
            if let Some(acc) = self.accumulate(samples, t, p) {
                let m = Self::metric(&acc);
                if best.map(|(_, bm)| m > bm).unwrap_or(true) {
                    best = Some((t, m));
                }
            }
            t += self.cfg.search_step.max(1);
        }
        let (start, metric) = best?;
        if metric < self.cfg.detect_threshold {
            return None;
        }
        let acc = self.accumulate(samples, start, p)?;
        let offsets = self.member_offsets(&acc);
        if offsets.is_empty() {
            return None;
        }
        Some(TeamDetection {
            start,
            offsets,
            metric,
        })
    }

    /// Decodes the common symbol stream of a detected team (Eqn. 6,
    /// non-coherent power combining across members). `num_data_symbols`
    /// excludes preamble and sync.
    pub fn decode_symbols(
        &self,
        samples: &[C64],
        detection: &TeamDetection,
        num_data_symbols: usize,
    ) -> Vec<u16> {
        let n = self.params.samples_per_symbol();
        let pad = self.cfg.pad;
        let p = self.params.preamble_len;
        let data_start = detection.start + (p + 2) * n;
        let mut out = Vec::with_capacity(num_data_symbols);
        choir_dsp::workspace::with(|ws| {
            let mut spec = ws.take(n * pad);
            for k in 0..num_data_symbols {
                let lo = data_start + k * n;
                let hi = lo + n;
                if hi > samples.len() {
                    break;
                }
                let de = self.est.dechirp(&samples[lo..hi]);
                self.fft.forward_padded_into(&de, &mut spec, ws);
                let np = spec.len();
                let mut best = (0u16, -1.0f64);
                for d in 0..n {
                    let mut score = 0.0;
                    for &mu in &detection.offsets {
                        let pos = (d as f64 + mu).rem_euclid(n as f64);
                        let idx = ((pos * pad as f64).round() as usize) % np;
                        score += spec[idx].norm_sqr();
                    }
                    if score > best.1 {
                        // lint:allow(lossy_cast) — d ranges over 0..2^SF ≤ 4096, fits u16
                        best = (d as u16, score);
                    }
                }
                out.push(best.0);
            }
            ws.put(spec);
        });
        out
    }

    /// Detects and decodes in one call, running the recovered symbols
    /// through the frame chain. Returns the detection and the frame (the
    /// frame may fail CRC at extreme ranges — Fig. 10's resolution loss).
    pub fn decode(
        &self,
        samples: &[C64],
        search_from: usize,
        search_to: usize,
        payload_len: usize,
    ) -> Option<(TeamDetection, Option<DecodedFrame>)> {
        let det = self.detect(samples, search_from, search_to)?;
        let nsyms = lora_phy::frame::frame_symbol_count(&self.params, payload_len);
        let syms = self.decode_symbols(samples, &det, nsyms);
        let frame = decode_frame(&self.params, &syms).ok();
        Some((det, frame))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use choir_channel::impairments::OscillatorModel;
    use choir_channel::scenario::ScenarioBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn params() -> PhyParams {
        PhyParams::default() // SF8
    }

    fn team_scenario(
        m: usize,
        snr_db: f64,
        seed: u64,
    ) -> choir_channel::scenario::CollisionScenario {
        let snrs = vec![snr_db; m];
        ScenarioBuilder::new(params())
            .snrs_db(&snrs)
            .shared_payload(vec![0xA5, 0x5A, 0x3C, 0x7E, 0x11, 0x22])
            .oscillator(OscillatorModel::default())
            .seed(seed)
            .build()
    }

    #[test]
    fn team_detected_below_single_user_threshold() {
        // −17 dB per member: the standard detector's per-window metric is
        // marginal, but 10 members accumulated over the preamble stand out.
        let s = team_scenario(10, -17.0, 1);
        let dec = TeamDecoder::new(s.params, TeamConfig::default());
        let det = dec
            .detect(&s.samples, 0, s.slot_start + 512)
            .expect("team not detected");
        assert!(det.metric > 4.0);
        assert!(!det.offsets.is_empty());
        // Start found within one symbol of the true slot.
        assert!(
            (det.start as i64 - s.slot_start as i64).unsigned_abs() as usize <= 256,
            "start {} vs {}",
            det.start,
            s.slot_start
        );
    }

    #[test]
    fn pure_noise_not_detected() {
        let mut rng = StdRng::seed_from_u64(2);
        let noise = choir_channel::noise::awgn(&mut rng, 256 * 60, 1.0);
        let dec = TeamDecoder::new(params(), TeamConfig::default());
        assert!(dec.detect(&noise, 0, 256 * 20).is_none());
    }

    #[test]
    fn detection_metric_grows_with_team_size() {
        let metric_for = |m: usize| {
            let s = team_scenario(m, -17.0, 7);
            let dec = TeamDecoder::new(s.params, TeamConfig::default());
            dec.detect(&s.samples, s.slot_start, s.slot_start + 1)
                .map(|d| d.metric)
                .unwrap_or(0.0)
        };
        let m5 = metric_for(5);
        let m20 = metric_for(20);
        assert!(m20 > m5, "m5={m5} m20={m20}");
    }

    #[test]
    fn team_decodes_common_payload_below_noise() {
        // 15 members at −15 dB each: individually hopeless for data, but
        // the combined score recovers the shared packet.
        let s = team_scenario(15, -15.0, 3);
        let dec = TeamDecoder::new(s.params, TeamConfig::default());
        let (det, frame) = dec
            .decode(&s.samples, s.slot_start, s.slot_start + 1, 6)
            .expect("not detected");
        assert!(
            det.offsets.len() >= 3,
            "members seen: {}",
            det.offsets.len()
        );
        let frame = frame.expect("frame undecodable");
        assert_eq!(frame.payload, vec![0xA5, 0x5A, 0x3C, 0x7E, 0x11, 0x22]);
        assert!(frame.crc_ok);
    }

    #[test]
    fn symbol_accuracy_improves_with_members() {
        // Symbol error rate against the true stream must drop as the team
        // grows — the Fig. 9(a) mechanism.
        let ser_for = |m: usize, seed: u64| -> f64 {
            let s = team_scenario(m, -19.0, seed);
            let dec = TeamDecoder::new(s.params, TeamConfig::default());
            let det = TeamDetection {
                start: s.slot_start,
                offsets: s
                    .users
                    .iter()
                    .map(|u| {
                        u.profile
                            .aggregate_shift_bins(s.params.bin_hz(), 256)
                            .rem_euclid(256.0)
                    })
                    .collect(),
                metric: 100.0,
            };
            let truth = s.users[0].data_symbols(&s.params).to_vec();
            let got = dec.decode_symbols(&s.samples, &det, truth.len());
            let errs = truth.iter().zip(&got).filter(|(a, b)| a != b).count();
            errs as f64 / got.len().max(1) as f64
        };
        let ser2: f64 = (0..3).map(|s| ser_for(2, 20 + s)).sum::<f64>() / 3.0;
        let ser16: f64 = (0..3).map(|s| ser_for(16, 20 + s)).sum::<f64>() / 3.0;
        assert!(
            ser16 < ser2,
            "SER did not improve: 2 members {ser2:.3}, 16 members {ser16:.3}"
        );
    }

    #[test]
    fn decode_symbols_respects_capture_length() {
        let s = team_scenario(5, -10.0, 4);
        let dec = TeamDecoder::new(s.params, TeamConfig::default());
        let det = TeamDetection {
            start: s.slot_start,
            offsets: vec![10.0],
            metric: 100.0,
        };
        // Ask for far more symbols than the capture holds: must truncate,
        // not panic.
        let syms = dec.decode_symbols(&s.samples, &det, 10_000);
        assert!(syms.len() < 10_000);
    }
}
