//! Mapping spectral components to users — Sec. 6.2.
//!
//! Within a packet, each user is identified by features that stay constant
//! while data changes: the *fractional* part of its peak position (hardware
//! offsets are not integer multiples of a bin), its channel magnitude, and
//! its (drift-corrected) channel phase. This module provides:
//!
//! * circular feature arithmetic;
//! * [`merge_tracks`] — agglomerates per-window component estimates into
//!   per-user tracks (used on the preamble, where positions are static);
//! * [`assign_components`] — constrained assignment of data-window
//!   components to known users: observations in one window compete, and a
//!   user may legitimately own up to two peaks per window (the
//!   inter-symbol pair of Sec. 6.1), both sharing its fractional offset.

use crate::estimator::ComponentEstimate;

/// Circular distance between `a` and `b` modulo `m` (result in `[0, m/2]`).
pub fn circular_dist(a: f64, b: f64, m: f64) -> f64 {
    let d = (a - b).rem_euclid(m);
    d.min(m - d)
}

/// Circular mean of values modulo `m` (vector averaging).
pub fn circular_mean(values: &[f64], m: f64) -> f64 {
    assert!(!values.is_empty(), "circular_mean: empty input");
    let (mut s, mut c) = (0.0, 0.0);
    for &v in values {
        let th = v / m * std::f64::consts::TAU;
        s += th.sin();
        c += th.cos();
    }
    (s.atan2(c) / std::f64::consts::TAU * m).rem_euclid(m)
}

/// A user track accumulated over several windows.
#[derive(Clone, Debug)]
pub struct Track {
    /// Circular-mean peak position in bins.
    pub pos_bins: f64,
    /// Mean channel magnitude.
    pub mag: f64,
    /// Per-window observations: `(window index, component)`.
    pub members: Vec<(usize, ComponentEstimate)>,
}

impl Track {
    /// Number of windows this track was seen in.
    pub fn support(&self) -> usize {
        self.members.len()
    }

    /// Phase advance per window (radians), estimated as the circular mean
    /// of consecutive phase differences. For the preamble this equals
    /// `2π · CFO/bin` (mod 2π) — the feature that lets Choir separate true
    /// frequency offset from timing offset (Sec. 6).
    pub fn phase_slope(&self) -> Option<f64> {
        if self.members.len() < 2 {
            return None;
        }
        let mut diffs = Vec::new();
        for pair in self.members.windows(2) {
            let (w0, c0) = &pair[0];
            let (w1, c1) = &pair[1];
            if w1 - w0 == 1 {
                let d = (c1.channel.arg() - c0.channel.arg()).rem_euclid(std::f64::consts::TAU);
                diffs.push(d);
            }
        }
        if diffs.is_empty() {
            None
        } else {
            Some(circular_mean(&diffs, std::f64::consts::TAU))
        }
    }
}

/// Agglomerates components observed across consecutive windows into
/// tracks: a component joins the nearest existing track within
/// `tol_bins` (circular over the `n`-bin alphabet), else founds a new one.
/// Tracks seen in fewer than `min_support` windows are discarded.
pub fn merge_tracks(
    windows: &[Vec<ComponentEstimate>],
    n: usize,
    tol_bins: f64,
    min_support: usize,
) -> Vec<Track> {
    let m = n as f64;
    let mut tracks: Vec<Track> = Vec::new();
    for (w, comps) in windows.iter().enumerate() {
        // Within one window, components are distinct users (cannot-link):
        // each may extend a different track, greedily by distance.
        let mut taken: Vec<bool> = vec![false; tracks.len()];
        let mut pairs: Vec<(f64, usize, usize)> = Vec::new(); // (dist, comp, track)
        for (ci, c) in comps.iter().enumerate() {
            for (ti, t) in tracks.iter().enumerate() {
                let d = circular_dist(c.freq_bins, t.pos_bins, m);
                if d <= tol_bins {
                    pairs.push((d, ci, ti));
                }
            }
        }
        pairs.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut comp_used = vec![false; comps.len()];
        for (_, ci, ti) in pairs {
            if comp_used[ci] || taken[ti] {
                continue;
            }
            comp_used[ci] = true;
            taken[ti] = true;
            let t = &mut tracks[ti];
            t.members.push((w, comps[ci]));
            let positions: Vec<f64> = t.members.iter().map(|(_, c)| c.freq_bins).collect();
            t.pos_bins = circular_mean(&positions, m);
            t.mag = t.members.iter().map(|(_, c)| c.channel.abs()).sum::<f64>()
                / t.members.len() as f64;
        }
        for (ci, c) in comps.iter().enumerate() {
            if !comp_used[ci] {
                tracks.push(Track {
                    pos_bins: c.freq_bins,
                    mag: c.channel.abs(),
                    members: vec![(w, *c)],
                });
            }
        }
    }
    tracks.retain(|t| t.support() >= min_support);
    // Strongest first — the order SIC would surface them.
    tracks.sort_by(|a, b| b.mag.total_cmp(&a.mag));
    tracks
}

/// A user signature distilled from its preamble track.
#[derive(Clone, Copy, Debug)]
pub struct UserSignature {
    /// Fractional part of the aggregate offset, `[0, 1)`.
    pub frac: f64,
    /// Expected channel magnitude.
    pub mag: f64,
}

/// Assignment weights for [`assign_components`].
#[derive(Clone, Copy, Debug)]
pub struct AssignConfig {
    /// Maximum fractional-offset distance (circular in `[0,1)`) for a
    /// component to be considered a user's.
    pub max_frac_dist: f64,
    /// Weight of the relative-magnitude mismatch term (fractional distance
    /// has weight 1).
    pub mag_weight: f64,
}

impl Default for AssignConfig {
    fn default() -> Self {
        AssignConfig {
            max_frac_dist: 0.18,
            mag_weight: 0.05,
        }
    }
}

/// Assigns one window's components to users by fractional offset (primary)
/// and channel magnitude (secondary). Returns, for each component, the user
/// index or `None`. A user may own several components (ISI head + tail),
/// but every component gets at most one user.
pub fn assign_components(
    users: &[UserSignature],
    comps: &[ComponentEstimate],
    cfg: &AssignConfig,
) -> Vec<Option<usize>> {
    comps
        .iter()
        .map(|c| {
            let frac = c.freq_bins.fract();
            let mag = c.channel.abs();
            users
                .iter()
                .enumerate()
                .filter_map(|(u, sig)| {
                    let fd = circular_dist(frac, sig.frac, 1.0);
                    if fd > cfg.max_frac_dist {
                        return None;
                    }
                    let md = if sig.mag > 0.0 {
                        ((mag - sig.mag) / sig.mag).abs()
                    } else {
                        0.0
                    };
                    Some((u, fd + cfg.mag_weight * md))
                })
                .min_by(|a, b| a.1.total_cmp(&b.1))
                .map(|(u, _)| u)
        })
        .collect()
}

// Tests assert on exactly-representable values (0.0, bin centres).
#[allow(clippy::float_cmp)]
#[cfg(test)]
mod tests {
    use super::*;
    use choir_dsp::complex::C64;

    fn comp(pos: f64, mag: f64) -> ComponentEstimate {
        ComponentEstimate::tone(pos, C64::from_polar(mag, 0.3))
    }

    #[test]
    fn circular_distance_wraps() {
        assert!((circular_dist(0.1, 127.9, 128.0) - 0.2).abs() < 1e-9);
        assert_eq!(circular_dist(5.0, 5.0, 128.0), 0.0);
        assert!((circular_dist(0.95, 0.05, 1.0) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn circular_mean_handles_wrap() {
        let m = circular_mean(&[0.05, 0.95], 1.0);
        assert!(!(0.02..=0.98).contains(&m), "mean {m}");
        let m2 = circular_mean(&[10.0, 12.0], 128.0);
        assert!((m2 - 11.0).abs() < 1e-9);
    }

    #[test]
    fn merge_two_stable_users() {
        // Two users at stable positions over 6 windows.
        let windows: Vec<Vec<ComponentEstimate>> = (0..6)
            .map(|_| vec![comp(40.3, 1.0), comp(90.7, 0.5)])
            .collect();
        let tracks = merge_tracks(&windows, 128, 0.3, 4);
        assert_eq!(tracks.len(), 2);
        assert!((tracks[0].pos_bins - 40.3).abs() < 1e-6);
        assert_eq!(tracks[0].support(), 6);
        assert!((tracks[1].pos_bins - 90.7).abs() < 1e-6);
    }

    #[test]
    fn spurious_single_window_component_dropped() {
        let mut windows: Vec<Vec<ComponentEstimate>> =
            (0..6).map(|_| vec![comp(40.3, 1.0)]).collect();
        windows[2].push(comp(77.7, 0.9)); // one-off glitch
        let tracks = merge_tracks(&windows, 128, 0.3, 3);
        assert_eq!(tracks.len(), 1);
    }

    #[test]
    fn close_users_not_merged_within_window() {
        // Two users 0.5 bins apart: cannot-link within a window keeps them
        // as two tracks even though each is within tol of the other.
        let windows: Vec<Vec<ComponentEstimate>> = (0..5)
            .map(|_| vec![comp(60.2, 1.0), comp(60.7, 0.9)])
            .collect();
        let tracks = merge_tracks(&windows, 128, 0.6, 4);
        assert_eq!(tracks.len(), 2, "tracks: {tracks:?}");
    }

    #[test]
    fn track_positions_wrap_around_alphabet() {
        let windows: Vec<Vec<ComponentEstimate>> = (0..4)
            .map(|i| vec![comp(if i % 2 == 0 { 127.95 } else { 0.05 }, 1.0)])
            .collect();
        let tracks = merge_tracks(&windows, 128, 0.3, 4);
        assert_eq!(tracks.len(), 1);
        let p = tracks[0].pos_bins;
        assert!(!(0.1..=127.9).contains(&p), "pos {p}");
    }

    #[test]
    fn phase_slope_measured() {
        // Phases advancing by 0.5 rad per window.
        let windows: Vec<Vec<ComponentEstimate>> = (0..6)
            .map(|w| {
                vec![ComponentEstimate::tone(
                    30.4,
                    C64::from_polar(1.0, 0.5 * w as f64),
                )]
            })
            .collect();
        let tracks = merge_tracks(&windows, 128, 0.3, 4);
        let slope = tracks[0].phase_slope().unwrap();
        assert!((slope - 0.5).abs() < 1e-9, "slope {slope}");
    }

    #[test]
    fn phase_slope_none_for_single_member() {
        let t = Track {
            pos_bins: 1.0,
            mag: 1.0,
            members: vec![(0, comp(1.0, 1.0))],
        };
        assert!(t.phase_slope().is_none());
    }

    #[test]
    fn assignment_by_fractional_part() {
        let users = [
            UserSignature {
                frac: 0.30,
                mag: 1.0,
            },
            UserSignature {
                frac: 0.71,
                mag: 0.5,
            },
        ];
        // Data moved the integer parts; fractional parts identify owners.
        let comps = [comp(17.31, 1.02), comp(95.70, 0.48)];
        let got = assign_components(&users, &comps, &AssignConfig::default());
        assert_eq!(got, vec![Some(0), Some(1)]);
    }

    #[test]
    fn unmatched_component_gets_none() {
        let users = [UserSignature {
            frac: 0.2,
            mag: 1.0,
        }];
        let comps = [comp(50.55, 1.0)]; // frac 0.55: too far from 0.2
        let got = assign_components(&users, &comps, &AssignConfig::default());
        assert_eq!(got, vec![None]);
    }

    #[test]
    fn magnitude_breaks_fractional_ties() {
        // Both users share (nearly) the same fractional offset; magnitude
        // decides.
        let users = [
            UserSignature {
                frac: 0.50,
                mag: 2.0,
            },
            UserSignature {
                frac: 0.52,
                mag: 0.2,
            },
        ];
        let comps = [comp(80.51, 0.21)];
        let cfg = AssignConfig {
            mag_weight: 1.0,
            ..AssignConfig::default()
        };
        let got = assign_components(&users, &comps, &cfg);
        assert_eq!(got, vec![Some(1)]);
    }

    #[test]
    fn user_may_own_two_isi_peaks() {
        let users = [UserSignature {
            frac: 0.4,
            mag: 1.0,
        }];
        let comps = [comp(20.4, 0.8), comp(93.4, 0.25)]; // head + tail
        let got = assign_components(&users, &comps, &AssignConfig::default());
        assert_eq!(got, vec![Some(0), Some(0)]);
    }
}
