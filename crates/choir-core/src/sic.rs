//! Phased successive interference cancellation — Sec. 5.2.
//!
//! Plain SIC (strongest-first, one at a time) leaves leakage between
//! similar-power transmitters; pure joint fitting misses weak clients whose
//! peaks drown under strong users' side-lobes. Choir's middle path:
//!
//! 1. detect every peak currently discernible, *jointly* refine that whole
//!    cohort (which models their mutual leakage, Sec. 5.1);
//! 2. subtract the cohort's reconstruction from the window;
//! 3. repeat on the residual, where previously buried clients now surface;
//! 4. stop when no peaks clear the (residual-relative) threshold.

use choir_dsp::complex::C64;

use crate::error::DecodeError;
use crate::estimator::{ComponentEstimate, OffsetEstimator};

/// Configuration for phased cancellation.
#[derive(Clone, Copy, Debug)]
pub struct SicConfig {
    /// Maximum cancellation phases (cohorts). 3 suffices for the paper's
    /// near/medium/far power tiers.
    pub max_phases: usize,
    /// Upper bound on total components across all phases.
    pub max_components: usize,
    /// Stop once the residual power falls below this fraction of the input
    /// window power — everything left is reconstruction error, not users.
    pub min_relative_residual: f64,
}

impl Default for SicConfig {
    fn default() -> Self {
        SicConfig {
            max_phases: 3,
            max_components: 28,
            min_relative_residual: 1e-4,
        }
    }
}

/// Result of one phased-SIC pass over a symbol window.
#[derive(Clone, Debug, Default)]
pub struct SicResult {
    /// All recovered components, strongest phase first.
    pub components: Vec<ComponentEstimate>,
    /// Number of phases actually run.
    pub phases: usize,
    /// Residual power after the final subtraction, relative to the input
    /// window power (0 = perfect reconstruction).
    pub relative_residual: f64,
    /// Set when a phase stalled: substantial residual power remained but
    /// no further peaks cleared the detection threshold.
    pub stall: Option<DecodeError>,
}

/// Runs phased SIC on one symbol window.
pub fn phased_sic(est: &OffsetEstimator, window: &[C64], cfg: &SicConfig) -> SicResult {
    crate::profile::scope(crate::profile::Stage::Sic, || {
        phased_sic_inner(est, window, cfg)
    })
}

fn phased_sic_inner(est: &OffsetEstimator, window: &[C64], cfg: &SicConfig) -> SicResult {
    let input_power: f64 = window.iter().map(|z| z.norm_sqr()).sum();
    let mut work = window.to_vec();
    let mut out = SicResult::default();
    // Debug sanitizer: each phase's subtraction is a least-squares
    // projection, so residual power must not grow phase over phase.
    let mut monitor = choir_dsp::checks::ResidualMonitor::new();
    for _ in 0..cfg.max_phases {
        if out.components.len() >= cfg.max_components {
            break;
        }
        let resid_power: f64 = work.iter().map(|z| z.norm_sqr()).sum();
        monitor.observe("phased_sic", resid_power);
        if resid_power < cfg.min_relative_residual * input_power {
            break;
        }
        let cohort = est.estimate(&work);
        if cohort.is_empty() {
            if input_power > 0.0 {
                out.stall = Some(
                    DecodeError::SicStalled {
                        sic_phase: out.phases,
                        relative_residual: resid_power / input_power,
                    }
                    .traced(),
                );
            }
            break;
        }
        let take = cohort
            .into_iter()
            .take(cfg.max_components - out.components.len())
            .collect::<Vec<_>>();
        let recon = est.reconstruct(&take);
        for (w, r) in work.iter_mut().zip(&recon) {
            *w -= *r;
        }
        let cancelled_from = out.components.len();
        out.components.extend(take);
        out.phases += 1;
        // Provenance: what this pass cancelled and what power it left
        // behind. The residual sum is only computed when Full tracing is
        // on, so the hot path stays untouched.
        if choir_trace::enabled(choir_trace::TraceLevel::Full) {
            let after: f64 = work.iter().map(|z| z.norm_sqr()).sum();
            choir_trace::full(|| choir_trace::TraceEvent::SicPass {
                window: choir_trace::current_window(),
                phase: u32::try_from(out.phases - 1).unwrap_or(u32::MAX),
                relative_residual: if input_power > 0.0 {
                    after / input_power
                } else {
                    0.0
                },
                cancelled_bins: out.components[cancelled_from..]
                    .iter()
                    .map(|c| c.freq_bins)
                    .collect(),
            });
        }
    }
    // Final joint polish: greedy per-phase fitting biases earlier phases'
    // positions toward the centroid of unresolved neighbours; re-refining
    // every component against the original window removes that bias.
    if out.phases > 1 && !out.components.is_empty() && out.components.len() <= 6 {
        let freqs: Vec<f64> = out.components.iter().map(|c| c.freq_bins).collect();
        let polished = est.refine_with_steps(window, &freqs);
        // Reject a polish that collapsed two components onto each other.
        let mut sorted: Vec<f64> = polished.iter().map(|c| c.freq_bins).collect();
        sorted.sort_by(f64::total_cmp);
        let collapsed = sorted.windows(2).any(|w| (w[1] - w[0]).abs() < 0.05);
        if polished.len() == out.components.len() && !collapsed {
            let de = est.dechirp(window);
            if est.full_residual(&de, &polished) < est.full_residual(&de, &out.components) {
                out.components = polished;
            }
        }
    }
    let recon = est.reconstruct(&out.components);
    let resid: f64 = window
        .iter()
        .zip(&recon)
        .map(|(y, r)| (y - r).norm_sqr())
        .sum();
    out.relative_residual = if input_power > 0.0 {
        resid / input_power
    } else {
        0.0
    };
    out
}

// Tests assert on exactly-representable values (0.0, bin centres).
#[allow(clippy::float_cmp)]
#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::EstimatorConfig;
    use choir_dsp::complex::c64;
    use lora_phy::chirp::symbol_sample;

    const N: usize = 128;

    fn est() -> OffsetEstimator {
        OffsetEstimator::new(N, EstimatorConfig::default())
    }

    fn chirp(f: f64, h: C64) -> Vec<C64> {
        (0..N)
            .map(|t| {
                let s = symbol_sample(N, 0, t as f64);
                let rot = C64::cis(2.0 * std::f64::consts::PI * f * t as f64 / N as f64);
                h * s * rot
            })
            .collect()
    }

    fn mix(parts: &[(f64, C64)]) -> Vec<C64> {
        let mut out = vec![C64::ZERO; N];
        for &(f, h) in parts {
            for (o, v) in out.iter_mut().zip(chirp(f, h)) {
                *o += v;
            }
        }
        out
    }

    fn find_near(result: &SicResult, f: f64) -> Option<&ComponentEstimate> {
        result
            .components
            .iter()
            .find(|c| (c.freq_bins - f).abs() < 0.1)
    }

    #[test]
    fn deep_near_far_recovered_in_second_phase() {
        // 36 dB imbalance: the weak user's peak (amplitude 0.016 of strong)
        // sits below the strong user's side-lobe skirt; only after
        // subtracting the strong cohort does it surface.
        let e = est();
        let w = mix(&[(30.27, C64::ONE), (90.63, c64(0.016, 0.0))]);
        let r = phased_sic(&e, &w, &SicConfig::default());
        assert!(find_near(&r, 30.27).is_some(), "strong missing");
        assert!(
            find_near(&r, 90.63).is_some(),
            "weak missing: {:?}",
            r.components
        );
        assert!(
            r.relative_residual < 1e-3,
            "residual {}",
            r.relative_residual
        );
    }

    #[test]
    fn equal_power_cohort_handled_in_one_phase() {
        let e = est();
        let w = mix(&[
            (10.4, C64::ONE),
            (50.8, c64(0.0, 1.0)),
            (100.2, c64(-0.7, 0.7)),
        ]);
        let r = phased_sic(&e, &w, &SicConfig::default());
        assert_eq!(r.phases, 1, "equal powers need one joint phase");
        for f in [10.4, 50.8, 100.2] {
            assert!(find_near(&r, f).is_some(), "missing {f}");
        }
    }

    #[test]
    fn two_weak_tiers_surface_after_strong_cohort() {
        // Both weak users sit under the strong user's side-lobe skirt
        // (rejected by the leakage test in phase 1); after the strong
        // cohort is subtracted they surface together.
        let e = est();
        let w = mix(&[
            (20.2, C64::ONE),
            (60.6, c64(0.016, 0.0)),
            (110.4, c64(0.012, 0.0)),
        ]);
        let cfg = SicConfig {
            max_phases: 4,
            ..SicConfig::default()
        };
        let r = phased_sic(&e, &w, &cfg);
        assert!(find_near(&r, 20.2).is_some());
        assert!(find_near(&r, 60.6).is_some(), "mid tier missing");
        assert!(find_near(&r, 110.4).is_some(), "deep tier missing");
        assert!(r.phases >= 2, "expected a second phase, got {}", r.phases);
    }

    #[test]
    fn empty_window_stops_immediately() {
        let e = est();
        let r = phased_sic(&e, &vec![C64::ZERO; N], &SicConfig::default());
        assert!(r.components.is_empty());
        assert_eq!(r.phases, 0);
        assert_eq!(r.relative_residual, 0.0);
    }

    #[test]
    fn max_components_respected() {
        let e = est();
        let parts: Vec<(f64, C64)> = (0..8).map(|i| (5.3 + 15.0 * i as f64, C64::ONE)).collect();
        let w = mix(&parts);
        let cfg = SicConfig {
            max_phases: 3,
            max_components: 4,
            ..SicConfig::default()
        };
        let r = phased_sic(&e, &w, &cfg);
        assert!(r.components.len() <= 4);
    }

    #[test]
    fn channel_estimates_survive_sic() {
        let e = est();
        let h_weak = c64(0.01, 0.01);
        let w = mix(&[(40.45, c64(0.6, -0.8)), (95.15, h_weak)]);
        let r = phased_sic(&e, &w, &SicConfig::default());
        let weak = find_near(&r, 95.15).expect("weak component");
        assert!(
            (weak.channel - h_weak).abs() / h_weak.abs() < 0.1,
            "weak channel {:?}",
            weak.channel
        );
    }
}
