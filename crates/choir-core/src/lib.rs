//! # choir-core — the Choir collision decoder (SIGCOMM 2017)
//!
//! The paper's primary contribution, reimplemented end to end:
//!
//! * [`estimator`] — Algorithm 1: coarse peak detection on zero-padded
//!   dechirped spectra, least-squares channel fitting (Eqn. 2), residual
//!   minimisation over fractional frequency offsets (Eqns. 3–4), extended
//!   with an exact boundary-split ("step") term for multi-chip fractional
//!   timing offsets;
//! * [`sic`] — phased successive interference cancellation (Sec. 5.2):
//!   joint cohorts instead of one-at-a-time subtraction, with a final
//!   joint polish;
//! * [`cluster`] — tracking users across symbols by the fractional part of
//!   their peak positions, channel magnitude and phase (Sec. 6.2), with
//!   the HMRF-KMeans constrained-clustering formulation in [`hmrf`];
//! * [`decoder`] — the full base-station pipeline: preamble user
//!   discovery, timing/CFO disambiguation via phase slopes and step
//!   boundaries (Sec. 6), per-user realigned demodulation with
//!   segment-robust scoring, packet-level SIC, and LoRa frame decoding;
//! * [`lowsnr`] — beyond-range team detection and joint decoding
//!   (Sec. 7 / Eqn. 6);
//! * [`multisf`] — parallel decoding lanes across spreading factors
//!   (Sec. 5.2, point 4: chirps of different SFs are near-orthogonal);
//! * [`unb`] — offset-based separation for ultra-narrowband PHYs
//!   (Sec. 5.2, point 2: SigFox/NB-IoT-class collisions separate by
//!   filtering alone).
//!
//! ```no_run
//! use choir_core::decoder::ChoirDecoder;
//! use lora_phy::params::PhyParams;
//!
//! # let samples: Vec<choir_dsp::C64> = vec![];
//! let decoder = ChoirDecoder::new(PhyParams::default());
//! // Decode every user colliding in a beacon slot starting at sample 512.
//! for user in decoder.decode_known_len(&samples, 512, 16) {
//!     if user.payload_ok() {
//!         println!("offset {:.2} bins: {:?}",
//!                  user.user.offset_bins, user.frame.unwrap().payload);
//!     }
//! }
//! ```

#![deny(missing_docs)]

pub mod cluster;
pub mod decoder;
pub mod dedup;
pub mod error;
pub mod estimator;
pub mod hmrf;
pub mod lowsnr;
pub mod multisf;
pub mod profile;
pub mod sic;
pub mod unb;

pub use decoder::{
    ChoirConfig, ChoirDecoder, DecodedUser, SlotCapture, SlotResult, SlotView, UserEstimate,
};
pub use dedup::StartDedup;
pub use error::DecodeError;
pub use estimator::{ComponentEstimate, EstimatorConfig, OffsetEstimator};
pub use lowsnr::{TeamConfig, TeamDecoder, TeamDetection};
pub use multisf::{decode_multi_sf, LaneResult, SfLane};
pub use sic::{phased_sic, SicConfig, SicResult};
