//! Semi-supervised constrained clustering — the HMRF-KMeans approach the
//! paper adopts from Basu, Bilenko & Mooney (KDD 2004) for mapping symbols
//! to users (Sec. 6.2).
//!
//! Observations are per-window spectral peaks with features
//! `{fractional position, channel magnitude, channel phase}`; the prior
//! knowledge is encoded as pairwise constraints:
//!
//! * **cannot-link** — two peaks in the *same* symbol window belong to
//!   different users;
//! * **must-link** — externally known co-assignments (e.g. a preamble
//!   track already established).
//!
//! The objective is the HMRF posterior energy: the sum of distances to
//! cluster centroids plus a penalty for each violated constraint;
//! minimised by ICM-style alternating assignment/update sweeps.

use crate::cluster::{circular_dist, circular_mean};

/// One observation (a spectral peak attributed to an unknown user).
#[derive(Clone, Copy, Debug)]
pub struct Obs {
    /// Fractional peak position in `[0, 1)` (circular).
    pub frac: f64,
    /// Channel magnitude.
    pub mag: f64,
    /// Channel phase in radians (circular; pass 0 with weight 0 to ignore).
    pub phase: f64,
    /// Symbol-window index the peak was seen in.
    pub window: usize,
}

/// Feature weights for the metric.
#[derive(Clone, Copy, Debug)]
pub struct Weights {
    /// Weight of the circular fractional-position distance.
    pub frac: f64,
    /// Weight of the relative magnitude distance.
    pub mag: f64,
    /// Weight of the circular phase distance.
    pub phase: f64,
    /// Penalty added per violated constraint.
    pub constraint: f64,
}

impl Default for Weights {
    fn default() -> Self {
        Weights {
            frac: 1.0,
            mag: 0.15,
            phase: 0.0,
            constraint: 1.0,
        }
    }
}

/// A pairwise constraint between observation indices.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Constraint {
    /// The two observations are the same user.
    MustLink(usize, usize),
    /// The two observations are different users.
    CannotLink(usize, usize),
}

/// Cluster centroids in the feature space.
#[derive(Clone, Debug)]
pub struct Centroid {
    /// Circular mean fractional position.
    pub frac: f64,
    /// Mean magnitude.
    pub mag: f64,
    /// Circular mean phase.
    pub phase: f64,
}

/// Result of a clustering run.
#[derive(Clone, Debug)]
pub struct Clustering {
    /// Per-observation cluster index.
    pub assignment: Vec<usize>,
    /// Final centroids.
    pub centroids: Vec<Centroid>,
    /// Final objective value (distances + penalties).
    pub energy: f64,
}

fn feature_dist(o: &Obs, c: &Centroid, w: &Weights) -> f64 {
    let df = circular_dist(o.frac, c.frac, 1.0);
    let dm = if c.mag > 0.0 {
        ((o.mag - c.mag) / c.mag).abs()
    } else {
        0.0
    };
    let dp = circular_dist(o.phase, c.phase, std::f64::consts::TAU) / std::f64::consts::PI;
    w.frac * df + w.mag * dm + w.phase * dp
}

/// Builds the implicit cannot-link set of Sec. 6.2: every pair of
/// observations sharing a window is a distinct-user pair.
pub fn same_window_cannot_links(obs: &[Obs]) -> Vec<Constraint> {
    let mut out = Vec::new();
    for i in 0..obs.len() {
        for j in (i + 1)..obs.len() {
            if obs[i].window == obs[j].window {
                out.push(Constraint::CannotLink(i, j));
            }
        }
    }
    out
}

/// Runs constrained k-means (HMRF ICM): seeds centroids from the window
/// holding the most observations (those are guaranteed distinct users),
/// then alternates penalty-aware assignment with centroid updates.
pub fn cluster(
    obs: &[Obs],
    k: usize,
    constraints: &[Constraint],
    weights: &Weights,
    max_iters: usize,
) -> Clustering {
    assert!(k >= 1, "need at least one cluster");
    assert!(!obs.is_empty(), "no observations");

    // Seed: the most-populated window's peaks are distinct users.
    let max_window = obs.iter().map(|o| o.window).max().unwrap_or(0);
    let mut best_seed_window = 0usize;
    let mut best_count = 0usize;
    for w in 0..=max_window {
        let c = obs.iter().filter(|o| o.window == w).count();
        if c > best_count {
            best_count = c;
            best_seed_window = w;
        }
    }
    let mut centroids: Vec<Centroid> = obs
        .iter()
        .filter(|o| o.window == best_seed_window)
        .take(k)
        .map(|o| Centroid {
            frac: o.frac,
            mag: o.mag,
            phase: o.phase,
        })
        .collect();
    // Top up missing seeds with spread-out fractional positions.
    while centroids.len() < k {
        let idx = centroids.len();
        centroids.push(Centroid {
            frac: idx as f64 / k as f64,
            mag: obs.iter().map(|o| o.mag).sum::<f64>() / obs.len() as f64,
            phase: 0.0,
        });
    }

    let mut assignment: Vec<usize> = obs
        .iter()
        .map(|o| {
            (0..k)
                .min_by(|&a, &b| {
                    feature_dist(o, &centroids[a], weights).total_cmp(&feature_dist(
                        o,
                        &centroids[b],
                        weights,
                    ))
                })
                .unwrap_or(0)
        })
        .collect();

    let mut energy = f64::INFINITY;
    for _ in 0..max_iters {
        // ICM assignment sweep: each observation picks the label minimising
        // its local energy given everyone else's current labels.
        for i in 0..obs.len() {
            let mut best = (assignment[i], f64::INFINITY);
            for (cand, centroid) in centroids.iter().enumerate().take(k) {
                let mut e = feature_dist(&obs[i], centroid, weights);
                for c in constraints {
                    match *c {
                        Constraint::MustLink(a, b) => {
                            let other = if a == i {
                                Some(b)
                            } else if b == i {
                                Some(a)
                            } else {
                                None
                            };
                            if let Some(o) = other {
                                if assignment[o] != cand {
                                    e += weights.constraint;
                                }
                            }
                        }
                        Constraint::CannotLink(a, b) => {
                            let other = if a == i {
                                Some(b)
                            } else if b == i {
                                Some(a)
                            } else {
                                None
                            };
                            if let Some(o) = other {
                                if assignment[o] == cand {
                                    e += weights.constraint;
                                }
                            }
                        }
                    }
                }
                if e < best.1 {
                    best = (cand, e);
                }
            }
            assignment[i] = best.0;
        }
        // Centroid update.
        for (ci, centroid) in centroids.iter_mut().enumerate() {
            let members: Vec<&Obs> = obs
                .iter()
                .zip(&assignment)
                .filter(|(_, &a)| a == ci)
                .map(|(o, _)| o)
                .collect();
            if members.is_empty() {
                continue;
            }
            let fracs: Vec<f64> = members.iter().map(|o| o.frac).collect();
            let phases: Vec<f64> = members.iter().map(|o| o.phase).collect();
            centroid.frac = circular_mean(&fracs, 1.0);
            centroid.phase = circular_mean(&phases, std::f64::consts::TAU);
            centroid.mag = members.iter().map(|o| o.mag).sum::<f64>() / members.len() as f64;
        }
        // Total energy; stop at a fixed point.
        let mut e = 0.0;
        for (o, &a) in obs.iter().zip(&assignment) {
            e += feature_dist(o, &centroids[a], weights);
        }
        for c in constraints {
            match *c {
                Constraint::MustLink(a, b) if assignment[a] != assignment[b] => {
                    e += weights.constraint;
                }
                Constraint::CannotLink(a, b) if assignment[a] == assignment[b] => {
                    e += weights.constraint;
                }
                _ => {}
            }
        }
        if (energy - e).abs() < 1e-12 {
            energy = e;
            break;
        }
        energy = e;
    }

    // Provenance: one event per observation with the final label and how
    // many cannot-link constraints that labelling violates at the
    // observation (0 for a clean constrained solution).
    if choir_trace::enabled(choir_trace::TraceLevel::Full) {
        let mut violations = vec![0u32; obs.len()];
        for c in constraints {
            if let Constraint::CannotLink(a, b) = *c {
                if assignment[a] == assignment[b] {
                    violations[a] = violations[a].saturating_add(1);
                    violations[b] = violations[b].saturating_add(1);
                }
            }
        }
        for (i, (o, &a)) in obs.iter().zip(&assignment).enumerate() {
            choir_trace::full(|| choir_trace::TraceEvent::ClusterAssign {
                obs: i as u64,
                window: o.window as u64,
                cluster: u32::try_from(a).unwrap_or(u32::MAX),
                violations: violations[i],
            });
        }
    }

    Clustering {
        assignment,
        centroids,
        energy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(frac: f64, mag: f64, window: usize) -> Obs {
        Obs {
            frac,
            mag,
            phase: 0.0,
            window,
        }
    }

    /// Two users over 6 windows with distinct fractional offsets.
    fn two_user_scene() -> Vec<Obs> {
        let mut v = Vec::new();
        for w in 0..6 {
            v.push(obs(0.22 + 0.005 * (w % 2) as f64, 1.0, w));
            v.push(obs(0.71 - 0.004 * (w % 3) as f64, 0.5, w));
        }
        v
    }

    #[test]
    fn separates_two_users_by_fraction() {
        let o = two_user_scene();
        let cons = same_window_cannot_links(&o);
        let c = cluster(&o, 2, &cons, &Weights::default(), 20);
        // Alternating pattern: even indices one cluster, odd the other.
        let a0 = c.assignment[0];
        let a1 = c.assignment[1];
        assert_ne!(a0, a1);
        for (i, &a) in c.assignment.iter().enumerate() {
            assert_eq!(a, if i % 2 == 0 { a0 } else { a1 }, "obs {i}");
        }
        // Centroids land on the true fractions.
        let mut fr: Vec<f64> = c.centroids.iter().map(|x| x.frac).collect();
        fr.sort_by(f64::total_cmp);
        assert!((fr[0] - 0.22).abs() < 0.02);
        assert!((fr[1] - 0.71).abs() < 0.02);
    }

    #[test]
    fn cannot_link_splits_identical_features() {
        // Two peaks per window with identical fractions — only the
        // cannot-link constraint (and magnitude) can split them.
        let mut o = Vec::new();
        for w in 0..5 {
            o.push(obs(0.40, 1.0, w));
            o.push(obs(0.40, 0.3, w));
        }
        let cons = same_window_cannot_links(&o);
        let w = Weights {
            mag: 1.0,
            ..Weights::default()
        };
        let c = cluster(&o, 2, &cons, &w, 25);
        for pair in c.assignment.chunks(2) {
            assert_ne!(pair[0], pair[1], "same-window peaks merged");
        }
        // Magnitude separation recovered.
        let mags: Vec<f64> = c.centroids.iter().map(|x| x.mag).collect();
        assert!((mags[0] - mags[1]).abs() > 0.4);
    }

    #[test]
    fn must_link_overrides_feature_noise() {
        // Observation 3 is noisy (fraction halfway between users) but a
        // must-link to observation 1 pins it.
        let mut o = two_user_scene();
        o.push(Obs {
            frac: 0.46,
            mag: 0.9,
            phase: 0.0,
            window: 6,
        });
        let mut cons = same_window_cannot_links(&o);
        cons.push(Constraint::MustLink(o.len() - 1, 0));
        let w = Weights {
            constraint: 5.0,
            ..Weights::default()
        };
        let c = cluster(&o, 2, &cons, &w, 25);
        assert_eq!(c.assignment[o.len() - 1], c.assignment[0]);
    }

    #[test]
    fn wraparound_fractions_cluster_together() {
        // 0.98 and 0.02 are 0.04 apart circularly.
        let mut o = Vec::new();
        for w in 0..4 {
            o.push(obs(if w % 2 == 0 { 0.98 } else { 0.02 }, 1.0, w));
            o.push(obs(0.5, 1.0, w));
        }
        let cons = same_window_cannot_links(&o);
        let c = cluster(&o, 2, &cons, &Weights::default(), 20);
        let a0 = c.assignment[0];
        for (i, &a) in c.assignment.iter().enumerate() {
            if i % 2 == 0 {
                assert_eq!(a, a0, "wraparound obs {i} strayed");
            } else {
                assert_ne!(a, a0);
            }
        }
    }

    #[test]
    fn energy_is_finite_and_constraints_reduce_violations() {
        let o = two_user_scene();
        let cons = same_window_cannot_links(&o);
        let with = cluster(&o, 2, &cons, &Weights::default(), 20);
        assert!(with.energy.is_finite());
        // No same-window pair shares a cluster in the final solution.
        for c in &cons {
            if let Constraint::CannotLink(a, b) = *c {
                assert_ne!(with.assignment[a], with.assignment[b]);
            }
        }
    }

    #[test]
    #[should_panic(expected = "no observations")]
    fn empty_input_panics() {
        cluster(&[], 2, &[], &Weights::default(), 5);
    }
}
