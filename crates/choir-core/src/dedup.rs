//! Overlapping-view admission policy for unslotted detection.
//!
//! A multi-hypothesis tracker confirms *frame alignments*, not frames: a
//! fractional-CFO straddle, a near-far pair on adjacent bins, or two CFO
//! hypotheses of the same transmitter can all confirm within a symbol or
//! two of one another. Cutting a [`crate::SlotView`] per confirmation
//! would decode the same samples twice. The policy here is the one the
//! station applies before cutting: a confirmed start is admitted only if
//! it lies at least a minimum separation from *every* previously admitted
//! start — otherwise it is folded into the earlier admission (the views
//! would cover the same frame). Distinct frames that genuinely overlap
//! (partial collision, zero-gap back-to-back) are farther apart than a
//! preamble and always admitted; their views may then share ring samples,
//! which is the point — shared *samples*, not shared *decodes*.

use std::collections::VecDeque;

/// Deduplicates confirmed packet starts by minimum separation.
///
/// Admission is order-independent for the separations the tracker can
/// produce in one window batch, and `O(k)` in the number of *retained*
/// admissions — callers prune with [`StartDedup::prune_below`] as their
/// ring discards history.
#[derive(Clone, Debug)]
pub struct StartDedup {
    admitted: VecDeque<u64>,
    min_separation: u64,
}

impl StartDedup {
    /// A policy admitting starts at least `min_separation` samples apart.
    /// One preamble length is the natural choice: two confirmations
    /// closer than a preamble cannot be distinct frames.
    pub fn new(min_separation: u64) -> Self {
        StartDedup {
            admitted: VecDeque::new(),
            min_separation,
        }
    }

    /// Admits `start` if no previously admitted start is within the
    /// minimum separation; returns whether the caller should cut a view.
    pub fn admit(&mut self, start: u64) -> bool {
        let dup = self
            .admitted
            .iter()
            .any(|&a| a.abs_diff(start) < self.min_separation);
        if !dup {
            self.admitted.push_back(start);
        }
        !dup
    }

    /// Drops retained admissions strictly below `watermark` (they can no
    /// longer collide with future confirmations once the tracker has
    /// moved past them).
    pub fn prune_below(&mut self, watermark: u64) {
        while let Some(&front) = self.admitted.front() {
            if front < watermark {
                self.admitted.pop_front();
            } else {
                return;
            }
        }
    }

    /// Currently retained admissions (diagnostics / tests).
    pub fn retained(&self) -> usize {
        self.admitted.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicates_within_separation_fold() {
        let mut d = StartDedup::new(2048);
        assert!(d.admit(10_000));
        assert!(!d.admit(10_000), "exact duplicate");
        assert!(!d.admit(10_256), "one symbol later: same frame");
        assert!(!d.admit(8_200), "just under a preamble earlier");
        assert!(d.admit(12_048), "exactly the separation: distinct");
        assert_eq!(d.retained(), 2);
    }

    #[test]
    fn overlapping_distinct_frames_both_admit() {
        // Two frames overlapping 50%: starts a frame-length/2 apart,
        // far beyond one preamble.
        let mut d = StartDedup::new(8 * 256);
        assert!(d.admit(512));
        assert!(d.admit(512 + 17 * 256));
    }

    #[test]
    fn prune_discards_only_passed_history() {
        let mut d = StartDedup::new(1000);
        assert!(d.admit(1_000));
        assert!(d.admit(5_000));
        assert!(d.admit(9_000));
        d.prune_below(5_000);
        assert_eq!(d.retained(), 2);
        // 1_000 is gone: a (hypothetical) nearby start admits again.
        assert!(d.admit(1_500));
    }

    #[test]
    fn zero_separation_admits_everything() {
        let mut d = StartDedup::new(0);
        assert!(d.admit(7));
        assert!(d.admit(7));
    }
}
