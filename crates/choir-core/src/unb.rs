//! Offset-based separation for ultra-narrowband LP-WANs — Sec. 5.2,
//! concluding point (2).
//!
//! SigFox and NB-IoT transmit in bands of a few hundred hertz, while cheap
//! oscillators wander by tens of kilohertz — so colliding UNB transmitters
//! are *already* separated in frequency by their hardware offsets, and the
//! base station only has to channelise: find the active carriers, filter
//! each out, demodulate. ("Filtering their transmissions based on hardware
//! offsets \[is\] significantly simpler" than the chirp case.)
//!
//! This module is a compact demonstration of that claim: a DBPSK
//! SigFox-like uplink, a wideband capture, and an offset-channelising
//! receiver. The caveat the paper notes also shows up here: two
//! transmitters whose offsets land within a signal bandwidth of each other
//! are *not* separable (no chirp structure to fall back on).

use choir_dsp::complex::C64;

/// UNB link parameters.
#[derive(Clone, Copy, Debug)]
pub struct UnbParams {
    /// Wideband capture sample rate (Hz) — the macro-channel width.
    pub fs_hz: f64,
    /// Symbol rate (Hz). SigFox uplink: 100–600 baud.
    pub symbol_rate_hz: f64,
}

impl Default for UnbParams {
    fn default() -> Self {
        UnbParams {
            fs_hz: 19_200.0,
            symbol_rate_hz: 300.0,
        }
    }
}

impl UnbParams {
    /// Samples per symbol (must divide evenly; the defaults give 64).
    pub fn sps(&self) -> usize {
        (self.fs_hz / self.symbol_rate_hz).round() as usize
    }
}

/// Differentially encodes bits into BPSK phase flips (bit 1 ⇒ flip).
fn diff_encode(bits: &[u8]) -> Vec<f64> {
    let mut phase = 1.0f64;
    let mut out = Vec::with_capacity(bits.len() + 1);
    out.push(phase); // reference symbol
    for &b in bits {
        if b != 0 {
            phase = -phase;
        }
        out.push(phase);
    }
    out
}

/// Modulates `bits` as DBPSK at carrier offset `cfo_hz` (relative to the
/// capture centre), amplitude `amp`, starting at `start_sample`.
pub fn unb_modulate(
    params: &UnbParams,
    bits: &[u8],
    cfo_hz: f64,
    amp: f64,
    start_sample: usize,
    total_samples: usize,
) -> Vec<C64> {
    let sps = params.sps();
    let symbols = diff_encode(bits);
    let mut out = vec![C64::ZERO; total_samples];
    let w = 2.0 * std::f64::consts::PI * cfo_hz / params.fs_hz;
    for (k, &s) in symbols.iter().enumerate() {
        for i in 0..sps {
            let idx = start_sample + k * sps + i;
            if idx >= total_samples {
                return out;
            }
            let t = idx as f64;
            out[idx] = C64::cis(w * t).scale(amp * s);
        }
    }
    out
}

/// A carrier detected in the capture.
#[derive(Clone, Copy, Debug)]
pub struct UnbCarrier {
    /// Offset from the capture centre (Hz).
    pub cfo_hz: f64,
    /// Detected power (arbitrary units).
    pub power: f64,
}

/// Shortest capture the channeliser will look at: below this even one
/// symbol of the slowest supported rate is unobservable, so there is
/// nothing to find.
const MIN_CHANNELISER_SAMPLES: usize = 32;

/// Channeliser: finds active narrowband carriers by FFT power scanning.
/// Carriers closer than `min_separation_hz` merge into the stronger one —
/// the inseparable-collision case.
///
/// Degenerate captures (shorter than a handful of samples) yield no
/// carriers. The analysis length is the largest power of two that fits the
/// capture (capped at 16k samples), so exactly-power-of-two captures are
/// used in full.
pub fn find_carriers(
    params: &UnbParams,
    capture: &[C64],
    threshold_over_median: f64,
    min_separation_hz: f64,
    max_carriers: usize,
) -> Vec<UnbCarrier> {
    if capture.len() < MIN_CHANNELISER_SAMPLES {
        return Vec::new();
    }
    // Round *down* to the largest power of two ≤ len. The previous
    // `next_power_of_two() >> 1` derivation silently discarded half of an
    // exactly-power-of-two capture and underflowed to 0 (tripping the FFT
    // plan's non-zero assert) for captures under 2 samples.
    let clamped = capture.len().min(1 << 14);
    let n = 1usize << clamped.ilog2();
    let plan = choir_dsp::fft::plan(n);
    let power: Vec<f64> = choir_dsp::workspace::with(|ws| {
        let mut spec = ws.take(n);
        plan.forward_padded_into(&capture[..n], &mut spec, ws);
        let power = spec.iter().map(|z| z.norm_sqr()).collect();
        ws.put(spec);
        power
    });
    let med = choir_dsp::peaks::noise_floor(&power);
    // Relative floor: a DBPSK spectrum carries sinc side-lobes ~13 dB
    // below its main lobe; anything below 15 % of the strongest peak is a
    // side-lobe, not another transmitter.
    let max_pow = power.iter().cloned().fold(0.0f64, f64::max);
    let floor = (med * threshold_over_median).max(max_pow * 0.15);
    let bin_hz = params.fs_hz / n as f64;
    let signed_freq = |i: usize| -> f64 {
        if i <= n / 2 {
            i as f64 * bin_hz
        } else {
            (i as f64 - n as f64) * bin_hz
        }
    };
    let mut cands: Vec<(usize, f64)> = power
        .iter()
        .enumerate()
        .filter(|(i, &p)| {
            let prev = power[(i + n - 1) % n];
            let next = power[(i + 1) % n];
            p > floor && p >= prev && p > next
        })
        .map(|(i, &p)| (i, p))
        .collect();
    cands.sort_by(|a, b| b.1.total_cmp(&a.1));
    let mut out: Vec<UnbCarrier> = Vec::new();
    for (i, p) in cands {
        if out.len() >= max_carriers {
            break;
        }
        let f = signed_freq(i);
        if out
            .iter()
            .all(|c| (c.cfo_hz - f).abs() >= min_separation_hz)
        {
            // The raw periodogram peak of a random-data DBPSK burst wanders
            // anywhere inside the ~2×symbol-rate main lobe, so the peak bin
            // alone is only good to O(symbol rate). Refine to the lobe
            // centre with a noise-floor-subtracted power centroid over ±1
            // symbol-rate — the lobe is symmetric about the true carrier.
            let half = (params.symbol_rate_hz / bin_hz).ceil() as i64;
            let mut wsum = 0.0;
            let mut fsum = 0.0;
            for d in -half..=half {
                let j = (i as i64 + d).rem_euclid(n as i64) as usize;
                let w = (power[j] - med).max(0.0);
                wsum += w;
                fsum += (f + d as f64 * bin_hz) * w;
            }
            let refined = if wsum > 0.0 { fsum / wsum } else { f };
            out.push(UnbCarrier {
                cfo_hz: refined,
                power: p,
            });
        }
    }
    out
}

/// Demodulates one carrier: mix down, integrate per symbol, differential
/// phase detection. `start_sample` is the slot boundary (beacon-synced, as
/// in the chirp case).
pub fn unb_demodulate(
    params: &UnbParams,
    capture: &[C64],
    carrier: &UnbCarrier,
    start_sample: usize,
    num_bits: usize,
) -> Vec<u8> {
    let sps = params.sps();
    let w = -2.0 * std::f64::consts::PI * carrier.cfo_hz / params.fs_hz;
    // Integrate-and-dump per symbol (the matched filter for rectangular
    // pulses; its bandwidth ≈ symbol rate, which is what rejects the other
    // carriers).
    let symbol = |k: usize| -> C64 {
        let lo = start_sample + k * sps;
        let mut acc = C64::ZERO;
        for i in 0..sps {
            if let Some(&x) = capture.get(lo + i) {
                acc += x * C64::cis(w * (lo + i) as f64);
            }
        }
        acc
    };
    let symbols: Vec<C64> = (0..=num_bits).map(symbol).collect();
    // Fine CFO: the coarse carrier estimate is only good to a fraction of
    // the symbol rate; squaring the differential phasors strips the BPSK
    // flips (±1 squared is +1) and leaves twice the residual rotation.
    let sq_sum: C64 = symbols
        .windows(2)
        .map(|w| {
            let d = w[1] * w[0].conj();
            d * d
        })
        .sum();
    let residual = C64::cis(-sq_sum.arg() / 2.0);
    // Of the two half-plane ambiguities of arg/2, pick the one that makes
    // differential decisions most confident.
    let confidence = |rot: C64| -> f64 {
        symbols
            .windows(2)
            .map(|w| (w[1] * w[0].conj() * rot).re.abs())
            .sum()
    };
    let rot = if confidence(residual) >= confidence(-residual) {
        residual
    } else {
        -residual
    };
    symbols
        .windows(2)
        .map(|w| u8::from(((w[1] * w[0].conj()) * rot).re < 0.0))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn add(a: &mut [C64], b: &[C64]) {
        for (x, y) in a.iter_mut().zip(b) {
            *x += *y;
        }
    }

    #[test]
    fn single_unb_roundtrip_with_noise() {
        let p = UnbParams::default();
        let mut rng = StdRng::seed_from_u64(1);
        let bits: Vec<u8> = (0..48).map(|_| rng.gen_range(0..2u8)).collect();
        let total = 64 * 64;
        let mut cap = unb_modulate(&p, &bits, 1234.5, 1.0, 0, total);
        choir_channel::noise::add_awgn(&mut rng, &mut cap, 1.0);
        let carriers = find_carriers(&p, &cap, 6.0, 400.0, 4);
        assert_eq!(carriers.len(), 1);
        // The BPSK main lobe is ~2×symbol-rate wide, so the carrier
        // estimate lands within a fraction of the symbol rate; the
        // differential demodulator tolerates that residual.
        assert!(
            (carriers[0].cfo_hz - 1234.5).abs() < 100.0,
            "cfo {}",
            carriers[0].cfo_hz
        );
        let out = unb_demodulate(&p, &cap, &carriers[0], 0, bits.len());
        assert_eq!(out, bits);
    }

    #[test]
    fn five_colliding_unb_transmitters_separated_by_offsets() {
        // ±20 ppm at 900 MHz = ±18 kHz of offset spread vs ~300 Hz of
        // signal bandwidth: collisions separate by filtering alone.
        let p = UnbParams::default();
        let mut rng = StdRng::seed_from_u64(2);
        let offsets = [-7800.0, -3100.0, 950.0, 4425.0, 8210.0];
        let total = 64 * 64;
        let mut cap = vec![C64::ZERO; total];
        let mut truth = Vec::new();
        for (i, &f) in offsets.iter().enumerate() {
            let bits: Vec<u8> = (0..48).map(|_| rng.gen_range(0..2u8)).collect();
            let amp = 0.7 + 0.15 * i as f64;
            add(&mut cap, &unb_modulate(&p, &bits, f, amp, 0, total));
            truth.push((f, bits));
        }
        choir_channel::noise::add_awgn(&mut rng, &mut cap, 1.0);

        let carriers = find_carriers(&p, &cap, 6.0, 400.0, 8);
        assert_eq!(carriers.len(), 5, "carriers: {carriers:?}");
        let mut ok = 0;
        for c in &carriers {
            let (f, bits) = truth
                .iter()
                .min_by(|a, b| (a.0 - c.cfo_hz).abs().total_cmp(&(b.0 - c.cfo_hz).abs()))
                .unwrap();
            assert!((f - c.cfo_hz).abs() < 100.0);
            if unb_demodulate(&p, &cap, c, 0, bits.len()) == *bits {
                ok += 1;
            }
        }
        assert_eq!(ok, 5, "all five UNB transmissions should decode");
    }

    #[test]
    fn overlapping_offsets_are_not_separable() {
        // The caveat: two carriers 40 Hz apart (≪ symbol rate) merge.
        let p = UnbParams::default();
        let mut rng = StdRng::seed_from_u64(3);
        let total = 64 * 64;
        let bits_a: Vec<u8> = (0..48).map(|_| rng.gen_range(0..2u8)).collect();
        let bits_b: Vec<u8> = (0..48).map(|_| rng.gen_range(0..2u8)).collect();
        let mut cap = unb_modulate(&p, &bits_a, 500.0, 1.0, 0, total);
        add(&mut cap, &unb_modulate(&p, &bits_b, 540.0, 1.0, 0, total));
        choir_channel::noise::add_awgn(&mut rng, &mut cap, 1.0);
        let carriers = find_carriers(&p, &cap, 6.0, 400.0, 8);
        assert_eq!(carriers.len(), 1, "overlapping carriers must merge");
        let out = unb_demodulate(&p, &cap, &carriers[0], 0, bits_a.len());
        // With equal powers the mixture decodes as neither stream.
        assert!(out != bits_a || out != bits_b);
    }

    #[test]
    fn sps_geometry() {
        let p = UnbParams::default();
        assert_eq!(p.sps(), 64);
    }

    #[test]
    fn degenerate_captures_yield_no_carriers() {
        // Regression: 0- and 1-sample captures used to derive an FFT size
        // of 0 and trip the "size must be non-zero" assert; a 3-sample
        // capture "worked" on a useless 2-point spectrum.
        let p = UnbParams::default();
        for len in [0usize, 1, 3, 31] {
            let cap = vec![C64::ONE; len];
            assert!(
                find_carriers(&p, &cap, 6.0, 400.0, 4).is_empty(),
                "len {len} should yield no carriers"
            );
        }
    }

    #[test]
    fn power_of_two_capture_used_in_full() {
        // Regression: the old size derivation halved an exactly-power-of-
        // two capture, so a burst confined to the second half was
        // invisible to the channeliser.
        let p = UnbParams::default();
        let mut rng = StdRng::seed_from_u64(4);
        let total = 2048usize;
        let bits: Vec<u8> = (0..14).map(|_| rng.gen_range(0..2u8)).collect();
        let mut cap = unb_modulate(&p, &bits, 2400.0, 1.0, 1024, total);
        choir_channel::noise::add_awgn(&mut rng, &mut cap, 0.1);
        let carriers = find_carriers(&p, &cap, 6.0, 400.0, 4);
        assert_eq!(carriers.len(), 1, "carriers: {carriers:?}");
        assert!(
            (carriers[0].cfo_hz - 2400.0).abs() < 200.0,
            "cfo {}",
            carriers[0].cfo_hz
        );
    }
}
