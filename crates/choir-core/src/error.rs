//! Typed failures for the Choir decoding pipeline.
//!
//! Historically the pipeline signalled failure with `Option`s and bare
//! `unwrap()`s; this module gives every failure mode a variant that names
//! *where* in the pipeline it happened — which symbol window, which SIC
//! phase, which user — so callers (and panic messages in experiments) can
//! distinguish "the slot was truncated" from "the fit went singular".

use lora_phy::frame::FrameError;

/// Why a stage of the Choir pipeline could not produce a result.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum DecodeError {
    /// The sample buffer ended before the window for symbol `symbol`
    /// (0 = first preamble symbol) could be extracted.
    TruncatedSlot {
        /// Index of the first symbol whose window ran past the buffer.
        symbol: usize,
        /// Samples the full slot needs, measured from the buffer start.
        needed: usize,
        /// Samples actually available.
        available: usize,
    },
    /// The joint least-squares system of Eqn. 2 was singular — typically
    /// two hypothesised tone frequencies collapsed onto each other.
    SingularFit {
        /// Number of components in the failed joint fit.
        components: usize,
    },
    /// A SIC phase made no progress: substantial residual power remained
    /// but no further peaks cleared the detection threshold.
    SicStalled {
        /// Zero-based phase index that stalled.
        sic_phase: usize,
        /// Residual power at the stall, relative to the input window power.
        relative_residual: f64,
    },
    /// No users were discovered in the slot's preamble region.
    NoUsersFound,
    /// The capture contained NaN or Inf samples. Debug builds trip the
    /// `choir_dsp::checks` sanitizer instead (panicking at the stage that
    /// produced the buffer); release pipelines — where the sanitizer is
    /// compiled out — report the corruption as this typed error rather
    /// than silently decoding garbage.
    NonFiniteInput {
        /// Samples with a NaN real or imaginary part.
        nan: usize,
        /// Samples with an infinite real or imaginary part.
        inf: usize,
    },
    /// A user's recovered symbol stream failed the frame chain.
    Frame {
        /// Aggregate offset (in bins) of the user whose frame failed,
        /// identifying it among the collision's participants.
        offset_bins: f64,
        /// The frame-layer failure.
        source: FrameError,
    },
}

impl DecodeError {
    /// Stable snake_case tag naming the variant in exported trace logs.
    pub fn kind(&self) -> &'static str {
        match self {
            DecodeError::TruncatedSlot { .. } => "truncated_slot",
            DecodeError::SingularFit { .. } => "singular_fit",
            DecodeError::SicStalled { .. } => "sic_stalled",
            DecodeError::NoUsersFound => "no_users_found",
            DecodeError::NonFiniteInput { .. } => "non_finite_input",
            DecodeError::Frame { .. } => "frame",
        }
    }

    /// Records this error in the flight recorder (an `Outcome`-level
    /// `TraceEvent::DecodeFailed`) and hands it back, so construction
    /// sites stay a single expression:
    /// `Err(DecodeError::NoUsersFound.traced())`.
    ///
    /// The `trace_event` rule of `cargo xtask lint` requires every
    /// `DecodeError` construction site in library code to route through
    /// this method, keeping errors and traces in lockstep.
    #[must_use]
    pub fn traced(self) -> Self {
        choir_trace::outcome(|| choir_trace::TraceEvent::DecodeFailed {
            kind: self.kind(),
            detail: self.to_string(),
        });
        self
    }
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::TruncatedSlot {
                symbol,
                needed,
                available,
            } => write!(
                f,
                "slot truncated at symbol {symbol}: need {needed} samples, have {available}"
            ),
            DecodeError::SingularFit { components } => {
                write!(f, "singular least-squares fit over {components} components")
            }
            DecodeError::SicStalled {
                sic_phase,
                relative_residual,
            } => write!(
                f,
                "SIC stalled at phase {sic_phase} with relative residual {relative_residual:.3e}"
            ),
            DecodeError::NoUsersFound => write!(f, "no users discovered in preamble"),
            DecodeError::NonFiniteInput { nan, inf } => write!(
                f,
                "capture contains non-finite samples ({nan} NaN, {inf} Inf)"
            ),
            DecodeError::Frame {
                offset_bins,
                source,
            } => write!(f, "user at offset {offset_bins:.2} bins: {source}"),
        }
    }
}

impl std::error::Error for DecodeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DecodeError::Frame { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_failing_stage() {
        let e = DecodeError::TruncatedSlot {
            symbol: 9,
            needed: 2048,
            available: 1500,
        };
        assert!(e.to_string().contains("symbol 9"));
        let e = DecodeError::SicStalled {
            sic_phase: 2,
            relative_residual: 0.25,
        };
        assert!(e.to_string().contains("phase 2"));
        let e = DecodeError::NonFiniteInput { nan: 3, inf: 1 };
        assert!(e.to_string().contains("3 NaN"));
    }

    #[test]
    fn frame_variant_exposes_source() {
        use std::error::Error;
        let e = DecodeError::Frame {
            offset_bins: 17.25,
            source: FrameError::BadHeader,
        };
        assert!(e.source().is_some());
        assert!(e.to_string().contains("17.25"));
    }
}
