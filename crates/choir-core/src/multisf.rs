//! Parallel decoding across spreading factors — Sec. 5.2, concluding
//! point (4).
//!
//! Chirps of different spreading factors are (near-)orthogonal: dechirping
//! a capture with SF `a`'s down-chirp collapses only SF-`a` transmissions
//! into tones; SF-`b` signals remain spread and appear as a low, flat
//! noise floor. A LoRaWAN gateway already exploits this to decode one
//! packet per SF simultaneously; Choir extends it to *collisions within
//! each SF*: demultiplex by SF, then run the collision decoder per stream.

use choir_dsp::complex::C64;
use lora_phy::params::{PhyParams, SpreadingFactor};

use crate::decoder::{ChoirConfig, ChoirDecoder, DecodedUser};

/// One SF's decoding lane.
#[derive(Clone, Debug)]
pub struct SfLane {
    /// PHY parameters of this lane (sets the spreading factor).
    pub params: PhyParams,
    /// Number of data symbols expected on this lane.
    pub num_data_symbols: usize,
}

/// Result of one lane.
#[derive(Clone, Debug)]
pub struct LaneResult {
    /// The lane's spreading factor.
    pub sf: SpreadingFactor,
    /// Users decoded on this lane.
    pub users: Vec<DecodedUser>,
}

/// Decodes a capture carrying concurrent transmissions on several
/// spreading factors: each lane runs the full Choir pipeline against the
/// *same* samples — the other SFs' energy stays spread after that lane's
/// dechirp and is absorbed as noise.
pub fn decode_multi_sf(
    samples: &[C64],
    slot_start: usize,
    lanes: &[SfLane],
    cfg: ChoirConfig,
) -> Vec<LaneResult> {
    lanes
        .iter()
        .map(|lane| {
            let decoder = ChoirDecoder::with_config(lane.params, cfg);
            let users = decoder.decode(samples, slot_start, lane.num_data_symbols);
            LaneResult {
                sf: lane.params.sf,
                users,
            }
        })
        .collect()
}

/// Cross-SF interference gauge: the mean power an SF-`other` chirp leaves
/// in an SF-`target` dechirped bin, relative to a matched chirp's peak —
/// quantifies the orthogonality claim (≈ `1/2^SF_target`).
pub fn cross_sf_leakage(target: SpreadingFactor, other: SpreadingFactor) -> f64 {
    use choir_dsp::fft::fft;
    use lora_phy::chirp::{base_downchirp, base_upchirp};
    let nt = target.chips();
    let no = other.chips();
    let down = base_downchirp(nt);
    let up_other = base_upchirp(no);
    // One target-length window of the other SF's chirp.
    let de: Vec<C64> = (0..nt).map(|i| up_other[i % no] * down[i]).collect();
    let spec = fft(&de);
    let peak = spec.iter().map(|z| z.norm_sqr()).fold(0.0, f64::max);
    // Matched peak power would be nt².
    peak / (nt as f64 * nt as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use choir_channel::impairments::HardwareProfile;
    use choir_channel::mix::{mix, MixConfig, Transmission};
    use choir_channel::noise::db_to_lin;
    use lora_phy::chirp::PacketWaveform;
    use lora_phy::frame::packet_symbols;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn params(sf: SpreadingFactor) -> PhyParams {
        PhyParams {
            sf,
            ..PhyParams::default()
        }
    }

    #[test]
    fn cross_sf_chirps_nearly_orthogonal() {
        // An SF9 chirp leaves ≤ a few percent of a matched peak in an SF8
        // dechirped spectrum (and vice versa).
        for (a, b) in [
            (SpreadingFactor::Sf8, SpreadingFactor::Sf9),
            (SpreadingFactor::Sf9, SpreadingFactor::Sf8),
            (SpreadingFactor::Sf7, SpreadingFactor::Sf9),
        ] {
            let leak = cross_sf_leakage(a, b);
            assert!(leak < 0.05, "{a:?}/{b:?} leakage {leak}");
        }
        // Matched SF is full strength.
        let matched = cross_sf_leakage(SpreadingFactor::Sf8, SpreadingFactor::Sf8);
        assert!(matched > 0.99, "matched {matched}");
    }

    #[test]
    fn two_sf_lanes_with_collisions_in_each() {
        // Five transmitters: 2 × SF7 colliding, 2 × SF8 colliding, 1 × SF9
        // alone — the paper's example configuration (SFs 7,7,8,8,9).
        let mut rng = StdRng::seed_from_u64(9);
        let bin8 = params(SpreadingFactor::Sf8).bin_hz();
        let mk_profile = |cfo_bins8: f64, toff: f64| HardwareProfile {
            cfo_hz: cfo_bins8 * bin8,
            timing_offset_symbols: toff,
            phase: 0.4,
            cfo_jitter_hz: 0.0,
            timing_jitter_symbols: 0.0,
        };
        let spec = [
            (SpreadingFactor::Sf7, mk_profile(5.2, 0.08)),
            (SpreadingFactor::Sf7, mk_profile(-9.6, 0.27)),
            (SpreadingFactor::Sf8, mk_profile(3.4, 0.12)),
            (SpreadingFactor::Sf8, mk_profile(-14.1, 0.31)),
            (SpreadingFactor::Sf9, mk_profile(7.7, 0.05)),
        ];
        let slot = 2 * 512; // guard sized for the largest SF
        let mut payloads = Vec::new();
        let txs: Vec<Transmission> = spec
            .iter()
            .map(|(sf, profile)| {
                let p = params(*sf);
                let payload: Vec<u8> = (0..6).map(|_| rng.gen()).collect();
                payloads.push((*sf, payload.clone()));
                Transmission {
                    waveform: PacketWaveform::new(
                        p.samples_per_symbol(),
                        packet_symbols(&p, &payload),
                    ),
                    channel: C64::ONE,
                    amplitude: db_to_lin(rng.gen_range(16.0..22.0)).sqrt(),
                    profile: *profile,
                    start_sample: slot as f64,
                }
            })
            .collect();
        let total = slot + 60 * 512;
        let cfg = MixConfig {
            bw_hz: 125e3,
            noise_power: 1.0,
        };
        let samples = mix(&txs, total, &cfg, &mut rng);

        let lanes: Vec<SfLane> = [
            SpreadingFactor::Sf7,
            SpreadingFactor::Sf8,
            SpreadingFactor::Sf9,
        ]
        .into_iter()
        .map(|sf| {
            let p = params(sf);
            SfLane {
                params: p,
                num_data_symbols: lora_phy::frame::frame_symbol_count(&p, 6),
            }
        })
        .collect();
        let results = decode_multi_sf(&samples, slot, &lanes, ChoirConfig::default());

        let mut decoded_ok = 0;
        for r in &results {
            for d in &r.users {
                if d.payload_ok() {
                    let payload = &d.frame.as_ref().unwrap().payload;
                    assert!(
                        payloads.iter().any(|(sf, p)| *sf == r.sf && p == payload),
                        "{:?}: decoded payload not transmitted on this SF",
                        r.sf
                    );
                    decoded_ok += 1;
                }
            }
        }
        // Cross-SF "orthogonality" is spreading, not nulling: each lane
        // sees the other four transmitters' full power spread flat across
        // its bins, raising its effective noise floor by ~Σ amp² (≈25 dB
        // here). Decoding 3+ of 5 under that is the realistic outcome —
        // known imperfect inter-SF isolation in LoRa.
        assert!(decoded_ok >= 3, "only {decoded_ok}/5 decoded across lanes");
    }

    #[test]
    fn empty_lane_reports_no_users() {
        // Only SF7 traffic on air; the SF9 lane must come back clean.
        let mut rng = StdRng::seed_from_u64(11);
        let p7 = params(SpreadingFactor::Sf7);
        let payload = vec![1u8, 2, 3];
        let tx = Transmission {
            waveform: PacketWaveform::new(p7.samples_per_symbol(), packet_symbols(&p7, &payload)),
            channel: C64::ONE,
            amplitude: db_to_lin(18.0).sqrt(),
            profile: HardwareProfile::ideal(),
            start_sample: 1024.0,
        };
        let samples = mix(
            &[tx],
            1024 + 50 * 512,
            &MixConfig {
                bw_hz: 125e3,
                noise_power: 1.0,
            },
            &mut rng,
        );
        let p9 = params(SpreadingFactor::Sf9);
        let lanes = [SfLane {
            params: p9,
            num_data_symbols: lora_phy::frame::frame_symbol_count(&p9, 3),
        }];
        let results = decode_multi_sf(&samples, 1024, &lanes, ChoirConfig::default());
        let ok = results[0].users.iter().filter(|d| d.payload_ok()).count();
        assert_eq!(ok, 0, "SF9 lane hallucinated a packet");
    }
}
