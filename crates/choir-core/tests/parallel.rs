//! Determinism property tests for the parallel batch-decode path: the
//! hard requirement of the choir-pool integration is that parallel
//! output is **bit-identical** to sequential output, regardless of
//! thread count. Every float is compared via `to_bits`, so even a
//! last-ulp divergence (e.g. from a reordered reduction) fails loudly.

use choir_channel::impairments::HardwareProfile;
use choir_channel::scenario::ScenarioBuilder;
use choir_core::{ChoirDecoder, DecodedUser, SlotCapture};
use choir_pool::ThreadPool;
use lora_phy::params::PhyParams;

fn params() -> PhyParams {
    PhyParams::default() // SF8, 125 kHz, CR4/8
}

fn profile(cfo_bins: f64, toff_symbols: f64) -> HardwareProfile {
    let bin_hz = 125e3 / 256.0;
    HardwareProfile {
        cfo_hz: cfo_bins * bin_hz,
        timing_offset_symbols: toff_symbols,
        phase: 1.0,
        cfo_jitter_hz: 0.0,
        timing_jitter_symbols: 0.0,
    }
}

/// Eight seeded multi-user scenarios with varying user counts, SNRs and
/// hardware offsets — the workload `parallel_decode_matches_sequential`
/// compares across thread counts.
fn seeded_slots(payload_len: usize) -> Vec<SlotCapture> {
    type Scenario = (&'static [f64], &'static [(f64, f64)], u64);
    let configs: [Scenario; 8] = [
        (&[20.0, 17.0], &[(2.3, 0.1), (-7.6, 0.32)], 31),
        (&[19.0, 16.0], &[(6.4, 0.37), (-11.7, 0.43)], 32),
        (&[21.0, 15.0], &[(0.8, 0.05), (5.5, 0.21)], 33),
        (&[18.0, 18.0], &[(-3.2, 0.12), (9.1, 0.4)], 34),
        (
            &[20.0, 17.0, 14.0],
            &[(2.3, 0.1), (-7.6, 0.32), (12.4, 0.18)],
            35,
        ),
        (
            &[19.0, 18.0, 17.0],
            &[(4.4, 0.25), (-5.9, 0.07), (10.2, 0.33)],
            36,
        ),
        (&[22.0], &[(1.5, 0.2)], 37),
        (&[16.0, 16.0], &[(-9.3, 0.45), (7.7, 0.02)], 38),
    ];
    configs
        .iter()
        .map(|(snrs, profs, seed)| {
            let s = ScenarioBuilder::new(params())
                .snrs_db(snrs)
                .payload_len(payload_len)
                .profiles(profs.iter().map(|&(c, t)| profile(c, t)).collect())
                .seed(*seed)
                .build();
            SlotCapture::known_len(&s.params, s.samples, s.slot_start, payload_len)
        })
        .collect()
}

/// Field-by-field bit-exact comparison (`DecodedUser` carries floats, so
/// it deliberately has no `PartialEq`; exactness goes through `to_bits`).
fn assert_users_identical(a: &[DecodedUser], b: &[DecodedUser], ctx: &str) {
    assert_eq!(a.len(), b.len(), "{ctx}: user count diverged");
    for (k, (x, y)) in a.iter().zip(b).enumerate() {
        let ctx = format!("{ctx}, user {k}");
        assert_eq!(
            x.user.offset_bins.to_bits(),
            y.user.offset_bins.to_bits(),
            "{ctx}: offset_bins"
        );
        assert_eq!(x.user.frac.to_bits(), y.user.frac.to_bits(), "{ctx}: frac");
        assert_eq!(x.user.mag.to_bits(), y.user.mag.to_bits(), "{ctx}: mag");
        assert_eq!(
            x.user.channel.re.to_bits(),
            y.user.channel.re.to_bits(),
            "{ctx}: channel.re"
        );
        assert_eq!(
            x.user.channel.im.to_bits(),
            y.user.channel.im.to_bits(),
            "{ctx}: channel.im"
        );
        assert_eq!(
            x.user.phase_slope.map(f64::to_bits),
            y.user.phase_slope.map(f64::to_bits),
            "{ctx}: phase_slope"
        );
        assert_eq!(
            x.user.timing_chips.to_bits(),
            y.user.timing_chips.to_bits(),
            "{ctx}: timing_chips"
        );
        assert_eq!(x.user.support, y.user.support, "{ctx}: support");
        assert_eq!(x.symbols, y.symbols, "{ctx}: symbols");
        assert_eq!(x.sync_errors, y.sync_errors, "{ctx}: sync_errors");
        assert_eq!(x.erasures, y.erasures, "{ctx}: erasures");
        assert_eq!(x.frame, y.frame, "{ctx}: frame");
        assert_eq!(x.frame_error, y.frame_error, "{ctx}: frame_error");
    }
}

/// The acceptance property: batch decoding with N worker threads is
/// bit-identical to the sequential (threads = 1) decode, slot for slot,
/// user for user, float for float.
#[test]
fn parallel_decode_matches_sequential() {
    let slots = seeded_slots(6);
    let dec = ChoirDecoder::new(params());
    let baseline = dec.decode_slots_with_pool(&slots, ThreadPool::sequential());
    assert!(
        baseline.iter().any(|r| r.ok_users().count() >= 2),
        "workload too easy to be a meaningful determinism probe"
    );
    for threads in [2, 4, 7] {
        let parallel = dec.decode_slots_with_pool(&slots, ThreadPool::with_threads(threads));
        assert_eq!(baseline.len(), parallel.len());
        for (i, (s, p)) in baseline.iter().zip(&parallel).enumerate() {
            let ctx = format!("threads={threads}, slot {i}");
            assert_eq!(s.error, p.error, "{ctx}: error status diverged");
            assert_users_identical(&s.users, &p.users, &ctx);
        }
    }
}

/// Intra-slot parallelism (the estimator's boundary scan) must also be
/// bit-identical: attaching a pool to the decoder changes wall-clock
/// behaviour, never results.
#[test]
fn pooled_estimator_matches_sequential() {
    let slots = seeded_slots(6);
    let plain = ChoirDecoder::new(params());
    let pooled = ChoirDecoder::new(params()).with_pool(ThreadPool::with_threads(4));
    for (i, slot) in slots.iter().enumerate().take(3) {
        let a = plain.try_decode(&slot.samples, slot.slot_start, slot.num_data_symbols);
        let b = pooled.try_decode(&slot.samples, slot.slot_start, slot.num_data_symbols);
        match (a, b) {
            (Ok(ua), Ok(ub)) => assert_users_identical(&ua, &ub, &format!("slot {i}")),
            (Err(ea), Err(eb)) => assert_eq!(ea, eb),
            (a, b) => panic!("slot {i}: outcome diverged: {a:?} vs {b:?}"),
        }
    }
}

/// Bit-exact golden pin of the 8 seeded scenarios against a captured
/// reference decode (`tests/golden_seeded.txt`). The offset-search rewrite
/// (scratch workspaces, cached bases, incremental Gram least-squares) is
/// required to leave the decoded streams *byte-for-byte* unchanged — every
/// estimate is compared via `to_bits`, every symbol and payload byte
/// exactly. Regenerate the capture after an intentional numerics change:
///
/// `cargo run --release -p choir-core --example golden_dump > crates/choir-core/tests/golden_seeded.txt`
#[test]
fn seeded_scenarios_match_golden_capture() {
    use std::fmt::Write as _;
    const GOLDEN: &str = include_str!("golden_seeded.txt");
    let slots = seeded_slots(6);
    let dec = ChoirDecoder::new(params());
    let results = dec.decode_slots_with_pool(&slots, ThreadPool::sequential());
    let mut rendered = String::new();
    for (i, r) in results.iter().enumerate() {
        writeln!(
            rendered,
            "slot {i}: {} users, error={:?}",
            r.users.len(),
            r.error
        )
        .unwrap();
        for (j, u) in r.users.iter().enumerate() {
            writeln!(
                rendered,
                "  u{j} offset={:#018x} frac={:#018x} timing={:#018x}",
                u.user.offset_bins.to_bits(),
                u.user.frac.to_bits(),
                u.user.timing_chips.to_bits()
            )
            .unwrap();
            writeln!(rendered, "  u{j} symbols={:?}", u.symbols).unwrap();
            match &u.frame {
                Some(f) => writeln!(
                    rendered,
                    "  u{j} crc_ok={} payload={:?}",
                    f.crc_ok, f.payload
                )
                .unwrap(),
                None => writeln!(rendered, "  u{j} frame=None err={:?}", u.frame_error).unwrap(),
            }
        }
    }
    assert_eq!(
        rendered.trim_end(),
        GOLDEN.trim_end(),
        "decoded streams diverged from the golden capture — if the change \
         is an intentional numerics change, regenerate via the golden_dump \
         example; otherwise this is a hot-path regression"
    );
}
