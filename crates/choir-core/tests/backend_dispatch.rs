//! Cross-backend determinism: decoded bitstreams must be identical no
//! matter which DSP backend `choir_dsp::backend` dispatches to.
//!
//! The SIMD backends are built to a 0-ULP policy (no FMA, ordered
//! reductions, exact sign flips — see `choir_dsp::backend`), so forcing
//! each backend reported by `available()` over the eight seeded golden
//! scenarios must reproduce `tests/golden_seeded.txt` byte for byte:
//! same offsets, same symbols, same payloads, same CRC verdicts. Each
//! backend decodes on a fresh thread so per-thread caches (tone bases,
//! scratch arenas) cannot carry state between runs — they are
//! backend-independent by design, and this test would catch a violation
//! of that too.

use choir_channel::impairments::HardwareProfile;
use choir_channel::scenario::ScenarioBuilder;
use choir_core::{ChoirDecoder, SlotCapture};
use choir_dsp::backend;
use choir_pool::ThreadPool;
use lora_phy::params::PhyParams;
use std::fmt::Write as _;

fn params() -> PhyParams {
    PhyParams::default() // SF8, 125 kHz, CR4/8
}

fn profile(cfo_bins: f64, toff_symbols: f64) -> HardwareProfile {
    let bin_hz = 125e3 / 256.0;
    HardwareProfile {
        cfo_hz: cfo_bins * bin_hz,
        timing_offset_symbols: toff_symbols,
        phase: 1.0,
        cfo_jitter_hz: 0.0,
        timing_jitter_symbols: 0.0,
    }
}

/// The same eight seeded multi-user scenarios `parallel.rs` pins against
/// the golden capture.
fn seeded_slots(payload_len: usize) -> Vec<SlotCapture> {
    type Scenario = (&'static [f64], &'static [(f64, f64)], u64);
    let configs: [Scenario; 8] = [
        (&[20.0, 17.0], &[(2.3, 0.1), (-7.6, 0.32)], 31),
        (&[19.0, 16.0], &[(6.4, 0.37), (-11.7, 0.43)], 32),
        (&[21.0, 15.0], &[(0.8, 0.05), (5.5, 0.21)], 33),
        (&[18.0, 18.0], &[(-3.2, 0.12), (9.1, 0.4)], 34),
        (
            &[20.0, 17.0, 14.0],
            &[(2.3, 0.1), (-7.6, 0.32), (12.4, 0.18)],
            35,
        ),
        (
            &[19.0, 18.0, 17.0],
            &[(4.4, 0.25), (-5.9, 0.07), (10.2, 0.33)],
            36,
        ),
        (&[22.0], &[(1.5, 0.2)], 37),
        (&[16.0, 16.0], &[(-9.3, 0.45), (7.7, 0.02)], 38),
    ];
    configs
        .iter()
        .map(|(snrs, profs, seed)| {
            let s = ScenarioBuilder::new(params())
                .snrs_db(snrs)
                .payload_len(payload_len)
                .profiles(profs.iter().map(|&(c, t)| profile(c, t)).collect())
                .seed(*seed)
                .build();
            SlotCapture::known_len(&s.params, s.samples, s.slot_start, payload_len)
        })
        .collect()
}

/// Decodes the golden workload with `kind` forced, on a fresh thread,
/// and renders the result in the golden-capture format. Returns the
/// join result so the caller (a test) surfaces any panic.
fn decode_with_backend(kind: backend::BackendKind) -> std::thread::Result<String> {
    let handle = std::thread::spawn(move || {
        backend::force(kind);
        let slots = seeded_slots(6);
        let dec = ChoirDecoder::new(params());
        let results = dec.decode_slots_with_pool(&slots, ThreadPool::sequential());
        let mut rendered = String::new();
        // Writing to a String is infallible.
        for (i, r) in results.iter().enumerate() {
            let _ = writeln!(
                rendered,
                "slot {i}: {} users, error={:?}",
                r.users.len(),
                r.error
            );
            for (j, u) in r.users.iter().enumerate() {
                let _ = writeln!(
                    rendered,
                    "  u{j} offset={:#018x} frac={:#018x} timing={:#018x}",
                    u.user.offset_bins.to_bits(),
                    u.user.frac.to_bits(),
                    u.user.timing_chips.to_bits()
                );
                let _ = writeln!(rendered, "  u{j} symbols={:?}", u.symbols);
                match &u.frame {
                    Some(f) => {
                        let _ = writeln!(
                            rendered,
                            "  u{j} crc_ok={} payload={:?}",
                            f.crc_ok, f.payload
                        );
                    }
                    None => {
                        let _ = writeln!(rendered, "  u{j} frame=None err={:?}", u.frame_error);
                    }
                }
            }
        }
        rendered
    });
    let rendered = handle.join();
    backend::reset();
    rendered
}

/// Every available backend — scalar oracle, portable, and whatever
/// vector ISA the host offers — reproduces the committed golden capture
/// exactly.
#[test]
fn golden_capture_identical_across_all_backends() {
    const GOLDEN: &str = include_str!("golden_seeded.txt");
    let kinds = backend::available();
    assert!(
        kinds.len() >= 2,
        "expected at least the scalar oracle and the portable fallback"
    );
    for kind in kinds {
        let rendered = decode_with_backend(kind).expect("decode thread panicked");
        assert_eq!(
            rendered.trim_end(),
            GOLDEN.trim_end(),
            "decoded bitstream diverged from the golden capture under the \
             {} backend — a kernel broke the 0-ULP policy",
            kind.name()
        );
    }
}
