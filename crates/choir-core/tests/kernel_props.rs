//! Bit-identity property tests for the allocation-free offset-search
//! kernel: every fast path introduced by the scratch-workspace /
//! cached-basis / incremental-Gram rewrite is pitted against a
//! naive-recompute reference (fresh buffers, full rebuilds — the
//! pre-change behaviour) on random multi-user windows. The contract is
//! *bit* identity, not tolerance: `to_bits` on every float. Windows carry
//! 1–4 users with near-far amplitude ratios up to 20 dB plus additive
//! noise, so the kernels are exercised far from the easy orthogonal case.

use choir_core::estimator::{EstimatorConfig, GramFit, OffsetEstimator};
use choir_dsp::complex::{c64, C64};
use choir_dsp::fft::FftPlan;
use choir_dsp::linalg::{least_squares, residual_energy};
use choir_dsp::resample::{fractional_delay, integer_shift, sinc};
use proptest::prelude::*;

const N: usize = 256; // chips per symbol at the default SF8

/// One transmitter: dechirped-domain tone position, linear amplitude and
/// carrier phase. Amplitudes spanning 0.1..1.0 give near-far ratios up
/// to 20 dB.
type User = (f64, f64, f64);

fn arb_users() -> impl Strategy<Value = Vec<User>> {
    prop::collection::vec(
        (
            1.0f64..(N as f64 - 1.0),
            0.1f64..1.0,
            0.0f64..std::f64::consts::TAU,
        ),
        1..5,
    )
}

fn arb_noise() -> impl Strategy<Value = Vec<(f64, f64)>> {
    prop::collection::vec((-0.05f64..0.05, -0.05f64..0.05), N..N + 1)
}

/// Synthesises the dechirped window `y = Σ h_u e^{j2π f_u t / N} + noise`.
fn window(users: &[User], noise: &[(f64, f64)]) -> Vec<C64> {
    (0..N)
        .map(|t| {
            let mut acc = c64(noise[t].0, noise[t].1);
            for &(f, mag, phase) in users {
                let w = 2.0 * std::f64::consts::PI * f * t as f64 / N as f64;
                acc += C64::from_polar(mag, phase) * C64::cis(w);
            }
            acc
        })
        .collect()
}

/// The exact basis formula the estimator synthesises, rebuilt naively.
/// Tone synthesis owns its deterministic sincos (not libm), so the
/// naive reference replays that same kernel.
fn fresh_bases(freqs: &[f64]) -> Vec<Vec<C64>> {
    freqs
        .iter()
        .map(|&f| {
            let w = 2.0 * std::f64::consts::PI * f / N as f64;
            (0..N)
                .map(|t| choir_dsp::backend::sincos::cis(w * t as f64))
                .collect()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // The incremental [`GramFit`] — one long-lived evaluator whose Gram
    // rows/columns update only for moved coordinates — must agree bit for
    // bit with a naive reference that rebuilds the whole system from
    // scratch at every probe, across a CCD-style probe walk that moves
    // one coordinate at a time.
    #[test]
    fn incremental_gram_fit_matches_fresh_rebuild(
        users in arb_users(),
        noise in arb_noise(),
        walk in prop::collection::vec((0usize..4, -0.5f64..0.5), 1..12),
    ) {
        let y = window(&users, &noise);
        let k = users.len();
        let mut x: Vec<f64> = users.iter().map(|u| u.0).collect();
        let mut fast = GramFit::new(N, &y, k);
        prop_assert_eq!(
            fast.eval(&x).to_bits(),
            GramFit::new(N, &y, k).eval(&x).to_bits(),
            "priming probe diverged"
        );
        for (step, &(coord, delta)) in walk.iter().enumerate() {
            let i = coord % k;
            x[i] = users[i].0 + delta;
            let incremental = fast.eval(&x);
            // The reference pays the full O(K²·N) rebuild every probe —
            // exactly what `refine` did before the rewrite.
            let rebuilt = GramFit::new(N, &y, k).eval(&x);
            prop_assert_eq!(
                incremental.to_bits(),
                rebuilt.to_bits(),
                "probe {} (coord {}, delta {}): {} vs {}",
                step, i, delta, incremental, rebuilt
            );
        }
    }

    // `OffsetEstimator::fit` now serves basis columns from the per-thread
    // LRU and solves through the `_refs` entry points; the result must be
    // bit-identical to the naive path (fresh `Vec` bases, the original
    // allocating `least_squares`/`residual_energy`).
    #[test]
    fn cached_fit_matches_naive_least_squares(
        users in arb_users(),
        noise in arb_noise(),
    ) {
        let est = OffsetEstimator::new(N, EstimatorConfig::default());
        let y = window(&users, &noise);
        let freqs: Vec<f64> = users.iter().map(|u| u.0).collect();
        let (channels, resid) = est.fit(&y, &freqs);
        let bases = fresh_bases(&freqs);
        match least_squares(&bases, &y) {
            Some(ref_channels) => {
                let ref_resid = residual_energy(&bases, &ref_channels, &y);
                prop_assert_eq!(channels.len(), ref_channels.len());
                for (a, b) in channels.iter().zip(&ref_channels) {
                    prop_assert_eq!(a.re.to_bits(), b.re.to_bits());
                    prop_assert_eq!(a.im.to_bits(), b.im.to_bits());
                }
                prop_assert_eq!(resid.to_bits(), ref_resid.to_bits());
            }
            None => {
                // Singular system: the estimator reports the worst-case
                // residual (full window energy) and zero channels.
                prop_assert_eq!(resid.to_bits(), choir_dsp::complex::energy(&y).to_bits());
                prop_assert!(channels.iter().all(|c| c.re == 0.0 && c.im == 0.0));
            }
        }
    }

    // The workspace-backed `padded_spectrum` (checkout + `_into` FFT) must
    // be bit-identical to the allocating `forward_padded` it replaced.
    #[test]
    fn workspace_padded_spectrum_matches_allocating_fft(
        users in arb_users(),
        noise in arb_noise(),
    ) {
        let est = OffsetEstimator::new(N, EstimatorConfig::default());
        let y = window(&users, &noise);
        let fast = est.padded_spectrum(&y);
        let reference = FftPlan::new(N * est.config().pad).forward_padded(&y);
        prop_assert_eq!(fast.len(), reference.len());
        for (a, b) in fast.iter().zip(&reference) {
            prop_assert_eq!(a.re.to_bits(), b.re.to_bits());
            prop_assert_eq!(a.im.to_bits(), b.im.to_bits());
        }
    }

    // `fractional_delay` hoists the windowed-sinc kernel out of the
    // per-sample loop (it depends only on the fractional part); the
    // output must match the per-sample recomputation it replaced, bit
    // for bit.
    #[test]
    fn hoisted_sinc_kernel_matches_per_sample_recompute(
        users in arb_users(),
        noise in arb_noise(),
        delay in -3.0f64..3.0,
    ) {
        let x = window(&users, &noise);
        let taps = 8usize;
        let fast = fractional_delay(&x, delay, taps);
        // Pre-change reference: recompute sinc·Hann inside the sample loop.
        let int_part = delay.floor();
        let frac = delay - int_part;
        let int_shift_amt = int_part as i64;
        let reference: Vec<C64> = if frac.abs() < 1e-12 {
            integer_shift(&x, int_shift_amt)
        } else {
            let t = taps as i64;
            (0..N as i64)
                .map(|i| {
                    let mut acc = C64::ZERO;
                    for k in -t..=t {
                        let src = i - int_shift_amt - k;
                        if src < 0 || src >= N as i64 {
                            continue;
                        }
                        let u = k as f64 - frac;
                        let s = sinc(u);
                        let w = 0.5
                            + 0.5 * (std::f64::consts::PI * u / (t as f64 + 1.0)).cos();
                        acc += x[src as usize].scale(s * w.max(0.0));
                    }
                    acc
                })
                .collect()
        };
        for (i, (a, b)) in fast.iter().zip(&reference).enumerate() {
            prop_assert_eq!(a.re.to_bits(), b.re.to_bits(), "sample {} re", i);
            prop_assert_eq!(a.im.to_bits(), b.im.to_bits(), "sample {} im", i);
        }
    }
}
