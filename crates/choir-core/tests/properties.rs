//! Property-based tests for the Choir decoder's estimation core.

use choir_core::cluster::{circular_dist, circular_mean};
use choir_core::estimator::{EstimatorConfig, OffsetEstimator};
use choir_dsp::complex::C64;
use lora_phy::chirp::symbol_sample;
use proptest::prelude::*;

const N: usize = 128;

fn chirp_with_offset(f: f64, h: C64, n: usize) -> Vec<C64> {
    (0..n)
        .map(|t| {
            let s = symbol_sample(n, 0, t as f64);
            let rot = C64::cis(2.0 * std::f64::consts::PI * f * t as f64 / n as f64);
            h * s * rot
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn single_offset_recovered_anywhere_in_alphabet(
        f in 1.0f64..127.0,
        mag in 0.3f64..3.0,
        phase in 0.0f64..std::f64::consts::TAU,
    ) {
        let est = OffsetEstimator::new(N, EstimatorConfig::default());
        let h = C64::from_polar(mag, phase);
        let w = chirp_with_offset(f, h, N);
        let comps = est.estimate(&w);
        prop_assert!(!comps.is_empty());
        let best = comps
            .iter()
            .map(|c| circular_dist(c.freq_bins, f, N as f64))
            .fold(f64::INFINITY, f64::min);
        prop_assert!(best < 5e-3, "offset error {best} at f={f}");
        // Channel magnitude recovered too.
        let c = comps
            .iter()
            .min_by(|a, b| {
                circular_dist(a.freq_bins, f, N as f64)
                    .total_cmp(&circular_dist(b.freq_bins, f, N as f64))
            })
            .unwrap();
        prop_assert!((c.channel.abs() - mag).abs() / mag < 0.02);
    }

    #[test]
    fn two_well_separated_offsets_recovered(
        f1 in 5.0f64..50.0,
        gap in 8.0f64..60.0,
        m2 in 0.3f64..1.0,
    ) {
        let est = OffsetEstimator::new(N, EstimatorConfig::default());
        let f2 = f1 + gap;
        let mut w = chirp_with_offset(f1, C64::ONE, N);
        for (a, b) in w.iter_mut().zip(chirp_with_offset(f2, C64::from_polar(m2, 1.0), N)) {
            *a += b;
        }
        let comps = est.estimate(&w);
        prop_assert!(comps.len() >= 2, "found {}", comps.len());
        for f in [f1, f2] {
            let best = comps
                .iter()
                .map(|c| circular_dist(c.freq_bins, f, N as f64))
                .fold(f64::INFINITY, f64::min);
            prop_assert!(best < 0.02, "err {best} at {f}");
        }
    }

    #[test]
    fn reconstruction_matches_input(f in 1.0f64..127.0) {
        let est = OffsetEstimator::new(N, EstimatorConfig::default());
        let w = chirp_with_offset(f, C64::from_polar(1.0, 0.4), N);
        let comps = est.estimate(&w);
        let recon = est.reconstruct(&comps);
        let err: f64 = w.iter().zip(&recon).map(|(a, b)| (a - b).norm_sqr()).sum();
        let pow: f64 = w.iter().map(|z| z.norm_sqr()).sum();
        prop_assert!(err / pow < 1e-3, "relative residual {}", err / pow);
    }

    #[test]
    fn circular_dist_axioms(a in 0.0f64..256.0, b in 0.0f64..256.0) {
        let m = 256.0;
        let d = circular_dist(a, b, m);
        prop_assert!(d >= 0.0 && d <= m / 2.0 + 1e-12);
        prop_assert!((circular_dist(b, a, m) - d).abs() < 1e-12);
        prop_assert!(circular_dist(a, a, m) < 1e-12);
        // Shift invariance.
        let d2 = circular_dist((a + 17.3) % m, (b + 17.3) % m, m);
        prop_assert!((d - d2).abs() < 1e-9);
    }

    #[test]
    fn circular_mean_near_cluster(center in 0.0f64..256.0, spread in 0.01f64..2.0) {
        let m = 256.0;
        let vals: Vec<f64> = (-2..=2)
            .map(|k| (center + k as f64 * spread / 2.0).rem_euclid(m))
            .collect();
        let mean = circular_mean(&vals, m);
        prop_assert!(circular_dist(mean, center, m) < spread + 1e-9);
    }
}
