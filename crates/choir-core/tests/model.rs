//! Model-checked suite for the per-stage profiling counters.
//!
//! Drives the real `choir_core::profile` write path (`bill`) and the
//! `snapshot_and_reset_ns` swap-handoff under the `choir-sync` schedule
//! explorer. Compiled only under `RUSTFLAGS="--cfg choir_model"`
//! (`cargo xtask ci model-check`).
//!
//! The totals are process-global, so the tests serialise on a local
//! mutex and reset the counters at the top of every schedule.
#![cfg(choir_model)]

use choir_core::profile::{bill, snapshot_and_reset_ns, Stage};
use choir_sync::model::{explore, Config};
use choir_sync::thread;

/// Serialises the tests in this binary: they all mutate the
/// process-global stage totals.
fn serial() -> std::sync::MutexGuard<'static, ()> {
    static GUARD: std::sync::Mutex<()> = std::sync::Mutex::new(());
    GUARD
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Concurrent bills from pool workers are never lost: whatever the
/// interleaving of the `fetch_add`s, the post-join snapshot sees the
/// exact sum per stage, and untouched stages stay zero.
#[test]
fn concurrent_bills_accumulate_without_loss() {
    let _s = serial();
    let report = explore(Config::new(400), || {
        let _ = snapshot_and_reset_ns();
        thread::scope(|s| {
            s.spawn(|| {
                bill(Stage::Refine, 3);
                bill(Stage::Sic, 10);
            });
            s.spawn(|| {
                bill(Stage::Refine, 5);
                bill(Stage::Demod, 7);
            });
        });
        let snap = snapshot_and_reset_ns();
        assert_eq!(snap[Stage::Refine as usize], 8, "a refine bill was lost");
        assert_eq!(snap[Stage::Sic as usize], 10, "the sic bill was lost");
        assert_eq!(snap[Stage::Demod as usize], 7, "the demod bill was lost");
        assert_eq!(
            snap[Stage::Dechirp as usize],
            0,
            "billed to the wrong stage"
        );
    });
    assert!(
        report.distinct >= 200,
        "expected broad bill-interleaving coverage, got {report:?}"
    );
}

/// A snapshot racing live billers conserves every nanosecond: each bill
/// lands in exactly one snapshot (the racing one or the final one),
/// never zero, never both — per stage and in total.
#[test]
fn snapshot_racing_bills_conserves_every_nanosecond() {
    let _s = serial();
    let report = explore(Config::new(500), || {
        let _ = snapshot_and_reset_ns();
        let mut mid = [0u64; choir_core::profile::NUM_STAGES];
        thread::scope(|s| {
            s.spawn(|| {
                bill(Stage::Ingest, 100);
                bill(Stage::Detect, 1);
                bill(Stage::Ingest, 10);
            });
            // Races the biller: may capture any prefix of its bills.
            mid = snapshot_and_reset_ns();
        });
        let rest = snapshot_and_reset_ns();
        assert_eq!(
            mid[Stage::Ingest as usize] + rest[Stage::Ingest as usize],
            110,
            "an ingest bill was dropped or double-counted across snapshots"
        );
        assert_eq!(
            mid[Stage::Detect as usize] + rest[Stage::Detect as usize],
            1,
            "the detect bill was dropped or double-counted across snapshots"
        );
        // The racing snapshot must capture a *prefix-consistent* view per
        // stage: only 0, 100, or 110 are reachable ingest captures.
        let got = mid[Stage::Ingest as usize];
        assert!(
            got == 0 || got == 100 || got == 110,
            "snapshot observed a torn ingest total: {got}"
        );
    });
    assert!(
        report.distinct >= 200,
        "expected broad snapshot-vs-bill coverage, got {report:?}"
    );
}
