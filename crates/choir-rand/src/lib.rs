//! # choir-rand — vendored PRNG shim for offline builds
//!
//! The Choir workspace must build and test with **zero crates.io
//! dependencies** (the CI and research containers have no network access).
//! This crate re-implements the small slice of the [`rand`](https://crates.io/crates/rand)
//! API that the workspace actually uses, so every consumer can keep writing
//! `use rand::{Rng, SeedableRng}` via a renamed path dependency
//! (`rand = { package = "choir-rand", path = ... }` in the workspace
//! manifest).
//!
//! The generator behind [`rngs::StdRng`] is **xoshiro256++** seeded through
//! SplitMix64 — a well-studied, fast, non-cryptographic PRNG that is more
//! than adequate for Monte-Carlo channel simulation. It is *not* a
//! reproduction of `rand`'s ChaCha12 stream: seeds produce different (but
//! still deterministic) sequences than upstream `rand` would.
//!
//! ```
//! use choir_rand::rngs::StdRng;
//! use choir_rand::{Rng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let x: f64 = rng.gen_range(0.0..1.0);
//! assert!((0.0..1.0).contains(&x));
//! // Same seed, same stream.
//! let mut rng2 = StdRng::seed_from_u64(7);
//! let _: f64 = rng2.gen_range(0.0..1.0);
//! ```

#![deny(missing_docs)]

/// Low-level source of randomness: a stream of `u64` words.
///
/// Mirrors `rand::RngCore` minus the error-handling variants the workspace
/// never uses.
pub trait RngCore {
    /// Returns the next 64 random bits of the stream.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from an RNG via [`Rng::gen`],
/// mirroring `rand`'s `Standard` distribution.
pub trait StandardSample: Sized {
    /// Draws one uniformly distributed value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {
        $(impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        })*
    };
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits scaled into [0, 1) — the standard mapping.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that [`Rng::gen_range`] accepts, mirroring `rand`'s `SampleRange`.
pub trait SampleRange {
    /// Element type produced by sampling this range.
    type Output;
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        debug_assert!(self.start < self.end, "gen_range: empty f64 range");
        let u = f64::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange for core::ops::RangeInclusive<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        debug_assert!(lo <= hi, "gen_range: empty inclusive f64 range");
        // Uses the half-open mapping; the single missing endpoint has
        // measure zero and the workspace only uses this for SNR intervals.
        lo + f64::sample_standard(rng) * (hi - lo)
    }
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {
        $(
            impl SampleRange for core::ops::Range<$t> {
                type Output = $t;
                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "gen_range: empty integer range");
                    let span = (self.end - self.start) as u64;
                    self.start + uniform_u64(rng, span) as $t
                }
            }
            impl SampleRange for core::ops::RangeInclusive<$t> {
                type Output = $t;
                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "gen_range: empty inclusive integer range");
                    let span = (hi - lo) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo + uniform_u64(rng, span + 1) as $t
                }
            }
        )*
    };
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

/// Uniform draw from `[0, span)` via Lemire-style rejection to avoid
/// modulo bias. `span` must be non-zero.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Rejection zone: values below `zone` would fold unevenly.
    let zone = span.wrapping_neg() % span;
    loop {
        let v = rng.next_u64();
        if v >= zone {
            return v % span;
        }
    }
}

/// High-level convenience methods over any [`RngCore`], mirroring
/// `rand::Rng`. Blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range` (half-open or inclusive).
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool: p out of [0,1]");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs that can be constructed from a seed, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed via SplitMix64 expansion.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generator types, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic PRNG: **xoshiro256++**.
    ///
    /// Not the same stream as upstream `rand::rngs::StdRng` (ChaCha12), but
    /// deterministic per seed, fast, and statistically sound for
    /// Monte-Carlo simulation (passes BigCrush in its published form).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn splitmix(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                Self::splitmix(&mut sm),
                Self::splitmix(&mut sm),
                Self::splitmix(&mut sm),
                Self::splitmix(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Slice helpers, mirroring `rand::seq`.
pub mod seq {
    use super::RngCore;

    /// In-place random reordering of slices, mirroring
    /// `rand::seq::SliceRandom` (the `shuffle` subset).
    pub trait SliceRandom {
        /// Fisher–Yates shuffle driven by `rng`.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (super::uniform_u64(rng, i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn float_ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen_range(-3.0..7.5);
            assert!((-3.0..7.5).contains(&x));
            let y: f64 = rng.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn integer_ranges_cover_all_values() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "uniform draw missed a bucket");
        for _ in 0..1_000 {
            let v = rng.gen_range(3u8..=5);
            assert!((3..=5).contains(&v));
        }
    }

    #[test]
    fn gen_bool_frequency_tracks_p() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        let freq = hits as f64 / 20_000.0;
        assert!((freq - 0.25).abs() < 0.02, "freq {freq}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..64).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "shuffle left the slice in order (astronomically unlikely)"
        );
    }

    #[test]
    fn mean_of_uniform_is_half() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        assert!((sum / n as f64 - 0.5).abs() < 0.005);
    }
}
