//! Property-based tests for the channel substrate.

use choir_channel::impairments::{HardwareProfile, OscillatorModel};
use choir_channel::mix::{mix, MixConfig, Transmission};
use choir_channel::noise::{db_to_lin, lin_to_db};
use choir_channel::pathloss::LogDistance;
use choir_channel::scenario::ScenarioBuilder;
use choir_dsp::complex::C64;
use lora_phy::chirp::PacketWaveform;
use lora_phy::params::PhyParams;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn db_roundtrip(db in -120.0f64..60.0) {
        prop_assert!((lin_to_db(db_to_lin(db)) - db).abs() < 1e-9);
    }

    #[test]
    fn pathloss_monotone(d1 in 1.0f64..5000.0, d2 in 1.0f64..5000.0) {
        let m = LogDistance::urban();
        let (lo, hi) = if d1 < d2 { (d1, d2) } else { (d2, d1) };
        prop_assert!(m.loss_db(lo) <= m.loss_db(hi) + 1e-12);
    }

    #[test]
    fn pathloss_inverse_consistent(d in 1.0f64..5000.0) {
        let m = LogDistance::urban();
        let pl = m.loss_db(d);
        prop_assert!((m.distance_for_loss(pl) - d).abs() / d < 1e-9);
    }

    #[test]
    fn mix_is_linear_in_amplitude(amp in 0.1f64..10.0, sym in 0u16..128) {
        // Doubling a transmitter's amplitude doubles its (noise-free)
        // contribution sample by sample.
        let n = 128usize;
        let mk = |a: f64| Transmission {
            waveform: PacketWaveform::new(n, vec![sym]),
            channel: C64::ONE,
            amplitude: a,
            profile: HardwareProfile::ideal(),
            start_sample: 0.0,
        };
        let cfg = MixConfig { bw_hz: 125e3, noise_power: 0.0 };
        let mut rng = StdRng::seed_from_u64(1);
        let y1 = mix(&[mk(amp)], n, &cfg, &mut rng);
        let mut rng = StdRng::seed_from_u64(1);
        let y2 = mix(&[mk(2.0 * amp)], n, &cfg, &mut rng);
        for (a, b) in y1.iter().zip(&y2) {
            prop_assert!((b - a.scale(2.0)).abs() < 1e-9);
        }
    }

    #[test]
    fn superposition_of_two_transmitters(s1 in 0u16..128, s2 in 0u16..128) {
        // mix(A ∪ B) == mix(A) + mix(B) without noise/jitter.
        let n = 128usize;
        let mk = |sym: u16, cfo: f64| Transmission {
            waveform: PacketWaveform::new(n, vec![sym]),
            channel: C64::ONE,
            amplitude: 1.0,
            profile: HardwareProfile { cfo_hz: cfo, ..HardwareProfile::ideal() },
            start_sample: 0.0,
        };
        let cfg = MixConfig { bw_hz: 125e3, noise_power: 0.0 };
        let mut rng = StdRng::seed_from_u64(2);
        let both = mix(&[mk(s1, 300.0), mk(s2, -500.0)], n, &cfg, &mut rng);
        let mut rng = StdRng::seed_from_u64(2);
        let a = mix(&[mk(s1, 300.0)], n, &cfg, &mut rng);
        let mut rng = StdRng::seed_from_u64(2);
        let b = mix(&[mk(s2, -500.0)], n, &cfg, &mut rng);
        for i in 0..n {
            prop_assert!((both[i] - (a[i] + b[i])).abs() < 1e-9);
        }
    }

    #[test]
    fn oscillator_offsets_bounded(seed in any::<u64>()) {
        let m = OscillatorModel::default();
        let mut rng = StdRng::seed_from_u64(seed);
        let ppm = m.sample_ppm(&mut rng);
        prop_assert!(ppm.abs() <= m.max_ppm);
        let p = m.sample_profile(ppm, &mut rng);
        prop_assert!(p.timing_offset_symbols >= 0.0, "beacon delays are non-negative");
        prop_assert!((p.cfo_hz - m.cfo_hz(ppm)).abs() < 1e-9);
    }

    #[test]
    fn scenario_deterministic_and_sized(seed in any::<u64>(), k in 1usize..5) {
        let snrs = vec![12.0; k];
        let a = ScenarioBuilder::new(PhyParams::default()).snrs_db(&snrs).seed(seed).build();
        let b = ScenarioBuilder::new(PhyParams::default()).snrs_db(&snrs).seed(seed).build();
        prop_assert_eq!(a.users.len(), k);
        prop_assert_eq!(a.samples.len(), b.samples.len());
        for (x, y) in a.samples.iter().zip(&b.samples) {
            prop_assert_eq!(x, y);
        }
    }
}
