//! Multi-antenna receive channels for the MU-MIMO baseline (Sec. 9.5).
//!
//! Antennas on the paper's 3-antenna base station are spaced far enough
//! (and the urban scattering is rich enough) that per-antenna channels are
//! modelled i.i.d. Rayleigh around each transmitter's mean amplitude — the
//! standard assumption under which MU-MIMO can separate at most
//! `#antennas` streams.

use choir_dsp::complex::C64;
use rand::Rng;

use crate::fading::Fading;

/// Draws an `antennas × users` channel matrix with i.i.d. entries of the
/// given fading law (unit mean power). Entry `[a][u]` is antenna `a`'s
/// channel to user `u`.
pub fn array_channels<R: Rng>(
    antennas: usize,
    users: usize,
    fading: Fading,
    rng: &mut R,
) -> Vec<Vec<C64>> {
    (0..antennas)
        .map(|_| (0..users).map(|_| fading.sample(rng)).collect())
        .collect()
}

/// Condition-style diversity metric: the smallest pairwise "angle" between
/// user channel vectors across the array (1 = orthogonal, 0 = colinear).
/// MU-MIMO separation quality degrades as this approaches zero.
pub fn min_pairwise_separation(channels: &[Vec<C64>]) -> f64 {
    let antennas = channels.len();
    if antennas == 0 {
        return 1.0;
    }
    let users = channels[0].len();
    let col = |u: usize| -> Vec<C64> { (0..antennas).map(|a| channels[a][u]).collect() };
    let mut min_sep = 1.0f64;
    for i in 0..users {
        for j in (i + 1)..users {
            let (vi, vj) = (col(i), col(j));
            let dot: C64 = vi.iter().zip(&vj).map(|(a, b)| a * b.conj()).sum();
            let ni: f64 = vi.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt();
            let nj: f64 = vj.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt();
            if ni <= 0.0 || nj <= 0.0 {
                return 0.0;
            }
            let cos = (dot.abs() / (ni * nj)).min(1.0);
            min_sep = min_sep.min(((1.0 - cos * cos).max(0.0)).sqrt());
        }
    }
    min_sep
}

// Tests assert on exactly-representable values (0.0, bin centres).
#[allow(clippy::float_cmp)]
#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn shape_is_antennas_by_users() {
        let mut rng = StdRng::seed_from_u64(1);
        let ch = array_channels(3, 5, Fading::Rayleigh, &mut rng);
        assert_eq!(ch.len(), 3);
        assert!(ch.iter().all(|row| row.len() == 5));
    }

    #[test]
    fn entries_unit_mean_power() {
        let mut rng = StdRng::seed_from_u64(2);
        let ch = array_channels(100, 100, Fading::Rayleigh, &mut rng);
        let p: f64 = ch
            .iter()
            .flat_map(|r| r.iter())
            .map(|z| z.norm_sqr())
            .sum::<f64>()
            / 10_000.0;
        assert!((p - 1.0).abs() < 0.05, "power {p}");
    }

    #[test]
    fn separation_orthogonal_vs_colinear() {
        // Two users with orthogonal array responses.
        let ortho = vec![vec![C64::ONE, C64::ZERO], vec![C64::ZERO, C64::ONE]];
        assert!((min_pairwise_separation(&ortho) - 1.0).abs() < 1e-12);
        // Colinear: identical responses.
        let coli = vec![vec![C64::ONE, C64::ONE], vec![C64::ONE, C64::ONE]];
        assert!(min_pairwise_separation(&coli) < 1e-7);
    }

    #[test]
    fn random_channels_usually_well_separated() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut good = 0;
        for _ in 0..100 {
            let ch = array_channels(3, 2, Fading::Rayleigh, &mut rng);
            if min_pairwise_separation(&ch) > 0.3 {
                good += 1;
            }
        }
        assert!(good > 70, "only {good}/100 well-separated");
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(min_pairwise_separation(&[]), 1.0);
        let one_user = vec![vec![C64::ONE]];
        assert_eq!(min_pairwise_separation(&one_user), 1.0);
    }
}
