//! The superposition engine: renders what a single-antenna base station
//! actually receives when several impaired transmitters collide.
//!
//! Each transmitter's chirp waveform is evaluated *analytically* at
//! `rx_sample_time − its own (jittered) timing offset`, rotated by its own
//! (jittered) CFO, scaled by its channel, summed, and drowned in AWGN.
//! Because the waveform model ([`lora_phy::chirp`]) is exact at fractional
//! chip times, sub-sample timing offsets carry no interpolation error —
//! this is the IQ interface the paper's USRP gives Choir.

use choir_dsp::complex::C64;
use lora_phy::chirp::{symbol_sample, PacketWaveform};
use rand::Rng;

use crate::fading::gaussian;
use crate::impairments::HardwareProfile;
use crate::noise::add_awgn;

/// One transmitter's contribution to a capture.
#[derive(Clone, Debug)]
pub struct Transmission {
    /// The symbol waveform (preamble included).
    pub waveform: PacketWaveform,
    /// Complex channel coefficient (fading × phase), unit mean power.
    pub channel: C64,
    /// Amplitude relative to unit noise, `10^(SNR_dB/20)`.
    pub amplitude: f64,
    /// Hardware state for this packet.
    pub profile: HardwareProfile,
    /// Nominal slot start in receiver samples (the beacon-aligned slot
    /// boundary; the profile's timing offset shifts the actual start).
    pub start_sample: f64,
}

impl Transmission {
    /// Actual (offset) start of the packet in receiver samples.
    pub fn actual_start(&self) -> f64 {
        self.start_sample
            + self.profile.timing_offset_symbols * self.waveform.chips_per_symbol() as f64
    }
}

/// Mixer configuration.
#[derive(Clone, Copy, Debug)]
pub struct MixConfig {
    /// Bandwidth in Hz (= sample rate; 1 sample per chip).
    pub bw_hz: f64,
    /// AWGN power per complex sample (normalise to 1.0).
    pub noise_power: f64,
}

impl Default for MixConfig {
    fn default() -> Self {
        MixConfig {
            bw_hz: 125e3,
            noise_power: 1.0,
        }
    }
}

/// Renders `total_samples` of received baseband with every transmission
/// superimposed plus AWGN.
pub fn mix<R: Rng>(
    txs: &[Transmission],
    total_samples: usize,
    cfg: &MixConfig,
    rng: &mut R,
) -> Vec<C64> {
    let mut out = vec![C64::ZERO; total_samples];
    for tx in txs {
        render_into(&mut out, tx, cfg, rng);
    }
    if cfg.noise_power > 0.0 {
        add_awgn(rng, &mut out, cfg.noise_power);
    }
    out
}

/// Adds one transmission into an existing buffer (no noise). Public so the
/// multi-antenna path can reuse it with per-antenna channels.
pub fn render_into<R: Rng>(out: &mut [C64], tx: &Transmission, cfg: &MixConfig, rng: &mut R) {
    let n = tx.waveform.chips_per_symbol();
    let n_f = n as f64;
    let num_syms = tx.waveform.num_symbols();
    let h = tx.channel.scale(tx.amplitude);

    // Within-packet random walks (Fig. 7(c,d)): per-symbol CFO and timing
    // jitter around the constant profile values.
    let mut cfo_sym = Vec::with_capacity(num_syms);
    let mut toff_sym = Vec::with_capacity(num_syms);
    let mut cfo = tx.profile.cfo_hz;
    let mut toff = tx.profile.timing_offset_symbols;
    for _ in 0..num_syms {
        cfo_sym.push(cfo);
        toff_sym.push(toff);
        cfo += gaussian(rng) * tx.profile.cfo_jitter_hz;
        toff += gaussian(rng) * tx.profile.timing_jitter_symbols;
    }

    // Phase-continuous CFO rotation: within symbol j the carrier advances
    // at cfo_sym[j]; the accumulated phase carries across symbol
    // boundaries so jitter never introduces phase steps.
    let mut acc = tx.profile.phase;
    let symbols = tx.waveform.symbols();
    for (j, &sym) in symbols.iter().enumerate() {
        let nominal = tx.start_sample + j as f64 * n_f;
        let sym_start = nominal + toff_sym[j] * n_f;
        let first = sym_start.ceil().max(0.0) as usize;
        let last = ((sym_start + n_f).ceil().max(0.0) as usize).min(out.len());
        let inc = 2.0 * std::f64::consts::PI * cfo_sym[j] / cfg.bw_hz;
        for (i, slot) in out.iter_mut().enumerate().take(last).skip(first) {
            let tau = i as f64 - sym_start;
            if !(0.0..n_f).contains(&tau) {
                continue;
            }
            let s = symbol_sample(n, sym, tau);
            let rot = C64::cis(acc + inc * (i as f64 - nominal));
            *slot += h * s * rot;
        }
        acc += inc * n_f;
    }
}

/// Renders the same set of transmissions as seen by `num_antennas`
/// antennas, each with independent per-antenna channel coefficients
/// (`channels[a][t]` for antenna `a`, transmitter `t`) and independent
/// noise. Used by the MU-MIMO baseline and Choir+MIMO combining.
pub fn mix_array<R: Rng>(
    txs: &[Transmission],
    channels: &[Vec<C64>],
    total_samples: usize,
    cfg: &MixConfig,
    rng: &mut R,
) -> Vec<Vec<C64>> {
    channels
        .iter()
        .map(|per_tx| {
            assert_eq!(per_tx.len(), txs.len(), "mix_array: channel matrix shape");
            let antenna_txs: Vec<Transmission> = txs
                .iter()
                .zip(per_tx)
                .map(|(tx, &h)| Transmission {
                    channel: h,
                    ..tx.clone()
                })
                .collect();
            mix(&antenna_txs, total_samples, cfg, rng)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use choir_dsp::fft::fft;
    use lora_phy::chirp::base_downchirp;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const N: usize = 128;

    fn tx(symbols: Vec<u16>, amplitude: f64, profile: HardwareProfile, start: f64) -> Transmission {
        Transmission {
            waveform: PacketWaveform::new(N, symbols),
            channel: C64::ONE,
            amplitude,
            profile,
            start_sample: start,
        }
    }

    fn quiet() -> MixConfig {
        MixConfig {
            bw_hz: 125e3,
            noise_power: 0.0,
        }
    }

    fn peak_bin(window: &[C64]) -> (usize, f64) {
        let down = base_downchirp(N);
        let de: Vec<C64> = window.iter().zip(&down).map(|(a, b)| a * b).collect();
        let spec = fft(&de);
        spec.iter()
            .enumerate()
            .map(|(k, z)| (k, z.abs()))
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .unwrap()
    }

    #[test]
    fn ideal_single_tx_renders_exact_chirps() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = tx(vec![7, 100], 1.0, HardwareProfile::ideal(), 0.0);
        let out = mix(&[t], 2 * N, &quiet(), &mut rng);
        assert_eq!(peak_bin(&out[..N]).0, 7);
        assert_eq!(peak_bin(&out[N..]).0, 100);
        // Peak magnitude = N (coherent sum).
        assert!((peak_bin(&out[..N]).1 - N as f64).abs() < 1e-6);
    }

    #[test]
    fn amplitude_and_channel_scale_output() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut t = tx(vec![0], 3.0, HardwareProfile::ideal(), 0.0);
        t.channel = C64::from_polar(1.0, 1.2);
        let out = mix(&[t], N, &quiet(), &mut rng);
        let (_, h) = peak_bin(&out);
        assert!((h - 3.0 * N as f64).abs() < 1e-6);
    }

    #[test]
    fn cfo_shifts_peak_by_expected_bins() {
        let mut rng = StdRng::seed_from_u64(3);
        let bin_hz = 125e3 / N as f64; // 976.5625 Hz
        let mut p = HardwareProfile::ideal();
        p.cfo_hz = 3.0 * bin_hz; // exactly +3 bins
        let t = tx(vec![10], 1.0, p, 0.0);
        let out = mix(&[t], N, &quiet(), &mut rng);
        assert_eq!(peak_bin(&out).0, 13);
    }

    #[test]
    fn timing_offset_shifts_peak_negatively() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut p = HardwareProfile::ideal();
        p.timing_offset_symbols = 2.0 / N as f64; // delay of 2 chips
        let t = tx(vec![10, 10, 10], 1.0, p, 0.0);
        let out = mix(&[t], 3 * N, &quiet(), &mut rng);
        // Middle window avoids the leading edge.
        assert_eq!(peak_bin(&out[N..2 * N]).0, 8);
    }

    #[test]
    fn fractional_cfo_lands_between_bins() {
        let mut rng = StdRng::seed_from_u64(5);
        let bin_hz = 125e3 / N as f64;
        let mut p = HardwareProfile::ideal();
        p.cfo_hz = 20.4 * bin_hz;
        let t = tx(vec![0; 2], 1.0, p, 0.0);
        let out = mix(&[t], 2 * N, &quiet(), &mut rng);
        let down = base_downchirp(N);
        let de: Vec<C64> = out[..N].iter().zip(&down).map(|(a, b)| a * b).collect();
        let spec = choir_dsp::fft::FftPlan::new(10 * N).forward_padded(&de);
        let peaks = choir_dsp::peaks::find_peaks(&spec, &choir_dsp::peaks::PeakConfig::default());
        assert!((peaks[0].pos - 20.4).abs() < 0.05, "pos {}", peaks[0].pos);
    }

    #[test]
    fn two_colliding_txs_two_peaks() {
        let mut rng = StdRng::seed_from_u64(6);
        let bin = 125e3 / N as f64;
        let mut p1 = HardwareProfile::ideal();
        p1.cfo_hz = 0.2 * bin;
        let mut p2 = HardwareProfile::ideal();
        p2.cfo_hz = 50.6 * bin;
        let t1 = tx(vec![0], 1.0, p1, 0.0);
        let t2 = tx(vec![0], 0.8, p2, 0.0);
        let out = mix(&[t1, t2], N, &quiet(), &mut rng);
        let down = base_downchirp(N);
        let de: Vec<C64> = out.iter().zip(&down).map(|(a, b)| a * b).collect();
        let spec = choir_dsp::fft::FftPlan::new(10 * N).forward_padded(&de);
        let peaks = choir_dsp::peaks::find_peaks(&spec, &choir_dsp::peaks::PeakConfig::default());
        assert_eq!(peaks.len(), 2);
        assert!((peaks[0].pos - 0.2).abs() < 0.1);
        assert!((peaks[1].pos - 50.6).abs() < 0.1);
    }

    #[test]
    fn noise_power_measured() {
        let mut rng = StdRng::seed_from_u64(7);
        let out = mix(&[], 50_000, &MixConfig::default(), &mut rng);
        let p: f64 = out.iter().map(|z| z.norm_sqr()).sum::<f64>() / out.len() as f64;
        assert!((p - 1.0).abs() < 0.03, "noise power {p}");
    }

    #[test]
    fn packet_confined_to_its_extent() {
        let mut rng = StdRng::seed_from_u64(8);
        let t = tx(vec![5; 2], 1.0, HardwareProfile::ideal(), (3 * N) as f64);
        let out = mix(&[t], 8 * N, &quiet(), &mut rng);
        let pre: f64 = out[..3 * N].iter().map(|z| z.norm_sqr()).sum();
        let during: f64 = out[3 * N..5 * N].iter().map(|z| z.norm_sqr()).sum();
        let post: f64 = out[5 * N..].iter().map(|z| z.norm_sqr()).sum();
        assert!(pre < 1e-12);
        assert!(post < 1e-12);
        assert!((during - (2 * N) as f64).abs() < 1.0);
    }

    #[test]
    fn mix_array_shapes_and_channels() {
        let mut rng = StdRng::seed_from_u64(9);
        let t = tx(vec![1], 1.0, HardwareProfile::ideal(), 0.0);
        let channels = vec![vec![C64::ONE], vec![C64::from_polar(0.5, 0.3)]];
        let rxs = mix_array(&[t], &channels, N, &quiet(), &mut rng);
        assert_eq!(rxs.len(), 2);
        let (_, h0) = peak_bin(&rxs[0]);
        let (_, h1) = peak_bin(&rxs[1]);
        assert!((h1 / h0 - 0.5).abs() < 1e-6);
    }

    #[test]
    fn jitter_moves_offsets_slightly() {
        let mut rng = StdRng::seed_from_u64(10);
        let bin_hz = 125e3 / N as f64;
        let mut p = HardwareProfile::ideal();
        p.cfo_hz = 0.5 * bin_hz; // keep the peak away from the wrap at 0
        p.cfo_jitter_hz = 5.0; // exaggerated for the test
        let t = tx(vec![0; 20], 1.0, p, 0.0);
        let out = mix(&[t], 20 * N, &quiet(), &mut rng);
        // Measure per-symbol fractional peak drift over the packet.
        let down = base_downchirp(N);
        let pad = choir_dsp::fft::FftPlan::new(10 * N);
        let mut positions = Vec::new();
        for j in 0..20 {
            let de: Vec<C64> = out[j * N..(j + 1) * N]
                .iter()
                .zip(&down)
                .map(|(a, b)| a * b)
                .collect();
            let spec = pad.forward_padded(&de);
            let peaks =
                choir_dsp::peaks::find_peaks(&spec, &choir_dsp::peaks::PeakConfig::default());
            positions.push(peaks[0].pos);
        }
        let spread = positions.iter().cloned().fold(f64::MIN, f64::max)
            - positions.iter().cloned().fold(f64::MAX, f64::min);
        assert!(spread > 0.0, "jitter should move the peak a little");
        assert!(spread < 0.5, "jitter too large: {spread} bins");
    }
}
