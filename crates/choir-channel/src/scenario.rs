//! Collision scenario builder: one call to synthesise "K impaired LoRa
//! clients collide at these SNRs" with full ground truth — the workhorse
//! behind the Choir decoder's tests and every experiment in the harness.

use choir_dsp::complex::C64;
use lora_phy::chirp::PacketWaveform;
use lora_phy::frame::packet_symbols;
use lora_phy::params::PhyParams;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::fading::Fading;
use crate::impairments::{HardwareProfile, OscillatorModel};
use crate::mix::{mix, MixConfig, Transmission};
use crate::noise::db_to_lin;

/// Ground truth for one colliding user.
#[derive(Clone, Debug)]
pub struct UserGroundTruth {
    /// Transmitted payload bytes.
    pub payload: Vec<u8>,
    /// Full on-air symbol sequence (preamble + sync + data).
    pub symbols: Vec<u16>,
    /// Hardware profile used for this packet.
    pub profile: HardwareProfile,
    /// Complex channel coefficient.
    pub channel: C64,
    /// Amplitude relative to unit noise.
    pub amplitude: f64,
    /// Per-sample SNR in dB.
    pub snr_db: f64,
}

impl UserGroundTruth {
    /// The data symbols (after preamble and sync), which carry the frame.
    pub fn data_symbols(&self, params: &PhyParams) -> &[u16] {
        &self.symbols[params.preamble_len + 2..]
    }
}

/// A rendered collision with ground truth attached.
#[derive(Clone, Debug)]
pub struct CollisionScenario {
    /// PHY parameters shared by all users (same spreading factor — the
    /// regime Choir targets).
    pub params: PhyParams,
    /// Received baseband (unit-power AWGN included unless disabled).
    pub samples: Vec<C64>,
    /// Nominal slot start: the sample where packets nominally begin
    /// (actual starts differ by each user's timing offset).
    pub slot_start: usize,
    /// Per-user ground truth, in builder order.
    pub users: Vec<UserGroundTruth>,
}

/// Configurable builder for [`CollisionScenario`].
#[derive(Clone, Debug)]
pub struct ScenarioBuilder {
    params: PhyParams,
    snrs_db: Vec<f64>,
    payload_len: usize,
    shared_payload: Option<Vec<u8>>,
    oscillator: OscillatorModel,
    fading: Fading,
    profiles: Option<Vec<HardwareProfile>>,
    noise: bool,
    guard_symbols: usize,
    seed: u64,
}

impl ScenarioBuilder {
    /// Starts a builder for the given PHY parameters.
    pub fn new(params: PhyParams) -> Self {
        ScenarioBuilder {
            params,
            snrs_db: vec![10.0, 10.0],
            payload_len: 8,
            shared_payload: None,
            oscillator: OscillatorModel::default(),
            fading: Fading::None,
            profiles: None,
            noise: true,
            guard_symbols: 2,
            seed: 0,
        }
    }

    /// Sets one SNR (dB) per colliding user (also sets the user count).
    pub fn snrs_db(mut self, snrs: &[f64]) -> Self {
        self.snrs_db = snrs.to_vec();
        self
    }

    /// Sets the random payload length in bytes.
    pub fn payload_len(mut self, len: usize) -> Self {
        self.payload_len = len;
        self
    }

    /// Makes every user transmit this exact payload (the Sec. 7 "teams of
    /// sensors transmit identical data" regime).
    pub fn shared_payload(mut self, payload: Vec<u8>) -> Self {
        self.shared_payload = Some(payload);
        self
    }

    /// Overrides the oscillator model.
    pub fn oscillator(mut self, m: OscillatorModel) -> Self {
        self.oscillator = m;
        self
    }

    /// Sets the small-scale fading model (default: none / phase-only).
    pub fn fading(mut self, f: Fading) -> Self {
        self.fading = f;
        self
    }

    /// Pins exact hardware profiles (one per user), bypassing the
    /// oscillator model — for tests that need controlled offsets.
    pub fn profiles(mut self, p: Vec<HardwareProfile>) -> Self {
        self.profiles = Some(p);
        self
    }

    /// Disables AWGN (offset-estimation accuracy tests).
    pub fn no_noise(mut self) -> Self {
        self.noise = false;
        self
    }

    /// RNG seed — every scenario is fully reproducible.
    pub fn seed(mut self, s: u64) -> Self {
        self.seed = s;
        self
    }

    /// Renders the scenario.
    pub fn build(self) -> CollisionScenario {
        let mut rng = StdRng::seed_from_u64(
            self.seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(1),
        );
        let n = self.params.samples_per_symbol();
        let slot_start = self.guard_symbols * n;

        if let Some(p) = &self.profiles {
            assert_eq!(
                p.len(),
                self.snrs_db.len(),
                "profiles() must match the number of SNRs"
            );
        }

        let mut users = Vec::with_capacity(self.snrs_db.len());
        let mut txs = Vec::with_capacity(self.snrs_db.len());
        let mut max_syms = 0usize;
        for (i, &snr) in self.snrs_db.iter().enumerate() {
            let payload = match &self.shared_payload {
                Some(p) => p.clone(),
                None => (0..self.payload_len).map(|_| rng.gen::<u8>()).collect(),
            };
            let symbols = packet_symbols(&self.params, &payload);
            max_syms = max_syms.max(symbols.len());
            let profile = match &self.profiles {
                Some(p) => p[i],
                None => {
                    let ppm = self.oscillator.sample_ppm(&mut rng);
                    self.oscillator.sample_profile(ppm, &mut rng)
                }
            };
            let channel = self.fading.sample(&mut rng);
            let amplitude = db_to_lin(snr).sqrt();
            users.push(UserGroundTruth {
                payload,
                symbols: symbols.clone(),
                profile,
                channel,
                amplitude,
                snr_db: snr,
            });
            txs.push(Transmission {
                waveform: PacketWaveform::new(n, symbols),
                channel,
                amplitude,
                profile,
                start_sample: slot_start as f64,
            });
        }

        let total = slot_start + (max_syms + 2 * self.guard_symbols) * n;
        let cfg = MixConfig {
            bw_hz: self.params.bw.hz(),
            noise_power: if self.noise { 1.0 } else { 0.0 },
        };
        let samples = mix(&txs, total, &cfg, &mut rng);
        CollisionScenario {
            params: self.params,
            samples,
            slot_start,
            users,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lora_phy::modem::Modem;

    fn params() -> PhyParams {
        PhyParams::default() // SF8
    }

    #[test]
    fn scenario_is_reproducible() {
        let a = ScenarioBuilder::new(params()).seed(9).build();
        let b = ScenarioBuilder::new(params()).seed(9).build();
        assert_eq!(a.samples.len(), b.samples.len());
        for (x, y) in a.samples.iter().zip(&b.samples) {
            assert_eq!(x, y);
        }
        let c = ScenarioBuilder::new(params()).seed(10).build();
        assert_ne!(a.samples[1000], c.samples[1000]);
    }

    #[test]
    fn user_count_follows_snrs() {
        let s = ScenarioBuilder::new(params())
            .snrs_db(&[20.0, 10.0, 5.0])
            .build();
        assert_eq!(s.users.len(), 3);
        assert!((s.users[0].amplitude - 10.0).abs() < 1e-9);
    }

    #[test]
    fn shared_payload_gives_identical_symbols() {
        let s = ScenarioBuilder::new(params())
            .snrs_db(&[10.0, 10.0, 10.0])
            .shared_payload(vec![1, 2, 3, 4])
            .build();
        for u in &s.users[1..] {
            assert_eq!(u.symbols, s.users[0].symbols);
        }
    }

    #[test]
    fn distinct_payloads_by_default() {
        let s = ScenarioBuilder::new(params())
            .snrs_db(&[10.0, 10.0])
            .build();
        assert_ne!(s.users[0].payload, s.users[1].payload);
    }

    #[test]
    fn single_strong_user_decodes_with_standard_path() {
        // Sanity: a lone user from the scenario builder must decode via
        // the plain LoRa receiver when offsets are disabled.
        let s = ScenarioBuilder::new(params())
            .snrs_db(&[25.0])
            .profiles(vec![HardwareProfile::ideal()])
            .seed(4)
            .build();
        let m = Modem::new(s.params);
        let out = lora_phy::detect::decode_packet(&s.samples, &m, s.slot_start, 300).unwrap();
        assert_eq!(out.payload, s.users[0].payload);
    }

    #[test]
    fn data_symbols_accessor_skips_preamble_and_sync() {
        let s = ScenarioBuilder::new(params()).snrs_db(&[10.0]).build();
        let d = s.users[0].data_symbols(&s.params);
        assert_eq!(d.len(), s.users[0].symbols.len() - 10);
    }

    #[test]
    #[should_panic(expected = "profiles() must match")]
    fn mismatched_profiles_panics() {
        ScenarioBuilder::new(params())
            .snrs_db(&[10.0, 10.0])
            .profiles(vec![HardwareProfile::ideal()])
            .build();
    }
}
