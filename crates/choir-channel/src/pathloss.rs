//! Urban path-loss models at 915 MHz.
//!
//! The paper's testbed spans 10 km² of dense urban terrain around CMU
//! campus, where a single LoRa node is decodable no further than ~1 km
//! (Sec. 9.3) — far below the >10 km rural range. We model this with the
//! standard log-distance model plus an urban penetration/clutter term,
//! calibrated so that the single-node range lands at ~1 km for the default
//! link budget, matching the paper's baseline.

/// Log-distance path-loss model: `PL(d) = PL₀ + 10·γ·log₁₀(d/d₀)` dB.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LogDistance {
    /// Reference loss at `d0` metres (dB).
    pub pl0_db: f64,
    /// Reference distance (m).
    pub d0_m: f64,
    /// Path-loss exponent (2 = free space; 3.5–4.5 dense urban).
    pub exponent: f64,
    /// Additional fixed clutter/penetration loss (dB) — building shells,
    /// foliage, terrain (the paper notes hilly topography and tall
    /// buildings around CMU).
    pub clutter_db: f64,
}

impl LogDistance {
    /// Free-space reference loss at 1 m for 915 MHz:
    /// `20·log₁₀(4πd f/c) ≈ 31.7 dB`.
    pub const FSPL_1M_915MHZ_DB: f64 = 31.7;

    /// Dense-urban preset used throughout the evaluation: exponent 3.5 and
    /// 8 dB of clutter, which puts the single-node decode limit near 1 km
    /// for a 14 dBm client at SF8 (see `link::LinkBudget`) — the paper's
    /// measured urban baseline.
    pub fn urban() -> Self {
        LogDistance {
            pl0_db: Self::FSPL_1M_915MHZ_DB,
            d0_m: 1.0,
            exponent: 3.5,
            clutter_db: 8.0,
        }
    }

    /// Free-space preset (rural line-of-sight sanity checks).
    pub fn free_space() -> Self {
        LogDistance {
            pl0_db: Self::FSPL_1M_915MHZ_DB,
            d0_m: 1.0,
            exponent: 2.0,
            clutter_db: 0.0,
        }
    }

    /// Path loss in dB at distance `d_m` metres. Distances below `d0` are
    /// clamped to `d0`.
    pub fn loss_db(&self, d_m: f64) -> f64 {
        let d = d_m.max(self.d0_m);
        self.pl0_db + 10.0 * self.exponent * (d / self.d0_m).log10() + self.clutter_db
    }

    /// Inverts the model: the distance at which the loss equals `pl_db`
    /// (ignoring shadowing).
    pub fn distance_for_loss(&self, pl_db: f64) -> f64 {
        let ex = (pl_db - self.pl0_db - self.clutter_db) / (10.0 * self.exponent);
        self.d0_m * 10f64.powf(ex)
    }
}

// Tests assert on exactly-representable values (0.0, bin centres).
#[allow(clippy::float_cmp)]
#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_space_matches_friis() {
        let m = LogDistance::free_space();
        // Friis at 915 MHz, 1 km: 31.7 + 60 ≈ 91.7 dB.
        assert!((m.loss_db(1000.0) - 91.7).abs() < 0.1);
    }

    #[test]
    fn urban_much_lossier_than_free_space() {
        let u = LogDistance::urban();
        let f = LogDistance::free_space();
        assert!(u.loss_db(1000.0) > f.loss_db(1000.0) + 50.0);
    }

    #[test]
    fn loss_monotone_in_distance() {
        let m = LogDistance::urban();
        let mut prev = 0.0;
        for d in [1.0, 10.0, 100.0, 500.0, 1000.0, 2650.0, 5000.0] {
            let l = m.loss_db(d);
            assert!(l > prev);
            prev = l;
        }
    }

    #[test]
    fn short_distances_clamped() {
        let m = LogDistance::urban();
        assert_eq!(m.loss_db(0.0), m.loss_db(1.0));
        assert_eq!(m.loss_db(0.5), m.loss_db(1.0));
    }

    #[test]
    fn distance_for_loss_inverts() {
        let m = LogDistance::urban();
        for d in [50.0, 400.0, 1000.0, 2650.0] {
            let pl = m.loss_db(d);
            assert!((m.distance_for_loss(pl) - d).abs() / d < 1e-9);
        }
    }

    #[test]
    fn urban_range_calibration_ballpark() {
        // 14 dBm TX, −127 dBm sensitivity (SF8 @125 kHz): max PL = 141 dB →
        // urban range should be around 1 km (0.6–1.6 km window).
        let m = LogDistance::urban();
        let d = m.distance_for_loss(141.0);
        assert!((600.0..1600.0).contains(&d), "range {d} m");
    }
}
