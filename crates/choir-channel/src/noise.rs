//! Thermal noise and dB bookkeeping.

use choir_dsp::complex::{c64, C64};
use rand::Rng;

use crate::fading::gaussian;

/// dB → linear power ratio.
pub fn db_to_lin(db: f64) -> f64 {
    10f64.powf(db / 10.0)
}

/// Linear power ratio → dB.
pub fn lin_to_db(lin: f64) -> f64 {
    10.0 * lin.log10()
}

/// Thermal noise floor in dBm for a given bandwidth and receiver noise
/// figure: `−174 + 10·log₁₀(BW) + NF`.
pub fn noise_floor_dbm(bandwidth_hz: f64, noise_figure_db: f64) -> f64 {
    -174.0 + 10.0 * bandwidth_hz.log10() + noise_figure_db
}

/// Draws `len` samples of circularly-symmetric complex Gaussian noise with
/// total power `power` (variance `power/2` per real dimension).
pub fn awgn<R: Rng>(rng: &mut R, len: usize, power: f64) -> Vec<C64> {
    assert!(power >= 0.0, "awgn: negative power");
    let s = (power / 2.0).sqrt();
    (0..len)
        .map(|_| c64(gaussian(rng) * s, gaussian(rng) * s))
        .collect()
}

/// Adds AWGN of the given power to a signal in place.
pub fn add_awgn<R: Rng>(rng: &mut R, signal: &mut [C64], power: f64) {
    let s = (power / 2.0).sqrt();
    for v in signal.iter_mut() {
        *v += c64(gaussian(rng) * s, gaussian(rng) * s);
    }
}

/// Measures the empirical SNR of `signal + noise` given the clean signal.
pub fn measured_snr_db(clean: &[C64], noisy: &[C64]) -> f64 {
    assert_eq!(clean.len(), noisy.len());
    let sig: f64 = clean.iter().map(|z| z.norm_sqr()).sum();
    let err: f64 = clean
        .iter()
        .zip(noisy)
        .map(|(c, n)| (n - c).norm_sqr())
        .sum();
    lin_to_db(sig / err)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn db_roundtrip() {
        for db in [-30.0, -3.0, 0.0, 10.0, 27.5] {
            assert!((lin_to_db(db_to_lin(db)) - db).abs() < 1e-12);
        }
        assert!((db_to_lin(3.0) - 1.9953).abs() < 1e-3);
    }

    #[test]
    fn lorawan_noise_floor() {
        // 125 kHz, NF 6 dB → ≈ −117 dBm.
        let nf = noise_floor_dbm(125e3, 6.0);
        assert!((nf - (-117.03)).abs() < 0.1, "floor {nf}");
    }

    #[test]
    fn awgn_power_calibrated() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 100_000;
        let noise = awgn(&mut rng, n, 2.5);
        let p: f64 = noise.iter().map(|z| z.norm_sqr()).sum::<f64>() / n as f64;
        assert!((p - 2.5).abs() < 0.05, "power {p}");
    }

    #[test]
    fn awgn_circular_symmetry() {
        let mut rng = StdRng::seed_from_u64(6);
        let noise = awgn(&mut rng, 50_000, 1.0);
        let mean: C64 = noise.iter().sum();
        assert!(mean.abs() / 50_000.0 < 0.01);
        let re_pow: f64 = noise.iter().map(|z| z.re * z.re).sum::<f64>() / 50_000.0;
        let im_pow: f64 = noise.iter().map(|z| z.im * z.im).sum::<f64>() / 50_000.0;
        assert!((re_pow - 0.5).abs() < 0.02);
        assert!((im_pow - 0.5).abs() < 0.02);
    }

    #[test]
    fn add_awgn_hits_target_snr() {
        let mut rng = StdRng::seed_from_u64(7);
        let clean: Vec<C64> = (0..20_000).map(|i| C64::cis(0.01 * i as f64)).collect();
        // Signal power 1.0; add noise at power 0.1 → 10 dB SNR.
        let mut noisy = clean.clone();
        add_awgn(&mut rng, &mut noisy, 0.1);
        let snr = measured_snr_db(&clean, &noisy);
        assert!((snr - 10.0).abs() < 0.3, "snr {snr}");
    }

    #[test]
    fn zero_power_noise_is_zero() {
        let mut rng = StdRng::seed_from_u64(8);
        let noise = awgn(&mut rng, 10, 0.0);
        assert!(noise.iter().all(|z| z.abs() == 0.0));
    }
}
