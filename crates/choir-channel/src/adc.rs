//! Receiver ADC model: quantization and clipping.
//!
//! Sec. 5.2 of the paper: "our approach, like traditional outdoor networks,
//! is always limited by the resolution of the analog-to-digital converter.
//! As a result, extremely weak transmitters are likely to be missed if they
//! are not registered by the analog components." The USRP N210 carries a
//! 14-bit ADC; a strong nearby transmitter forces the AGC full-scale up and
//! the quantisation floor swallows clients tens of dB weaker.

use choir_dsp::complex::{c64, C64};

/// A uniform mid-rise quantizer with clipping, applied per I/Q rail.
#[derive(Clone, Copy, Debug)]
pub struct Adc {
    /// Bits per rail (the N210: 14).
    pub bits: u32,
    /// Full-scale amplitude per rail; inputs beyond ±full_scale clip.
    pub full_scale: f64,
}

impl Adc {
    /// An effectively ideal converter (useful default in tests): enough
    /// bits that the step is far below any signal of interest.
    pub fn ideal() -> Self {
        Adc {
            bits: 54,
            full_scale: 1e9,
        }
    }

    /// A 14-bit N210-like converter with the given full scale.
    pub fn n210(full_scale: f64) -> Self {
        Adc {
            bits: 14,
            full_scale,
        }
    }

    /// Step size between adjacent codes.
    pub fn step(&self) -> f64 {
        2.0 * self.full_scale / (1u64 << self.bits) as f64
    }

    /// Quantizes one rail.
    fn rail(&self, x: f64) -> f64 {
        let clipped = x.clamp(-self.full_scale, self.full_scale);
        let q = self.step();
        // Mid-rise: round to the centre of the containing cell, clamping
        // the code so outputs never exceed full scale.
        let half = (1u64 << (self.bits - 1)) as f64;
        let code = (clipped / q).floor().clamp(-half, half - 1.0);
        (code + 0.5) * q
    }

    /// Quantizes one complex sample.
    pub fn convert(&self, x: C64) -> C64 {
        c64(self.rail(x.re), self.rail(x.im))
    }

    /// Quantizes a buffer in place.
    pub fn convert_buffer(&self, x: &mut [C64]) {
        for v in x.iter_mut() {
            *v = self.convert(*v);
        }
    }

    /// Dynamic range in dB between full scale and one step — the deepest a
    /// weak signal can sit below a full-scale blocker and still toggle
    /// codes (≈ 6.02·bits dB).
    pub fn dynamic_range_db(&self) -> f64 {
        20.0 * ((1u64 << self.bits) as f64).log10()
    }

    /// Scales the converter so `peak` maps to full scale (a crude AGC).
    pub fn with_agc(bits: u32, peak: f64) -> Self {
        Adc {
            bits,
            full_scale: peak.max(1e-12),
        }
    }
}

// Tests assert on exactly-representable values (0.0, bin centres).
#[allow(clippy::float_cmp)]
#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_is_transparent_enough() {
        let adc = Adc::ideal();
        let x = c64(0.1234567, -0.7654321);
        let y = adc.convert(x);
        assert!((x - y).abs() < 1e-6);
    }

    #[test]
    fn clipping_at_full_scale() {
        let adc = Adc::n210(1.0);
        let y = adc.convert(c64(5.0, -5.0));
        assert!(y.re <= 1.0 && y.re > 0.99);
        assert!(y.im >= -1.0 && y.im < -0.99);
    }

    #[test]
    fn quantization_error_bounded_by_half_step() {
        let adc = Adc::n210(1.0);
        let q = adc.step();
        for i in 0..1000 {
            let x = c64(
                (i as f64 / 500.0) - 1.0,
                ((i * 7 % 1000) as f64 / 500.0) - 1.0,
            );
            let y = adc.convert(x);
            assert!((x.re - y.re).abs() <= q / 2.0 + 1e-15);
            assert!((x.im - y.im).abs() <= q / 2.0 + 1e-15);
        }
    }

    #[test]
    fn dynamic_range_14_bits() {
        let adc = Adc::n210(1.0);
        assert!((adc.dynamic_range_db() - 84.3).abs() < 0.1);
    }

    #[test]
    fn weak_signal_below_lsb_vanishes_structurally() {
        // A signal 100 dB below full scale cannot move a 14-bit converter
        // by more than one code; its quantised version carries (almost) no
        // usable structure: correlation against the clean signal is tiny.
        let adc = Adc::n210(1.0);
        let weak_amp = 1e-5; // −100 dBFS
        let clean: Vec<C64> = (0..4096)
            .map(|i| C64::cis(0.05 * i as f64).scale(weak_amp))
            .collect();
        let quant: Vec<C64> = clean.iter().map(|&v| adc.convert(v)).collect();
        // Every quantised sample sits in one of the four cells adjacent to
        // zero (mid-rise has no zero code) — no amplitude structure left.
        let distinct: std::collections::HashSet<(i64, i64)> = quant
            .iter()
            .map(|z| {
                (
                    (z.re / adc.step()).floor() as i64,
                    (z.im / adc.step()).floor() as i64,
                )
            })
            .collect();
        assert!(distinct.len() <= 4, "codes used: {}", distinct.len());
        for (a, b) in &distinct {
            assert!((-1..=0).contains(a) && (-1..=0).contains(b));
        }
    }

    #[test]
    fn agc_scales_to_peak() {
        let adc = Adc::with_agc(14, 3.7);
        assert_eq!(adc.full_scale, 3.7);
    }
}
