//! Asynchronous-arrival scenario builder: unslotted traffic where frames
//! start wherever they please — overlapping partially, arriving back to
//! back with zero gap, starting mid-chunk, or creeping in below the
//! clean-detection threshold. The slotted [`crate::ScenarioBuilder`]
//! cannot express any of these (every user shares one nominal slot
//! boundary); this builder places each arrival at an explicit absolute
//! sample with its own payload and power, which is exactly the scenario
//! family the station's multi-hypothesis tracker exists for.

use choir_dsp::complex::C64;
use lora_phy::chirp::PacketWaveform;
use lora_phy::frame::packet_symbols;
use lora_phy::params::PhyParams;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::impairments::HardwareProfile;
use crate::mix::{mix, MixConfig, Transmission};
use crate::noise::db_to_lin;

/// Ground truth for one asynchronous arrival.
#[derive(Clone, Debug)]
pub struct ArrivalGroundTruth {
    /// Absolute sample index of the frame's first preamble sample.
    pub start_sample: u64,
    /// Transmitted payload bytes.
    pub payload: Vec<u8>,
    /// Full on-air symbol sequence (preamble + sync + data).
    pub symbols: Vec<u16>,
    /// Hardware profile used for this arrival.
    pub profile: HardwareProfile,
    /// Amplitude relative to unit noise.
    pub amplitude: f64,
    /// Per-sample SNR in dB.
    pub snr_db: f64,
}

impl ArrivalGroundTruth {
    /// On-air length of this arrival in samples (whole symbols).
    pub fn len_samples(&self, params: &PhyParams) -> u64 {
        (self.symbols.len() * params.samples_per_symbol()) as u64
    }
}

/// A rendered asynchronous-traffic capture with ground truth attached.
#[derive(Clone, Debug)]
pub struct AsyncScenario {
    /// PHY parameters shared by every arrival.
    pub params: PhyParams,
    /// Received baseband (unit-power AWGN included unless disabled).
    pub samples: Vec<C64>,
    /// Per-arrival ground truth, in builder order (not start order).
    pub arrivals: Vec<ArrivalGroundTruth>,
}

/// One queued arrival before rendering.
#[derive(Clone, Debug)]
struct PlannedArrival {
    start_sample: u64,
    snr_db: f64,
    payload: Vec<u8>,
    profile: HardwareProfile,
}

/// Configurable builder for [`AsyncScenario`].
#[derive(Clone, Debug)]
pub struct AsyncScenarioBuilder {
    params: PhyParams,
    arrivals: Vec<PlannedArrival>,
    noise: bool,
    tail_symbols: usize,
    seed: u64,
}

impl AsyncScenarioBuilder {
    /// Starts a builder for the given PHY parameters.
    pub fn new(params: PhyParams) -> Self {
        AsyncScenarioBuilder {
            params,
            arrivals: Vec::new(),
            noise: true,
            tail_symbols: 2,
            seed: 0,
        }
    }

    /// Queues one arrival: frame start at an absolute sample (need not be
    /// symbol- or chunk-aligned), per-sample SNR, and explicit payload.
    /// Uses an ideal hardware profile, so the frame sits exactly at the
    /// declared start — what golden tests pin against.
    pub fn arrival(self, start_sample: u64, snr_db: f64, payload: &[u8]) -> Self {
        self.arrival_with_profile(start_sample, snr_db, payload, HardwareProfile::ideal())
    }

    /// Queues one arrival with an explicit hardware profile (CFO/timing
    /// impairments on top of the declared start).
    pub fn arrival_with_profile(
        mut self,
        start_sample: u64,
        snr_db: f64,
        payload: &[u8],
        profile: HardwareProfile,
    ) -> Self {
        self.arrivals.push(PlannedArrival {
            start_sample,
            snr_db,
            payload: payload.to_vec(),
            profile,
        });
        self
    }

    /// Disables AWGN (detection-geometry tests).
    pub fn no_noise(mut self) -> Self {
        self.noise = false;
        self
    }

    /// Symbols of silence (or bare noise) after the last frame ends.
    pub fn tail_symbols(mut self, t: usize) -> Self {
        self.tail_symbols = t;
        self
    }

    /// RNG seed — every scenario is fully reproducible.
    pub fn seed(mut self, s: u64) -> Self {
        self.seed = s;
        self
    }

    /// Renders the scenario.
    pub fn build(self) -> AsyncScenario {
        let mut rng = StdRng::seed_from_u64(
            self.seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(1),
        );
        let n = self.params.samples_per_symbol();
        let mut arrivals = Vec::with_capacity(self.arrivals.len());
        let mut txs = Vec::with_capacity(self.arrivals.len());
        let mut end = 0u64;
        for a in self.arrivals {
            let symbols = packet_symbols(&self.params, &a.payload);
            let amplitude = db_to_lin(a.snr_db).sqrt();
            end = end.max(a.start_sample + (symbols.len() * n) as u64);
            arrivals.push(ArrivalGroundTruth {
                start_sample: a.start_sample,
                payload: a.payload,
                symbols: symbols.clone(),
                profile: a.profile,
                amplitude,
                snr_db: a.snr_db,
            });
            txs.push(Transmission {
                waveform: PacketWaveform::new(n, symbols),
                channel: C64::ONE,
                amplitude,
                profile: a.profile,
                start_sample: a.start_sample as f64,
            });
        }
        let total = end as usize + self.tail_symbols * n;
        let cfg = MixConfig {
            bw_hz: self.params.bw.hz(),
            noise_power: if self.noise { 1.0 } else { 0.0 },
        };
        let samples = mix(&txs, total, &cfg, &mut rng);
        AsyncScenario {
            params: self.params,
            samples,
            arrivals,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lora_phy::modem::Modem;

    fn params() -> PhyParams {
        PhyParams::default() // SF8
    }

    #[test]
    fn scenario_is_reproducible_and_places_frames() {
        let build = || {
            AsyncScenarioBuilder::new(params())
                .arrival(512, 25.0, b"one")
                .arrival(9000, 25.0, b"two")
                .seed(3)
                .build()
        };
        let a = build();
        let b = build();
        assert_eq!(a.samples, b.samples);
        assert_eq!(a.arrivals.len(), 2);
        // Each lone-enough frame decodes via the plain receiver from its
        // declared start.
        let m = Modem::new(a.params);
        let out = lora_phy::detect::decode_packet(&a.samples, &m, 512, 300).unwrap();
        assert_eq!(out.payload, b"one");
    }

    #[test]
    fn zero_gap_back_to_back_lengths_add_up() {
        let s = AsyncScenarioBuilder::new(params())
            .arrival(256, 20.0, b"front")
            .arrival(256 + 34 * 256, 20.0, b"back")
            .no_noise()
            .tail_symbols(3)
            .build();
        let first_len = s.arrivals[0].len_samples(&s.params);
        assert_eq!(first_len, 34 * 256, "SF8 CR4/8 5-byte frame is 34 symbols");
        assert_eq!(s.samples.len() as u64, 256 + 2 * first_len + 3 * 256);
    }
}
