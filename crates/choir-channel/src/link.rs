//! End-to-end link budget: transmit power → path loss → received SNR →
//! baseband amplitude.
//!
//! All baseband simulation is carried out with the noise power normalised
//! to 1.0 per complex sample, so a link at `snr_db` contributes a signal of
//! amplitude `10^(snr_db/20)`.

use crate::noise::{db_to_lin, noise_floor_dbm};
use crate::pathloss::LogDistance;
use lora_phy::params::{PhyParams, SpreadingFactor};

/// A complete link budget for the Choir testbed.
#[derive(Clone, Copy, Debug)]
pub struct LinkBudget {
    /// Client transmit power in dBm (LoRa clients: "few milliwatts";
    /// 14 dBm = 25 mW is the US915 default).
    pub tx_power_dbm: f64,
    /// Client antenna gain (dBi).
    pub tx_gain_db: f64,
    /// Base-station antenna + LNA gain (dBi + dB; the paper's S469AM-915
    /// plus ZX60-0916LN+).
    pub rx_gain_db: f64,
    /// Receiver noise figure (dB). The USRP N210 front end is ~5–8 dB.
    pub noise_figure_db: f64,
    /// Path-loss model.
    pub pathloss: LogDistance,
}

impl Default for LinkBudget {
    fn default() -> Self {
        LinkBudget {
            tx_power_dbm: 14.0,
            tx_gain_db: 0.0,
            rx_gain_db: 3.0,
            noise_figure_db: 6.0,
            pathloss: LogDistance::urban(),
        }
    }
}

impl LinkBudget {
    /// Received power in dBm at distance `d_m`, before shadowing/fading.
    pub fn rx_power_dbm(&self, d_m: f64) -> f64 {
        self.tx_power_dbm + self.tx_gain_db + self.rx_gain_db - self.pathloss.loss_db(d_m)
    }

    /// Per-sample SNR in dB at distance `d_m` for bandwidth `bw_hz`
    /// (shadowing in dB can be added by the caller).
    pub fn snr_db(&self, d_m: f64, bw_hz: f64) -> f64 {
        self.rx_power_dbm(d_m) - noise_floor_dbm(bw_hz, self.noise_figure_db)
    }

    /// Baseband signal amplitude for unit-power noise at distance `d_m`.
    pub fn amplitude(&self, d_m: f64, bw_hz: f64) -> f64 {
        db_to_lin(self.snr_db(d_m, bw_hz)).sqrt()
    }

    /// Maximum decodable distance for a single node at the given PHY
    /// (ignoring shadowing): where SNR falls to the SF's demodulation
    /// floor. This is the paper's ~1 km urban single-node range.
    pub fn max_range_m(&self, params: &PhyParams) -> f64 {
        let bw = params.bw.hz();
        let floor = noise_floor_dbm(bw, self.noise_figure_db);
        let min_rx_dbm = floor + params.sf.demod_floor_db();
        let max_pl = self.tx_power_dbm + self.tx_gain_db + self.rx_gain_db - min_rx_dbm;
        self.pathloss.distance_for_loss(max_pl)
    }

    /// Picks the fastest spreading factor whose demodulation floor the
    /// link at `d_m` still clears — the paper's "nodes transmit at the
    /// fastest data rate that can be supported by the SNR" rate
    /// adaptation. Returns `None` when even SF12 cannot close the link.
    pub fn fastest_sf(&self, d_m: f64, bw_hz: f64) -> Option<SpreadingFactor> {
        let snr = self.snr_db(d_m, bw_hz);
        SpreadingFactor::ALL
            .into_iter()
            .find(|sf| snr >= sf.demod_floor_db())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lora_phy::params::{Bandwidth, CodeRate};

    fn sf8_params() -> PhyParams {
        PhyParams {
            sf: SpreadingFactor::Sf8,
            bw: Bandwidth::Khz125,
            cr: CodeRate::Cr48,
            preamble_len: 8,
            explicit_crc: true,
        }
    }

    #[test]
    fn rx_power_decreases_with_distance() {
        let lb = LinkBudget::default();
        assert!(lb.rx_power_dbm(100.0) > lb.rx_power_dbm(1000.0));
    }

    #[test]
    fn urban_single_node_range_near_1km() {
        // The paper: "one client in the network could reach at best a
        // distance of 1 km". Our default budget must land in that regime.
        let lb = LinkBudget::default();
        let r = lb.max_range_m(&sf8_params());
        assert!((700.0..1500.0).contains(&r), "range {r} m");
    }

    #[test]
    fn snr_at_close_range_is_high() {
        let lb = LinkBudget::default();
        let snr = lb.snr_db(50.0, 125e3);
        assert!(snr > 20.0, "snr {snr}");
    }

    #[test]
    fn amplitude_matches_snr() {
        let lb = LinkBudget::default();
        let snr = lb.snr_db(300.0, 125e3);
        let a = lb.amplitude(300.0, 125e3);
        assert!((20.0 * a.log10() - snr).abs() < 1e-9);
    }

    #[test]
    fn rate_adaptation_picks_faster_sf_closer() {
        let lb = LinkBudget::default();
        let near = lb.fastest_sf(100.0, 125e3).unwrap();
        let far = lb.fastest_sf(1200.0, 125e3).unwrap();
        assert!(near <= far, "near {near:?} far {far:?}");
        assert_eq!(near, SpreadingFactor::Sf7);
    }

    #[test]
    fn beyond_all_sf_range_returns_none() {
        let lb = LinkBudget::default();
        assert!(lb.fastest_sf(50_000.0, 125e3).is_none());
    }

    #[test]
    fn higher_sf_reaches_further() {
        let lb = LinkBudget::default();
        let mut p = sf8_params();
        let r8 = lb.max_range_m(&p);
        p.sf = SpreadingFactor::Sf12;
        let r12 = lb.max_range_m(&p);
        assert!(r12 > 1.3 * r8, "r8 {r8} r12 {r12}");
    }
}
