//! Shadowing and small-scale fading.
//!
//! * Log-normal shadowing: a per-location dB offset (σ ≈ 8 dB urban),
//!   constant for a static sensor.
//! * Block fading: one complex coefficient per packet — Rayleigh for
//!   non-line-of-sight urban links, Rician with a K-factor when a dominant
//!   path exists. LP-WAN packets (~10 ms) are far shorter than urban
//!   coherence times, so per-packet constancy is the right model (and is
//!   what Sec. 6.2 of the paper relies on for user tracking).

use choir_dsp::complex::{c64, C64};
use rand::Rng;

/// Log-normal shadowing sampler.
#[derive(Clone, Copy, Debug)]
pub struct Shadowing {
    /// Standard deviation in dB (typical urban: 6–10).
    pub sigma_db: f64,
}

impl Default for Shadowing {
    fn default() -> Self {
        Shadowing { sigma_db: 8.0 }
    }
}

impl Shadowing {
    /// Draws a shadowing offset in dB (zero-mean Gaussian).
    pub fn sample_db<R: Rng>(&self, rng: &mut R) -> f64 {
        gaussian(rng) * self.sigma_db
    }
}

/// Small-scale fading models for the per-packet channel coefficient.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Fading {
    /// No fading: unit magnitude, uniform random phase.
    None,
    /// Rayleigh: complex Gaussian, E[|h|²] = 1.
    Rayleigh,
    /// Rician with linear K-factor (power ratio of dominant to scattered).
    Rician {
        /// Dominant-to-scattered power ratio (linear, ≥ 0).
        k: f64,
    },
}

impl Fading {
    /// Draws one unit-mean-power channel coefficient.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> C64 {
        match *self {
            Fading::None => C64::cis(rng.gen_range(0.0..std::f64::consts::TAU)),
            Fading::Rayleigh => {
                let s = std::f64::consts::FRAC_1_SQRT_2;
                c64(gaussian(rng) * s, gaussian(rng) * s)
            }
            Fading::Rician { k } => {
                assert!(k >= 0.0, "Rician K must be non-negative");
                let los_amp = (k / (k + 1.0)).sqrt();
                let scat = (1.0 / (k + 1.0)).sqrt() * std::f64::consts::FRAC_1_SQRT_2;
                let phase = rng.gen_range(0.0..std::f64::consts::TAU);
                C64::cis(phase).scale(los_amp) + c64(gaussian(rng) * scat, gaussian(rng) * scat)
            }
        }
    }
}

/// Standard normal via Box–Muller.
pub fn gaussian<R: Rng>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let v = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        if v.is_finite() {
            return v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gaussian_moments() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| gaussian(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn shadowing_scales_sigma() {
        let mut rng = StdRng::seed_from_u64(11);
        let s = Shadowing { sigma_db: 8.0 };
        let n = 20_000;
        let vals: Vec<f64> = (0..n).map(|_| s.sample_db(&mut rng)).collect();
        let var = vals.iter().map(|v| v * v).sum::<f64>() / n as f64;
        assert!((var.sqrt() - 8.0).abs() < 0.3, "sigma {}", var.sqrt());
    }

    #[test]
    fn rayleigh_unit_mean_power() {
        let mut rng = StdRng::seed_from_u64(13);
        let n = 50_000;
        let p: f64 = (0..n)
            .map(|_| Fading::Rayleigh.sample(&mut rng).norm_sqr())
            .sum::<f64>()
            / n as f64;
        assert!((p - 1.0).abs() < 0.03, "power {p}");
    }

    #[test]
    fn rician_unit_mean_power_and_concentration() {
        let mut rng = StdRng::seed_from_u64(17);
        let n = 50_000;
        let k = 10.0;
        let samples: Vec<C64> = (0..n)
            .map(|_| Fading::Rician { k }.sample(&mut rng))
            .collect();
        let p: f64 = samples.iter().map(|h| h.norm_sqr()).sum::<f64>() / n as f64;
        assert!((p - 1.0).abs() < 0.03, "power {p}");
        // High K → magnitudes concentrate near 1 (less variance than Rayleigh).
        let var_mag: f64 = samples.iter().map(|h| (h.abs() - 1.0).powi(2)).sum::<f64>() / n as f64;
        assert!(var_mag < 0.1, "magnitude variance {var_mag}");
    }

    #[test]
    fn no_fading_is_unit_magnitude_random_phase() {
        let mut rng = StdRng::seed_from_u64(19);
        let mut phases = Vec::new();
        for _ in 0..1000 {
            let h = Fading::None.sample(&mut rng);
            assert!((h.abs() - 1.0).abs() < 1e-12);
            phases.push(h.arg());
        }
        // Phases spread over the circle.
        let mean_vec: C64 = phases.iter().map(|&p| C64::cis(p)).sum();
        assert!(mean_vec.abs() / 1000.0 < 0.1);
    }

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(
                Fading::Rayleigh.sample(&mut a),
                Fading::Rayleigh.sample(&mut b)
            );
        }
    }
}
