//! # choir-channel — urban wireless channel and hardware-impairment
//! simulator
//!
//! This crate substitutes for the hardware the Choir paper (SIGCOMM 2017)
//! deployed — USRP N210 base stations and SX1276 clients across 10 km² of
//! urban terrain — at the same interface the paper's decoder consumes:
//! received baseband IQ samples.
//!
//! * [`pathloss`] / [`fading`] — log-distance urban propagation, log-normal
//!   shadowing, Rayleigh/Rician block fading;
//! * [`impairments`] — per-board oscillator CFO (ppm model), sub-symbol
//!   timing offsets, within-packet jitter (matching the measurements of
//!   Sec. 9.1 / Fig. 7);
//! * [`noise`] / [`adc`] — thermal floor, AWGN, 14-bit quantization and
//!   clipping (the near-far ceiling of Sec. 5.2);
//! * [`mod@mix`] — the superposition engine rendering colliding impaired
//!   transmitters sample-exactly;
//! * [`link`] — the end-to-end budget that puts the single-node urban
//!   decode limit at ~1 km, as the paper measures;
//! * [`scenario`] — one-call collision synthesis with ground truth;
//! * [`antenna`] — multi-antenna channels for the MU-MIMO baseline.

#![deny(missing_docs)]

pub mod adc;
pub mod antenna;
pub mod async_scenario;
pub mod fading;
pub mod impairments;
pub mod link;
pub mod mix;
pub mod noise;
pub mod pathloss;
pub mod scenario;

pub use async_scenario::{ArrivalGroundTruth, AsyncScenario, AsyncScenarioBuilder};
pub use impairments::{HardwareProfile, OscillatorModel};
pub use link::LinkBudget;
pub use mix::{mix, MixConfig, Transmission};
pub use scenario::{CollisionScenario, ScenarioBuilder, UserGroundTruth};
