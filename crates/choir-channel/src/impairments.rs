//! Client hardware imperfections — the raw material Choir feeds on.
//!
//! Low-cost LP-WAN radios have cheap crystal oscillators whose frequency
//! error (tens of ppm at 915 MHz → kHz-scale CFO) differs from board to
//! board, plus imperfect slot timing after beacon synchronisation
//! (sub-symbol timing offsets). Sec. 9.1 of the paper measures that across
//! 30 boards these offsets (a) cover the whole fractional range roughly
//! uniformly, and (b) stay essentially constant within a packet (mean
//! error 1.84 % of a symbol for timing, 0.04 % of a bin for CFO+TO).
//!
//! [`OscillatorModel`] draws per-node offsets with exactly those
//! properties; [`HardwareProfile`] is the per-node sample the channel
//! mixer consumes, including small within-packet jitter so estimators face
//! realistic (not mathematically exact) stability.

use rand::Rng;

use crate::fading::gaussian;

/// Generative model for per-node hardware offsets.
#[derive(Clone, Copy, Debug)]
pub struct OscillatorModel {
    /// Maximum oscillator error magnitude in parts-per-million. Cheap
    /// crystals: 10–25 ppm.
    pub max_ppm: f64,
    /// Carrier frequency in Hz (915 MHz band).
    pub carrier_hz: f64,
    /// Standard deviation of beacon-slot timing error, in *symbols*
    /// (sub-symbol: the paper measures ≪ 1 symbol; default 0.2).
    pub timing_sigma_symbols: f64,
    /// Within-packet CFO jitter standard deviation, Hz per symbol step
    /// (random walk). Fig. 7(d) measures 0.02–0.12 Hz depending on SNR.
    pub cfo_jitter_hz: f64,
    /// Within-packet timing jitter standard deviation, in symbols per
    /// symbol step. Fig. 7(c) measures ~1e-5–3e-5 relative.
    pub timing_jitter_symbols: f64,
}

impl Default for OscillatorModel {
    fn default() -> Self {
        OscillatorModel {
            max_ppm: 20.0,
            carrier_hz: 902e6,
            timing_sigma_symbols: 0.2,
            cfo_jitter_hz: 0.05,
            timing_jitter_symbols: 2e-5,
        }
    }
}

/// One node's hardware state for one packet.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HardwareProfile {
    /// Carrier frequency offset in Hz (constant part).
    pub cfo_hz: f64,
    /// Timing offset of the packet start relative to the nominal slot, in
    /// symbols (fractional, may be negative).
    pub timing_offset_symbols: f64,
    /// Transmitter initial phase (radians).
    pub phase: f64,
    /// Within-packet CFO random-walk step (Hz per symbol).
    pub cfo_jitter_hz: f64,
    /// Within-packet timing random-walk step (symbols per symbol).
    pub timing_jitter_symbols: f64,
}

impl OscillatorModel {
    /// Draws the *board-level* oscillator error (ppm), fixed for a node's
    /// lifetime. Uniform over ±max_ppm, matching the observed flat CDF of
    /// offsets across boards (Fig. 7(a,b)).
    pub fn sample_ppm<R: Rng>(&self, rng: &mut R) -> f64 {
        rng.gen_range(-self.max_ppm..self.max_ppm)
    }

    /// CFO in Hz corresponding to a board error of `ppm`.
    pub fn cfo_hz(&self, ppm: f64) -> f64 {
        ppm * 1e-6 * self.carrier_hz
    }

    /// Draws a complete per-packet profile for a node with board error
    /// `ppm` (from [`Self::sample_ppm`]).
    pub fn sample_profile<R: Rng>(&self, ppm: f64, rng: &mut R) -> HardwareProfile {
        HardwareProfile {
            cfo_hz: self.cfo_hz(ppm),
            // Clients respond to the beacon after a non-negative processing
            // delay, so slot timing offsets are positive sub-symbol delays
            // (half-normal with the configured sigma).
            timing_offset_symbols: gaussian(rng).abs() * self.timing_sigma_symbols,
            phase: rng.gen_range(0.0..std::f64::consts::TAU),
            cfo_jitter_hz: self.cfo_jitter_hz,
            timing_jitter_symbols: self.timing_jitter_symbols,
        }
    }
}

impl HardwareProfile {
    /// A mathematically ideal transmitter (no offsets) — useful in tests.
    pub fn ideal() -> Self {
        HardwareProfile {
            cfo_hz: 0.0,
            timing_offset_symbols: 0.0,
            phase: 0.0,
            cfo_jitter_hz: 0.0,
            timing_jitter_symbols: 0.0,
        }
    }

    /// The *aggregate* frequency shift in FFT bins that this profile
    /// produces in a dechirped symbol spectrum: CFO contributes
    /// `cfo/bin_hz` bins and a timing offset of `Δt` symbols contributes
    /// `−Δt·N` bins (Eqn. 5 of the paper; the dechirp maps time to
    /// frequency with slope `−B/T`).
    pub fn aggregate_shift_bins(&self, bin_hz: f64, chips_per_symbol: usize) -> f64 {
        self.cfo_hz / bin_hz - self.timing_offset_symbols * chips_per_symbol as f64
    }

    /// The fractional part of the aggregate shift, in `[0, 1)` — the
    /// user-identifying feature of Sec. 4.
    pub fn fractional_shift(&self, bin_hz: f64, chips_per_symbol: usize) -> f64 {
        self.aggregate_shift_bins(bin_hz, chips_per_symbol)
            .rem_euclid(1.0)
    }
}

// Tests assert on exactly-representable values (0.0, bin centres).
#[allow(clippy::float_cmp)]
#[cfg(test)]
mod tests {
    use super::*;
    use choir_dsp::stats::ks_distance_uniform;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ppm_within_bounds_and_diverse() {
        let m = OscillatorModel::default();
        let mut rng = StdRng::seed_from_u64(1);
        let ppms: Vec<f64> = (0..1000).map(|_| m.sample_ppm(&mut rng)).collect();
        assert!(ppms.iter().all(|p| p.abs() <= 20.0));
        // Roughly uniform: KS distance against U(−20, 20) small.
        let d = ks_distance_uniform(&ppms, -20.0, 20.0);
        assert!(d < 0.05, "KS {d}");
    }

    #[test]
    fn cfo_scale_is_khz_at_915mhz() {
        let m = OscillatorModel::default();
        // 10 ppm at 902 MHz ≈ 9.02 kHz.
        assert!((m.cfo_hz(10.0) - 9020.0).abs() < 1.0);
    }

    #[test]
    fn fractional_shifts_cover_the_bin_uniformly() {
        // The paper's Fig. 7(a,b): fractional offsets across boards span
        // the whole range ~uniformly. kHz-scale CFOs against a ~488 Hz bin
        // wrap many times, uniformising the fractional part.
        let m = OscillatorModel::default();
        let mut rng = StdRng::seed_from_u64(3);
        let bin_hz = 488.28;
        let fracs: Vec<f64> = (0..2000)
            .map(|_| {
                let ppm = m.sample_ppm(&mut rng);
                let prof = m.sample_profile(ppm, &mut rng);
                prof.fractional_shift(bin_hz, 256)
            })
            .collect();
        let d = ks_distance_uniform(&fracs, 0.0, 1.0);
        assert!(d < 0.05, "KS {d}");
    }

    #[test]
    fn aggregate_shift_combines_cfo_and_timing() {
        let p = HardwareProfile {
            cfo_hz: 976.5625, // exactly 2 bins at 488.28125 Hz/bin
            timing_offset_symbols: 0.25,
            phase: 0.0,
            cfo_jitter_hz: 0.0,
            timing_jitter_symbols: 0.0,
        };
        let shift = p.aggregate_shift_bins(488.28125, 256);
        // 2 bins from CFO − 0.25·256 = −64 bins from timing.
        assert!((shift - (2.0 - 64.0)).abs() < 1e-9);
    }

    #[test]
    fn ideal_profile_zero_shift() {
        let p = HardwareProfile::ideal();
        assert_eq!(p.aggregate_shift_bins(488.0, 256), 0.0);
        assert_eq!(p.fractional_shift(488.0, 256), 0.0);
    }

    #[test]
    fn profiles_differ_across_nodes() {
        let m = OscillatorModel::default();
        let mut rng = StdRng::seed_from_u64(9);
        let a = m.sample_profile(m.sample_ppm(&mut rng), &mut rng);
        let b = m.sample_profile(m.sample_ppm(&mut rng), &mut rng);
        assert_ne!(a, b);
    }

    #[test]
    fn board_ppm_stable_across_packets() {
        // The same board keeps its CFO (up to jitter) across packets: the
        // model separates board ppm (drawn once) from per-packet profile.
        let m = OscillatorModel::default();
        let mut rng = StdRng::seed_from_u64(21);
        let ppm = m.sample_ppm(&mut rng);
        let p1 = m.sample_profile(ppm, &mut rng);
        let p2 = m.sample_profile(ppm, &mut rng);
        assert_eq!(p1.cfo_hz, p2.cfo_hz);
        assert_ne!(p1.timing_offset_symbols, p2.timing_offset_symbols);
    }
}
