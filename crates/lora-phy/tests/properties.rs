//! Property-based tests for the LoRa PHY: the full coding chain and the
//! modem must round-trip arbitrary payloads, and the chain must survive the
//! error patterns it is designed for.

use lora_phy::detect::{decode_packet, transmit_packet};
use lora_phy::frame::{decode_frame, encode_frame};
use lora_phy::gray::{gray_decode, gray_encode};
use lora_phy::hamming::{decode_nibble, encode_nibble};
use lora_phy::interleave::{deinterleave_block, interleave_block};
use lora_phy::modem::Modem;
use lora_phy::params::{Bandwidth, CodeRate, PhyParams, SpreadingFactor};
use proptest::prelude::*;

fn arb_sf() -> impl Strategy<Value = SpreadingFactor> {
    prop::sample::select(SpreadingFactor::ALL.to_vec())
}

fn arb_cr() -> impl Strategy<Value = CodeRate> {
    prop::sample::select(vec![
        CodeRate::Cr45,
        CodeRate::Cr46,
        CodeRate::Cr47,
        CodeRate::Cr48,
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn frame_roundtrip_arbitrary_payloads(
        payload in prop::collection::vec(any::<u8>(), 0..64),
        sf in arb_sf(),
        cr in arb_cr(),
        crc in any::<bool>(),
    ) {
        let p = PhyParams { sf, bw: Bandwidth::Khz125, cr, preamble_len: 8, explicit_crc: crc };
        let syms = encode_frame(&p, &payload);
        // Every symbol stays inside the alphabet.
        for &s in &syms {
            prop_assert!((s as usize) < sf.chips());
        }
        let out = decode_frame(&p, &syms).unwrap();
        prop_assert_eq!(out.payload, payload);
        prop_assert!(out.crc_ok);
        prop_assert!(out.fec_reliable);
    }

    #[test]
    fn gray_roundtrip(v in 0u16..4096) {
        prop_assert_eq!(gray_decode(gray_encode(v)), v);
    }

    #[test]
    fn hamming_roundtrip_random_nibbles(n in 0u8..16, cr in arb_cr()) {
        let cw = encode_nibble(n, cr);
        prop_assert_eq!(decode_nibble(cw, cr).nibble(), n);
    }

    #[test]
    fn interleaver_roundtrip_random_blocks(
        sf in 7usize..=12,
        cw_bits in 5usize..=8,
        seed in any::<u64>(),
    ) {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let cws: Vec<u8> = (0..sf).map(|_| (next() % (1 << cw_bits)) as u8).collect();
        let syms = interleave_block(&cws, sf, cw_bits);
        prop_assert_eq!(deinterleave_block(&syms, sf, cw_bits), cws);
    }

    #[test]
    fn modem_roundtrip_random_symbols(
        syms in prop::collection::vec(0u16..128, 1..24),
    ) {
        let p = PhyParams { sf: SpreadingFactor::Sf7, ..PhyParams::default() };
        let m = Modem::new(p);
        let wave = m.modulate(&syms);
        prop_assert_eq!(m.demodulate(&wave, 0, syms.len()), syms);
    }

    #[test]
    fn end_to_end_packet_with_integer_cfo(
        payload in prop::collection::vec(any::<u8>(), 1..24),
        cfo_bins in 0u32..256,
    ) {
        use choir_dsp::complex::C64;
        let p = PhyParams::default(); // SF8
        let m = Modem::new(p);
        let wave = transmit_packet(&p, &payload);
        let shifted: Vec<C64> = wave
            .iter()
            .enumerate()
            .map(|(i, v)| v * C64::cis(2.0 * std::f64::consts::PI * cfo_bins as f64 * i as f64 / 256.0))
            .collect();
        let out = decode_packet(&shifted, &m, 0, 300).unwrap();
        prop_assert_eq!(out.payload, payload);
        prop_assert!(out.crc_ok);
    }

    #[test]
    fn adjacent_bin_error_in_each_block_is_corrected_at_cr48(
        payload in prop::collection::vec(any::<u8>(), 4..40),
        updown in any::<bool>(),
    ) {
        let p = PhyParams { sf: SpreadingFactor::Sf8, cr: CodeRate::Cr48, ..PhyParams::default() };
        let mut syms = encode_frame(&p, &payload);
        let n = p.sf.chips() as u16;
        // One ±1-bin error per interleaver block (8 symbols) — the error
        // pattern the Gray/interleave/Hamming stack is built to absorb.
        let hdr = 8;
        let mut i = hdr;
        while i < syms.len() {
            syms[i] = if updown { (syms[i] + 1) % n } else { (syms[i] + n - 1) % n };
            i += 8;
        }
        let out = decode_frame(&p, &syms).unwrap();
        prop_assert_eq!(out.payload, payload);
        prop_assert!(out.crc_ok);
    }
}
