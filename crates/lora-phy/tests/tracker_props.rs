//! Segmentation invariance of the multi-hypothesis stream tracker.
//!
//! The property underwriting the station's streaming mode: how an IQ
//! stream is sliced into `push` chunks is an accident of transport
//! (driver buffer sizes, USB latency, socket MTU) and must be
//! unobservable. For random two-packet scenes — arbitrary sub-symbol
//! starts, possible overlap, power imbalance, uniform noise — the
//! tracker fed random chunkings of 1..4096 samples must report exactly
//! the same confirmed starts, the same lifecycle event stream, and the
//! same terminal counts as one monolithic push, and the lifecycle
//! accounting identity (born = confirmed + expired + merged + live)
//! must hold at every intermediate snapshot.

use choir_dsp::complex::{c64, C64};
use lora_phy::detect::{HypothesisEvent, StreamScanner};
use lora_phy::modem::Modem;
use lora_phy::params::PhyParams;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn params() -> PhyParams {
    PhyParams::default() // SF8, 125 kHz, CR4/8
}

/// A deterministic two-packet scene: packet A at `start_a`, packet B
/// `gap` samples after A's first sample (overlapping when `gap` is
/// less than A's length), plus uniform amplitude noise.
fn scene(start_a: usize, gap: usize, amp_a: f64, amp_b: f64, noise: f64, seed: u64) -> Vec<C64> {
    let p = params();
    let wave_a = lora_phy::detect::transmit_packet(&p, b"alpha");
    let wave_b = lora_phy::detect::transmit_packet(&p, b"bravo");
    let start_b = start_a + gap;
    let total = (start_b + wave_b.len()).max(start_a + wave_a.len()) + 4 * 256;
    let mut stream = vec![C64::ZERO; total];
    for (i, &s) in wave_a.iter().enumerate() {
        stream[start_a + i] += s * amp_a;
    }
    for (i, &s) in wave_b.iter().enumerate() {
        stream[start_b + i] += s * amp_b;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    for z in &mut stream {
        *z += c64(rng.gen_range(-noise..=noise), rng.gen_range(-noise..=noise));
    }
    stream
}

/// Runs the tracker over `stream` delivered in the given chunk sizes,
/// checking the lifecycle accounting identity after every chunk.
/// Returns (confirmed starts, drained events, terminal counts).
fn run_chunked(
    stream: &[C64],
    chunks: impl Iterator<Item = usize>,
    threshold: f64,
) -> (
    Vec<u64>,
    Vec<HypothesisEvent>,
    lora_phy::detect::HypothesisCounts,
) {
    let mut scanner = StreamScanner::new(Modem::new(params()), threshold);
    let mut hits = Vec::new();
    let mut events = Vec::new();
    let mut at = 0;
    for len in chunks {
        if at >= stream.len() {
            break;
        }
        let len = len.min(stream.len() - at);
        scanner.push(&stream[at..at + len], &mut hits);
        at += len;
        assert!(
            scanner.counts().balanced(),
            "lifecycle accounting broke mid-stream: {:?}",
            scanner.counts()
        );
        scanner.drain_events(&mut events);
    }
    if at < stream.len() {
        scanner.push(&stream[at..], &mut hits);
    }
    scanner.flush(&mut hits);
    scanner.drain_events(&mut events);
    let counts = scanner.counts();
    assert!(counts.balanced(), "unbalanced after flush: {counts:?}");
    (hits, events, counts)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // Confirmed starts, the full event stream, and the terminal counts
    // are invariant to how the stream is sliced into chunks.
    #[test]
    fn confirmations_invariant_to_chunk_segmentation(
        start_a in 0usize..2048,
        // From heavy overlap (3 symbols in) to fully disjoint.
        gap in 768usize..14000,
        amp_a in 2.0f64..20.0,
        amp_b in 2.0f64..20.0,
        noise in 0.0f64..0.25,
        scene_seed in any::<u64>(),
        chunk_seed in any::<u64>(),
    ) {
        let stream = scene(start_a, gap, amp_a, amp_b, noise, scene_seed);
        let threshold = 40.0;

        let (ref_hits, ref_events, ref_counts) =
            run_chunked(&stream, std::iter::once(stream.len()), threshold);
        // Amplitudes ≥ 2 over ≤ 0.25 uniform noise always clear the
        // threshold: at least one packet confirms, or the property is
        // vacuously testing silence.
        prop_assert!(!ref_hits.is_empty(), "scene produced no confirmations");

        let mut rng = StdRng::seed_from_u64(chunk_seed);
        let mut sizes = Vec::new();
        let mut covered = 0;
        while covered < stream.len() {
            // Every fourth chunk forced tiny so sub-window deliveries are
            // always exercised alongside multi-symbol ones.
            let len = if sizes.len() % 4 == 0 {
                rng.gen_range(1..32usize)
            } else {
                rng.gen_range(32..4096usize)
            };
            sizes.push(len);
            covered += len;
        }
        let (hits, events, counts) = run_chunked(&stream, sizes.into_iter(), threshold);

        prop_assert_eq!(&hits, &ref_hits, "confirmed starts diverged");
        prop_assert_eq!(&events, &ref_events, "event stream diverged");
        prop_assert_eq!(counts, ref_counts, "terminal counts diverged");
    }
}
