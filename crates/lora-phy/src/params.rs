//! LoRa PHY parameters: spreading factors, bandwidths, code rates and the
//! derived air-time quantities the MAC simulator needs.
//!
//! LoRaWAN in the US915 band (the paper's deployment) uses bandwidths of
//! 125 kHz or 500 kHz and spreading factors 7–12 on the uplink; each symbol
//! carries `SF` bits as one of `2^SF` cyclic shifts of a base chirp.

/// Spreading factor: bits per symbol (symbol alphabet size is `2^SF`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SpreadingFactor {
    /// 7 bits/symbol, 128 chips.
    Sf7,
    /// 8 bits/symbol, 256 chips.
    Sf8,
    /// 9 bits/symbol, 512 chips.
    Sf9,
    /// 10 bits/symbol, 1024 chips.
    Sf10,
    /// 11 bits/symbol, 2048 chips.
    Sf11,
    /// 12 bits/symbol, 4096 chips.
    Sf12,
}

impl SpreadingFactor {
    /// All factors, ascending.
    pub const ALL: [SpreadingFactor; 6] = [
        SpreadingFactor::Sf7,
        SpreadingFactor::Sf8,
        SpreadingFactor::Sf9,
        SpreadingFactor::Sf10,
        SpreadingFactor::Sf11,
        SpreadingFactor::Sf12,
    ];

    /// Bits encoded per symbol.
    pub fn bits(self) -> u32 {
        match self {
            SpreadingFactor::Sf7 => 7,
            SpreadingFactor::Sf8 => 8,
            SpreadingFactor::Sf9 => 9,
            SpreadingFactor::Sf10 => 10,
            SpreadingFactor::Sf11 => 11,
            SpreadingFactor::Sf12 => 12,
        }
    }

    /// Chips (and critically-sampled samples) per symbol: `2^SF`.
    pub fn chips(self) -> usize {
        1usize << self.bits()
    }

    /// Builds from the numeric spreading factor (7–12).
    pub fn from_bits(sf: u32) -> Option<Self> {
        Self::ALL.into_iter().find(|s| s.bits() == sf)
    }

    /// Minimum demodulation SNR (dB) for this spreading factor, per the
    /// SX1276 datasheet sensitivity table. Higher SFs decode deeper below
    /// the noise floor.
    pub fn demod_floor_db(self) -> f64 {
        match self {
            SpreadingFactor::Sf7 => -7.5,
            SpreadingFactor::Sf8 => -10.0,
            SpreadingFactor::Sf9 => -12.5,
            SpreadingFactor::Sf10 => -15.0,
            SpreadingFactor::Sf11 => -17.5,
            SpreadingFactor::Sf12 => -20.0,
        }
    }
}

/// Channel bandwidth. The paper's clients use 125 kHz or 500 kHz depending
/// on the supported data rate.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Bandwidth {
    /// 125 kHz.
    Khz125,
    /// 250 kHz.
    Khz250,
    /// 500 kHz.
    Khz500,
}

impl Bandwidth {
    /// Bandwidth in Hz. Equals the critical (1 sample/chip) sample rate.
    pub fn hz(self) -> f64 {
        match self {
            Bandwidth::Khz125 => 125_000.0,
            Bandwidth::Khz250 => 250_000.0,
            Bandwidth::Khz500 => 500_000.0,
        }
    }
}

/// Forward error correction rate `4/(4+cr)` with `cr ∈ 1..=4`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CodeRate {
    /// 4/5 — single parity bit (error detection only).
    Cr45,
    /// 4/6 — two parity bits.
    Cr46,
    /// 4/7 — Hamming(7,4), corrects one bit per codeword.
    Cr47,
    /// 4/8 — extended Hamming(8,4), corrects one bit and detects two.
    Cr48,
}

impl CodeRate {
    /// Parity bits added to each 4-bit nibble.
    pub fn parity_bits(self) -> usize {
        match self {
            CodeRate::Cr45 => 1,
            CodeRate::Cr46 => 2,
            CodeRate::Cr47 => 3,
            CodeRate::Cr48 => 4,
        }
    }

    /// Codeword length in bits (`4 + parity`).
    pub fn codeword_bits(self) -> usize {
        4 + self.parity_bits()
    }

    /// Rate as a fraction (payload bits / coded bits).
    pub fn rate(self) -> f64 {
        4.0 / self.codeword_bits() as f64
    }
}

/// Complete PHY configuration for one transmission.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PhyParams {
    /// Spreading factor.
    pub sf: SpreadingFactor,
    /// Bandwidth.
    pub bw: Bandwidth,
    /// FEC code rate.
    pub cr: CodeRate,
    /// Number of preamble up-chirps (LoRaWAN default is 8).
    pub preamble_len: usize,
    /// Whether a 16-bit payload CRC trails the payload.
    pub explicit_crc: bool,
}

impl Default for PhyParams {
    fn default() -> Self {
        PhyParams {
            sf: SpreadingFactor::Sf8,
            bw: Bandwidth::Khz125,
            cr: CodeRate::Cr48,
            preamble_len: 8,
            explicit_crc: true,
        }
    }
}

impl PhyParams {
    /// Samples (= chips) per symbol at critical sampling.
    pub fn samples_per_symbol(&self) -> usize {
        self.sf.chips()
    }

    /// Symbol duration in seconds: `2^SF / BW`.
    pub fn symbol_time(&self) -> f64 {
        self.sf.chips() as f64 / self.bw.hz()
    }

    /// FFT bin width in Hz after dechirping: `BW / 2^SF = 1/T_sym`.
    pub fn bin_hz(&self) -> f64 {
        self.bw.hz() / self.sf.chips() as f64
    }

    /// Uncoded PHY bit rate in bits/s (`SF / T_sym`).
    pub fn raw_bit_rate(&self) -> f64 {
        self.sf.bits() as f64 / self.symbol_time()
    }

    /// Effective data rate after FEC, bits/s.
    pub fn data_rate(&self) -> f64 {
        self.raw_bit_rate() * self.cr.rate()
    }

    /// Number of data symbols needed to carry `payload_bytes` (after
    /// whitening, FEC and interleaving; excludes preamble). Interleaver
    /// blocks are `SF` codewords → `4 + CR` symbols.
    pub fn payload_symbols(&self, payload_bytes: usize) -> usize {
        let total_bytes = payload_bytes + if self.explicit_crc { 2 } else { 0 };
        let nibbles = total_bytes * 2;
        let sf = self.sf.bits() as usize;
        let blocks = nibbles.div_ceil(sf);
        blocks * self.cr.codeword_bits()
    }

    /// Total on-air symbols for a payload: preamble + sync (2) + payload.
    pub fn packet_symbols(&self, payload_bytes: usize) -> usize {
        self.preamble_len + 2 + self.payload_symbols(payload_bytes)
    }

    /// Time on air for a packet carrying `payload_bytes`, seconds.
    pub fn time_on_air(&self, payload_bytes: usize) -> f64 {
        self.packet_symbols(payload_bytes) as f64 * self.symbol_time()
    }
}

// Tests assert on exactly-representable values (0.0, bin centres).
#[allow(clippy::float_cmp)]
#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sf_chips_and_bits() {
        assert_eq!(SpreadingFactor::Sf7.chips(), 128);
        assert_eq!(SpreadingFactor::Sf12.chips(), 4096);
        assert_eq!(SpreadingFactor::Sf9.bits(), 9);
        assert_eq!(SpreadingFactor::from_bits(10), Some(SpreadingFactor::Sf10));
        assert_eq!(SpreadingFactor::from_bits(6), None);
    }

    #[test]
    fn demod_floor_monotone() {
        for w in SpreadingFactor::ALL.windows(2) {
            assert!(w[0].demod_floor_db() > w[1].demod_floor_db());
        }
    }

    #[test]
    fn symbol_time_sf8_125k() {
        let p = PhyParams::default();
        // 256 chips / 125 kHz = 2.048 ms
        assert!((p.symbol_time() - 2.048e-3).abs() < 1e-12);
        assert!((p.bin_hz() - 488.28125).abs() < 1e-9);
    }

    #[test]
    fn raw_rates() {
        let p = PhyParams {
            sf: SpreadingFactor::Sf7,
            bw: Bandwidth::Khz500,
            cr: CodeRate::Cr45,
            ..PhyParams::default()
        };
        // SF7@500k: T = 128/500k = 256 µs; raw = 7/256µs ≈ 27.34 kbps
        assert!((p.raw_bit_rate() - 27343.75).abs() < 1e-6);
        assert!((p.data_rate() - 27343.75 * 0.8).abs() < 1e-6);
    }

    #[test]
    fn code_rates() {
        assert_eq!(CodeRate::Cr45.codeword_bits(), 5);
        assert_eq!(CodeRate::Cr48.codeword_bits(), 8);
        assert!((CodeRate::Cr46.rate() - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn payload_symbol_count() {
        let p = PhyParams::default(); // SF8, CR4/8, CRC on
                                      // 10 bytes + 2 CRC = 24 nibbles → 3 blocks of 8 → 3·8 = 24 symbols.
        assert_eq!(p.payload_symbols(10), 24);
        // Packet adds 8 preamble + 2 sync.
        assert_eq!(p.packet_symbols(10), 34);
    }

    #[test]
    fn time_on_air_scales_with_sf() {
        let mut p = PhyParams {
            sf: SpreadingFactor::Sf7,
            ..PhyParams::default()
        };
        let t7 = p.time_on_air(16);
        p.sf = SpreadingFactor::Sf9;
        let t9 = p.time_on_air(16);
        assert!(t9 > 2.0 * t7, "t7={t7} t9={t9}");
    }

    #[test]
    fn bandwidth_values() {
        assert_eq!(Bandwidth::Khz125.hz(), 125e3);
        assert_eq!(Bandwidth::Khz500.hz(), 500e3);
    }
}
