//! Framing: the byte → symbol pipeline and back.
//!
//! Transmit side: payload → CRC-16 append → whitening → nibbles → Hamming
//! codewords → diagonal interleaving → Gray mapping → chirp symbols.
//! An explicit PHY header (length, code rate, CRC flag, 4-bit checksum)
//! rides in its own interleaver block, always at the robust CR 4/8 — as in
//! LoRa's explicit header mode.
//!
//! Deviations from the closed LoRa spec, chosen to keep the pipeline
//! well-defined and documented (none affect the collision-decoding physics
//! Choir operates on):
//! * whitening uses the documented PN9 LFSR (see [`crate::whiten`]);
//! * the header block is not sent at reduced SF ("low data-rate
//!   optimisation" is not modelled);
//! * the CRC is computed over the unwhitened payload.

use crate::crc::{crc16, header_checksum};
use crate::gray::{gray_decode, gray_encode};
use crate::hamming::{decode_nibbles, encode_nibbles};
use crate::interleave::{deinterleave, interleave};
use crate::params::{CodeRate, PhyParams};
use crate::whiten::whiten;

/// Symbol value used for every preamble up-chirp.
pub const PREAMBLE_SYMBOL: u16 = 0;

/// The two sync-word symbols following the preamble (a "network ID"; the
/// values fit every SF ≥ 7 alphabet).
pub const SYNC_SYMBOLS: [u16; 2] = [24, 48];

/// Maximum payload length in bytes (one length byte in the header).
pub const MAX_PAYLOAD: usize = 255;

/// A decoded frame together with its integrity verdicts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DecodedFrame {
    /// Recovered payload bytes (CRC trailer stripped).
    pub payload: Vec<u8>,
    /// True when the payload CRC matched (always true when the frame was
    /// sent without a CRC).
    pub crc_ok: bool,
    /// True when every Hamming codeword decoded without uncorrectable
    /// errors.
    pub fec_reliable: bool,
}

/// Structural decoding failures (before payload integrity is even judged).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// Fewer symbols than one header block.
    TooShort,
    /// Header checksum mismatch — length/flags untrustworthy.
    BadHeader,
    /// Header demanded more payload symbols than were supplied.
    Truncated,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::TooShort => write!(f, "frame shorter than one header block"),
            FrameError::BadHeader => write!(f, "header checksum mismatch"),
            FrameError::Truncated => write!(f, "frame truncated mid-payload"),
        }
    }
}

impl std::error::Error for FrameError {}

fn cr_to_bits(cr: CodeRate) -> u8 {
    match cr {
        CodeRate::Cr45 => 0,
        CodeRate::Cr46 => 1,
        CodeRate::Cr47 => 2,
        CodeRate::Cr48 => 3,
    }
}

fn cr_from_bits(b: u8) -> CodeRate {
    match b & 0b11 {
        0 => CodeRate::Cr45,
        1 => CodeRate::Cr46,
        2 => CodeRate::Cr47,
        _ => CodeRate::Cr48,
    }
}

fn bytes_to_nibbles(bytes: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(bytes.len() * 2);
    for &b in bytes {
        out.push(b & 0x0F);
        out.push(b >> 4);
    }
    out
}

fn nibbles_to_bytes(nibbles: &[u8]) -> Vec<u8> {
    nibbles
        .chunks(2)
        .map(|c| {
            let lo = c[0] & 0x0F;
            let hi = if c.len() > 1 { c[1] & 0x0F } else { 0 };
            lo | (hi << 4)
        })
        .collect()
}

/// Encodes the 3-byte PHY header into one interleaver block of CR 4/8
/// symbols.
fn encode_header(params: &PhyParams, payload_len: usize) -> Vec<u16> {
    let sf = params.sf.bits() as usize;
    let flags = (cr_to_bits(params.cr) << 1) | params.explicit_crc as u8;
    let base = [payload_len as u8, flags];
    let hdr = [base[0], base[1], header_checksum(&base)];
    let mut nibbles = bytes_to_nibbles(&hdr);
    nibbles.resize(sf, 0); // pad the block (header is 6 nibbles; SF ≥ 7)
    let cws = encode_nibbles(&nibbles, CodeRate::Cr48);
    interleave(&cws, sf, CodeRate::Cr48.codeword_bits())
        .into_iter()
        .map(gray_encode)
        .collect()
}

/// Encodes a payload into the data-symbol sequence (header block included,
/// preamble and sync excluded).
///
/// # Panics
/// Panics when the payload exceeds [`MAX_PAYLOAD`].
pub fn encode_frame(params: &PhyParams, payload: &[u8]) -> Vec<u16> {
    assert!(payload.len() <= MAX_PAYLOAD, "payload too long");
    let sf = params.sf.bits() as usize;
    let cw_bits = params.cr.codeword_bits();

    let mut symbols = encode_header(params, payload.len());

    let mut body = payload.to_vec();
    whiten(&mut body);
    if params.explicit_crc {
        let c = crc16(payload);
        body.push((c >> 8) as u8);
        body.push((c & 0xFF) as u8);
    }
    let nibbles = bytes_to_nibbles(&body);
    let cws = encode_nibbles(&nibbles, params.cr);
    symbols.extend(interleave(&cws, sf, cw_bits).into_iter().map(gray_encode));
    symbols
}

/// Builds the complete on-air symbol sequence: preamble up-chirps, sync
/// word, then the encoded frame.
pub fn packet_symbols(params: &PhyParams, payload: &[u8]) -> Vec<u16> {
    let mut syms = vec![PREAMBLE_SYMBOL; params.preamble_len];
    syms.extend_from_slice(&SYNC_SYMBOLS);
    syms.extend(encode_frame(params, payload));
    syms
}

/// Number of data symbols (header block + payload blocks) for a payload of
/// `len` bytes under `params`.
pub fn frame_symbol_count(params: &PhyParams, len: usize) -> usize {
    let sf = params.sf.bits() as usize;
    let hdr = CodeRate::Cr48.codeword_bits();
    let body_bytes = len + if params.explicit_crc { 2 } else { 0 };
    let blocks = (body_bytes * 2).div_ceil(sf);
    hdr + blocks * params.cr.codeword_bits()
}

/// Decodes a data-symbol sequence produced by [`encode_frame`].
///
/// Only `params.sf` is trusted from the caller; code rate, CRC flag and
/// length come from the decoded header, as on a real gateway.
pub fn decode_frame(params: &PhyParams, symbols: &[u16]) -> Result<DecodedFrame, FrameError> {
    let sf = params.sf.bits() as usize;
    let hdr_syms = CodeRate::Cr48.codeword_bits();
    if symbols.len() < hdr_syms {
        return Err(FrameError::TooShort);
    }
    // Header block.
    let hdr_grayless: Vec<u16> = symbols[..hdr_syms]
        .iter()
        .map(|&s| gray_decode(s))
        .collect();
    let hdr_cws = deinterleave(&hdr_grayless, sf, CodeRate::Cr48.codeword_bits());
    let (hdr_nibbles, hdr_reliable) = decode_nibbles(&hdr_cws, CodeRate::Cr48);
    let hdr_bytes = nibbles_to_bytes(&hdr_nibbles[..6]);
    let (len, flags, check) = (hdr_bytes[0], hdr_bytes[1], hdr_bytes[2] & 0x0F);
    if header_checksum(&[len, flags]) != check || !hdr_reliable {
        return Err(FrameError::BadHeader);
    }
    let cr = cr_from_bits(flags >> 1);
    let has_crc = flags & 1 == 1;
    let cw_bits = cr.codeword_bits();

    let body_bytes = len as usize + if has_crc { 2 } else { 0 };
    let blocks = (body_bytes * 2).div_ceil(sf);
    let need = blocks * cw_bits;
    let data_syms = &symbols[hdr_syms..];
    if data_syms.len() < need {
        return Err(FrameError::Truncated);
    }
    let grayless: Vec<u16> = data_syms[..need].iter().map(|&s| gray_decode(s)).collect();
    let cws = deinterleave(&grayless, sf, cw_bits);
    let (nibbles, fec_reliable) = decode_nibbles(&cws, cr);
    let mut body = nibbles_to_bytes(&nibbles[..body_bytes * 2]);
    body.truncate(body_bytes);

    let (payload_whitened, crc_ok) = if has_crc {
        let trailer = &body[len as usize..];
        let rx_crc = ((trailer[0] as u16) << 8) | trailer[1] as u16;
        let mut p = body[..len as usize].to_vec();
        whiten(&mut p); // un-whiten to check CRC over the original payload
        let ok = crc16(&p) == rx_crc;
        (body[..len as usize].to_vec(), ok)
    } else {
        (body, true)
    };
    let mut payload = payload_whitened;
    whiten(&mut payload);
    Ok(DecodedFrame {
        payload,
        crc_ok,
        fec_reliable,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{Bandwidth, SpreadingFactor};

    fn params(sf: SpreadingFactor, cr: CodeRate, crc: bool) -> PhyParams {
        PhyParams {
            sf,
            bw: Bandwidth::Khz125,
            cr,
            preamble_len: 8,
            explicit_crc: crc,
        }
    }

    #[test]
    fn roundtrip_every_sf_and_cr() {
        let payload: Vec<u8> = (0..23).map(|i| (i * 7 + 13) as u8).collect();
        for sf in SpreadingFactor::ALL {
            for cr in [
                CodeRate::Cr45,
                CodeRate::Cr46,
                CodeRate::Cr47,
                CodeRate::Cr48,
            ] {
                let p = params(sf, cr, true);
                let syms = encode_frame(&p, &payload);
                assert_eq!(syms.len(), frame_symbol_count(&p, payload.len()));
                for &s in &syms {
                    assert!((s as usize) < sf.chips());
                }
                let out = decode_frame(&p, &syms).unwrap();
                assert_eq!(out.payload, payload, "sf={sf:?} cr={cr:?}");
                assert!(out.crc_ok);
                assert!(out.fec_reliable);
            }
        }
    }

    #[test]
    fn roundtrip_without_crc() {
        let p = params(SpreadingFactor::Sf8, CodeRate::Cr45, false);
        let payload = b"no crc here".to_vec();
        let out = decode_frame(&p, &encode_frame(&p, &payload)).unwrap();
        assert_eq!(out.payload, payload);
        assert!(out.crc_ok);
    }

    #[test]
    fn empty_payload() {
        let p = params(SpreadingFactor::Sf7, CodeRate::Cr48, true);
        let out = decode_frame(&p, &encode_frame(&p, &[])).unwrap();
        assert_eq!(out.payload, Vec::<u8>::new());
        assert!(out.crc_ok);
    }

    #[test]
    fn header_carries_code_rate() {
        // Encode at CR4/7 but decode with params claiming CR4/5: the header
        // must override and still decode correctly.
        let enc = params(SpreadingFactor::Sf9, CodeRate::Cr47, true);
        let mut dec = enc;
        dec.cr = CodeRate::Cr45;
        let payload = b"rate from header".to_vec();
        let out = decode_frame(&dec, &encode_frame(&enc, &payload)).unwrap();
        assert_eq!(out.payload, payload);
    }

    #[test]
    fn single_symbol_corruption_corrected_at_cr48() {
        let p = params(SpreadingFactor::Sf8, CodeRate::Cr48, true);
        let payload: Vec<u8> = (0..16).collect();
        let mut syms = encode_frame(&p, &payload);
        let hdr = CodeRate::Cr48.codeword_bits();
        // A ±1 bin error (the typical demod error after Gray mapping flips
        // one bit per codeword) in one payload symbol.
        syms[hdr + 3] = gray_encode(gray_decode(syms[hdr + 3]) ^ 1);
        let out = decode_frame(&p, &syms).unwrap();
        assert_eq!(out.payload, payload);
        assert!(out.crc_ok);
    }

    #[test]
    fn gray_plus_interleave_localises_adjacent_bin_error() {
        // Off-by-one bin: gray ensures one bit flip; interleaving spreads it
        // to exactly one codeword bit; Hamming corrects it — even a whole
        // symbol off by one bin per block.
        let p = params(SpreadingFactor::Sf10, CodeRate::Cr48, true);
        let payload: Vec<u8> = (0..30).map(|i| i as u8 ^ 0x5A).collect();
        let mut syms = encode_frame(&p, &payload);
        let n = p.sf.chips() as u16;
        for s in syms
            .iter_mut()
            .skip(CodeRate::Cr48.codeword_bits())
            .step_by(8)
        {
            *s = (*s + 1) % n; // adjacent-bin error in symbol space
        }
        let out = decode_frame(&p, &syms).unwrap();
        assert_eq!(out.payload, payload);
    }

    #[test]
    fn corrupted_payload_fails_crc() {
        let p = params(SpreadingFactor::Sf8, CodeRate::Cr45, true);
        let payload = b"integrity matters".to_vec();
        let mut syms = encode_frame(&p, &payload);
        let idx = syms.len() - 2;
        syms[idx] ^= 0x3; // two bit errors: beyond CR4/5
        let out = decode_frame(&p, &syms).unwrap();
        assert!(!out.crc_ok || out.payload != payload);
    }

    #[test]
    fn bad_header_detected() {
        let p = params(SpreadingFactor::Sf8, CodeRate::Cr48, true);
        let mut syms = encode_frame(&p, b"x");
        syms[0] ^= 0x33; // wreck the header block badly
        syms[1] ^= 0x1C;
        syms[2] ^= 0x0F;
        match decode_frame(&p, &syms) {
            Err(FrameError::BadHeader) | Err(FrameError::Truncated) => {}
            other => {
                // Header FEC may occasionally correct all damage; in that
                // case the decode must still be fully correct.
                let f = other.expect("decode");
                assert_eq!(f.payload, b"x".to_vec());
            }
        }
    }

    #[test]
    fn too_short_and_truncated() {
        let p = params(SpreadingFactor::Sf8, CodeRate::Cr48, true);
        assert_eq!(decode_frame(&p, &[0; 3]), Err(FrameError::TooShort));
        let syms = encode_frame(&p, b"hello world");
        assert_eq!(
            decode_frame(&p, &syms[..CodeRate::Cr48.codeword_bits() + 2]),
            Err(FrameError::Truncated)
        );
    }

    #[test]
    fn packet_symbols_structure() {
        let p = params(SpreadingFactor::Sf8, CodeRate::Cr48, true);
        let payload = b"abc".to_vec();
        let syms = packet_symbols(&p, &payload);
        assert_eq!(&syms[..8], &[PREAMBLE_SYMBOL; 8]);
        assert_eq!(&syms[8..10], &SYNC_SYMBOLS);
        let frame = &syms[10..];
        let out = decode_frame(&p, frame).unwrap();
        assert_eq!(out.payload, payload);
    }

    #[test]
    fn nibble_helpers_roundtrip() {
        let bytes = vec![0x12, 0xAB, 0xF0];
        let n = bytes_to_nibbles(&bytes);
        assert_eq!(n, vec![0x2, 0x1, 0xB, 0xA, 0x0, 0xF]);
        assert_eq!(nibbles_to_bytes(&n), bytes);
    }

    #[test]
    #[should_panic(expected = "payload too long")]
    fn oversize_payload_panics() {
        let p = params(SpreadingFactor::Sf7, CodeRate::Cr45, false);
        encode_frame(&p, &[0u8; 256]);
    }
}
