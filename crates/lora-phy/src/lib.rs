//! # lora-phy — a software LoRa physical layer
//!
//! A from-scratch implementation of the LoRa chirp-spread-spectrum PHY used
//! by the Choir reproduction (SIGCOMM 2017): chirp synthesis evaluable at
//! fractional chip offsets (the hook the channel simulator uses to model
//! hardware timing offsets exactly), symbol modulation/demodulation, and
//! the full coding chain — whitening, Hamming FEC (4/5–4/8), diagonal
//! interleaving, Gray mapping, framing with header and CRC — plus the
//! standard single-user packet detection and decoding path that serves as
//! the LoRaWAN baseline in the paper's evaluation.
//!
//! ```
//! use lora_phy::params::PhyParams;
//! use lora_phy::modem::Modem;
//! use lora_phy::detect::{transmit_packet, decode_packet};
//!
//! let params = PhyParams::default(); // SF8, 125 kHz, CR 4/8
//! let wave = transmit_packet(&params, b"hello");
//! let modem = Modem::new(params);
//! let frame = decode_packet(&wave, &modem, 0, 100).unwrap();
//! assert_eq!(frame.payload, b"hello");
//! assert!(frame.crc_ok);
//! ```

#![deny(missing_docs)]

pub mod chirp;
pub mod crc;
pub mod detect;
pub mod frame;
pub mod gray;
pub mod hamming;
pub mod interleave;
pub mod modem;
pub mod params;
pub mod whiten;

pub use frame::{DecodedFrame, FrameError};
pub use modem::Modem;
pub use params::{Bandwidth, CodeRate, PhyParams, SpreadingFactor};
