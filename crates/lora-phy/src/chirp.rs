//! Chirp synthesis — the waveform model everything else rests on.
//!
//! A LoRa symbol `s ∈ [0, 2^SF)` is the base up-chirp cyclically shifted by
//! `s` chips: its instantaneous frequency starts at `(s/N − 1/2)·B`, rises
//! linearly at `B/T` Hz/s, and wraps from `+B/2` back to `−B/2` after
//! `N − s` chips (Fig. 2 of the paper).
//!
//! We evaluate the waveform *analytically at fractional chip time*, which
//! lets the channel simulator delay a transmitter by any sub-sample timing
//! offset exactly — no interpolation error. At integer chip times the
//! wrapped phase coincides with the textbook unwrapped quadratic
//! `exp(j2π(τ²/2N + (s/N − ½)τ))` because the wrap only subtracts whole
//! cycles there; at fractional times the wrap matters and is modelled.

use choir_dsp::complex::C64;
use choir_sync::{Mutex, OnceLock};
use std::collections::HashMap;
use std::sync::Arc;

/// Phase in radians of the symbol-`s` up-chirp at fractional chip time
/// `tau ∈ [0, n)`, for an alphabet of `n = 2^SF` chips.
///
/// The piecewise form subtracts one cycle per chip after the frequency
/// wrap at `tau_w = n − s`:
/// `φ(τ)/2π = τ²/(2n) + (s/n − ½)·τ − max(0, τ − (n − s))`.
pub fn symbol_phase(n: usize, s: u16, tau: f64) -> f64 {
    debug_assert!((s as usize) < n, "symbol value out of alphabet");
    let nf = n as f64;
    let sv = s as f64;
    let wrap = (tau - (nf - sv)).max(0.0);
    2.0 * std::f64::consts::PI * (tau * tau / (2.0 * nf) + (sv / nf - 0.5) * tau - wrap)
}

/// One sample of the symbol-`s` up-chirp at fractional chip time `tau`.
/// Returns zero outside `[0, n)` — the symbol does not exist there.
pub fn symbol_sample(n: usize, s: u16, tau: f64) -> C64 {
    if tau < 0.0 || tau >= n as f64 {
        return C64::ZERO;
    }
    C64::cis(symbol_phase(n, s, tau))
}

/// The base up-chirp (`s = 0`) sampled at integer chips.
pub fn base_upchirp(n: usize) -> Vec<C64> {
    (0..n)
        .map(|i| C64::cis(symbol_phase(n, 0, i as f64)))
        .collect()
}

/// The base down-chirp: complex conjugate of the base up-chirp. Multiplying
/// a received symbol by this "dechirps" it into a pure tone.
///
/// Conjugation goes through the DSP backend, which is exact (a sign-bit
/// flip) in every implementation — the table is identical regardless of
/// the backend active when it was first built, so the process-wide
/// caches below stay backend-independent.
pub fn base_downchirp(n: usize) -> Vec<C64> {
    let up = base_upchirp(n);
    let mut down = vec![C64::ZERO; n];
    choir_dsp::backend::conj_into(&up, &mut down);
    down
}

/// Process-wide cached base up-chirp for `n` chips, shared via `Arc`.
///
/// The base tables are pure functions of `n` and every decoder, estimator
/// and modem for the same spreading factor uses the same ones; caching them
/// (mirroring `choir_dsp::fft::plan`) means constructing those objects stops
/// re-deriving `n` transcendentals each. Only a handful of distinct `n`
/// values ever occur (one per spreading factor), so the footprint is tiny.
pub fn base_upchirp_cached(n: usize) -> Arc<Vec<C64>> {
    cached_tables(n).0
}

/// Process-wide cached base down-chirp for `n` chips, shared via `Arc`.
/// See [`base_upchirp_cached`].
pub fn base_downchirp_cached(n: usize) -> Arc<Vec<C64>> {
    cached_tables(n).1
}

fn cached_tables(n: usize) -> (Arc<Vec<C64>>, Arc<Vec<C64>>) {
    type Tables = Mutex<HashMap<usize, (Arc<Vec<C64>>, Arc<Vec<C64>>)>>;
    static GLOBAL: OnceLock<Tables> = OnceLock::new();
    let cache = GLOBAL.get_or_init(|| Mutex::new(HashMap::new()));
    // The facade lock recovers from poisoning; a half-initialised map
    // entry cannot exist (entries are inserted whole).
    let mut map = cache.lock();
    map.entry(n)
        .or_insert_with(|| {
            let up = Arc::new(base_upchirp(n));
            let down = Arc::new(base_downchirp(n));
            (up, down)
        })
        .clone()
}

/// The symbol-`s` up-chirp sampled at integer chips (ideal transmitter).
pub fn modulated_chirp(n: usize, s: u16) -> Vec<C64> {
    (0..n)
        .map(|i| C64::cis(symbol_phase(n, s, i as f64)))
        .collect()
}

/// A whole packet's baseband waveform, evaluable at fractional chip time.
///
/// Symbol `k` occupies global chip time `[k·n, (k+1)·n)`. Each symbol's
/// phase restarts at zero (per-symbol phase reset; the SX1276 is
/// phase-continuous, but the dechirp-per-symbol receiver is insensitive to
/// the difference and the reset makes the per-symbol channel phase model of
/// Sec. 6.2 exact).
#[derive(Clone, Debug)]
pub struct PacketWaveform {
    /// Chips per symbol.
    n: usize,
    /// The symbol sequence, preamble included.
    symbols: Vec<u16>,
}

impl PacketWaveform {
    /// Builds a waveform for `symbols` with `n = 2^SF` chips per symbol.
    ///
    /// # Panics
    /// Panics if any symbol value is outside the alphabet.
    pub fn new(n: usize, symbols: Vec<u16>) -> Self {
        assert!(
            n.is_power_of_two(),
            "chips per symbol must be a power of two"
        );
        for &s in &symbols {
            assert!((s as usize) < n, "symbol {s} out of alphabet {n}");
        }
        PacketWaveform { n, symbols }
    }

    /// Chips per symbol.
    pub fn chips_per_symbol(&self) -> usize {
        self.n
    }

    /// Number of symbols (preamble included).
    pub fn num_symbols(&self) -> usize {
        self.symbols.len()
    }

    /// The symbol sequence.
    pub fn symbols(&self) -> &[u16] {
        &self.symbols
    }

    /// Total duration in chips.
    pub fn duration_chips(&self) -> f64 {
        (self.n * self.symbols.len()) as f64
    }

    /// Evaluates the waveform at global fractional chip time `tau`
    /// (zero outside the packet).
    pub fn sample(&self, tau: f64) -> C64 {
        if tau < 0.0 {
            return C64::ZERO;
        }
        let sym_idx = (tau / self.n as f64).floor() as usize;
        if sym_idx >= self.symbols.len() {
            return C64::ZERO;
        }
        let local = tau - (sym_idx * self.n) as f64;
        symbol_sample(self.n, self.symbols[sym_idx], local)
    }

    /// Renders the ideal (zero-offset) waveform at integer chips.
    pub fn render(&self) -> Vec<C64> {
        self.symbols
            .iter()
            .flat_map(|&s| modulated_chirp(self.n, s))
            .collect()
    }
}

// Tests assert on exactly-representable values (0.0, bin centres).
#[allow(clippy::float_cmp)]
#[cfg(test)]
mod tests {
    use super::*;
    use choir_dsp::fft::fft;

    #[test]
    fn base_chirps_are_unit_modulus() {
        for z in base_upchirp(64) {
            assert!((z.abs() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn cached_tables_are_shared_and_exact() {
        let a = base_upchirp_cached(64);
        let b = base_upchirp_cached(64);
        assert!(Arc::ptr_eq(&a, &b), "same n must share one table");
        assert_eq!(a.as_slice(), base_upchirp(64).as_slice());
        let d = base_downchirp_cached(64);
        assert_eq!(d.as_slice(), base_downchirp(64).as_slice());
    }

    #[test]
    fn downchirp_is_conjugate() {
        let up = base_upchirp(32);
        let down = base_downchirp(32);
        for (u, d) in up.iter().zip(&down) {
            assert!((u.conj() - d).abs() < 1e-12);
        }
    }

    #[test]
    fn dechirped_symbol_is_pure_tone_at_s() {
        let n = 128;
        let down = base_downchirp(n);
        for s in [0u16, 1, 17, 64, 127] {
            let sym = modulated_chirp(n, s);
            let dechirped: Vec<C64> = sym.iter().zip(&down).map(|(a, b)| a * b).collect();
            let spec = fft(&dechirped);
            let (kmax, _) = spec
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.abs().total_cmp(&b.1.abs()))
                .unwrap();
            assert_eq!(kmax, s as usize, "symbol {s}");
            // All energy in one bin: perfect orthogonality at integer chips.
            assert!((spec[kmax].abs() - n as f64).abs() < 1e-9);
        }
    }

    #[test]
    fn wrapped_phase_matches_unwrapped_at_integers() {
        let n = 256;
        let s = 100u16;
        for i in 0..n {
            let tau = i as f64;
            let wrapped = C64::cis(symbol_phase(n, s, tau));
            let nf = n as f64;
            let unwrapped = C64::cis(
                2.0 * std::f64::consts::PI * (tau * tau / (2.0 * nf) + (s as f64 / nf - 0.5) * tau),
            );
            assert!((wrapped - unwrapped).abs() < 1e-9, "chip {i}");
        }
    }

    #[test]
    fn instantaneous_frequency_wraps() {
        // Numeric derivative of phase: before the wrap point the frequency
        // is (s/n - 1/2 + tau/n) cycles/chip; after it drops by 1.
        let n = 128;
        let s = 96u16;
        let h = 1e-6;
        let freq = |tau: f64| {
            (symbol_phase(n, s, tau + h) - symbol_phase(n, s, tau - h))
                / (2.0 * h)
                / (2.0 * std::f64::consts::PI)
        };
        let pre = freq(10.0);
        let expected_pre = s as f64 / n as f64 - 0.5 + 10.0 / n as f64;
        assert!((pre - expected_pre).abs() < 1e-6);
        let post = freq((n - s as usize) as f64 + 10.0);
        let expected_post = expected_pre + ((n - s as usize) as f64) / n as f64 - 1.0;
        assert!(
            (post - expected_post).abs() < 1e-6,
            "post {post} vs {expected_post}"
        );
    }

    #[test]
    fn timing_offset_shifts_dechirp_peak() {
        // Delay by Δ chips → dechirped tone moves by −Δ bins (Eqn. 5).
        let n = 128;
        let s = 40u16;
        let delta = 3.0;
        let down = base_downchirp(n);
        let rx: Vec<C64> = (0..n)
            .map(|i| symbol_sample(n, s, i as f64 - delta) * down[i])
            .collect();
        let spec = fft(&rx);
        let (kmax, _) = spec
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.abs().total_cmp(&b.1.abs()))
            .unwrap();
        assert_eq!(kmax, (s as usize + n - 3) % n);
    }

    #[test]
    fn packet_waveform_sampling() {
        let pw = PacketWaveform::new(64, vec![0, 5, 63]);
        assert_eq!(pw.num_symbols(), 3);
        assert_eq!(pw.duration_chips(), 192.0);
        // Inside symbol 1 at local chip 10:
        let v = pw.sample(64.0 + 10.0);
        let expect = symbol_sample(64, 5, 10.0);
        assert!((v - expect).abs() < 1e-12);
        // Outside the packet:
        assert_eq!(pw.sample(-0.5), C64::ZERO);
        assert_eq!(pw.sample(192.0), C64::ZERO);
    }

    #[test]
    fn render_matches_sample_at_integers() {
        let pw = PacketWaveform::new(32, vec![3, 31, 0, 16]);
        let r = pw.render();
        assert_eq!(r.len(), 128);
        for (i, v) in r.iter().enumerate() {
            assert!((v - pw.sample(i as f64)).abs() < 1e-12, "chip {i}");
        }
    }

    #[test]
    #[should_panic(expected = "out of alphabet")]
    fn symbol_out_of_alphabet_panics() {
        let _ = PacketWaveform::new(64, vec![64]);
    }

    #[test]
    fn adjacent_symbols_orthogonal_under_dechirp() {
        // Energy of symbol a dechirped lands in bin a, not bin b.
        let n = 64;
        let down = base_downchirp(n);
        let a = modulated_chirp(n, 10);
        let de: Vec<C64> = a.iter().zip(&down).map(|(x, d)| x * d).collect();
        let spec = fft(&de);
        assert!(spec[10].abs() > 1e3 * spec[20].abs());
    }
}
