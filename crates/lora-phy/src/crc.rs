//! CRC-16/CCITT-FALSE — the payload integrity check LoRa appends when the
//! explicit-CRC flag is set, plus the small header checksum.

/// CRC-16/CCITT-FALSE: polynomial `0x1021`, initial value `0xFFFF`, no
/// reflection, no final XOR.
pub fn crc16(data: &[u8]) -> u16 {
    let mut crc: u16 = 0xFFFF;
    for &b in data {
        crc ^= (b as u16) << 8;
        for _ in 0..8 {
            if crc & 0x8000 != 0 {
                crc = (crc << 1) ^ 0x1021;
            } else {
                crc <<= 1;
            }
        }
    }
    crc
}

/// 4-bit header checksum: XOR-fold of the header bytes, as a cheap guard on
/// the PHY header fields (length, code rate, CRC flag).
pub fn header_checksum(bytes: &[u8]) -> u8 {
    let mut x = 0u8;
    for &b in bytes {
        x ^= b;
    }
    (x >> 4) ^ (x & 0x0F)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc16_known_vector() {
        // Standard check value for CRC-16/CCITT-FALSE over "123456789".
        assert_eq!(crc16(b"123456789"), 0x29B1);
    }

    #[test]
    fn crc16_empty_is_init() {
        assert_eq!(crc16(&[]), 0xFFFF);
    }

    #[test]
    fn crc16_detects_any_single_byte_change() {
        let base = b"choir lpwan payload".to_vec();
        let c0 = crc16(&base);
        for i in 0..base.len() {
            for flip in [0x01u8, 0x80, 0xFF] {
                let mut m = base.clone();
                m[i] ^= flip;
                assert_ne!(crc16(&m), c0, "i={i} flip={flip:#x}");
            }
        }
    }

    #[test]
    fn crc16_order_sensitive() {
        assert_ne!(crc16(b"ab"), crc16(b"ba"));
    }

    #[test]
    fn header_checksum_fits_four_bits() {
        for a in 0u8..=255 {
            assert!(header_checksum(&[a, a.wrapping_mul(3)]) < 16);
        }
    }

    #[test]
    fn header_checksum_detects_nibble_flip() {
        let h = [0x12u8, 0x34];
        let c = header_checksum(&h);
        assert_ne!(header_checksum(&[0x13, 0x34]), c);
    }
}
