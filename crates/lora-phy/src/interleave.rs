//! Diagonal interleaving.
//!
//! LoRa interleaves one block of `SF` codewords (each `4 + CR` bits) across
//! `4 + CR` consecutive symbols of `SF` bits each. A burst that corrupts one
//! whole symbol therefore damages only one bit of each codeword — exactly
//! what the single-error-correcting Hamming code can undo. The diagonal
//! twist additionally decorrelates which bit position each codeword loses.
//!
//! Layout: block matrix `cw[i]` (row `i`, `i < SF`) with bit `j`
//! (`j < 4+CR`). Output symbol `j` collects bit `j` of every codeword, with
//! a diagonal rotation: symbol `j`, bit position `i` carries bit `j` of
//! codeword `(i + j) mod SF`.

/// Interleaves one block of `sf` codewords (`cw_bits` bits each) into
/// `cw_bits` symbols of `sf` bits each.
///
/// # Panics
/// Panics if `codewords.len() != sf` or any codeword overflows `cw_bits`.
pub fn interleave_block(codewords: &[u8], sf: usize, cw_bits: usize) -> Vec<u16> {
    assert_eq!(codewords.len(), sf, "interleave: need exactly SF codewords");
    assert!(
        sf <= 16 && cw_bits <= 8,
        "interleave: geometry out of range"
    );
    for &cw in codewords {
        assert!((cw as u32) < (1u32 << cw_bits), "codeword overflows width");
    }
    (0..cw_bits)
        .map(|j| {
            let mut sym: u16 = 0;
            for i in 0..sf {
                let cw = codewords[(i + j) % sf];
                let bit = (cw >> j) & 1;
                sym |= (bit as u16) << i;
            }
            sym
        })
        .collect()
}

/// Inverse of [`interleave_block`].
///
/// # Panics
/// Panics if `symbols.len() != cw_bits` or any symbol overflows `sf` bits.
pub fn deinterleave_block(symbols: &[u16], sf: usize, cw_bits: usize) -> Vec<u8> {
    assert_eq!(symbols.len(), cw_bits, "deinterleave: need 4+CR symbols");
    assert!(
        sf <= 16 && cw_bits <= 8,
        "deinterleave: geometry out of range"
    );
    for &s in symbols {
        assert!((s as u32) < (1u32 << sf), "symbol overflows SF bits");
    }
    let mut codewords = vec![0u8; sf];
    for (j, &sym) in symbols.iter().enumerate() {
        for i in 0..sf {
            let bit = ((sym >> i) & 1) as u8;
            let cw_idx = (i + j) % sf;
            codewords[cw_idx] |= bit << j;
        }
    }
    codewords
}

/// Interleaves a full codeword stream, zero-padding the final block to `sf`
/// codewords. Returns the symbol stream (`cw_bits` symbols per block).
pub fn interleave(codewords: &[u8], sf: usize, cw_bits: usize) -> Vec<u16> {
    let mut out = Vec::new();
    for chunk in codewords.chunks(sf) {
        let mut block = chunk.to_vec();
        block.resize(sf, 0);
        out.extend(interleave_block(&block, sf, cw_bits));
    }
    out
}

/// Deinterleaves a full symbol stream (must be a whole number of blocks).
pub fn deinterleave(symbols: &[u16], sf: usize, cw_bits: usize) -> Vec<u8> {
    assert_eq!(
        symbols.len() % cw_bits,
        0,
        "deinterleave: symbol stream not a whole number of blocks"
    );
    symbols
        .chunks(cw_bits)
        .flat_map(|blk| deinterleave_block(blk, sf, cw_bits))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_roundtrip() {
        let sf = 8;
        let cw_bits = 8;
        let cws: Vec<u8> = (0..sf as u8)
            .map(|i| i.wrapping_mul(37).wrapping_add(11))
            .collect();
        let syms = interleave_block(&cws, sf, cw_bits);
        assert_eq!(syms.len(), cw_bits);
        let back = deinterleave_block(&syms, sf, cw_bits);
        assert_eq!(back, cws);
    }

    #[test]
    fn roundtrip_all_geometries() {
        for sf in 7..=12 {
            for cw_bits in 5..=8 {
                let cws: Vec<u8> = (0..sf)
                    .map(|i| ((i * 73 + 29) % (1 << cw_bits)) as u8)
                    .collect();
                let syms = interleave_block(&cws, sf, cw_bits);
                for &s in &syms {
                    assert!((s as usize) < (1 << sf));
                }
                assert_eq!(
                    deinterleave_block(&syms, sf, cw_bits),
                    cws,
                    "sf={sf} cw={cw_bits}"
                );
            }
        }
    }

    #[test]
    fn one_symbol_erasure_hits_each_codeword_once() {
        // Corrupt all bits of one symbol; after deinterleaving, every
        // codeword must differ from the original in at most one bit.
        let sf = 8;
        let cw_bits = 8;
        let cws: Vec<u8> = (0..sf as u8).map(|i| i ^ 0xA5).collect();
        let mut syms = interleave_block(&cws, sf, cw_bits);
        syms[3] ^= (1 << sf) - 1; // flip the whole symbol
        let back = deinterleave_block(&syms, sf, cw_bits);
        for (orig, got) in cws.iter().zip(&back) {
            let d = (orig ^ got).count_ones();
            assert_eq!(d, 1, "codeword damaged in {d} bits");
        }
    }

    #[test]
    fn stream_roundtrip_with_padding() {
        let sf = 7;
        let cw_bits = 5;
        let cws: Vec<u8> = (0..10).map(|i| (i * 3 % 32) as u8).collect(); // not a multiple of 7
        let syms = interleave(&cws, sf, cw_bits);
        assert_eq!(syms.len(), 2 * cw_bits);
        let back = deinterleave(&syms, sf, cw_bits);
        assert_eq!(&back[..10], &cws[..]);
        assert!(back[10..].iter().all(|&b| b == 0));
    }

    #[test]
    #[should_panic(expected = "need exactly SF codewords")]
    fn wrong_block_size_panics() {
        interleave_block(&[0; 5], 8, 8);
    }

    #[test]
    #[should_panic(expected = "codeword overflows width")]
    fn overflowing_codeword_panics() {
        interleave_block(&[0x20; 7], 7, 5);
    }

    #[test]
    fn interleave_is_a_bijection_on_bits() {
        // Total set bits preserved.
        let sf = 9;
        let cw_bits = 6;
        let cws: Vec<u8> = (0..sf).map(|i| ((i * 41 + 3) % 64) as u8).collect();
        let syms = interleave_block(&cws, sf, cw_bits);
        let in_bits: u32 = cws.iter().map(|c| c.count_ones()).sum();
        let out_bits: u32 = syms.iter().map(|s| s.count_ones()).sum();
        assert_eq!(in_bits, out_bits);
    }
}
