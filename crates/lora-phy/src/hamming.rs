//! LoRa's nibble-wise Hamming forward error correction.
//!
//! Each 4-bit nibble is expanded to a `4 + CR`-bit codeword:
//!
//! * CR 4/5 — one overall parity bit: detects single errors;
//! * CR 4/6 — two parity checks: detects (most) double errors;
//! * CR 4/7 — Hamming(7,4): corrects any single-bit error;
//! * CR 4/8 — extended Hamming(8,4): corrects single, detects double.
//!
//! Codeword layout (bit 0 = LSB): data bits `d0..d3` in bits 0..4, parity
//! bits following. Parity equations follow the classic Hamming(7,4)
//! generator: `p0 = d0⊕d1⊕d3`, `p1 = d0⊕d2⊕d3`, `p2 = d1⊕d2⊕d3`, and for
//! 4/8 an overall parity `p3` over all previous bits.

use crate::params::CodeRate;

/// Decode outcome for one codeword.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DecodeResult {
    /// Codeword was consistent; nibble extracted as-is.
    Clean(u8),
    /// A single-bit error was detected and corrected (CR 4/7, 4/8 only).
    Corrected(u8),
    /// Errors detected that this code rate cannot correct. Carries the
    /// best-effort nibble (raw data bits) so upper layers can still splice
    /// partially damaged packets.
    Uncorrectable(u8),
}

impl DecodeResult {
    /// The recovered nibble regardless of confidence.
    pub fn nibble(self) -> u8 {
        match self {
            DecodeResult::Clean(n)
            | DecodeResult::Corrected(n)
            | DecodeResult::Uncorrectable(n) => n,
        }
    }

    /// True unless errors were detected but not corrected.
    pub fn is_reliable(self) -> bool {
        !matches!(self, DecodeResult::Uncorrectable(_))
    }
}

#[inline]
fn bit(v: u8, i: usize) -> u8 {
    (v >> i) & 1
}

fn parities(nibble: u8) -> [u8; 3] {
    let d0 = bit(nibble, 0);
    let d1 = bit(nibble, 1);
    let d2 = bit(nibble, 2);
    let d3 = bit(nibble, 3);
    [d0 ^ d1 ^ d3, d0 ^ d2 ^ d3, d1 ^ d2 ^ d3]
}

/// Encodes a nibble (low 4 bits of `nibble`) into a codeword of
/// `cr.codeword_bits()` bits (in the low bits of the returned byte).
pub fn encode_nibble(nibble: u8, cr: CodeRate) -> u8 {
    let n = nibble & 0x0F;
    let p = parities(n);
    match cr {
        CodeRate::Cr45 => {
            // Single overall parity over the data bits.
            let parity = bit(n, 0) ^ bit(n, 1) ^ bit(n, 2) ^ bit(n, 3);
            n | (parity << 4)
        }
        CodeRate::Cr46 => n | (p[0] << 4) | (p[1] << 5),
        CodeRate::Cr47 => n | (p[0] << 4) | (p[1] << 5) | (p[2] << 6),
        CodeRate::Cr48 => {
            let cw = n | (p[0] << 4) | (p[1] << 5) | (p[2] << 6);
            let overall = (cw.count_ones() & 1) as u8;
            cw | (overall << 7)
        }
    }
}

/// Decodes one codeword (low `cr.codeword_bits()` bits of `cw`).
pub fn decode_nibble(cw: u8, cr: CodeRate) -> DecodeResult {
    let data = cw & 0x0F;
    match cr {
        CodeRate::Cr45 => {
            let parity = bit(data, 0) ^ bit(data, 1) ^ bit(data, 2) ^ bit(data, 3);
            if parity == bit(cw, 4) {
                DecodeResult::Clean(data)
            } else {
                DecodeResult::Uncorrectable(data)
            }
        }
        CodeRate::Cr46 => {
            let p = parities(data);
            if p[0] == bit(cw, 4) && p[1] == bit(cw, 5) {
                DecodeResult::Clean(data)
            } else {
                DecodeResult::Uncorrectable(data)
            }
        }
        CodeRate::Cr47 => decode_hamming74(cw),
        CodeRate::Cr48 => {
            let overall_ok = cw.count_ones().is_multiple_of(2);
            let inner = decode_hamming74(cw & 0x7F);
            match (inner, overall_ok) {
                (DecodeResult::Clean(n), true) => DecodeResult::Clean(n),
                // Inner syndrome zero but overall parity bad: the overall
                // parity bit itself flipped — data is fine.
                (DecodeResult::Clean(n), false) => DecodeResult::Corrected(n),
                // Inner correction + bad overall parity = genuine single
                // error within the first 7 bits; accept the correction.
                (DecodeResult::Corrected(n), false) => DecodeResult::Corrected(n),
                // Inner says "single error" but overall parity is fine:
                // that is the signature of a double error — uncorrectable.
                (DecodeResult::Corrected(_), true) => DecodeResult::Uncorrectable(data),
                (DecodeResult::Uncorrectable(n), _) => DecodeResult::Uncorrectable(n),
            }
        }
    }
}

/// Hamming(7,4) decode with single-error correction via syndrome lookup.
fn decode_hamming74(cw: u8) -> DecodeResult {
    let data = cw & 0x0F;
    let p = parities(data);
    let s0 = p[0] ^ bit(cw, 4);
    let s1 = p[1] ^ bit(cw, 5);
    let s2 = p[2] ^ bit(cw, 6);
    let syndrome = s0 | (s1 << 1) | (s2 << 2);
    if syndrome == 0 {
        return DecodeResult::Clean(data);
    }
    // Map syndrome → flipped bit position. Data bits participate as:
    // d0:(s0,s1)=011, d1:(s0,s2)=101, d2:(s1,s2)=110, d3:111;
    // parity bits: p0:001, p1:010, p2:100.
    let flipped = match syndrome {
        0b011 => 0, // d0
        0b101 => 1, // d1
        0b110 => 2, // d2
        0b111 => 3, // d3
        0b001 => 4, // p0
        0b010 => 5, // p1
        0b100 => 6, // p2
        _ => unreachable!(),
    };
    let fixed = cw ^ (1 << flipped);
    DecodeResult::Corrected(fixed & 0x0F)
}

/// Encodes a nibble stream.
pub fn encode_nibbles(nibbles: &[u8], cr: CodeRate) -> Vec<u8> {
    nibbles.iter().map(|&n| encode_nibble(n, cr)).collect()
}

/// Decodes a codeword stream; returns the nibbles and whether every
/// codeword decoded reliably.
pub fn decode_nibbles(codewords: &[u8], cr: CodeRate) -> (Vec<u8>, bool) {
    let mut ok = true;
    let nibbles = codewords
        .iter()
        .map(|&cw| {
            let r = decode_nibble(cw, cr);
            ok &= r.is_reliable();
            r.nibble()
        })
        .collect();
    (nibbles, ok)
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL_CR: [CodeRate; 4] = [
        CodeRate::Cr45,
        CodeRate::Cr46,
        CodeRate::Cr47,
        CodeRate::Cr48,
    ];

    #[test]
    fn clean_roundtrip_all_rates_all_nibbles() {
        for cr in ALL_CR {
            for n in 0u8..16 {
                let cw = encode_nibble(n, cr);
                assert_eq!(decode_nibble(cw, cr), DecodeResult::Clean(n), "{cr:?} {n}");
                // Codeword fits in the declared width.
                assert!((cw as u32) < (1u32 << cr.codeword_bits()), "{cr:?} {n}");
            }
        }
    }

    #[test]
    fn cr47_corrects_every_single_bit_error() {
        for n in 0u8..16 {
            let cw = encode_nibble(n, CodeRate::Cr47);
            for flip in 0..7 {
                let r = decode_nibble(cw ^ (1 << flip), CodeRate::Cr47);
                assert_eq!(r.nibble(), n, "nibble {n} flip {flip}");
                assert!(matches!(r, DecodeResult::Corrected(_)));
            }
        }
    }

    #[test]
    fn cr48_corrects_single_detects_double() {
        for n in 0u8..16 {
            let cw = encode_nibble(n, CodeRate::Cr48);
            for f1 in 0..8 {
                let r = decode_nibble(cw ^ (1 << f1), CodeRate::Cr48);
                assert_eq!(r.nibble(), n, "single error at {f1}");
                assert!(r.is_reliable());
                for f2 in 0..8 {
                    if f1 == f2 {
                        continue;
                    }
                    let r2 = decode_nibble(cw ^ (1 << f1) ^ (1 << f2), CodeRate::Cr48);
                    assert!(
                        !r2.is_reliable(),
                        "double error {f1},{f2} on nibble {n} went undetected"
                    );
                }
            }
        }
    }

    #[test]
    fn cr45_detects_single_errors() {
        for n in 0u8..16 {
            let cw = encode_nibble(n, CodeRate::Cr45);
            for flip in 0..5 {
                let r = decode_nibble(cw ^ (1 << flip), CodeRate::Cr45);
                assert!(!r.is_reliable(), "nibble {n} flip {flip}");
            }
        }
    }

    #[test]
    fn cr46_detects_single_errors() {
        for n in 0u8..16 {
            let cw = encode_nibble(n, CodeRate::Cr46);
            for flip in 0..6 {
                let r = decode_nibble(cw ^ (1 << flip), CodeRate::Cr46);
                assert!(!r.is_reliable(), "nibble {n} flip {flip}");
            }
        }
    }

    #[test]
    fn stream_helpers() {
        let nibbles = vec![0x1, 0xF, 0x7, 0x0];
        let cws = encode_nibbles(&nibbles, CodeRate::Cr48);
        let (out, ok) = decode_nibbles(&cws, CodeRate::Cr48);
        assert!(ok);
        assert_eq!(out, nibbles);
        // Corrupt one codeword beyond repair (two flips).
        let mut bad = cws;
        bad[2] ^= 0b11;
        let (_, ok2) = decode_nibbles(&bad, CodeRate::Cr48);
        assert!(!ok2);
    }

    #[test]
    fn distinct_nibbles_distinct_codewords() {
        for cr in ALL_CR {
            let mut seen = std::collections::HashSet::new();
            for n in 0u8..16 {
                assert!(seen.insert(encode_nibble(n, cr)), "{cr:?} {n}");
            }
        }
    }

    #[test]
    fn hamming74_min_distance_is_three() {
        let words: Vec<u8> = (0u8..16)
            .map(|n| encode_nibble(n, CodeRate::Cr47))
            .collect();
        for i in 0..16 {
            for j in (i + 1)..16 {
                let d = (words[i] ^ words[j]).count_ones();
                assert!(d >= 3, "{i} vs {j}: distance {d}");
            }
        }
    }

    #[test]
    fn extended_hamming_min_distance_is_four() {
        let words: Vec<u8> = (0u8..16)
            .map(|n| encode_nibble(n, CodeRate::Cr48))
            .collect();
        for i in 0..16 {
            for j in (i + 1)..16 {
                let d = (words[i] ^ words[j]).count_ones();
                assert!(d >= 4, "{i} vs {j}: distance {d}");
            }
        }
    }
}
