//! Payload whitening.
//!
//! LoRa XORs the payload with a pseudo-random sequence so that long runs of
//! identical bits still produce a spectrally flat signal. We use the
//! documented PN9 LFSR (`x⁹ + x⁵ + 1`, seed `0x1FF`) — the same generator
//! the SX127x family uses for FSK whitening and a faithful stand-in for
//! LoRa's undocumented sequence; what matters downstream (Sec. 7 of the
//! paper splices *sensed* bits so that whitening/coding does not destroy
//! MSB overlap) is only that whitening is a fixed, invertible XOR mask.

/// Generates `len` whitening bytes from the PN9 LFSR with seed `0x1FF`.
pub fn whitening_sequence(len: usize) -> Vec<u8> {
    let mut state: u16 = 0x1FF;
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        let mut byte = 0u8;
        for bit in 0..8 {
            let b = (state & 1) as u8;
            byte |= b << bit;
            // Feedback: x^9 + x^5 + 1 → new MSB = bit0 ^ bit5.
            let fb = (state ^ (state >> 5)) & 1;
            state = (state >> 1) | (fb << 8);
        }
        out.push(byte);
    }
    out
}

/// XORs `data` with the whitening sequence in place. Involutive: applying
/// twice restores the original bytes.
pub fn whiten(data: &mut [u8]) {
    let seq = whitening_sequence(data.len());
    for (d, w) in data.iter_mut().zip(seq) {
        *d ^= w;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn involution() {
        let orig: Vec<u8> = (0..=255).collect();
        let mut data = orig.clone();
        whiten(&mut data);
        assert_ne!(data, orig);
        whiten(&mut data);
        assert_eq!(data, orig);
    }

    #[test]
    fn sequence_is_deterministic_and_prefix_stable() {
        let a = whitening_sequence(16);
        let b = whitening_sequence(32);
        assert_eq!(a, b[..16]);
    }

    #[test]
    fn sequence_is_balanced() {
        // PN9 has period 511 bits; over 64 bytes the ones-density should be
        // close to 1/2.
        let seq = whitening_sequence(64);
        let ones: u32 = seq.iter().map(|b| b.count_ones()).sum();
        let total = 64 * 8;
        let density = ones as f64 / total as f64;
        assert!((density - 0.5).abs() < 0.1, "density {density}");
    }

    #[test]
    fn zero_bytes_become_sequence() {
        let mut data = vec![0u8; 8];
        whiten(&mut data);
        assert_eq!(data, whitening_sequence(8));
    }

    #[test]
    fn lfsr_period_is_511_bits() {
        // 511 bits = the full m-sequence period for a 9-bit LFSR.
        let long = whitening_sequence(511 * 2 / 8 + 2);
        // Compare bit i and bit i+511 for a stretch.
        let bit = |i: usize| (long[i / 8] >> (i % 8)) & 1;
        for i in 0..500 {
            assert_eq!(bit(i), bit(i + 511), "bit {i}");
        }
    }
}
