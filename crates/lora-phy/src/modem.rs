//! Symbol-level modulation and (single-user) demodulation.
//!
//! The standard LoRa receiver multiplies each received symbol window by the
//! base down-chirp and takes the FFT; the modulated value is the index of
//! the strongest bin. Choir replaces this argmax with its multi-peak
//! machinery, but reuses the dechirp front-end implemented here.

use crate::chirp::{base_downchirp_cached, modulated_chirp};
use crate::params::PhyParams;
use choir_dsp::complex::C64;
use choir_dsp::fft::FftPlan;
use std::sync::Arc;

/// A reusable modulator/demodulator for fixed PHY parameters.
#[derive(Clone, Debug)]
pub struct Modem {
    params: PhyParams,
    downchirp: Arc<Vec<C64>>,
    fft: FftPlan,
}

impl Modem {
    /// Builds a modem for the given parameters.
    pub fn new(params: PhyParams) -> Self {
        let n = params.samples_per_symbol();
        Modem {
            params,
            downchirp: base_downchirp_cached(n),
            fft: FftPlan::new(n),
        }
    }

    /// The PHY parameters this modem was built for.
    pub fn params(&self) -> &PhyParams {
        &self.params
    }

    /// Chips (samples) per symbol.
    pub fn n(&self) -> usize {
        self.params.samples_per_symbol()
    }

    /// Modulates a symbol sequence into a critically-sampled baseband
    /// waveform (ideal transmitter: no offsets, unit amplitude).
    pub fn modulate(&self, symbols: &[u16]) -> Vec<C64> {
        let n = self.n();
        symbols
            .iter()
            .flat_map(|&s| {
                assert!((s as usize) < n, "symbol {s} out of alphabet");
                modulated_chirp(n, s)
            })
            .collect()
    }

    /// Multiplies one symbol window by the base down-chirp.
    ///
    /// # Panics
    /// Panics if `window.len() != 2^SF`.
    pub fn dechirp(&self, window: &[C64]) -> Vec<C64> {
        assert_eq!(window.len(), self.n(), "dechirp: wrong window length");
        let mut out = vec![C64::ZERO; window.len()];
        choir_dsp::backend::cmul_into(window, &self.downchirp, &mut out);
        out
    }

    /// Dechirps and transforms one symbol window; returns the `2^SF`-point
    /// complex spectrum.
    pub fn symbol_spectrum(&self, window: &[C64]) -> Vec<C64> {
        let mut buf = self.dechirp(window);
        self.fft.forward(&mut buf);
        buf
    }

    /// Standard single-user hard demodulation of one symbol window:
    /// the argmax bin of the dechirped spectrum.
    pub fn demod_symbol(&self, window: &[C64]) -> u16 {
        let spec = self.symbol_spectrum(window);
        spec.iter()
            .enumerate()
            .max_by(|a, b| a.1.norm_sqr().total_cmp(&b.1.norm_sqr()))
            // The spectrum has 2^SF >= 1 bins, so the fallback is unreachable.
            .map_or(0, |(k, _)| k as u16)
    }

    /// Demodulates a run of consecutive symbol windows starting at sample
    /// `start`. Windows that would run past the end of `samples` are
    /// skipped.
    pub fn demodulate(&self, samples: &[C64], start: usize, num_symbols: usize) -> Vec<u16> {
        let n = self.n();
        (0..num_symbols)
            .map_while(|k| {
                let lo = start + k * n;
                let hi = lo + n;
                if hi <= samples.len() {
                    Some(self.demod_symbol(&samples[lo..hi]))
                } else {
                    None
                }
            })
            .collect()
    }

    /// Peak-to-average power of the strongest dechirped bin — a cheap
    /// detection statistic (≈ `2^SF` for a clean symbol, ≈ O(1) for noise).
    pub fn detection_metric(&self, window: &[C64]) -> f64 {
        let spec = self.symbol_spectrum(window);
        let total: f64 = spec.iter().map(|z| z.norm_sqr()).sum();
        if total <= 0.0 {
            return 0.0;
        }
        let peak = spec.iter().map(|z| z.norm_sqr()).fold(f64::MIN, f64::max);
        peak * spec.len() as f64 / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{Bandwidth, CodeRate, PhyParams, SpreadingFactor};
    use choir_dsp::complex::c64;

    fn modem() -> Modem {
        Modem::new(PhyParams {
            sf: SpreadingFactor::Sf7,
            bw: Bandwidth::Khz125,
            cr: CodeRate::Cr45,
            preamble_len: 8,
            explicit_crc: true,
        })
    }

    #[test]
    fn modulate_demodulate_roundtrip_all_symbols() {
        let m = modem();
        let syms: Vec<u16> = (0..128).collect();
        let wave = m.modulate(&syms);
        let out = m.demodulate(&wave, 0, syms.len());
        assert_eq!(out, syms);
    }

    #[test]
    fn roundtrip_with_noise() {
        // Deterministic pseudo-noise at ~0 dB SNR per sample; the dechirp
        // spreads it across bins, giving ~21 dB processing gain at SF7.
        let m = modem();
        let syms = vec![5u16, 77, 100, 1, 127];
        let mut wave = m.modulate(&syms);
        let mut state = 0x12345678u64;
        let mut rng = move || {
            // xorshift64
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state as f64 / u64::MAX as f64) - 0.5
        };
        for v in wave.iter_mut() {
            *v += c64(rng() * 2.0, rng() * 2.0); // var ≈ 0.67 ≈ −1.8 dB
        }
        assert_eq!(m.demodulate(&wave, 0, syms.len()), syms);
    }

    #[test]
    fn demodulate_respects_start_offset() {
        let m = modem();
        let syms = vec![9u16, 18, 27];
        let mut wave = vec![C64::ZERO; 50];
        wave.extend(m.modulate(&syms));
        assert_eq!(m.demodulate(&wave, 50, 3), syms);
    }

    #[test]
    fn demodulate_truncates_at_end() {
        let m = modem();
        let wave = m.modulate(&[1, 2]);
        assert_eq!(m.demodulate(&wave, 0, 5), vec![1, 2]);
    }

    #[test]
    fn detection_metric_separates_signal_from_noise() {
        let m = modem();
        let sig = m.modulate(&[42]);
        let metric_sig = m.detection_metric(&sig);
        assert!(metric_sig > 100.0, "signal metric {metric_sig}");
        // Deterministic "noise": a chirp NOT matched to the downchirp (a
        // flat-spectrum signal post-dechirp).
        let noise: Vec<C64> = (0..128)
            .map(|i| C64::cis(0.7 * (i * i % 31) as f64))
            .collect();
        let metric_noise = m.detection_metric(&noise);
        assert!(metric_noise < 40.0, "noise metric {metric_noise}");
    }

    #[test]
    #[should_panic(expected = "wrong window length")]
    fn dechirp_wrong_length_panics() {
        let m = modem();
        m.dechirp(&[C64::ZERO; 64]);
    }

    #[test]
    fn symbol_spectrum_energy_concentrated() {
        let m = modem();
        let wave = m.modulate(&[33]);
        let spec = m.symbol_spectrum(&wave);
        let total: f64 = spec.iter().map(|z| z.norm_sqr()).sum();
        assert!(spec[33].norm_sqr() / total > 0.999);
    }
}
