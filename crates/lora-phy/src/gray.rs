//! Gray code mapping.
//!
//! LoRa maps interleaved codeword bits onto chirp shifts through a Gray
//! code so that the most likely demodulation error — hitting a bin adjacent
//! to the true one — corrupts only a single bit, which the Hamming code can
//! then correct.

/// Binary → Gray: `g = b ^ (b >> 1)`. Adjacent integers map to codes
/// differing in exactly one bit.
pub fn gray_encode(b: u16) -> u16 {
    b ^ (b >> 1)
}

/// Gray → binary (inverse of [`gray_encode`]).
pub fn gray_decode(g: u16) -> u16 {
    let mut b = g;
    let mut shift = 1;
    while shift < 16 {
        b ^= b >> shift;
        shift <<= 1;
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_full_sf12_alphabet() {
        for v in 0u16..4096 {
            assert_eq!(gray_decode(gray_encode(v)), v);
        }
    }

    #[test]
    fn adjacent_values_differ_in_one_bit() {
        for v in 0u16..4095 {
            let d = gray_encode(v) ^ gray_encode(v + 1);
            assert_eq!(d.count_ones(), 1, "v = {v}");
        }
    }

    #[test]
    fn known_values() {
        assert_eq!(gray_encode(0), 0);
        assert_eq!(gray_encode(1), 1);
        assert_eq!(gray_encode(2), 3);
        assert_eq!(gray_encode(3), 2);
        assert_eq!(gray_encode(4), 6);
        assert_eq!(gray_decode(6), 4);
    }

    #[test]
    fn gray_is_a_permutation() {
        let mut seen = vec![false; 256];
        for v in 0u16..256 {
            let g = gray_encode(v) as usize;
            assert!(g < 256);
            assert!(!seen[g], "collision at {g}");
            seen[g] = true;
        }
    }
}
