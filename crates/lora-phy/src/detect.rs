//! Single-user packet detection, synchronisation and decoding — the
//! standard LoRaWAN receive path that Choir's baselines use.
//!
//! Detection: the preamble is a train of identical base up-chirps, so any
//! symbol-length window fully inside it dechirps to a single strong tone.
//! A run of high peak-to-average windows marks a preamble.
//!
//! Synchronisation: a combined integer offset `c` (timing plus CFO, which
//! are interchangeable for chirps — Sec. 6.1 of the paper) shifts *every*
//! dechirped peak by the same amount. The known sync-word symbols reveal
//! `c`, and the payload symbols are corrected by `−c`. Fractional residues
//! are harmless to hard-decision demodulation (they shave margin, which the
//! Gray + Hamming chain absorbs).

use crate::frame::{decode_frame, DecodedFrame, FrameError, SYNC_SYMBOLS};
use crate::modem::Modem;
use crate::params::PhyParams;
use choir_dsp::complex::C64;

/// Result of synchronising to one packet.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PacketSync {
    /// Sample index of the first data (post-sync) symbol.
    pub data_start: usize,
    /// Combined integer timing+frequency shift, in bins, to subtract from
    /// every demodulated symbol.
    pub shift: u16,
}

/// Errors from the single-user receive path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RxError {
    /// No preamble found / not enough samples.
    NotFound,
    /// The two sync symbols disagreed about the integer shift.
    SyncMismatch,
    /// The sync symbols agreed on a shift, but the windows before them do
    /// not demodulate like a preamble — the "packet" was a coincidence in
    /// mid-stream data or noise, not a transmission start.
    NoPreamble,
    /// Frame-level decoding failed.
    Frame(FrameError),
}

impl std::fmt::Display for RxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RxError::NotFound => write!(f, "no packet found"),
            RxError::SyncMismatch => write!(f, "sync symbols disagree on shift"),
            RxError::NoPreamble => write!(f, "sync candidate not preceded by a preamble"),
            RxError::Frame(e) => write!(f, "frame error: {e}"),
        }
    }
}

impl std::error::Error for RxError {}

/// Scans a sample stream for preambles: returns the approximate start
/// sample of each detected packet. Windows step by one symbol, so starts
/// are accurate to within one symbol; [`synchronize`] refines from there.
///
/// `threshold` is the minimum peak-to-average ratio of the dechirped
/// window spectrum (≈ `2^SF` for clean signal, O(1) for noise; 30–50 works
/// for SF7–8 at the SNRs of interest).
pub fn scan_for_packets(samples: &[C64], modem: &Modem, threshold: f64) -> Vec<usize> {
    let n = modem.n();
    let min_run = modem.params().preamble_len.saturating_sub(2).max(2);
    let mut starts = Vec::new();
    let mut run = 0usize;
    let mut run_start = 0usize;
    let mut w = 0usize;
    while (w + 1) * n <= samples.len() {
        let window = &samples[w * n..(w + 1) * n];
        if modem.detection_metric(window) >= threshold {
            if run == 0 {
                run_start = w * n;
            }
            run += 1;
        } else {
            if run >= min_run {
                starts.push(run_start);
            }
            run = 0;
        }
        w += 1;
    }
    if run >= min_run {
        starts.push(run_start);
    }
    starts
}

/// Incremental [`scan_for_packets`] for chunked streams: feed IQ in
/// arbitrary-size chunks (one sample or a megasample at a time) and the
/// scanner reports the same packet starts, as **absolute** sample indices,
/// that a one-shot scan of the concatenated stream would — windows are
/// re-assembled across chunk boundaries from an internal sub-window carry,
/// so chunking can never split or shift a detection.
///
/// Detections are emitted when a preamble run *ends* (the first quiet
/// window after it); a run still open when the stream ends is surfaced by
/// [`StreamScanner::flush`].
#[derive(Clone, Debug)]
pub struct StreamScanner {
    modem: Modem,
    threshold: f64,
    min_run: usize,
    /// Carry of `< 2^SF` samples: the tail of the pushed stream that does
    /// not yet fill a whole symbol window.
    carry: Vec<C64>,
    /// Absolute stream index of `carry[0]`.
    carry_start: u64,
    run: usize,
    run_start: u64,
    windows: u64,
}

impl StreamScanner {
    /// Builds a scanner; `threshold` as for [`scan_for_packets`].
    pub fn new(modem: Modem, threshold: f64) -> Self {
        let min_run = modem.params().preamble_len.saturating_sub(2).max(2);
        StreamScanner {
            modem,
            threshold,
            min_run,
            carry: Vec::new(),
            carry_start: 0,
            run: 0,
            run_start: 0,
            windows: 0,
        }
    }

    /// Total samples pushed so far (the absolute index of the next one).
    pub fn position(&self) -> u64 {
        self.carry_start + self.carry.len() as u64
    }

    /// Symbol windows examined so far.
    pub fn windows_scanned(&self) -> u64 {
        self.windows
    }

    /// Consumes one chunk, appending any completed detections (absolute
    /// packet-start indices) to `hits`.
    pub fn push(&mut self, chunk: &[C64], hits: &mut Vec<u64>) {
        let n = self.modem.n();
        self.carry.extend_from_slice(chunk);
        let mut idx = 0usize;
        while idx + n <= self.carry.len() {
            let metric = self.modem.detection_metric(&self.carry[idx..idx + n]);
            self.windows += 1;
            if metric >= self.threshold {
                if self.run == 0 {
                    self.run_start = self.carry_start + idx as u64;
                }
                self.run += 1;
            } else {
                if self.run >= self.min_run {
                    hits.push(self.run_start);
                }
                self.run = 0;
            }
            idx += n;
        }
        self.carry.drain(..idx);
        self.carry_start += idx as u64;
    }

    /// End-of-stream: returns the start of a preamble run still open when
    /// the samples ran out (matching the tail check of
    /// [`scan_for_packets`]), and resets the run state.
    pub fn flush(&mut self) -> Option<u64> {
        let run = std::mem::take(&mut self.run);
        (run >= self.min_run).then_some(self.run_start)
    }
}

/// Synchronises to a packet whose preamble begins within one symbol after
/// `approx_start` (e.g. a hit from [`scan_for_packets`], or the scheduled
/// slot time in the MAC simulator).
///
/// Uses the sync-word symbols to measure the combined integer shift `c`.
pub fn synchronize(
    samples: &[C64],
    modem: &Modem,
    approx_start: usize,
) -> Result<PacketSync, RxError> {
    let n = modem.n();
    let p = modem.params();
    let sync_at = approx_start + p.preamble_len * n;
    let need = sync_at + 2 * n;
    if need > samples.len() {
        return Err(RxError::NotFound);
    }
    let alphabet = n as u16;
    let s1 = modem.demod_symbol(&samples[sync_at..sync_at + n]);
    let s2 = modem.demod_symbol(&samples[sync_at + n..sync_at + 2 * n]);
    let c1 = (s1 + alphabet - SYNC_SYMBOLS[0]) % alphabet;
    let c2 = (s2 + alphabet - SYNC_SYMBOLS[1]) % alphabet;
    if c1 != c2 {
        return Err(RxError::SyncMismatch);
    }
    // The sync word alone is two symbols — 1-in-2^SF odds of a mid-stream
    // coincidence, which the old code happily returned as a worst-bin
    // "sync". A real packet precedes the sync word with a preamble of base
    // up-chirps, and (timing + CFO being a *common* shift — Sec. 6.1)
    // every interior preamble window must demodulate to the same `c` the
    // sync word measured. Window 0 may straddle the packet edge for a
    // delayed transmitter, so it is excluded; a strict majority of the
    // rest tolerates occasional noise-flipped bins.
    let interior = 1..p.preamble_len;
    let mut matches = 0usize;
    for w in interior.clone() {
        let lo = approx_start + w * n;
        if modem.demod_symbol(&samples[lo..lo + n]) == c1 {
            matches += 1;
        }
    }
    if 2 * matches <= interior.len() {
        return Err(RxError::NoPreamble);
    }
    Ok(PacketSync {
        data_start: sync_at + 2 * n,
        shift: c1,
    })
}

/// Demodulates and decodes one packet starting near `approx_start`.
/// `num_data_symbols` bounds how many symbols to pull (use
/// [`crate::frame::frame_symbol_count`] when the length is known, or a
/// generous maximum otherwise — the frame header trims the rest).
pub fn decode_packet(
    samples: &[C64],
    modem: &Modem,
    approx_start: usize,
    num_data_symbols: usize,
) -> Result<DecodedFrame, RxError> {
    let sync = synchronize(samples, modem, approx_start)?;
    let n = modem.n();
    let alphabet = n as u16;
    let raw = modem.demodulate(samples, sync.data_start, num_data_symbols);
    let corrected: Vec<u16> = raw
        .into_iter()
        .map(|s| (s + alphabet - sync.shift) % alphabet)
        .collect();
    decode_frame(modem.params(), &corrected).map_err(RxError::Frame)
}

/// Convenience: full transmit chain for tests and examples — payload to
/// critically-sampled baseband waveform (preamble + sync + data).
pub fn transmit_packet(params: &PhyParams, payload: &[u8]) -> Vec<C64> {
    let modem = Modem::new(*params);
    let syms = crate::frame::packet_symbols(params, payload);
    modem.modulate(&syms)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{Bandwidth, CodeRate, SpreadingFactor};

    fn params() -> PhyParams {
        PhyParams {
            sf: SpreadingFactor::Sf8,
            bw: Bandwidth::Khz125,
            cr: CodeRate::Cr48,
            preamble_len: 8,
            explicit_crc: true,
        }
    }

    #[test]
    fn end_to_end_clean_decode() {
        let p = params();
        let modem = Modem::new(p);
        let payload = b"hello, urban LP-WAN".to_vec();
        let wave = transmit_packet(&p, &payload);
        let out = decode_packet(&wave, &modem, 0, 200).unwrap();
        assert_eq!(out.payload, payload);
        assert!(out.crc_ok && out.fec_reliable);
    }

    #[test]
    fn decode_with_leading_silence_and_scan() {
        let p = params();
        let modem = Modem::new(p);
        let payload = b"find me".to_vec();
        let mut stream = vec![C64::ZERO; 5 * 256 + 13];
        // Scan assumes symbol-aligned windows; place packet symbol-aligned
        // after silence for the coarse scan, then fine offset via the known
        // start for decode.
        let mut stream2 = vec![C64::ZERO; 5 * 256];
        stream2.extend(transmit_packet(&p, &payload));
        stream2.extend(vec![C64::ZERO; 3 * 256]);
        let hits = scan_for_packets(&stream2, &modem, 40.0);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0], 5 * 256);
        let out = decode_packet(&stream2, &modem, hits[0], 200).unwrap();
        assert_eq!(out.payload, payload);
        // Unaligned leading silence: decode via exact known start.
        stream.extend(transmit_packet(&p, &payload));
        let out2 = decode_packet(&stream, &modem, 5 * 256 + 13, 200).unwrap();
        assert_eq!(out2.payload, payload);
    }

    #[test]
    fn scan_finds_two_packets() {
        let p = params();
        let modem = Modem::new(p);
        let mut stream = vec![C64::ZERO; 2 * 256];
        stream.extend(transmit_packet(&p, b"one"));
        stream.extend(vec![C64::ZERO; 4 * 256]);
        let second_at = stream.len();
        stream.extend(transmit_packet(&p, b"two"));
        stream.extend(vec![C64::ZERO; 256]);
        let hits = scan_for_packets(&stream, &modem, 40.0);
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0], 2 * 256);
        assert_eq!(hits[1], second_at);
    }

    #[test]
    fn integer_shift_corrected_via_sync_word() {
        // Apply a pure integer CFO of +5 bins to the whole packet: every
        // dechirped symbol shifts by +5; the sync word must absorb it.
        let p = params();
        let modem = Modem::new(p);
        let payload = b"shifted".to_vec();
        let wave = transmit_packet(&p, &payload);
        let n = 256.0;
        let shifted: Vec<C64> = wave
            .iter()
            .enumerate()
            .map(|(i, v)| v * C64::cis(2.0 * std::f64::consts::PI * 5.0 * i as f64 / n))
            .collect();
        let sync = synchronize(&shifted, &modem, 0).unwrap();
        assert_eq!(sync.shift, 5);
        let out = decode_packet(&shifted, &modem, 0, 200).unwrap();
        assert_eq!(out.payload, payload);
    }

    #[test]
    fn no_packet_in_noise() {
        let stream: Vec<C64> = (0..4096)
            .map(|i| C64::cis((i * i % 97) as f64 * 0.39) * 0.1)
            .collect();
        let modem = Modem::new(params());
        assert!(scan_for_packets(&stream, &modem, 40.0).is_empty());
        assert_eq!(
            synchronize(&[C64::ZERO; 100], &modem, 0),
            Err(RxError::NotFound)
        );
    }

    #[test]
    fn truncated_stream_not_found() {
        let p = params();
        let modem = Modem::new(p);
        let wave = transmit_packet(&p, b"cut");
        let cut = &wave[..8 * 256]; // preamble only
        assert_eq!(synchronize(cut, &modem, 0), Err(RxError::NotFound));
    }

    /// Regression (PR 4): `synchronize` used to trust any position where
    /// the two worst-bin guesses at the sync offsets happened to agree.
    /// Mid-stream data containing the sync values at the right spacing —
    /// no preamble anywhere — returned a bogus `Ok(PacketSync)`. It must
    /// be a typed `NoPreamble` miss.
    #[test]
    fn mid_stream_sync_coincidence_is_no_preamble() {
        let p = params();
        let modem = Modem::new(p);
        // Arbitrary data symbols, with the sync word planted where the
        // receiver will look for it (windows 8 and 9 for an 8-symbol
        // preamble) — exactly the coincidence a long payload produces.
        let mut syms: Vec<u16> = vec![17, 203, 91, 54, 140, 222, 9, 180];
        syms.push(SYNC_SYMBOLS[0]);
        syms.push(SYNC_SYMBOLS[1]);
        syms.extend([33u16, 77, 129]);
        let wave = modem.modulate(&syms);
        // Before the fix: Ok(PacketSync { shift: 0 }) — the worst-bin guess.
        assert_eq!(synchronize(&wave, &modem, 0), Err(RxError::NoPreamble));
        // And the true packet still synchronises (the check accepts every
        // legitimate preamble).
        let packet = transmit_packet(&p, b"real");
        assert!(synchronize(&packet, &modem, 0).is_ok());
    }

    /// The incremental scanner must report exactly the hits of a one-shot
    /// scan, for any chunking of the same stream — including chunks that
    /// split symbol windows and the preamble itself.
    #[test]
    fn stream_scanner_matches_one_shot_scan() {
        let p = params();
        let modem = Modem::new(p);
        let mut stream = vec![C64::ZERO; 3 * 256 + 71];
        stream.extend(transmit_packet(&p, b"first"));
        stream.extend(vec![C64::ZERO; 5 * 256]);
        stream.extend(transmit_packet(&p, b"second packet"));
        stream.extend(vec![C64::ZERO; 2 * 256 + 19]);
        let reference: Vec<u64> = scan_for_packets(&stream, &modem, 40.0)
            .iter()
            .map(|&s| s as u64)
            .collect();
        assert!(!reference.is_empty(), "scan found nothing to compare");
        // Deterministic "random" chunk lengths, including 1-sample chunks.
        let mut lens = [1usize, 255, 256, 257, 13, 4096, 777, 2048, 3, 100]
            .iter()
            .cycle();
        for trial in 0..3 {
            let mut scanner = StreamScanner::new(modem.clone(), 40.0);
            let mut hits = Vec::new();
            let mut off = 0usize;
            while off < stream.len() {
                let len = (*lens.next().unwrap() + trial * 7).clamp(1, stream.len() - off);
                scanner.push(&stream[off..off + len], &mut hits);
                off += len;
            }
            if let Some(tail) = scanner.flush() {
                hits.push(tail);
            }
            assert_eq!(hits, reference, "trial {trial}");
            assert_eq!(scanner.position(), stream.len() as u64);
            assert_eq!(scanner.windows_scanned(), (stream.len() / 256) as u64);
        }
    }

    /// A run still open at end-of-stream (packet truncated mid-air) is
    /// surfaced by `flush`, exactly like the one-shot scan's tail check.
    #[test]
    fn stream_scanner_flush_reports_open_run() {
        let p = params();
        let modem = Modem::new(p);
        let mut stream = vec![C64::ZERO; 2 * 256];
        let wave = transmit_packet(&p, b"truncated");
        stream.extend(&wave[..6 * 256]); // 6 preamble symbols, then silence ends
        let mut scanner = StreamScanner::new(modem, 40.0);
        let mut hits = Vec::new();
        scanner.push(&stream, &mut hits);
        assert!(hits.is_empty(), "no quiet window yet: {hits:?}");
        assert_eq!(scanner.flush(), Some(2 * 256));
        // flush resets: a second flush reports nothing.
        assert_eq!(scanner.flush(), None);
    }
}
