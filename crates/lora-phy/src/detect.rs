//! Single-user packet detection, synchronisation and decoding — the
//! standard LoRaWAN receive path that Choir's baselines use.
//!
//! Detection: the preamble is a train of identical base up-chirps, so any
//! symbol-length window fully inside it dechirps to a single strong tone.
//! A run of high peak-to-average windows marks a preamble.
//!
//! Synchronisation: a combined integer offset `c` (timing plus CFO, which
//! are interchangeable for chirps — Sec. 6.1 of the paper) shifts *every*
//! dechirped peak by the same amount. The known sync-word symbols reveal
//! `c`, and the payload symbols are corrected by `−c`. Fractional residues
//! are harmless to hard-decision demodulation (they shave margin, which the
//! Gray + Hamming chain absorbs).

use crate::frame::{decode_frame, DecodedFrame, FrameError, SYNC_SYMBOLS};
use crate::modem::Modem;
use crate::params::PhyParams;
use choir_dsp::complex::C64;

/// Result of synchronising to one packet.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PacketSync {
    /// Sample index of the first data (post-sync) symbol.
    pub data_start: usize,
    /// Combined integer timing+frequency shift, in bins, to subtract from
    /// every demodulated symbol.
    pub shift: u16,
}

/// Errors from the single-user receive path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RxError {
    /// No preamble found / not enough samples.
    NotFound,
    /// The two sync symbols disagreed about the integer shift.
    SyncMismatch,
    /// The sync symbols agreed on a shift, but the windows before them do
    /// not demodulate like a preamble — the "packet" was a coincidence in
    /// mid-stream data or noise, not a transmission start.
    NoPreamble,
    /// Frame-level decoding failed.
    Frame(FrameError),
}

impl std::fmt::Display for RxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RxError::NotFound => write!(f, "no packet found"),
            RxError::SyncMismatch => write!(f, "sync symbols disagree on shift"),
            RxError::NoPreamble => write!(f, "sync candidate not preceded by a preamble"),
            RxError::Frame(e) => write!(f, "frame error: {e}"),
        }
    }
}

impl std::error::Error for RxError {}

/// Scans a sample stream for preambles: returns the approximate start
/// sample of each detected packet. Windows step by one symbol, so starts
/// are accurate to within one symbol; [`synchronize`] refines from there.
///
/// `threshold` is the minimum peak-to-average ratio of the dechirped
/// window spectrum (≈ `2^SF` for clean signal, O(1) for noise; 30–50 works
/// for SF7–8 at the SNRs of interest).
pub fn scan_for_packets(samples: &[C64], modem: &Modem, threshold: f64) -> Vec<usize> {
    let n = modem.n();
    let min_run = modem.params().preamble_len.saturating_sub(2).max(2);
    let mut starts = Vec::new();
    let mut run = 0usize;
    let mut run_start = 0usize;
    let mut w = 0usize;
    while (w + 1) * n <= samples.len() {
        let window = &samples[w * n..(w + 1) * n];
        if modem.detection_metric(window) >= threshold {
            if run == 0 {
                run_start = w * n;
            }
            run += 1;
        } else {
            if run >= min_run {
                starts.push(run_start);
            }
            run = 0;
        }
        w += 1;
    }
    if run >= min_run {
        starts.push(run_start);
    }
    starts
}

/// Tuning knobs for the multi-hypothesis preamble tracker
/// ([`StreamScanner`]). Built from a detection threshold via
/// [`TrackerConfig::new`]; the defaults suit SF7–8 at the SNRs of
/// interest.
#[derive(Clone, Copy, Debug)]
pub struct TrackerConfig {
    /// Confirmation level: a hypothesis confirms once its accumulated
    /// deflated-peak score reaches `threshold × min_run` with at least
    /// `min_run` supporting windows. This is LZn-style accumulation:
    /// `min_run` windows at the threshold confirm, and so do more windows
    /// each individually *below* it — sub-threshold preambles integrate
    /// up instead of being missed outright.
    pub threshold: f64,
    /// Minimum deflated score for a peak to birth or support a
    /// hypothesis, as a fraction of `threshold` (default 0.5). Below the
    /// floor a peak is noise; at or above it, it is worth tracking even
    /// when a one-shot scan would reject the window.
    pub birth_floor_frac: f64,
    /// Dechirped peaks examined per window (default 4). CoRa-style
    /// deflated scoring rates peak `j` against the spectrum *minus* the
    /// stronger peaks, so a weak preamble stays detectable under a much
    /// stronger frame's payload.
    pub top_k: usize,
    /// Live-hypothesis cap (default 16). When full, the weakest live
    /// hypothesis is evicted only for a stronger newcomer.
    pub max_hypotheses: usize,
    /// Consecutive unsupported windows before a live hypothesis expires
    /// (default 2).
    pub expire_misses: u32,
    /// Dechirped-bin match tolerance, circular (default 1 bin — absorbs
    /// fractional-CFO straddle between adjacent bins).
    pub bin_tolerance: u16,
    /// Cheap first pass: windows whose total energy is at or below
    /// `energy_gate × 2^SF` skip the dechirp/FFT entirely (default 0.0 —
    /// gates exact silence only, so idle air costs a sum, not an FFT).
    pub energy_gate: f64,
}

impl TrackerConfig {
    /// Defaults for a given confirmation threshold (as for
    /// [`scan_for_packets`]).
    pub fn new(threshold: f64) -> Self {
        TrackerConfig {
            threshold,
            birth_floor_frac: 0.5,
            top_k: 4,
            max_hypotheses: 16,
            expire_misses: 2,
            bin_tolerance: 1,
            energy_gate: 0.0,
        }
    }

    fn birth_floor(&self) -> f64 {
        self.threshold * self.birth_floor_frac
    }
}

/// One lifecycle transition of a tracker hypothesis, in stream order.
/// Every hypothesis ends in exactly one terminal transition, so the
/// counts satisfy `born = confirmed + expired + merged + live` at all
/// times (see [`HypothesisCounts::balanced`]).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum HypothesisEvent {
    /// A peak no live hypothesis claimed started a new candidate.
    Born {
        /// Tracker-unique hypothesis id (monotone).
        id: u64,
        /// Symbol-window index of the birth.
        window: u64,
        /// Absolute sample index of the candidate packet start.
        start: u64,
        /// Dechirped bin the candidate persists at.
        bin: u16,
        /// Deflated score of the birthing peak.
        score: f64,
    },
    /// The hypothesis met the confirmation criteria and was reported as a
    /// packet start.
    Confirmed {
        /// Tracker-unique hypothesis id.
        id: u64,
        /// Symbol-window index of the confirmation.
        window: u64,
        /// Absolute sample index of the confirmed packet start.
        start: u64,
        /// Dechirped bin the hypothesis persisted at.
        bin: u16,
        /// Accumulated deflated score at confirmation.
        score: f64,
        /// Supporting windows at confirmation.
        support: u32,
    },
    /// The hypothesis ran out of support (or was evicted for a stronger
    /// newcomer) before confirming.
    Expired {
        /// Tracker-unique hypothesis id.
        id: u64,
        /// Symbol-window index of the expiry.
        window: u64,
        /// Absolute sample index of the candidate packet start.
        start: u64,
        /// Dechirped bin the candidate persisted at.
        bin: u16,
        /// Supporting windows accumulated before expiry.
        support: u32,
    },
    /// Two live hypotheses tracked the same bin (within tolerance) and
    /// were folded into one.
    Merged {
        /// Id of the hypothesis that was absorbed.
        id: u64,
        /// Id of the surviving hypothesis.
        into: u64,
        /// Symbol-window index of the merge.
        window: u64,
        /// Absolute sample index of the absorbed candidate's start.
        start: u64,
        /// Dechirped bin of the absorbed candidate.
        bin: u16,
    },
}

/// Lifetime hypothesis accounting of one [`StreamScanner`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HypothesisCounts {
    /// Hypotheses ever born.
    pub born: u64,
    /// Hypotheses confirmed as packet starts.
    pub confirmed: u64,
    /// Hypotheses expired (missed out or evicted) before confirming.
    pub expired: u64,
    /// Hypotheses merged into a stronger duplicate.
    pub merged: u64,
    /// Hypotheses currently live (not yet terminal).
    pub live: u64,
}

impl HypothesisCounts {
    /// Terminal states are exclusive: every born hypothesis is confirmed,
    /// expired, merged, or still live — never more than one.
    pub fn balanced(&self) -> bool {
        self.born == self.confirmed + self.expired + self.merged + self.live
    }
}

/// One live candidate frame alignment.
#[derive(Clone, Copy, Debug)]
struct Hypothesis {
    id: u64,
    /// Dechirped bin the candidate persists at (fixed at birth; the
    /// match tolerance absorbs adjacent-bin straddle).
    bin: u16,
    /// Window index of the first supporting window (birth).
    first_window: u64,
    /// Window index of the most recent supporting window.
    last_window: u64,
    /// Raw (pre-deflation) peak magnitude of the most recent supporting
    /// window.
    last_mag: f64,
    /// Raw peak magnitude of the supporting window before the most
    /// recent one — a full interior window in every run shape that
    /// matters, hence the local full-coherence reference that the
    /// sync-word evidence floor is measured against.
    prev_mag: f64,
    support: u32,
    acc_score: f64,
    misses: u32,
    /// Criteria met; awaiting end-of-run to finalize the start estimate.
    pending: bool,
}

/// Post-confirmation guard: absorbs the confirmed frame's remaining
/// preamble windows so they cannot re-birth a duplicate hypothesis.
#[derive(Clone, Copy, Debug)]
struct Guard {
    bin: u16,
    until_window: u64,
}

/// Internal per-window scratch: one scored peak.
#[derive(Clone, Copy, Debug)]
struct ScoredPeak {
    bin: u16,
    /// Deflated score (birth/support/confirmation thresholds).
    score: f64,
    /// Raw peak magnitude `|X[bin]|` (edge-fraction classification).
    mag: f64,
    claimed: bool,
}

/// Events kept when nobody drains them (standalone scans); the station
/// drains every chunk, so the cap only bounds unattended use.
const EVENT_CAP: usize = 4096;

/// Incremental multi-hypothesis preamble tracker for chunked streams:
/// feed IQ in arbitrary-size chunks (one sample or a megasample at a
/// time) and the scanner reports confirmed packet starts as **absolute**
/// sample indices. Windows are re-assembled across chunk boundaries from
/// an internal sub-window carry, so chunking can never split or shift a
/// detection — the confirmed starts are invariant to segmentation.
///
/// Unlike a single-run scanner, the tracker maintains up to
/// [`TrackerConfig::max_hypotheses`] candidate frame alignments
/// concurrently. The physics: every symbol-aligned window inside a
/// preamble dechirps to the *same* bin (timing and CFO combine into one
/// constant shift — Sec. 6.1), while payload windows hop bins per
/// symbol. Each window contributes its top-K deflated peaks; peaks that
/// persist at one bin accumulate support and score
/// (birth → support → pending → confirm), transient ones expire. A
/// hypothesis meeting the criteria is finalized when its *preamble run*
/// ends (first unsupported window — the sync word steps the bin — or the
/// span cap, or end of stream), which anchors the start estimate against
/// front contamination. That is still early in the frame, ~payload-length
/// before the hot run ends — which is what lets two overlapping frames
/// both surface.
#[derive(Clone, Debug)]
pub struct StreamScanner {
    modem: Modem,
    cfg: TrackerConfig,
    min_run: usize,
    /// Carry of `< 2^SF` samples: the tail of the pushed stream that does
    /// not yet fill a whole symbol window. `carry_start` stays a multiple
    /// of the symbol length, so windows are always phase-0 aligned.
    carry: Vec<C64>,
    /// Absolute stream index of `carry[0]`.
    carry_start: u64,
    windows: u64,
    gated: u64,
    live: Vec<Hypothesis>,
    guards: Vec<Guard>,
    events: Vec<HypothesisEvent>,
    next_id: u64,
    counts: HypothesisCounts,
    /// Per-window peak scratch (no per-window allocation).
    peak_scratch: Vec<ScoredPeak>,
    /// Per-bin power of the current window's dechirped spectrum
    /// (sync-word evidence lookups — the top-K peaks are too crowded to
    /// be relied on for a specific bin). Empty for gated windows.
    spec_power: Vec<f64>,
}

impl StreamScanner {
    /// Builds a tracker with default tuning; `threshold` as for
    /// [`scan_for_packets`].
    pub fn new(modem: Modem, threshold: f64) -> Self {
        StreamScanner::with_config(modem, TrackerConfig::new(threshold))
    }

    /// Builds a tracker with explicit tuning.
    pub fn with_config(modem: Modem, mut cfg: TrackerConfig) -> Self {
        // The per-window support mask is a fixed 64-wide array.
        cfg.max_hypotheses = cfg.max_hypotheses.clamp(1, 64);
        let min_run = modem.params().preamble_len.saturating_sub(2).max(2);
        StreamScanner {
            modem,
            cfg,
            min_run,
            carry: Vec::new(),
            carry_start: 0,
            windows: 0,
            gated: 0,
            live: Vec::new(),
            guards: Vec::new(),
            events: Vec::new(),
            next_id: 0,
            counts: HypothesisCounts::default(),
            peak_scratch: Vec::new(),
            spec_power: Vec::new(),
        }
    }

    /// Total samples pushed so far (the absolute index of the next one).
    pub fn position(&self) -> u64 {
        self.carry_start + self.carry.len() as u64
    }

    /// Symbol windows examined so far (including energy-gated ones).
    pub fn windows_scanned(&self) -> u64 {
        self.windows
    }

    /// Windows the cheap energy pre-gate skipped the FFT for.
    pub fn windows_gated(&self) -> u64 {
        self.gated
    }

    /// Current hypothesis accounting (always [`HypothesisCounts::balanced`]).
    pub fn counts(&self) -> HypothesisCounts {
        self.counts
    }

    /// Earliest packet start any *live* (unconfirmed) hypothesis still
    /// claims — samples at or after it must be retained by a streaming
    /// caller, because the hypothesis may yet confirm at that start.
    /// (Start finalization can only move a start *later* than the birth
    /// window, so the birth window is the safe retention bound.)
    pub fn earliest_live_start(&self) -> Option<u64> {
        let n = self.modem.n() as u64;
        self.live.iter().map(|h| h.first_window * n).min()
    }

    /// Moves every queued lifecycle event into `out`, in stream order.
    pub fn drain_events(&mut self, out: &mut Vec<HypothesisEvent>) {
        out.append(&mut self.events);
    }

    /// Consumes one chunk, appending any packet starts confirmed inside
    /// it (absolute sample indices, in confirmation order — which for
    /// overlapping frames is *not* necessarily start order).
    pub fn push(&mut self, chunk: &[C64], hits: &mut Vec<u64>) {
        let n = self.modem.n();
        self.carry.extend_from_slice(chunk);
        let mut idx = 0usize;
        while idx + n <= self.carry.len() {
            let w = (self.carry_start + idx as u64) / n as u64;
            self.windows += 1;
            let window = &self.carry[idx..idx + n];
            let energy: f64 = window.iter().map(|z| z.norm_sqr()).sum();
            if energy <= self.cfg.energy_gate * n as f64 {
                self.gated += 1;
                self.peak_scratch.clear();
                self.spec_power.clear();
            } else {
                let spec = self.modem.symbol_spectrum(window);
                self.score_spectrum(&spec);
            }
            self.window_tick(w, hits);
            idx += n;
        }
        self.carry.drain(..idx);
        self.carry_start += idx as u64;
        self.trim_events();
    }

    /// End-of-stream: finalizes every *pending* hypothesis (criteria met,
    /// run still open when the stream ended — their starts are appended to
    /// `hits`) and expires the rest (their frames can no longer complete).
    pub fn flush(&mut self, hits: &mut Vec<u64>) {
        let n = self.modem.n() as u64;
        let w = self.carry_start / n;
        for h in std::mem::take(&mut self.live) {
            if h.pending {
                // The stream ended before the run did: no next window, so
                // no sync-word evidence to anchor with.
                self.finalize_confirm(h, w, (0.0, 0.0), hits);
            } else {
                self.counts.expired += 1;
                self.counts.live -= 1;
                self.events.push(HypothesisEvent::Expired {
                    id: h.id,
                    window: w,
                    start: h.first_window * n,
                    bin: h.bin,
                    support: h.support,
                });
            }
        }
        self.guards.clear();
        self.trim_events();
    }

    /// Raw spectrum magnitudes of the current window at the two bins
    /// where a hypothesis tracked at `bin` would show its sync-word
    /// symbols (`(bin + SYNC_SYMBOLS[i]) mod n`, by the common-shift
    /// property). Read from the full dechirped spectrum, not the top-K
    /// peaks — a weak sync fragment is routinely crowded out of the
    /// top-K by other users' windows, but sits at a *known* bin, so it
    /// needs no peak search. `(0.0, 0.0)` for gated windows.
    fn sync_evidence(&self, bin: u16) -> (f64, f64) {
        let alphabet = self.spec_power.len() as u16;
        if alphabet == 0 {
            return (0.0, 0.0);
        }
        let tol = self.cfg.bin_tolerance;
        let mut ev = [0.0f64; 2];
        for (slot, sync) in ev.iter_mut().zip(crate::frame::SYNC_SYMBOLS) {
            let target = (bin + sync % alphabet) % alphabet;
            for d in 0..=tol {
                for b in [(target + d) % alphabet, (target + alphabet - d) % alphabet] {
                    *slot = slot.max(self.spec_power[b as usize]);
                }
            }
        }
        (ev[0].sqrt(), ev[1].sqrt())
    }

    /// A pending hypothesis's preamble run has ended (first miss or end
    /// of stream): resolve its start estimate and report it.
    ///
    /// The downstream decoder's timing search absorbs a residual of
    /// `[0, n)` samples, so the reported start must be the symbol window
    /// *flooring* the true frame start — one window late (a negative
    /// residual) is undecodable, one window early is out of search range.
    ///
    /// What anchors the estimate: a repeated-upchirp preamble is periodic
    /// with the symbol length, so for a frame misaligned by `r ∈ (0, n)`
    /// samples every grid window inside the preamble dechirps to the same
    /// bin `b` (CFO and `r` combine into one shift — Sec. 6.1), and the
    /// run shape alone cannot say which window floors the true start —
    /// edge-window *strength* is unreliable (fractional-bin scalloping
    /// hits full windows harder than partial ones, and deflation inflates
    /// quiet edge windows). The sync word can: by the common-shift
    /// property, a window containing any fragment of sync symbol `v`
    /// shows a peak at exactly `(b + v) mod n`, whichever part of the
    /// symbol it caught. The window that *ended* the run (`w`, the first
    /// unsupported one) therefore tells us where the preamble stopped:
    ///
    /// * peak at `b + SYNC[1]` — `w` holds the tail of sync-1 plus the
    ///   head of sync-2, so the last supported window was the trailing
    ///   straddle: `start = last - l`.
    /// * else peak at `b + SYNC[0]` — `w` is sync-1 itself, so the run
    ///   ended on the final full preamble window (aligned frame, or the
    ///   trailing straddle was too weak to support): `start = last + 1 -
    ///   l`. Same-bin contamination ahead of the preamble (e.g. the
    ///   payload tail of a zero-gap predecessor) stretches the run but
    ///   lands here too, anchored from the trustworthy end.
    /// * neither — the run was cut mid-preamble (collision, noise,
    ///   end-of-stream flush): the birth window is the best available
    ///   anchor.
    ///
    /// The rule needs no run-shape heuristics at all: at a tick-time
    /// finalize `last_window` is always `w - 1` (pending hypotheses end
    /// at their first miss), so the evidence directly names the window
    /// that floors the start — gappy support and front contamination
    /// change nothing. Evidence must clear a magnitude floor relative to
    /// `prev_mag` (the penultimate supporting window — a full interior
    /// window in every shape that matters, hence a contamination-proof
    /// full-coherence reference).
    fn finalize_confirm(
        &mut self,
        h: Hypothesis,
        w: u64,
        sync_ev: (f64, f64),
        hits: &mut Vec<u64>,
    ) {
        let n = self.modem.n() as u64;
        let l = self.modem.params().preamble_len as u64;
        let full = h.prev_mag.max(f64::MIN_POSITIVE);
        let (m_sync1, m_sync2) = sync_ev;
        let ev_floor = 0.1 * full;
        let start_w = if m_sync2 >= ev_floor && h.last_window >= l {
            h.last_window - l
        } else if m_sync1 >= ev_floor && h.last_window + 1 >= l {
            h.last_window + 1 - l
        } else {
            h.first_window
        };
        let start = start_w * n;
        self.counts.confirmed += 1;
        self.counts.live -= 1;
        let guard_span = l + 2;
        self.guards.push(Guard {
            bin: h.bin,
            until_window: w + guard_span,
        });
        self.events.push(HypothesisEvent::Confirmed {
            id: h.id,
            window: w,
            start,
            bin: h.bin,
            score: h.acc_score,
            support: h.support,
        });
        hits.push(start);
    }

    /// Fills `peak_scratch` with the window's top-K deflated peaks.
    ///
    /// Deflation (CoRa): peak `j` is scored against the spectrum minus
    /// all stronger peaks — `score_j = peak_j · 2^SF / (total − Σ_{i<j}
    /// peak_i)` — so the strongest peak gets exactly the classic
    /// peak-to-average [`Modem::detection_metric`], and a 20 dB weaker
    /// preamble tone under a strong frame's payload is scored against
    /// the *residual*, not drowned by the strong peak in the
    /// denominator.
    fn score_spectrum(&mut self, spec: &[C64]) {
        let n = self.modem.n();
        // Top-K selection by power, ties to the lower bin (deterministic).
        self.peak_scratch.clear();
        self.spec_power.clear();
        self.spec_power.extend(spec.iter().map(|z| z.norm_sqr()));
        let mut tops: [(usize, f64); 8] = [(usize::MAX, f64::NEG_INFINITY); 8];
        let k = self.cfg.top_k.clamp(1, tops.len());
        for (b, &p) in self.spec_power.iter().enumerate() {
            if p > tops[k - 1].1 {
                let mut j = k - 1;
                tops[j] = (b, p);
                while j > 0 && tops[j].1 > tops[j - 1].1 {
                    tops.swap(j, j - 1);
                    j -= 1;
                }
            }
        }
        let total: f64 = self.spec_power.iter().sum();
        if total <= 0.0 {
            return;
        }
        // Anything the deflation drives below this is numerical dust, not
        // signal: stop before cancellation inflates a junk score.
        let residual_floor = total * 1e-9;
        let mut residual = total;
        for &(b, p) in tops.iter().take(k) {
            if b == usize::MAX || p <= 0.0 || residual <= residual_floor {
                break;
            }
            let score = (p * n as f64 / residual).min(n as f64);
            // Bins are < 2^SF ≤ 4096, far inside u16.
            self.peak_scratch.push(ScoredPeak {
                bin: b as u16,
                score,
                mag: p.sqrt(),
                claimed: false,
            });
            residual -= p;
        }
    }

    /// Advances every hypothesis by one window: support matching, miss
    /// expiry, online confirmation, births, merges, guard upkeep — in
    /// that fixed order, so the outcome is deterministic and invariant
    /// to chunk segmentation.
    fn window_tick(&mut self, w: u64, hits: &mut Vec<u64>) {
        let n = self.modem.n() as u64;
        let floor = self.cfg.birth_floor();
        let tol = self.cfg.bin_tolerance;
        let alphabet = self.modem.n() as u16;

        // 1. Support: each peak (strongest first) claims at most one live
        //    hypothesis, each hypothesis takes at most one peak.
        let mut supported = [false; 64];
        for pi in 0..self.peak_scratch.len() {
            let peak = self.peak_scratch[pi];
            if peak.score < floor {
                continue;
            }
            let mut best: Option<(u16, usize)> = None;
            for (hi, h) in self.live.iter().enumerate() {
                if *supported.get(hi).unwrap_or(&true) {
                    continue;
                }
                let d = circ_dist(h.bin, peak.bin, alphabet);
                if d <= tol && best.is_none_or(|(bd, _)| d < bd) {
                    best = Some((d, hi));
                }
            }
            if let Some((_, hi)) = best {
                let h = &mut self.live[hi];
                h.support += 1;
                h.acc_score += peak.score;
                h.misses = 0;
                h.last_window = w;
                h.prev_mag = h.last_mag;
                h.last_mag = peak.mag;
                if let Some(s) = supported.get_mut(hi) {
                    *s = true;
                }
                self.peak_scratch[pi].claimed = true;
            }
        }

        // 2. Run endings. A hypothesis meeting the confirmation criteria
        //    turns *pending*: it keeps tracking until its preamble run
        //    demonstrably ends — the first unsupported window (the sync
        //    word steps the bin) or end of stream — and only then is the
        //    start finalized and reported. Finalizing any earlier (e.g.
        //    at a span cap) risks cutting mid-preamble when front
        //    contamination stretched the run, which would mis-anchor the
        //    start by a symbol; the tail anchor in `finalize_confirm`
        //    makes arbitrarily long contamination harmless, so waiting is
        //    free. That is still during the frame (the run ends at the
        //    sync word, ~payload-length before the frame does), which is
        //    what lets overlapping frames both surface. Unsupported
        //    unconfirmed hypotheses age out instead.
        let confirm_acc = self.cfg.threshold * self.min_run as f64;
        let mut hi = 0usize;
        while hi < self.live.len() {
            let supported_now = supported.get(hi).copied().unwrap_or(false);
            {
                let h = &mut self.live[hi];
                if supported_now
                    && !h.pending
                    && h.support as usize >= self.min_run
                    && h.acc_score >= confirm_acc
                {
                    h.pending = true;
                }
            }
            let h = self.live[hi];
            if h.pending && !supported_now {
                self.live.remove(hi);
                supported.copy_within(hi + 1.., hi);
                let ev = self.sync_evidence(h.bin);
                self.finalize_confirm(h, w, ev, hits);
                continue;
            }
            if !supported_now {
                let h = &mut self.live[hi];
                h.misses += 1;
                if h.misses > self.cfg.expire_misses {
                    let dead = self.live.remove(hi);
                    supported.copy_within(hi + 1.., hi);
                    self.counts.expired += 1;
                    self.counts.live -= 1;
                    self.events.push(HypothesisEvent::Expired {
                        id: dead.id,
                        window: w,
                        start: dead.first_window * n,
                        bin: dead.bin,
                        support: dead.support,
                    });
                    continue;
                }
            }
            hi += 1;
        }

        // 4. Births: unclaimed peaks above the floor start new candidates,
        //    unless a guard or an already-tracked bin absorbs them. When
        //    the live set is full, the weakest is evicted only for a
        //    stronger newcomer.
        for pi in 0..self.peak_scratch.len() {
            let peak = self.peak_scratch[pi];
            if peak.claimed || peak.score < floor {
                continue;
            }
            let guarded = self
                .guards
                .iter()
                .any(|g| w <= g.until_window && circ_dist(g.bin, peak.bin, alphabet) <= tol);
            if guarded {
                continue;
            }
            let tracked = self
                .live
                .iter()
                .any(|h| circ_dist(h.bin, peak.bin, alphabet) <= tol);
            if tracked {
                continue;
            }
            if self.live.len() >= self.cfg.max_hypotheses.max(1) {
                // Evict the weakest (lowest accumulated score; ties to the
                // earliest index) only if the newcomer outscores it.
                // Pending hypotheses are confirmations-in-waiting — never
                // evicted.
                let weakest = self
                    .live
                    .iter()
                    .enumerate()
                    .filter(|(_, h)| !h.pending)
                    .min_by(|a, b| a.1.acc_score.total_cmp(&b.1.acc_score))
                    .map(|(i, h)| (i, h.acc_score));
                match weakest {
                    Some((wi, wscore)) if wscore < peak.score => {
                        let dead = self.live.remove(wi);
                        self.counts.expired += 1;
                        self.counts.live -= 1;
                        self.events.push(HypothesisEvent::Expired {
                            id: dead.id,
                            window: w,
                            start: dead.first_window * n,
                            bin: dead.bin,
                            support: dead.support,
                        });
                    }
                    _ => continue,
                }
            }
            let id = self.next_id;
            self.next_id += 1;
            let start = w * n;
            self.live.push(Hypothesis {
                id,
                bin: peak.bin,
                first_window: w,
                last_window: w,
                last_mag: peak.mag,
                prev_mag: peak.mag,
                support: 1,
                acc_score: peak.score,
                misses: 0,
                pending: false,
            });
            self.counts.born += 1;
            self.counts.live += 1;
            self.events.push(HypothesisEvent::Born {
                id,
                window: w,
                start,
                bin: peak.bin,
                score: peak.score,
            });
        }

        // 5. Merge duplicates: two live hypotheses within bin tolerance
        //    track the same frame (fractional-CFO straddle births both
        //    adjacent bins). A pending hypothesis survives the merge
        //    unconditionally (it owes a confirmation); between two
        //    non-pending ones the higher accumulated score wins. Two
        //    pending hypotheses are never folded.
        let mut i = 0usize;
        while i < self.live.len() {
            let mut j = i + 1;
            let mut merged_any = false;
            while j < self.live.len() {
                let close = circ_dist(self.live[i].bin, self.live[j].bin, alphabet) <= tol;
                if close && !(self.live[i].pending && self.live[j].pending) {
                    let j_wins = self.live[j].pending
                        || (!self.live[i].pending
                            && self.live[j].acc_score > self.live[i].acc_score);
                    let (wi, li) = if j_wins { (j, i) } else { (i, j) };
                    let winner_id = self.live[wi].id;
                    let loser = self.live.remove(li);
                    self.counts.merged += 1;
                    self.counts.live -= 1;
                    self.events.push(HypothesisEvent::Merged {
                        id: loser.id,
                        into: winner_id,
                        window: w,
                        start: loser.first_window * n,
                        bin: loser.bin,
                    });
                    merged_any = true;
                    break;
                }
                j += 1;
            }
            if !merged_any {
                i += 1;
            }
        }

        // 6. Retire spent guards.
        self.guards.retain(|g| g.until_window >= w);
    }

    /// Bounds the internal event queue for callers that never drain it.
    fn trim_events(&mut self) {
        if self.events.len() > EVENT_CAP {
            let excess = self.events.len() - EVENT_CAP;
            self.events.drain(..excess);
        }
    }
}

/// Circular distance between two dechirped bins (the alphabet wraps).
fn circ_dist(a: u16, b: u16, alphabet: u16) -> u16 {
    let d = a.abs_diff(b);
    d.min(alphabet - d)
}

/// One-shot reference for the tracker: scans `samples` in a single push
/// and returns every confirmed packet start. The incremental
/// [`StreamScanner`] reports exactly these starts for *any* chunking of
/// the same stream (the invariance the proptest suite pins).
pub fn track_packets(samples: &[C64], modem: &Modem, cfg: TrackerConfig) -> Vec<u64> {
    let mut scanner = StreamScanner::with_config(modem.clone(), cfg);
    let mut hits = Vec::new();
    scanner.push(samples, &mut hits);
    scanner.flush(&mut hits);
    hits
}

/// Synchronises to a packet whose preamble begins within one symbol after
/// `approx_start` (e.g. a hit from [`scan_for_packets`], or the scheduled
/// slot time in the MAC simulator).
///
/// Uses the sync-word symbols to measure the combined integer shift `c`.
pub fn synchronize(
    samples: &[C64],
    modem: &Modem,
    approx_start: usize,
) -> Result<PacketSync, RxError> {
    let n = modem.n();
    let p = modem.params();
    let sync_at = approx_start + p.preamble_len * n;
    let need = sync_at + 2 * n;
    if need > samples.len() {
        return Err(RxError::NotFound);
    }
    let alphabet = n as u16;
    let s1 = modem.demod_symbol(&samples[sync_at..sync_at + n]);
    let s2 = modem.demod_symbol(&samples[sync_at + n..sync_at + 2 * n]);
    let c1 = (s1 + alphabet - SYNC_SYMBOLS[0]) % alphabet;
    let c2 = (s2 + alphabet - SYNC_SYMBOLS[1]) % alphabet;
    if c1 != c2 {
        return Err(RxError::SyncMismatch);
    }
    // The sync word alone is two symbols — 1-in-2^SF odds of a mid-stream
    // coincidence, which the old code happily returned as a worst-bin
    // "sync". A real packet precedes the sync word with a preamble of base
    // up-chirps, and (timing + CFO being a *common* shift — Sec. 6.1)
    // every interior preamble window must demodulate to the same `c` the
    // sync word measured. Window 0 may straddle the packet edge for a
    // delayed transmitter, so it is excluded; a strict majority of the
    // rest tolerates occasional noise-flipped bins.
    let interior = 1..p.preamble_len;
    let mut matches = 0usize;
    for w in interior.clone() {
        let lo = approx_start + w * n;
        if modem.demod_symbol(&samples[lo..lo + n]) == c1 {
            matches += 1;
        }
    }
    if 2 * matches <= interior.len() {
        return Err(RxError::NoPreamble);
    }
    Ok(PacketSync {
        data_start: sync_at + 2 * n,
        shift: c1,
    })
}

/// Demodulates and decodes one packet starting near `approx_start`.
/// `num_data_symbols` bounds how many symbols to pull (use
/// [`crate::frame::frame_symbol_count`] when the length is known, or a
/// generous maximum otherwise — the frame header trims the rest).
pub fn decode_packet(
    samples: &[C64],
    modem: &Modem,
    approx_start: usize,
    num_data_symbols: usize,
) -> Result<DecodedFrame, RxError> {
    let sync = synchronize(samples, modem, approx_start)?;
    let n = modem.n();
    let alphabet = n as u16;
    let raw = modem.demodulate(samples, sync.data_start, num_data_symbols);
    let corrected: Vec<u16> = raw
        .into_iter()
        .map(|s| (s + alphabet - sync.shift) % alphabet)
        .collect();
    decode_frame(modem.params(), &corrected).map_err(RxError::Frame)
}

/// Convenience: full transmit chain for tests and examples — payload to
/// critically-sampled baseband waveform (preamble + sync + data).
pub fn transmit_packet(params: &PhyParams, payload: &[u8]) -> Vec<C64> {
    let modem = Modem::new(*params);
    let syms = crate::frame::packet_symbols(params, payload);
    modem.modulate(&syms)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{Bandwidth, CodeRate, SpreadingFactor};

    fn params() -> PhyParams {
        PhyParams {
            sf: SpreadingFactor::Sf8,
            bw: Bandwidth::Khz125,
            cr: CodeRate::Cr48,
            preamble_len: 8,
            explicit_crc: true,
        }
    }

    #[test]
    fn end_to_end_clean_decode() {
        let p = params();
        let modem = Modem::new(p);
        let payload = b"hello, urban LP-WAN".to_vec();
        let wave = transmit_packet(&p, &payload);
        let out = decode_packet(&wave, &modem, 0, 200).unwrap();
        assert_eq!(out.payload, payload);
        assert!(out.crc_ok && out.fec_reliable);
    }

    #[test]
    fn decode_with_leading_silence_and_scan() {
        let p = params();
        let modem = Modem::new(p);
        let payload = b"find me".to_vec();
        let mut stream = vec![C64::ZERO; 5 * 256 + 13];
        // Scan assumes symbol-aligned windows; place packet symbol-aligned
        // after silence for the coarse scan, then fine offset via the known
        // start for decode.
        let mut stream2 = vec![C64::ZERO; 5 * 256];
        stream2.extend(transmit_packet(&p, &payload));
        stream2.extend(vec![C64::ZERO; 3 * 256]);
        let hits = scan_for_packets(&stream2, &modem, 40.0);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0], 5 * 256);
        let out = decode_packet(&stream2, &modem, hits[0], 200).unwrap();
        assert_eq!(out.payload, payload);
        // Unaligned leading silence: decode via exact known start.
        stream.extend(transmit_packet(&p, &payload));
        let out2 = decode_packet(&stream, &modem, 5 * 256 + 13, 200).unwrap();
        assert_eq!(out2.payload, payload);
    }

    #[test]
    fn scan_finds_two_packets() {
        let p = params();
        let modem = Modem::new(p);
        let mut stream = vec![C64::ZERO; 2 * 256];
        stream.extend(transmit_packet(&p, b"one"));
        stream.extend(vec![C64::ZERO; 4 * 256]);
        let second_at = stream.len();
        stream.extend(transmit_packet(&p, b"two"));
        stream.extend(vec![C64::ZERO; 256]);
        let hits = scan_for_packets(&stream, &modem, 40.0);
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0], 2 * 256);
        assert_eq!(hits[1], second_at);
    }

    #[test]
    fn integer_shift_corrected_via_sync_word() {
        // Apply a pure integer CFO of +5 bins to the whole packet: every
        // dechirped symbol shifts by +5; the sync word must absorb it.
        let p = params();
        let modem = Modem::new(p);
        let payload = b"shifted".to_vec();
        let wave = transmit_packet(&p, &payload);
        let n = 256.0;
        let shifted: Vec<C64> = wave
            .iter()
            .enumerate()
            .map(|(i, v)| v * C64::cis(2.0 * std::f64::consts::PI * 5.0 * i as f64 / n))
            .collect();
        let sync = synchronize(&shifted, &modem, 0).unwrap();
        assert_eq!(sync.shift, 5);
        let out = decode_packet(&shifted, &modem, 0, 200).unwrap();
        assert_eq!(out.payload, payload);
    }

    #[test]
    fn no_packet_in_noise() {
        let stream: Vec<C64> = (0..4096)
            .map(|i| C64::cis((i * i % 97) as f64 * 0.39) * 0.1)
            .collect();
        let modem = Modem::new(params());
        assert!(scan_for_packets(&stream, &modem, 40.0).is_empty());
        assert_eq!(
            synchronize(&[C64::ZERO; 100], &modem, 0),
            Err(RxError::NotFound)
        );
    }

    #[test]
    fn truncated_stream_not_found() {
        let p = params();
        let modem = Modem::new(p);
        let wave = transmit_packet(&p, b"cut");
        let cut = &wave[..8 * 256]; // preamble only
        assert_eq!(synchronize(cut, &modem, 0), Err(RxError::NotFound));
    }

    /// Regression (PR 4): `synchronize` used to trust any position where
    /// the two worst-bin guesses at the sync offsets happened to agree.
    /// Mid-stream data containing the sync values at the right spacing —
    /// no preamble anywhere — returned a bogus `Ok(PacketSync)`. It must
    /// be a typed `NoPreamble` miss.
    #[test]
    fn mid_stream_sync_coincidence_is_no_preamble() {
        let p = params();
        let modem = Modem::new(p);
        // Arbitrary data symbols, with the sync word planted where the
        // receiver will look for it (windows 8 and 9 for an 8-symbol
        // preamble) — exactly the coincidence a long payload produces.
        let mut syms: Vec<u16> = vec![17, 203, 91, 54, 140, 222, 9, 180];
        syms.push(SYNC_SYMBOLS[0]);
        syms.push(SYNC_SYMBOLS[1]);
        syms.extend([33u16, 77, 129]);
        let wave = modem.modulate(&syms);
        // Before the fix: Ok(PacketSync { shift: 0 }) — the worst-bin guess.
        assert_eq!(synchronize(&wave, &modem, 0), Err(RxError::NoPreamble));
        // And the true packet still synchronises (the check accepts every
        // legitimate preamble).
        let packet = transmit_packet(&p, b"real");
        assert!(synchronize(&packet, &modem, 0).is_ok());
    }

    /// For clean, non-overlapping packets the tracker confirms exactly
    /// the starts a one-shot `scan_for_packets` reports, for any chunking
    /// of the same stream — including chunks that split symbol windows
    /// and the preamble itself.
    #[test]
    fn stream_scanner_matches_one_shot_scan() {
        let p = params();
        let modem = Modem::new(p);
        let mut stream = vec![C64::ZERO; 3 * 256 + 71];
        stream.extend(transmit_packet(&p, b"first"));
        stream.extend(vec![C64::ZERO; 5 * 256]);
        stream.extend(transmit_packet(&p, b"second packet"));
        stream.extend(vec![C64::ZERO; 2 * 256 + 19]);
        let reference: Vec<u64> = scan_for_packets(&stream, &modem, 40.0)
            .iter()
            .map(|&s| s as u64)
            .collect();
        assert!(!reference.is_empty(), "scan found nothing to compare");
        // Deterministic "random" chunk lengths, including 1-sample chunks.
        let mut lens = [1usize, 255, 256, 257, 13, 4096, 777, 2048, 3, 100]
            .iter()
            .cycle();
        for trial in 0..3 {
            let mut scanner = StreamScanner::new(modem.clone(), 40.0);
            let mut hits = Vec::new();
            let mut off = 0usize;
            while off < stream.len() {
                let len = (*lens.next().unwrap() + trial * 7).clamp(1, stream.len() - off);
                scanner.push(&stream[off..off + len], &mut hits);
                off += len;
            }
            scanner.flush(&mut hits);
            assert_eq!(hits, reference, "trial {trial}");
            assert_eq!(scanner.position(), stream.len() as u64);
            assert_eq!(scanner.windows_scanned(), (stream.len() / 256) as u64);
            assert!(scanner.counts().balanced(), "{:?}", scanner.counts());
            assert_eq!(scanner.counts().live, 0, "flush expires everything");
        }
    }

    /// A preamble reaching the criteria confirms even when the stream
    /// (and its final chunk) ends the moment the run does, with no quiet
    /// window after it: `flush` finalizes the pending hypothesis. With a
    /// complete frame the confirmation instead lands at the sync word —
    /// during the frame, not after its hot run ends.
    #[test]
    fn stream_scanner_confirms_truncated_run_at_flush() {
        let p = params();
        let modem = Modem::new(p);
        let mut stream = vec![C64::ZERO; 2 * 256];
        let wave = transmit_packet(&p, b"truncated");
        stream.extend(&wave[..6 * 256]); // 6 preamble symbols, then the stream ends
        let mut scanner = StreamScanner::new(modem.clone(), 40.0);
        let mut hits = Vec::new();
        scanner.push(&stream, &mut hits);
        scanner.flush(&mut hits);
        assert_eq!(hits, vec![2 * 256], "flush must finalize the open run");
        assert!(scanner.counts().balanced());
        // With the full frame present, confirmation is online: it lands at
        // the sync word, well before the frame's hot run ends.
        let mut full = vec![C64::ZERO; 2 * 256];
        full.extend(&wave);
        let mut scanner = StreamScanner::new(modem, 40.0);
        let mut hits = Vec::new();
        scanner.push(&full[..11 * 256], &mut hits); // preamble + sync only
        assert_eq!(hits, vec![2 * 256], "confirmed at the sync word");
    }

    /// Regression: two back-to-back frames with zero gap form one
    /// contiguous run of hot windows, and when that run ends exactly at
    /// the final chunk boundary the old single-run scanner's `flush`
    /// reported only the first start — the second frame was lost inside
    /// the merged run. The tracker follows each frame's persistent
    /// preamble bin separately, so both starts must surface, and
    /// `position()` must account for the full stream.
    #[test]
    fn back_to_back_runs_ending_at_final_chunk_boundary_both_reported() {
        let p = params();
        let modem = Modem::new(p);
        let mut stream = vec![C64::ZERO; 2 * 256];
        let first = transmit_packet(&p, b"frame A");
        let second_at = stream.len() + first.len();
        stream.extend(&first);
        stream.extend(transmit_packet(&p, b"frame B")); // zero-gap: run never breaks
        assert_eq!(
            stream.len() % 256,
            0,
            "run must end exactly on a window edge"
        );
        // Push so the final chunk boundary coincides with the run's end.
        let mut scanner = StreamScanner::new(modem, 40.0);
        let mut hits = Vec::new();
        scanner.push(&stream[..second_at], &mut hits);
        scanner.push(&stream[second_at..], &mut hits);
        scanner.flush(&mut hits);
        assert_eq!(
            hits,
            vec![2 * 256, second_at as u64],
            "both zero-gap frames must be reported"
        );
        assert_eq!(scanner.position(), stream.len() as u64);
        assert!(scanner.counts().balanced());
    }

    /// LZn-style accumulation: a preamble whose per-window score sits
    /// below the confirmation threshold must still confirm once enough
    /// windows integrate up — the one-shot threshold scan misses it.
    #[test]
    fn sub_threshold_preamble_confirms_by_accumulation() {
        let p = params();
        let modem = Modem::new(p);
        // Attenuate so each clean window scores ≈ 0.63·256 ≈ 161 — below a
        // 200 threshold, above the 100 birth floor. 8 preamble windows
        // accumulate ≈ 1290 ≥ 200·6 = 1200.
        let att = 1.305; // amplitude²/(amplitude²+1) ≈ 0.63 at |a|² ≈ 1.70
        let wave: Vec<C64> = transmit_packet(&p, b"faint")
            .into_iter()
            .map(|z| z * att)
            .collect();
        // Deterministic unit-power pseudo-noise to absorb the metric:
        // uniform per-component width √6 gives complex power 2·6/12 = 1.
        let mut state = 0xDEADBEEFu64;
        let mut noise = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let mut stream = vec![C64::ZERO; 4 * 256];
        stream.extend(&wave);
        stream.extend(vec![C64::ZERO; 2 * 256]);
        let w6 = 6f64.sqrt();
        for z in stream.iter_mut() {
            *z += choir_dsp::complex::c64(noise() * w6, noise() * w6);
        }
        assert!(
            scan_for_packets(&stream, &modem, 200.0).is_empty(),
            "one-shot scan at this threshold must miss the faint preamble"
        );
        let hits = track_packets(&stream, &modem, TrackerConfig::new(200.0));
        assert_eq!(hits, vec![4 * 256], "accumulation must confirm it");
    }

    /// Two frames overlapping 50% must both confirm — the second frame's
    /// preamble lies entirely under the first frame's payload, which is
    /// exactly what multi-peak deflated scoring is for.
    #[test]
    fn overlapping_frames_both_confirm() {
        let p = params();
        let modem = Modem::new(p);
        let a = transmit_packet(&p, b"frame A payload");
        let b = transmit_packet(&p, b"frame B payload");
        let b_at = 2 * 256 + (a.len() / 2 / 256) * 256; // symbol-aligned 50% in
        let total = (2 * 256 + a.len()).max(b_at + b.len()) + 2 * 256;
        let mut stream = vec![C64::ZERO; total];
        for (i, v) in a.iter().enumerate() {
            stream[2 * 256 + i] += *v;
        }
        for (i, v) in b.iter().enumerate() {
            stream[b_at + i] += *v;
        }
        let hits = track_packets(&stream, &modem, TrackerConfig::new(40.0));
        assert!(
            hits.contains(&(2 * 256)) && hits.contains(&(b_at as u64)),
            "both overlapping frames must confirm, got {hits:?}"
        );
        // The old single-run semantics (scan_for_packets) merge them.
        assert_eq!(scan_for_packets(&stream, &modem, 40.0), vec![2 * 256]);
    }

    /// The cheap energy pre-gate skips the FFT on silent air but still
    /// counts the window as scanned.
    #[test]
    fn energy_gate_skips_silence() {
        let p = params();
        let modem = Modem::new(p);
        let mut stream = vec![C64::ZERO; 6 * 256];
        stream.extend(transmit_packet(&p, b"gated"));
        let mut scanner = StreamScanner::new(modem, 40.0);
        let mut hits = Vec::new();
        scanner.push(&stream, &mut hits);
        assert_eq!(hits, vec![6 * 256]);
        assert_eq!(scanner.windows_scanned(), (stream.len() / 256) as u64);
        assert_eq!(scanner.windows_gated(), 6, "six leading silent windows");
    }

    /// Hypothesis lifecycle events drain in stream order and agree with
    /// the accounting counters.
    #[test]
    fn events_agree_with_counts() {
        let p = params();
        let modem = Modem::new(p);
        let mut stream = vec![C64::ZERO; 2 * 256];
        stream.extend(transmit_packet(&p, b"events"));
        stream.extend(vec![C64::ZERO; 3 * 256]);
        let mut scanner = StreamScanner::new(modem, 40.0);
        let mut hits = Vec::new();
        scanner.push(&stream, &mut hits);
        scanner.flush(&mut hits);
        let mut events = Vec::new();
        scanner.drain_events(&mut events);
        let mut derived = HypothesisCounts::default();
        for e in &events {
            match e {
                HypothesisEvent::Born { .. } => derived.born += 1,
                HypothesisEvent::Confirmed { .. } => derived.confirmed += 1,
                HypothesisEvent::Expired { .. } => derived.expired += 1,
                HypothesisEvent::Merged { .. } => derived.merged += 1,
            }
        }
        derived.live = 0; // flush drained the live set
        assert_eq!(derived, scanner.counts());
        assert!(derived.balanced());
        assert_eq!(derived.confirmed, 1);
        // A second drain yields nothing.
        let before = events.len();
        scanner.drain_events(&mut events);
        assert_eq!(events.len(), before);
    }
}
