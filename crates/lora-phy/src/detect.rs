//! Single-user packet detection, synchronisation and decoding — the
//! standard LoRaWAN receive path that Choir's baselines use.
//!
//! Detection: the preamble is a train of identical base up-chirps, so any
//! symbol-length window fully inside it dechirps to a single strong tone.
//! A run of high peak-to-average windows marks a preamble.
//!
//! Synchronisation: a combined integer offset `c` (timing plus CFO, which
//! are interchangeable for chirps — Sec. 6.1 of the paper) shifts *every*
//! dechirped peak by the same amount. The known sync-word symbols reveal
//! `c`, and the payload symbols are corrected by `−c`. Fractional residues
//! are harmless to hard-decision demodulation (they shave margin, which the
//! Gray + Hamming chain absorbs).

use crate::frame::{decode_frame, DecodedFrame, FrameError, SYNC_SYMBOLS};
use crate::modem::Modem;
use crate::params::PhyParams;
use choir_dsp::complex::C64;

/// Result of synchronising to one packet.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PacketSync {
    /// Sample index of the first data (post-sync) symbol.
    pub data_start: usize,
    /// Combined integer timing+frequency shift, in bins, to subtract from
    /// every demodulated symbol.
    pub shift: u16,
}

/// Errors from the single-user receive path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RxError {
    /// No preamble found / not enough samples.
    NotFound,
    /// The two sync symbols disagreed about the integer shift.
    SyncMismatch,
    /// Frame-level decoding failed.
    Frame(FrameError),
}

impl std::fmt::Display for RxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RxError::NotFound => write!(f, "no packet found"),
            RxError::SyncMismatch => write!(f, "sync symbols disagree on shift"),
            RxError::Frame(e) => write!(f, "frame error: {e}"),
        }
    }
}

impl std::error::Error for RxError {}

/// Scans a sample stream for preambles: returns the approximate start
/// sample of each detected packet. Windows step by one symbol, so starts
/// are accurate to within one symbol; [`synchronize`] refines from there.
///
/// `threshold` is the minimum peak-to-average ratio of the dechirped
/// window spectrum (≈ `2^SF` for clean signal, O(1) for noise; 30–50 works
/// for SF7–8 at the SNRs of interest).
pub fn scan_for_packets(samples: &[C64], modem: &Modem, threshold: f64) -> Vec<usize> {
    let n = modem.n();
    let min_run = modem.params().preamble_len.saturating_sub(2).max(2);
    let mut starts = Vec::new();
    let mut run = 0usize;
    let mut run_start = 0usize;
    let mut w = 0usize;
    while (w + 1) * n <= samples.len() {
        let window = &samples[w * n..(w + 1) * n];
        if modem.detection_metric(window) >= threshold {
            if run == 0 {
                run_start = w * n;
            }
            run += 1;
        } else {
            if run >= min_run {
                starts.push(run_start);
            }
            run = 0;
        }
        w += 1;
    }
    if run >= min_run {
        starts.push(run_start);
    }
    starts
}

/// Synchronises to a packet whose preamble begins within one symbol after
/// `approx_start` (e.g. a hit from [`scan_for_packets`], or the scheduled
/// slot time in the MAC simulator).
///
/// Uses the sync-word symbols to measure the combined integer shift `c`.
pub fn synchronize(
    samples: &[C64],
    modem: &Modem,
    approx_start: usize,
) -> Result<PacketSync, RxError> {
    let n = modem.n();
    let p = modem.params();
    let sync_at = approx_start + p.preamble_len * n;
    let need = sync_at + 2 * n;
    if need > samples.len() {
        return Err(RxError::NotFound);
    }
    let alphabet = n as u16;
    let s1 = modem.demod_symbol(&samples[sync_at..sync_at + n]);
    let s2 = modem.demod_symbol(&samples[sync_at + n..sync_at + 2 * n]);
    let c1 = (s1 + alphabet - SYNC_SYMBOLS[0]) % alphabet;
    let c2 = (s2 + alphabet - SYNC_SYMBOLS[1]) % alphabet;
    if c1 != c2 {
        return Err(RxError::SyncMismatch);
    }
    Ok(PacketSync {
        data_start: sync_at + 2 * n,
        shift: c1,
    })
}

/// Demodulates and decodes one packet starting near `approx_start`.
/// `num_data_symbols` bounds how many symbols to pull (use
/// [`crate::frame::frame_symbol_count`] when the length is known, or a
/// generous maximum otherwise — the frame header trims the rest).
pub fn decode_packet(
    samples: &[C64],
    modem: &Modem,
    approx_start: usize,
    num_data_symbols: usize,
) -> Result<DecodedFrame, RxError> {
    let sync = synchronize(samples, modem, approx_start)?;
    let n = modem.n();
    let alphabet = n as u16;
    let raw = modem.demodulate(samples, sync.data_start, num_data_symbols);
    let corrected: Vec<u16> = raw
        .into_iter()
        .map(|s| (s + alphabet - sync.shift) % alphabet)
        .collect();
    decode_frame(modem.params(), &corrected).map_err(RxError::Frame)
}

/// Convenience: full transmit chain for tests and examples — payload to
/// critically-sampled baseband waveform (preamble + sync + data).
pub fn transmit_packet(params: &PhyParams, payload: &[u8]) -> Vec<C64> {
    let modem = Modem::new(*params);
    let syms = crate::frame::packet_symbols(params, payload);
    modem.modulate(&syms)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{Bandwidth, CodeRate, SpreadingFactor};

    fn params() -> PhyParams {
        PhyParams {
            sf: SpreadingFactor::Sf8,
            bw: Bandwidth::Khz125,
            cr: CodeRate::Cr48,
            preamble_len: 8,
            explicit_crc: true,
        }
    }

    #[test]
    fn end_to_end_clean_decode() {
        let p = params();
        let modem = Modem::new(p);
        let payload = b"hello, urban LP-WAN".to_vec();
        let wave = transmit_packet(&p, &payload);
        let out = decode_packet(&wave, &modem, 0, 200).unwrap();
        assert_eq!(out.payload, payload);
        assert!(out.crc_ok && out.fec_reliable);
    }

    #[test]
    fn decode_with_leading_silence_and_scan() {
        let p = params();
        let modem = Modem::new(p);
        let payload = b"find me".to_vec();
        let mut stream = vec![C64::ZERO; 5 * 256 + 13];
        // Scan assumes symbol-aligned windows; place packet symbol-aligned
        // after silence for the coarse scan, then fine offset via the known
        // start for decode.
        let mut stream2 = vec![C64::ZERO; 5 * 256];
        stream2.extend(transmit_packet(&p, &payload));
        stream2.extend(vec![C64::ZERO; 3 * 256]);
        let hits = scan_for_packets(&stream2, &modem, 40.0);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0], 5 * 256);
        let out = decode_packet(&stream2, &modem, hits[0], 200).unwrap();
        assert_eq!(out.payload, payload);
        // Unaligned leading silence: decode via exact known start.
        stream.extend(transmit_packet(&p, &payload));
        let out2 = decode_packet(&stream, &modem, 5 * 256 + 13, 200).unwrap();
        assert_eq!(out2.payload, payload);
    }

    #[test]
    fn scan_finds_two_packets() {
        let p = params();
        let modem = Modem::new(p);
        let mut stream = vec![C64::ZERO; 2 * 256];
        stream.extend(transmit_packet(&p, b"one"));
        stream.extend(vec![C64::ZERO; 4 * 256]);
        let second_at = stream.len();
        stream.extend(transmit_packet(&p, b"two"));
        stream.extend(vec![C64::ZERO; 256]);
        let hits = scan_for_packets(&stream, &modem, 40.0);
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0], 2 * 256);
        assert_eq!(hits[1], second_at);
    }

    #[test]
    fn integer_shift_corrected_via_sync_word() {
        // Apply a pure integer CFO of +5 bins to the whole packet: every
        // dechirped symbol shifts by +5; the sync word must absorb it.
        let p = params();
        let modem = Modem::new(p);
        let payload = b"shifted".to_vec();
        let wave = transmit_packet(&p, &payload);
        let n = 256.0;
        let shifted: Vec<C64> = wave
            .iter()
            .enumerate()
            .map(|(i, v)| v * C64::cis(2.0 * std::f64::consts::PI * 5.0 * i as f64 / n))
            .collect();
        let sync = synchronize(&shifted, &modem, 0).unwrap();
        assert_eq!(sync.shift, 5);
        let out = decode_packet(&shifted, &modem, 0, 200).unwrap();
        assert_eq!(out.payload, payload);
    }

    #[test]
    fn no_packet_in_noise() {
        let stream: Vec<C64> = (0..4096)
            .map(|i| C64::cis((i * i % 97) as f64 * 0.39) * 0.1)
            .collect();
        let modem = Modem::new(params());
        assert!(scan_for_packets(&stream, &modem, 40.0).is_empty());
        assert_eq!(
            synchronize(&[C64::ZERO; 100], &modem, 0),
            Err(RxError::NotFound)
        );
    }

    #[test]
    fn truncated_stream_not_found() {
        let p = params();
        let modem = Modem::new(p);
        let wave = transmit_packet(&p, b"cut");
        let cut = &wave[..8 * 256]; // preamble only
        assert_eq!(synchronize(cut, &modem, 0), Err(RxError::NotFound));
    }
}
