//! Synthetic spatially-correlated temperature/humidity field.
//!
//! Substitutes for the paper's BME280 sensors on four floors of two CMU
//! buildings. The evaluation (Fig. 10, Fig. 11(a)) depends only on the
//! field's *correlation structure*: readings near the building façade
//! track the outdoor value, interior readings track the HVAC setpoint,
//! nearby sensors read nearly the same value. The model:
//!
//! `T(p) = T_in + (T_out − T_in)·exp(−d(p)/λ) + floor_gradient·z + ε(p)`
//!
//! where `d(p)` is the distance to the nearest façade, `ε` is a smooth
//! correlated perturbation (sum of fixed random low-frequency modes) plus
//! white sensor noise. Humidity uses the same spatial weighting with its
//! own endpoints.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A position inside the building: metres in-plane, floor index.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Position {
    /// Metres along the building's long axis.
    pub x: f64,
    /// Metres along the short axis.
    pub y: f64,
    /// Floor number (0-based).
    pub floor: usize,
}

/// Building geometry (the paper's sensor building: ~95 m × 40 m, 4 floors).
#[derive(Clone, Copy, Debug)]
pub struct Building {
    /// Length (m).
    pub width: f64,
    /// Depth (m).
    pub depth: f64,
    /// Number of floors.
    pub floors: usize,
}

impl Default for Building {
    fn default() -> Self {
        Building {
            width: 95.0,
            depth: 40.0,
            floors: 4,
        }
    }
}

impl Building {
    /// Distance from `p` to the nearest façade (m).
    pub fn facade_distance(&self, p: Position) -> f64 {
        let dx = p.x.min(self.width - p.x);
        let dy = p.y.min(self.depth - p.y);
        dx.min(dy).max(0.0)
    }

    /// Distance from the building core (m) — the grouping feature
    /// Fig. 11(a) finds best. Measured through the nearest façade
    /// (`depth/2 − facade_distance`): in a long, thin floor plan this is
    /// what "distance from the centre of the floor" actually proxies —
    /// how exposed a sensor is to the outdoor climate.
    pub fn center_distance(&self, p: Position) -> f64 {
        (self.depth / 2.0 - self.facade_distance(p)).max(0.0)
    }

    /// Places `count` sensors pseudo-randomly (uniform per floor,
    /// round-robin over floors), reproducibly from `seed`.
    pub fn place_sensors(&self, count: usize, seed: u64) -> Vec<Position> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..count)
            .map(|i| Position {
                x: rng.gen_range(0.0..self.width),
                y: rng.gen_range(0.0..self.depth),
                floor: i % self.floors,
            })
            .collect()
    }
}

/// One smooth random mode of the correlated perturbation.
#[derive(Clone, Copy, Debug)]
struct Mode {
    kx: f64,
    ky: f64,
    phase: f64,
    amp: f64,
}

/// The environmental field.
#[derive(Clone, Debug)]
pub struct EnvField {
    /// Outdoor temperature (°C).
    pub t_out: f64,
    /// Indoor setpoint (°C).
    pub t_in: f64,
    /// Outdoor relative humidity (%).
    pub h_out: f64,
    /// Indoor relative humidity (%).
    pub h_in: f64,
    /// Façade influence length scale (m).
    pub lambda: f64,
    /// Per-floor temperature offset (°C per floor — thermal stratification).
    pub floor_gradient: f64,
    /// White sensor-noise standard deviation (°C / %RH).
    pub sensor_noise: f64,
    building: Building,
    modes: Vec<Mode>,
    seed: u64,
}

impl EnvField {
    /// Builds a field over the given building, reproducibly from `seed`.
    pub fn new(building: Building, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xF1E1D);
        let modes = (0..6)
            .map(|_| Mode {
                kx: rng.gen_range(0.02..0.12),
                ky: rng.gen_range(0.02..0.2),
                phase: rng.gen_range(0.0..std::f64::consts::TAU),
                amp: rng.gen_range(0.1..0.35),
            })
            .collect();
        EnvField {
            t_out: 4.0,
            t_in: 22.0,
            h_out: 78.0,
            h_in: 35.0,
            lambda: 6.0,
            floor_gradient: 1.5,
            sensor_noise: 0.15,
            building,
            modes,
            seed,
        }
    }

    /// The building this field covers.
    pub fn building(&self) -> &Building {
        &self.building
    }

    fn smooth_perturbation(&self, p: Position) -> f64 {
        self.modes
            .iter()
            .map(|m| m.amp * (m.kx * p.x + m.ky * p.y + m.phase + p.floor as f64).sin())
            .sum()
    }

    fn facade_weight(&self, p: Position) -> f64 {
        (-self.building.facade_distance(p) / self.lambda).exp()
    }

    /// Noiseless temperature at `p` (°C).
    pub fn temperature_true(&self, p: Position) -> f64 {
        self.t_in
            + (self.t_out - self.t_in) * self.facade_weight(p)
            + self.floor_gradient * p.floor as f64
            + self.smooth_perturbation(p)
    }

    /// Noiseless relative humidity at `p` (%).
    pub fn humidity_true(&self, p: Position) -> f64 {
        self.h_in
            + (self.h_out - self.h_in) * self.facade_weight(p)
            + 2.5 * self.smooth_perturbation(p)
    }

    /// A sensor's temperature *reading* (true value plus sensor noise),
    /// reproducible per `(sensor_id, epoch)`.
    pub fn temperature_reading(&self, p: Position, sensor_id: usize, epoch: u64) -> f64 {
        self.temperature_true(p) + self.noise(sensor_id, epoch, 0)
    }

    /// A sensor's humidity reading (%).
    pub fn humidity_reading(&self, p: Position, sensor_id: usize, epoch: u64) -> f64 {
        self.humidity_true(p) + 2.0 * self.noise(sensor_id, epoch, 1)
    }

    fn noise(&self, sensor_id: usize, epoch: u64, salt: u64) -> f64 {
        let mut rng = StdRng::seed_from_u64(
            self.seed
                .wrapping_mul(0x9E3779B97F4A7C15)
                .wrapping_add(sensor_id as u64)
                .wrapping_add(epoch.wrapping_mul(0xD1B54A32D192ED03))
                .wrapping_add(salt),
        );
        choir_channel_free_gaussian(&mut rng) * self.sensor_noise
    }
}

/// Local standard normal (avoids a dependency cycle with choir-channel).
fn choir_channel_free_gaussian<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

// Tests assert on exactly-representable values (0.0, bin centres).
#[allow(clippy::float_cmp)]
#[cfg(test)]
mod tests {
    use super::*;

    fn field() -> EnvField {
        EnvField::new(Building::default(), 42)
    }

    fn pos(x: f64, y: f64, floor: usize) -> Position {
        Position { x, y, floor }
    }

    #[test]
    fn facade_distance_geometry() {
        let b = Building::default();
        assert_eq!(b.facade_distance(pos(0.0, 20.0, 0)), 0.0);
        assert_eq!(b.facade_distance(pos(47.5, 20.0, 0)), 20.0);
        assert_eq!(b.facade_distance(pos(3.0, 20.0, 0)), 3.0);
    }

    #[test]
    fn center_distance_geometry() {
        let b = Building::default();
        // The core of the building (≥ depth/2 from every wall) is 0.
        assert!(b.center_distance(pos(47.5, 20.0, 0)) < 1e-9);
        // On a wall: maximal exposure.
        assert!((b.center_distance(pos(0.0, 20.0, 0)) - 20.0).abs() < 1e-9);
        assert!((b.center_distance(pos(47.5, 0.0, 0)) - 20.0).abs() < 1e-9);
        // Monotone in wall proximity.
        assert!(b.center_distance(pos(47.5, 5.0, 0)) > b.center_distance(pos(47.5, 15.0, 0)));
    }

    #[test]
    fn interior_warmer_than_facade_in_winter() {
        let f = field();
        let interior = f.temperature_true(pos(47.5, 20.0, 0));
        let edge = f.temperature_true(pos(0.5, 20.0, 0));
        assert!(interior > edge + 5.0, "interior {interior} edge {edge}");
    }

    #[test]
    fn humidity_higher_near_facade() {
        let f = field();
        let interior = f.humidity_true(pos(47.5, 20.0, 0));
        let edge = f.humidity_true(pos(0.5, 20.0, 0));
        assert!(edge > interior + 10.0);
    }

    #[test]
    fn nearby_sensors_read_similar_values() {
        let f = field();
        let a = f.temperature_true(pos(30.0, 15.0, 1));
        let b = f.temperature_true(pos(31.0, 15.5, 1));
        assert!((a - b).abs() < 0.5, "a {a} b {b}");
    }

    #[test]
    fn distant_sensors_differ_more_than_near_ones() {
        let f = field();
        let base = pos(47.5, 20.0, 0);
        let near = pos(45.0, 20.0, 0);
        let far = pos(1.0, 1.0, 0);
        let d_near = (f.temperature_true(base) - f.temperature_true(near)).abs();
        let d_far = (f.temperature_true(base) - f.temperature_true(far)).abs();
        assert!(d_far > d_near);
    }

    #[test]
    fn readings_reproducible_and_noisy() {
        let f = field();
        let p = pos(10.0, 10.0, 2);
        let r1 = f.temperature_reading(p, 7, 3);
        let r2 = f.temperature_reading(p, 7, 3);
        assert_eq!(r1, r2);
        let r3 = f.temperature_reading(p, 7, 4);
        assert_ne!(r1, r3);
        assert!((r1 - f.temperature_true(p)).abs() < 1.0);
    }

    #[test]
    fn floor_gradient_applied() {
        let f = field();
        let low = f.temperature_true(pos(47.5, 20.0, 0));
        let high = f.temperature_true(pos(47.5, 20.0, 3));
        // The gradient is 4.5 °C over three floors, well above the smooth
        // perturbation.
        assert!(high > low + 2.0);
    }

    #[test]
    fn sensor_placement_reproducible_in_bounds() {
        let b = Building::default();
        let s1 = b.place_sensors(36, 9);
        let s2 = b.place_sensors(36, 9);
        assert_eq!(s1.len(), 36);
        for (a, bb) in s1.iter().zip(&s2) {
            assert_eq!(a, bb);
        }
        for p in &s1 {
            assert!(p.x >= 0.0 && p.x <= b.width);
            assert!(p.y >= 0.0 && p.y <= b.depth);
            assert!(p.floor < b.floors);
        }
        // Floors covered.
        let floors: std::collections::HashSet<_> = s1.iter().map(|p| p.floor).collect();
        assert_eq!(floors.len(), 4);
    }
}
