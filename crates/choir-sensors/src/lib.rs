//! # choir-sensors — correlated sensor data for range-extension teams
//!
//! The substrate behind the paper's Sec. 7 / Figs. 10–11 experiments:
//!
//! * [`field`] — a synthetic spatially correlated temperature/humidity
//!   field over a 4-floor building (substituting for the paper's BME280
//!   deployment; the façade-gradient correlation structure is what the
//!   grouping comparison measures);
//! * [`grouping`] — random / by-floor / by-centre-distance team formation
//!   (Fig. 11(a));
//! * [`splice`] — MSB-first chunk splicing so that coding cannot destroy
//!   the overlap between co-located sensors' packets (Sec. 7.2);
//! * [`recover`] — coarse-view reconstruction and the normalised
//!   resolution-error metric (Fig. 10).

#![deny(missing_docs)]

pub mod field;
pub mod grouping;
pub mod recover;
pub mod splice;

pub use field::{Building, EnvField, Position};
pub use grouping::{make_groups, Strategy};
pub use recover::{mean_group_error, recover_group, GroupRecovery, Quantizer};
