//! MSB-first data splicing — Sec. 7.2, "Dealing with Collisions" point (2).
//!
//! Interleaving and coding would scramble two readings that differ in one
//! low-order bit into packets with few coded bits in common, destroying
//! the power-combining gain. Choir's fix: splice the sensed value into
//! small chunks of *consecutive* bits, most significant first, and send
//! each chunk as its own (tiny) packet. Co-located sensors then transmit
//! *identical* MSB chunk packets, which combine; low-order chunks differ
//! and are sacrificed at range.

/// Fixed-point quantisation of a physical reading into `bits` bits over
/// `[lo, hi]` (clamped).
pub fn quantize(value: f64, lo: f64, hi: f64, bits: u32) -> u32 {
    assert!(hi > lo, "quantize: empty range");
    assert!((1..=31).contains(&bits), "quantize: bits out of range");
    let levels = (1u64 << bits) as f64;
    let t = ((value - lo) / (hi - lo)).clamp(0.0, 1.0);
    ((t * (levels - 1.0)).round() as u32).min((1u32 << bits) - 1)
}

/// Inverse of [`quantize`] (cell midpoint reconstruction).
pub fn dequantize(code: u32, lo: f64, hi: f64, bits: u32) -> f64 {
    let levels = (1u64 << bits) as f64;
    lo + (code as f64 / (levels - 1.0)) * (hi - lo)
}

/// Splits a `bits`-wide code into MSB-first chunks of `chunk_bits` each
/// (the final chunk may be narrower).
pub fn splice(code: u32, bits: u32, chunk_bits: u32) -> Vec<u8> {
    assert!((1..=8).contains(&chunk_bits), "splice: chunk width");
    assert!((1..=31).contains(&bits));
    let mut out = Vec::new();
    let mut remaining = bits;
    while remaining > 0 {
        let w = remaining.min(chunk_bits);
        let shift = remaining - w;
        out.push(((code >> shift) & ((1u32 << w) - 1)) as u8);
        remaining -= w;
    }
    out
}

/// Reassembles a code from MSB-first chunks; missing (un-decoded) trailing
/// chunks are filled with the midpoint of their range, which minimises the
/// worst-case reconstruction error.
pub fn reassemble(chunks: &[Option<u8>], bits: u32, chunk_bits: u32) -> u32 {
    let mut code: u32 = 0;
    let mut remaining = bits;
    let mut idx = 0usize;
    let mut rest_filled = false;
    while remaining > 0 {
        let w = remaining.min(chunk_bits);
        let shift = remaining - w;
        let chunk = chunks.get(idx).copied().flatten();
        match chunk {
            Some(c) if !rest_filled => {
                code |= ((c as u32) & ((1u32 << w) - 1)) << shift;
            }
            _ => {
                // First missing chunk: fill the entire remaining tail with
                // its midpoint, then ignore later chunks (they cannot be
                // trusted without the ones above them).
                if !rest_filled && remaining >= 1 {
                    code |= 1u32 << (remaining - 1); // midpoint of the tail
                    rest_filled = true;
                }
            }
        }
        idx += 1;
        remaining -= w;
    }
    code
}

/// Number of leading MSB chunks on which *all* codes agree — the chunks a
/// co-located team transmits identically (and which therefore combine in
/// power at the base station).
pub fn common_chunks(codes: &[u32], bits: u32, chunk_bits: u32) -> usize {
    assert!(!codes.is_empty(), "common_chunks: no codes");
    let spliced: Vec<Vec<u8>> = codes.iter().map(|&c| splice(c, bits, chunk_bits)).collect();
    let nchunks = spliced[0].len();
    for k in 0..nchunks {
        let first = spliced[0][k];
        if spliced.iter().any(|s| s[k] != first) {
            return k;
        }
    }
    nchunks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantize_roundtrip_error_bounded() {
        let (lo, hi, bits) = (0.0, 40.0, 12);
        for i in 0..100 {
            let v = i as f64 * 0.4;
            let q = quantize(v, lo, hi, bits);
            let r = dequantize(q, lo, hi, bits);
            assert!(
                (v - r).abs() <= (hi - lo) / (1 << bits) as f64,
                "v={v} r={r}"
            );
        }
    }

    #[test]
    fn quantize_clamps() {
        assert_eq!(quantize(-5.0, 0.0, 10.0, 8), 0);
        assert_eq!(quantize(99.0, 0.0, 10.0, 8), 255);
    }

    #[test]
    fn splice_msb_first() {
        // 12-bit code 0xABC in 4-bit chunks → [0xA, 0xB, 0xC].
        assert_eq!(splice(0xABC, 12, 4), vec![0xA, 0xB, 0xC]);
        // Uneven tail: 10 bits in 4-bit chunks → widths 4,4,2.
        assert_eq!(splice(0b10_1101_0111, 10, 4), vec![0b1011, 0b0101, 0b11]);
    }

    #[test]
    fn reassemble_full() {
        let chunks = vec![Some(0xA), Some(0xB), Some(0xC)];
        assert_eq!(reassemble(&chunks, 12, 4), 0xABC);
    }

    #[test]
    fn reassemble_partial_fills_midpoint() {
        // Only the first chunk decoded: tail (8 bits) filled with midpoint
        // 0x80.
        let chunks = vec![Some(0xA), None, None];
        assert_eq!(reassemble(&chunks, 12, 4), 0xA80);
        // Later chunk present but an earlier one missing: ignored.
        let chunks2 = vec![Some(0xA), None, Some(0xC)];
        assert_eq!(reassemble(&chunks2, 12, 4), 0xA80);
        // Nothing decoded: global midpoint.
        assert_eq!(reassemble(&[None, None, None], 12, 4), 0x800);
    }

    #[test]
    fn reconstruction_error_halves_per_recovered_chunk() {
        let (lo, hi, bits, cb) = (0.0, 40.0, 12u32, 4u32);
        let v = 23.71;
        let q = quantize(v, lo, hi, bits);
        let full = splice(q, bits, cb);
        let mut worst_prev = f64::INFINITY;
        for k in 0..=full.len() {
            let chunks: Vec<Option<u8>> = (0..full.len())
                .map(|i| if i < k { Some(full[i]) } else { None })
                .collect();
            let rec = dequantize(reassemble(&chunks, bits, cb), lo, hi, bits);
            let worst = (hi - lo) / (1 << (k as u32 * cb)) as f64;
            assert!(
                (v - rec).abs() <= worst + 0.01,
                "k={k}: err {} bound {worst}",
                (v - rec).abs()
            );
            assert!(worst < worst_prev);
            worst_prev = worst;
        }
    }

    #[test]
    fn common_chunks_detects_agreement_depth() {
        // 20.0 °C vs 20.05 °C on [0,40]/12 bits: codes 0x800 and 0x805 —
        // two common nibbles. (Readings straddling a coarse quantisation
        // boundary can share no chunks at all; that cliff is inherent to
        // prefix splicing and the paper's scheme alike.)
        let (lo, hi, bits, cb) = (0.0, 40.0, 12, 4);
        let a = quantize(20.0, lo, hi, bits);
        let b = quantize(20.05, lo, hi, bits);
        let k = common_chunks(&[a, b], bits, cb);
        assert_eq!(k, 2, "k = {k}");
        // Identical values share everything.
        assert_eq!(common_chunks(&[a, a, a], bits, cb), 3);
        // Wildly different values share nothing.
        let c = quantize(39.0, lo, hi, bits);
        assert_eq!(common_chunks(&[a, c], bits, cb), 0);
    }

    #[test]
    fn closer_readings_share_more_chunks() {
        let (lo, hi, bits, cb) = (0.0, 40.0, 12, 2);
        let base = quantize(20.0, lo, hi, bits);
        let near = quantize(20.05, lo, hi, bits);
        let far = quantize(24.0, lo, hi, bits);
        assert!(common_chunks(&[base, near], bits, cb) >= common_chunks(&[base, far], bits, cb));
    }
}
