//! Sensor grouping strategies — Fig. 11(a).
//!
//! Which sensors should answer a beacon together? Team members transmit
//! identical MSB chunks only to the extent their *readings* agree, so the
//! grouping strategy directly sets the recovered resolution. The paper
//! compares three: random, by floor, and by distance from the floor
//! centre (the winner — distance to the façade is the dominant axis of
//! the temperature field).

use crate::field::{Building, Position};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Grouping strategy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Strategy {
    /// Uniformly random assignment.
    Random,
    /// Group sensors on the same floor together.
    ByFloor,
    /// Sort by distance from the floor centre and group neighbours in
    /// that ordering.
    ByCenterDistance,
}

impl Strategy {
    /// All strategies, in the order Fig. 11(a) plots them.
    pub const ALL: [Strategy; 3] = [
        Strategy::Random,
        Strategy::ByFloor,
        Strategy::ByCenterDistance,
    ];

    /// Human-readable label matching the figure.
    pub fn label(self) -> &'static str {
        match self {
            Strategy::Random => "Random",
            Strategy::ByFloor => "Floor",
            Strategy::ByCenterDistance => "Center Dist.",
        }
    }
}

/// Partitions sensor indices into groups of (up to) `group_size` following
/// the strategy. Every sensor lands in exactly one group.
pub fn make_groups(
    building: &Building,
    sensors: &[Position],
    strategy: Strategy,
    group_size: usize,
    seed: u64,
) -> Vec<Vec<usize>> {
    assert!(group_size >= 1, "group_size must be positive");
    let mut order: Vec<usize> = (0..sensors.len()).collect();
    match strategy {
        Strategy::Random => {
            let mut rng = StdRng::seed_from_u64(seed);
            order.shuffle(&mut rng);
        }
        Strategy::ByFloor => {
            // Stable by floor, then by x to keep same-floor neighbours
            // together inside the floor's groups.
            order.sort_by(|&a, &b| {
                sensors[a]
                    .floor
                    .cmp(&sensors[b].floor)
                    .then(sensors[a].x.total_cmp(&sensors[b].x))
            });
        }
        Strategy::ByCenterDistance => {
            order.sort_by(|&a, &b| {
                building
                    .center_distance(sensors[a])
                    .total_cmp(&building.center_distance(sensors[b]))
            });
        }
    }
    order.chunks(group_size).map(|c| c.to_vec()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::Building;

    fn setup() -> (Building, Vec<Position>) {
        let b = Building::default();
        let sensors = b.place_sensors(36, 1);
        (b, sensors)
    }

    #[test]
    fn every_sensor_in_exactly_one_group() {
        let (b, sensors) = setup();
        for strat in Strategy::ALL {
            let groups = make_groups(&b, &sensors, strat, 5, 2);
            let mut seen = vec![false; sensors.len()];
            for g in &groups {
                assert!(g.len() <= 5);
                for &i in g {
                    assert!(!seen[i], "{strat:?}: sensor {i} duplicated");
                    seen[i] = true;
                }
            }
            assert!(seen.iter().all(|&s| s), "{strat:?}: sensor missing");
        }
    }

    #[test]
    fn by_floor_groups_share_floor() {
        let (b, sensors) = setup();
        // 36 sensors, 4 floors → 9 per floor; group size 9 aligns exactly.
        let groups = make_groups(&b, &sensors, Strategy::ByFloor, 9, 0);
        for g in &groups {
            let f0 = sensors[g[0]].floor;
            assert!(g.iter().all(|&i| sensors[i].floor == f0));
        }
    }

    #[test]
    fn by_center_distance_is_sorted() {
        let (b, sensors) = setup();
        let groups = make_groups(&b, &sensors, Strategy::ByCenterDistance, 6, 0);
        let flat: Vec<usize> = groups.iter().flatten().copied().collect();
        for w in flat.windows(2) {
            assert!(b.center_distance(sensors[w[0]]) <= b.center_distance(sensors[w[1]]) + 1e-9);
        }
    }

    #[test]
    fn random_reproducible_and_seed_sensitive() {
        let (b, sensors) = setup();
        let g1 = make_groups(&b, &sensors, Strategy::Random, 5, 7);
        let g2 = make_groups(&b, &sensors, Strategy::Random, 5, 7);
        assert_eq!(g1, g2);
        let g3 = make_groups(&b, &sensors, Strategy::Random, 5, 8);
        assert_ne!(g1, g3);
    }
}
