//! Coarse-view reconstruction and resolution metrics — Figs. 10, 11(a).
//!
//! A team's transmission delivers the MSB chunks its members agree on
//! (those chunks' signals are identical and combine in power; disagreeing
//! chunks don't). The base station reconstructs each member's reading from
//! the recovered common prefix; the per-sensor error against ground truth
//! is the "resolution" the paper plots.

use crate::splice::{common_chunks, dequantize, quantize, reassemble, splice};

/// Quantisation geometry for one physical quantity.
#[derive(Clone, Copy, Debug)]
pub struct Quantizer {
    /// Lower bound of the representable range.
    pub lo: f64,
    /// Upper bound.
    pub hi: f64,
    /// Total bits.
    pub bits: u32,
    /// Bits per spliced chunk.
    pub chunk_bits: u32,
}

impl Quantizer {
    /// Temperature default: [−10, 40] °C, 12 bits, 2-bit chunks.
    /// Narrow chunks degrade gracefully: each recovered chunk quarters the
    /// uncertainty, and the first chunk's cells are wide enough that
    /// co-located sensors rarely straddle a boundary.
    pub fn temperature() -> Self {
        Quantizer {
            lo: -10.0,
            hi: 40.0,
            bits: 12,
            chunk_bits: 2,
        }
    }

    /// Humidity default: [0, 100] %, 12 bits, 2-bit chunks.
    pub fn humidity() -> Self {
        Quantizer {
            lo: 0.0,
            hi: 100.0,
            bits: 12,
            chunk_bits: 2,
        }
    }

    /// Number of chunks per reading.
    pub fn num_chunks(&self) -> usize {
        self.bits.div_ceil(self.chunk_bits) as usize
    }
}

/// Result of recovering one group's readings.
#[derive(Clone, Debug)]
pub struct GroupRecovery {
    /// Chunks recovered (common prefix length, possibly further limited by
    /// the channel).
    pub chunks_recovered: usize,
    /// Reconstructed physical value (identical for all members — the
    /// coarse view).
    pub reconstructed: f64,
    /// Mean absolute error across members, normalised by the quantiser
    /// range — the "normalized error / user" of Fig. 10.
    pub mean_normalized_error: f64,
}

/// Simulates recovery of a group's common data: the members' readings are
/// quantised and spliced; the recoverable chunks are the common prefix,
/// further capped by `channel_chunk_limit` (how many chunk packets the
/// link budget delivered — `usize::MAX` when the channel is not the
/// bottleneck).
pub fn recover_group(readings: &[f64], q: &Quantizer, channel_chunk_limit: usize) -> GroupRecovery {
    assert!(!readings.is_empty(), "recover_group: empty group");
    let codes: Vec<u32> = readings
        .iter()
        .map(|&r| quantize(r, q.lo, q.hi, q.bits))
        .collect();
    let agree = common_chunks(&codes, q.bits, q.chunk_bits);
    let recovered = agree.min(channel_chunk_limit);
    // The recovered prefix is shared by every member; take member 0's.
    let chunks_full = splice(codes[0], q.bits, q.chunk_bits);
    let chunks: Vec<Option<u8>> = (0..chunks_full.len())
        .map(|i| {
            if i < recovered {
                Some(chunks_full[i])
            } else {
                None
            }
        })
        .collect();
    let code = reassemble(&chunks, q.bits, q.chunk_bits);
    let reconstructed = dequantize(code, q.lo, q.hi, q.bits);
    let range = q.hi - q.lo;
    let mean_normalized_error = readings
        .iter()
        .map(|&r| (r - reconstructed).abs() / range)
        .sum::<f64>()
        / readings.len() as f64;
    GroupRecovery {
        chunks_recovered: recovered,
        reconstructed,
        mean_normalized_error,
    }
}

/// Mean normalised error over many groups (the Fig. 11(a) bar height for
/// one strategy).
pub fn mean_group_error(groups: &[Vec<f64>], q: &Quantizer, channel_chunk_limit: usize) -> f64 {
    assert!(!groups.is_empty());
    groups
        .iter()
        .map(|g| recover_group(g, q, channel_chunk_limit).mean_normalized_error)
        .sum::<f64>()
        / groups.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_readings_full_resolution() {
        let q = Quantizer::temperature();
        let r = recover_group(&[21.5, 21.5, 21.5], &q, usize::MAX);
        assert_eq!(r.chunks_recovered, q.num_chunks());
        assert!((r.reconstructed - 21.5).abs() < 0.02);
        assert!(r.mean_normalized_error < 0.001);
    }

    #[test]
    fn tight_group_low_error() {
        let q = Quantizer::temperature();
        let r = recover_group(&[21.4, 21.5, 21.6], &q, usize::MAX);
        assert!(
            r.mean_normalized_error < 0.05,
            "err {}",
            r.mean_normalized_error
        );
    }

    #[test]
    fn loose_group_higher_error() {
        let q = Quantizer::temperature();
        let tight = recover_group(&[21.4, 21.5, 21.6], &q, usize::MAX);
        let loose = recover_group(&[12.0, 21.5, 31.0], &q, usize::MAX);
        assert!(loose.mean_normalized_error > tight.mean_normalized_error);
    }

    #[test]
    fn channel_limit_caps_resolution() {
        let q = Quantizer::temperature();
        let full = recover_group(&[21.5, 21.5], &q, usize::MAX);
        let capped = recover_group(&[21.5, 21.5], &q, 1);
        assert_eq!(capped.chunks_recovered, 1);
        assert!(capped.mean_normalized_error > full.mean_normalized_error);
        // One 2-bit chunk over the range: worst error ≈ range/4/2.
        assert!(capped.mean_normalized_error < (1.0 / 8.0) + 0.01);
    }

    #[test]
    fn error_bounded_by_recovered_chunks() {
        // Instance error is not strictly monotone (a lucky midpoint fill
        // can beat a longer prefix), but the worst-case bound halves with
        // every recovered chunk — assert that bound.
        let q = Quantizer::temperature();
        for limit in 0..=6u32 {
            let r = recover_group(&[23.7, 23.7], &q, limit as usize);
            let bound = 0.5 / (1u64 << (limit * q.chunk_bits)) as f64 + 1e-6;
            assert!(
                r.mean_normalized_error <= bound,
                "limit {limit}: {} > {bound}",
                r.mean_normalized_error
            );
        }
        // Full recovery is quantisation-limited.
        let full = recover_group(&[23.7, 23.7], &q, usize::MAX);
        assert!(full.mean_normalized_error < 1.0 / (1 << q.bits) as f64 + 1e-9);
    }

    #[test]
    fn mean_group_error_averages() {
        let q = Quantizer::temperature();
        let groups = vec![vec![20.0, 20.0], vec![10.0, 30.0]];
        let m = mean_group_error(&groups, &q, usize::MAX);
        let a = recover_group(&groups[0], &q, usize::MAX).mean_normalized_error;
        let b = recover_group(&groups[1], &q, usize::MAX).mean_normalized_error;
        assert!((m - (a + b) / 2.0).abs() < 1e-12);
    }
}
