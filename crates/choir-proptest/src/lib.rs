//! # choir-proptest — vendored property-testing shim for offline builds
//!
//! The Choir workspace must build and test with **zero crates.io
//! dependencies**. This crate re-implements the slice of the
//! [`proptest`](https://crates.io/crates/proptest) API that the workspace's
//! property tests use — the `proptest!` macro, `prop_assert!`-family macros,
//! the [`Strategy`] trait with `prop_map`, `any::<T>()`,
//! `prop::collection::vec` and `prop::sample::select` — so the test files
//! keep compiling unchanged via a renamed path dependency
//! (`proptest = { package = "choir-proptest", ... }`).
//!
//! Differences from upstream proptest, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports its case index; reproduction
//!   relies on the generator being deterministic per test name.
//! * **Uniform generation only.** No recursive strategies, filters or
//!   regex strategies — the workspace does not use them.
//!
//! ```
//! use choir_proptest::prelude::*;
//!
//! proptest! {
//!     #![proptest_config(ProptestConfig::with_cases(16))]
//!     #[test]
//!     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
//!         prop_assert_eq!(a + b, b + a);
//!     }
//! }
//! # fn main() {}
//! ```

#![deny(missing_docs)]
// The crate doctest demonstrates the `proptest!` macro, whose grammar
// requires `#[test]` on each property — the attribute is API surface, not
// an unexecuted unit test.
#![allow(clippy::test_attr_in_doctest)]

use rand::rngs::StdRng;
use rand::{RngCore, SampleRange, SeedableRng, StandardSample};

/// Runner configuration, mirroring `proptest::test_runner::Config`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each property is checked against.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Builds the deterministic RNG for one property, seeded from the test
/// name so every `cargo test` run replays the identical case sequence.
pub fn test_rng(test_name: &str) -> StdRng {
    // FNV-1a over the name: stable across runs, platforms and toolchains.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(h)
}

/// A generator of random values, mirroring `proptest::strategy::Strategy`
/// (generation only — no shrink tree).
pub trait Strategy {
    /// Type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Transforms produced values with `f`, mirroring `prop_map`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Ranges are strategies drawing uniformly from themselves
/// (e.g. `-1.0f64..1.0`, `0u16..128`, `7usize..=12`).
macro_rules! impl_range_strategy {
    ($($t:ty),*) => {
        $(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    self.clone().sample_from(rng)
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    self.clone().sample_from(rng)
                }
            }
        )*
    };
}

impl_range_strategy!(f64, u8, u16, u32, u64, usize);

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn sample(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(core::marker::PhantomData<T>);

/// Uniform strategy over the whole domain of `T`, mirroring
/// `proptest::prelude::any`.
pub fn any<T: StandardSample>() -> Any<T> {
    Any(core::marker::PhantomData)
}

impl<T: StandardSample> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        T::sample_standard(rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {
        $(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*
    };
}

impl_tuple_strategy! {
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{RngCore, StdRng, Strategy};

    /// Strategy returned by [`fn@vec`].
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    /// `Vec` strategy with element strategy `element` and a length drawn
    /// uniformly from `len`, mirroring `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        assert!(!len.is_empty(), "collection::vec: empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + (rng.next_u64() % span) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Value-picking strategies, mirroring `proptest::sample`.
pub mod sample {
    use super::{RngCore, StdRng, Strategy};

    /// Strategy returned by [`select`].
    pub struct Select<T> {
        options: Vec<T>,
    }

    /// Uniform choice among `options`, mirroring `proptest::sample::select`.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "sample::select: no options");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            let i = (rng.next_u64() % self.options.len() as u64) as usize;
            self.options[i].clone()
        }
    }
}

/// Umbrella module so `prop::collection::vec` / `prop::sample::select`
/// spellings from upstream proptest keep working.
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}

/// Seeded fuzzing: many independently-seeded cases per test, with failing
/// seeds printed in a directly reproducible `CHOIR_FUZZ_SEED=…` form.
///
/// Unlike the [`proptest!`] runner — one RNG threaded through every case,
/// so case `k` depends on cases `0..k` — each fuzz case here derives its
/// own 64-bit seed. A failure therefore reproduces *alone*: re-run the
/// test with `CHOIR_FUZZ_SEED=<printed value>` and only the failing case
/// executes.
pub mod fuzz {
    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    /// Environment variable that replays a single fuzz case by seed.
    /// Accepts decimal or `0x`-prefixed hex.
    pub const SEED_ENV: &str = "CHOIR_FUZZ_SEED";

    /// Parses a seed in either spelling [`SEED_ENV`] accepts
    /// (`0x`-prefixed hex or decimal).
    pub fn parse_seed(raw: &str) -> Option<u64> {
        let raw = raw.trim();
        match raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
            Some(hex) => u64::from_str_radix(hex, 16).ok(),
            None => raw.parse().ok(),
        }
    }

    /// The seed requested via [`SEED_ENV`], if any.
    pub fn seed_from_env() -> Option<u64> {
        let raw = std::env::var(SEED_ENV).ok()?;
        let seed = parse_seed(&raw);
        if seed.is_none() && !raw.trim().is_empty() {
            eprintln!("fuzz: ignoring unparsable {SEED_ENV}={raw:?}");
        }
        seed
    }

    /// Runs `cases` fuzz cases of `body(seed, rng)`, where `rng` is a
    /// fresh `StdRng` seeded with the case's own `seed`. The case seeds
    /// derive deterministically from `name` (same FNV scheme as
    /// [`crate::test_rng`]), so every `cargo test` run replays the same
    /// sequence. When a case panics, the runner prints
    /// `CHOIR_FUZZ_SEED=0x…` and re-raises; when [`SEED_ENV`] is set, only
    /// that case runs.
    pub fn run_cases<F>(name: &str, cases: u32, body: F)
    where
        F: Fn(u64, &mut StdRng),
    {
        if let Some(seed) = seed_from_env() {
            eprintln!("fuzz {name}: replaying single case {SEED_ENV}=0x{seed:016x}");
            let mut rng = StdRng::seed_from_u64(seed);
            body(seed, &mut rng);
            return;
        }
        let mut seeder = crate::test_rng(name);
        for case in 0..cases {
            let seed = seeder.next_u64();
            let mut rng = StdRng::seed_from_u64(seed);
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                body(seed, &mut rng);
            }));
            if let Err(payload) = outcome {
                eprintln!(
                    "fuzz {name}: case {case}/{cases} failed — reproduce with \
                     {SEED_ENV}=0x{seed:016x} cargo test {name}"
                );
                std::panic::resume_unwind(payload);
            }
        }
    }
}

/// Everything a property-test file needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{any, prop, prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

/// Asserts a condition inside a `proptest!` body. Panics (with optional
/// formatted message) — the runner reports the failing case index.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Defines property tests, mirroring `proptest::proptest!`.
///
/// Supports the subset used in this workspace: an optional leading
/// `#![proptest_config(...)]` attribute, then `#[test]` functions whose
/// parameters are `name in strategy` pairs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    ($cfg:expr; $(
        #[test]
        fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )*) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::test_rng(stringify!($name));
                $(let $arg = &($strat);)*
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::sample($arg, &mut rng);)*
                    let outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| $body),
                    );
                    if let ::std::result::Result::Err(payload) = outcome {
                        eprintln!(
                            "proptest {}: failed at case {}/{} (deterministic; re-run reproduces)",
                            stringify!($name), case, config.cases,
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in -2.5f64..2.5, n in 1usize..10) {
            prop_assert!((-2.5..2.5).contains(&x));
            prop_assert!((1..10).contains(&n));
        }

        #[test]
        fn vec_and_map_compose(
            v in prop::collection::vec((0.0f64..1.0, 0.0f64..1.0), 1..20)
                .prop_map(|pairs| pairs.into_iter().map(|(a, b)| a + b).collect::<Vec<f64>>()),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            for s in &v {
                prop_assert!((0.0..2.0).contains(s));
            }
        }

        #[test]
        fn select_picks_member(x in prop::sample::select(vec![3u32, 5, 7])) {
            prop_assert!(x == 3 || x == 5 || x == 7);
        }

        #[test]
        fn any_bool_and_ints(b in any::<bool>(), s in any::<u64>()) {
            // Type-checks that `any` produces the requested types.
            let _: bool = b;
            let _: u64 = s;
        }
    }

    #[test]
    fn same_name_same_stream() {
        let mut a = crate::test_rng("stable");
        let mut b = crate::test_rng("stable");
        use rand::RngCore;
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn fuzz_cases_deterministic_with_distinct_seeds() {
        use rand::RngCore;
        use std::sync::Mutex;
        let run = || {
            let seen: Mutex<Vec<(u64, u64)>> = Mutex::new(Vec::new());
            crate::fuzz::run_cases("fuzz_determinism_probe", 8, |seed, rng| {
                seen.lock().unwrap().push((seed, rng.next_u64()));
            });
            seen.into_inner().unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "case sequence must replay identically");
        assert_eq!(a.len(), 8);
        let mut seeds: Vec<u64> = a.iter().map(|&(s, _)| s).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 8, "per-case seeds must be distinct");
    }

    #[test]
    fn fuzz_seed_parsing() {
        use crate::fuzz::parse_seed;
        assert_eq!(parse_seed("0x10"), Some(16));
        assert_eq!(parse_seed("0X0000000000000010"), Some(16));
        assert_eq!(parse_seed(" 42 "), Some(42));
        assert_eq!(
            parse_seed("0xdeadbeefdeadbeef"),
            Some(0xdead_beef_dead_beef)
        );
        assert_eq!(parse_seed("nonsense"), None);
        assert_eq!(parse_seed(""), None);
    }
}
