//! Closed-form slot-outcome bookkeeping — the cheap tier of the city
//! simulator's two-tier PHY.
//!
//! Every decision here is **integer arithmetic over quarter-dB units**:
//! no transcendental ever touches an outcome-deciding path, so the
//! delivered-frame transcript (and its FNV digest) is bit-identical
//! across platforms, thread counts and shard groupings. The expensive
//! tier — real IQ synthesis through `choir-core` — lives in
//! [`crate::gateway`] behind a per-gateway escalation budget.
//!
//! The capture/decode rules are deliberately simple, calibrated against
//! the same fidelity ladder `choir-mac` established (collision-fatal →
//! tabulated → IQ): slotted ALOHA resolves by strongest-signal capture,
//! Choir decodes bounded-order collisions with a per-order SNR penalty
//! (the joint-decoding degradation the paper's Fig. 8 measures), and the
//! SS5G-style scheme resolves small collisions losslessly by slot-shift
//! combining (El Rachkidy et al.) at the cost of busy resolution slots.
//! A CoRa-style detection gate (Álamos et al.) runs first: slots whose
//! strongest component is undetectable are rejected before any decode
//! bookkeeping is paid.

use lora_phy::params::PhyParams;

/// Quarter-dB units per dB.
pub const QDB_PER_DB: i32 = 4;

/// The MAC scheme a city run simulates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scheme {
    /// Unslotted ALOHA: a frame survives only if no other transmission
    /// overlaps it — same slot *or* either adjacent slot (the classic
    /// 2·T vulnerability window, slot-quantised).
    Aloha,
    /// Slotted ALOHA with strongest-signal capture.
    Slotted,
    /// Choir: beacon-slot collisions decoded up to
    /// [`CityModel::choir_max_order`] concurrent users, with beacon
    /// teams boosting beyond-range clients.
    Choir,
    /// SS5G-style collision resolution: collisions up to
    /// [`CityModel::ss5g_max_resolve`] users are disentangled by
    /// slot-shift combining, occupying the channel for extra resolution
    /// slots.
    Ss5g,
}

impl Scheme {
    /// All four schemes, in reporting order.
    pub const ALL: [Scheme; 4] = [Scheme::Aloha, Scheme::Slotted, Scheme::Choir, Scheme::Ss5g];

    /// Stable snake_case tag (matches the trace vocabulary).
    pub fn tag(self) -> &'static str {
        self.trace().tag()
    }

    /// The closed trace-vocabulary tag for this scheme.
    pub fn trace(self) -> choir_trace::CityScheme {
        match self {
            Scheme::Aloha => choir_trace::CityScheme::Aloha,
            Scheme::Slotted => choir_trace::CityScheme::Slotted,
            Scheme::Choir => choir_trace::CityScheme::Choir,
            Scheme::Ss5g => choir_trace::CityScheme::Ss5g,
        }
    }

    /// Whether clients listen to a coordination beacon before
    /// transmitting (charges listen energy; unslotted ALOHA does not).
    pub fn coordinated(self) -> bool {
        !matches!(self, Scheme::Aloha)
    }
}

/// Integer decision thresholds for the closed-form tier.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CityModel {
    /// Single-user demodulation floor (quarter-dB) — from
    /// `SpreadingFactor::demod_floor_db`.
    pub floor_qdb: i16,
    /// Capture margin: in a slotted-ALOHA collision the strongest frame
    /// survives if it clears the second-strongest by this much.
    pub capture_qdb: i16,
    /// Choir joint-decoding penalty per collision-order doubling: a user
    /// in an order-`k` collision needs `floor + penalty·⌈log2 k⌉`.
    pub choir_penalty_qdb: i16,
    /// Largest collision order Choir disentangles.
    pub choir_max_order: u32,
    /// Largest collision order the SS5G-style resolver disentangles.
    pub ss5g_max_resolve: u32,
    /// CoRa-style detection margin: a slot is detectable while its
    /// strongest component is above `floor − detect_margin`.
    pub detect_margin_qdb: i16,
}

impl CityModel {
    /// Thresholds derived from the PHY parameters: the demod floor comes
    /// from the spreading factor; the margins are the workspace's
    /// calibrated defaults (6 dB capture, 2 dB per-order Choir penalty,
    /// 2 dB detection margin).
    pub fn from_params(params: &PhyParams) -> Self {
        let floor_db = params.sf.demod_floor_db();
        CityModel {
            floor_qdb: quantize_qdb(floor_db),
            capture_qdb: (6 * QDB_PER_DB) as i16,
            choir_penalty_qdb: (2 * QDB_PER_DB) as i16,
            choir_max_order: 16,
            ss5g_max_resolve: 3,
            detect_margin_qdb: (2 * QDB_PER_DB) as i16,
        }
    }

    /// The Choir per-user floor for an order-`order` collision.
    pub fn choir_floor_qdb(&self, order: u32) -> i16 {
        let steps = ceil_log2(order.max(1)) as i32;
        let f = i32::from(self.floor_qdb) + i32::from(self.choir_penalty_qdb) * steps;
        f.clamp(i32::from(i16::MIN), i32::from(i16::MAX)) as i16
    }
}

/// ⌈log2 k⌉ for k ≥ 1 (0 for k = 1).
pub fn ceil_log2(k: u32) -> u32 {
    32 - k.max(1).saturating_sub(1).leading_zeros()
}

/// Quantises a dB value to quarter-dB integer units (round-to-nearest).
pub fn quantize_qdb(db: f64) -> i16 {
    let q = (db * QDB_PER_DB as f64).round();
    q.clamp(f64::from(i16::MIN), f64::from(i16::MAX)) as i16
}

/// Back-conversion for the IQ escalation tier and reporting.
pub fn qdb_to_db(qdb: i16) -> f64 {
    f64::from(qdb) / QDB_PER_DB as f64
}

// hot:noalloc — per-active-slot decision kernel; scratch reused by caller
/// Resolves one slot's transmissions closed-form, writing one verdict
/// per transmission into `ok` (cleared first, capacity reused).
/// `adjacent` is the number of transmissions in the two adjacent slots
/// (unslotted ALOHA's extra vulnerability window; 0 for slotted
/// schemes).
pub fn resolve_closed_form(
    model: &CityModel,
    scheme: Scheme,
    snrs_qdb: &[i16],
    adjacent: u32,
    ok: &mut Vec<bool>,
) {
    ok.clear();
    let n = snrs_qdb.len();
    if n == 0 {
        return;
    }
    // CoRa-style detection gate: if even the strongest component is
    // undetectable, the gateway never attempts a decode.
    let mut strongest = i16::MIN;
    let mut second = i16::MIN;
    for &s in snrs_qdb {
        if s > strongest {
            second = strongest;
            strongest = s;
        } else if s > second {
            second = s;
        }
    }
    if strongest < model.floor_qdb.saturating_sub(model.detect_margin_qdb) {
        for _ in 0..n {
            ok.push(false);
        }
        return;
    }
    match scheme {
        Scheme::Aloha => {
            let solo = n == 1 && adjacent == 0;
            for &s in snrs_qdb {
                ok.push(solo && s >= model.floor_qdb);
            }
        }
        Scheme::Slotted => {
            // Strongest-signal capture: the strongest frame survives a
            // collision when it clears the runner-up by the capture
            // margin. Equal-strength leaders jam each other.
            let captured = n == 1 || strongest >= second.saturating_add(model.capture_qdb);
            let mut winner_taken = false;
            for &s in snrs_qdb {
                let win = captured && !winner_taken && s == strongest && s >= model.floor_qdb;
                if win {
                    winner_taken = true;
                }
                ok.push(win);
            }
        }
        Scheme::Choir => {
            let order = n as u32;
            if order > model.choir_max_order {
                for _ in 0..n {
                    ok.push(false);
                }
            } else {
                let floor = model.choir_floor_qdb(order);
                for &s in snrs_qdb {
                    ok.push(s >= floor);
                }
            }
        }
        Scheme::Ss5g => {
            // Slot-shift resolution disentangles small collisions
            // losslessly; larger pile-ups are unrecoverable. The
            // channel-time cost (busy resolution slots) is charged by
            // the gateway loop, not here.
            let resolvable = (n as u32) <= model.ss5g_max_resolve;
            for &s in snrs_qdb {
                ok.push(resolvable && s >= model.floor_qdb);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CityModel {
        CityModel::from_params(&PhyParams::default())
    }

    #[test]
    fn ceil_log2_table() {
        let want = [
            (1, 0),
            (2, 1),
            (3, 2),
            (4, 2),
            (5, 3),
            (8, 3),
            (9, 4),
            (16, 4),
        ];
        for (k, e) in want {
            assert_eq!(ceil_log2(k), e, "k={k}");
        }
    }

    #[test]
    fn floor_tracks_spreading_factor() {
        let m = model();
        // SF8 floor is −10 dB → −40 quarter-dB.
        assert_eq!(m.floor_qdb, -40);
        assert_eq!(m.choir_floor_qdb(1), -40);
        assert_eq!(m.choir_floor_qdb(4), -40 + 2 * 8);
    }

    #[test]
    fn aloha_needs_an_empty_neighbourhood() {
        let m = model();
        let mut ok = Vec::new();
        resolve_closed_form(&m, Scheme::Aloha, &[0], 0, &mut ok);
        assert_eq!(ok, [true]);
        resolve_closed_form(&m, Scheme::Aloha, &[0], 1, &mut ok);
        assert_eq!(ok, [false], "adjacent-slot overlap is fatal");
        resolve_closed_form(&m, Scheme::Aloha, &[0, 0], 0, &mut ok);
        assert_eq!(ok, [false, false]);
    }

    #[test]
    fn slotted_capture_picks_one_strong_winner() {
        let m = model();
        let mut ok = Vec::new();
        // 10 dB over the runner-up: captured.
        resolve_closed_form(&m, Scheme::Slotted, &[40, 0], 0, &mut ok);
        assert_eq!(ok, [true, false]);
        // 4 dB gap < 6 dB capture margin: both lost.
        resolve_closed_form(&m, Scheme::Slotted, &[16, 0], 0, &mut ok);
        assert_eq!(ok, [false, false]);
        // Equal leaders jam each other even far above the floor.
        resolve_closed_form(&m, Scheme::Slotted, &[40, 40], 0, &mut ok);
        assert_eq!(ok, [false, false]);
    }

    #[test]
    fn choir_decodes_bounded_orders_with_penalty() {
        let m = model();
        let mut ok = Vec::new();
        // Order 4 needs floor + 4 dB = −6 dB = −24 qdb.
        resolve_closed_form(&m, Scheme::Choir, &[-23, -25, 0, 0], 0, &mut ok);
        assert_eq!(ok, [true, false, true, true]);
        // Order 17 is beyond the decoder.
        let snrs = [40i16; 17];
        resolve_closed_form(&m, Scheme::Choir, &snrs, 0, &mut ok);
        assert!(ok.iter().all(|&b| !b));
    }

    #[test]
    fn ss5g_resolves_small_collisions_only() {
        let m = model();
        let mut ok = Vec::new();
        resolve_closed_form(&m, Scheme::Ss5g, &[0, 0, 0], 0, &mut ok);
        assert_eq!(ok, [true, true, true]);
        resolve_closed_form(&m, Scheme::Ss5g, &[0, 0, 0, 0], 0, &mut ok);
        assert_eq!(ok, [false, false, false, false]);
    }

    #[test]
    fn detection_gate_rejects_undetectable_slots() {
        let m = model();
        let mut ok = Vec::new();
        // Strongest at floor − 3 dB, below the 2 dB detection margin.
        resolve_closed_form(&m, Scheme::Choir, &[-52, -60], 0, &mut ok);
        assert_eq!(ok, [false, false]);
    }

    #[test]
    fn scheme_tags_match_trace_vocabulary() {
        assert_eq!(Scheme::Aloha.tag(), "aloha");
        assert_eq!(Scheme::Ss5g.tag(), "ss5g");
        assert!(!Scheme::Aloha.coordinated());
        assert!(Scheme::Choir.coordinated());
    }
}
