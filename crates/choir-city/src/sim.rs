//! City-level orchestration: shard the gateway set over a
//! `choir_pool::ThreadPool`, run every gateway independently, and merge
//! the tallies + transcript digest **in gateway order** so the result is
//! bit-identical for any shard count and any worker count.

use choir_pool::ThreadPool;
use lora_phy::params::PhyParams;

use crate::client::ClientCfg;
use crate::gateway::{fnv1a, run_gateway, GatewayStats, FNV_OFFSET};
use crate::model::{CityModel, Scheme};

/// Radio power draw while transmitting, watts (25 mA at ~1 V-class LoRa
/// transmit budget — the knob only scales reported energy, never
/// outcomes).
const TX_POWER_W: f64 = 0.025;

/// Radio power draw while listening for the coordination beacon, watts.
const LISTEN_POWER_W: f64 = 0.010;

/// Everything a city run needs. `Clone` + cheap; shared read-only across
/// shard workers.
#[derive(Clone, Copy, Debug)]
pub struct CityConfig {
    /// Master seed; each gateway derives its own stream from
    /// `(seed, gateway, scheme)`.
    pub seed: u64,
    /// Number of gateways.
    pub gateways: u32,
    /// Clients homed on each gateway.
    pub clients_per_gw: u32,
    /// Simulation horizon in slots.
    pub slots: u32,
    /// Per-client behaviour (reporting period, duty gap, backoff).
    pub client: ClientCfg,
    /// Closed-form decision thresholds.
    pub model: CityModel,
    /// PHY parameters (airtime, and the IQ escalation tier).
    pub params: PhyParams,
    /// Uniform client SNR range, quarter-dB (inclusive).
    pub snr_range_qdb: (i16, i16),
    /// Payload bytes per frame (airtime + IQ synthesis length).
    pub payload_len: usize,
    /// Per-gateway budget of collision slots escalated to the real IQ
    /// decode path (0 = pure closed-form; keep 0 at city scale).
    pub iq_slots_per_gw: u32,
    /// Largest collision order worth escalating (IQ synthesis cost grows
    /// with order; beyond this the closed-form verdict stands).
    pub iq_max_order: u32,
    /// Seconds of beacon listening charged per coordinated transmission.
    pub beacon_overhead_s: f64,
    /// Shards the gateway set is split into (work units; results are
    /// shard-count invariant).
    pub shards: u32,
}

impl CityConfig {
    /// A small, fast default: SF8 PHY, 8-byte payloads, pure closed-form.
    pub fn new(seed: u64, gateways: u32, clients_per_gw: u32, slots: u32) -> Self {
        let params = PhyParams::default();
        CityConfig {
            seed,
            gateways,
            clients_per_gw,
            slots,
            client: ClientCfg::default(),
            model: CityModel::from_params(&params),
            params,
            snr_range_qdb: (-56, 40), // −14 dB … +10 dB around the SF8 floor
            payload_len: 8,
            iq_slots_per_gw: 0,
            iq_max_order: 3,
            beacon_overhead_s: 0.010,
            shards: 8,
        }
    }

    /// Frame airtime, seconds.
    pub fn airtime_s(&self) -> f64 {
        self.params.time_on_air(self.payload_len)
    }

    /// Wall-clock seconds one slot occupies under `scheme` (coordinated
    /// schemes pay the beacon overhead on top of the airtime).
    pub fn slot_s(&self, scheme: Scheme) -> f64 {
        if scheme.coordinated() {
            self.airtime_s() + self.beacon_overhead_s
        } else {
            self.airtime_s()
        }
    }

    /// Energy of one transmission, nanojoules (integer — ledgers and
    /// totals stay exact).
    pub fn tx_nj(&self) -> u64 {
        (self.airtime_s() * TX_POWER_W * 1e9).round() as u64
    }

    /// Energy of one beacon listen, nanojoules.
    pub fn listen_nj(&self) -> u64 {
        (self.beacon_overhead_s * LISTEN_POWER_W * 1e9).round() as u64
    }
}

/// City-wide result: summed tallies plus the order-merged transcript
/// digest.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CityStats {
    /// Summed per-gateway tallies (digest field unused; see `digest`).
    pub totals: GatewayStats,
    /// City transcript digest: per-gateway digests folded in gateway
    /// order — invariant to sharding and threading by construction.
    pub digest: u64,
    /// Delivered frames per second of simulated wall-clock.
    pub delivered_fps: f64,
    /// Average energy per *delivered* frame, microjoules.
    pub energy_uj_per_delivered: f64,
    /// Fraction of offered frames delivered.
    pub delivery_ratio: f64,
}

/// Runs the whole city under `scheme` on `pool`.
///
/// Gateways are split into `cfg.shards` contiguous ranges; each range is
/// one work item for the pool. Because every gateway is seeded
/// independently and the pool's `map` is order-preserving, the merged
/// result is bit-identical for any `(shards, threads)` combination —
/// the golden and property tests pin exactly that.
pub fn run_city(cfg: &CityConfig, scheme: Scheme, pool: &ThreadPool) -> CityStats {
    let shards = cfg.shards.clamp(1, cfg.gateways.max(1));
    // Contiguous ranges, remainder spread over the first shards.
    let base = cfg.gateways / shards;
    let extra = cfg.gateways % shards;
    let mut ranges: Vec<(u32, u32)> = Vec::with_capacity(shards as usize);
    let mut start = 0u32;
    for s in 0..shards {
        let len = base + u32::from(s < extra);
        ranges.push((start, start + len));
        start += len;
    }
    let per_shard: Vec<Vec<GatewayStats>> = pool.map(&ranges, |_, &(lo, hi)| {
        (lo..hi).map(|gw| run_gateway(cfg, scheme, gw)).collect()
    });

    let mut totals = GatewayStats::default();
    let mut digest = FNV_OFFSET;
    for stats in per_shard.iter().flatten() {
        totals.absorb(stats);
        digest = fnv1a(digest, stats.digest);
    }
    let sim_s = f64::from(cfg.slots) * cfg.slot_s(scheme);
    let delivered = totals.delivered;
    CityStats {
        totals,
        digest,
        delivered_fps: if sim_s > 0.0 {
            delivered as f64 / sim_s
        } else {
            0.0
        },
        energy_uj_per_delivered: if delivered > 0 {
            totals.energy_nj as f64 / 1e3 / delivered as f64
        } else {
            f64::INFINITY
        },
        delivery_ratio: if totals.offered > 0 {
            delivered as f64 / totals.offered as f64
        } else {
            0.0
        },
    }
}

/// [`run_city`] on the process-global pool (`CHOIR_THREADS`-sized).
pub fn run_city_global(cfg: &CityConfig, scheme: Scheme) -> CityStats {
    run_city(cfg, scheme, choir_pool::global())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CityConfig {
        let mut cfg = CityConfig::new(7, 4, 40, 400);
        cfg.client.period_slots = 80;
        cfg
    }

    #[test]
    fn schemes_produce_traffic_and_deliveries() {
        let pool = ThreadPool::with_threads(2);
        for scheme in Scheme::ALL {
            let st = run_city(&small(), scheme, &pool);
            assert!(st.totals.offered > 0, "{scheme:?} offered nothing");
            assert!(
                st.totals.delivered > 0,
                "{scheme:?} delivered nothing at light load"
            );
            assert!(st.totals.delivered <= st.totals.transmissions);
            assert!(st.totals.energy_nj > 0);
        }
    }

    #[test]
    fn digest_is_shard_and_thread_invariant() {
        let cfg = small();
        let seq = ThreadPool::with_threads(1);
        let par = ThreadPool::with_threads(4);
        for scheme in Scheme::ALL {
            let a = run_city(&cfg, scheme, &seq);
            let b = run_city(&cfg, scheme, &par);
            assert_eq!(a.digest, b.digest, "{scheme:?} diverged across threads");
            assert_eq!(a.totals, b.totals);
            let mut one_shard = cfg;
            one_shard.shards = 1;
            let c = run_city(&one_shard, scheme, &par);
            assert_eq!(a.digest, c.digest, "{scheme:?} diverged across shards");
        }
    }

    #[test]
    fn iq_escalation_spends_budget_only_for_choir() {
        let mut cfg = CityConfig::new(11, 1, 24, 160);
        cfg.client.period_slots = 20; // collide often
        cfg.iq_slots_per_gw = 3;
        let pool = ThreadPool::with_threads(1);
        let choir = run_city(&cfg, Scheme::Choir, &pool);
        assert!(choir.totals.iq_slots > 0, "no slot escalated");
        assert!(choir.totals.iq_slots <= 3, "budget exceeded");
        let slotted = run_city(&cfg, Scheme::Slotted, &pool);
        assert_eq!(slotted.totals.iq_slots, 0);
    }

    #[test]
    fn energy_model_is_integral_and_positive() {
        let cfg = small();
        assert!(cfg.tx_nj() > 0);
        assert!(cfg.listen_nj() > 0);
        assert!(cfg.slot_s(Scheme::Choir) > cfg.slot_s(Scheme::Aloha));
    }
}
