//! One gateway's event-driven simulation: the slot calendar, the
//! two-tier slot resolution (closed-form bookkeeping, optional IQ
//! escalation through `choir-mac`'s `IqChoirPhy`), energy charging and
//! the delivered-frame transcript digest.
//!
//! A gateway is the unit of determinism: its RNG is seeded from
//! `(city seed, gateway index, scheme)` and nothing it does depends on
//! which shard or worker thread ran it — that is what makes the merged
//! city transcript bit-identical across thread counts and shard
//! groupings.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use choir_mac::{IqChoirPhy, SlotPhy, SlotTx};
use choir_trace::TraceEvent;

use crate::client::{Client, Outcome};
use crate::model::{self, qdb_to_db, Scheme};
use crate::sim::CityConfig;

/// FNV-1a 64-bit fold — the transcript digest primitive.
pub fn fnv1a(h: u64, v: u64) -> u64 {
    (h ^ v).wrapping_mul(0x0100_0000_01b3)
}

/// The FNV-1a offset basis (digest seed).
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// Per-gateway tallies and the gateway's transcript digest.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GatewayStats {
    /// Frames that made at least one transmission attempt.
    pub offered: u64,
    /// Frames decoded and delivered.
    pub delivered: u64,
    /// Frames dropped after exhausting their retry budget.
    pub lost: u64,
    /// Individual transmissions (attempts), including retries.
    pub transmissions: u64,
    /// Client wake-ups pushed back by an SS5G resolution window.
    pub deferrals: u64,
    /// Slots with at least one active transmission.
    pub active_slots: u64,
    /// Largest collision order observed.
    pub peak_order: u32,
    /// Total client energy spent, nanojoules.
    pub energy_nj: u64,
    /// FNV-1a digest of the per-transmission outcome transcript.
    pub digest: u64,
    /// Slots escalated through the IQ decode path.
    pub iq_slots: u64,
    /// Escalated slots where IQ and closed-form verdicts differed.
    pub iq_mismatch: u64,
}

impl GatewayStats {
    /// Accumulates another gateway's tallies (digests are *not* merged
    /// here — transcript merging is order-sensitive and owned by
    /// [`crate::sim::run_city`]).
    pub fn absorb(&mut self, o: &GatewayStats) {
        self.offered += o.offered;
        self.delivered += o.delivered;
        self.lost += o.lost;
        self.transmissions += o.transmissions;
        self.deferrals += o.deferrals;
        self.active_slots += o.active_slots;
        self.peak_order = self.peak_order.max(o.peak_order);
        self.energy_nj += o.energy_nj;
        self.iq_slots += o.iq_slots;
        self.iq_mismatch += o.iq_mismatch;
    }
}

/// Builds the gateway's dense client array: SNRs drawn uniformly in the
/// configured quarter-dB range, first arrivals staggered across the
/// reporting period, and — for Choir — beacon teams scheduled so
/// beyond-range clients transmit with their team's combining boost.
fn build_clients(cfg: &CityConfig, scheme: Scheme, rng: &mut StdRng) -> Vec<Client> {
    let n = cfg.clients_per_gw as usize;
    let (lo, hi) = cfg.snr_range_qdb;
    let span = i32::from(hi) - i32::from(lo);
    debug_assert!(span >= 0, "empty SNR range");
    let mut clients: Vec<Client> = (0..n)
        .map(|i| {
            let off = rng.gen_range(0..=(span as u32));
            let snr = (i32::from(lo) + off as i32) as i16;
            // Stagger first arrivals across the period (integer math —
            // the same uniform phase spread `choir_mac::Traffic` uses).
            let born = (u64::from(cfg.client.period_slots) * i as u64 / n.max(1) as u64) as u32;
            Client::new(snr, born)
        })
        .collect();
    if scheme == Scheme::Choir {
        // Beacon teams: beyond-range clients are grouped until the
        // team's non-coherent combining margin clears the floor
        // (Sec. 7.1's scheduler, reused from choir-mac). The boost is
        // quantised through the same table for every platform.
        let snrs_db: Vec<f64> = clients.iter().map(|c| qdb_to_db(c.snr_qdb)).collect();
        let floor_db = qdb_to_db(cfg.model.floor_qdb);
        let schedule = choir_mac::schedule_teams(&snrs_db, floor_db, 1.0, 8);
        for entry in &schedule {
            if let choir_mac::ScheduleEntry::Team(members) = entry {
                let boost = team_gain_qdb(members.len());
                for &m in members {
                    clients[m].boost_qdb = boost;
                }
            }
        }
    }
    clients
}

/// Per-scheme RNG salt: each scheme sees its own independent random
/// universe, so scheme curves are not artificially correlated.
fn scheme_salt(scheme: Scheme) -> u64 {
    match scheme {
        Scheme::Aloha => 0x0a10_4a01,
        Scheme::Slotted => 0x5107_7ed0,
        Scheme::Choir => 0xc401_4000,
        Scheme::Ss5g => 0x55f5_9000,
    }
}

/// Non-coherent combining gain `5·log10(m)` quantised to quarter-dB, as
/// a table so no transcendental can perturb the transcript across
/// platforms (mirrors `choir_mac::beacon::team_gain_db`).
fn team_gain_qdb(members: usize) -> i16 {
    const TABLE: [i16; 9] = [0, 0, 6, 10, 12, 14, 16, 17, 18];
    TABLE[members.min(8)]
}

/// The IQ escalation tier: re-runs one collision slot through the real
/// `choir-core` decode path and substitutes its verdicts. Counted
/// against the gateway's [`CityConfig::iq_slots_per_gw`] budget.
fn escalate_iq(
    iq: &mut IqChoirPhy,
    cfg: &CityConfig,
    clients: &[Client],
    txs: &[u32],
    ok: &mut [bool],
    stats: &mut GatewayStats,
) {
    let slot_txs: Vec<SlotTx> = txs
        .iter()
        .map(|&c| SlotTx {
            node: c as usize,
            snr_db: qdb_to_db(clients[c as usize].eff_snr_qdb()),
        })
        .collect();
    let verdict = iq.slot_outcome(&slot_txs, cfg.payload_len);
    stats.iq_slots += 1;
    for (i, &v) in verdict.iter().enumerate() {
        if ok[i] != v {
            stats.iq_mismatch += 1;
        }
        ok[i] = v;
    }
}

// hot:noalloc — per-slot outcome application; every buffer is caller scratch
/// Applies one resolved slot: folds the transcript digest, updates each
/// transmitting client's state machine and pushes its next wake into the
/// calendar (wakes past the horizon are dropped — the frame is censored,
/// not lost).
#[allow(clippy::too_many_arguments)]
fn apply_outcomes(
    cfg: &CityConfig,
    slot: u32,
    min_wake: u32,
    txs: &[u32],
    ok: &[bool],
    clients: &mut [Client],
    calendar: &mut [Vec<u32>],
    rng: &mut StdRng,
    stats: &mut GatewayStats,
) -> u32 {
    let mut delivered = 0u32;
    for (i, &c) in txs.iter().enumerate() {
        let decided = ok[i];
        stats.digest = fnv1a(stats.digest, (u64::from(slot) << 32) | u64::from(c));
        stats.digest = fnv1a(stats.digest, u64::from(decided));
        let outcome = if decided {
            delivered += 1;
            stats.delivered += 1;
            Outcome::Delivered
        } else {
            Outcome::Lost
        };
        let (wake, dropped) =
            clients[c as usize].on_outcome(slot, outcome, min_wake, &cfg.client, rng);
        if dropped {
            stats.lost += 1;
        }
        if (wake as usize) < calendar.len() {
            calendar[wake as usize].push(c);
        }
    }
    delivered
}

/// Runs one gateway start-to-finish and returns its tallies + digest.
///
/// Deterministic in `(cfg, scheme, gw)` alone: the caller may run
/// gateways in any grouping, on any thread, and get bit-identical
/// results.
pub fn run_gateway(cfg: &CityConfig, scheme: Scheme, gw: u32) -> GatewayStats {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ (u64::from(gw) << 32) ^ scheme_salt(scheme));
    let mut stats = GatewayStats {
        digest: fnv1a(FNV_OFFSET, u64::from(gw)),
        ..GatewayStats::default()
    };
    let total = cfg.slots as usize;
    let mut clients = build_clients(cfg, scheme, &mut rng);
    let mut calendar: Vec<Vec<u32>> = Vec::new();
    calendar.resize_with(total, Vec::new);
    for (i, c) in clients.iter().enumerate() {
        if (c.frame_born as usize) < total {
            calendar[c.frame_born as usize].push(i as u32);
        }
    }

    let tx_nj = cfg.tx_nj();
    let listen_nj = if scheme.coordinated() {
        cfg.listen_nj()
    } else {
        0
    };
    let mut iq = if scheme == Scheme::Choir && cfg.iq_slots_per_gw > 0 {
        Some(Box::new(IqChoirPhy::new(
            cfg.params,
            cfg.seed ^ 0x9e37_79b9_7f4a_7c15 ^ u64::from(gw),
        )))
    } else {
        None
    };
    let mut iq_left = cfg.iq_slots_per_gw;

    // Scratch reused across every slot (capacity stabilises quickly).
    let mut cur: Vec<u32> = Vec::new();
    let mut prev: Vec<u32> = Vec::new();
    let mut snrs: Vec<i16> = Vec::new();
    let mut ok: Vec<bool> = Vec::new();
    let mut prev_prev_n = 0u32;
    let mut busy_until = 0u32;

    // One extra iteration flushes the deferred unslotted-ALOHA slot.
    for s in 0..=cfg.slots {
        cur.clear();
        if (s as usize) < total {
            std::mem::swap(&mut cur, &mut calendar[s as usize]);
        }

        // SS5G resolution window: the channel is busy disentangling an
        // earlier collision; arrivals sense it and defer past the
        // window (with a small random restagger so they don't pile up).
        if scheme == Scheme::Ss5g && s < busy_until && !cur.is_empty() {
            for &c in &cur {
                clients[c as usize].energy_nj =
                    clients[c as usize].energy_nj.saturating_add(listen_nj);
                let wake = busy_until + rng.gen_range(0..4u32);
                stats.deferrals += 1;
                if (wake as usize) < total {
                    calendar[wake as usize].push(c);
                }
            }
            cur.clear();
        }

        // Charge the transmission attempt (and the coordination beacon
        // listen) at the moment of transmission.
        for &c in &cur {
            let cl = &mut clients[c as usize];
            if cl.on_tx(s, tx_nj + listen_nj, &cfg.client) {
                stats.offered += 1;
            }
            stats.transmissions += 1;
        }

        if scheme == Scheme::Aloha {
            // Unslotted: a transmission at s−1 is vulnerable to both
            // neighbours, so its verdict waits until slot s's arrivals
            // are known. Rescheduling targets ≥ s+1, which this slot's
            // calendar pop has already passed — hence min_wake = s+1.
            if !prev.is_empty() {
                let slot = s - 1;
                let adjacent = prev_prev_n + cur.len() as u32;
                snrs.clear();
                snrs.extend(prev.iter().map(|&c| clients[c as usize].eff_snr_qdb()));
                model::resolve_closed_form(&cfg.model, scheme, &snrs, adjacent, &mut ok);
                stats.active_slots += 1;
                stats.peak_order = stats.peak_order.max(prev.len() as u32);
                let delivered = apply_outcomes(
                    cfg,
                    slot,
                    s + 1,
                    &prev,
                    &ok,
                    &mut clients,
                    &mut calendar,
                    &mut rng,
                    &mut stats,
                );
                let offered = prev.len() as u32;
                choir_trace::full(|| {
                    TraceEvent::city_slot(scheme.trace(), gw, u64::from(slot), offered, delivered)
                });
            }
            prev_prev_n = prev.len() as u32;
            std::mem::swap(&mut prev, &mut cur);
        } else if !cur.is_empty() {
            snrs.clear();
            snrs.extend(cur.iter().map(|&c| clients[c as usize].eff_snr_qdb()));
            model::resolve_closed_form(&cfg.model, scheme, &snrs, 0, &mut ok);
            let order = cur.len() as u32;
            if let Some(iq) = iq.as_mut() {
                if iq_left > 0 && order >= 2 && order <= cfg.iq_max_order {
                    iq_left -= 1;
                    escalate_iq(iq, cfg, &clients, &cur, &mut ok, &mut stats);
                }
            }
            stats.active_slots += 1;
            stats.peak_order = stats.peak_order.max(order);
            let delivered = apply_outcomes(
                cfg,
                s,
                s + 1,
                &cur,
                &ok,
                &mut clients,
                &mut calendar,
                &mut rng,
                &mut stats,
            );
            if scheme == Scheme::Ss5g && order >= 2 && delivered > 0 {
                // Slot-shift resolution of an order-k collision occupies
                // the channel for k−1 further slots.
                busy_until = s + order;
            }
            choir_trace::full(|| {
                TraceEvent::city_slot(scheme.trace(), gw, u64::from(s), order, delivered)
            });
        }
    }

    // Fold the battery ledgers into the gateway tally (the digest stays
    // a pure delivery transcript — energy is float-derived at config
    // build time and reported, not transcripted).
    stats.energy_nj = clients
        .iter()
        .fold(0u64, |a, c| a.saturating_add(c.energy_nj));
    stats
}
