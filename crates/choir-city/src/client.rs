//! The per-client state machine: a 24-byte `Copy` record plus pure
//! transition functions, designed to live in dense arrays (one `Vec`
//! per gateway) and to be driven either by the gateway slot loop or —
//! under property tests — by arbitrary synthetic outcome sequences.
//!
//! The machine's contract, pinned by `tests/client_props.rs`:
//!
//! * consecutive transmissions of one client are always ≥
//!   [`ClientCfg::duty_gap_slots`] apart (the duty-cycle gate);
//! * the backoff exponent never exceeds [`ClientCfg::max_be`] and the
//!   retry counter never exceeds [`ClientCfg::max_retries`];
//! * every transition schedules a wake strictly after the slot it
//!   resolves, so the event calendar never runs backwards.

use rand::rngs::StdRng;
use rand::Rng;

/// Behavioural knobs shared by every client of a simulation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ClientCfg {
    /// Sensor reporting period in slots (offered-load knob: each client
    /// generates one frame per period).
    pub period_slots: u32,
    /// Minimum slots between two transmissions of the same client — the
    /// duty-cycle gate, scaled from the regulatory ratio down to
    /// simulation horizons. Must be ≥ 2 (the unslotted-ALOHA resolver
    /// relies on rescheduling never landing in the immediately next
    /// slot).
    pub duty_gap_slots: u32,
    /// Maximum binary-exponential-backoff exponent (window `2^be`).
    pub max_be: u8,
    /// Retransmissions before a frame is dropped as lost.
    pub max_retries: u8,
}

impl Default for ClientCfg {
    fn default() -> Self {
        ClientCfg {
            period_slots: 1000,
            duty_gap_slots: 8,
            max_be: 5,
            max_retries: 4,
        }
    }
}

/// What the gateway decided about one transmission.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// The frame was decoded and delivered.
    Delivered,
    /// The frame was not decoded this attempt (collision or below
    /// floor); the client backs off and may retry.
    Lost,
}

/// Compact per-client state. 24 bytes, `Copy`, no heap — a gateway holds
/// all its clients in one dense `Vec<Client>`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Client {
    /// Static link SNR to the owning gateway, quarter-dB units.
    pub snr_qdb: i16,
    /// Team-combining boost (quarter-dB) granted by the Choir beacon
    /// scheduler; 0 for solo clients and non-Choir schemes.
    pub boost_qdb: i16,
    /// Current backoff exponent.
    pub be: u8,
    /// Retransmissions already spent on the current frame.
    pub retries: u8,
    /// Earliest slot the duty-cycle gate allows the next transmission.
    pub next_allowed: u32,
    /// Slot the current pending frame was generated.
    pub frame_born: u32,
    /// Battery ledger: energy spent so far, nanojoules.
    pub energy_nj: u64,
}

impl Client {
    /// A fresh client with its first frame born at `first_born`.
    pub fn new(snr_qdb: i16, first_born: u32) -> Self {
        Client {
            snr_qdb,
            boost_qdb: 0,
            be: 0,
            retries: 0,
            next_allowed: 0,
            frame_born: first_born,
            energy_nj: 0,
        }
    }

    /// Effective SNR entering the decode model: link SNR plus any
    /// team-combining boost.
    pub fn eff_snr_qdb(&self) -> i16 {
        self.snr_qdb.saturating_add(self.boost_qdb)
    }

    /// Records a transmission in slot `slot`: arms the duty-cycle gate
    /// and charges `tx_nj` to the battery. Returns `true` when this was
    /// the frame's *first* attempt (the frame becomes "offered").
    pub fn on_tx(&mut self, slot: u32, tx_nj: u64, cfg: &ClientCfg) -> bool {
        self.next_allowed = slot.saturating_add(cfg.duty_gap_slots.max(2));
        self.energy_nj = self.energy_nj.saturating_add(tx_nj);
        self.retries == 0
    }

    /// Applies the gateway's verdict for a transmission resolved at
    /// `slot` and returns the next wake slot (`≥ min_wake`, strictly
    /// after `slot`). `Some(wake)` always — the caller drops wakes past
    /// the horizon. The second tuple field is `true` when the current
    /// frame was dropped as lost (retry budget exhausted).
    pub fn on_outcome(
        &mut self,
        slot: u32,
        outcome: Outcome,
        min_wake: u32,
        cfg: &ClientCfg,
        rng: &mut StdRng,
    ) -> (u32, bool) {
        match outcome {
            Outcome::Delivered => (self.next_frame_wake(slot, min_wake, cfg), false),
            Outcome::Lost => {
                if self.retries >= cfg.max_retries {
                    // Retry budget exhausted: drop the frame, move on to
                    // the next sensor reading.
                    (self.next_frame_wake(slot, min_wake, cfg), true)
                } else {
                    self.retries += 1;
                    self.be = (self.be + 1).min(cfg.max_be);
                    let window = 1u32 << u32::from(self.be);
                    let backoff = rng.gen_range(0..window);
                    let wake = slot
                        .saturating_add(cfg.duty_gap_slots.max(2))
                        .saturating_add(backoff)
                        .max(min_wake);
                    (wake, false)
                }
            }
        }
    }

    /// Finishes the current frame (delivered or dropped) and schedules
    /// the wake for the next one: generated one period after this one,
    /// gated by the duty cycle, never before `min_wake`.
    fn next_frame_wake(&mut self, slot: u32, min_wake: u32, cfg: &ClientCfg) -> u32 {
        self.retries = 0;
        self.be = 0;
        let born = self.frame_born.saturating_add(cfg.period_slots.max(1));
        self.frame_born = born;
        born.max(self.next_allowed)
            .max(slot.saturating_add(1))
            .max(min_wake)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn cfg() -> ClientCfg {
        ClientCfg {
            period_slots: 50,
            duty_gap_slots: 8,
            max_be: 5,
            max_retries: 3,
        }
    }

    #[test]
    fn delivery_schedules_next_period() {
        let c = cfg();
        let mut cl = Client::new(20, 10);
        let mut rng = StdRng::seed_from_u64(1);
        assert!(cl.on_tx(10, 100, &c));
        let (wake, dropped) = cl.on_outcome(10, Outcome::Delivered, 11, &c, &mut rng);
        assert!(!dropped);
        assert_eq!(cl.frame_born, 60);
        assert_eq!(wake, 60);
        assert_eq!(cl.energy_nj, 100);
    }

    #[test]
    fn loss_backs_off_at_least_a_duty_gap() {
        let c = cfg();
        let mut cl = Client::new(20, 0);
        let mut rng = StdRng::seed_from_u64(2);
        cl.on_tx(0, 1, &c);
        let (wake, dropped) = cl.on_outcome(0, Outcome::Lost, 1, &c, &mut rng);
        assert!(!dropped);
        assert!(wake >= 8, "wake {wake}");
        assert_eq!(cl.retries, 1);
        assert_eq!(cl.be, 1);
    }

    #[test]
    fn retry_budget_drops_the_frame() {
        let c = cfg();
        let mut cl = Client::new(20, 0);
        let mut rng = StdRng::seed_from_u64(3);
        let mut slot = 0;
        let mut dropped = false;
        for _ in 0..=c.max_retries {
            cl.on_tx(slot, 1, &c);
            let (wake, d) = cl.on_outcome(slot, Outcome::Lost, slot + 1, &c, &mut rng);
            dropped = d;
            slot = wake;
        }
        assert!(dropped, "4th loss must drop the frame");
        assert_eq!(cl.retries, 0, "drop resets the retry counter");
    }

    #[test]
    fn second_attempt_is_not_offered_again() {
        let c = cfg();
        let mut cl = Client::new(20, 0);
        let mut rng = StdRng::seed_from_u64(4);
        assert!(cl.on_tx(0, 1, &c), "first attempt offers the frame");
        cl.on_outcome(0, Outcome::Lost, 1, &c, &mut rng);
        assert!(!cl.on_tx(20, 1, &c), "retry is the same offered frame");
    }
}
