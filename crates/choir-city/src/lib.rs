//! # choir-city — city-scale sharded LP-WAN network simulation
//!
//! Choir's headline claim is *urban* scale: one base station tier serving
//! a dense city by decoding collisions instead of avoiding them.
//! `choir-mac` answers the single-cell question with per-transmission IQ
//! synthesis; this crate answers the city question — ≥10⁶ duty-cycled
//! clients across ≥10² gateways — by inverting the fidelity default:
//!
//! * **Clients are compact state machines in dense arrays** ([`Client`],
//!   24 bytes each): duty-cycle gate, binary exponential backoff, team
//!   membership boost, and a per-client battery ledger in integer
//!   nanojoules. No per-client allocation anywhere.
//! * **The simulator is event-driven**: each gateway keeps a slot
//!   calendar of pending wake-ups, so a slot costs O(transmissions in the
//!   slot), not O(clients) — idle clients are never touched.
//! * **Slot outcomes are closed-form by default**: integer quarter-dB
//!   capture/decode bookkeeping ([`model`]) that is exactly reproducible
//!   across platforms (no transcendentals in any outcome-deciding path).
//!   A CoRa-style cheap detection tier rejects undetectable slots before
//!   any decode bookkeeping runs, and an optional escalation budget sends
//!   the first few collision slots per gateway through the *real*
//!   `choir-core` IQ decode path (`choir_mac::IqChoirPhy`) to validate —
//!   or, when enabled, decide — the closed-form outcomes.
//! * **Gateways are the unit of determinism, shards the unit of work**:
//!   every gateway simulation is seeded from `(seed, gateway)` and runs
//!   independently; shards (contiguous gateway ranges) are mapped over a
//!   `choir_pool::ThreadPool`, whose order-preserving contract makes the
//!   merged transcript bit-identical for any thread count *and* any
//!   shard count ([`run_city`] golden/property tests pin this).
//!
//! Four MAC schemes compete on the same traffic ([`Scheme`]): unslotted
//! ALOHA (adjacent-slot vulnerability), slotted ALOHA with
//! strongest-signal capture, Choir collision decoding with beacon-team
//! boosts for beyond-range clients (`choir_mac::beacon::schedule_teams`),
//! and an SS5G-style collision-resolution scheme (El Rachkidy et al.)
//! where collisions of bounded order are disentangled by slot-shift
//! combining at the cost of channel-busy resolution slots.
//!
//! The delivered-frame transcript of every run is folded into a 64-bit
//! FNV digest ([`CityStats::digest`]); `BENCH_city.json` and the
//! `cargo xtask ci city-capacity` gate refuse 1-vs-N-thread divergence.

#![deny(missing_docs)]

pub mod client;
pub mod gateway;
pub mod model;
pub mod sim;

pub use client::{Client, ClientCfg, Outcome};
pub use gateway::{run_gateway, GatewayStats};
pub use model::{CityModel, Scheme};
pub use sim::{run_city, run_city_global, CityConfig, CityStats};
