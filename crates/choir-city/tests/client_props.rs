//! Property tests for the client state machine and the city simulator's
//! sharding contract.
//!
//! 1. Under *arbitrary* outcome sequences (any interleaving of
//!    deliveries and losses, any backoff draws), a client never violates
//!    its duty-cycle gate, never exceeds its backoff/retry bounds, and
//!    never schedules a wake at or before the slot being resolved.
//! 2. The delivered-frame transcript of a city run is a function of
//!    `(config, scheme, seed)` alone — never of how gateways are grouped
//!    into shards (1 vs 4 vs 16) or how many pool workers run them.

use choir_city::model::Scheme;
use choir_city::sim::{run_city, CityConfig};
use choir_city::{Client, ClientCfg, Outcome};
use choir_pool::ThreadPool;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Drive one client through a long random life: every transition must
    // respect the duty gate, the backoff bounds and calendar monotonicity.
    #[test]
    fn client_invariants_under_arbitrary_outcomes(
        seed in any::<u64>(),
        period in 1u32..200,
        duty_gap in 0u32..40,
        max_be in 0u8..8,
        max_retries in 0u8..6,
        loss_bias in 0u32..100,
    ) {
        let cfg = ClientCfg { period_slots: period, duty_gap_slots: duty_gap, max_be, max_retries };
        let gap = duty_gap.max(2);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut cl = Client::new(0, 0);
        let mut slot = cl.frame_born;
        let mut last_tx: Option<u32> = None;
        let mut energy_before = 0u64;
        for _ in 0..200 {
            let first = cl.on_tx(slot, 3, &cfg);
            prop_assert_eq!(first, cl.retries == 0);
            prop_assert!(cl.energy_nj == energy_before + 3, "tx always charges energy");
            energy_before = cl.energy_nj;
            if let Some(prev) = last_tx {
                prop_assert!(
                    slot - prev >= gap,
                    "duty gate violated: tx at {} then {} (gap {})", prev, slot, gap
                );
            }
            last_tx = Some(slot);
            let lost = rng.gen_range(0..100u32) < loss_bias;
            let min_wake = slot + 1 + rng.gen_range(0..3u32);
            let outcome = if lost { Outcome::Lost } else { Outcome::Delivered };
            let (wake, dropped) = cl.on_outcome(slot, outcome, min_wake, &cfg, &mut rng);
            prop_assert!(wake > slot, "wake {} not after slot {}", wake, slot);
            prop_assert!(wake >= min_wake, "wake {} below min_wake {}", wake, min_wake);
            prop_assert!(cl.be <= max_be, "backoff exponent escaped its bound");
            prop_assert!(cl.retries <= max_retries, "retry counter escaped its bound");
            if dropped || !lost {
                prop_assert_eq!(cl.retries, 0, "frame completion must reset retries");
                prop_assert_eq!(cl.be, 0, "frame completion must reset backoff");
            }
            slot = wake;
        }
    }

    // Sharding and threading are pure work-division: the transcript
    // digest and every tally are bit-identical across 1/4/16 shards and
    // 1/4 workers.
    #[test]
    fn transcript_invariant_to_shards_and_threads(
        seed in any::<u64>(),
        scheme_ix in 0usize..4,
        period in 20u32..90,
    ) {
        let scheme = Scheme::ALL[scheme_ix];
        let mut cfg = CityConfig::new(seed, 5, 30, 250);
        cfg.client.period_slots = period;
        let pool1 = ThreadPool::with_threads(1);
        let pool4 = ThreadPool::with_threads(4);
        let mut reference = None;
        for shards in [1u32, 4, 16] {
            cfg.shards = shards;
            for pool in [&pool1, &pool4] {
                let st = run_city(&cfg, scheme, pool);
                let got = (st.digest, st.totals);
                match &reference {
                    None => reference = Some(got),
                    Some(want) => prop_assert_eq!(
                        &got, want,
                        "{:?} diverged at shards={} threads={}",
                        scheme, shards, pool.threads()
                    ),
                }
            }
        }
    }
}
