//! Seeded golden transcripts for the city simulator.
//!
//! The pinned digests below were produced by this exact test; they are
//! the cross-thread determinism contract. CI runs this file under both
//! `CHOIR_THREADS=1` and `CHOIR_THREADS=4` (the golden config routes
//! through the env-sized global pool), so any scheduling- or
//! shard-dependence shows up as a digest mismatch on one leg.
//!
//! If a *deliberate* model change shifts the transcripts, rerun with
//! `CITY_GOLDEN_PRINT=1 cargo test -p choir-city --test golden -- --nocapture`
//! and paste the new table — the 1-vs-4-thread equality is re-proven on
//! the next CI run, not assumed.

use choir_city::model::Scheme;
use choir_city::sim::{run_city, run_city_global, CityConfig};
use choir_pool::ThreadPool;

fn golden_cfg() -> CityConfig {
    let mut cfg = CityConfig::new(0xC17C_17C1, 8, 200, 600);
    cfg.client.period_slots = 500;
    cfg.shards = 4;
    cfg
}

/// (scheme, digest, offered, delivered) — regenerate via
/// `CITY_GOLDEN_PRINT=1`.
const GOLDEN: [(Scheme, u64, u64, u64); 4] = [
    (Scheme::Aloha, 0x5e75b67c21ebe6ac, 1920, 96),
    (Scheme::Slotted, 0x8dff7e52bb8618a1, 1920, 1592),
    (Scheme::Choir, 0xf5825ea7c6927db0, 1920, 1844),
    (Scheme::Ss5g, 0xf4ac5ef1aa45c9a5, 1920, 1653),
];

#[test]
fn golden_transcripts_match_pinned_digests() {
    let cfg = golden_cfg();
    let mut print = String::new();
    let mut failures = Vec::new();
    for &(scheme, digest, offered, delivered) in &GOLDEN {
        let st = run_city_global(&cfg, scheme);
        print.push_str(&format!(
            "    (Scheme::{:?}, 0x{:016x}, {}, {}),\n",
            scheme, st.digest, st.totals.offered, st.totals.delivered
        ));
        if (st.digest, st.totals.offered, st.totals.delivered) != (digest, offered, delivered) {
            failures.push(format!(
                "{scheme:?}: digest 0x{:016x} offered {} delivered {} (pinned 0x{digest:016x}/{offered}/{delivered})",
                st.digest, st.totals.offered, st.totals.delivered
            ));
        }
    }
    if std::env::var("CITY_GOLDEN_PRINT").is_ok() {
        println!("const GOLDEN: [(Scheme, u64, u64, u64); 4] = [\n{print}];");
        return;
    }
    assert!(
        failures.is_empty(),
        "golden divergence:\n{}",
        failures.join("\n")
    );
}

#[test]
fn golden_is_identical_on_one_and_four_workers() {
    let cfg = golden_cfg();
    let seq = ThreadPool::with_threads(1);
    let par = ThreadPool::with_threads(4);
    for scheme in Scheme::ALL {
        let a = run_city(&cfg, scheme, &seq);
        let b = run_city(&cfg, scheme, &par);
        assert_eq!(
            (a.digest, a.totals),
            (b.digest, b.totals),
            "{scheme:?} transcript depends on worker count"
        );
    }
}

#[test]
fn iq_escalated_run_is_thread_invariant() {
    // The IQ tier synthesises real collisions through choir-core; its
    // verdicts must be just as thread-independent as the closed form.
    let mut cfg = CityConfig::new(99, 2, 40, 240);
    cfg.client.period_slots = 30;
    cfg.iq_slots_per_gw = 4;
    cfg.shards = 2;
    let seq = ThreadPool::with_threads(1);
    let par = ThreadPool::with_threads(4);
    let a = run_city(&cfg, Scheme::Choir, &seq);
    let b = run_city(&cfg, Scheme::Choir, &par);
    assert!(a.totals.iq_slots > 0, "escalation budget never spent");
    assert_eq!((a.digest, a.totals), (b.digest, b.totals));
}
