//! Reusable scratch-buffer arena for the DSP hot path.
//!
//! The offset-search inner loop (Algorithm 1) evaluates thousands of
//! candidate offsets per slot; every evaluation used to allocate — and
//! immediately drop — full-length `Vec<C64>` temporaries for dechirped
//! windows, Bluestein convolution scratch and padded spectra. A
//! [`Workspace`] recycles those buffers: callers *take* a buffer of the
//! length they need and *put* it back when done, so steady-state
//! evaluation performs zero heap allocations (buffers grow to their
//! high-water capacity during warm-up and are reused thereafter).
//!
//! Two access styles are supported:
//!
//! * explicit threading — hot-path `_into` APIs (e.g.
//!   [`FftPlan::forward_padded_into`](crate::fft::FftPlan::forward_padded_into))
//!   take `&mut Workspace` so ownership is visible in the signature;
//! * a per-thread arena ([`with`], [`take`], [`put`]) for call sites that
//!   sit behind `&self` interfaces shared across worker threads (the
//!   estimator). Thread-locality means zero contention and, because the
//!   worker pool reuses OS threads across slots, buffers stay warm for a
//!   whole batch.
//!
//! Buffers are handed out zero-filled, so checked-out scratch never
//! observes stale data and results cannot depend on reuse history.

use crate::complex::C64;
use std::cell::RefCell;

/// A scratch arena of `Vec<C64>` and `Vec<f64>` buffers keyed by
/// requested length.
///
/// See the module docs for the ownership model. A `Workspace` is cheap to
/// construct (no allocation until first use) and deliberately `!Sync`:
/// share one per thread, not one per process. Complex and real buffers
/// live in separate pools so a checkout never has to transmute or split
/// capacity between element types.
#[derive(Debug, Default)]
pub struct Workspace {
    free: Vec<Vec<C64>>,
    free_f64: Vec<Vec<f64>>,
}

/// Best-fit checkout shared by both pools: prefer the smallest pooled
/// buffer whose capacity already fits `len` (no allocation); otherwise
/// grow the largest pooled buffer or, if the pool is empty, allocate a
/// fresh one. The buffer comes back cleared and zero-filled to `len`.
fn best_fit<T: Clone + Default>(free: &mut Vec<Vec<T>>, len: usize) -> Vec<T> {
    let mut pick: Option<usize> = None;
    for (i, buf) in free.iter().enumerate() {
        let better = match pick {
            None => true,
            Some(j) => {
                let (pc, bc) = (free[j].capacity(), buf.capacity());
                if pc >= len {
                    bc >= len && bc < pc
                } else {
                    bc > pc
                }
            }
        };
        if better {
            pick = Some(i);
        }
    }
    let mut buf = match pick {
        Some(i) => free.swap_remove(i),
        None => Vec::with_capacity(len),
    };
    buf.clear();
    buf.resize(len, T::default());
    buf
}

impl Workspace {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Checks out a zero-filled buffer of exactly `len` elements.
    ///
    /// Prefers the smallest pooled buffer whose capacity already fits
    /// `len` (no allocation); otherwise grows the largest pooled buffer
    /// or, if the pool is empty, allocates a fresh one.
    pub fn take(&mut self, len: usize) -> Vec<C64> {
        best_fit(&mut self.free, len)
    }

    /// Returns a buffer to the arena for later reuse.
    ///
    /// The contents are irrelevant — [`take`](Self::take) re-zeroes on
    /// checkout. Zero-capacity buffers are dropped rather than pooled.
    pub fn put(&mut self, buf: Vec<C64>) {
        if buf.capacity() > 0 {
            self.free.push(buf);
        }
    }

    /// Checks out a zero-filled real (`f64`) buffer of exactly `len`
    /// elements, with the same best-fit policy as [`take`](Self::take).
    /// Used by the magnitude/median scratch in `peaks`.
    pub fn take_f64(&mut self, len: usize) -> Vec<f64> {
        best_fit(&mut self.free_f64, len)
    }

    /// Returns a real buffer taken via [`take_f64`](Self::take_f64) to
    /// the arena. Zero-capacity buffers are dropped rather than pooled.
    pub fn put_f64(&mut self, buf: Vec<f64>) {
        if buf.capacity() > 0 {
            self.free_f64.push(buf);
        }
    }

    /// Number of buffers currently pooled (checked in, not checked
    /// out), across both element types.
    pub fn pooled(&self) -> usize {
        self.free.len() + self.free_f64.len()
    }
}

thread_local! {
    static THREAD_ARENA: RefCell<Workspace> = RefCell::new(Workspace::new());
}

/// Runs `f` with exclusive access to the calling thread's arena.
///
/// Re-entrant calls (an `f` that itself calls [`with`]) do not deadlock
/// or panic: the inner call falls back to a fresh temporary arena, which
/// is correct (buffers are zeroed on checkout) but forgoes reuse — keep
/// hot paths to a single `with` at the entry point and thread
/// `&mut Workspace` explicitly below it.
pub fn with<R>(f: impl FnOnce(&mut Workspace) -> R) -> R {
    THREAD_ARENA.with(|cell| match cell.try_borrow_mut() {
        Ok(mut ws) => f(&mut ws),
        Err(_) => f(&mut Workspace::new()),
    })
}

/// Checks out a zero-filled buffer from the calling thread's arena.
///
/// Unlike [`with`], the arena is only borrowed for the duration of the
/// checkout itself, so `take`/[`put`] pairs can never conflict with an
/// enclosing scope.
pub fn take(len: usize) -> Vec<C64> {
    with(|ws| ws.take(len))
}

/// Returns a buffer taken via [`take`] to the calling thread's arena.
pub fn put(buf: Vec<C64>) {
    with(|ws| ws.put(buf));
}

/// Checks out a zero-filled `f64` buffer from the calling thread's
/// arena (see [`take`]).
pub fn take_f64(len: usize) -> Vec<f64> {
    with(|ws| ws.take_f64(len))
}

/// Returns a buffer taken via [`take_f64`] to the calling thread's
/// arena.
pub fn put_f64(buf: Vec<f64>) {
    with(|ws| ws.put_f64(buf));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_returns_zeroed_buffer_of_requested_len() {
        let mut ws = Workspace::new();
        let buf = ws.take(7);
        assert_eq!(buf.len(), 7);
        assert!(buf.iter().all(|v| v.re == 0.0 && v.im == 0.0));
    }

    #[test]
    fn put_then_take_reuses_allocation() {
        let mut ws = Workspace::new();
        let mut buf = ws.take(16);
        buf[3] = crate::complex::c64(1.5, -2.5);
        let ptr = buf.as_ptr();
        let cap = buf.capacity();
        ws.put(buf);
        let again = ws.take(16);
        assert_eq!(
            again.as_ptr(),
            ptr,
            "same-length take must reuse the buffer"
        );
        assert_eq!(again.capacity(), cap);
        assert!(
            again.iter().all(|v| v.re == 0.0 && v.im == 0.0),
            "re-zeroed"
        );
    }

    #[test]
    fn smaller_take_reuses_larger_buffer_without_alloc() {
        let mut ws = Workspace::new();
        let big = ws.take(64);
        let ptr = big.as_ptr();
        ws.put(big);
        let small = ws.take(8);
        assert_eq!(small.len(), 8);
        assert_eq!(small.as_ptr(), ptr);
    }

    #[test]
    fn best_fit_prefers_tightest_capacity() {
        let mut ws = Workspace::new();
        let small = ws.take(8);
        let big = ws.take(64);
        let small_ptr = small.as_ptr();
        ws.put(small);
        ws.put(big);
        let got = ws.take(8);
        assert_eq!(
            got.as_ptr(),
            small_ptr,
            "should pick the 8-cap buffer, not the 64-cap one"
        );
        assert_eq!(ws.pooled(), 1);
    }

    #[test]
    fn f64_pool_is_separate_and_reuses() {
        let mut ws = Workspace::new();
        let mut r = ws.take_f64(32);
        r[5] = 7.25;
        let ptr = r.as_ptr();
        ws.put_f64(r);
        assert_eq!(ws.pooled(), 1);
        // A complex checkout must not consume the real buffer.
        let c = ws.take(32);
        assert_eq!(ws.pooled(), 1);
        ws.put(c);
        let again = ws.take_f64(32);
        assert_eq!(again.as_ptr(), ptr, "same-length take_f64 must reuse");
        assert!(again.iter().all(|&v| v == 0.0), "re-zeroed");
    }

    #[test]
    fn thread_local_helpers_roundtrip() {
        let buf = take(12);
        assert_eq!(buf.len(), 12);
        put(buf);
        let buf2 = take(12);
        assert_eq!(buf2.len(), 12);
        put(buf2);
    }

    #[test]
    fn reentrant_with_falls_back_to_fresh_arena() {
        let out = with(|outer| {
            let a = outer.take(4);
            let inner_len = with(|inner| inner.take(4).len());
            outer.put(a);
            inner_len
        });
        assert_eq!(out, 4);
    }
}
