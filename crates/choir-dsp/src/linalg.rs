//! Small dense complex linear algebra.
//!
//! The offset estimator solves, per symbol, the least-squares system of
//! Eqn. 2 of the paper: `[h1 … hK] = (EᴴE)⁻¹ Eᴴ y`, where `E`'s columns are
//! the `K` hypothesised complex exponentials and `y` is the dechirped
//! symbol. `K` is the number of colliding users (≤ ~16), so naïve `O(K³)`
//! Gaussian elimination is ideal — no external linear-algebra crate needed.

use crate::complex::C64;

/// A dense row-major complex matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct CMat {
    rows: usize,
    cols: usize,
    data: Vec<C64>,
}

impl CMat {
    /// Allocates a `rows × cols` zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        CMat {
            rows,
            cols,
            data: vec![C64::ZERO; rows * cols],
        }
    }

    /// Builds a matrix from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_rows(rows: usize, cols: usize, data: Vec<C64>) -> Self {
        assert_eq!(data.len(), rows * cols, "CMat: data length mismatch");
        CMat { rows, cols, data }
    }

    /// Builds a matrix whose columns are the given equal-length vectors.
    pub fn from_cols(cols: &[Vec<C64>]) -> Self {
        let ncols = cols.len();
        assert!(ncols > 0, "CMat::from_cols: no columns");
        let nrows = cols[0].len();
        for c in cols {
            assert_eq!(c.len(), nrows, "CMat::from_cols: ragged columns");
        }
        let mut m = CMat::zeros(nrows, ncols);
        for (j, col) in cols.iter().enumerate() {
            for (i, &v) in col.iter().enumerate() {
                m[(i, j)] = v;
            }
        }
        m
    }

    /// The `n × n` identity.
    pub fn identity(n: usize) -> Self {
        let mut m = CMat::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = C64::ONE;
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Conjugate (Hermitian) transpose.
    pub fn hermitian(&self) -> CMat {
        let mut out = CMat::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)].conj();
            }
        }
        out
    }

    /// Matrix product `self · rhs`.
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, rhs: &CMat) -> CMat {
        assert_eq!(self.cols, rhs.rows, "matmul: dimension mismatch");
        let mut out = CMat::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == C64::ZERO {
                    continue;
                }
                for j in 0..rhs.cols {
                    out[(i, j)] += a * rhs[(k, j)];
                }
            }
        }
        out
    }

    /// Matrix–vector product `self · x`.
    pub fn matvec(&self, x: &[C64]) -> Vec<C64> {
        assert_eq!(self.cols, x.len(), "matvec: dimension mismatch");
        (0..self.rows)
            .map(|i| (0..self.cols).map(|j| self[(i, j)] * x[j]).sum())
            .collect()
    }

    /// Solves the square system `self · x = b` by Gaussian elimination with
    /// partial pivoting. Returns `None` when the matrix is (numerically)
    /// singular.
    pub fn solve(&self, b: &[C64]) -> Option<Vec<C64>> {
        assert_eq!(self.rows, self.cols, "solve: matrix must be square");
        assert_eq!(self.rows, b.len(), "solve: rhs length mismatch");
        let n = self.rows;
        // Augmented working copy.
        let mut a = self.data.clone();
        let mut x = b.to_vec();
        for col in 0..n {
            // Partial pivot on magnitude.
            let (piv, pmag) = (col..n)
                .map(|r| (r, a[r * n + col].norm_sqr()))
                .max_by(|u, v| u.1.total_cmp(&v.1))?;
            if pmag < 1e-300 {
                return None;
            }
            if piv != col {
                for j in 0..n {
                    a.swap(col * n + j, piv * n + j);
                }
                x.swap(col, piv);
            }
            let inv = a[col * n + col].inv();
            for r in col + 1..n {
                let factor = a[r * n + col] * inv;
                if factor == C64::ZERO {
                    continue;
                }
                for j in col..n {
                    let v = a[col * n + j];
                    a[r * n + j] -= factor * v;
                }
                let bc = x[col];
                x[r] -= factor * bc;
            }
        }
        // Back substitution.
        for col in (0..n).rev() {
            let mut s = x[col];
            for j in col + 1..n {
                s -= a[col * n + j] * x[j];
            }
            x[col] = s / a[col * n + col];
        }
        // Debug builds: a solution that survived pivoting must be finite —
        // Inf/NaN here means the 1e-300 singularity guard was too lax.
        crate::checks::assert_finite("CMat::solve", &x);
        Some(x)
    }

    /// Inverse of a square matrix, or `None` if singular.
    pub fn inverse(&self) -> Option<CMat> {
        assert_eq!(self.rows, self.cols, "inverse: matrix must be square");
        let n = self.rows;
        let mut cols = Vec::with_capacity(n);
        for j in 0..n {
            let mut e = vec![C64::ZERO; n];
            e[j] = C64::ONE;
            cols.push(self.solve(&e)?);
        }
        Some(CMat::from_cols(&cols))
    }

    /// Frobenius norm.
    pub fn fro_norm(&self) -> f64 {
        self.data.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt()
    }
}

impl std::ops::Index<(usize, usize)> for CMat {
    type Output = C64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &C64 {
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for CMat {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut C64 {
        &mut self.data[i * self.cols + j]
    }
}

/// Solves the over-determined least-squares problem `min_x ‖E·x − y‖²` via
/// the normal equations `(EᴴE)x = Eᴴy`, where `E`'s columns are `basis` and
/// `y = rhs`. This is Eqn. 2 of the paper with `basis[k][t] = e^{j2π f_k t}`.
///
/// Returns `None` when the basis is rank-deficient (e.g. two identical
/// frequency hypotheses).
pub fn least_squares(basis: &[Vec<C64>], rhs: &[C64]) -> Option<Vec<C64>> {
    let k = basis.len();
    assert!(k > 0, "least_squares: empty basis");
    let n = rhs.len();
    for b in basis {
        assert_eq!(b.len(), n, "least_squares: basis/rhs length mismatch");
    }
    // Gram matrix G = EᴴE (k×k) and projected rhs p = Eᴴy.
    let mut g = CMat::zeros(k, k);
    for i in 0..k {
        for j in i..k {
            let v: C64 = basis[i]
                .iter()
                .zip(&basis[j])
                .map(|(a, b)| a.conj() * b)
                .sum();
            g[(i, j)] = v;
            if i != j {
                g[(j, i)] = v.conj();
            }
        }
    }
    let p: Vec<C64> = (0..k)
        .map(|i| basis[i].iter().zip(rhs).map(|(a, y)| a.conj() * y).sum())
        .collect();
    g.solve(&p)
}

/// Residual energy `‖y − Σ_k x_k · basis_k‖²` of a least-squares fit.
pub fn residual_energy(basis: &[Vec<C64>], coeffs: &[C64], rhs: &[C64]) -> f64 {
    assert_eq!(basis.len(), coeffs.len());
    let mut acc = 0.0;
    for (t, &y) in rhs.iter().enumerate() {
        let mut model = C64::ZERO;
        for (b, &c) in basis.iter().zip(coeffs) {
            model += c * b[t];
        }
        acc += (y - model).norm_sqr();
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::c64;

    fn vec_close(a: &[C64], b: &[C64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < tol, "{x:?} vs {y:?}");
        }
    }

    #[test]
    fn identity_solve() {
        let id = CMat::identity(3);
        let b = vec![c64(1.0, 2.0), c64(3.0, -1.0), c64(0.0, 0.5)];
        vec_close(&id.solve(&b).unwrap(), &b, 1e-12);
    }

    #[test]
    fn solve_known_system() {
        // [[2, 1], [1, 3j]] x = [5, 1+6j]  with x = [2, 1] ... verify by
        // construction: pick x, compute b = A x, then solve.
        let a = CMat::from_rows(
            2,
            2,
            vec![c64(2.0, 0.0), c64(1.0, 0.0), c64(1.0, 0.0), c64(0.0, 3.0)],
        );
        let x_true = vec![c64(2.0, -1.0), c64(1.0, 1.0)];
        let b = a.matvec(&x_true);
        let x = a.solve(&b).unwrap();
        vec_close(&x, &x_true, 1e-10);
    }

    #[test]
    fn solve_requires_pivoting() {
        // Zero on the diagonal forces a row swap.
        let a = CMat::from_rows(2, 2, vec![C64::ZERO, C64::ONE, C64::ONE, C64::ZERO]);
        let x = a.solve(&[c64(3.0, 0.0), c64(7.0, 0.0)]).unwrap();
        vec_close(&x, &[c64(7.0, 0.0), c64(3.0, 0.0)], 1e-12);
    }

    #[test]
    fn singular_returns_none() {
        let a = CMat::from_rows(2, 2, vec![C64::ONE, C64::ONE, C64::ONE, C64::ONE]);
        assert!(a.solve(&[C64::ONE, C64::ONE]).is_none());
    }

    #[test]
    fn inverse_times_self_is_identity() {
        let a = CMat::from_rows(
            3,
            3,
            vec![
                c64(4.0, 1.0),
                c64(2.0, 0.0),
                c64(0.0, -1.0),
                c64(1.0, 0.0),
                c64(3.0, 2.0),
                c64(1.0, 1.0),
                c64(0.0, 0.0),
                c64(1.0, -1.0),
                c64(2.0, 0.0),
            ],
        );
        let inv = a.inverse().unwrap();
        let prod = a.matmul(&inv);
        let id = CMat::identity(3);
        for i in 0..3 {
            for j in 0..3 {
                assert!((prod[(i, j)] - id[(i, j)]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn hermitian_transpose() {
        let a = CMat::from_rows(1, 2, vec![c64(1.0, 2.0), c64(3.0, -4.0)]);
        let h = a.hermitian();
        assert_eq!(h.rows(), 2);
        assert_eq!(h.cols(), 1);
        assert_eq!(h[(0, 0)], c64(1.0, -2.0));
        assert_eq!(h[(1, 0)], c64(3.0, 4.0));
    }

    #[test]
    fn least_squares_exact_recovery() {
        // y = 2·e1 + (1-j)·e2 with orthogonal exponentials → exact coeffs.
        let n = 64;
        let e1: Vec<C64> = (0..n)
            .map(|t| C64::cis(2.0 * std::f64::consts::PI * 5.0 * t as f64 / n as f64))
            .collect();
        let e2: Vec<C64> = (0..n)
            .map(|t| C64::cis(2.0 * std::f64::consts::PI * 11.0 * t as f64 / n as f64))
            .collect();
        let y: Vec<C64> = (0..n)
            .map(|t| e1[t] * 2.0 + e2[t] * c64(1.0, -1.0))
            .collect();
        let coeffs = least_squares(&[e1.clone(), e2.clone()], &y).unwrap();
        vec_close(&coeffs, &[c64(2.0, 0.0), c64(1.0, -1.0)], 1e-9);
        assert!(residual_energy(&[e1, e2], &coeffs, &y) < 1e-18);
    }

    #[test]
    fn least_squares_nonorthogonal_basis() {
        // Fractional frequencies: basis vectors are correlated but
        // independent; LS must still recover the generating coefficients.
        let n = 128;
        let make = |f: f64| -> Vec<C64> {
            (0..n)
                .map(|t| C64::cis(2.0 * std::f64::consts::PI * f * t as f64 / n as f64))
                .collect()
        };
        let b1 = make(20.3);
        let b2 = make(21.1);
        let (c1, c2) = (c64(0.7, 0.2), c64(-0.4, 0.9));
        let y: Vec<C64> = (0..n).map(|t| b1[t] * c1 + b2[t] * c2).collect();
        let coeffs = least_squares(&[b1, b2], &y).unwrap();
        vec_close(&coeffs, &[c1, c2], 1e-8);
    }

    #[test]
    fn least_squares_duplicate_basis_is_singular() {
        let b: Vec<C64> = (0..16).map(|t| C64::cis(0.3 * t as f64)).collect();
        let y = b.clone();
        assert!(least_squares(&[b.clone(), b], &y).is_none());
    }

    #[test]
    fn residual_energy_of_perfect_fit_is_zero() {
        let b: Vec<C64> = (0..8).map(|t| C64::cis(0.5 * t as f64)).collect();
        let y: Vec<C64> = b.iter().map(|v| v * c64(3.0, 1.0)).collect();
        let r = residual_energy(&[b], &[c64(3.0, 1.0)], &y);
        assert!(r < 1e-20);
    }

    #[test]
    fn matmul_identity() {
        let a = CMat::from_rows(
            2,
            2,
            vec![c64(1.0, 1.0), c64(2.0, 0.0), c64(0.0, 3.0), c64(4.0, -1.0)],
        );
        let prod = a.matmul(&CMat::identity(2));
        assert_eq!(prod, a);
    }

    #[test]
    fn fro_norm() {
        let a = CMat::from_rows(1, 2, vec![c64(3.0, 0.0), c64(0.0, 4.0)]);
        assert!((a.fro_norm() - 5.0).abs() < 1e-12);
    }
}
