//! Small dense complex linear algebra.
//!
//! The offset estimator solves, per symbol, the least-squares system of
//! Eqn. 2 of the paper: `[h1 … hK] = (EᴴE)⁻¹ Eᴴ y`, where `E`'s columns are
//! the `K` hypothesised complex exponentials and `y` is the dechirped
//! symbol. `K` is the number of colliding users (≤ ~16), so naïve `O(K³)`
//! Gaussian elimination is ideal — no external linear-algebra crate needed.

use crate::complex::{c64, C64};

/// A dense row-major complex matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct CMat {
    rows: usize,
    cols: usize,
    data: Vec<C64>,
}

impl CMat {
    /// Allocates a `rows × cols` zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        CMat {
            rows,
            cols,
            data: vec![C64::ZERO; rows * cols],
        }
    }

    /// Builds a matrix from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_rows(rows: usize, cols: usize, data: Vec<C64>) -> Self {
        assert_eq!(data.len(), rows * cols, "CMat: data length mismatch");
        CMat { rows, cols, data }
    }

    /// Builds a matrix whose columns are the given equal-length vectors.
    pub fn from_cols(cols: &[Vec<C64>]) -> Self {
        let ncols = cols.len();
        assert!(ncols > 0, "CMat::from_cols: no columns");
        let nrows = cols[0].len();
        for c in cols {
            assert_eq!(c.len(), nrows, "CMat::from_cols: ragged columns");
        }
        let mut m = CMat::zeros(nrows, ncols);
        for (j, col) in cols.iter().enumerate() {
            for (i, &v) in col.iter().enumerate() {
                m[(i, j)] = v;
            }
        }
        m
    }

    /// The `n × n` identity.
    pub fn identity(n: usize) -> Self {
        let mut m = CMat::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = C64::ONE;
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Conjugate (Hermitian) transpose.
    pub fn hermitian(&self) -> CMat {
        let mut out = CMat::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)].conj();
            }
        }
        out
    }

    /// Matrix product `self · rhs`.
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, rhs: &CMat) -> CMat {
        assert_eq!(self.cols, rhs.rows, "matmul: dimension mismatch");
        let mut out = CMat::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == C64::ZERO {
                    continue;
                }
                for j in 0..rhs.cols {
                    out[(i, j)] += a * rhs[(k, j)];
                }
            }
        }
        out
    }

    /// Matrix–vector product `self · x`.
    pub fn matvec(&self, x: &[C64]) -> Vec<C64> {
        assert_eq!(self.cols, x.len(), "matvec: dimension mismatch");
        (0..self.rows)
            .map(|i| (0..self.cols).map(|j| self[(i, j)] * x[j]).sum())
            .collect()
    }

    /// Solves the square system `self · x = b` by Gaussian elimination with
    /// partial pivoting. Returns `None` when the matrix is (numerically)
    /// singular.
    pub fn solve(&self, b: &[C64]) -> Option<Vec<C64>> {
        assert_eq!(self.rows, self.cols, "solve: matrix must be square");
        assert_eq!(self.rows, b.len(), "solve: rhs length mismatch");
        let n = self.rows;
        // Augmented working copy.
        let mut a = self.data.clone();
        let mut x = b.to_vec();
        for col in 0..n {
            // Partial pivot on magnitude.
            let (piv, pmag) = (col..n)
                .map(|r| (r, a[r * n + col].norm_sqr()))
                .max_by(|u, v| u.1.total_cmp(&v.1))?;
            if pmag < 1e-300 {
                return None;
            }
            if piv != col {
                for j in 0..n {
                    a.swap(col * n + j, piv * n + j);
                }
                x.swap(col, piv);
            }
            let inv = a[col * n + col].inv();
            for r in col + 1..n {
                let factor = a[r * n + col] * inv;
                if factor == C64::ZERO {
                    continue;
                }
                for j in col..n {
                    let v = a[col * n + j];
                    a[r * n + j] -= factor * v;
                }
                let bc = x[col];
                x[r] -= factor * bc;
            }
        }
        // Back substitution.
        for col in (0..n).rev() {
            let mut s = x[col];
            for j in col + 1..n {
                s -= a[col * n + j] * x[j];
            }
            x[col] = s / a[col * n + col];
        }
        // Debug builds: a solution that survived pivoting must be finite —
        // Inf/NaN here means the 1e-300 singularity guard was too lax.
        crate::checks::assert_finite("CMat::solve", &x);
        Some(x)
    }

    /// Inverse of a square matrix, or `None` if singular.
    pub fn inverse(&self) -> Option<CMat> {
        assert_eq!(self.rows, self.cols, "inverse: matrix must be square");
        let n = self.rows;
        let mut cols = Vec::with_capacity(n);
        for j in 0..n {
            let mut e = vec![C64::ZERO; n];
            e[j] = C64::ONE;
            cols.push(self.solve(&e)?);
        }
        Some(CMat::from_cols(&cols))
    }

    /// Frobenius norm.
    pub fn fro_norm(&self) -> f64 {
        self.data.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt()
    }
}

impl std::ops::Index<(usize, usize)> for CMat {
    type Output = C64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &C64 {
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for CMat {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut C64 {
        &mut self.data[i * self.cols + j]
    }
}

/// Solves the over-determined least-squares problem `min_x ‖E·x − y‖²` via
/// the normal equations `(EᴴE)x = Eᴴy`, where `E`'s columns are `basis` and
/// `y = rhs`. This is Eqn. 2 of the paper with `basis[k][t] = e^{j2π f_k t}`.
///
/// Returns `None` when the basis is rank-deficient (e.g. two identical
/// frequency hypotheses).
pub fn least_squares(basis: &[Vec<C64>], rhs: &[C64]) -> Option<Vec<C64>> {
    let refs: Vec<&[C64]> = basis.iter().map(Vec::as_slice).collect();
    least_squares_refs(&refs, rhs)
}

/// Borrowing form of [`least_squares`]: identical arithmetic (and hence
/// bit-identical results), but columns are borrowed slices so callers
/// holding shared/cached basis vectors need not copy them first.
pub fn least_squares_refs(basis: &[&[C64]], rhs: &[C64]) -> Option<Vec<C64>> {
    let k = basis.len();
    assert!(k > 0, "least_squares: empty basis");
    let n = rhs.len();
    for b in basis {
        assert_eq!(b.len(), n, "least_squares: basis/rhs length mismatch");
    }
    // Gram matrix G = EᴴE (k×k) and projected rhs p = Eᴴy, built through
    // the same `conj_dot` kernel incremental callers use (bit-identical
    // entries either way, whichever backend is active).
    let mut g = CMat::zeros(k, k);
    for i in 0..k {
        for j in i..k {
            let v = conj_dot(basis[i], basis[j]);
            g[(i, j)] = v;
            if i != j {
                g[(j, i)] = v.conj();
            }
        }
    }
    let p: Vec<C64> = (0..k).map(|i| conj_dot(basis[i], rhs)).collect();
    g.solve(&p)
}

/// Residual energy `‖y − Σ_k x_k · basis_k‖²` of a least-squares fit.
pub fn residual_energy(basis: &[Vec<C64>], coeffs: &[C64], rhs: &[C64]) -> f64 {
    let refs: Vec<&[C64]> = basis.iter().map(Vec::as_slice).collect();
    residual_energy_refs(&refs, coeffs, rhs)
}

/// Borrowing form of [`residual_energy`] (see [`least_squares_refs`]).
pub fn residual_energy_refs(basis: &[&[C64]], coeffs: &[C64], rhs: &[C64]) -> f64 {
    assert_eq!(basis.len(), coeffs.len());
    let mut acc = 0.0;
    for (t, &y) in rhs.iter().enumerate() {
        let mut model = C64::ZERO;
        for (b, &c) in basis.iter().zip(coeffs) {
            model += c * b[t];
        }
        acc += (y - model).norm_sqr();
    }
    acc
}

/// Conjugate inner product `Σ_t a[t]ᴴ · b[t]` — the exact kernel
/// [`least_squares`] uses for Gram entries and projections, exposed so
/// incremental callers (updating one row/column of `AᴴA` at a time)
/// produce bit-identical entries to a from-scratch Gram build.
// hot:noalloc — pure streaming reduction over borrowed slices.
pub fn conj_dot(a: &[C64], b: &[C64]) -> C64 {
    crate::backend::conj_dot(a, b)
}

/// Residual energy of a least-squares fit evaluated through the Gram
/// identity `‖y − Bc‖² = ‖y‖² − 2·Re(cᴴp) + cᴴGc`, where `G = BᴴB` and
/// `p = Bᴴy`. Given cached `G` and `p` this is O(k²) instead of the
/// O(k·n) time-domain sweep of [`residual_energy`] — the identity holds
/// for *any* coefficient vector, not just the least-squares optimum, so
/// it is a drop-in objective for the offset search. Clamped at zero
/// (cancellation can push an essentially-perfect fit a few ulp negative).
// hot:noalloc — O(k²) over caller-owned flat buffers.
pub fn gram_residual(k: usize, g: &[C64], p: &[C64], c: &[C64], y_energy: f64) -> f64 {
    debug_assert_eq!(g.len(), k * k);
    debug_assert_eq!(p.len(), k);
    debug_assert_eq!(c.len(), k);
    let mut cp = C64::ZERO;
    for i in 0..k {
        cp += c[i].conj() * p[i];
    }
    let mut cgc = C64::ZERO;
    for i in 0..k {
        let mut gi = C64::ZERO;
        for j in 0..k {
            gi += g[i * k + j] * c[j];
        }
        cgc += c[i].conj() * gi;
    }
    (y_energy - 2.0 * cp.re + cgc.re).max(0.0)
}

/// Cholesky factorization `G = L·Lᴴ` of a Hermitian positive-definite
/// matrix, stored as a reusable lower-triangular factor.
///
/// This is the normal-equation solver for the offset-search hot path: a
/// Gram matrix is factored once and then solved against many right-hand
/// sides ([`Self::solve_into`], allocation-free), and a factored leading
/// block can be *bordered* by one row/column ([`Self::border`]) without
/// refactoring — the boundary scan holds its tone basis fixed while
/// sweeping the step column, so all candidates share one factored block.
///
/// Unlike [`CMat::solve`] there is no pivoting: positive-definiteness is
/// what licenses that, and [`Self::factor`] reports `false` (singular /
/// indefinite input) whenever a pivot is not strictly positive, which is
/// exactly the duplicate-basis degeneracy the estimator must reject.
#[derive(Debug, Default, Clone)]
pub struct CholeskyFactor {
    k: usize,
    /// Row-major k×k; entries strictly above the diagonal are unused.
    l: Vec<C64>,
    /// Conjugate-transpose mirror (`u[i·k+m] = conj(l[m·k+i])`,
    /// entries strictly below the diagonal unused), maintained so back
    /// substitution walks a contiguous row instead of a strided,
    /// conjugated column — that is what lets both substitutions run
    /// through the vectorized [`crate::backend::dot`] kernel.
    u: Vec<C64>,
}

/// A diagonal pivot below this fraction of its untouched Gram diagonal is
/// rounding noise from a (near-)collinear basis, not signal: 1e-12 sits
/// ~4 orders above f64 cancellation residue and ~8 below the smallest
/// legitimate pivot ratio the offset search produces (two tones 0.05 bins
/// apart keep `1 − |ρ|² ≈ 8e-4`).
const PIVOT_REL_TOL: f64 = 1e-12;

impl CholeskyFactor {
    /// An empty, reusable factor (no allocation until first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Order of the currently held factorization (0 when unfactored).
    pub fn order(&self) -> usize {
        self.k
    }

    /// Computes one row `i` of the factor from Gram row `g_row`
    /// (`g_row[j] = G[i,j]` for `j ≤ i`). Shared verbatim by
    /// [`Self::factor`] and [`Self::border`] so a bordered factor is
    /// bit-identical to a from-scratch one.
    fn fill_row(&mut self, i: usize, g_row: impl Fn(usize) -> C64) -> bool {
        let k = self.k;
        for j in 0..=i {
            let mut s = g_row(j);
            for m in 0..j {
                s -= self.l[i * k + m] * self.l[j * k + m].conj();
            }
            if i == j {
                // The subtracted products are |L[i,m]|² terms whose
                // imaginary parts cancel exactly, so the real part of `s`
                // carries the whole pivot. A pivot that cancelled down to
                // rounding noise (duplicate/collinear bases leave
                // ±ε·G[i,i], sign unpredictable) must be rejected, hence
                // the threshold relative to the untouched diagonal.
                let pr = s.re;
                if !(pr.is_finite() && pr > g_row(i).re * PIVOT_REL_TOL) {
                    self.k = 0;
                    return false;
                }
                let d = c64(pr.sqrt(), 0.0);
                self.l[i * k + i] = d;
                self.u[i * k + i] = d;
            } else {
                let inv = 1.0 / self.l[j * k + j].re;
                let v = s.scale(inv);
                self.l[i * k + j] = v;
                self.u[j * k + i] = v.conj();
            }
        }
        true
    }

    /// Factors the Hermitian matrix `g` (k×k, row-major flat). Returns
    /// `false` — leaving the factor empty — if any pivot is not strictly
    /// positive and finite (singular or indefinite input).
    // hot:noalloc — the factor buffer is reused across calls.
    pub fn factor(&mut self, k: usize, g: &[C64]) -> bool {
        debug_assert_eq!(g.len(), k * k);
        self.k = k;
        self.l.clear();
        self.l.resize(k * k, C64::ZERO);
        self.u.clear();
        self.u.resize(k * k, C64::ZERO);
        for i in 0..k {
            if !self.fill_row(i, |j| g[i * k + j]) {
                return false;
            }
        }
        true
    }

    /// Extends `prev` (a factored (k−1)×(k−1) leading block) by one
    /// bordering row: `row[j] = G[k−1, j]` for `j < k−1` and
    /// `diag = G[k−1, k−1]`. Bit-identical to refactoring the full k×k
    /// matrix (the copied block is untouched; the new row runs the same
    /// arithmetic [`Self::factor`] would).
    // hot:noalloc — the factor buffer is reused across calls.
    pub fn border(&mut self, prev: &Self, row: &[C64], diag: C64) -> bool {
        let kp = prev.k;
        let k = kp + 1;
        debug_assert_eq!(row.len(), kp);
        self.k = k;
        self.l.clear();
        self.l.resize(k * k, C64::ZERO);
        self.u.clear();
        self.u.resize(k * k, C64::ZERO);
        for i in 0..kp {
            for j in 0..=i {
                self.l[i * k + j] = prev.l[i * kp + j];
                self.u[j * k + i] = prev.u[j * kp + i];
            }
        }
        self.fill_row(k - 1, |j| if j < kp { row[j] } else { diag })
    }

    /// Solves `L·Lᴴ·x = b` into `x` (both length k) by forward and back
    /// substitution. Must only be called after a successful
    /// [`Self::factor`] / [`Self::border`].
    ///
    /// Each substitution row's reduction is a contiguous unconjugated
    /// dot product — `L`'s row against the solved prefix going forward,
    /// the `Lᴴ` mirror's row against the solved suffix going back — and
    /// runs through [`crate::backend::dot`], which is 0-ULP identical across
    /// backends. The reduction accumulates the products in index order
    /// from zero and subtracts the sum once (`b[i] − Σ`), the only
    /// shape a vector lane can produce without reassociating; the
    /// short-row fallback below replays that exact fold, so results do
    /// not depend on the row length, only on the row values.
    // hot:noalloc — substitution runs in the caller's output buffer.
    pub fn solve_into(&self, b: &[C64], x: &mut [C64]) {
        let k = self.k;
        debug_assert!(k > 0, "solve_into on an unfactored CholeskyFactor");
        debug_assert_eq!(b.len(), k);
        debug_assert_eq!(x.len(), k);
        // Below this row length the vector kernel's dispatch + call
        // overhead exceeds the reduction itself (K ≤ 3 systems dominate
        // the refine loop); the inline fold is bit-identical to it.
        const MIN_KERNEL_ROW: usize = 4;
        #[inline]
        fn row_dot(a: &[C64], b: &[C64]) -> C64 {
            if a.len() >= MIN_KERNEL_ROW {
                crate::backend::dot(a, b)
            } else {
                let mut acc = C64::ZERO;
                for (&am, &bm) in a.iter().zip(b) {
                    acc += am * bm;
                }
                acc
            }
        }
        for i in 0..k {
            let s = b[i] - row_dot(&self.l[i * k..i * k + i], &x[..i]);
            x[i] = s.scale(1.0 / self.l[i * k + i].re);
        }
        for i in (0..k).rev() {
            let s = x[i] - row_dot(&self.u[i * k + i + 1..i * k + k], &x[i + 1..k]);
            x[i] = s.scale(1.0 / self.l[i * k + i].re);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::c64;

    fn vec_close(a: &[C64], b: &[C64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < tol, "{x:?} vs {y:?}");
        }
    }

    #[test]
    fn identity_solve() {
        let id = CMat::identity(3);
        let b = vec![c64(1.0, 2.0), c64(3.0, -1.0), c64(0.0, 0.5)];
        vec_close(&id.solve(&b).unwrap(), &b, 1e-12);
    }

    #[test]
    fn solve_known_system() {
        // [[2, 1], [1, 3j]] x = [5, 1+6j]  with x = [2, 1] ... verify by
        // construction: pick x, compute b = A x, then solve.
        let a = CMat::from_rows(
            2,
            2,
            vec![c64(2.0, 0.0), c64(1.0, 0.0), c64(1.0, 0.0), c64(0.0, 3.0)],
        );
        let x_true = vec![c64(2.0, -1.0), c64(1.0, 1.0)];
        let b = a.matvec(&x_true);
        let x = a.solve(&b).unwrap();
        vec_close(&x, &x_true, 1e-10);
    }

    #[test]
    fn solve_requires_pivoting() {
        // Zero on the diagonal forces a row swap.
        let a = CMat::from_rows(2, 2, vec![C64::ZERO, C64::ONE, C64::ONE, C64::ZERO]);
        let x = a.solve(&[c64(3.0, 0.0), c64(7.0, 0.0)]).unwrap();
        vec_close(&x, &[c64(7.0, 0.0), c64(3.0, 0.0)], 1e-12);
    }

    #[test]
    fn singular_returns_none() {
        let a = CMat::from_rows(2, 2, vec![C64::ONE, C64::ONE, C64::ONE, C64::ONE]);
        assert!(a.solve(&[C64::ONE, C64::ONE]).is_none());
    }

    #[test]
    fn inverse_times_self_is_identity() {
        let a = CMat::from_rows(
            3,
            3,
            vec![
                c64(4.0, 1.0),
                c64(2.0, 0.0),
                c64(0.0, -1.0),
                c64(1.0, 0.0),
                c64(3.0, 2.0),
                c64(1.0, 1.0),
                c64(0.0, 0.0),
                c64(1.0, -1.0),
                c64(2.0, 0.0),
            ],
        );
        let inv = a.inverse().unwrap();
        let prod = a.matmul(&inv);
        let id = CMat::identity(3);
        for i in 0..3 {
            for j in 0..3 {
                assert!((prod[(i, j)] - id[(i, j)]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn hermitian_transpose() {
        let a = CMat::from_rows(1, 2, vec![c64(1.0, 2.0), c64(3.0, -4.0)]);
        let h = a.hermitian();
        assert_eq!(h.rows(), 2);
        assert_eq!(h.cols(), 1);
        assert_eq!(h[(0, 0)], c64(1.0, -2.0));
        assert_eq!(h[(1, 0)], c64(3.0, 4.0));
    }

    #[test]
    fn least_squares_exact_recovery() {
        // y = 2·e1 + (1-j)·e2 with orthogonal exponentials → exact coeffs.
        let n = 64;
        let e1: Vec<C64> = (0..n)
            .map(|t| C64::cis(2.0 * std::f64::consts::PI * 5.0 * t as f64 / n as f64))
            .collect();
        let e2: Vec<C64> = (0..n)
            .map(|t| C64::cis(2.0 * std::f64::consts::PI * 11.0 * t as f64 / n as f64))
            .collect();
        let y: Vec<C64> = (0..n)
            .map(|t| e1[t] * 2.0 + e2[t] * c64(1.0, -1.0))
            .collect();
        let coeffs = least_squares(&[e1.clone(), e2.clone()], &y).unwrap();
        vec_close(&coeffs, &[c64(2.0, 0.0), c64(1.0, -1.0)], 1e-9);
        assert!(residual_energy(&[e1, e2], &coeffs, &y) < 1e-18);
    }

    #[test]
    fn least_squares_nonorthogonal_basis() {
        // Fractional frequencies: basis vectors are correlated but
        // independent; LS must still recover the generating coefficients.
        let n = 128;
        let make = |f: f64| -> Vec<C64> {
            (0..n)
                .map(|t| C64::cis(2.0 * std::f64::consts::PI * f * t as f64 / n as f64))
                .collect()
        };
        let b1 = make(20.3);
        let b2 = make(21.1);
        let (c1, c2) = (c64(0.7, 0.2), c64(-0.4, 0.9));
        let y: Vec<C64> = (0..n).map(|t| b1[t] * c1 + b2[t] * c2).collect();
        let coeffs = least_squares(&[b1, b2], &y).unwrap();
        vec_close(&coeffs, &[c1, c2], 1e-8);
    }

    #[test]
    fn least_squares_duplicate_basis_is_singular() {
        let b: Vec<C64> = (0..16).map(|t| C64::cis(0.3 * t as f64)).collect();
        let y = b.clone();
        assert!(least_squares(&[b.clone(), b], &y).is_none());
    }

    #[test]
    fn residual_energy_of_perfect_fit_is_zero() {
        let b: Vec<C64> = (0..8).map(|t| C64::cis(0.5 * t as f64)).collect();
        let y: Vec<C64> = b.iter().map(|v| v * c64(3.0, 1.0)).collect();
        let r = residual_energy(&[b], &[c64(3.0, 1.0)], &y);
        assert!(r < 1e-20);
    }

    #[test]
    fn matmul_identity() {
        let a = CMat::from_rows(
            2,
            2,
            vec![c64(1.0, 1.0), c64(2.0, 0.0), c64(0.0, 3.0), c64(4.0, -1.0)],
        );
        let prod = a.matmul(&CMat::identity(2));
        assert_eq!(prod, a);
    }

    #[test]
    fn fro_norm() {
        let a = CMat::from_rows(1, 2, vec![c64(3.0, 0.0), c64(0.0, 4.0)]);
        assert!((a.fro_norm() - 5.0).abs() < 1e-12);
    }

    /// A small Hermitian positive-definite Gram matrix (flat row-major)
    /// plus the tone bases and rhs that generated it.
    fn gram_fixture(k: usize, n: usize) -> (Vec<Vec<C64>>, Vec<C64>, Vec<C64>, Vec<C64>) {
        let freqs = [20.3, 21.7, 24.1, 26.9];
        let bases: Vec<Vec<C64>> = (0..k)
            .map(|i| {
                (0..n)
                    .map(|t| C64::cis(2.0 * std::f64::consts::PI * freqs[i] * t as f64 / n as f64))
                    .collect()
            })
            .collect();
        let y: Vec<C64> = (0..n)
            .map(|t| {
                bases
                    .iter()
                    .enumerate()
                    .map(|(i, b)| b[t] * c64(0.5 + i as f64, -0.3 * i as f64))
                    .sum::<C64>()
                    + C64::cis(1.7 * t as f64).scale(0.01)
            })
            .collect();
        let mut g = vec![C64::ZERO; k * k];
        for i in 0..k {
            for j in 0..k {
                g[i * k + j] = conj_dot(&bases[i], &bases[j]);
            }
        }
        let p: Vec<C64> = (0..k).map(|i| conj_dot(&bases[i], &y)).collect();
        (bases, y, g, p)
    }

    #[test]
    fn conj_dot_matches_least_squares_gram_entries() {
        let (bases, y, g, p) = gram_fixture(2, 32);
        // Rebuild the Gram/projection the way least_squares does and
        // compare bit-for-bit: incremental row/column updates rely on it.
        for i in 0..2 {
            for j in 0..2 {
                let v: C64 = bases[i]
                    .iter()
                    .zip(&bases[j])
                    .map(|(a, b)| a.conj() * b)
                    .sum();
                assert_eq!(v.re.to_bits(), g[i * 2 + j].re.to_bits());
                assert_eq!(v.im.to_bits(), g[i * 2 + j].im.to_bits());
            }
            let pv: C64 = bases[i].iter().zip(&y).map(|(a, b)| a.conj() * b).sum();
            assert_eq!(pv.re.to_bits(), p[i].re.to_bits());
            assert_eq!(pv.im.to_bits(), p[i].im.to_bits());
        }
    }

    #[test]
    fn cholesky_solves_normal_equations() {
        let (bases, y, g, p) = gram_fixture(3, 64);
        let mut chol = CholeskyFactor::new();
        assert!(chol.factor(3, &g));
        let mut x = vec![C64::ZERO; 3];
        chol.solve_into(&p, &mut x);
        // Compare against the pivoting Gaussian solver on the same system.
        let gm = CMat::from_rows(3, 3, g.clone());
        let reference = gm.solve(&p).unwrap();
        vec_close(&x, &reference, 1e-9);
        // And against the generating coefficients (small noise floor).
        let _ = bases;
        let _ = y;
    }

    #[test]
    fn cholesky_rejects_duplicate_basis() {
        let b: Vec<C64> = (0..16).map(|t| C64::cis(0.3 * t as f64)).collect();
        let g = vec![
            conj_dot(&b, &b),
            conj_dot(&b, &b),
            conj_dot(&b, &b),
            conj_dot(&b, &b),
        ];
        let mut chol = CholeskyFactor::new();
        assert!(
            !chol.factor(2, &g),
            "duplicate basis must be rejected as non-PD"
        );
        assert_eq!(chol.order(), 0);
    }

    #[test]
    fn bordered_factor_is_bit_identical_to_full_factor() {
        let (_, _, g, _) = gram_fixture(4, 64);
        let k = 4;
        // Factor the leading 3×3 block, then border with the last row.
        let lead: Vec<C64> = (0..3)
            .flat_map(|i| (0..3).map(move |j| (i, j)))
            .map(|(i, j)| g[i * k + j])
            .collect();
        let mut prev = CholeskyFactor::new();
        assert!(prev.factor(3, &lead));
        let row: Vec<C64> = (0..3).map(|j| g[3 * k + j]).collect();
        let mut bordered = CholeskyFactor::new();
        assert!(bordered.border(&prev, &row, g[3 * k + 3]));

        let mut full = CholeskyFactor::new();
        assert!(full.factor(4, &g));
        for i in 0..k {
            for j in 0..=i {
                assert_eq!(
                    bordered.l[i * k + j].re.to_bits(),
                    full.l[i * k + j].re.to_bits(),
                    "L[{i},{j}].re"
                );
                assert_eq!(
                    bordered.l[i * k + j].im.to_bits(),
                    full.l[i * k + j].im.to_bits(),
                    "L[{i},{j}].im"
                );
            }
        }
    }

    #[test]
    fn gram_residual_matches_time_domain_residual() {
        let (bases, y, g, p) = gram_fixture(2, 64);
        let coeffs = least_squares(&bases, &y).unwrap();
        let direct = residual_energy(&bases, &coeffs, &y);
        let y_energy: f64 = y.iter().map(|v| v.norm_sqr()).sum();
        let via_gram = gram_residual(2, &g, &p, &coeffs, y_energy);
        assert!(
            (direct - via_gram).abs() <= 1e-9 * direct.max(1.0),
            "direct {direct} vs gram {via_gram}"
        );
        // The identity holds away from the optimum too.
        let off = vec![c64(0.3, 0.1), c64(-1.0, 0.4)];
        let d2 = residual_energy(&bases, &off, &y);
        let g2 = gram_residual(2, &g, &p, &off, y_energy);
        assert!(
            (d2 - g2).abs() <= 1e-9 * d2.max(1.0),
            "direct {d2} vs gram {g2}"
        );
    }
}
