//! Fractional delays, decimation and spectrograms.
//!
//! The channel simulator generates each transmitter's waveform analytically
//! at its own (offset) clock, but receiver-side processing sometimes needs
//! to shift an already-sampled signal by a fraction of a sample — e.g. when
//! reconstructing a hypothesis for interference cancellation. Windowed-sinc
//! interpolation gives near-ideal fractional delay for band-limited signals.

use crate::complex::C64;

/// Delays `x` by `delay` samples (may be fractional and/or negative) using
/// windowed-sinc interpolation with `taps` taps per side (Hann-windowed).
/// Samples that would come from outside the signal are treated as zero.
pub fn fractional_delay(x: &[C64], delay: f64, taps: usize) -> Vec<C64> {
    assert!(taps >= 1, "fractional_delay: need at least one tap");
    let n = x.len();
    let int_part = delay.floor();
    let frac = delay - int_part;
    let int_shift = int_part as i64;
    if frac.abs() < 1e-12 {
        return integer_shift(x, int_shift);
    }
    let mut out = vec![C64::ZERO; n];
    let t = taps as i64;
    // The windowed-sinc kernel depends only on the tap index and `frac`,
    // never on the output position — build it once per call instead of
    // paying (2·taps+1) sin/cos evaluations per output sample.
    let kernel: Vec<f64> = (-t..=t)
        .map(|k| {
            let u = k as f64 - frac;
            let s = sinc(u);
            // Hann window over the tap span.
            let w = 0.5 + 0.5 * (std::f64::consts::PI * u / (t as f64 + 1.0)).cos();
            s * w.max(0.0)
        })
        .collect();
    for (i, o) in out.iter_mut().enumerate() {
        // out[i] = Σ_k x[i - int_shift - k] · sinc(k - frac) · w(k)
        let lo = i as i64 - int_shift - t;
        let hi = i as i64 - int_shift + t;
        if lo >= 0 && hi < n as i64 {
            // Interior output: every tap's source is in range, and the
            // source index walks backwards as the tap index walks
            // forwards — exactly the backend's reversed MAC, which is
            // bit-identical to the guarded loop below with no skips.
            *o = crate::backend::dot_rev(&x[lo as usize..=hi as usize], &kernel);
            continue;
        }
        let mut acc = C64::ZERO;
        for (ki, k) in (-t..=t).enumerate() {
            let src = i as i64 - int_shift - k;
            if src < 0 || src >= n as i64 {
                continue;
            }
            acc += x[src as usize].scale(kernel[ki]);
        }
        *o = acc;
    }
    out
}

/// Integer sample shift with zero fill (positive = delay).
pub fn integer_shift(x: &[C64], shift: i64) -> Vec<C64> {
    let n = x.len() as i64;
    (0..n)
        .map(|i| {
            let src = i - shift;
            if src < 0 || src >= n {
                C64::ZERO
            } else {
                x[src as usize]
            }
        })
        .collect()
}

/// Normalised sinc `sin(πx)/(πx)`.
pub fn sinc(x: f64) -> f64 {
    if x.abs() < 1e-12 {
        1.0
    } else {
        let px = std::f64::consts::PI * x;
        px.sin() / px
    }
}

/// Keeps every `factor`-th sample (no anti-alias filter; callers decimate
/// signals that are already band-limited by construction).
pub fn decimate(x: &[C64], factor: usize) -> Vec<C64> {
    assert!(factor >= 1, "decimate: zero factor");
    x.iter().step_by(factor).copied().collect()
}

/// Short-time Fourier transform magnitude (spectrogram), used to render the
/// chirp figures (Fig. 2/3). Returns `frames × fft_size` magnitudes.
pub fn spectrogram(x: &[C64], fft_size: usize, hop: usize) -> Vec<Vec<f64>> {
    assert!(fft_size > 0 && hop > 0, "spectrogram: bad geometry");
    let plan = crate::fft::FftPlan::new(fft_size);
    let mut frames = Vec::new();
    let mut start = 0usize;
    while start + fft_size <= x.len() {
        let spec = plan.forward_padded(&x[start..start + fft_size]);
        frames.push(spec.iter().map(|z| z.abs()).collect());
        start += hop;
    }
    frames
}

// Tests assert on exactly-representable values (0.0, bin centres).
#[allow(clippy::float_cmp)]
#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sinc_values() {
        assert_eq!(sinc(0.0), 1.0);
        assert!(sinc(1.0).abs() < 1e-12);
        assert!(sinc(2.0).abs() < 1e-12);
        assert!((sinc(0.5) - 2.0 / std::f64::consts::PI).abs() < 1e-12);
    }

    #[test]
    fn integer_shift_behaviour() {
        let x: Vec<C64> = (0..4).map(|i| C64::from_re(i as f64)).collect();
        let d = integer_shift(&x, 1);
        assert_eq!(d[0], C64::ZERO);
        assert_eq!(d[1], C64::from_re(0.0));
        assert_eq!(d[3], C64::from_re(2.0));
        let a = integer_shift(&x, -1);
        assert_eq!(a[0], C64::from_re(1.0));
        assert_eq!(a[3], C64::ZERO);
    }

    #[test]
    fn zero_fractional_delay_is_identity() {
        let x: Vec<C64> = (0..16).map(|i| C64::cis(0.3 * i as f64)).collect();
        let y = fractional_delay(&x, 0.0, 8);
        for (a, b) in x.iter().zip(&y) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn fractional_delay_shifts_tone_phase() {
        // Delaying a band-limited tone by d samples multiplies its phasor by
        // e^{-j2πf d}. Check in the interior away from edge effects.
        let n = 256;
        let f = 0.1; // cycles/sample — well inside the band
        let x: Vec<C64> = (0..n)
            .map(|i| C64::cis(2.0 * std::f64::consts::PI * f * i as f64))
            .collect();
        let d = 0.37;
        let y = fractional_delay(&x, d, 24);
        let expected_rot = C64::cis(-2.0 * std::f64::consts::PI * f * d);
        for i in 64..192 {
            let actual = y[i] / x[i];
            assert!(
                (actual - expected_rot).abs() < 0.01,
                "sample {i}: {actual:?} vs {expected_rot:?}"
            );
        }
    }

    #[test]
    fn fractional_delay_half_sample_energy_preserved() {
        let n = 128;
        let x: Vec<C64> = (0..n)
            .map(|i| C64::cis(2.0 * std::f64::consts::PI * 0.05 * i as f64))
            .collect();
        let y = fractional_delay(&x, 0.5, 16);
        let ex = crate::complex::energy(&x[20..108]);
        let ey = crate::complex::energy(&y[20..108]);
        assert!((ex - ey).abs() / ex < 0.02, "energy {ex} vs {ey}");
    }

    #[test]
    fn decimate_keeps_every_kth() {
        let x: Vec<C64> = (0..10).map(|i| C64::from_re(i as f64)).collect();
        let y = decimate(&x, 3);
        assert_eq!(y.len(), 4);
        assert_eq!(y[1], C64::from_re(3.0));
    }

    #[test]
    fn spectrogram_geometry_and_tone() {
        let n = 512;
        let f = 16.0 / 64.0; // bin 16 of a 64-point frame
        let x: Vec<C64> = (0..n)
            .map(|i| C64::cis(2.0 * std::f64::consts::PI * f * i as f64))
            .collect();
        let frames = spectrogram(&x, 64, 32);
        assert_eq!(frames.len(), (n - 64) / 32 + 1);
        for fr in &frames {
            let (kmax, _) = fr
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .unwrap();
            assert_eq!(kmax, 16);
        }
    }
}
