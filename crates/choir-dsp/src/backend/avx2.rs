//! AVX2 backend: x86_64 `std::arch` intrinsics, f64 lanes only.
//!
//! This file (with `neon.rs`) is the workspace's sole sanctioned
//! `unsafe` surface — see the module-level docs. Every kernel here is
//! bit-identical to the scalar oracle by construction:
//!
//! * **No FMA.** `_mm256_fmadd_pd` rounds once where the oracle rounds
//!   twice; only separate `mul`/`add`/`sub`/`addsub` are used.
//! * **Exact complex multiply.** `_mm256_addsub_pd(t1, t2)` evaluates
//!   `[p.re·q.re − p.im·q.im, p.re·q.im + p.im·q.re]` with the same two
//!   roundings per component as `C64`'s `Mul`.
//! * **Ordered reductions.** Dot products compute two products per
//!   256-bit register but fold them into a 128-bit `(re, im)`
//!   accumulator sequentially, in the oracle's index order; each lane
//!   is an independent IEEE add, so no reassociation occurs. The
//!   speedup comes from vectorizing the multiplies and element-wise
//!   passes, not from reordering sums.
//! * **Sign flips via XOR** with `-0.0` masks — exactly `f64`'s `Neg`,
//!   NaN-safe.
//!
//! # Soundness
//!
//! The dispatcher only routes here after
//! `is_x86_feature_detected!("avx2")` reported true, so the
//! `#[target_feature(enable = "avx2")]` inner functions are reachable
//! only on hosts that execute them correctly. Loads and stores use
//! unaligned `loadu`/`storeu` through pointers derived from slices
//! whose bounds the loop conditions respect; `C64` is `#[repr(C)]`
//! (`re` then `im`), so a `[C64]` is layout-compatible with pairs of
//! `f64` lanes.
#![allow(unsafe_code)]

use crate::complex::C64;
use std::arch::x86_64::{
    __m128d, __m256d, _mm256_add_pd, _mm256_addsub_pd, _mm256_castpd256_pd128,
    _mm256_extractf128_pd, _mm256_loadu_pd, _mm256_movedup_pd, _mm256_mul_pd, _mm256_permute_pd,
    _mm256_set1_pd, _mm256_setr_pd, _mm256_storeu_pd, _mm256_sub_pd, _mm256_xor_pd, _mm_add_pd,
    _mm_setzero_pd, _mm_storeu_pd,
};

/// Two packed complex multiplies `p[i]·q[i]` (`i = 0, 1`), matching
/// `C64`'s `Mul` component expressions exactly (two roundings each).
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn cmul2(p: __m256d, q: __m256d) -> __m256d {
    let pre = _mm256_movedup_pd(p); // [p0.re, p0.re, p1.re, p1.re]
    let pim = _mm256_permute_pd::<0xF>(p); // [p0.im, p0.im, p1.im, p1.im]
    let t1 = _mm256_mul_pd(pre, q); // [p.re·q.re, p.re·q.im, ..]
    let qsw = _mm256_permute_pd::<0x5>(q); // [q0.im, q0.re, q1.im, q1.re]
    let t2 = _mm256_mul_pd(pim, qsw); // [p.im·q.im, p.im·q.re, ..]
    _mm256_addsub_pd(t1, t2) // [t1 − t2, t1 + t2] per pair
}

/// Folds both packed products into the `(re, im)` accumulator in index
/// order: low 128 bits first, then high — the oracle's fold.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn fold2(acc: __m128d, prod: __m256d) -> __m128d {
    let acc = _mm_add_pd(acc, _mm256_castpd256_pd128(prod));
    _mm_add_pd(acc, _mm256_extractf128_pd::<1>(prod))
}

#[inline]
#[target_feature(enable = "avx2")]
unsafe fn read_acc(acc: __m128d) -> C64 {
    let mut parts = [0.0f64; 2];
    _mm_storeu_pd(parts.as_mut_ptr(), acc);
    crate::complex::c64(parts[0], parts[1])
}

/// Mask that negates the imaginary lane of each packed complex.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn conj_mask() -> __m256d {
    _mm256_setr_pd(0.0, -0.0, 0.0, -0.0)
}

/// AVX2 [`super::conj_dot`]; bit-identical to the oracle.
pub fn conj_dot(a: &[C64], b: &[C64]) -> C64 {
    // SAFETY: the dispatcher (or a test over `available()`) only calls
    // this after runtime AVX2 detection.
    unsafe { conj_dot_impl(a, b) }
}

#[target_feature(enable = "avx2")]
unsafe fn conj_dot_impl(a: &[C64], b: &[C64]) -> C64 {
    let n = a.len().min(b.len());
    let (pa, pb) = (a.as_ptr() as *const f64, b.as_ptr() as *const f64);
    let mut acc = _mm_setzero_pd();
    let neg = _mm256_set1_pd(-0.0);
    let mut i = 0;
    while i + 2 <= n {
        let av = _mm256_loadu_pd(pa.add(2 * i));
        let bv = _mm256_loadu_pd(pb.add(2 * i));
        // conj(a)·b: negate the broadcast imaginary parts, then run the
        // shared multiply — component expressions match
        // `a.conj() * b` term for term.
        let are = _mm256_movedup_pd(av);
        let aim = _mm256_xor_pd(_mm256_permute_pd::<0xF>(av), neg);
        let t1 = _mm256_mul_pd(are, bv);
        let bsw = _mm256_permute_pd::<0x5>(bv);
        let t2 = _mm256_mul_pd(aim, bsw);
        acc = fold2(acc, _mm256_addsub_pd(t1, t2));
        i += 2;
    }
    let mut out = read_acc(acc);
    while i < n {
        out += a[i].conj() * b[i];
        i += 1;
    }
    out
}

/// AVX2 [`super::cmul_into`]; bit-identical to the oracle.
pub fn cmul_into(a: &[C64], b: &[C64], out: &mut [C64]) {
    // SAFETY: see `conj_dot`.
    unsafe { cmul_into_impl(a, b, out) }
}

#[target_feature(enable = "avx2")]
unsafe fn cmul_into_impl(a: &[C64], b: &[C64], out: &mut [C64]) {
    let n = out.len().min(a.len()).min(b.len());
    let (pa, pb) = (a.as_ptr() as *const f64, b.as_ptr() as *const f64);
    let po = out.as_mut_ptr() as *mut f64;
    let mut i = 0;
    while i + 2 <= n {
        let av = _mm256_loadu_pd(pa.add(2 * i));
        let bv = _mm256_loadu_pd(pb.add(2 * i));
        _mm256_storeu_pd(po.add(2 * i), cmul2(av, bv));
        i += 2;
    }
    while i < n {
        out[i] = a[i] * b[i];
        i += 1;
    }
}

/// AVX2 [`super::axpy`]; bit-identical to the oracle.
pub fn axpy(out: &mut [C64], xs: &[C64], amp: C64, subtract: bool) {
    // SAFETY: see `conj_dot`.
    unsafe { axpy_impl(out, xs, amp, subtract) }
}

#[target_feature(enable = "avx2")]
unsafe fn axpy_impl(out: &mut [C64], xs: &[C64], amp: C64, subtract: bool) {
    let n = out.len().min(xs.len());
    let px = xs.as_ptr() as *const f64;
    let po = out.as_mut_ptr() as *mut f64;
    let amp_re = _mm256_set1_pd(amp.re);
    let amp_im = _mm256_set1_pd(amp.im);
    // The subtract/add branch is hoisted outside the loops (as in the
    // oracle) so each loop body contains a lone genuine `sub`/`add`.
    // A branch *inside* the loop invites LLVM to fuse the arms into
    // `ov + (±m)` with an XOR sign flip — IEEE-equivalent for every
    // non-NaN value but not for NaN sign bits (see the module docs).
    let mut i = 0;
    if subtract {
        while i + 2 <= n {
            let xv = _mm256_loadu_pd(px.add(2 * i));
            // amp·x with amp as the left operand, matching `amp * x`.
            let t1 = _mm256_mul_pd(amp_re, xv);
            let xsw = _mm256_permute_pd::<0x5>(xv);
            let t2 = _mm256_mul_pd(amp_im, xsw);
            let m = _mm256_addsub_pd(t1, t2);
            let ov = _mm256_loadu_pd(po.add(2 * i));
            _mm256_storeu_pd(po.add(2 * i), _mm256_sub_pd(ov, m));
            i += 2;
        }
        while i < n {
            out[i] -= amp * xs[i];
            i += 1;
        }
    } else {
        while i + 2 <= n {
            let xv = _mm256_loadu_pd(px.add(2 * i));
            let t1 = _mm256_mul_pd(amp_re, xv);
            let xsw = _mm256_permute_pd::<0x5>(xv);
            let t2 = _mm256_mul_pd(amp_im, xsw);
            let m = _mm256_addsub_pd(t1, t2);
            let ov = _mm256_loadu_pd(po.add(2 * i));
            _mm256_storeu_pd(po.add(2 * i), _mm256_add_pd(ov, m));
            i += 2;
        }
        while i < n {
            out[i] += amp * xs[i];
            i += 1;
        }
    }
}

/// AVX2 [`super::butterflies`]; bit-identical to the oracle. Passes
/// with `half >= 2` process butterfly pairs two at a time; the first
/// (twiddle-free) pass stays scalar.
pub fn butterflies(x: &mut [C64], twiddles: &[C64], forward: bool) {
    // SAFETY: see `conj_dot`.
    unsafe { butterflies_impl(x, twiddles, forward) }
}

#[target_feature(enable = "avx2")]
unsafe fn butterflies_impl(x: &mut [C64], twiddles: &[C64], forward: bool) {
    let n = x.len();
    let base = x.as_mut_ptr() as *mut f64;
    let cmask = conj_mask();
    let mut len = 2;
    while len <= n {
        let half = len / 2;
        let stride = n / len;
        if half < 2 {
            for start in (0..n).step_by(len) {
                let tw = twiddles[0];
                let tw = if forward { tw } else { tw.conj() };
                let a = x[start];
                let b = x[start + 1] * tw;
                x[start] = a + b;
                x[start + 1] = a - b;
            }
        } else {
            for start in (0..n).step_by(len) {
                // `half` is a power of two ≥ 2, so the pair loop
                // covers [0, half) exactly — no scalar tail.
                let mut k = 0;
                while k + 2 <= half {
                    let tw0 = twiddles[k * stride];
                    let tw1 = twiddles[(k + 1) * stride];
                    let mut twv = _mm256_setr_pd(tw0.re, tw0.im, tw1.re, tw1.im);
                    if !forward {
                        // Inverse conjugates the twiddle as consumed.
                        twv = _mm256_xor_pd(twv, cmask);
                    }
                    let pa = base.add(2 * (start + k));
                    let pb = base.add(2 * (start + k + half));
                    let av = _mm256_loadu_pd(pa);
                    let bv = _mm256_loadu_pd(pb);
                    // b·tw with the buffer element on the left,
                    // matching `x[start + k + half] * tw`.
                    let bt = cmul2(bv, twv);
                    _mm256_storeu_pd(pa, _mm256_add_pd(av, bt));
                    _mm256_storeu_pd(pb, _mm256_sub_pd(av, bt));
                    k += 2;
                }
            }
        }
        len <<= 1;
    }
}

/// AVX2 [`super::dot_rev`]; bit-identical to the oracle.
pub fn dot_rev(xs: &[C64], kernel: &[f64]) -> C64 {
    // SAFETY: see `conj_dot`.
    unsafe { dot_rev_impl(xs, kernel) }
}

#[target_feature(enable = "avx2")]
unsafe fn dot_rev_impl(xs: &[C64], kernel: &[f64]) -> C64 {
    debug_assert_eq!(xs.len(), kernel.len());
    let l = xs.len();
    let px = xs.as_ptr() as *const f64;
    let mut acc = _mm_setzero_pd();
    let mut j = 0;
    while j + 2 <= l {
        // Kernel taps j and j+1 hit sources xs[l-1-j] and xs[l-2-j]:
        // one contiguous load in memory order
        // [xs[l-2-j], xs[l-1-j]], so tap j rides the high lanes.
        let xv = _mm256_loadu_pd(px.add(2 * (l - 2 - j)));
        let kv = _mm256_setr_pd(kernel[j + 1], kernel[j + 1], kernel[j], kernel[j]);
        let prod = _mm256_mul_pd(xv, kv);
        // Fold tap j (high) before tap j+1 (low) — oracle order.
        acc = _mm_add_pd(acc, _mm256_extractf128_pd::<1>(prod));
        acc = _mm_add_pd(acc, _mm256_castpd256_pd128(prod));
        j += 2;
    }
    let mut out = read_acc(acc);
    while j < l {
        out += xs[l - 1 - j].scale(kernel[j]);
        j += 1;
    }
    out
}

/// AVX2 [`super::conj_into`]; bit-identical to the oracle.
pub fn conj_into(src: &[C64], out: &mut [C64]) {
    // SAFETY: see `conj_dot`.
    unsafe { conj_into_impl(src, out) }
}

#[target_feature(enable = "avx2")]
unsafe fn conj_into_impl(src: &[C64], out: &mut [C64]) {
    let n = out.len().min(src.len());
    let ps = src.as_ptr() as *const f64;
    let po = out.as_mut_ptr() as *mut f64;
    let cmask = conj_mask();
    let mut i = 0;
    while i + 2 <= n {
        let v = _mm256_loadu_pd(ps.add(2 * i));
        _mm256_storeu_pd(po.add(2 * i), _mm256_xor_pd(v, cmask));
        i += 2;
    }
    while i < n {
        out[i] = src[i].conj();
        i += 1;
    }
}
