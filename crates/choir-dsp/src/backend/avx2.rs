//! AVX2 backend: x86_64 `std::arch` intrinsics, f64 lanes only.
//!
//! This file (with `neon.rs`) is the workspace's sole sanctioned
//! `unsafe` surface — see the module-level docs. Every kernel here is
//! bit-identical to the scalar oracle by construction:
//!
//! * **No FMA.** `_mm256_fmadd_pd` rounds once where the oracle rounds
//!   twice; only separate `mul`/`add`/`sub`/`addsub` are used.
//! * **Exact complex multiply.** `_mm256_addsub_pd(t1, t2)` evaluates
//!   `[p.re·q.re − p.im·q.im, p.re·q.im + p.im·q.re]` with the same two
//!   roundings per component as `C64`'s `Mul`.
//! * **Ordered reductions.** Dot products compute two products per
//!   256-bit register but fold them into a 128-bit `(re, im)`
//!   accumulator sequentially, in the oracle's index order; each lane
//!   is an independent IEEE add, so no reassociation occurs. The
//!   speedup comes from vectorizing the multiplies and element-wise
//!   passes, not from reordering sums.
//! * **Sign flips via XOR** with `-0.0` masks — exactly `f64`'s `Neg`,
//!   NaN-safe.
//!
//! # Soundness
//!
//! The dispatcher only routes here after
//! `is_x86_feature_detected!("avx2")` reported true, so the
//! `#[target_feature(enable = "avx2")]` inner functions are reachable
//! only on hosts that execute them correctly. Loads and stores use
//! unaligned `loadu`/`storeu` through pointers derived from slices
//! whose bounds the loop conditions respect; `C64` is `#[repr(C)]`
//! (`re` then `im`), so a `[C64]` is layout-compatible with pairs of
//! `f64` lanes.
#![allow(unsafe_code)]

use crate::complex::C64;
use std::arch::x86_64::{
    __m128d, __m256d, _mm256_add_pd, _mm256_addsub_pd, _mm256_and_pd, _mm256_and_si256,
    _mm256_blendv_pd, _mm256_castpd256_pd128, _mm256_castpd_si256, _mm256_castsi256_pd,
    _mm256_cmpeq_epi64, _mm256_extractf128_pd, _mm256_loadu_pd, _mm256_movedup_pd, _mm256_mul_pd,
    _mm256_permute2f128_pd, _mm256_permute_pd, _mm256_set1_epi64x, _mm256_set1_pd,
    _mm256_set_m128d, _mm256_setr_pd, _mm256_storeu_pd, _mm256_sub_pd, _mm256_unpackhi_pd,
    _mm256_unpacklo_pd, _mm256_xor_pd, _mm_add_pd, _mm_loadu_pd, _mm_setzero_pd, _mm_storeu_pd,
};

use super::sincos;

/// Two packed complex multiplies `p[i]·q[i]` (`i = 0, 1`), matching
/// `C64`'s `Mul` component expressions exactly (two roundings each).
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn cmul2(p: __m256d, q: __m256d) -> __m256d {
    let pre = _mm256_movedup_pd(p); // [p0.re, p0.re, p1.re, p1.re]
    let pim = _mm256_permute_pd::<0xF>(p); // [p0.im, p0.im, p1.im, p1.im]
    let t1 = _mm256_mul_pd(pre, q); // [p.re·q.re, p.re·q.im, ..]
    let qsw = _mm256_permute_pd::<0x5>(q); // [q0.im, q0.re, q1.im, q1.re]
    let t2 = _mm256_mul_pd(pim, qsw); // [p.im·q.im, p.im·q.re, ..]
    _mm256_addsub_pd(t1, t2) // [t1 − t2, t1 + t2] per pair
}

/// Folds both packed products into the `(re, im)` accumulator in index
/// order: low 128 bits first, then high — the oracle's fold.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn fold2(acc: __m128d, prod: __m256d) -> __m128d {
    let acc = _mm_add_pd(acc, _mm256_castpd256_pd128(prod));
    _mm_add_pd(acc, _mm256_extractf128_pd::<1>(prod))
}

#[inline]
#[target_feature(enable = "avx2")]
unsafe fn read_acc(acc: __m128d) -> C64 {
    let mut parts = [0.0f64; 2];
    _mm_storeu_pd(parts.as_mut_ptr(), acc);
    crate::complex::c64(parts[0], parts[1])
}

/// Mask that negates the imaginary lane of each packed complex.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn conj_mask() -> __m256d {
    _mm256_setr_pd(0.0, -0.0, 0.0, -0.0)
}

/// Four lanes of the deterministic [`sincos`] kernel: returns
/// `(cos, sin)` — i.e. `(re, im)` of `cis(x)` — for each lane of `x`.
/// Every instruction mirrors one operation of `sincos::cis`, in the
/// same order, with no FMA, so each lane's result is bit-identical to
/// the scalar call on that lane's value (quadrant selection included:
/// the blends and sign masks read the same shifted-mantissa bits the
/// scalar `match` reads).
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn cis4(x: __m256d) -> (__m256d, __m256d) {
    let shift = _mm256_set1_pd(sincos::SHIFT);
    let kk = _mm256_add_pd(_mm256_mul_pd(x, _mm256_set1_pd(sincos::FRAC_2_PI)), shift);
    let quad = _mm256_castpd_si256(kk);
    let k = _mm256_sub_pd(kk, shift);
    let r = _mm256_sub_pd(
        _mm256_sub_pd(
            _mm256_sub_pd(x, _mm256_mul_pd(k, _mm256_set1_pd(sincos::PIO2_HI))),
            _mm256_mul_pd(k, _mm256_set1_pd(sincos::PIO2_MID)),
        ),
        _mm256_mul_pd(k, _mm256_set1_pd(sincos::PIO2_LO)),
    );
    let z = _mm256_mul_pd(r, r);
    // Horner chains, innermost coefficient first — same order as the
    // scalar expressions.
    let mut ps = _mm256_set1_pd(sincos::S[5]);
    for i in (0..5).rev() {
        ps = _mm256_add_pd(_mm256_set1_pd(sincos::S[i]), _mm256_mul_pd(z, ps));
    }
    let sin_r = _mm256_add_pd(r, _mm256_mul_pd(_mm256_mul_pd(r, z), ps));
    let mut pc = _mm256_set1_pd(sincos::C[5]);
    for i in (0..5).rev() {
        pc = _mm256_add_pd(_mm256_set1_pd(sincos::C[i]), _mm256_mul_pd(z, pc));
    }
    let cos_r = _mm256_add_pd(
        _mm256_sub_pd(_mm256_set1_pd(1.0), _mm256_mul_pd(_mm256_set1_pd(0.5), z)),
        _mm256_mul_pd(_mm256_mul_pd(z, z), pc),
    );
    // Quadrant recombination: q0 (cos, sin), q1 (−sin, cos),
    // q2 (−cos, −sin), q3 (sin, −cos). Bit 0 swaps the magnitudes,
    // bit 0 ⊕ bit 1 negates re, bit 1 negates im — all exact ops.
    let one = _mm256_set1_epi64x(1);
    let two = _mm256_set1_epi64x(2);
    let b0 = _mm256_castsi256_pd(_mm256_cmpeq_epi64(_mm256_and_si256(quad, one), one));
    let b1 = _mm256_castsi256_pd(_mm256_cmpeq_epi64(_mm256_and_si256(quad, two), two));
    let neg = _mm256_set1_pd(-0.0);
    let re = _mm256_xor_pd(
        _mm256_blendv_pd(cos_r, sin_r, b0),
        _mm256_and_pd(_mm256_xor_pd(b0, b1), neg),
    );
    let im = _mm256_xor_pd(_mm256_blendv_pd(sin_r, cos_r, b0), _mm256_and_pd(b1, neg));
    (re, im)
}

/// AVX2 [`super::tone_into`]; bit-identical to the oracle (each lane
/// replays the scalar [`sincos::cis`] op sequence).
pub fn tone_into(buf: &mut [C64], n: usize, freq_bins: f64) {
    // SAFETY: see `conj_dot`.
    unsafe { tone_into_impl(buf, n, freq_bins) }
}

#[target_feature(enable = "avx2")]
unsafe fn tone_into_impl(buf: &mut [C64], n: usize, freq_bins: f64) {
    let w = 2.0 * std::f64::consts::PI * freq_bins / n as f64;
    let len = buf.len();
    let wv = _mm256_set1_pd(w);
    let po = buf.as_mut_ptr() as *mut f64;
    let mut t = 0usize;
    while t + 4 <= len {
        let tv = _mm256_setr_pd(t as f64, (t + 1) as f64, (t + 2) as f64, (t + 3) as f64);
        let (re, im) = cis4(_mm256_mul_pd(wv, tv));
        // Interleave [re0..re3]/[im0..im3] into (re, im) pairs.
        let lo = _mm256_unpacklo_pd(re, im); // [r0, i0, r2, i2]
        let hi = _mm256_unpackhi_pd(re, im); // [r1, i1, r3, i3]
        _mm256_storeu_pd(po.add(2 * t), _mm256_permute2f128_pd::<0x20>(lo, hi));
        _mm256_storeu_pd(po.add(2 * t + 4), _mm256_permute2f128_pd::<0x31>(lo, hi));
        t += 4;
    }
    while t < len {
        buf[t] = sincos::cis(w * t as f64);
        t += 1;
    }
}

/// AVX2 [`super::tone_block_into`]: per-candidate strided column fill.
/// Each column reuses the dense four-lane sincos pipeline and scatters
/// the four `(re, im)` pairs to `block[t·W + j]`; element values are
/// bit-identical to the dense kernel's at the same `(n, freq, t)`.
pub fn tone_block_into(block: &mut [C64], n: usize, freqs: &[f64]) {
    // SAFETY: see `conj_dot`.
    unsafe { tone_block_into_impl(block, n, freqs) }
}

#[target_feature(enable = "avx2")]
unsafe fn tone_block_into_impl(block: &mut [C64], n: usize, freqs: &[f64]) {
    let w = freqs.len();
    debug_assert!(
        w > 0 && block.len().is_multiple_of(w),
        "tone_block_into: ragged block"
    );
    let rows = block.len() / w;
    let po = block.as_mut_ptr() as *mut f64;
    for (j, &f) in freqs.iter().enumerate() {
        let wj = 2.0 * std::f64::consts::PI * f / n as f64;
        let wv = _mm256_set1_pd(wj);
        let mut t = 0usize;
        while t + 4 <= rows {
            let tv = _mm256_setr_pd(t as f64, (t + 1) as f64, (t + 2) as f64, (t + 3) as f64);
            let (re, im) = cis4(_mm256_mul_pd(wv, tv));
            let lo = _mm256_unpacklo_pd(re, im);
            let hi = _mm256_unpackhi_pd(re, im);
            // Scatter the four pairs to strided slots.
            _mm_storeu_pd(po.add(2 * (t * w + j)), _mm256_castpd256_pd128(lo));
            _mm_storeu_pd(po.add(2 * ((t + 1) * w + j)), _mm256_castpd256_pd128(hi));
            _mm_storeu_pd(
                po.add(2 * ((t + 2) * w + j)),
                _mm256_extractf128_pd::<1>(lo),
            );
            _mm_storeu_pd(
                po.add(2 * ((t + 3) * w + j)),
                _mm256_extractf128_pd::<1>(hi),
            );
            t += 4;
        }
        while t < rows {
            block[t * w + j] = sincos::cis(wj * t as f64);
            t += 1;
        }
    }
}

/// AVX2 [`super::conj_dot_block`]; bit-identical to the oracle.
/// Candidate pairs share each broadcast `y[t]` load: one 256-bit load
/// covers two adjacent candidates' row entries, and each candidate's
/// `(re, im)` half-register accumulates in ascending `t` — the
/// oracle's per-candidate fold.
pub fn conj_dot_block(block: &[C64], y: &[C64], out: &mut [C64]) {
    // SAFETY: see `conj_dot`.
    unsafe { conj_dot_block_impl(block, y, out) }
}

#[target_feature(enable = "avx2")]
unsafe fn conj_dot_block_impl(block: &[C64], y: &[C64], out: &mut [C64]) {
    let w = out.len();
    debug_assert!(w > 0, "conj_dot_block: empty block");
    let rows = (block.len() / w).min(y.len());
    let pb = block.as_ptr() as *const f64;
    let py = y.as_ptr() as *const f64;
    let neg = _mm256_set1_pd(-0.0);
    let mut j = 0usize;
    while j + 2 <= w {
        let mut acc = _mm256_setr_pd(0.0, 0.0, 0.0, 0.0);
        for t in 0..rows {
            let av = _mm256_loadu_pd(pb.add(2 * (t * w + j))); // candidates j, j+1
            let yl = _mm_loadu_pd(py.add(2 * t));
            let yv = _mm256_set_m128d(yl, yl);
            let are = _mm256_movedup_pd(av);
            let aim = _mm256_xor_pd(_mm256_permute_pd::<0xF>(av), neg);
            let t1 = _mm256_mul_pd(are, yv);
            let ysw = _mm256_permute_pd::<0x5>(yv);
            let t2 = _mm256_mul_pd(aim, ysw);
            acc = _mm256_add_pd(acc, _mm256_addsub_pd(t1, t2));
        }
        let mut parts = [0.0f64; 4];
        _mm256_storeu_pd(parts.as_mut_ptr(), acc);
        out[j] = crate::complex::c64(parts[0], parts[1]);
        out[j + 1] = crate::complex::c64(parts[2], parts[3]);
        j += 2;
    }
    while j < w {
        let mut acc = C64::ZERO;
        for (t, &yt) in y.iter().enumerate().take(rows) {
            acc += block[t * w + j].conj() * yt;
        }
        out[j] = acc;
        j += 1;
    }
}

/// AVX2 [`super::residual_block`]; bit-identical to the oracle.
/// Each candidate keeps its `(Σ re², Σ im²)` half-register accumulator
/// pair (the oracle's definition) updated in ascending `t`.
pub fn residual_block(block: &[C64], y: &[C64], coeffs: &[C64], out: &mut [f64]) {
    // SAFETY: see `conj_dot`.
    unsafe { residual_block_impl(block, y, coeffs, out) }
}

#[target_feature(enable = "avx2")]
unsafe fn residual_block_impl(block: &[C64], y: &[C64], coeffs: &[C64], out: &mut [f64]) {
    let w = out.len();
    assert!(
        w > 0 && w <= super::MAX_BLOCK_WIDTH && coeffs.len() == w,
        "residual_block: width out of range"
    );
    let rows = (block.len() / w).min(y.len());
    let pb = block.as_ptr() as *const f64;
    let py = y.as_ptr() as *const f64;
    let mut j = 0usize;
    while j + 2 <= w {
        // c_j and c_{j+1} broadcast once; `cmul2` keeps the coefficient
        // on the left, matching the oracle's `c * b`.
        let cv = _mm256_loadu_pd(coeffs.as_ptr().add(j) as *const f64);
        let cre = _mm256_movedup_pd(cv);
        let cim = _mm256_permute_pd::<0xF>(cv);
        let mut acc = _mm256_setr_pd(0.0, 0.0, 0.0, 0.0);
        for t in 0..rows {
            let bv = _mm256_loadu_pd(pb.add(2 * (t * w + j)));
            let t1 = _mm256_mul_pd(cre, bv);
            let bsw = _mm256_permute_pd::<0x5>(bv);
            let t2 = _mm256_mul_pd(cim, bsw);
            let m = _mm256_addsub_pd(t1, t2);
            let yl = _mm_loadu_pd(py.add(2 * t));
            let yv = _mm256_set_m128d(yl, yl);
            let d = _mm256_sub_pd(yv, m);
            acc = _mm256_add_pd(acc, _mm256_mul_pd(d, d));
        }
        let mut parts = [0.0f64; 4];
        _mm256_storeu_pd(parts.as_mut_ptr(), acc);
        out[j] = parts[0] + parts[1];
        out[j + 1] = parts[2] + parts[3];
        j += 2;
    }
    while j < w {
        let c = coeffs[j];
        let (mut sre, mut sim) = (0.0f64, 0.0f64);
        for (t, &yt) in y.iter().enumerate().take(rows) {
            let d = yt - c * block[t * w + j];
            sre += d.re * d.re;
            sim += d.im * d.im;
        }
        out[j] = sre + sim;
        j += 1;
    }
}

/// AVX2 [`super::dot`]; bit-identical to the oracle — `conj_dot`
/// without the sign flip on the broadcast imaginary parts.
pub fn dot(a: &[C64], b: &[C64]) -> C64 {
    // SAFETY: see `conj_dot`.
    unsafe { dot_impl(a, b) }
}

#[target_feature(enable = "avx2")]
unsafe fn dot_impl(a: &[C64], b: &[C64]) -> C64 {
    let n = a.len().min(b.len());
    let (pa, pb) = (a.as_ptr() as *const f64, b.as_ptr() as *const f64);
    let mut acc = _mm_setzero_pd();
    let mut i = 0;
    while i + 2 <= n {
        let av = _mm256_loadu_pd(pa.add(2 * i));
        let bv = _mm256_loadu_pd(pb.add(2 * i));
        acc = fold2(acc, cmul2(av, bv));
        i += 2;
    }
    let mut out = read_acc(acc);
    while i < n {
        out += a[i] * b[i];
        i += 1;
    }
    out
}

/// AVX2 [`super::conj_dot`]; bit-identical to the oracle.
pub fn conj_dot(a: &[C64], b: &[C64]) -> C64 {
    // SAFETY: the dispatcher (or a test over `available()`) only calls
    // this after runtime AVX2 detection.
    unsafe { conj_dot_impl(a, b) }
}

#[target_feature(enable = "avx2")]
unsafe fn conj_dot_impl(a: &[C64], b: &[C64]) -> C64 {
    let n = a.len().min(b.len());
    let (pa, pb) = (a.as_ptr() as *const f64, b.as_ptr() as *const f64);
    let mut acc = _mm_setzero_pd();
    let neg = _mm256_set1_pd(-0.0);
    let mut i = 0;
    while i + 2 <= n {
        let av = _mm256_loadu_pd(pa.add(2 * i));
        let bv = _mm256_loadu_pd(pb.add(2 * i));
        // conj(a)·b: negate the broadcast imaginary parts, then run the
        // shared multiply — component expressions match
        // `a.conj() * b` term for term.
        let are = _mm256_movedup_pd(av);
        let aim = _mm256_xor_pd(_mm256_permute_pd::<0xF>(av), neg);
        let t1 = _mm256_mul_pd(are, bv);
        let bsw = _mm256_permute_pd::<0x5>(bv);
        let t2 = _mm256_mul_pd(aim, bsw);
        acc = fold2(acc, _mm256_addsub_pd(t1, t2));
        i += 2;
    }
    let mut out = read_acc(acc);
    while i < n {
        out += a[i].conj() * b[i];
        i += 1;
    }
    out
}

/// AVX2 [`super::cmul_into`]; bit-identical to the oracle.
pub fn cmul_into(a: &[C64], b: &[C64], out: &mut [C64]) {
    // SAFETY: see `conj_dot`.
    unsafe { cmul_into_impl(a, b, out) }
}

#[target_feature(enable = "avx2")]
unsafe fn cmul_into_impl(a: &[C64], b: &[C64], out: &mut [C64]) {
    let n = out.len().min(a.len()).min(b.len());
    let (pa, pb) = (a.as_ptr() as *const f64, b.as_ptr() as *const f64);
    let po = out.as_mut_ptr() as *mut f64;
    let mut i = 0;
    while i + 2 <= n {
        let av = _mm256_loadu_pd(pa.add(2 * i));
        let bv = _mm256_loadu_pd(pb.add(2 * i));
        _mm256_storeu_pd(po.add(2 * i), cmul2(av, bv));
        i += 2;
    }
    while i < n {
        out[i] = a[i] * b[i];
        i += 1;
    }
}

/// AVX2 [`super::axpy`]; bit-identical to the oracle.
pub fn axpy(out: &mut [C64], xs: &[C64], amp: C64, subtract: bool) {
    // SAFETY: see `conj_dot`.
    unsafe { axpy_impl(out, xs, amp, subtract) }
}

#[target_feature(enable = "avx2")]
unsafe fn axpy_impl(out: &mut [C64], xs: &[C64], amp: C64, subtract: bool) {
    let n = out.len().min(xs.len());
    let px = xs.as_ptr() as *const f64;
    let po = out.as_mut_ptr() as *mut f64;
    let amp_re = _mm256_set1_pd(amp.re);
    let amp_im = _mm256_set1_pd(amp.im);
    // The subtract/add branch is hoisted outside the loops (as in the
    // oracle) so each loop body contains a lone genuine `sub`/`add`.
    // A branch *inside* the loop invites LLVM to fuse the arms into
    // `ov + (±m)` with an XOR sign flip — IEEE-equivalent for every
    // non-NaN value but not for NaN sign bits (see the module docs).
    let mut i = 0;
    if subtract {
        while i + 2 <= n {
            let xv = _mm256_loadu_pd(px.add(2 * i));
            // amp·x with amp as the left operand, matching `amp * x`.
            let t1 = _mm256_mul_pd(amp_re, xv);
            let xsw = _mm256_permute_pd::<0x5>(xv);
            let t2 = _mm256_mul_pd(amp_im, xsw);
            let m = _mm256_addsub_pd(t1, t2);
            let ov = _mm256_loadu_pd(po.add(2 * i));
            _mm256_storeu_pd(po.add(2 * i), _mm256_sub_pd(ov, m));
            i += 2;
        }
        while i < n {
            out[i] -= amp * xs[i];
            i += 1;
        }
    } else {
        while i + 2 <= n {
            let xv = _mm256_loadu_pd(px.add(2 * i));
            let t1 = _mm256_mul_pd(amp_re, xv);
            let xsw = _mm256_permute_pd::<0x5>(xv);
            let t2 = _mm256_mul_pd(amp_im, xsw);
            let m = _mm256_addsub_pd(t1, t2);
            let ov = _mm256_loadu_pd(po.add(2 * i));
            _mm256_storeu_pd(po.add(2 * i), _mm256_add_pd(ov, m));
            i += 2;
        }
        while i < n {
            out[i] += amp * xs[i];
            i += 1;
        }
    }
}

/// AVX2 [`super::butterflies`]; bit-identical to the oracle. Passes
/// with `half >= 2` process butterfly pairs two at a time; the first
/// (twiddle-free) pass stays scalar.
pub fn butterflies(x: &mut [C64], twiddles: &[C64], forward: bool) {
    // SAFETY: see `conj_dot`.
    unsafe { butterflies_impl(x, twiddles, forward) }
}

#[target_feature(enable = "avx2")]
unsafe fn butterflies_impl(x: &mut [C64], twiddles: &[C64], forward: bool) {
    let n = x.len();
    let base = x.as_mut_ptr() as *mut f64;
    let cmask = conj_mask();
    let mut len = 2;
    while len <= n {
        let half = len / 2;
        let stride = n / len;
        if half < 2 {
            for start in (0..n).step_by(len) {
                let tw = twiddles[0];
                let tw = if forward { tw } else { tw.conj() };
                let a = x[start];
                let b = x[start + 1] * tw;
                x[start] = a + b;
                x[start + 1] = a - b;
            }
        } else {
            for start in (0..n).step_by(len) {
                // `half` is a power of two ≥ 2, so the pair loop
                // covers [0, half) exactly — no scalar tail.
                let mut k = 0;
                while k + 2 <= half {
                    let tw0 = twiddles[k * stride];
                    let tw1 = twiddles[(k + 1) * stride];
                    let mut twv = _mm256_setr_pd(tw0.re, tw0.im, tw1.re, tw1.im);
                    if !forward {
                        // Inverse conjugates the twiddle as consumed.
                        twv = _mm256_xor_pd(twv, cmask);
                    }
                    let pa = base.add(2 * (start + k));
                    let pb = base.add(2 * (start + k + half));
                    let av = _mm256_loadu_pd(pa);
                    let bv = _mm256_loadu_pd(pb);
                    // b·tw with the buffer element on the left,
                    // matching `x[start + k + half] * tw`.
                    let bt = cmul2(bv, twv);
                    _mm256_storeu_pd(pa, _mm256_add_pd(av, bt));
                    _mm256_storeu_pd(pb, _mm256_sub_pd(av, bt));
                    k += 2;
                }
            }
        }
        len <<= 1;
    }
}

/// AVX2 [`super::dot_rev`]; bit-identical to the oracle.
///
/// Four taps per iteration from two contiguous 256-bit source loads and
/// one contiguous 256-bit kernel load; the kernel's tap order is
/// reversed *in registers* (duplicate-shuffle + cross-half permute)
/// instead of rebuilding reversed pairs from scalar loads per
/// iteration, which is what kept the previous version gather-bound.
pub fn dot_rev(xs: &[C64], kernel: &[f64]) -> C64 {
    // SAFETY: see `conj_dot`.
    unsafe { dot_rev_impl(xs, kernel) }
}

#[target_feature(enable = "avx2")]
unsafe fn dot_rev_impl(xs: &[C64], kernel: &[f64]) -> C64 {
    debug_assert_eq!(xs.len(), kernel.len());
    let l = xs.len();
    let px = xs.as_ptr() as *const f64;
    let pk = kernel.as_ptr();
    let mut acc = _mm_setzero_pd();
    let mut j = 0;
    while j + 4 <= l {
        // Taps j..j+3 hit sources xs[l-1-j]..xs[l-4-j]. Two contiguous
        // loads cover them in memory order:
        //   xv_lo = [xs[l-4-j], xs[l-3-j]]  (taps j+3, j+2)
        //   xv_hi = [xs[l-2-j], xs[l-1-j]]  (taps j+1, j)
        let xv_lo = _mm256_loadu_pd(px.add(2 * (l - 4 - j)));
        let xv_hi = _mm256_loadu_pd(px.add(2 * (l - 2 - j)));
        // One contiguous kernel load [k0, k1, k2, k3], then in-register
        // reverse + pair-duplicate:
        //   dup_even = [k0, k0, k2, k2], dup_odd = [k1, k1, k3, k3]
        //   kv_lo = [k3, k3, k2, k2], kv_hi = [k1, k1, k0, k0]
        let kvec = _mm256_loadu_pd(pk.add(j));
        let dup_even = _mm256_movedup_pd(kvec);
        let dup_odd = _mm256_permute_pd::<0xF>(kvec);
        let kv_lo = _mm256_permute2f128_pd::<0x31>(dup_odd, dup_even);
        let kv_hi = _mm256_permute2f128_pd::<0x20>(dup_odd, dup_even);
        let prod_lo = _mm256_mul_pd(xv_lo, kv_lo); // [tap j+3, tap j+2]
        let prod_hi = _mm256_mul_pd(xv_hi, kv_hi); // [tap j+1, tap j]
                                                   // Fold taps j, j+1, j+2, j+3 — the oracle's ascending order.
        acc = _mm_add_pd(acc, _mm256_extractf128_pd::<1>(prod_hi));
        acc = _mm_add_pd(acc, _mm256_castpd256_pd128(prod_hi));
        acc = _mm_add_pd(acc, _mm256_extractf128_pd::<1>(prod_lo));
        acc = _mm_add_pd(acc, _mm256_castpd256_pd128(prod_lo));
        j += 4;
    }
    let mut out = read_acc(acc);
    while j < l {
        out += xs[l - 1 - j].scale(kernel[j]);
        j += 1;
    }
    out
}

/// AVX2 [`super::conj_into`]; bit-identical to the oracle.
pub fn conj_into(src: &[C64], out: &mut [C64]) {
    // SAFETY: see `conj_dot`.
    unsafe { conj_into_impl(src, out) }
}

#[target_feature(enable = "avx2")]
unsafe fn conj_into_impl(src: &[C64], out: &mut [C64]) {
    let n = out.len().min(src.len());
    let ps = src.as_ptr() as *const f64;
    let po = out.as_mut_ptr() as *mut f64;
    let cmask = conj_mask();
    let mut i = 0;
    while i + 2 <= n {
        let v = _mm256_loadu_pd(ps.add(2 * i));
        _mm256_storeu_pd(po.add(2 * i), _mm256_xor_pd(v, cmask));
        i += 2;
    }
    while i < n {
        out[i] = src[i].conj();
        i += 1;
    }
}
