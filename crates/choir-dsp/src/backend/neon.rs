//! NEON backend: aarch64 `std::arch` intrinsics, f64 lanes only.
//!
//! One `float64x2_t` holds one complex sample (`re` in lane 0, `im` in
//! lane 1), so reductions are naturally in the oracle's order — the
//! win is vectorizing each component pair, not widening the fold.
//! The bit-identity rules match `avx2.rs`: no FMA, sign flips via XOR
//! with the IEEE sign bit, and the subtraction in the complex multiply
//! uses `x + (−y)`, which IEEE 754 defines as exactly `x − y`.
//!
//! # Soundness
//!
//! AdvSIMD is baseline on every aarch64 target this workspace builds
//! for, and the dispatcher only offers this backend when compiled for
//! aarch64. Loads and stores go through pointers derived from slices
//! whose bounds the loop conditions respect; `C64` is `#[repr(C)]`
//! (`re` then `im`), so a `[C64]` is layout-compatible with `f64`
//! lane pairs.
#![allow(unsafe_code)]

use crate::complex::C64;
use std::arch::aarch64::{
    float64x2_t, vaddq_f64, vcombine_u64, vcreate_u64, vdupq_laneq_f64, vdupq_n_f64, veorq_u64,
    vextq_f64, vgetq_lane_f64, vld1q_f64, vmulq_f64, vmulq_n_f64, vreinterpretq_f64_u64,
    vreinterpretq_u64_f64, vst1q_f64, vsubq_f64,
};

/// Flips the sign bit of lane 0 (the real part) — exactly `Neg`.
#[inline]
#[target_feature(enable = "neon")]
unsafe fn neg_re(v: float64x2_t) -> float64x2_t {
    let mask = vcombine_u64(vcreate_u64(0x8000_0000_0000_0000), vcreate_u64(0));
    vreinterpretq_f64_u64(veorq_u64(vreinterpretq_u64_f64(v), mask))
}

/// Flips the sign bit of lane 1 (the imaginary part) — exactly `Neg`.
#[inline]
#[target_feature(enable = "neon")]
unsafe fn neg_im(v: float64x2_t) -> float64x2_t {
    let mask = vcombine_u64(vcreate_u64(0), vcreate_u64(0x8000_0000_0000_0000));
    vreinterpretq_f64_u64(veorq_u64(vreinterpretq_u64_f64(v), mask))
}

/// One complex multiply `p·q`, component expressions identical to
/// `C64`'s `Mul` (the lane-0 subtraction is realised as `t1 + (−t2)`,
/// which IEEE 754 defines bit-for-bit as `t1 − t2`).
#[inline]
#[target_feature(enable = "neon")]
unsafe fn cmul1(p: float64x2_t, q: float64x2_t) -> float64x2_t {
    let pre = vdupq_laneq_f64::<0>(p); // [p.re, p.re]
    let pim = vdupq_laneq_f64::<1>(p); // [p.im, p.im]
    let t1 = vmulq_f64(pre, q); // [p.re·q.re, p.re·q.im]
    let qsw = vextq_f64::<1>(q, q); // [q.im, q.re]
    let t2 = vmulq_f64(pim, qsw); // [p.im·q.im, p.im·q.re]
    vaddq_f64(t1, neg_re(t2)) // [t1 − t2, t1 + t2]
}

#[inline]
#[target_feature(enable = "neon")]
unsafe fn read_acc(acc: float64x2_t) -> C64 {
    crate::complex::c64(vgetq_lane_f64::<0>(acc), vgetq_lane_f64::<1>(acc))
}

/// NEON [`super::conj_dot`]; bit-identical to the oracle.
pub fn conj_dot(a: &[C64], b: &[C64]) -> C64 {
    // SAFETY: AdvSIMD is baseline on aarch64; bounds respected below.
    unsafe { conj_dot_impl(a, b) }
}

#[target_feature(enable = "neon")]
unsafe fn conj_dot_impl(a: &[C64], b: &[C64]) -> C64 {
    let n = a.len().min(b.len());
    let (pa, pb) = (a.as_ptr() as *const f64, b.as_ptr() as *const f64);
    let mut acc = vdupq_n_f64(0.0);
    for i in 0..n {
        let av = vld1q_f64(pa.add(2 * i));
        let bv = vld1q_f64(pb.add(2 * i));
        // conj(a)·b: negate the broadcast imaginary part, then the
        // shared multiply shape.
        let are = vdupq_laneq_f64::<0>(av);
        let aim = neg_re(neg_im(vdupq_laneq_f64::<1>(av))); // both lanes hold −a.im
        let t1 = vmulq_f64(are, bv);
        let bsw = vextq_f64::<1>(bv, bv);
        let t2 = vmulq_f64(aim, bsw);
        let prod = vaddq_f64(t1, neg_re(t2));
        acc = vaddq_f64(acc, prod);
    }
    read_acc(acc)
}

/// NEON [`super::dot`]; bit-identical to the oracle — `conj_dot`
/// without the sign flip on the broadcast imaginary part.
pub fn dot(a: &[C64], b: &[C64]) -> C64 {
    // SAFETY: see `conj_dot`.
    unsafe { dot_impl(a, b) }
}

#[target_feature(enable = "neon")]
unsafe fn dot_impl(a: &[C64], b: &[C64]) -> C64 {
    let n = a.len().min(b.len());
    let (pa, pb) = (a.as_ptr() as *const f64, b.as_ptr() as *const f64);
    let mut acc = vdupq_n_f64(0.0);
    for i in 0..n {
        let av = vld1q_f64(pa.add(2 * i));
        let bv = vld1q_f64(pb.add(2 * i));
        acc = vaddq_f64(acc, cmul1(av, bv));
    }
    read_acc(acc)
}

/// NEON [`super::tone_into`]: delegates to the scalar oracle. One
/// `float64x2_t` holds a single complex sample, so a NEON sincos would
/// evaluate the same one-element polynomial chain the scalar kernel
/// already runs — there is no cross-element parallelism to win at this
/// register width, and the scalar path is the deterministic kernel by
/// definition.
pub fn tone_into(buf: &mut [C64], n: usize, freq_bins: f64) {
    super::scalar::tone_into(buf, n, freq_bins);
}

/// NEON [`super::tone_block_into`]: delegates to the scalar oracle
/// (see [`tone_into`] — same register-width argument).
pub fn tone_block_into(block: &mut [C64], n: usize, freqs: &[f64]) {
    super::scalar::tone_block_into(block, n, freqs);
}

/// NEON [`super::conj_dot_block`]; bit-identical to the oracle. Each
/// candidate keeps its own `(re, im)` accumulator register, updated in
/// ascending `t`; candidates in a row share the broadcast `y[t]` load.
pub fn conj_dot_block(block: &[C64], y: &[C64], out: &mut [C64]) {
    // SAFETY: see `conj_dot`.
    unsafe { conj_dot_block_impl(block, y, out) }
}

#[target_feature(enable = "neon")]
unsafe fn conj_dot_block_impl(block: &[C64], y: &[C64], out: &mut [C64]) {
    let w = out.len();
    debug_assert!(w > 0, "conj_dot_block: empty block");
    let rows = (block.len() / w).min(y.len());
    let pb = block.as_ptr() as *const f64;
    let py = y.as_ptr() as *const f64;
    for (j, o) in out.iter_mut().enumerate() {
        let mut acc = vdupq_n_f64(0.0);
        for t in 0..rows {
            let av = vld1q_f64(pb.add(2 * (t * w + j)));
            let yv = vld1q_f64(py.add(2 * t));
            let are = vdupq_laneq_f64::<0>(av);
            let aim = neg_re(neg_im(vdupq_laneq_f64::<1>(av)));
            let t1 = vmulq_f64(are, yv);
            let ysw = vextq_f64::<1>(yv, yv);
            let t2 = vmulq_f64(aim, ysw);
            acc = vaddq_f64(acc, vaddq_f64(t1, neg_re(t2)));
        }
        *o = read_acc(acc);
    }
}

/// NEON [`super::residual_block`]; bit-identical to the oracle. Each
/// candidate accumulates `(Σ re², Σ im²)` in one register (the
/// oracle's split), combined by a single add at the end.
pub fn residual_block(block: &[C64], y: &[C64], coeffs: &[C64], out: &mut [f64]) {
    // SAFETY: see `conj_dot`.
    unsafe { residual_block_impl(block, y, coeffs, out) }
}

#[target_feature(enable = "neon")]
unsafe fn residual_block_impl(block: &[C64], y: &[C64], coeffs: &[C64], out: &mut [f64]) {
    let w = out.len();
    assert!(
        w > 0 && w <= super::MAX_BLOCK_WIDTH && coeffs.len() == w,
        "residual_block: width out of range"
    );
    let rows = (block.len() / w).min(y.len());
    let pb = block.as_ptr() as *const f64;
    let py = y.as_ptr() as *const f64;
    let pc = coeffs.as_ptr() as *const f64;
    for (j, o) in out.iter_mut().enumerate() {
        let cv = vld1q_f64(pc.add(2 * j));
        let mut acc = vdupq_n_f64(0.0);
        for t in 0..rows {
            let bv = vld1q_f64(pb.add(2 * (t * w + j)));
            // `c · b` with the coefficient on the left (oracle order).
            let m = cmul1(cv, bv);
            let yv = vld1q_f64(py.add(2 * t));
            let d = vsubq_f64(yv, m);
            acc = vaddq_f64(acc, vmulq_f64(d, d));
        }
        *o = vgetq_lane_f64::<0>(acc) + vgetq_lane_f64::<1>(acc);
    }
}

/// NEON [`super::cmul_into`]; bit-identical to the oracle.
pub fn cmul_into(a: &[C64], b: &[C64], out: &mut [C64]) {
    // SAFETY: see `conj_dot`.
    unsafe { cmul_into_impl(a, b, out) }
}

#[target_feature(enable = "neon")]
unsafe fn cmul_into_impl(a: &[C64], b: &[C64], out: &mut [C64]) {
    let n = out.len().min(a.len()).min(b.len());
    let (pa, pb) = (a.as_ptr() as *const f64, b.as_ptr() as *const f64);
    let po = out.as_mut_ptr() as *mut f64;
    for i in 0..n {
        let av = vld1q_f64(pa.add(2 * i));
        let bv = vld1q_f64(pb.add(2 * i));
        vst1q_f64(po.add(2 * i), cmul1(av, bv));
    }
}

/// NEON [`super::axpy`]; bit-identical to the oracle.
pub fn axpy(out: &mut [C64], xs: &[C64], amp: C64, subtract: bool) {
    // SAFETY: see `conj_dot`.
    unsafe { axpy_impl(out, xs, amp, subtract) }
}

#[target_feature(enable = "neon")]
unsafe fn axpy_impl(out: &mut [C64], xs: &[C64], amp: C64, subtract: bool) {
    let n = out.len().min(xs.len());
    let px = xs.as_ptr() as *const f64;
    let po = out.as_mut_ptr() as *mut f64;
    let amp_re = vdupq_n_f64(amp.re);
    let amp_im = vdupq_n_f64(amp.im);
    for i in 0..n {
        let xv = vld1q_f64(px.add(2 * i));
        // amp·x with amp as the left operand, matching `amp * x`.
        let t1 = vmulq_f64(amp_re, xv);
        let xsw = vextq_f64::<1>(xv, xv);
        let t2 = vmulq_f64(amp_im, xsw);
        let m = vaddq_f64(t1, neg_re(t2));
        let ov = vld1q_f64(po.add(2 * i));
        let r = if subtract {
            vsubq_f64(ov, m)
        } else {
            vaddq_f64(ov, m)
        };
        vst1q_f64(po.add(2 * i), r);
    }
}

/// NEON [`super::butterflies`]; bit-identical to the oracle.
pub fn butterflies(x: &mut [C64], twiddles: &[C64], forward: bool) {
    // SAFETY: see `conj_dot`.
    unsafe { butterflies_impl(x, twiddles, forward) }
}

#[target_feature(enable = "neon")]
unsafe fn butterflies_impl(x: &mut [C64], twiddles: &[C64], forward: bool) {
    let n = x.len();
    let base = x.as_mut_ptr() as *mut f64;
    let ptw = twiddles.as_ptr() as *const f64;
    let mut len = 2;
    while len <= n {
        let half = len / 2;
        let stride = n / len;
        for start in (0..n).step_by(len) {
            for k in 0..half {
                let mut twv = vld1q_f64(ptw.add(2 * (k * stride)));
                if !forward {
                    // Inverse conjugates the twiddle as consumed.
                    twv = neg_im(twv);
                }
                let pa = base.add(2 * (start + k));
                let pb = base.add(2 * (start + k + half));
                let av = vld1q_f64(pa);
                let bv = vld1q_f64(pb);
                // b·tw with the buffer element on the left, matching
                // `x[start + k + half] * tw`.
                let bt = cmul1(bv, twv);
                vst1q_f64(pa, vaddq_f64(av, bt));
                vst1q_f64(pb, vsubq_f64(av, bt));
            }
        }
        len <<= 1;
    }
}

/// NEON [`super::dot_rev`]; bit-identical to the oracle.
pub fn dot_rev(xs: &[C64], kernel: &[f64]) -> C64 {
    // SAFETY: see `conj_dot`.
    unsafe { dot_rev_impl(xs, kernel) }
}

#[target_feature(enable = "neon")]
unsafe fn dot_rev_impl(xs: &[C64], kernel: &[f64]) -> C64 {
    debug_assert_eq!(xs.len(), kernel.len());
    let l = xs.len();
    let px = xs.as_ptr() as *const f64;
    let mut acc = vdupq_n_f64(0.0);
    for (j, &k) in kernel.iter().enumerate() {
        let xv = vld1q_f64(px.add(2 * (l - 1 - j)));
        acc = vaddq_f64(acc, vmulq_n_f64(xv, k));
    }
    read_acc(acc)
}

/// NEON [`super::conj_into`]; bit-identical to the oracle.
pub fn conj_into(src: &[C64], out: &mut [C64]) {
    // SAFETY: see `conj_dot`.
    unsafe { conj_into_impl(src, out) }
}

#[target_feature(enable = "neon")]
unsafe fn conj_into_impl(src: &[C64], out: &mut [C64]) {
    let n = out.len().min(src.len());
    let ps = src.as_ptr() as *const f64;
    let po = out.as_mut_ptr() as *mut f64;
    for i in 0..n {
        let v = vld1q_f64(ps.add(2 * i));
        vst1q_f64(po.add(2 * i), neg_im(v));
    }
}
